// Package gear implements a PARAID-style gear-shifting array (the paper's
// references [25] PARAID and [13] Kim & Rotem), the other major family of
// replication-based energy savers: disks are ordered into gears, a block
// always keeps one replica inside the lowest gear, and the array shifts
// gears with load — at low load only the first few disks receive traffic
// and the rest spin down under the ordinary 2CPM policy.
//
// It composes with the rest of the library as an Online scheduler plus a
// placement generator that guarantees low-gear coverage.
package gear

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sched"
)

// Config parameterizes the gear-shifting manager.
type Config struct {
	NumDisks int
	// MinGear is the smallest powered prefix; placement must guarantee
	// every block has a replica on disks [0, MinGear).
	MinGear int
	// CapacityPerDisk is the request rate one disk absorbs comfortably;
	// the manager targets ~50% utilization of the powered prefix.
	CapacityPerDisk float64
	// HalfLife controls the decay of the arrival-rate estimate.
	HalfLife time.Duration
}

// DefaultConfig returns a sensible gear configuration for numDisks.
func DefaultConfig(numDisks int) Config {
	minGear := numDisks / 4
	if minGear < 1 {
		minGear = 1
	}
	return Config{
		NumDisks:        numDisks,
		MinGear:         minGear,
		CapacityPerDisk: 50,
		HalfLife:        30 * time.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumDisks <= 0:
		return fmt.Errorf("gear: NumDisks = %d", c.NumDisks)
	case c.MinGear < 1 || c.MinGear > c.NumDisks:
		return fmt.Errorf("gear: MinGear = %d for %d disks", c.MinGear, c.NumDisks)
	case c.CapacityPerDisk <= 0 || math.IsNaN(c.CapacityPerDisk):
		return fmt.Errorf("gear: CapacityPerDisk = %v", c.CapacityPerDisk)
	case c.HalfLife <= 0:
		return fmt.Errorf("gear: HalfLife = %s", c.HalfLife)
	}
	return nil
}

// Manager is the gear-shifting scheduler. Create one per run; it carries
// mutable rate and gear state.
type Manager struct {
	cfg Config
	loc sched.Locator

	gear    int
	rate    float64 // decayed requests/second estimate
	lastAt  time.Duration
	started bool
	shifts  int
}

// NewManager builds a gear-shifting scheduler over the placement.
func NewManager(cfg Config, loc sched.Locator) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if loc == nil {
		return nil, fmt.Errorf("gear: nil locator")
	}
	return &Manager{cfg: cfg, loc: loc, gear: cfg.MinGear}, nil
}

// Gear returns the current powered-prefix size.
func (m *Manager) Gear() int { return m.gear }

// Shifts returns how many gear changes have occurred.
func (m *Manager) Shifts() int { return m.shifts }

// Rate returns the current arrival-rate estimate in requests/second.
func (m *Manager) Rate() float64 { return m.rate }

// Name implements sched.Online.
func (m *Manager) Name() string { return "gear-shifting (PARAID-style)" }

// observe folds one arrival into the decayed rate estimate.
func (m *Manager) observe(now time.Duration) {
	if !m.started {
		m.started = true
		m.lastAt = now
		m.rate = 0
		return
	}
	dt := now - m.lastAt
	m.lastAt = now
	if dt <= 0 {
		// Concurrent arrivals: count them at the current instant.
		m.rate++
		return
	}
	decay := math.Exp2(-float64(dt) / float64(m.cfg.HalfLife))
	m.rate = m.rate*decay + 1/dt.Seconds()*(1-decay)
}

// desiredGear sizes the powered prefix for the current rate, targeting
// half-capacity utilization.
func (m *Manager) desiredGear() int {
	g := int(math.Ceil(m.rate / (m.cfg.CapacityPerDisk * 0.5)))
	if g < m.cfg.MinGear {
		g = m.cfg.MinGear
	}
	if g > m.cfg.NumDisks {
		g = m.cfg.NumDisks
	}
	return g
}

// Schedule implements sched.Online: update the load estimate, shift gear
// if warranted, and route the request to a replica inside the powered
// prefix (falling back to the lowest-numbered replica if the block has no
// copy in gear — impossible under GeneratePlacement with rf >= 2).
func (m *Manager) Schedule(req core.Request, v sched.View) core.DiskID {
	m.observe(v.Now())
	if want := m.desiredGear(); want != m.gear {
		m.gear = want
		m.shifts++
	}
	locs := m.loc(req.Block)
	if len(locs) == 0 {
		return core.InvalidDisk
	}
	best := core.InvalidDisk
	bestLoad := 0
	lowest := locs[0]
	for _, d := range locs {
		if d < lowest {
			lowest = d
		}
		if int(d) >= m.gear {
			continue
		}
		if best == core.InvalidDisk || v.Load(d) < bestLoad {
			best, bestLoad = d, v.Load(d)
		}
	}
	if best == core.InvalidDisk {
		return lowest
	}
	return best
}

var _ sched.Online = (*Manager)(nil)

// GeneratePlacement builds a gear-friendly layout: the first replica is
// uniform over all disks, the second replica lives inside the low gear
// [0, minGear), and any further replicas are uniform over the remaining
// disks — so every block is servable in the lowest gear while high gears
// spread load evenly.
func GeneratePlacement(numDisks, minGear, numBlocks, rf int, seed int64) (*placement.Placement, error) {
	switch {
	case numDisks <= 0:
		return nil, fmt.Errorf("gear: numDisks = %d", numDisks)
	case minGear < 1 || minGear > numDisks:
		return nil, fmt.Errorf("gear: minGear = %d for %d disks", minGear, numDisks)
	case rf < 1 || rf > numDisks:
		return nil, fmt.Errorf("gear: replication factor %d for %d disks", rf, numDisks)
	case numBlocks < 0:
		return nil, fmt.Errorf("gear: numBlocks = %d", numBlocks)
	}
	rng := rand.New(rand.NewSource(seed))
	locs := make([][]core.DiskID, numBlocks)
	for b := range locs {
		used := make(map[core.DiskID]struct{}, rf)
		ds := make([]core.DiskID, 0, rf)
		add := func(d core.DiskID) {
			ds = append(ds, d)
			used[d] = struct{}{}
		}
		add(core.DiskID(rng.Intn(numDisks)))
		if rf >= 2 {
			// Low-gear copy on a distinct disk in [0, minGear) when
			// possible.
			for attempts := 0; attempts < 4*minGear; attempts++ {
				d := core.DiskID(rng.Intn(minGear))
				if _, dup := used[d]; !dup {
					add(d)
					break
				}
			}
			if len(ds) == 1 && minGear > 1 {
				// Original occupies the only free low-gear slot candidates
				// hit; pick deterministically.
				for d := core.DiskID(0); int(d) < minGear; d++ {
					if _, dup := used[d]; !dup {
						add(d)
						break
					}
				}
			}
		}
		for len(ds) < rf {
			d := core.DiskID(rng.Intn(numDisks))
			if _, dup := used[d]; !dup {
				add(d)
			}
		}
		locs[b] = ds
	}
	return placement.New(numDisks, locs)
}
