package gear

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

type fakeView struct {
	now   time.Duration
	loads map[core.DiskID]int
}

func (f *fakeView) Now() time.Duration                                { return f.now }
func (f *fakeView) DiskState(core.DiskID) core.DiskState              { return core.StateStandby }
func (f *fakeView) Load(d core.DiskID) int                            { return f.loads[d] }
func (f *fakeView) LastRequestTime(core.DiskID) (time.Duration, bool) { return 0, false }

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	if err := DefaultConfig(16).Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{NumDisks: 0, MinGear: 1, CapacityPerDisk: 1, HalfLife: time.Second},
		{NumDisks: 4, MinGear: 0, CapacityPerDisk: 1, HalfLife: time.Second},
		{NumDisks: 4, MinGear: 5, CapacityPerDisk: 1, HalfLife: time.Second},
		{NumDisks: 4, MinGear: 1, CapacityPerDisk: 0, HalfLife: time.Second},
		{NumDisks: 4, MinGear: 1, CapacityPerDisk: 1, HalfLife: 0},
	}
	for _, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}

func TestGeneratePlacementLowGearCoverage(t *testing.T) {
	t.Parallel()
	const minGear = 4
	plc, err := GeneratePlacement(16, minGear, 800, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 800; b++ {
		covered := false
		for _, d := range plc.Locations(core.BlockID(b)) {
			if int(d) < minGear {
				covered = true
			}
		}
		if !covered {
			t.Fatalf("block %d has no replica in the low gear", b)
		}
	}
}

func TestGeneratePlacementProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, disksRaw, gearRaw, rfRaw uint8) bool {
		numDisks := int(disksRaw)%14 + 2
		minGear := int(gearRaw)%numDisks + 1
		rf := int(rfRaw)%numDisks + 1
		plc, err := GeneratePlacement(numDisks, minGear, 40, rf, seed)
		if err != nil {
			return false
		}
		for b := 0; b < 40; b++ {
			ls := plc.Locations(core.BlockID(b))
			if len(ls) != rf {
				return false
			}
			if rf >= 2 {
				covered := false
				for _, d := range ls {
					if int(d) < minGear {
						covered = true
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGeneratePlacementValidation(t *testing.T) {
	t.Parallel()
	if _, err := GeneratePlacement(0, 1, 10, 2, 1); err == nil {
		t.Error("accepted zero disks")
	}
	if _, err := GeneratePlacement(8, 9, 10, 2, 1); err == nil {
		t.Error("accepted minGear > disks")
	}
	if _, err := GeneratePlacement(8, 2, 10, 9, 1); err == nil {
		t.Error("accepted rf > disks")
	}
}

func TestManagerRoutesInsideGear(t *testing.T) {
	t.Parallel()
	plc, err := GeneratePlacement(16, 4, 200, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(16)
	cfg.MinGear = 4
	m, err := NewManager(cfg, plc.Locations)
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{}
	// At zero estimated load, the gear is MinGear and every decision must
	// land inside disks [0,4).
	for b := 0; b < 200; b++ {
		v.now += time.Second // keep the rate estimate near zero
		d := m.Schedule(core.Request{ID: core.RequestID(b), Block: core.BlockID(b)}, v)
		if int(d) >= 4 {
			t.Fatalf("block %d routed to disk %d outside gear 4", b, d)
		}
	}
	if m.Gear() != 4 {
		t.Errorf("gear = %d, want MinGear 4", m.Gear())
	}
}

func TestManagerShiftsUpUnderLoadAndBackDown(t *testing.T) {
	t.Parallel()
	plc, err := GeneratePlacement(16, 2, 100, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumDisks: 16, MinGear: 2, CapacityPerDisk: 10, HalfLife: 2 * time.Second}
	m, err := NewManager(cfg, plc.Locations)
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{}
	// Burst: 400 requests at 100/s ⇒ rate estimate ~100/s ⇒ desired gear
	// ceil(100/5) = 16.
	for i := 0; i < 400; i++ {
		v.now += 10 * time.Millisecond
		m.Schedule(core.Request{ID: core.RequestID(i), Block: core.BlockID(i % 100)}, v)
	}
	if m.Gear() < 8 {
		t.Errorf("gear = %d after sustained burst, want upshift", m.Gear())
	}
	upShifts := m.Shifts()
	if upShifts == 0 {
		t.Error("no gear shifts recorded")
	}
	// Quiet period: the estimate decays and the array downshifts.
	for i := 0; i < 50; i++ {
		v.now += 30 * time.Second
		m.Schedule(core.Request{ID: core.RequestID(1000 + i), Block: core.BlockID(i % 100)}, v)
	}
	if m.Gear() != 2 {
		t.Errorf("gear = %d after quiet period, want MinGear 2", m.Gear())
	}
}

func TestManagerUnplacedBlock(t *testing.T) {
	t.Parallel()
	m, err := NewManager(DefaultConfig(4), func(core.BlockID) []core.DiskID { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Schedule(core.Request{}, &fakeView{}); d != core.InvalidDisk {
		t.Errorf("got %v", d)
	}
}

func TestNewManagerValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewManager(Config{}, nil); err == nil {
		t.Error("accepted invalid config")
	}
	if _, err := NewManager(DefaultConfig(4), nil); err == nil {
		t.Error("accepted nil locator")
	}
}

// Integration: gear scheduling concentrates load on the low gear, letting
// the rest of the array sleep — less energy than random over the same
// placement.
func TestGearSavesEnergyEndToEnd(t *testing.T) {
	t.Parallel()
	const disks = 16
	plc, err := GeneratePlacement(disks, 4, 1200, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(5000, 1200, 7)
	cfg := storage.DefaultConfig()
	cfg.NumDisks = disks

	m, err := NewManager(DefaultConfig(disks), plc.Locations)
	if err != nil {
		t.Fatal(err)
	}
	gearRes, err := storage.RunOnline(cfg, plc.Locations, m, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rndRes, err := storage.RunOnline(cfg, plc.Locations, sched.NewRandom(plc.Locations, 7), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if gearRes.Energy >= rndRes.Energy {
		t.Errorf("gear energy %.0f J not below random %.0f J", gearRes.Energy, rndRes.Energy)
	}
	// High-numbered disks should sleep most of the time under gears.
	tail := gearRes.PerDisk[disks-1]
	if tail.StandbyFraction() < 0.5 {
		t.Errorf("top disk standby fraction %.2f, want mostly asleep", tail.StandbyFraction())
	}
}
