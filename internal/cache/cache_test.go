package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

type fakeView struct {
	states map[core.DiskID]core.DiskState
}

func (f *fakeView) Now() time.Duration { return 0 }
func (f *fakeView) DiskState(d core.DiskID) core.DiskState {
	if s, ok := f.states[d]; ok {
		return s
	}
	return core.StateStandby
}
func (f *fakeView) Load(core.DiskID) int                              { return 0 }
func (f *fakeView) LastRequestTime(core.DiskID) (time.Duration, bool) { return 0, false }

// oneDiskPerBlock maps block b to disk b for direct state control.
func oneDiskPerBlock(b core.BlockID) []core.DiskID { return []core.DiskID{core.DiskID(b)} }

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(0, LRU, nil); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := New(4, PowerAware, nil); err == nil {
		t.Error("accepted power-aware without locator")
	}
	if _, err := New(4, Policy(9), nil); err == nil {
		t.Error("accepted unknown policy")
	}
	if _, err := New(4, LRU, nil); err != nil {
		t.Error("rejected plain LRU without locator")
	}
}

func TestPolicyString(t *testing.T) {
	t.Parallel()
	if LRU.String() != "lru" || PowerAware.String() != "power-aware" {
		t.Error("policy names wrong")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Error("unknown policy name wrong")
	}
}

func TestLRUBasics(t *testing.T) {
	t.Parallel()
	c, err := New(2, LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{}
	if c.Access(1, v) {
		t.Error("cold access hit")
	}
	if !c.Access(1, v) {
		t.Error("warm access missed")
	}
	c.Access(2, v) // fill
	c.Access(3, v) // evicts LRU victim: block 1 is MRU after its hit, so 2... wait
	// Order after hits: 1 (hit), then 2, then 3: before inserting 3 the
	// LRU order is [2 most-recent, 1]; wait: Access(2) puts 2 in front.
	// So inserting 3 evicts 1.
	if c.Contains(1) {
		t.Error("block 1 should have been evicted (LRU)")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("recently used blocks evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.25 {
		t.Errorf("hit rate = %v, want 0.25", got)
	}
}

func TestInvalidate(t *testing.T) {
	t.Parallel()
	c, err := New(4, LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{}
	c.Access(1, v)
	c.Invalidate(1)
	if c.Contains(1) || c.Len() != 0 {
		t.Error("Invalidate left the block cached")
	}
	c.Invalidate(99) // no-op
}

func TestPowerAwareProtectsStandbyBlocks(t *testing.T) {
	t.Parallel()
	// Blocks 0 and 1 on standby disks, block 2 on a spinning disk. With
	// the cache full of {0,1,2} (2 coldest... make 2 cold): inserting 3
	// should evict 2 under power-aware even though 0 or 1 is colder.
	c, err := New(3, PowerAware, oneDiskPerBlock)
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{states: map[core.DiskID]core.DiskState{2: core.StateIdle}}
	c.Access(2, v) // coldest
	c.Access(0, v)
	c.Access(1, v)
	c.Access(3, v) // triggers eviction
	if c.Contains(2) {
		t.Error("power-aware kept the spinning-disk block over standby blocks")
	}
	if !c.Contains(0) || !c.Contains(1) {
		t.Error("power-aware evicted a standby-disk block despite a spinning candidate")
	}
	if st := c.Stats(); st.StandbyEvictions != 0 {
		t.Errorf("standby evictions = %d, want 0", st.StandbyEvictions)
	}
}

func TestPowerAwareFallsBackToLRU(t *testing.T) {
	t.Parallel()
	// Everything asleep: evict the true LRU victim and count it.
	c, err := New(2, PowerAware, oneDiskPerBlock)
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{}
	c.Access(0, v)
	c.Access(1, v)
	c.Access(2, v)
	if c.Contains(0) {
		t.Error("LRU fallback evicted the wrong block")
	}
	if st := c.Stats(); st.StandbyEvictions != 1 {
		t.Errorf("standby evictions = %d, want 1", st.StandbyEvictions)
	}
}

func TestLRUVsPowerAwareStandbyEvictions(t *testing.T) {
	t.Parallel()
	// On a random access pattern with half the disks asleep, power-aware
	// must produce no more standby evictions than LRU.
	loc := func(b core.BlockID) []core.DiskID { return []core.DiskID{core.DiskID(b % 16)} }
	v := &fakeView{states: map[core.DiskID]core.DiskState{}}
	for d := core.DiskID(0); d < 16; d += 2 {
		v.states[d] = core.StateIdle
	}
	run := func(p Policy) Stats {
		c, err := New(32, p, loc)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		zipf := placement.NewZipf(400, 0.9)
		for i := 0; i < 20000; i++ {
			c.Access(core.BlockID(zipf.Sample(rng)), v)
		}
		return c.Stats()
	}
	lru, pa := run(LRU), run(PowerAware)
	if pa.StandbyEvictions > lru.StandbyEvictions {
		t.Errorf("power-aware standby evictions %d exceed LRU's %d",
			pa.StandbyEvictions, lru.StandbyEvictions)
	}
	if pa.Evictions == 0 || lru.Evictions == 0 {
		t.Error("no evictions happened; test is vacuous")
	}
}

// Property: the cache never exceeds capacity and hit/miss counts add up.
func TestCacheInvariants(t *testing.T) {
	t.Parallel()
	f := func(seed int64, capRaw uint8, accesses []uint16) bool {
		capacity := int(capRaw)%32 + 1
		c, err := New(capacity, LRU, nil)
		if err != nil {
			return false
		}
		v := &fakeView{}
		for _, a := range accesses {
			c.Access(core.BlockID(a%64), v)
			if c.Len() > capacity {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == len(accesses) &&
			st.Misses-st.Evictions == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Integration: a cache in front of the heuristic scheduler absorbs repeat
// reads, cutting both energy and response time; writes invalidate.
func TestCachedRunSavesEnergy(t *testing.T) {
	t.Parallel()
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 16, NumBlocks: 1000, ReplicationFactor: 2, ZipfExponent: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(6000, 1000, 3)
	cfg := storage.DefaultConfig()
	cfg.NumDisks = 16
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}

	plain, err := storage.RunOnline(cfg, plc.Locations, h, reqs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(200, PowerAware, plc.Locations)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := storage.RunOnline(cfg, plc.Locations, h, reqs, storage.WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().HitRate() < 0.2 {
		t.Fatalf("hit rate %.2f too low for a Zipf stream; test is vacuous", c.Stats().HitRate())
	}
	if cached.Energy >= plain.Energy {
		t.Errorf("cached energy %.0f J not below uncached %.0f J", cached.Energy, plain.Energy)
	}
	if cached.Response.Mean() >= plain.Response.Mean() {
		t.Errorf("cached mean response %v not below uncached %v",
			cached.Response.Mean(), plain.Response.Mean())
	}
	if cached.Served != plain.Served {
		t.Errorf("served %d != %d", cached.Served, plain.Served)
	}
}
