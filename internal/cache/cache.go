// Package cache implements a block cache in front of the storage system
// with two eviction policies: plain LRU and a power-aware variant in the
// spirit of PA-LRU / PB-LRU (the paper's references 26 and 27, discussed
// as complementary techniques in Section 1): when choosing a victim,
// prefer blocks whose backing disks are spinning — re-fetching those is
// cheap — and protect blocks that live only on standby disks, because a
// miss on them forces a spin-up.
package cache

import (
	"container/list"
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// Policy selects the eviction strategy.
type Policy int

// Eviction policies.
const (
	// LRU evicts the least recently used block.
	LRU Policy = iota + 1
	// PowerAware scans the cold end of the LRU list and evicts the first
	// block with a spinning replica, falling back to plain LRU when the
	// cold candidates all live on sleeping disks.
	PowerAware
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case PowerAware:
		return "power-aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// scanDepth bounds how far PowerAware looks from the cold end; deeper
// scans protect more standby blocks but disturb recency order more.
const scanDepth = 8

// Cache is a fixed-capacity block cache. The zero value is not usable;
// call New. Not safe for concurrent use (the simulator is
// single-threaded).
type Cache struct {
	capacity int
	policy   Policy
	loc      sched.Locator
	entries  map[core.BlockID]*list.Element
	order    *list.List // front = most recent
	stats    Stats
}

// Stats counts cache activity.
type Stats struct {
	Hits      int
	Misses    int
	Evictions int
	// StandbyEvictions counts victims whose every replica was asleep at
	// eviction time — the evictions the power-aware policy tries to avoid.
	StandbyEvictions int
}

// HitRate returns Hits / (Hits + Misses), zero when empty.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// New creates a cache holding up to capacity blocks. The locator is used
// by the power-aware policy to inspect victims' disk states; plain LRU
// may pass nil.
func New(capacity int, policy Policy, loc sched.Locator) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d", capacity)
	}
	switch policy {
	case LRU:
	case PowerAware:
		if loc == nil {
			return nil, fmt.Errorf("cache: power-aware policy needs a locator")
		}
	default:
		return nil, fmt.Errorf("cache: unknown policy %d", int(policy))
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		loc:      loc,
		entries:  make(map[core.BlockID]*list.Element, capacity),
		order:    list.New(),
	}, nil
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return c.order.Len() }

// Contains reports whether the block is cached, without touching recency.
func (c *Cache) Contains(b core.BlockID) bool {
	_, ok := c.entries[b]
	return ok
}

// Access looks the block up, returning true on a hit. On a miss the block
// is admitted, evicting per policy if the cache is full. The view provides
// current disk states for the power-aware victim choice; plain LRU
// ignores it.
func (c *Cache) Access(b core.BlockID, v sched.View) bool {
	if el, ok := c.entries[b]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	if c.order.Len() >= c.capacity {
		c.evict(v)
	}
	c.entries[b] = c.order.PushFront(b)
	return false
}

// Invalidate drops a block (e.g. after an off-loaded write supersedes it).
func (c *Cache) Invalidate(b core.BlockID) {
	if el, ok := c.entries[b]; ok {
		c.order.Remove(el)
		delete(c.entries, b)
	}
}

func (c *Cache) evict(v sched.View) {
	victim := c.order.Back()
	if victim == nil {
		return
	}
	if c.policy == PowerAware && v != nil {
		if el := c.findSpinningVictim(v); el != nil {
			victim = el
		}
	}
	b := victim.Value.(core.BlockID)
	if c.policy == PowerAware || c.loc != nil {
		if v != nil && !c.anyReplicaSpinning(b, v) {
			c.stats.StandbyEvictions++
		}
	}
	c.order.Remove(victim)
	delete(c.entries, b)
	c.stats.Evictions++
}

// findSpinningVictim scans up to scanDepth entries from the cold end for a
// block with a spinning replica.
func (c *Cache) findSpinningVictim(v sched.View) *list.Element {
	el := c.order.Back()
	for i := 0; i < scanDepth && el != nil; i++ {
		b := el.Value.(core.BlockID)
		if c.anyReplicaSpinning(b, v) {
			return el
		}
		el = el.Prev()
	}
	return nil
}

func (c *Cache) anyReplicaSpinning(b core.BlockID, v sched.View) bool {
	for _, d := range c.loc(b) {
		if v.DiskState(d).Spinning() {
			return true
		}
	}
	return false
}
