// Package offload implements write off-loading [Narayanan et al., the
// paper's reference 17], the mechanism Section 2.1 assumes for keeping
// writes away from the read scheduler: a write destined for a sleeping
// disk is temporarily redirected ("off-loaded") to a disk that is already
// spinning, and written back to its home disk the next time that disk is
// up anyway.
//
// The Manager composes with any read scheduler: wrap the scheduler's
// Locator with Manager.Locations so reads of off-loaded blocks follow the
// data to its temporary holder, and route write requests through
// Manager.RouteWrite.
package offload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// Manager tracks off-loaded blocks and picks write destinations. Not safe
// for concurrent use; the simulator is single-threaded by design.
type Manager struct {
	home     sched.Locator
	numDisks int

	// holder maps an off-loaded block to the disk currently holding its
	// latest version.
	holder map[core.BlockID]core.DiskID
	// byHolder indexes off-loaded blocks by holding disk (for stats) and
	// byHome by home disk (for reclaim).
	byHome map[core.DiskID]map[core.BlockID]struct{}

	stats Stats
}

// Stats counts off-loading activity.
type Stats struct {
	Writes      int // total writes routed
	Offloaded   int // writes diverted away from a sleeping home disk
	HomeWrites  int // writes that went straight home (home was spinning)
	ForcedWakes int // writes with no spinning disk anywhere (home woken)
	Reclaims    int // blocks written back to their home disk
}

// NewManager creates a write off-loading manager over the home placement.
func NewManager(home sched.Locator, numDisks int) (*Manager, error) {
	if home == nil {
		return nil, fmt.Errorf("offload: nil home locator")
	}
	if numDisks <= 0 {
		return nil, fmt.Errorf("offload: numDisks = %d", numDisks)
	}
	return &Manager{
		home:     home,
		numDisks: numDisks,
		holder:   make(map[core.BlockID]core.DiskID),
		byHome:   make(map[core.DiskID]map[core.BlockID]struct{}),
	}, nil
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// OffloadedBlocks returns the number of blocks currently living away from
// home.
func (m *Manager) OffloadedBlocks() int { return len(m.holder) }

// Locations resolves a block for reading: an off-loaded block's latest
// version lives only on its holder; otherwise the home replicas apply.
func (m *Manager) Locations(b core.BlockID) []core.DiskID {
	if d, ok := m.holder[b]; ok {
		return []core.DiskID{d}
	}
	return m.home(b)
}

// RouteWrite picks the disk to absorb a write at the current instant:
//
//  1. if any home replica is spinning, write home (and reclaim any stale
//     off-loaded copy);
//  2. otherwise divert to the spinning disk with the lowest load;
//  3. if nothing in the system is spinning, wake the home disk (counted
//     as a forced wake).
func (m *Manager) RouteWrite(req core.Request, v sched.View) core.DiskID {
	if !req.Write {
		panic(fmt.Sprintf("offload: RouteWrite on read request %v", req))
	}
	m.stats.Writes++
	homes := m.home(req.Block)
	if len(homes) == 0 {
		return core.InvalidDisk
	}
	// Home first: cheapest and immediately durable in place.
	for _, d := range homes {
		if v.DiskState(d).Spinning() || v.DiskState(d) == core.StateSpinUp {
			m.stats.HomeWrites++
			m.markHome(req.Block)
			return d
		}
	}
	// Divert to the least-loaded spinning disk.
	best := core.InvalidDisk
	bestLoad := 0
	for d := core.DiskID(0); int(d) < m.numDisks; d++ {
		if !v.DiskState(d).Spinning() && v.DiskState(d) != core.StateSpinUp {
			continue
		}
		if best == core.InvalidDisk || v.Load(d) < bestLoad {
			best, bestLoad = d, v.Load(d)
		}
	}
	if best != core.InvalidDisk {
		m.stats.Offloaded++
		m.markOffloaded(req.Block, homes[0], best)
		return best
	}
	// Whole system asleep: wake home.
	m.stats.ForcedWakes++
	m.markHome(req.Block)
	return homes[0]
}

func (m *Manager) markOffloaded(b core.BlockID, home, holder core.DiskID) {
	m.clear(b)
	m.holder[b] = holder
	set := m.byHome[home]
	if set == nil {
		set = make(map[core.BlockID]struct{})
		m.byHome[home] = set
	}
	set[b] = struct{}{}
}

// markHome records that the block's latest version is at home again.
func (m *Manager) markHome(b core.BlockID) { m.clear(b) }

func (m *Manager) clear(b core.BlockID) {
	if _, ok := m.holder[b]; !ok {
		return
	}
	delete(m.holder, b)
	for home, set := range m.byHome {
		if _, ok := set[b]; ok {
			delete(set, b)
			if len(set) == 0 {
				delete(m.byHome, home)
			}
			break
		}
	}
}

// ReclaimSpinning writes back every off-loaded block whose home disk is
// currently spinning, returning how many were reclaimed. The write-back
// I/O itself is milliseconds-scale and modeled as free, consistent with
// the paper's time-scale argument (Section 2.1); the caller decides when
// to invoke it (the Scheduler wrapper does so on every decision).
func (m *Manager) ReclaimSpinning(v sched.View) int {
	n := 0
	for home, set := range m.byHome {
		if !v.DiskState(home).Spinning() {
			continue
		}
		for b := range set {
			delete(m.holder, b)
			n++
		}
		delete(m.byHome, home)
	}
	m.stats.Reclaims += n
	return n
}

// Scheduler wraps a read scheduler with write off-loading: writes go
// through the Manager, reads through the inner scheduler (which must have
// been built over Manager.Locations so redirected reads follow the data).
type Scheduler struct {
	Manager *Manager
	Reads   sched.Online
}

// Name implements sched.Online.
func (s Scheduler) Name() string {
	return fmt.Sprintf("%s + write off-loading", s.Reads.Name())
}

// Schedule implements sched.Online.
func (s Scheduler) Schedule(req core.Request, v sched.View) core.DiskID {
	s.Manager.ReclaimSpinning(v)
	if req.Write {
		return s.Manager.RouteWrite(req, v)
	}
	return s.Reads.Schedule(req, v)
}

var _ sched.Online = Scheduler{}

// WithWrites marks a deterministic pseudo-random fraction of a request
// stream as writes (for building mixed read/write workloads from the
// read-only generators). The fraction must lie in [0,1].
func WithWrites(reqs []core.Request, fraction float64, seed int64) []core.Request {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("offload: write fraction %v outside [0,1]", fraction))
	}
	out := make([]core.Request, len(reqs))
	copy(out, reqs)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i].Write = float64(state%1e9)/1e9 < fraction
	}
	return out
}
