package offload

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fakeView mirrors the one in package sched's tests.
type fakeView struct {
	now    time.Duration
	states map[core.DiskID]core.DiskState
	loads  map[core.DiskID]int
}

func (f *fakeView) Now() time.Duration { return f.now }
func (f *fakeView) DiskState(d core.DiskID) core.DiskState {
	if s, ok := f.states[d]; ok {
		return s
	}
	return core.StateStandby
}
func (f *fakeView) Load(d core.DiskID) int                            { return f.loads[d] }
func (f *fakeView) LastRequestTime(core.DiskID) (time.Duration, bool) { return 0, false }

func homeLoc(b core.BlockID) []core.DiskID {
	return [][]core.DiskID{{0, 1}, {2}}[b]
}

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(homeLoc, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewManager(nil, 4); err == nil {
		t.Error("accepted nil locator")
	}
	if _, err := NewManager(homeLoc, 0); err == nil {
		t.Error("accepted zero disks")
	}
}

func TestRouteWritePrefersSpinningHome(t *testing.T) {
	t.Parallel()
	m := newManager(t)
	v := &fakeView{states: map[core.DiskID]core.DiskState{
		0: core.StateStandby,
		1: core.StateIdle, // second home replica is up
		3: core.StateIdle, // a foreign disk is also up
	}}
	d := m.RouteWrite(core.Request{ID: 0, Block: 0, Write: true}, v)
	if d != 1 {
		t.Errorf("write routed to %v, want spinning home replica 1", d)
	}
	if m.OffloadedBlocks() != 0 {
		t.Error("home write left the block marked off-loaded")
	}
	if st := m.Stats(); st.HomeWrites != 1 || st.Offloaded != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRouteWriteOffloadsToLeastLoadedSpinningDisk(t *testing.T) {
	t.Parallel()
	m := newManager(t)
	v := &fakeView{
		states: map[core.DiskID]core.DiskState{
			// Homes 0 and 1 asleep; foreign disks 2 and 3 spinning.
			2: core.StateActive,
			3: core.StateIdle,
		},
		loads: map[core.DiskID]int{2: 5, 3: 0},
	}
	d := m.RouteWrite(core.Request{ID: 0, Block: 0, Write: true}, v)
	if d != 3 {
		t.Errorf("write routed to %v, want least-loaded spinning disk 3", d)
	}
	// Reads of the block must now follow it to the holder.
	if got := m.Locations(0); len(got) != 1 || got[0] != 3 {
		t.Errorf("Locations after offload = %v, want [3]", got)
	}
	if m.OffloadedBlocks() != 1 {
		t.Errorf("offloaded blocks = %d", m.OffloadedBlocks())
	}
}

func TestRouteWriteForcedWakeWhenAllAsleep(t *testing.T) {
	t.Parallel()
	m := newManager(t)
	v := &fakeView{} // everything standby
	d := m.RouteWrite(core.Request{ID: 0, Block: 0, Write: true}, v)
	if d != 0 {
		t.Errorf("write routed to %v, want home 0", d)
	}
	if st := m.Stats(); st.ForcedWakes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRouteWritePanicsOnRead(t *testing.T) {
	t.Parallel()
	m := newManager(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	m.RouteWrite(core.Request{Block: 0}, &fakeView{})
}

func TestReclaimRestoresHomeLocations(t *testing.T) {
	t.Parallel()
	m := newManager(t)
	asleep := &fakeView{states: map[core.DiskID]core.DiskState{3: core.StateIdle}}
	if d := m.RouteWrite(core.Request{Block: 0, Write: true}, asleep); d != 3 {
		t.Fatalf("offload went to %v", d)
	}
	// Home still asleep: reclaim is a no-op.
	if n := m.ReclaimSpinning(asleep); n != 0 {
		t.Fatalf("reclaimed %d with home asleep", n)
	}
	// Home wakes: the block returns home.
	awake := &fakeView{states: map[core.DiskID]core.DiskState{0: core.StateIdle, 3: core.StateIdle}}
	if n := m.ReclaimSpinning(awake); n != 1 {
		t.Fatalf("reclaimed %d, want 1", n)
	}
	if got := m.Locations(0); len(got) != 2 || got[0] != 0 {
		t.Errorf("Locations after reclaim = %v, want home replicas", got)
	}
	if m.OffloadedBlocks() != 0 {
		t.Error("block still marked off-loaded after reclaim")
	}
}

func TestHomeWriteSupersedesOffloadedCopy(t *testing.T) {
	t.Parallel()
	m := newManager(t)
	asleep := &fakeView{states: map[core.DiskID]core.DiskState{3: core.StateIdle}}
	m.RouteWrite(core.Request{Block: 0, Write: true}, asleep)
	// A later write while home is up drops the stale off-loaded copy.
	awake := &fakeView{states: map[core.DiskID]core.DiskState{0: core.StateIdle, 3: core.StateIdle}}
	if d := m.RouteWrite(core.Request{Block: 0, Write: true}, awake); d != 0 {
		t.Fatalf("home write routed to %v", d)
	}
	if m.OffloadedBlocks() != 0 {
		t.Error("stale off-loaded copy survived a home write")
	}
}

func TestSchedulerSplitsReadsAndWrites(t *testing.T) {
	t.Parallel()
	m := newManager(t)
	inner := sched.Static{Locations: m.Locations}
	s := Scheduler{Manager: m, Reads: inner}
	if name := s.Name(); name != "static + write off-loading" {
		t.Errorf("Name = %q", name)
	}
	v := &fakeView{states: map[core.DiskID]core.DiskState{3: core.StateIdle}}
	// Write to sleeping home: off-loaded to disk 3.
	if d := s.Schedule(core.Request{ID: 0, Block: 0, Write: true}, v); d != 3 {
		t.Fatalf("write -> %v, want 3", d)
	}
	// Read of the off-loaded block follows it.
	if d := s.Schedule(core.Request{ID: 1, Block: 0}, v); d != 3 {
		t.Fatalf("read of off-loaded block -> %v, want 3", d)
	}
	// Read of an untouched block goes to its home.
	if d := s.Schedule(core.Request{ID: 2, Block: 1}, v); d != 2 {
		t.Fatalf("read -> %v, want home 2", d)
	}
}

func TestWithWrites(t *testing.T) {
	t.Parallel()
	reqs := workload.CelloLike(4000, 1000, 1)
	mixed := WithWrites(reqs, 0.3, 9)
	writes := 0
	for i, r := range mixed {
		if r.Write {
			writes++
		}
		if r.ID != reqs[i].ID || r.Block != reqs[i].Block {
			t.Fatal("WithWrites mutated request identity")
		}
	}
	frac := float64(writes) / float64(len(mixed))
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("write fraction = %.3f, want ~0.3", frac)
	}
	// Deterministic for a seed, input untouched.
	again := WithWrites(reqs, 0.3, 9)
	for i := range mixed {
		if mixed[i].Write != again[i].Write {
			t.Fatal("WithWrites not deterministic")
		}
	}
	for _, r := range reqs {
		if r.Write {
			t.Fatal("WithWrites mutated its input")
		}
	}
}

func TestWithWritesPanicsOnBadFraction(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	WithWrites(nil, 1.5, 1)
}

// Integration: on a mixed workload, off-loading writes saves energy over
// sending every write to its (often sleeping) home disk.
func TestOffloadingSavesEnergyOnMixedWorkload(t *testing.T) {
	t.Parallel()
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 16, NumBlocks: 1200, ReplicationFactor: 2, ZipfExponent: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := WithWrites(workload.CelloLike(5000, 1200, 4), 0.4, 4)
	cfg := storage.DefaultConfig()
	cfg.NumDisks = 16
	cost := sched.DefaultCost(cfg.Power)

	// Baseline: writes treated like reads by the heuristic over home
	// replicas only.
	baseline, err := storage.RunOnline(cfg, plc.Locations,
		sched.Heuristic{Locations: plc.Locations, Cost: cost}, reqs)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(plc.Locations, 16)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Scheduler{
		Manager: m,
		Reads:   sched.Heuristic{Locations: m.Locations, Cost: cost},
	}
	offloaded, err := storage.RunOnline(cfg, m.Locations, wrapped, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if offloaded.Energy >= baseline.Energy {
		t.Errorf("off-loading energy %.0f J not below baseline %.0f J", offloaded.Energy, baseline.Energy)
	}
	st := m.Stats()
	if st.Writes == 0 || st.Offloaded == 0 {
		t.Errorf("no off-loading activity: %+v", st)
	}
	if st.Writes != 0 && st.HomeWrites+st.Offloaded+st.ForcedWakes != st.Writes {
		t.Errorf("write accounting inconsistent: %+v", st)
	}
}
