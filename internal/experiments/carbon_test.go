package experiments

import (
	"strings"
	"testing"

	"repro/internal/account"
)

func TestCarbonAndWhatIfTablesAreCacheHits(t *testing.T) {
	s := cacheScale(41)
	g := account.FlatGrid()
	cm := account.DefaultCostModel()

	ct, err := CarbonTable(s, Cello, g, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Rows) != len(Algorithms()) {
		t.Fatalf("carbon table has %d rows, want %d", len(ct.Rows), len(Algorithms()))
	}
	for _, row := range ct.Rows {
		var e, gc float64
		if _, err := fmtSscan(row[1], &e); err != nil || e <= 0 {
			t.Fatalf("row %v: bad energy", row)
		}
		if _, err := fmtSscan(row[2], &gc); err != nil || gc <= 0 {
			t.Fatalf("row %v: bad gCO2e", row)
		}
		// Flat grid: gCO2e must be exactly energy × intensity / kWh.
		want := g.Steps[0].Intensity * e / account.JoulesPerKWh
		if rel := (gc - want) / want; rel > 1e-4 || rel < -1e-4 {
			t.Fatalf("row %v: gCO2e %v inconsistent with energy %v (want %v)", row, gc, e, want)
		}
	}

	// The what-if table must come from the same cached sweep (no fresh
	// simulation) and cover every algorithm at every ratio.
	misses := DefaultSweepCache().Stats().Misses
	wt, err := WhatIfTable(s, Cello, g, cm)
	if err != nil {
		t.Fatal(err)
	}
	if got := DefaultSweepCache().Stats().Misses; got != misses {
		t.Fatalf("what-if simulated fresh: misses %d -> %d", misses, got)
	}
	if want := len(Algorithms()) * len(WhatIfRatios()); len(wt.Rows) != want {
		t.Fatalf("what-if table has %d rows, want %d", len(wt.Rows), want)
	}
	// Consolidating must not increase total cost for any policy: fewer
	// spindles mean less floor energy and less amortized capex.
	for i := 0; i < len(wt.Rows); i += len(WhatIfRatios()) {
		var full, cons float64
		if _, err := fmtSscan(wt.Rows[i][5], &full); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(wt.Rows[i+len(WhatIfRatios())-1][5], &cons); err != nil {
			t.Fatal(err)
		}
		if cons >= full {
			t.Fatalf("%s: consolidated total $%v >= measured $%v", wt.Rows[i][0], cons, full)
		}
		if wt.Rows[i][6] != "-" || !strings.HasPrefix(wt.Rows[i+1][6], "-") {
			t.Fatalf("delta column malformed: %v / %v", wt.Rows[i], wt.Rows[i+1])
		}
	}
	if !strings.Contains(wt.Render(), "What-if consolidation") {
		t.Fatal("what-if table renders without its title")
	}
}
