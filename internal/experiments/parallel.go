package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// runParallel executes n independent jobs over a bounded worker pool and
// returns the first error. Simulation cells share only read-only inputs
// (request streams, placements), so cells parallelize safely; workers
// default to half the CPUs to bound the memory of concurrent MWIS graphs.
func runParallel(n, workers int, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)/2 + 1
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := job(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiments: job %d: %w", i, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
