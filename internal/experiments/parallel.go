package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// runParallel executes n independent jobs over a bounded worker pool and
// returns the first error. The pool fails fast: after any job errors, no
// further jobs start (in-flight jobs finish). Simulation cells share only
// read-only inputs (request streams, placements), so cells parallelize
// safely; workers default to just over half the CPUs (GOMAXPROCS/2 + 1) to
// bound the memory of concurrent MWIS graphs. A non-nil tracker receives
// each cell's start and completion (see Monitor); nil is a no-op.
func runParallel(n, workers int, tk *SweepTracker, job func(i int) error) error {
	defer tk.Finish()
	if tk != nil {
		inner := job
		job = func(i int) error {
			tk.cellStart(i)
			err := inner(i)
			tk.cellEnd(i, err)
			return err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)/2 + 1
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return fmt.Errorf("experiments: job %d: %w", i, err)
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case i, ok := <-jobs:
					if !ok {
						return
					}
					if err := job(i); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("experiments: job %d: %w", i, err)
							close(done)
						}
						mu.Unlock()
					}
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
