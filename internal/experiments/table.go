package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of strings that
// prints as an aligned text table (Render) or tab-separated values (TSV).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row from formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the table as aligned monospace text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(t.Header) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// TSV returns the table as tab-separated values (no title).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}
