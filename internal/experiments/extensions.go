package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/dpm"
	"repro/internal/gear"
	"repro/internal/offline"
	"repro/internal/offload"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/storage"
)

// This file holds experiments beyond the paper's figures: the extensions
// its text sketches (write off-loading, Section 2.1; prediction-based
// costs, Section 3.3; HDFS-style placement, Section 7) and the
// complementary techniques its related work surveys (power-aware caching).
// cmd/figures -ext regenerates them.

// ExtensionOffload compares the heuristic scheduler with and without write
// off-loading across write fractions: off-loading keeps writes from waking
// sleeping home disks (Section 2.1's assumed mechanism, built in
// internal/offload).
func ExtensionOffload(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	base := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks
	cost := sched.DefaultCost(cfg.Power)

	t := &Table{
		Title: fmt.Sprintf("Extension: write off-loading at replication factor 3 (%s)", tr),
		Header: []string{"write fraction", "baseline energy", "off-load energy", "saving",
			"off-loaded writes", "forced wakes"},
	}
	for _, frac := range []float64{0.1, 0.3, 0.5} {
		reqs := offload.WithWrites(base, frac, s.Seed+3)
		baseline, err := storage.RunOnline(cfg, plc.Locations,
			sched.Heuristic{Locations: plc.Locations, Cost: cost}, reqs)
		if err != nil {
			return nil, err
		}
		m, err := offload.NewManager(plc.Locations, s.NumDisks)
		if err != nil {
			return nil, err
		}
		wrapped := offload.Scheduler{
			Manager: m,
			Reads:   sched.Heuristic{Locations: m.Locations, Cost: cost},
		}
		offloaded, err := storage.RunOnline(cfg, m.Locations, wrapped, reqs)
		if err != nil {
			return nil, err
		}
		st := m.Stats()
		t.AddRow(fmt.Sprintf("%.1f", frac),
			fmt.Sprintf("%.3f", baseline.NormalizedEnergy()),
			fmt.Sprintf("%.3f", offloaded.NormalizedEnergy()),
			fmt.Sprintf("%.1f%%", 100*(1-offloaded.Energy/baseline.Energy)),
			fmt.Sprint(st.Offloaded),
			fmt.Sprint(st.ForcedWakes))
	}
	return t, nil
}

// ExtensionCache compares LRU against power-aware eviction across cache
// sizes (the complementary technique of the paper's references 26/27).
func ExtensionCache(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}

	t := &Table{
		Title: fmt.Sprintf("Extension: block cache in front of the heuristic scheduler (%s, rf=3)", tr),
		Header: []string{"capacity (blocks)", "policy", "hit rate", "norm energy",
			"mean response", "standby evictions"},
	}
	uncached, err := storage.RunOnline(cfg, plc.Locations, h, reqs)
	if err != nil {
		return nil, err
	}
	t.AddRow("0", "none", "0.00", fmt.Sprintf("%.3f", uncached.NormalizedEnergy()),
		uncached.Response.Mean().Round(time.Millisecond).String(), "-")
	for _, capacity := range []int{s.NumBlocks / 100, s.NumBlocks / 20, s.NumBlocks / 5} {
		if capacity < 1 {
			capacity = 1
		}
		for _, pol := range []cache.Policy{cache.LRU, cache.PowerAware} {
			c, err := cache.New(capacity, pol, plc.Locations)
			if err != nil {
				return nil, err
			}
			res, err := storage.RunOnline(cfg, plc.Locations, h, reqs, storage.WithCache(c))
			if err != nil {
				return nil, err
			}
			st := c.Stats()
			t.AddRow(fmt.Sprint(capacity), pol.String(),
				fmt.Sprintf("%.2f", st.HitRate()),
				fmt.Sprintf("%.3f", res.NormalizedEnergy()),
				res.Response.Mean().Round(time.Millisecond).String(),
				fmt.Sprint(st.StandbyEvictions))
		}
	}
	return t, nil
}

// ExtensionRackAware compares the paper's uniform-replica layout against
// an HDFS-style rack-aware layout (the deployment target named in the
// conclusion) under the heuristic and WSC schedulers.
func ExtensionRackAware(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks
	cost := sched.DefaultCost(cfg.Power)
	numRacks := s.NumDisks / 6
	if numRacks < 2 {
		numRacks = 2
	}

	t := &Table{
		Title:  fmt.Sprintf("Extension: uniform vs HDFS rack-aware replica placement (%s, %d racks)", tr, numRacks),
		Header: []string{"replication", "layout", "heuristic energy", "wsc energy"},
	}
	for _, rf := range []int{2, 3} {
		uniform, err := makePlacement(s, rf, 1)
		if err != nil {
			return nil, err
		}
		rack, err := placement.GenerateRackAware(placement.RackConfig{
			NumDisks: s.NumDisks, NumRacks: numRacks, NumBlocks: s.NumBlocks,
			ReplicationFactor: rf, ZipfExponent: 1, Seed: s.Seed + 7,
		})
		if err != nil {
			return nil, err
		}
		for _, layout := range []struct {
			name string
			plc  *placement.Placement
		}{{"uniform", uniform}, {"rack-aware", rack}} {
			hRes, err := storage.RunOnline(cfg, layout.plc.Locations,
				sched.Heuristic{Locations: layout.plc.Locations, Cost: cost}, reqs)
			if err != nil {
				return nil, err
			}
			wRes, err := storage.RunBatch(cfg, layout.plc.Locations,
				sched.WSC{Locations: layout.plc.Locations, Cost: cost}, reqs, s.BatchInterval)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprint(rf), layout.name,
				fmt.Sprintf("%.3f", hRes.NormalizedEnergy()),
				fmt.Sprintf("%.3f", wRes.NormalizedEnergy()))
		}
	}
	return t, nil
}

// ExtensionPredictive compares the online heuristic against the
// prediction-discounted variant of Section 3.3.
func ExtensionPredictive(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks
	cost := sched.DefaultCost(cfg.Power)

	t := &Table{
		Title:  fmt.Sprintf("Extension: prediction-discounted cost function (%s)", tr),
		Header: []string{"replication", "heuristic energy", "predictive energy", "heuristic mean", "predictive mean"},
	}
	for _, rf := range []int{2, 3, 5} {
		plc, err := makePlacement(s, rf, 1)
		if err != nil {
			return nil, err
		}
		hRes, err := storage.RunOnline(cfg, plc.Locations,
			sched.Heuristic{Locations: plc.Locations, Cost: cost}, reqs)
		if err != nil {
			return nil, err
		}
		pred, err := sched.NewPredictive(plc.Locations, cost, 0.5, cfg.Power.Breakeven())
		if err != nil {
			return nil, err
		}
		pRes, err := storage.RunOnline(cfg, plc.Locations, pred, reqs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(rf),
			fmt.Sprintf("%.3f", hRes.NormalizedEnergy()),
			fmt.Sprintf("%.3f", pRes.NormalizedEnergy()),
			hRes.Response.Mean().Round(time.Millisecond).String(),
			pRes.Response.Mean().Round(time.Millisecond).String())
	}
	return t, nil
}

// ExtensionDPM evaluates single-disk power-management policies on the
// per-disk idle-gap sequences induced by the static schedule: the analytic
// backdrop for the paper's 2CPM choice (Section 1).
func ExtensionDPM(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 1, 1)
	if err != nil {
		return nil, err
	}
	pwr := storage.DefaultConfig().Power

	// Per-disk request times under static routing.
	perDisk := make(map[core.DiskID][]time.Duration)
	for _, r := range reqs {
		d := plc.Original(r.Block)
		perDisk[d] = append(perDisk[d], r.Arrival)
	}
	var gaps []time.Duration
	for _, times := range perDisk {
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		gaps = append(gaps, dpm.Gaps(times)...)
	}
	oracle := dpm.OracleCost(pwr, gaps)

	t := &Table{
		Title: fmt.Sprintf("Extension: single-disk power-management policies over %d idle gaps (%s)",
			len(gaps), tr),
		Header: []string{"policy", "energy (J)", "vs oracle"},
	}
	t.AddRow("offline oracle", fmt.Sprintf("%.0f", oracle), "1.000")
	tau := dpm.OptimalThreshold(pwr)
	for _, p := range []dpm.GapPolicy{
		dpm.Fixed{Tau: tau},
		dpm.Fixed{Tau: tau / 4},
		dpm.Fixed{Tau: tau * 4},
		dpm.NeverSpinDown{},
		dpm.Immediate{},
		dpm.EWMAPredictive{Alpha: 0.5, Breakeven: tau},
	} {
		cost := dpm.PolicyCost(pwr, gaps, p)
		t.AddRow(p.Name(), fmt.Sprintf("%.0f", cost), fmt.Sprintf("%.3f", cost/oracle))
	}
	return t, nil
}

// ExtensionDiscipline compares disk queue disciplines under the heuristic
// scheduler at replication factor 3.
func ExtensionDiscipline(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: disk queue disciplines (%s, rf=3, heuristic)", tr),
		Header: []string{"discipline", "norm energy", "mean response", "p99 response"},
	}
	for _, disc := range []diskmodel.Discipline{diskmodel.FIFO, diskmodel.SSTF, diskmodel.SCAN} {
		cfg := storage.DefaultConfig()
		cfg.NumDisks = s.NumDisks
		cfg.Discipline = disc
		res, err := storage.RunOnline(cfg, plc.Locations,
			sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}, reqs)
		if err != nil {
			return nil, err
		}
		t.AddRow(disc.String(),
			fmt.Sprintf("%.3f", res.NormalizedEnergy()),
			res.Response.Mean().Round(time.Millisecond).String(),
			res.Response.Percentile(99).Round(time.Millisecond).String())
	}
	return t, nil
}

// Extensions runs every extension experiment, returning the tables in
// presentation order.
func Extensions(s Scale, tr Trace) ([]*Table, error) {
	type gen func(Scale, Trace) (*Table, error)
	var out []*Table
	for _, g := range []gen{
		ExtensionOffload, ExtensionCache, ExtensionRackAware,
		ExtensionPredictive, ExtensionDPM, ExtensionDiscipline,
		ExtensionGear, ExtensionFailures, ExtensionThreshold,
	} {
		t, err := g(s, tr)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ExtensionGear compares the paper's replica-scheduling approach against a
// PARAID-style gear-shifting array (references [13]/[25]) on the same
// trace: gears use a coverage-constrained placement, the heuristic uses
// the paper's uniform-replica placement, both at replication factor 2.
func ExtensionGear(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks

	t := &Table{
		Title:  fmt.Sprintf("Extension: gear-shifting (PARAID-style) vs energy-aware scheduling (%s, rf=2)", tr),
		Header: []string{"system", "norm energy", "spin-ups", "mean response"},
	}

	// Gear-shifting over its coverage placement.
	gearPlc, err := gear.GeneratePlacement(s.NumDisks, s.NumDisks/4+1, s.NumBlocks, 2, s.Seed+9)
	if err != nil {
		return nil, err
	}
	gm, err := gear.NewManager(gear.DefaultConfig(s.NumDisks), gearPlc.Locations)
	if err != nil {
		return nil, err
	}
	gearRes, err := storage.RunOnline(cfg, gearPlc.Locations, gm, reqs)
	if err != nil {
		return nil, err
	}
	t.AddRow("gear-shifting", fmt.Sprintf("%.3f", gearRes.NormalizedEnergy()),
		fmt.Sprint(gearRes.SpinUps), gearRes.Response.Mean().Round(time.Millisecond).String())

	// The paper's heuristic over the uniform-replica placement.
	plc, err := makePlacement(s, 2, 1)
	if err != nil {
		return nil, err
	}
	heurRes, err := storage.RunOnline(cfg, plc.Locations,
		sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}, reqs)
	if err != nil {
		return nil, err
	}
	t.AddRow("energy-aware heuristic", fmt.Sprintf("%.3f", heurRes.NormalizedEnergy()),
		fmt.Sprint(heurRes.SpinUps), heurRes.Response.Mean().Round(time.Millisecond).String())

	// Gear manager routed through the heuristic's placement for an
	// apples-to-apples schedule comparison.
	gm2, err := gear.NewManager(gear.DefaultConfig(s.NumDisks), plc.Locations)
	if err != nil {
		return nil, err
	}
	mixed, err := storage.RunOnline(cfg, plc.Locations, gm2, reqs)
	if err != nil {
		return nil, err
	}
	t.AddRow("gear-shifting (uniform placement)", fmt.Sprintf("%.3f", mixed.NormalizedEnergy()),
		fmt.Sprint(mixed.SpinUps), mixed.Response.Mean().Round(time.Millisecond).String())
	return t, nil
}

// ExtensionFailures measures availability and energy under disk failures:
// a sweep over the number of simultaneously failed disks, reporting how
// replication absorbs outages (the fault-tolerance role the paper's
// scheduler piggybacks on).
func ExtensionFailures(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
	horizon := offline.Horizon(reqs, cfg.Power)

	t := &Table{
		Title: fmt.Sprintf("Extension: disk failures under the heuristic scheduler (%s, rf=3, outage spans the whole trace)", tr),
		Header: []string{"failed disks", "served", "unavailable", "re-dispatched",
			"norm energy", "mean response"},
	}
	for _, failed := range []int{0, 1, 3, 9} {
		var events []storage.FailureEvent
		for d := 0; d < failed; d++ {
			events = append(events, storage.FailureEvent{
				Disk:     core.DiskID(d * (s.NumDisks / (failed + 1))),
				At:       time.Second,
				Duration: horizon,
			})
		}
		res, err := storage.RunOnline(cfg, plc.Locations, h, reqs, storage.WithFailures(events...))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(failed),
			fmt.Sprint(res.Served),
			fmt.Sprint(res.Unavailable),
			fmt.Sprint(res.Redispatched),
			fmt.Sprintf("%.3f", res.NormalizedEnergy()),
			res.Response.Mean().Round(time.Millisecond).String())
	}
	return t, nil
}

// ExtensionThreshold ablates the power manager's idleness threshold around
// the 2CPM breakeven value: shorter thresholds spin down eagerly (more
// transitions, worse tails), longer ones idle away the savings. The paper
// fixes T_B = E_up/down / P_I; this sweep shows that choice is at the knee.
func ExtensionThreshold(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	base := storage.DefaultConfig()
	tb := base.Power.Breakeven()

	t := &Table{
		Title:  fmt.Sprintf("Extension: idleness-threshold ablation around T_B (%s, rf=3, heuristic)", tr),
		Header: []string{"threshold", "norm energy", "spin-ups", "mean response"},
	}
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		cfg := base
		cfg.NumDisks = s.NumDisks
		cfg.Policy = power.FixedThreshold{Idle: time.Duration(float64(tb) * mult)}
		res, err := storage.RunOnline(cfg, plc.Locations,
			sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}, reqs)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.2fx T_B", mult)
		if mult == 1 {
			label = "T_B (2CPM)"
		}
		t.AddRow(label,
			fmt.Sprintf("%.3f", res.NormalizedEnergy()),
			fmt.Sprint(res.SpinUps),
			res.Response.Mean().Round(time.Millisecond).String())
	}
	// Always-on anchor.
	cfg := base
	cfg.NumDisks = s.NumDisks
	cfg.Policy = power.AlwaysOn{}
	cfg.InitialState = core.StateIdle
	res, err := storage.RunOnline(cfg, plc.Locations,
		sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}, reqs)
	if err != nil {
		return nil, err
	}
	t.AddRow("always-on", fmt.Sprintf("%.3f", res.NormalizedEnergy()),
		fmt.Sprint(res.SpinUps), res.Response.Mean().Round(time.Millisecond).String())
	return t, nil
}
