package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
)

// SweepCache is a content-addressed memo of replication sweeps. The paper
// derives Figures 6/7/8/13 from one Cello sweep and Figures 14/15/16 from
// one Financial sweep; the cache makes that sharing explicit: the first
// Sweep call for a (Scale, Trace, cost, system-config) key simulates, every
// later call returns the stored result. An optional on-disk tier (SetDir)
// persists results across processes for cmd/figures; entries are keyed by
// the same canonical hash, so any input change simply misses and old files
// become unreachable. Corrupt or mismatched disk entries are ignored and
// recomputed.
//
// Two kinds of callers bypass the cache by construction: Scale.Doctor runs
// (runtime verification must observe a live event stream, so a memoized
// result would defeat the monitors) and, trivially, any key never seen.
// Telemetry (Scale.Monitor) is excluded from the key — it never influences
// results — and a cache hit reports its cells to the monitor as instantly
// completed.
type SweepCache struct {
	mu      sync.Mutex
	entries map[string]*sweepEntry
	dir     string

	hits     atomic.Uint64 // in-memory hits
	diskHits atomic.Uint64 // on-disk tier hits (subset of misses on memory)
	misses   atomic.Uint64 // full simulations
	bypasses atomic.Uint64 // doctored sweeps served fresh, uncached
}

// sweepEntry is one single-flight slot: concurrent Sweep calls for the same
// key share one computation.
type sweepEntry struct {
	once sync.Once
	sw   *ReplicationSweep
	err  error
	disk bool // filled from the on-disk tier rather than simulated
}

// NewSweepCache returns an empty cache with no on-disk tier.
func NewSweepCache() *SweepCache {
	return &SweepCache{entries: make(map[string]*sweepEntry)}
}

// defaultSweepCache is the process-wide tier shared by SweepReplication and
// every figure function.
var defaultSweepCache = NewSweepCache()

// DefaultSweepCache returns the process-wide cache consulted by
// SweepReplication.
func DefaultSweepCache() *SweepCache { return defaultSweepCache }

// SetDir enables the on-disk tier rooted at dir (created if missing); an
// empty dir disables it. Call before the first Sweep.
func (c *SweepCache) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
	return nil
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits     uint64 // served from memory
	DiskHits uint64 // served from the on-disk tier
	Misses   uint64 // simulated
	Bypasses uint64 // doctored sweeps served fresh, uncached
}

// Stats returns the cache's counters.
func (c *SweepCache) Stats() CacheStats {
	return CacheStats{
		Hits:     c.hits.Load(),
		DiskHits: c.diskHits.Load(),
		Misses:   c.misses.Load(),
		Bypasses: c.bypasses.Load(),
	}
}

// String renders the counters ("hits=3 disk_hits=0 misses=1 bypasses=0").
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d disk_hits=%d misses=%d bypasses=%d",
		s.Hits, s.DiskHits, s.Misses, s.Bypasses)
}

// sweepKey computes the canonical content hash of everything a replication
// sweep's results depend on: every Scale value field, the trace, the sweep
// axes (replication factors, algorithm set), the cost function and the
// storage system configuration. Monitor (telemetry) and Doctor
// (verification) never influence results and are excluded — doctored runs
// bypass the cache entirely.
func sweepKey(s Scale, tr Trace, cost sched.CostConfig) string {
	ks := s
	ks.Monitor = nil // pointer: nondeterministic and result-neutral
	ks.Doctor = false
	ks.FlightDir = "" // recorder is an observer, never a participant
	ks.Shards = 0     // kernel sharding is bit-identical, so shard counts share entries
	h := sha256.New()
	fmt.Fprintf(h, "replication-sweep-v1\n")
	fmt.Fprintf(h, "scale=%+v\n", ks)
	fmt.Fprintf(h, "trace=%d\n", int(tr))
	fmt.Fprintf(h, "rfs=%v\n", ReplicationFactors())
	fmt.Fprintf(h, "algos=%q\n", Algorithms())
	fmt.Fprintf(h, "cost=%+v\n", cost)
	fmt.Fprintf(h, "storage=%+v\n", storage.DefaultConfig())
	return hex.EncodeToString(h.Sum(nil))
}

// Sweep returns the replication sweep for (s, tr), simulating it at most
// once per key: concurrent callers single-flight on the first computation
// and later callers share the stored result (field-identical to a fresh
// run; callers treat it as read-only). Doctored scales bypass the cache in
// both directions.
func (c *SweepCache) Sweep(s Scale, tr Trace) (*ReplicationSweep, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Doctor {
		c.bypasses.Add(1)
		c.observe(s, "bypass")
		return sweepReplicationFresh(s, tr)
	}
	key := sweepKey(s, tr, sched.DefaultCost(storage.DefaultConfig().Power))
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &sweepEntry{}
		c.entries[key] = e
	}
	dir := c.dir
	c.mu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		if sw, ok := loadSweepFile(dir, key); ok {
			e.sw, e.disk = sw, true
			c.diskHits.Add(1)
			c.observe(s, "disk_hit")
			c.completeInstantly(s, tr)
			return
		}
		c.misses.Add(1)
		c.observe(s, "miss")
		e.sw, e.err = sweepReplicationFresh(s, tr)
		if e.err == nil {
			writeSweepFile(dir, key, e.sw)
		}
	})
	if hit {
		if e.err == nil {
			c.hits.Add(1)
			c.observe(s, "hit")
			c.completeInstantly(s, tr)
		}
	}
	if e.err != nil {
		return nil, e.err
	}
	// The caller's Scale (telemetry, parallelism knobs) replaces the stored
	// one in the returned view; the key guarantees every result-bearing
	// field is equal.
	if e.disk || hit {
		sw := *e.sw
		sw.Scale = s
		return &sw, nil
	}
	return e.sw, nil
}

// observe publishes a lookup outcome to the scale's telemetry collector (a
// no-op without a monitor) so live /metrics scrapes see hit/miss rates.
func (c *SweepCache) observe(s Scale, outcome string) {
	if s.Monitor == nil {
		return
	}
	s.Monitor.col.Counter("esched_sweepcache_lookups_total",
		"Sweep-cache lookups by outcome.",
		obs.Label{Key: "outcome", Value: outcome}).Inc()
}

// completeInstantly reports a cache hit to the scale's telemetry monitor as
// a sweep whose cells all finished immediately, so dashboards watching
// per-cell progress see the hit rather than a silent gap.
func (c *SweepCache) completeInstantly(s Scale, tr Trace) {
	if s.Monitor == nil {
		return
	}
	n := len(ReplicationFactors()) * len(Algorithms())
	tk := s.Monitor.Track("replication:"+tr.String(), n)
	for i := 0; i < n; i++ {
		tk.cellStart(i)
		tk.cellEnd(i, nil)
	}
	tk.Finish()
}

// diskSweep is the on-disk entry format. Version and Key double-check the
// filename so a renamed or truncated file is treated as corrupt, not
// trusted.
type diskSweep struct {
	Version int
	Key     string
	Trace   Trace
	RFs     []int
	Runs    map[int][]Run
}

const diskSweepVersion = 1

func sweepPath(dir, key string) string {
	return filepath.Join(dir, "sweep-"+key+".json")
}

// loadSweepFile reads one on-disk entry; any error (missing, corrupt JSON,
// version or key mismatch) reports a miss so the sweep is recomputed and
// the entry rewritten.
func loadSweepFile(dir, key string) (*ReplicationSweep, bool) {
	if dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(sweepPath(dir, key))
	if err != nil {
		return nil, false
	}
	var d diskSweep
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, false
	}
	if d.Version != diskSweepVersion || d.Key != key || d.Runs == nil {
		return nil, false
	}
	return &ReplicationSweep{Trace: d.Trace, RFs: d.RFs, Runs: d.Runs}, true
}

// writeSweepFile persists one entry, atomically via rename so a crashed or
// concurrent writer never leaves a half-written file to be misread (a
// corrupt file would only cost a recompute anyway). Errors are deliberately
// dropped: the disk tier is an optimization, never a correctness
// dependency.
func writeSweepFile(dir, key string, sw *ReplicationSweep) {
	if dir == "" {
		return
	}
	raw, err := json.Marshal(diskSweep{
		Version: diskSweepVersion,
		Key:     key,
		Trace:   sw.Trace,
		RFs:     sw.RFs,
		Runs:    sw.Runs,
	})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "sweep-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), sweepPath(dir, key)); err != nil {
		os.Remove(tmp.Name())
	}
}
