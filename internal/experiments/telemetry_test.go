package experiments

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

type progressDoc struct {
	Sweeps []struct {
		Name    string `json:"name"`
		Total   int    `json:"total"`
		Running int    `json:"running"`
		Done    int    `json:"done"`
		Failed  int    `json:"failed"`
		Ended   bool   `json:"ended"`
		Cells   []struct {
			Cell  int    `json:"cell"`
			State string `json:"state"`
		} `json:"cells"`
	} `json:"sweeps"`
}

// TestMonitorEndpoints drives a tracked runParallel sweep (with one
// failing cell) and checks the three HTTP views agree with the outcome.
func TestMonitorEndpoints(t *testing.T) {
	t.Parallel()
	m := NewMonitor()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	if body := string(get(t, srv, "/healthz")); !strings.HasPrefix(body, "ok sweeps=0") {
		t.Fatalf("healthz before sweeps: %q", body)
	}

	boom := errors.New("boom")
	err := runParallel(8, 1, m.Track("unit", 8), func(i int) error {
		if i == 5 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("sweep error = %v, want wrapped boom", err)
	}

	var doc progressDoc
	if err := json.Unmarshal(get(t, srv, "/progress"), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Sweeps) != 1 {
		t.Fatalf("sweeps = %d, want 1", len(doc.Sweeps))
	}
	sw := doc.Sweeps[0]
	if sw.Name != "unit" || sw.Total != 8 || !sw.Ended {
		t.Fatalf("sweep header = %+v", sw)
	}
	// Serial pool fails fast: cells 0-4 done, 5 failed, 6-7 never started.
	if sw.Done != 5 || sw.Failed != 1 || sw.Running != 0 {
		t.Fatalf("done/failed/running = %d/%d/%d, want 5/1/0", sw.Done, sw.Failed, sw.Running)
	}
	if got := sw.Cells[5].State; got != "failed" {
		t.Errorf("cell 5 state = %q", got)
	}
	if got := sw.Cells[7].State; got != "pending" {
		t.Errorf("cell 7 state = %q", got)
	}

	metrics := string(get(t, srv, "/metrics"))
	for _, want := range []string{
		`esched_sweep_cells{stage="total",sweep="unit"} 8`,
		`esched_sweep_cells{stage="done",sweep="unit"} 5`,
		`esched_sweep_cells{stage="failed",sweep="unit"} 1`,
		`esched_sweep_cells{stage="running",sweep="unit"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics lacks %q:\n%s", want, metrics)
		}
	}
	if body := string(get(t, srv, "/healthz")); !strings.HasPrefix(body, "ok sweeps=1") {
		t.Errorf("healthz after sweep: %q", body)
	}
}

// TestMonitorConcurrentSweep checks the tracker under a real worker pool.
func TestMonitorConcurrentSweep(t *testing.T) {
	t.Parallel()
	m := NewMonitor()
	tk := m.Track("pool", 64)
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := runParallel(64, 8, tk, func(i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 64 {
		t.Fatalf("ran %d of 64 cells", len(seen))
	}
	p := tk.snapshot()
	if p.Done != 64 || p.Failed != 0 || p.Running != 0 || !p.Ended {
		t.Fatalf("snapshot = %+v", p)
	}
}

// TestNilMonitorIsNoOp pins the off switch: a nil monitor yields a nil
// tracker and sweeps run unchanged.
func TestNilMonitorIsNoOp(t *testing.T) {
	t.Parallel()
	var m *Monitor
	tk := m.Track("ignored", 3)
	if tk != nil {
		t.Fatal("nil monitor returned a tracker")
	}
	ran := 0
	if err := runParallel(3, 1, tk, func(int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran %d of 3", ran)
	}
}

// TestMonitorDuplicateSweepNames checks repeat names get distinct series.
func TestMonitorDuplicateSweepNames(t *testing.T) {
	t.Parallel()
	m := NewMonitor()
	a := m.Track("same", 1)
	b := m.Track("same", 1)
	if a.name == b.name {
		t.Fatalf("duplicate sweeps share the name %q", a.name)
	}
}

// TestSweepReplicationReportsTelemetry wires a real (tiny) sweep through
// the monitor and checks every cell completes.
func TestSweepReplicationReportsTelemetry(t *testing.T) {
	t.Parallel()
	s := tinyScale()
	s.Monitor = NewMonitor()
	if _, err := SweepReplication(s, Cello); err != nil {
		t.Fatal(err)
	}
	s.Monitor.mu.Lock()
	defer s.Monitor.mu.Unlock()
	if len(s.Monitor.sweeps) != 1 {
		t.Fatalf("tracked sweeps = %d, want 1", len(s.Monitor.sweeps))
	}
	p := s.Monitor.sweeps[0].snapshot()
	if p.Done != p.Total || p.Failed != 0 || !p.Ended {
		t.Fatalf("sweep progress = %+v", p)
	}
}
