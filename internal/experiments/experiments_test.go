package experiments

import (
	"strings"
	"sync"
	"testing"
)

// sweepCache shares one small-scale Cello sweep across tests (it is the
// expensive fixture behind Figures 6, 7, 8 and 13).
var (
	sweepOnce sync.Once
	sweepVal  *ReplicationSweep
	sweepErr  error
)

func celloSweep(t *testing.T) *ReplicationSweep {
	t.Helper()
	sweepOnce.Do(func() {
		sweepVal, sweepErr = SweepReplication(SmallScale(), Cello)
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sweepVal
}

func TestScaleValidate(t *testing.T) {
	t.Parallel()
	if err := FullScale().Validate(); err != nil {
		t.Errorf("FullScale invalid: %v", err)
	}
	if err := SmallScale().Validate(); err != nil {
		t.Errorf("SmallScale invalid: %v", err)
	}
	bad := SmallScale()
	bad.NumDisks = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero disks")
	}
	bad = SmallScale()
	bad.BatchInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero batch interval")
	}
}

func TestFullScaleMatchesPaperSetup(t *testing.T) {
	t.Parallel()
	s := FullScale()
	if s.NumDisks != 180 || s.NumRequests != 70000 || s.NumBlocks != 30000 {
		t.Errorf("full scale = %d disks / %d requests / %d blocks, want 180/70000/30000",
			s.NumDisks, s.NumRequests, s.NumBlocks)
	}
}

func TestTraceString(t *testing.T) {
	t.Parallel()
	if Cello.String() != "cello" || Financial.String() != "financial1" {
		t.Error("trace names wrong")
	}
	if got := Trace(9).String(); got != "Trace(9)" {
		t.Errorf("unknown trace = %q", got)
	}
}

func TestSweepTrendsMatchPaper(t *testing.T) {
	sw := celloSweep(t)

	static1, _ := sw.Get(1, AlgoStatic)
	static5, _ := sw.Get(5, AlgoStatic)
	// Static is flat: replication does not change its energy materially.
	if rel := static5.NormEnergy / static1.NormEnergy; rel < 0.9 || rel > 1.1 {
		t.Errorf("static energy changed %.2fx from rf=1 to rf=5, want flat", rel)
	}

	// Random degrades toward always-on as replication grows.
	random1, _ := sw.Get(1, AlgoRandom)
	random5, _ := sw.Get(5, AlgoRandom)
	if random5.NormEnergy <= random1.NormEnergy {
		t.Errorf("random energy fell with replication (%.3f -> %.3f), paper shows the opposite",
			random1.NormEnergy, random5.NormEnergy)
	}

	// Energy-aware schedulers improve with replication and beat static.
	for _, algo := range []string{AlgoHeuristic, AlgoWSC, AlgoMWIS} {
		r1, _ := sw.Get(1, algo)
		r5, _ := sw.Get(5, algo)
		if r5.NormEnergy >= r1.NormEnergy {
			t.Errorf("%s energy did not fall with replication (%.3f -> %.3f)", algo, r1.NormEnergy, r5.NormEnergy)
		}
		s5, _ := sw.Get(5, AlgoStatic)
		if r5.NormEnergy >= s5.NormEnergy {
			t.Errorf("%s (%.3f) not below static (%.3f) at rf=5", algo, r5.NormEnergy, s5.NormEnergy)
		}
	}

	// Paper ordering at high replication: MWIS <= WSC <= Heuristic.
	h5, _ := sw.Get(5, AlgoHeuristic)
	w5, _ := sw.Get(5, AlgoWSC)
	m5, _ := sw.Get(5, AlgoMWIS)
	if !(m5.NormEnergy <= w5.NormEnergy+0.02 && w5.NormEnergy <= h5.NormEnergy+0.02) {
		t.Errorf("ordering violated at rf=5: mwis=%.3f wsc=%.3f heuristic=%.3f",
			m5.NormEnergy, w5.NormEnergy, h5.NormEnergy)
	}

	// Figure 7: energy-aware schedulers have fewer spin-ups than static at
	// high replication; MWIS has the fewest.
	st5, _ := sw.Get(5, AlgoStatic)
	if h5.SpinUps >= st5.SpinUps {
		t.Errorf("heuristic spin-ups %d not below static %d at rf=5", h5.SpinUps, st5.SpinUps)
	}
	if m5.SpinUps >= h5.SpinUps {
		t.Errorf("MWIS spin-ups %d not below heuristic %d", m5.SpinUps, h5.SpinUps)
	}

	// Figure 8: energy-aware response at rf>=3 is no worse than static's.
	h3, _ := sw.Get(3, AlgoHeuristic)
	s3, _ := sw.Get(3, AlgoStatic)
	if h3.Mean > s3.Mean*3/2 {
		t.Errorf("heuristic mean response %v far above static %v at rf=3", h3.Mean, s3.Mean)
	}
}

func TestSweepRF1AllOnlineSchedulersCoincide(t *testing.T) {
	sw := celloSweep(t)
	// Without replication there is nothing to schedule: random, static and
	// heuristic all route to the single location.
	r, _ := sw.Get(1, AlgoRandom)
	s, _ := sw.Get(1, AlgoStatic)
	h, _ := sw.Get(1, AlgoHeuristic)
	if r.NormEnergy != s.NormEnergy || s.NormEnergy != h.NormEnergy {
		t.Errorf("rf=1 energies differ: %.4f / %.4f / %.4f", r.NormEnergy, s.NormEnergy, h.NormEnergy)
	}
	if r.SpinUps != s.SpinUps || s.SpinUps != h.SpinUps {
		t.Errorf("rf=1 spin-ups differ: %d / %d / %d", r.SpinUps, s.SpinUps, h.SpinUps)
	}
}

func TestFigureTablesRender(t *testing.T) {
	sw := celloSweep(t)
	for _, tbl := range []*Table{sw.Figure6(), sw.Figure7(), sw.Figure8(), sw.Figure13()} {
		out := tbl.Render()
		if !strings.Contains(out, "replication") || len(strings.Split(out, "\n")) < 7 {
			t.Errorf("table render too small:\n%s", out)
		}
		if tsv := tbl.TSV(); !strings.Contains(tsv, "\t") {
			t.Error("TSV missing tabs")
		}
	}
}

func TestFigure5Contents(t *testing.T) {
	t.Parallel()
	out := Figure5().Render()
	for _, want := range []string{"idle power", "breakeven", "9.3 W", "135 J"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2And3WorkedExamples(t *testing.T) {
	t.Parallel()
	f2 := Figure2().Render()
	for _, want := range []string{"15", "10"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Figure 2 missing energy %s:\n%s", want, f2)
		}
	}
	f3 := Figure3().Render()
	for _, want := range []string{"23", "19"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure 3 missing energy %s:\n%s", want, f3)
		}
	}
}

func TestFigure4Walkthrough(t *testing.T) {
	t.Parallel()
	out := Figure4().Render()
	for _, want := range []string{"X(1,2,1)", "X(2,3,2)", "3: selected", "4: energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 4 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure9Breakdown(t *testing.T) {
	t.Parallel()
	tbl, err := Figure9(SmallScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, algo := range Algorithms() {
		if !strings.Contains(out, algo) {
			t.Errorf("Figure 9 missing algorithm %s", algo)
		}
	}
	// 5 algorithms x up-to-10 deciles.
	if got := len(tbl.Rows); got < 25 {
		t.Errorf("Figure 9 has %d rows", got)
	}
}

func TestFigure10LocalityTrends(t *testing.T) {
	t.Parallel()
	s := SmallScale()
	s.ZipfSteps = []float64{0, 1}
	tbl, err := Figure10(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(s.ZipfSteps)*len(ReplicationFactors()) {
		t.Fatalf("Figure 10 rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Render(), "z") {
		t.Error("missing z column")
	}
}

func TestFigure11TradeoffDirections(t *testing.T) {
	t.Parallel()
	s := SmallScale()
	s.Alphas = []float64{0, 1}
	s.Betas = []float64{10}
	tbl, err := Figure11(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Row 0 is alpha=0 (normalized 1.000); row 1 is alpha=1 and must have
	// lower energy and higher response (Appendix A.2's tradeoff).
	var e0, e1, r0, r1 float64
	if _, err := fmtSscan(tbl.Rows[0][2], &e0); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tbl.Rows[1][2], &e1); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tbl.Rows[0][3], &r0); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tbl.Rows[1][3], &r1); err != nil {
		t.Fatal(err)
	}
	if e1 >= e0 {
		t.Errorf("alpha=1 energy %.3f not below alpha=0 %.3f", e1, e0)
	}
	if r1 <= r0 {
		t.Errorf("alpha=1 response %.3f not above alpha=0 %.3f", r1, r0)
	}
}

func TestFigure12CCDFIsMonotone(t *testing.T) {
	t.Parallel()
	tbl, err := Figure12(SmallScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	// Each data column is non-increasing down the rows.
	for col := 1; col < len(tbl.Header); col++ {
		prev := 2.0
		for _, row := range tbl.Rows {
			var v float64
			if _, err := fmtSscan(row[col], &v); err != nil {
				t.Fatal(err)
			}
			if v > prev+1e-12 {
				t.Fatalf("column %s not monotone", tbl.Header[col])
			}
			prev = v
		}
	}
}

func TestFinancialSweepSharesTrends(t *testing.T) {
	s := SmallScale()
	s.NumRequests = 3000 // keep the second trace cheap
	sw, err := SweepReplication(s, Financial)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := sw.Get(1, AlgoWSC)
	w5, _ := sw.Get(5, AlgoWSC)
	if w5.NormEnergy >= w1.NormEnergy {
		t.Errorf("Financial WSC energy did not fall with replication (%.3f -> %.3f)",
			w1.NormEnergy, w5.NormEnergy)
	}
	if !strings.Contains(sw.Figure6().Title, "14") {
		t.Error("Financial sweep should render as Figure 14")
	}
	if !strings.Contains(sw.Figure7().Title, "15") {
		t.Error("Financial sweep should render as Figure 15")
	}
	if !strings.Contains(sw.Figure8().Title, "16") {
		t.Error("Financial sweep should render as Figure 16")
	}
}

func TestScaleValidateShards(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		shards  int
		wantErr string // substring of the error, "" for valid
	}{
		{"serial-default", 0, ""},
		{"serial-explicit", 1, ""},
		{"even-split", 2, ""},
		{"one-disk-shards", 24, ""},
		{"negative", -1, "negative shard count"},
		{"more-shards-than-disks", 25, "exceed"},
		{"uneven-split", 7, "evenly divide"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := SmallScale() // 24 disks
			s.Shards = tc.shards
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Shards=%d rejected: %v", tc.shards, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Shards=%d accepted, want error containing %q", tc.shards, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Shards=%d error = %q, want substring %q", tc.shards, err, tc.wantErr)
			}
		})
	}
}

// TestFigureOutputShardInvariant pins the top-level determinism contract:
// rendered figure tables are byte-identical at every kernel shard count.
// The sweeps run fresh (bypassing the cache, which deliberately ignores
// Shards) so a divergence cannot hide behind a shared cache entry.
func TestFigureOutputShardInvariant(t *testing.T) {
	t.Parallel()
	s := SmallScale()
	s.NumRequests = 1500 // byte equality needs no statistical weight
	s.NumBlocks = 800
	render := func(shards int) string {
		s.Shards = shards
		sw, err := sweepReplicationFresh(s, Cello)
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		return sw.Figure6().Render() + sw.Figure7().Render() +
			sw.Figure8().Render() + sw.Figure13().Render()
	}
	want := render(1)
	for _, shards := range []int{2, 8, 24} {
		if got := render(shards); got != want {
			t.Errorf("figure output at Shards=%d differs from serial render", shards)
		}
	}
}
