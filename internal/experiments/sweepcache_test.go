package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/storage"
)

// cacheScale is a deliberately tiny sweep so cache tests simulate in
// milliseconds; distinct seeds keep tests' keys from colliding with each
// other and with the process-wide default cache.
func cacheScale(seed int64) Scale {
	s := SmallScale()
	s.NumDisks = 10
	s.NumRequests = 600
	s.NumBlocks = 300
	s.Seed = seed
	return s
}

// assertSweepEqual compares two sweeps field by field, bit-exact on every
// float. Response sample sets are compared through their canonical JSON
// encoding (nanosecond-exact, order included).
func assertSweepEqual(t *testing.T, a, b *ReplicationSweep) {
	t.Helper()
	if a.Trace != b.Trace {
		t.Fatalf("Trace %v != %v", a.Trace, b.Trace)
	}
	if !reflect.DeepEqual(a.RFs, b.RFs) {
		t.Fatalf("RFs %v != %v", a.RFs, b.RFs)
	}
	for _, rf := range a.RFs {
		ra, rb := a.Runs[rf], b.Runs[rf]
		if len(ra) != len(rb) {
			t.Fatalf("rf=%d: %d vs %d runs", rf, len(ra), len(rb))
		}
		for i := range ra {
			x, y := ra[i], rb[i]
			if x.Algo != y.Algo || x.NormEnergy != y.NormEnergy ||
				x.SpinUps != y.SpinUps || x.SpinDowns != y.SpinDowns ||
				x.Mean != y.Mean || x.P90 != y.P90 {
				t.Fatalf("rf=%d %s: %+v != %+v", rf, x.Algo, x, y)
			}
			if (x.Response == nil) != (y.Response == nil) {
				t.Fatalf("rf=%d %s: response presence differs", rf, x.Algo)
			}
			if x.Response != nil {
				ja, err1 := json.Marshal(x.Response)
				jb, err2 := json.Marshal(y.Response)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if string(ja) != string(jb) {
					t.Fatalf("rf=%d %s: response samples differ", rf, x.Algo)
				}
			}
			if !reflect.DeepEqual(x.PerDisk, y.PerDisk) {
				t.Fatalf("rf=%d %s: per-disk stats differ", rf, x.Algo)
			}
		}
	}
}

func TestSweepCacheHitIsFieldIdenticalToFresh(t *testing.T) {
	t.Parallel()
	s := cacheScale(9001)
	fresh, err := sweepReplicationFresh(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSweepCache()
	first, err := c.Sweep(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Sweep(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepEqual(t, fresh, first)
	assertSweepEqual(t, fresh, second)
	if st := c.Stats(); st.Misses != 1 || st.Hits != 1 || st.DiskHits != 0 || st.Bypasses != 0 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}
}

func TestSweepCacheKeySensitivity(t *testing.T) {
	t.Parallel()
	base := cacheScale(9002)
	cost := sched.DefaultCost(storage.DefaultConfig().Power)
	baseKey := sweepKey(base, Cello, cost)

	mutations := map[string]func(*Scale){
		"NumDisks":       func(s *Scale) { s.NumDisks++ },
		"NumRequests":    func(s *Scale) { s.NumRequests++ },
		"NumBlocks":      func(s *Scale) { s.NumBlocks++ },
		"Seed":           func(s *Scale) { s.Seed++ },
		"BatchInterval":  func(s *Scale) { s.BatchInterval += time.Millisecond },
		"MWISSuccessors": func(s *Scale) { s.MWISSuccessors++ },
		"MWISMaxNodes":   func(s *Scale) { s.MWISMaxNodes++ },
		"MWISPasses":     func(s *Scale) { s.MWISPasses++ },
		"ZipfSteps":      func(s *Scale) { s.ZipfSteps = append(s.ZipfSteps, 0.9) },
		"Alphas":         func(s *Scale) { s.Alphas = append(s.Alphas, 0.3) },
		"Betas":          func(s *Scale) { s.Betas = append(s.Betas, 42) },
		"Parallelism":    func(s *Scale) { s.Parallelism++ },
		"Workers":        func(s *Scale) { s.Workers++ },
	}
	for field, mutate := range mutations {
		s := base
		// Deep-copy the slices so appends do not alias base.
		s.ZipfSteps = append([]float64(nil), base.ZipfSteps...)
		s.Alphas = append([]float64(nil), base.Alphas...)
		s.Betas = append([]float64(nil), base.Betas...)
		mutate(&s)
		if sweepKey(s, Cello, cost) == baseKey {
			t.Errorf("changing Scale.%s did not change the key", field)
		}
	}

	if sweepKey(base, Financial, cost) == baseKey {
		t.Error("changing the trace did not change the key")
	}

	costMut := map[string]sched.CostConfig{
		"Alpha":           {Alpha: cost.Alpha + 0.1, Beta: cost.Beta, Power: cost.Power},
		"Beta":            {Alpha: cost.Alpha, Beta: cost.Beta + 1, Power: cost.Power},
		"Power.IdlePower": {Alpha: cost.Alpha, Beta: cost.Beta, Power: func() power.Config { p := cost.Power; p.IdlePower += 0.5; return p }()},
	}
	for field, c := range costMut {
		if sweepKey(base, Cello, c) == baseKey {
			t.Errorf("changing CostConfig.%s did not change the key", field)
		}
	}

	// Result-neutral knobs must NOT shift the key: telemetry and doctoring
	// never influence the measurements (doctored sweeps bypass the cache
	// before the key is even computed).
	s := base
	s.Monitor = NewMonitor()
	s.Doctor = true
	if sweepKey(s, Cello, cost) != baseKey {
		t.Error("Monitor/Doctor changed the key; they are result-neutral")
	}
}

func TestSweepCacheDiskTierRoundTripsBitExact(t *testing.T) {
	t.Parallel()
	s := cacheScale(9003)
	dir := t.TempDir()

	writer := NewSweepCache()
	if err := writer.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	fresh, err := writer.Sweep(s, Cello)
	if err != nil {
		t.Fatal(err)
	}

	reader := NewSweepCache()
	if err := reader.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := reader.Sweep(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepEqual(t, fresh, loaded)
	if st := reader.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("reader stats = %+v, want pure disk hit", st)
	}
	if loaded.Scale.NumDisks != s.NumDisks || loaded.Scale.Seed != s.Seed {
		t.Fatalf("loaded sweep lost the caller's scale: %+v", loaded.Scale)
	}
}

func TestSweepCacheDiskTierIgnoresCorruptEntries(t *testing.T) {
	t.Parallel()
	s := cacheScale(9004)
	key := sweepKey(s, Cello, sched.DefaultCost(storage.DefaultConfig().Power))

	cases := map[string][]byte{
		"garbage":       []byte("{not json"),
		"wrong-key":     mustJSON(t, diskSweep{Version: diskSweepVersion, Key: "deadbeef", RFs: []int{1}, Runs: map[int][]Run{1: {}}}),
		"wrong-version": mustJSON(t, diskSweep{Version: diskSweepVersion + 1, Key: key, RFs: []int{1}, Runs: map[int][]Run{1: {}}}),
		"empty":         nil,
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(sweepPath(dir, key), raw, 0o644); err != nil {
				t.Fatal(err)
			}
			c := NewSweepCache()
			if err := c.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			sw, err := c.Sweep(s, Cello)
			if err != nil {
				t.Fatal(err)
			}
			if st := c.Stats(); st.Misses != 1 || st.DiskHits != 0 {
				t.Fatalf("stats = %+v, want recompute on corrupt entry", st)
			}
			if len(sw.Runs) != len(ReplicationFactors()) {
				t.Fatalf("recomputed sweep has %d rf groups", len(sw.Runs))
			}
			// The corrupt file must have been replaced with a loadable one.
			if _, ok := loadSweepFile(dir, key); !ok {
				t.Fatal("corrupt entry was not rewritten")
			}
		})
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestSweepCacheDoctorBypasses(t *testing.T) {
	t.Parallel()
	s := cacheScale(9005)
	s.Doctor = true
	c := NewSweepCache()
	a, err := c.Sweep(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Sweep(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Bypasses != 2 || st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want two bypasses and no cache traffic", st)
	}
	// Bypassed (verified) runs still agree with the cached path bit for bit.
	s.Doctor = false
	cached, err := c.Sweep(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepEqual(t, a, b)
	assertSweepEqual(t, a, cached)
}

func TestSweepCacheSingleFlight(t *testing.T) {
	t.Parallel()
	s := cacheScale(9006)
	c := NewSweepCache()
	const callers = 8
	sweeps := make([]*ReplicationSweep, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sw, err := c.Sweep(s, Cello)
			if err != nil {
				t.Error(err)
				return
			}
			sweeps[i] = sw
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v, want exactly one simulation for %d concurrent callers", st, callers)
	}
	for i := 1; i < callers; i++ {
		assertSweepEqual(t, sweeps[0], sweeps[i])
	}
}

// TestSweepReplicationBuildsEachPlacementOnce pins the sharing discipline:
// a cold sweep constructs exactly one placement per replication factor
// (shared by its five algorithm cells), and a cache hit constructs none.
// Not parallel: it reads the package-wide construction counter. A private
// cache keeps the first sweep genuinely cold under `go test -count N`,
// where the process-wide DefaultSweepCache survives between repetitions.
func TestSweepReplicationBuildsEachPlacementOnce(t *testing.T) {
	c := NewSweepCache()
	s := cacheScale(9007)
	before := placementBuilds.Load()
	if _, err := c.Sweep(s, Cello); err != nil {
		t.Fatal(err)
	}
	cold := placementBuilds.Load() - before
	if want := int64(len(ReplicationFactors())); cold != want {
		t.Fatalf("cold sweep built %d placements, want %d (one per rf)", cold, want)
	}
	before = placementBuilds.Load()
	if _, err := c.Sweep(s, Cello); err != nil {
		t.Fatal(err)
	}
	if warm := placementBuilds.Load() - before; warm != 0 {
		t.Fatalf("cached sweep built %d placements, want 0", warm)
	}
}

// TestSweepCacheHitReportsTelemetry checks a hit is visible to a monitor:
// the sweep appears with all cells instantly done, and the lookup counter
// is exported.
func TestSweepCacheHitReportsTelemetry(t *testing.T) {
	t.Parallel()
	s := cacheScale(9008)
	c := NewSweepCache()
	if _, err := c.Sweep(s, Cello); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor()
	s.Monitor = m
	if _, err := c.Sweep(s, Cello); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sweeps) != 1 {
		t.Fatalf("monitor tracked %d sweeps, want 1", len(m.sweeps))
	}
	p := m.sweeps[0].snapshot()
	if p.Done != p.Total || p.Failed != 0 || !p.Ended {
		t.Fatalf("hit progress = %+v, want all cells done", p)
	}
	if got := m.col.String(); !strings.Contains(got, `esched_sweepcache_lookups_total{outcome="hit"} 1`) {
		t.Fatalf("metrics lack the hit counter:\n%s", got)
	}
}

// TestSweepCacheKeyIgnoresCacheDir pins that the on-disk location is not
// part of the content address: the same inputs hit regardless of tier
// configuration.
func TestSweepCacheKeyIgnoresCacheDir(t *testing.T) {
	t.Parallel()
	s := cacheScale(9009)
	dir := t.TempDir()
	c := NewSweepCache()
	if _, err := c.Sweep(s, Cello); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sweep(s, Cello); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want the post-SetDir call to hit memory", st)
	}
	// Nothing was persisted for the pre-SetDir computation; that is fine —
	// the tier only captures computations made while it is active.
	if entries, err := filepath.Glob(filepath.Join(dir, "sweep-*.json")); err != nil || len(entries) != 0 {
		t.Fatalf("unexpected disk entries %v (err %v)", entries, err)
	}
}
