package experiments

import "fmt"

// fmtSscan parses a single float from a table cell.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }
