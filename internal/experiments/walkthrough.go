package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/offline"
	"repro/internal/power"
)

// PaperExampleLocations returns the data placement of the Section 2.3
// worked examples: four disks, blocks b1..b6 (0-indexed) with d1 holding
// {b1,b2,b3,b5}, d2 {b2,b3}, d3 {b4,b6} and d4 {b3,b4,b5,b6}.
func PaperExampleLocations() func(core.BlockID) []core.DiskID {
	locs := [][]core.DiskID{
		{0},
		{0, 1},
		{0, 1, 3},
		{2, 3},
		{0, 3},
		{2, 3},
	}
	return func(b core.BlockID) []core.DiskID {
		if b < 0 || int(b) >= len(locs) {
			return nil
		}
		return locs[b]
	}
}

// PaperExampleRequests returns r1..r6 with the offline arrival times of
// Figure 3 (0, 1, 3, 5, 12, 13 seconds); batch=true collapses all arrivals
// to time zero as in Figure 2.
func PaperExampleRequests(batch bool) []core.Request {
	times := []time.Duration{0, time.Second, 3 * time.Second, 5 * time.Second, 12 * time.Second, 13 * time.Second}
	reqs := make([]core.Request, 6)
	for i := range reqs {
		at := times[i]
		if batch {
			at = 0
		}
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i), Arrival: at}
	}
	return reqs
}

func evaluateExample(reqs []core.Request, sched core.Schedule) offline.Stats {
	st, err := offline.Evaluate(reqs, sched, power.ToyConfig(), PaperExampleLocations())
	if err != nil {
		panic(fmt.Sprintf("experiments: paper example evaluation failed: %v", err))
	}
	return st
}

// Figure2 reproduces the batch worked example: schedule A uses three disks
// (energy 15), schedule B two (energy 10), and the exact solver confirms B
// is optimal.
func Figure2() *Table {
	reqs := PaperExampleRequests(true)
	a := evaluateExample(reqs, core.Schedule{0, 1, 1, 2, 0, 2})
	b := evaluateExample(reqs, core.Schedule{0, 0, 0, 2, 0, 2})
	_, exact, err := offline.SolveExact(reqs, PaperExampleLocations(), power.ToyConfig())
	if err != nil {
		panic(err)
	}
	t := &Table{
		Title:  "Figure 2: batch scheduling example (always-on energy 20)",
		Header: []string{"schedule", "assignment", "disks", "energy"},
	}
	t.AddRow("A", "r1,r5->d1 r2,r3->d2 r4,r6->d3", fmt.Sprint(a.DisksUsed), fmt.Sprintf("%.0f", a.Energy))
	t.AddRow("B", "r1,r2,r3,r5->d1 r4,r6->d3", fmt.Sprint(b.DisksUsed), fmt.Sprintf("%.0f", b.Energy))
	t.AddRow("optimal (exact MWIS)", "", fmt.Sprint(exact.DisksUsed), fmt.Sprintf("%.0f", exact.Energy))
	return t
}

// Figure3 reproduces the offline worked example: schedule B now costs 23
// while schedule C costs 19 and is optimal (the exact solver agrees).
func Figure3() *Table {
	reqs := PaperExampleRequests(false)
	b := evaluateExample(reqs, core.Schedule{0, 0, 0, 2, 0, 2})
	c := evaluateExample(reqs, core.Schedule{0, 0, 0, 2, 3, 3})
	_, exact, err := offline.SolveExact(reqs, PaperExampleLocations(), power.ToyConfig())
	if err != nil {
		panic(err)
	}
	t := &Table{
		Title:  "Figure 3: offline scheduling example (always-on energy 72 over the 18 s horizon)",
		Header: []string{"schedule", "assignment", "disks", "energy"},
	}
	t.AddRow("B", "r1,r2,r3,r5->d1 r4,r6->d3", fmt.Sprint(b.DisksUsed), fmt.Sprintf("%.0f", b.Energy))
	t.AddRow("C", "r1,r2,r3->d1 r4->d3 r5,r6->d4", fmt.Sprint(c.DisksUsed), fmt.Sprintf("%.0f", c.Energy))
	t.AddRow("optimal (exact MWIS)", "", fmt.Sprint(exact.DisksUsed), fmt.Sprintf("%.0f", exact.Energy))
	return t
}

// Figure4 walks through the MWIS scheduling algorithm on the Figure 3
// instance: the constructed X(i,j,k) vertices and weights (Step 1), the
// constraint edges (Step 2), the greedy GWMIN selection (Step 3), and the
// derived schedule's energy (Step 4).
func Figure4() *Table {
	reqs := PaperExampleRequests(false)
	in, err := offline.Build(reqs, PaperExampleLocations(), power.ToyConfig(), offline.BuildOptions{})
	if err != nil {
		panic(err)
	}
	t := &Table{
		Title:  "Figure 4: MWIS reduction walkthrough (vertices X(i,j,k), 1-indexed as in the paper)",
		Header: []string{"step", "item", "detail"},
	}
	for _, n := range in.Nodes {
		t.AddRow("1: vertex", fmt.Sprintf("X(%d,%d,%d)", n.I+1, n.J+1, n.Disk+1), fmt.Sprintf("weight %.0f", n.Weight))
	}
	t.AddRow("2: edges", fmt.Sprint(in.Graph.M()), "constraint-violating pairs")
	selected, weight := graph.GWMIN(in.Graph)
	for _, v := range selected {
		n := in.Nodes[v]
		t.AddRow("3: selected", fmt.Sprintf("X(%d,%d,%d)", n.I+1, n.J+1, n.Disk+1), fmt.Sprintf("weight %.0f", n.Weight))
	}
	t.AddRow("3: total saving", fmt.Sprintf("%.0f", weight), "independent-set weight")
	schedule, err := in.DeriveSchedule(reqs, PaperExampleLocations(), selected)
	if err != nil {
		panic(err)
	}
	st := evaluateExample(reqs, schedule)
	for i, d := range schedule {
		t.AddRow("4: assign", fmt.Sprintf("r%d -> d%d", i+1, d+1), "")
	}
	t.AddRow("4: energy", fmt.Sprintf("%.0f", st.Energy), "derived schedule")
	return t
}
