package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func tinyScale() Scale {
	s := SmallScale()
	s.NumRequests = 3000
	s.NumBlocks = 1200
	s.NumDisks = 16
	return s
}

func TestExtensionOffloadSavesEnergy(t *testing.T) {
	t.Parallel()
	tbl, err := ExtensionOffload(tinyScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		base, err1 := strconv.ParseFloat(row[1], 64)
		off, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if off >= base {
			t.Errorf("write fraction %s: off-loading energy %.3f not below baseline %.3f",
				row[0], off, base)
		}
	}
}

func TestExtensionCacheTrends(t *testing.T) {
	t.Parallel()
	tbl, err := ExtensionCache(tinyScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	// 1 uncached row + 3 sizes x 2 policies.
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	uncached, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	prevHit := -1.0
	// The last rows hold the largest capacity, where energy gains are
	// unambiguous; a tiny cache may perturb idle-gap structure either way.
	for i, row := range tbl.Rows[1:] {
		hit, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		energy, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if hit <= 0 {
			t.Errorf("capacity %s %s: zero hit rate", row[0], row[1])
		}
		largest := i >= len(tbl.Rows[1:])-2
		if largest && energy >= uncached {
			t.Errorf("capacity %s %s: cached energy %.3f not below uncached %.3f",
				row[0], row[1], energy, uncached)
		}
		if !largest && energy > uncached*1.05 {
			t.Errorf("capacity %s %s: cached energy %.3f far above uncached %.3f",
				row[0], row[1], energy, uncached)
		}
		if row[1] == "lru" {
			// Hit rate grows (weakly) with capacity across LRU rows.
			if hit < prevHit-1e-9 {
				t.Errorf("LRU hit rate fell with capacity: %v", tbl.Rows)
			}
			prevHit = hit
		}
	}
}

func TestExtensionRackAwareRuns(t *testing.T) {
	t.Parallel()
	tbl, err := ExtensionRackAware(tinyScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for _, col := range []int{2, 3} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 || v >= 1.5 {
				t.Errorf("implausible energy %q in row %v", row[col], row)
			}
		}
	}
}

func TestExtensionPredictiveRuns(t *testing.T) {
	t.Parallel()
	tbl, err := ExtensionPredictive(tinyScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		h, err1 := strconv.ParseFloat(row[1], 64)
		p, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		// The predictive variant should stay in the same ballpark (it is a
		// refinement, not a regression): within 15% of the heuristic.
		if p > h*1.15 {
			t.Errorf("rf=%s: predictive energy %.3f far above heuristic %.3f", row[0], p, h)
		}
	}
}

func TestExtensionDPMOrdering(t *testing.T) {
	t.Parallel()
	tbl, err := ExtensionDPM(tinyScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	ratios := map[string]float64{}
	for _, row := range tbl.Rows {
		r, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("unparseable ratio in %v", row)
		}
		ratios[row[0]] = r
	}
	tau := ""
	for name := range ratios {
		if strings.HasPrefix(name, "fixed(") && tau == "" {
			tau = name
		}
	}
	// The breakeven threshold (first fixed row) is 2-competitive.
	breakeven, ok := ratios[tbl.Rows[1][0]]
	if !ok {
		t.Fatal("missing breakeven row")
	}
	if breakeven > 2.0+1e-9 || breakeven < 1 {
		t.Errorf("breakeven competitive ratio = %.3f, want in [1,2]", breakeven)
	}
	if ratios["offline oracle"] != 1 {
		t.Error("oracle ratio != 1")
	}
	for name, r := range ratios {
		if r < 1-1e-9 {
			t.Errorf("%s beat the oracle: ratio %.3f", name, r)
		}
	}
}

func TestExtensionDisciplineRuns(t *testing.T) {
	t.Parallel()
	tbl, err := ExtensionDiscipline(tinyScale(), Cello)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	names := []string{"fifo", "sstf", "scan"}
	for i, row := range tbl.Rows {
		if row[0] != names[i] {
			t.Errorf("row %d discipline = %s, want %s", i, row[0], names[i])
		}
	}
}

func TestExtensionsAggregate(t *testing.T) {
	t.Parallel()
	s := tinyScale()
	s.NumRequests = 1500
	tables, err := Extensions(s, Cello)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 {
		t.Fatalf("tables = %d, want 9", len(tables))
	}
	for _, tbl := range tables {
		if !strings.Contains(tbl.Title, "Extension") {
			t.Errorf("table title %q missing Extension", tbl.Title)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %q empty", tbl.Title)
		}
	}
}
