package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Figure5 renders the 2CPM configuration used in the evaluation (the
// paper's Figure 5 table, with our Barracuda-class substitutions).
func Figure5() *Table {
	cfg := power.DefaultConfig()
	t := &Table{
		Title:  "Figure 5: 2CPM configuration (Seagate Cheetah 15K.5 mechanics, Barracuda-class power)",
		Header: []string{"parameter", "value"},
	}
	t.AddRow("active power P_A", fmt.Sprintf("%.1f W", cfg.ActivePower))
	t.AddRow("idle power P_I", fmt.Sprintf("%.1f W", cfg.IdlePower))
	t.AddRow("standby power", fmt.Sprintf("%.1f W", cfg.StandbyPower))
	t.AddRow("spin-up energy E_up", fmt.Sprintf("%.0f J", cfg.SpinUpEnergy))
	t.AddRow("spin-down energy E_down", fmt.Sprintf("%.0f J", cfg.SpinDownEnergy))
	t.AddRow("spin-up time T_up", cfg.SpinUpTime.String())
	t.AddRow("spin-down time T_down", cfg.SpinDownTime.String())
	t.AddRow("breakeven time T_B = E_up/down / P_I", cfg.Breakeven().Round(10*time.Millisecond).String())
	return t
}

// Figure6 renders energy consumption versus replication factor, normalized
// to the always-on configuration (Cello in the paper's Figure 6; pass a
// Financial sweep for Figure 14).
func (sw *ReplicationSweep) Figure6() *Table {
	number := "6"
	if sw.Trace == Financial {
		number = "14"
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure %s: normalized energy vs replication factor (%s)", number, sw.Trace),
		Header: append([]string{"replication"}, Algorithms()...),
	}
	for _, rf := range sw.RFs {
		row := []string{fmt.Sprint(rf)}
		for _, algo := range Algorithms() {
			r, _ := sw.Get(rf, algo)
			row = append(row, fmt.Sprintf("%.3f", r.NormEnergy))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure7 renders disk spin-up/down operations versus replication factor,
// normalized to Static (Figure 7 / Figure 15).
func (sw *ReplicationSweep) Figure7() *Table {
	number := "7"
	if sw.Trace == Financial {
		number = "15"
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure %s: spin-up/down operations vs replication factor, normalized to static (%s)", number, sw.Trace),
		Header: append([]string{"replication"}, Algorithms()...),
	}
	for _, rf := range sw.RFs {
		static, _ := sw.Get(rf, AlgoStatic)
		base := float64(static.SpinUps + static.SpinDowns)
		row := []string{fmt.Sprint(rf)}
		for _, algo := range Algorithms() {
			r, _ := sw.Get(rf, algo)
			row = append(row, fmt.Sprintf("%.3f", float64(r.SpinUps+r.SpinDowns)/base))
		}
		t.AddRow(row...)
	}
	return t
}

// onlineAlgos are the algorithms shown in the response-time figures: the
// offline MWIS model has no spin-up delay by construction, so the paper
// omits it (Section 5.3).
func onlineAlgos() []string {
	return []string{AlgoRandom, AlgoStatic, AlgoHeuristic, AlgoWSC}
}

// Figure8 renders mean request response time versus replication factor
// (Figure 8 / Figure 16).
func (sw *ReplicationSweep) Figure8() *Table {
	number := "8"
	if sw.Trace == Financial {
		number = "16"
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure %s: mean request response time vs replication factor (%s)", number, sw.Trace),
		Header: append([]string{"replication"}, onlineAlgos()...),
	}
	for _, rf := range sw.RFs {
		row := []string{fmt.Sprint(rf)}
		for _, algo := range onlineAlgos() {
			r, _ := sw.Get(rf, algo)
			row = append(row, r.Mean.Round(time.Millisecond).String())
		}
		t.AddRow(row...)
	}
	return t
}

// Figure13 renders the 90th-percentile response time versus replication
// factor (Appendix A.3).
func (sw *ReplicationSweep) Figure13() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 13: 90th-percentile response time vs replication factor (%s)", sw.Trace),
		Header: append([]string{"replication"}, onlineAlgos()...),
	}
	for _, rf := range sw.RFs {
		row := []string{fmt.Sprint(rf)}
		for _, algo := range onlineAlgos() {
			r, _ := sw.Get(rf, algo)
			row = append(row, r.P90.Round(time.Millisecond).String())
		}
		t.AddRow(row...)
	}
	return t
}

// Figure9 renders the per-disk state-time breakdown at replication factor 3
// (Figure 9 for Cello, Figure 17 for Financial1). Disks are sorted by
// standby time as in the paper and summarized per decile.
func Figure9(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	number := "9"
	if tr == Financial {
		number = "17"
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	cost := sched.DefaultCost(storage.DefaultConfig().Power)
	t := &Table{
		Title:  fmt.Sprintf("Figure %s: per-disk time breakdown at replication factor 3 (%s); disks sorted by standby time, decile averages", number, tr),
		Header: []string{"algorithm", "disk decile", "standby%", "idle%", "active%", "spin%"},
	}
	for _, algo := range Algorithms() {
		run, err := cell(s, reqs, plc, algo, cost)
		if err != nil {
			return nil, err
		}
		appendBreakdownRows(t, algo, run.PerDisk)
	}
	return t, nil
}

func appendBreakdownRows(t *Table, algo string, perDisk []diskmodel.Stats) {
	stats := append([]diskmodel.Stats(nil), perDisk...)
	sort.Slice(stats, func(i, j int) bool {
		return stats[i].StandbyFraction() > stats[j].StandbyFraction()
	})
	deciles := 10
	if len(stats) < deciles {
		deciles = len(stats)
	}
	for dec := 0; dec < deciles; dec++ {
		lo := dec * len(stats) / deciles
		hi := (dec + 1) * len(stats) / deciles
		var standby, idle, active, spin, total float64
		for _, st := range stats[lo:hi] {
			standby += st.TimeIn[core.StateStandby].Seconds()
			idle += st.TimeIn[core.StateIdle].Seconds()
			active += st.TimeIn[core.StateActive].Seconds()
			spin += st.TimeIn[core.StateSpinUp].Seconds() + st.TimeIn[core.StateSpinDown].Seconds()
			total += st.Total().Seconds()
		}
		if total == 0 {
			total = 1
		}
		t.AddRow(algo, fmt.Sprintf("%d-%d%%", dec*10, (dec+1)*10),
			fmt.Sprintf("%.1f", 100*standby/total),
			fmt.Sprintf("%.1f", 100*idle/total),
			fmt.Sprintf("%.2f", 100*active/total),
			fmt.Sprintf("%.1f", 100*spin/total))
	}
}

// Figure10 renders the energy surface over replication factor and data
// locality (Appendix A.1): Random, Static and Heuristic under Zipf
// exponents from ZipfSteps and replication factors 1-5.
func Figure10(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	cost := sched.DefaultCost(storage.DefaultConfig().Power)
	algos := []string{AlgoRandom, AlgoStatic, AlgoHeuristic}
	t := &Table{
		Title:  fmt.Sprintf("Figure 10: normalized energy vs replication factor and data locality z (%s)", tr),
		Header: append([]string{"z", "replication"}, algos...),
	}
	type point struct {
		z  float64
		rf int
	}
	var points []point
	for _, z := range s.ZipfSteps {
		for _, rf := range ReplicationFactors() {
			points = append(points, point{z, rf})
		}
	}
	energies := make([][]float64, len(points))
	err := runParallel(len(points), s.Parallelism,
		s.Monitor.Track("figure10:"+tr.String(), len(points)), func(i int) error {
		p := points[i]
		plc, err := makePlacement(s, p.rf, p.z)
		if err != nil {
			return err
		}
		energies[i] = make([]float64, len(algos))
		for a, algo := range algos {
			run, err := cell(s, reqs, plc, algo, cost)
			if err != nil {
				return fmt.Errorf("z=%.2f rf=%d %s: %w", p.z, p.rf, algo, err)
			}
			energies[i][a] = run.NormEnergy
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		row := []string{fmt.Sprintf("%.2f", p.z), fmt.Sprint(p.rf)}
		for a := range algos {
			row = append(row, fmt.Sprintf("%.3f", energies[i][a]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure11 renders the cost-function sweep (Appendix A.2): normalized
// energy and mean response time of the online Heuristic for every
// (alpha, beta) pair, each normalized to that beta's alpha=0 run.
func Figure11(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	pwr := storage.DefaultConfig().Power
	t := &Table{
		Title:  fmt.Sprintf("Figure 11: cost-function tradeoff at replication factor 3 (%s); energy and response normalized to alpha=0", tr),
		Header: []string{"beta", "alpha", "norm energy", "norm response", "energy (abs)", "response (abs)"},
	}
	for _, beta := range s.Betas {
		var baseEnergy float64
		var baseResp time.Duration
		for i, alpha := range s.Alphas {
			cost := sched.CostConfig{Alpha: alpha, Beta: beta, Power: pwr}
			run, err := cell(s, reqs, plc, AlgoHeuristic, cost)
			if err != nil {
				return nil, fmt.Errorf("alpha=%v beta=%v: %w", alpha, beta, err)
			}
			if i == 0 {
				baseEnergy = run.NormEnergy
				baseResp = run.Mean
			}
			normResp := float64(run.Mean) / float64(baseResp)
			t.AddRow(fmt.Sprintf("%.0f", beta), fmt.Sprintf("%.1f", alpha),
				fmt.Sprintf("%.3f", run.NormEnergy/baseEnergy),
				fmt.Sprintf("%.3f", normResp),
				fmt.Sprintf("%.3f", run.NormEnergy),
				run.Mean.Round(time.Millisecond).String())
		}
	}
	return t, nil
}

// Figure12 renders the inverse cumulative response-time distribution
// P[response > x] at replication factor 3 (Appendix A.3), including the
// always-on baseline, which never pays spin-up delays.
func Figure12(s Scale, tr Trace) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	plc, err := makePlacement(s, 3, 1)
	if err != nil {
		return nil, err
	}
	cost := sched.DefaultCost(storage.DefaultConfig().Power)
	thresholds := metrics.LogSpace(time.Millisecond, 30*time.Second, 14)

	type series struct {
		name string
		ccdf []float64
	}
	var all []series

	// Always-on baseline: static routing, disks never sleep.
	aCfg := storage.DefaultConfig()
	aCfg.NumDisks = s.NumDisks
	aCfg.Policy = power.AlwaysOn{}
	aCfg.InitialState = core.StateIdle
	aRes, err := storage.RunOnline(aCfg, plc.Locations, sched.Static{Locations: plc.Locations}, reqs)
	if err != nil {
		return nil, err
	}
	all = append(all, series{"always-on", aRes.Response.CCDF(thresholds)})

	for _, algo := range onlineAlgos() {
		run, err := cell(s, reqs, plc, algo, cost)
		if err != nil {
			return nil, err
		}
		all = append(all, series{algo, run.Response.CCDF(thresholds)})
	}

	t := &Table{
		Title:  fmt.Sprintf("Figure 12: P[response time > x] at replication factor 3 (%s)", tr),
		Header: []string{"x"},
	}
	for _, sr := range all {
		t.Header = append(t.Header, sr.name)
	}
	for i, x := range thresholds {
		row := []string{x.Round(time.Millisecond).String()}
		for _, sr := range all {
			row = append(row, fmt.Sprintf("%.4f", sr.ccdf[i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
