package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Monitor is the live telemetry hub for parallel sweeps: every sweep run
// with a Scale carrying it reports per-cell progress, and the monitor
// serves the aggregate over HTTP (Serve) as
//
//	/healthz  — liveness, "ok" plus sweep counts
//	/metrics  — Prometheus text (esched_sweep_cells{...} series)
//	/progress — JSON: per-sweep totals and per-cell states
//
// The zero Monitor is not usable; call NewMonitor. A nil *Monitor is a
// valid no-op: Track returns a nil tracker whose methods all no-op, so
// sweeps pay one branch per cell when telemetry is off.
type Monitor struct {
	mu       sync.Mutex
	sweeps   []*SweepTracker
	col      *obs.Collector
	started  time.Time
}

// NewMonitor creates an empty telemetry hub.
func NewMonitor() *Monitor {
	return &Monitor{col: obs.NewCollector(), started: time.Now()}
}

// cellState is one cell's lifecycle stage.
type cellState int32

const (
	cellPending cellState = iota
	cellRunning
	cellDone
	cellFailed
)

func (s cellState) String() string {
	switch s {
	case cellRunning:
		return "running"
	case cellDone:
		return "done"
	case cellFailed:
		return "failed"
	default:
		return "pending"
	}
}

// SweepTracker reports one sweep's per-cell completion to its Monitor.
// All methods are safe on a nil receiver and safe for concurrent use by
// the sweep's worker pool.
type SweepTracker struct {
	name  string
	mu    sync.Mutex
	state []cellState
	start []time.Time
	took  []time.Duration
	ended bool

	running, done, failed *obs.Gauge
	total                 *obs.Gauge
}

// Track registers a sweep of n cells under name (unique per call: repeat
// names get a numeric suffix) and returns its tracker. On a nil monitor it
// returns nil, which every SweepTracker method accepts.
func (m *Monitor) Track(name string, n int) *SweepTracker {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.sweeps {
		if t.name == name {
			name = fmt.Sprintf("%s#%d", name, len(m.sweeps))
			break
		}
	}
	const cellsName = "esched_sweep_cells"
	const cellsHelp = "Sweep cells by sweep and lifecycle stage."
	t := &SweepTracker{
		name:    name,
		state:   make([]cellState, n),
		start:   make([]time.Time, n),
		took:    make([]time.Duration, n),
		total:   m.col.Gauge(cellsName, cellsHelp, obs.Label{Key: "sweep", Value: name}, obs.Label{Key: "stage", Value: "total"}),
		running: m.col.Gauge(cellsName, cellsHelp, obs.Label{Key: "sweep", Value: name}, obs.Label{Key: "stage", Value: "running"}),
		done:    m.col.Gauge(cellsName, cellsHelp, obs.Label{Key: "sweep", Value: name}, obs.Label{Key: "stage", Value: "done"}),
		failed:  m.col.Gauge(cellsName, cellsHelp, obs.Label{Key: "sweep", Value: name}, obs.Label{Key: "stage", Value: "failed"}),
	}
	t.total.Set(float64(n))
	m.sweeps = append(m.sweeps, t)
	return t
}

// cellStart marks cell i running.
func (t *SweepTracker) cellStart(i int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.state[i] = cellRunning
	t.start[i] = time.Now()
	t.mu.Unlock()
	t.running.Add(1)
}

// cellEnd marks cell i done or failed.
func (t *SweepTracker) cellEnd(i int, err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.took[i] = time.Since(t.start[i])
	if err != nil {
		t.state[i] = cellFailed
	} else {
		t.state[i] = cellDone
	}
	t.mu.Unlock()
	t.running.Add(-1)
	if err != nil {
		t.failed.Add(1)
	} else {
		t.done.Add(1)
	}
}

// Finish marks the sweep over (cells never started stay pending).
func (t *SweepTracker) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ended = true
	t.mu.Unlock()
}

// sweepProgress is the /progress JSON shape for one sweep.
type sweepProgress struct {
	Name    string  `json:"name"`
	Total   int     `json:"total"`
	Running int     `json:"running"`
	Done    int     `json:"done"`
	Failed  int     `json:"failed"`
	Ended   bool    `json:"ended"`
	Cells   []cellP `json:"cells"`
}

type cellP struct {
	Cell  int     `json:"cell"`
	State string  `json:"state"`
	Secs  float64 `json:"seconds,omitempty"`
}

func (t *SweepTracker) snapshot() sweepProgress {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := sweepProgress{Name: t.name, Total: len(t.state), Ended: t.ended}
	for i, s := range t.state {
		c := cellP{Cell: i, State: s.String()}
		switch s {
		case cellRunning:
			p.Running++
			c.Secs = time.Since(t.start[i]).Seconds()
		case cellDone:
			p.Done++
			c.Secs = t.took[i].Seconds()
		case cellFailed:
			p.Failed++
			c.Secs = t.took[i].Seconds()
		}
		p.Cells = append(p.Cells, c)
	}
	return p
}

// Handler returns the monitor's HTTP mux: /healthz, /metrics, /progress.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		n := len(m.sweeps)
		m.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok sweeps=%d uptime=%s\n", n, time.Since(m.started).Round(time.Second))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.col.WriteTo(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		sweeps := append([]*SweepTracker(nil), m.sweeps...)
		m.mu.Unlock()
		out := struct {
			Sweeps []sweepProgress `json:"sweeps"`
		}{Sweeps: []sweepProgress{}}
		for _, t := range sweeps {
			out.Sweeps = append(out.Sweeps, t.snapshot())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	return mux
}

// Serve starts the telemetry endpoint on addr (e.g. "localhost:0") and
// returns the bound address plus a shutdown function. Serving runs on a
// background goroutine; sweeps do not block on slow scrapers.
func (m *Monitor) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
