package experiments

import (
	"fmt"

	"repro/internal/account"
	"repro/internal/core"
)

// runTotals projects one measurement cell onto the accounting shape: the
// per-disk stats a sweep already carries hold everything the pricer needs
// (by-state joules, the horizon, the fleet size), which is why carbon and
// what-if tables are pure re-pricing of SweepCache hits — no cell is ever
// re-simulated for them.
func runTotals(r Run) account.RunTotals {
	t := account.RunTotals{Disks: len(r.PerDisk)}
	if len(r.PerDisk) > 0 {
		t.Horizon = r.PerDisk[0].Total()
	}
	for _, d := range r.PerDisk {
		for st := core.StateStandby; st <= core.StateSpinDown; st++ {
			t.ByState[st] += d.EnergyIn[st]
		}
	}
	return t
}

// CarbonTable prices every algorithm of the shared replication sweep at
// rf=3 under a grid profile and cost model: joules, gCO2e at the profile's
// horizon-mean intensity, and the energy/capex/total dollar split.
func CarbonTable(s Scale, tr Trace, g *account.GridProfile, cm account.CostModel) (*Table, error) {
	sw, err := SweepReplication(s, tr)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Carbon & cost: %s, rf=3, grid %s, tariff %s ($%.2f/kWh)",
			tr, g.Name, cm.Name, cm.USDPerKWh),
		Header: []string{"algorithm", "energy J", "gCO2e", "energy $", "capex $", "total $"},
	}
	for _, algo := range Algorithms() {
		r, ok := sw.Get(3, algo)
		if !ok {
			return nil, fmt.Errorf("experiments: sweep lacks rf=3 %s", algo)
		}
		p := account.PriceTotals(g, cm, runTotals(r))
		t.AddRow(algo,
			fmt.Sprintf("%.6g", p.EnergyJ),
			fmt.Sprintf("%.6g", p.GCO2e),
			fmt.Sprintf("%.4f", p.EnergyUSD),
			fmt.Sprintf("%.4f", p.CapexUSD),
			fmt.Sprintf("%.4f", p.TotalUSD))
	}
	return t, nil
}

// WhatIfRatios are the consolidation scenarios the what-if table compares:
// the measured fleet, a 20% consolidation, and 3-replicas-on-2-spindles
// (cloud-carbon-exporter's block-storage hypothesis).
func WhatIfRatios() []float64 { return []float64{1, 0.8, 2.0 / 3} }

// WhatIfTable answers "same workload, N% fewer physical disks" for every
// algorithm of the shared sweep at rf=3: each cached cell's totals are
// re-priced under account.Consolidation at each ratio — work-conserving
// energy unchanged, idle/standby floor scaled, rack overhead on top —
// without re-running a single simulation.
func WhatIfTable(s Scale, tr Trace, g *account.GridProfile, cm account.CostModel) (*Table, error) {
	sw, err := SweepReplication(s, tr)
	if err != nil {
		return nil, err
	}
	con := account.DefaultConsolidation()
	t := &Table{
		Title: fmt.Sprintf("What-if consolidation: %s, rf=3, grid %s, tariff %s (rack overhead %.0f%%)",
			tr, g.Name, cm.Name, con.RackOverhead*100),
		Header: []string{"algorithm", "ratio", "disks", "energy J", "gCO2e", "total $", "vs measured"},
	}
	for _, algo := range Algorithms() {
		r, ok := sw.Get(3, algo)
		if !ok {
			return nil, fmt.Errorf("experiments: sweep lacks rf=3 %s", algo)
		}
		base := runTotals(r)
		var baseline float64
		for _, ratio := range WhatIfRatios() {
			w := con.WhatIf(base, ratio)
			p := account.PriceTotals(g, cm, w)
			if ratio == 1 {
				baseline = p.TotalUSD
			}
			delta := "-"
			if ratio != 1 && baseline > 0 {
				delta = fmt.Sprintf("%+.1f%%", (p.TotalUSD-baseline)/baseline*100)
			}
			t.AddRow(algo,
				fmt.Sprintf("%.2f", ratio),
				fmt.Sprint(w.Disks),
				fmt.Sprintf("%.6g", p.EnergyJ),
				fmt.Sprintf("%.6g", p.GCO2e),
				fmt.Sprintf("%.4f", p.TotalUSD),
				delta)
		}
	}
	return t, nil
}
