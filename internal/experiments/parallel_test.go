package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunParallelExecutesAllJobs(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 1, 3, 100} {
		workers := workers
		var count atomic.Int64
		seen := make([]atomic.Bool, 50)
		err := runParallel(50, workers, nil, func(i int) error {
			count.Add(1)
			if seen[i].Swap(true) {
				t.Errorf("job %d ran twice", i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count.Load() != 50 {
			t.Errorf("workers=%d: ran %d jobs", workers, count.Load())
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("boom")
	err := runParallel(20, 4, nil, func(i int) error {
		if i == 13 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunParallelZeroJobs(t *testing.T) {
	t.Parallel()
	if err := runParallel(0, 4, nil, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("err = %v", err)
	}
}

// TestRunParallelFailsFast pins the pool's cancellation: once a job errors,
// the feeder stops handing out work, so the long tail of jobs is skipped
// instead of being executed to completion.
func TestRunParallelFailsFast(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("boom")
	var started atomic.Int64
	err := runParallel(100000, 2, nil, func(i int) error {
		started.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	// The first error closes the pool; only jobs already in a worker's
	// hands may still run, never anything close to the full input.
	if n := started.Load(); n > 1000 {
		t.Errorf("%d jobs started after a failure, want fail-fast", n)
	}
}

func TestRunParallelSequentialStopsEarly(t *testing.T) {
	t.Parallel()
	ran := 0
	err := runParallel(10, 1, nil, func(i int) error {
		ran++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 3 {
		t.Errorf("sequential path ran %d jobs, err %v; want 3 jobs and an error", ran, err)
	}
}
