// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and Appendix A). Each FigureN function returns a
// typed result that renders as an aligned text table; cmd/figures drives
// them all, and the root bench harness wraps them as benchmarks.
package experiments

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/offline"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Scale sizes an experiment. FullScale matches the paper's setup
// (Section 4: 180 disks, 70,000 requests, 30,000 blocks); SmallScale keeps
// unit tests and benchmarks fast while preserving every qualitative trend.
type Scale struct {
	NumDisks    int
	NumRequests int
	NumBlocks   int
	Seed        int64
	// BatchInterval is the WSC scheduling interval (paper: 0.1 s).
	BatchInterval time.Duration
	// MWIS graph construction bounds and refinement passes.
	MWISSuccessors int
	MWISMaxNodes   int
	MWISPasses     int
	// ZipfSteps are the data-locality exponents swept in Figure 10
	// (paper: 0 to 1 every 0.1).
	ZipfSteps []float64
	// Alphas and Betas are the cost-function sweep of Figure 11.
	Alphas []float64
	Betas  []float64
	// Parallelism bounds concurrent simulation cells (0 = just over half
	// the CPUs; see runParallel).
	Parallelism int
	// Workers bounds the goroutines inside the MWIS pipeline (sharded
	// graph construction and the component-parallel solve), split across
	// concurrently running cells by SolverWorkers. 0 or 1 means serial;
	// results are bit-identical for every value.
	Workers int
	// Shards partitions each simulated cell's event kernel into per-rack
	// sub-kernels (see simkernel.Sharded). 0 or 1 selects the serial
	// kernel; larger values must evenly divide NumDisks so every shard
	// owns whole racks of equal size. Results — figures, traces, sample
	// order — are bit-identical at any value, so Shards only affects
	// speed (and is excluded from the sweep-cache key for that reason).
	Shards int
	// Monitor, when non-nil, receives live per-cell progress from the
	// parallel sweeps (see Monitor.Serve for the HTTP endpoint). Telemetry
	// never influences results; a nil monitor costs one branch per cell.
	Monitor *Monitor
	// Doctor attaches a runtime-verification suite (internal/obs/monitor)
	// to every simulated cell: power-machine legality, energy and request
	// conservation, replica validity, threshold compliance and latency
	// sanity are checked live, and any violation fails the cell. The
	// offline MWIS cells are analytic (no event stream) and are not
	// doctored. Verification never influences results.
	Doctor bool
	// FlightDir, with Doctor set, arms an always-on flight recorder on
	// every monitored cell: each cell rides its own recorder (its ring is
	// owned by the cell's goroutine) recording into a distinct cell-NNN
	// subdirectory, and a doctor violation freezes the cell's recent event
	// window into a replayable dump there (inspect with `tracelens last`).
	// Without Doctor no trigger can fire, so the field is ignored. Like
	// Doctor, it never influences results and is excluded from the
	// sweep-cache key.
	FlightDir string
}

// FullScale reproduces the paper's experimental scale.
func FullScale() Scale {
	return Scale{
		NumDisks:       180,
		NumRequests:    70000,
		NumBlocks:      30000,
		Seed:           1,
		BatchInterval:  100 * time.Millisecond,
		MWISSuccessors: 4,
		MWISMaxNodes:   5_000_000,
		MWISPasses:     8,
		ZipfSteps:      []float64{0, 0.25, 0.5, 0.75, 1},
		Alphas:         []float64{0, 0.2, 0.4, 0.6, 0.8, 1},
		Betas:          []float64{1, 10, 100, 500, 1000},
		Workers:        runtime.GOMAXPROCS(0),
	}
}

// SmallScale is a fast configuration for tests and benchmarks.
func SmallScale() Scale {
	return Scale{
		NumDisks:       24,
		NumRequests:    6000,
		NumBlocks:      2500,
		Seed:           1,
		BatchInterval:  100 * time.Millisecond,
		MWISSuccessors: 4,
		MWISMaxNodes:   2_000_000,
		MWISPasses:     4,
		ZipfSteps:      []float64{0, 0.5, 1},
		Alphas:         []float64{0, 0.2, 0.6, 1},
		Betas:          []float64{1, 10, 100},
		Workers:        runtime.GOMAXPROCS(0),
	}
}

// Validate checks the scale parameters.
func (s Scale) Validate() error {
	switch {
	case s.NumDisks <= 0 || s.NumRequests < 0 || s.NumBlocks <= 0:
		return fmt.Errorf("experiments: invalid sizes in %+v", s)
	case s.BatchInterval <= 0:
		return fmt.Errorf("experiments: batch interval %s", s.BatchInterval)
	case s.MWISPasses < 0:
		return fmt.Errorf("experiments: MWIS passes %d", s.MWISPasses)
	case s.Shards < 0:
		return fmt.Errorf("experiments: negative shard count %d", s.Shards)
	case s.Shards > s.NumDisks:
		return fmt.Errorf("experiments: %d shards exceed %d disks (a shard must own at least one disk)", s.Shards, s.NumDisks)
	case s.Shards > 1 && s.NumDisks%s.Shards != 0:
		return fmt.Errorf("experiments: %d shards do not evenly divide %d disks (a rack must not straddle shards)", s.Shards, s.NumDisks)
	}
	return nil
}

// SolverWorkers returns the worker bound each MWIS cell passes to the
// offline pipeline: the Workers budget split across the cells that may run
// concurrently (Parallelism), at least 1. The pipeline's results are
// worker-count independent, so the split only affects speed and memory.
func (s Scale) SolverWorkers() int {
	if s.Workers <= 0 {
		return 1
	}
	cells := s.Parallelism
	if cells <= 0 {
		cells = runtime.GOMAXPROCS(0)/2 + 1
	}
	if w := s.Workers / cells; w > 1 {
		return w
	}
	return 1
}

// Trace selects the evaluation workload.
type Trace int

// The two workloads of Section 4.1.
const (
	Cello     Trace = iota + 1 // bursty timesharing trace (HP Cello)
	Financial                  // smoother OLTP trace (UMass Financial1)
)

// String implements fmt.Stringer.
func (t Trace) String() string {
	switch t {
	case Cello:
		return "cello"
	case Financial:
		return "financial1"
	default:
		return fmt.Sprintf("Trace(%d)", int(t))
	}
}

// Requests generates the trace's synthetic request stream at this scale.
func (t Trace) Requests(s Scale) []core.Request {
	switch t {
	case Cello:
		return workload.CelloLike(s.NumRequests, s.NumBlocks, s.Seed)
	case Financial:
		return workload.FinancialLike(s.NumRequests, s.NumBlocks, s.Seed)
	default:
		panic(fmt.Sprintf("experiments: invalid trace %d", int(t)))
	}
}

// Algorithm names, in the paper's presentation order.
const (
	AlgoRandom    = "random"
	AlgoStatic    = "static"
	AlgoHeuristic = "energy-aware heuristic"
	AlgoWSC       = "energy-aware WSC"
	AlgoMWIS      = "energy-aware MWIS"
)

// Algorithms lists the five schedulers compared throughout Section 5.
func Algorithms() []string {
	return []string{AlgoRandom, AlgoStatic, AlgoHeuristic, AlgoWSC, AlgoMWIS}
}

// Run is one (trace, replication, locality, algorithm) measurement cell.
type Run struct {
	Algo string
	// NormEnergy is energy normalized to the always-on configuration.
	NormEnergy float64
	SpinUps    int
	SpinDowns  int
	// Mean and P90 response times; zero for the offline MWIS model, which
	// by assumption has no spin-up delay (Section 2.2) and is therefore
	// omitted from the paper's response-time plots.
	Mean time.Duration
	P90  time.Duration
	// Response holds the full sample set for CCDF plots (nil for MWIS).
	Response *metrics.ResponseTimes
	// PerDisk has one entry per disk for the Figure 9/17 breakdowns.
	PerDisk []diskmodel.Stats
}

// cell runs one algorithm against one placement and trace.
func cell(s Scale, reqs []core.Request, plc *placement.Placement, algo string, cost sched.CostConfig) (Run, error) {
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks
	cfg.Shards = s.Shards

	if algo == AlgoMWIS {
		schedule, _, err := offline.SolveRefined(reqs, plc.Locations, cfg.Power, offline.BuildOptions{
			MaxSuccessors: s.MWISSuccessors,
			MaxNodes:      s.MWISMaxNodes,
			Workers:       s.SolverWorkers(),
		}, s.MWISPasses)
		if err != nil {
			return Run{}, fmt.Errorf("experiments: MWIS pipeline: %w", err)
		}
		horizon := offline.Horizon(reqs, cfg.Power)
		perDisk, err := offline.Breakdown(reqs, schedule, cfg.Power, s.NumDisks, horizon)
		if err != nil {
			return Run{}, err
		}
		spinUps, spinDowns := 0, 0
		for _, st := range perDisk {
			spinUps += st.SpinUps
			spinDowns += st.SpinDowns
		}
		return Run{
			Algo:       algo,
			NormEnergy: offline.BreakdownEnergy(perDisk) / offline.AlwaysOnEnergy(cfg.Power, s.NumDisks, horizon),
			SpinUps:    spinUps,
			SpinDowns:  spinDowns,
			PerDisk:    perDisk,
		}, nil
	}

	var suite *monitor.Suite
	var tr *obs.Tracer
	var rec *flight.Recorder
	var recDir string
	var opts []storage.RunOption
	if s.Doctor {
		suite = monitor.NewSuite(monitor.Config{
			Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: plc.Locations,
		})
		// A one-slot tracer feeds the live tee; traced schedulers below share
		// it so decisions are replica-checked too.
		tr = obs.NewTracer(1)
		opts = append(opts, storage.WithTracer(tr), storage.WithMonitor(suite))
		if s.FlightDir != "" {
			// One recorder per cell: the ring is written from the cell's own
			// goroutine, and the sequence number keeps parallel cells' dump
			// directories distinct. Nothing touches the filesystem unless a
			// violation actually triggers a dump.
			recDir = filepath.Join(s.FlightDir, fmt.Sprintf("cell-%03d", flightCells.Add(1)))
			rec = flight.New(flight.Config{Dir: recDir, Pprof: true})
			opts = append(opts, storage.WithFlight(rec))
		}
	}

	var res *storage.Result
	var err error
	switch algo {
	case AlgoRandom:
		res, err = storage.RunOnline(cfg, plc.Locations, sched.NewRandom(plc.Locations, s.Seed+1), reqs, opts...)
	case AlgoStatic:
		res, err = storage.RunOnline(cfg, plc.Locations, sched.Static{Locations: plc.Locations}, reqs, opts...)
	case AlgoHeuristic:
		res, err = storage.RunOnline(cfg, plc.Locations,
			sched.Heuristic{Locations: plc.Locations, Cost: cost, Tracer: tr}, reqs, opts...)
	case AlgoWSC:
		res, err = storage.RunBatch(cfg, plc.Locations,
			sched.WSC{Locations: plc.Locations, Cost: cost, Scratch: &sched.CoverScratch{}, Tracer: tr},
			reqs, s.BatchInterval, opts...)
	default:
		return Run{}, fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
	if err != nil {
		return Run{}, err
	}
	if suite != nil && !suite.Passed() {
		var sb strings.Builder
		suite.WriteReport(&sb)
		if rec != nil && rec.Dumps() > 0 {
			fmt.Fprintf(&sb, "flight dump: %s (tracelens last %s)\n", recDir, recDir)
		}
		return Run{}, fmt.Errorf("experiments: doctor: %s violated %d invariants:\n%s",
			algo, suite.Total(), sb.String())
	}
	if rec != nil {
		if ferr := rec.Err(); ferr != nil {
			return Run{}, fmt.Errorf("experiments: flight recorder: %w", ferr)
		}
	}
	return Run{
		Algo:       algo,
		NormEnergy: res.NormalizedEnergy(),
		SpinUps:    res.SpinUps,
		SpinDowns:  res.SpinDowns,
		Mean:       res.Response.Mean(),
		P90:        res.Response.Percentile(90),
		Response:   &res.Response,
		PerDisk:    res.PerDisk,
	}, nil
}

// placementBuilds counts placement.Generate calls, so tests can verify the
// sharing discipline: one build per (rf, zipf) cell group, zero on a sweep
// cache hit.
var placementBuilds atomic.Int64

// flightCells numbers flight-armed cells process-wide so parallel cells
// never share a dump directory. The numbering order is scheduling-dependent
// and deliberately carries no meaning beyond uniqueness.
var flightCells atomic.Int64

// makePlacement builds the Section 4.2 layout for a replication factor and
// locality exponent.
func makePlacement(s Scale, rf int, z float64) (*placement.Placement, error) {
	placementBuilds.Add(1)
	return placement.Generate(placement.GenerateConfig{
		NumDisks:          s.NumDisks,
		NumBlocks:         s.NumBlocks,
		ReplicationFactor: rf,
		ZipfExponent:      z,
		Seed:              s.Seed + 7,
	})
}

// ReplicationFactors is the sweep range of Figures 6-8 and 13-16.
func ReplicationFactors() []int { return []int{1, 2, 3, 4, 5} }

// ReplicationSweep holds the shared measurements behind Figures 6, 7, 8 and
// 13 (Cello) or 14, 15, 16 (Financial1): every algorithm at every
// replication factor with Zipf(1) data locality.
type ReplicationSweep struct {
	Trace Trace
	Scale Scale
	RFs   []int
	// Runs[rf] holds one Run per algorithm, in Algorithms() order.
	Runs map[int][]Run
}

// SweepReplication returns the shared replication-factor sweep, consulting
// the process-wide SweepCache: the first call for a given (Scale, Trace,
// cost, system-config) key simulates the full sweep and later calls (the
// other figures sharing it) reuse the stored, field-identical result.
// Doctored scales always simulate fresh (see SweepCache).
func SweepReplication(s Scale, tr Trace) (*ReplicationSweep, error) {
	return DefaultSweepCache().Sweep(s, tr)
}

// sweepReplicationFresh runs the replication-factor sweep. Cells (one per
// replication factor and algorithm) execute on a bounded worker pool; they
// share only read-only inputs, and each replication factor's placement is
// built once and shared across its five algorithm cells.
func sweepReplicationFresh(s Scale, tr Trace) (*ReplicationSweep, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reqs := tr.Requests(s)
	cost := sched.DefaultCost(storage.DefaultConfig().Power)
	rfs := ReplicationFactors()
	algos := Algorithms()

	placements := make([]*placement.Placement, len(rfs))
	for i, rf := range rfs {
		plc, err := makePlacement(s, rf, 1)
		if err != nil {
			return nil, err
		}
		placements[i] = plc
	}

	results := make([][]Run, len(rfs))
	for i := range results {
		results[i] = make([]Run, len(algos))
	}
	err := runParallel(len(rfs)*len(algos), s.Parallelism,
		s.Monitor.Track("replication:"+tr.String(), len(rfs)*len(algos)), func(i int) error {
		rfIdx, algoIdx := i/len(algos), i%len(algos)
		run, err := cell(s, reqs, placements[rfIdx], algos[algoIdx], cost)
		if err != nil {
			return fmt.Errorf("rf=%d %s: %w", rfs[rfIdx], algos[algoIdx], err)
		}
		results[rfIdx][algoIdx] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	sweep := &ReplicationSweep{Trace: tr, Scale: s, RFs: rfs, Runs: map[int][]Run{}}
	for i, rf := range rfs {
		sweep.Runs[rf] = results[i]
	}
	return sweep, nil
}

// Get returns the run for an algorithm at a replication factor.
func (sw *ReplicationSweep) Get(rf int, algo string) (Run, bool) {
	for _, r := range sw.Runs[rf] {
		if r.Algo == algo {
			return r, true
		}
	}
	return Run{}, false
}
