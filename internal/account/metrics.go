package account

import (
	"repro/internal/obs"
)

// Metric family names exported by a bound Accumulator. Both follow the
// esched_energy_joules_total discipline: registered (and rendered, even
// at zero) up front, incremented approximately as events stream, then
// overwritten with the authoritative report totals at Finalize so the
// export reconciles exactly with the run report.
const (
	MetricCarbon    = "esched_carbon_gco2e_total"
	MetricCost      = "esched_cost_usd_total"
	MetricIntensity = "esched_carbon_intensity_gco2e_kwh"
)

// binding holds the Prometheus series a live accumulator feeds.
type binding struct {
	carbon    *obs.Counter
	energyUSD *obs.Counter
	capexUSD  *obs.Counter
	intensity *obs.Gauge

	boundIdx int // next grid boundary to cross (gauge updates)
}

// Bind registers the accumulator's carbon/cost families on the collector
// and streams live (approximate) increments into them; Finalize
// reconciles the counters to the report totals bit-exactly. Bind is a
// no-op on a nil collector.
func (a *Accumulator) Bind(c *obs.Collector) {
	if c == nil {
		return
	}
	a.m = &binding{
		carbon: c.Counter(MetricCarbon,
			"Grams of CO2-equivalent attributed to disk energy under the run's grid profile.",
			obs.Label{Key: "grid", Value: a.grid.Name}),
		energyUSD: c.Counter(MetricCost,
			"Run cost in US dollars by component (energy tariff, amortized disk capex).",
			obs.Label{Key: "component", Value: "energy"}),
		capexUSD: c.Counter(MetricCost,
			"Run cost in US dollars by component (energy tariff, amortized disk capex).",
			obs.Label{Key: "component", Value: "capex"}),
		intensity: c.Gauge(MetricIntensity,
			"Grid carbon intensity in effect at the current virtual time.",
			obs.Label{Key: "grid", Value: a.grid.Name}),
	}
	a.m.intensity.Set(a.grid.IntensityAt(0))
}

// observe streams approximate live increments for one settling event: the
// settled joules priced at the instantaneous intensity. The capex counter
// has no meaningful live increment; it stays at zero until reconcile.
func (b *binding) observe(a *Accumulator, ev obs.Event) {
	j := ev.EnergyJ + ev.ImpulseJ
	if j != 0 {
		intensity := a.grid.IntensityAt(ev.At)
		b.carbon.Add(intensity * j / JoulesPerKWh)
		b.energyUSD.Add(a.cost.EnergyUSD(j))
	}
	for {
		next, ok := a.grid.boundary(b.boundIdx)
		if !ok || next > ev.At {
			break
		}
		b.boundIdx++
		b.intensity.Set(a.grid.IntensityAt(next))
	}
}

// reconcile overwrites the live counters with the authoritative report
// totals, the same end-of-run discipline as esched_energy_joules_total.
// The intensity gauge is pinned to the horizon's intensity so the final
// export is a pure function of the event stream (replay-verifiable).
func (b *binding) reconcile(a *Accumulator, r Report) {
	b.carbon.Reconcile(r.GCO2e)
	b.energyUSD.Reconcile(r.EnergyUSD)
	b.capexUSD.Reconcile(r.CapexUSD)
	b.intensity.Set(a.grid.IntensityAt(r.Horizon))
}
