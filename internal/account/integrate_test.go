package account

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
)

// testPower has distinct per-state draws and instantaneous (impulse-
// accounted) spin transitions, so window splits are easy to compute by
// hand: idle 1 W, active 2 W, standby 0.5 W.
func testPower() power.Config {
	return power.Config{
		ActivePower:    2,
		IdlePower:      1,
		StandbyPower:   0.5,
		SpinUpEnergy:   10,
		SpinDownEnergy: 5,
	}
}

func mustAcc(t *testing.T, g *GridProfile) *Accumulator {
	t.Helper()
	a, err := NewAccumulator(testPower(), g, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func TestAccumulatorWindowsSegments(t *testing.T) {
	// One disk: idle [0,3s), active [3s,5s), idle [5s,10s]; boundary at 4s.
	g := &GridProfile{Name: "step", Steps: []GridStep{{0, 100}, {4 * time.Second, 200}}}
	a := mustAcc(t, g)
	cfg := testPower()
	a.Observe(obs.Event{At: sec(3), Kind: obs.KindPower, Disk: 0,
		From: core.StateIdle, To: core.StateActive, EnergyJ: cfg.Accrual(core.StateIdle, sec(3))})
	a.Observe(obs.Event{At: sec(5), Kind: obs.KindPower, Disk: 0,
		From: core.StateActive, To: core.StateIdle, EnergyJ: cfg.Accrual(core.StateActive, sec(2))})
	a.Observe(obs.Event{At: sec(10), Kind: obs.KindEnd, Disk: 0,
		From: core.StateIdle, To: core.StateIdle, EnergyJ: cfg.Accrual(core.StateIdle, sec(5))})
	a.Observe(obs.Event{At: sec(10), Kind: obs.KindRunEnd})
	r := a.Finalize()

	if len(r.Windows) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(r.Windows), r.Windows)
	}
	// Window 1 [0,4s) at 100: idle 3 J settled + active pro-rated 1s*2W = 2 J.
	w := r.Windows[0]
	if w.Start != 0 || w.End != sec(4) || w.Intensity != 100 {
		t.Fatalf("window 1 shape %+v", w)
	}
	if w.ByState[core.StateIdle] != 3 || w.ByState[core.StateActive] != 2 || w.EnergyJ != 5 {
		t.Fatalf("window 1 energy %+v", w)
	}
	// Window 2 [4s,10s] at 200: remaining idle 5 J + active 2 J.
	w = r.Windows[1]
	if w.Start != sec(4) || w.End != sec(10) || w.Intensity != 200 {
		t.Fatalf("window 2 shape %+v", w)
	}
	if w.ByState[core.StateIdle] != 5 || w.ByState[core.StateActive] != 2 || w.EnergyJ != 7 {
		t.Fatalf("window 2 energy %+v", w)
	}
	if r.EnergyJ != 12 || r.ByState[core.StateIdle] != 8 || r.ByState[core.StateActive] != 4 {
		t.Fatalf("totals %+v", r)
	}
	wantG := 100*5/JoulesPerKWh + 200*7/JoulesPerKWh
	if r.GCO2e != wantG {
		t.Fatalf("gCO2e %v, want %v", r.GCO2e, wantG)
	}
	if r.Horizon != sec(10) || r.Disks != 1 {
		t.Fatalf("report meta %+v", r)
	}
}

func TestAccumulatorImpulseOnBoundary(t *testing.T) {
	// An impulse exactly on a window boundary belongs to the later window;
	// a segment ending exactly on the boundary belongs to the earlier one.
	g := &GridProfile{Name: "step", Steps: []GridStep{{0, 100}, {4 * time.Second, 200}}}
	a := mustAcc(t, g)
	cfg := testPower()
	a.Observe(obs.Event{At: sec(4), Kind: obs.KindPower, Disk: 0,
		From: core.StateIdle, To: core.StateSpinDown,
		EnergyJ: cfg.Accrual(core.StateIdle, sec(4)), ImpulseJ: cfg.SpinDownEnergy})
	a.Observe(obs.Event{At: sec(6), Kind: obs.KindEnd, Disk: 0,
		From: core.StateSpinDown, To: core.StateSpinDown,
		EnergyJ: cfg.Accrual(core.StateSpinDown, sec(2))})
	a.Observe(obs.Event{At: sec(6), Kind: obs.KindRunEnd})
	r := a.Finalize()

	if len(r.Windows) != 2 {
		t.Fatalf("got %d windows: %+v", len(r.Windows), r.Windows)
	}
	if w := r.Windows[0]; w.ByState[core.StateIdle] != 4 || w.ByState[core.StateSpinDown] != 0 {
		t.Fatalf("window 1 %+v: idle accrual should settle at the boundary, the impulse should not", w)
	}
	if w := r.Windows[1]; w.ByState[core.StateSpinDown] != cfg.SpinDownEnergy {
		t.Fatalf("window 2 %+v: the boundary impulse belongs here", w)
	}
}

func TestAccumulatorMultipleDisksAndPeriods(t *testing.T) {
	// Two disks across a periodic 2s grid; the final cumulative reading
	// must equal the per-disk settled sums in ascending disk order.
	g := &GridProfile{Name: "cycle", Period: 2 * time.Second,
		Steps: []GridStep{{0, 100}, {time.Second, 300}}}
	a := mustAcc(t, g)
	cfg := testPower()
	// Disk 1 first in event order; disk 0 revealed later — ByState must
	// still sum disk 0 before disk 1.
	a.Observe(obs.Event{At: sec(3), Kind: obs.KindPower, Disk: 1,
		From: core.StateIdle, To: core.StateActive, EnergyJ: cfg.Accrual(core.StateIdle, sec(3))})
	a.Observe(obs.Event{At: sec(5), Kind: obs.KindEnd, Disk: 1,
		From: core.StateActive, To: core.StateActive, EnergyJ: cfg.Accrual(core.StateActive, sec(2))})
	a.Observe(obs.Event{At: sec(5), Kind: obs.KindEnd, Disk: 0,
		From: core.StateStandby, To: core.StateStandby, EnergyJ: cfg.Accrual(core.StateStandby, sec(5))})
	a.Observe(obs.Event{At: sec(5), Kind: obs.KindRunEnd})
	r := a.Finalize()

	// Boundaries at 1,2,3,4s → 5 windows over [0,5s].
	if len(r.Windows) != 5 {
		t.Fatalf("got %d windows: %+v", len(r.Windows), r.Windows)
	}
	for i, want := range []float64{100, 300, 100, 300, 100} {
		if r.Windows[i].Intensity != want {
			t.Fatalf("window %d intensity %v, want %v", i, r.Windows[i].Intensity, want)
		}
	}
	if r.ByState[core.StateIdle] != 3 || r.ByState[core.StateActive] != 4 || r.ByState[core.StateStandby] != 2.5 {
		t.Fatalf("totals %+v", r.ByState)
	}
	// Telescoping: the per-window energies sum (within fp) to the totals,
	// and the windows partition [0, horizon].
	var sum float64
	for i, w := range r.Windows {
		sum += w.EnergyJ
		if i > 0 && w.Start != r.Windows[i-1].End {
			t.Fatalf("window %d starts at %v, previous ended %v", i, w.Start, r.Windows[i-1].End)
		}
	}
	if r.Windows[0].Start != 0 || r.Windows[len(r.Windows)-1].End != r.Horizon {
		t.Fatalf("windows do not span the run: %+v", r.Windows)
	}
	if diff := sum - r.EnergyJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("window sum %v vs total %v", sum, r.EnergyJ)
	}
}

func TestAccumulatorFlatSingleWindow(t *testing.T) {
	a := mustAcc(t, FlatGrid())
	cfg := testPower()
	a.Observe(obs.Event{At: sec(7), Kind: obs.KindEnd, Disk: 0,
		From: core.StateIdle, To: core.StateIdle, EnergyJ: cfg.Accrual(core.StateIdle, sec(7))})
	a.Observe(obs.Event{At: sec(7), Kind: obs.KindRunEnd})
	r := a.Finalize()
	if len(r.Windows) != 1 {
		t.Fatalf("flat grid produced %d windows", len(r.Windows))
	}
	if r.GCO2e != 475*7/JoulesPerKWh {
		t.Fatalf("gCO2e %v", r.GCO2e)
	}
	// Finalize is idempotent and cached.
	if r2 := a.Finalize(); r2.GCO2e != r.GCO2e || len(r2.Windows) != 1 {
		t.Fatalf("second Finalize differs: %+v", r2)
	}
}

func TestAccumulatorSnapshotPartial(t *testing.T) {
	a := mustAcc(t, FlatGrid())
	cfg := testPower()
	if g, u := a.Snapshot(); g != 0 || u != 0 {
		t.Fatalf("empty snapshot %v %v", g, u)
	}
	a.Observe(obs.Event{At: sec(2), Kind: obs.KindPower, Disk: 0,
		From: core.StateIdle, To: core.StateActive, EnergyJ: cfg.Accrual(core.StateIdle, sec(2))})
	g, u := a.Snapshot()
	if g != 475*2/JoulesPerKWh {
		t.Fatalf("snapshot gCO2e %v", g)
	}
	if u <= 0 {
		t.Fatalf("snapshot cost %v", u)
	}
}

func TestWhatIfConsolidation(t *testing.T) {
	c := DefaultConsolidation()
	base := RunTotals{Horizon: time.Hour, Disks: 24}
	base.ByState[core.StateActive] = 100
	base.ByState[core.StateSpinUp] = 30
	base.ByState[core.StateSpinDown] = 10
	base.ByState[core.StateIdle] = 200
	base.ByState[core.StateStandby] = 60

	oh := 1 + c.RackOverhead
	full := c.WhatIf(base, 1)
	if full.Disks != 24 {
		t.Fatalf("ratio 1 disks %d", full.Disks)
	}
	// Overhead applies uniformly at ratio 1.
	if full.ByState[core.StateActive] != 100*oh || full.ByState[core.StateIdle] != 200*1*oh {
		t.Fatalf("ratio 1 totals %+v", full.ByState)
	}

	ratio := 2.0 / 3
	twoThirds := c.WhatIf(base, ratio)
	if twoThirds.Disks != 16 {
		t.Fatalf("ratio 2/3 disks %d, want 16", twoThirds.Disks)
	}
	// Work-conserving states keep only the overhead; floor states scale.
	if twoThirds.ByState[core.StateActive] != 100*oh || twoThirds.ByState[core.StateSpinUp] != 30*oh {
		t.Fatalf("work states scaled: %+v", twoThirds.ByState)
	}
	wantIdle := base.ByState[core.StateIdle] * ratio * oh
	if got := twoThirds.ByState[core.StateIdle]; got != wantIdle {
		t.Fatalf("idle %v, want %v", got, wantIdle)
	}
	if twoThirds.Energy() >= full.Energy() {
		t.Fatal("consolidation did not reduce energy")
	}
}

func TestPriceTotals(t *testing.T) {
	g := &GridProfile{Name: "step", Steps: []GridStep{{0, 100}, {time.Hour, 300}}}
	cm := CostModel{Name: "t", USDPerKWh: 0.2, DiskCapexUSD: 100, AmortYears: 1}
	tot := RunTotals{Horizon: 2 * time.Hour, Disks: 2}
	tot.ByState[core.StateIdle] = JoulesPerKWh // exactly 1 kWh
	p := PriceTotals(g, cm, tot)
	if p.EnergyJ != JoulesPerKWh {
		t.Fatalf("energy %v", p.EnergyJ)
	}
	if p.GCO2e != 200 { // mean of 100 and 300 over the two hours
		t.Fatalf("gCO2e %v, want 200", p.GCO2e)
	}
	if p.EnergyUSD != 0.2 {
		t.Fatalf("energy USD %v", p.EnergyUSD)
	}
	wantCapex := 100.0 * 2 * (2.0 / (365.25 * 24))
	if d := p.CapexUSD - wantCapex; d > 1e-12 || d < -1e-12 {
		t.Fatalf("capex %v, want %v", p.CapexUSD, wantCapex)
	}
	if p.TotalUSD != p.EnergyUSD+p.CapexUSD {
		t.Fatalf("total %v", p.TotalUSD)
	}
}
