package account

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
)

// acctDisk mirrors one power.Meter from the event stream: the state
// timeline plus by-state settled energy, accumulated with the meter's
// exact addition order (the idiom of internal/obs/monitor's energy
// invariant).
type acctDisk struct {
	state core.DiskState
	since time.Duration
	known bool
	ended bool
	by    [core.StateSpinDown + 1]float64
}

// Window is one grid-intensity window of a finished run.
type Window struct {
	Start     time.Duration
	End       time.Duration
	Intensity float64 // gCO2e/kWh in effect throughout the window
	ByState   [core.StateSpinDown + 1]float64
	EnergyJ   float64
	GCO2e     float64
}

// Report is the carbon/cost accounting of a run.
type Report struct {
	Grid    string
	Cost    string
	Horizon time.Duration
	Disks   int
	Windows []Window
	// ByState is the final cumulative by-state joule total, bit-identical
	// to the power.Meter sums in storage.Result.EnergyByState (the
	// windowed-energy monitor check pins this).
	ByState   [core.StateSpinDown + 1]float64
	EnergyJ   float64
	GCO2e     float64
	EnergyUSD float64
	CapexUSD  float64
	TotalUSD  float64
}

// Accumulator integrates the obs event stream against a grid profile and
// cost model. It is attached to a live run as a tracer observer
// (storage.WithAccounting) or fed a decoded log (tracelens carbon); both
// paths execute the identical floating-point program over the identical
// event order, so live and replayed reports are byte-identical.
//
// Windowing works by cumulative readings rather than by splitting
// segments: for every grid boundary b the accumulator reconstructs the
// fleet's cumulative by-state energy reading at b — settled segments
// ending at or before b count in full, a segment open across b counts its
// pro-rated power.Config.Accrual over [since, b) — and a window's energy
// is the difference of consecutive readings. An impulse landing exactly
// on a boundary belongs to the later window. The final reading is the sum
// of per-disk settled totals in ascending disk order, exactly the
// additions storage performs for Result.EnergyByState, which is what
// makes the sum of windows reconcile bit-exactly with Meter.Energy().
//
// The accumulator is not safe for concurrent use; storage feeds it from
// the single goroutine that owns the tracer.
type Accumulator struct {
	cfg  power.Config
	grid *GridProfile
	cost CostModel

	disks    map[core.DiskID]*acctDisk
	events   uint64
	maxAt    time.Duration
	horizon  time.Duration
	runEnded bool

	// bounds holds the grid boundaries generated so far; prorate[k] the
	// open-segment accruals pro-rated to bounds[k]; full[k] the settled
	// credits that first become visible in the reading at bounds[k]
	// (prefix-summed at report time).
	bounds  []time.Duration
	prorate [][core.StateSpinDown + 1]float64
	full    [][core.StateSpinDown + 1]float64

	final *Report
	m     *binding
}

// NewAccumulator returns an accumulator for runs under the given power
// configuration (the accrual arithmetic it mirrors), grid profile and
// cost model. The profile must Validate.
func NewAccumulator(cfg power.Config, grid *GridProfile, cost CostModel) (*Accumulator, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	return &Accumulator{
		cfg:   cfg,
		grid:  grid,
		cost:  cost,
		disks: map[core.DiskID]*acctDisk{},
	}, nil
}

// Grid returns the profile the accumulator prices against.
func (a *Accumulator) Grid() *GridProfile { return a.grid }

// CostModel returns the cost model the accumulator prices against.
func (a *Accumulator) CostModel() CostModel { return a.cost }

// Events returns the number of events observed.
func (a *Accumulator) Events() uint64 { return a.events }

// ensure extends the generated boundary list until its last entry is >= t
// or the profile has no further boundaries.
func (a *Accumulator) ensure(t time.Duration) {
	for len(a.bounds) == 0 || a.bounds[len(a.bounds)-1] < t {
		b, ok := a.grid.boundary(len(a.bounds))
		if !ok {
			return
		}
		a.bounds = append(a.bounds, b)
		a.prorate = append(a.prorate, [core.StateSpinDown + 1]float64{})
		a.full = append(a.full, [core.StateSpinDown + 1]float64{})
	}
}

// boundAt returns the index of the first boundary >= t (strict: > t),
// generating boundaries on demand; ok=false when the profile has no such
// boundary.
func (a *Accumulator) boundAt(t time.Duration, strict bool) (int, bool) {
	a.ensure(t + 1)
	k := sort.Search(len(a.bounds), func(i int) bool { return a.bounds[i] >= t })
	if strict && k < len(a.bounds) && a.bounds[k] == t {
		k++
	}
	if k >= len(a.bounds) {
		return 0, false
	}
	return k, true
}

// credit books a closed segment [since, at) in state st that settled j
// joules: full credit from the first boundary at or after the segment
// end, pro-rated accruals at boundaries the segment spans.
func (a *Accumulator) credit(st core.DiskState, since, at time.Duration, j float64) {
	if k, ok := a.boundAt(at, false); ok {
		a.full[k][st] += j
	}
	if at <= since {
		return
	}
	lo := sort.Search(len(a.bounds), func(i int) bool { return a.bounds[i] > since })
	for k := lo; k < len(a.bounds) && a.bounds[k] < at; k++ {
		a.prorate[k][st] += a.cfg.Accrual(st, a.bounds[k]-since)
	}
}

// impulse books an instantaneous transition impulse at time t into state
// st: it becomes visible strictly after t, so an impulse exactly on a
// boundary belongs to the later window.
func (a *Accumulator) impulse(st core.DiskState, t time.Duration, j float64) {
	if k, ok := a.boundAt(t, true); ok {
		a.full[k][st] += j
	}
}

// Observe folds one event into the accounting. It mirrors the energy
// monitor: power and end events settle the accrual on the state being
// left and any impulse on the transition state entered; everything else
// only advances the clock.
func (a *Accumulator) Observe(ev obs.Event) {
	a.events++
	if ev.At > a.maxAt {
		a.maxAt = ev.At
	}
	switch ev.Kind {
	case obs.KindRunEnd:
		a.runEnded, a.horizon = true, ev.At
		return
	case obs.KindPower, obs.KindEnd:
	default:
		return
	}
	if !ev.From.Valid() || !ev.To.Valid() {
		return // the doctor reports it; nothing to integrate
	}
	t := a.disks[ev.Disk]
	if t == nil {
		t = &acctDisk{}
		a.disks[ev.Disk] = t
	}
	if t.ended {
		return
	}
	if !t.known {
		// The first event reveals the state the disk has held since t=0.
		t.state, t.known = ev.From, true
	}
	a.credit(ev.From, t.since, ev.At, ev.EnergyJ)
	t.by[ev.From] += ev.EnergyJ
	if a.m != nil {
		a.m.observe(a, ev)
	}
	if ev.Kind == obs.KindEnd {
		t.ended = true
		return
	}
	if ev.ImpulseJ != 0 {
		t.by[ev.To] += ev.ImpulseJ
		a.impulse(ev.To, ev.At, ev.ImpulseJ)
	}
	t.state, t.since = ev.To, ev.At
}

// ByState returns the cumulative settled by-state joules: per-disk totals
// accumulated in event order, disks summed in ascending ID order — the
// exact additions storage performs for Result.EnergyByState.
func (a *Accumulator) ByState() [core.StateSpinDown + 1]float64 {
	ids := make([]core.DiskID, 0, len(a.disks))
	for d := range a.disks {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var tot [core.StateSpinDown + 1]float64
	for _, d := range ids {
		for st, j := range a.disks[d].by {
			tot[st] += j
		}
	}
	return tot
}

// window builds one report window from consecutive cumulative readings.
func (a *Accumulator) window(start, end time.Duration, from, to [core.StateSpinDown + 1]float64) Window {
	w := Window{Start: start, End: end, Intensity: a.grid.IntensityAt(start)}
	for st := range to {
		d := to[st] - from[st]
		w.ByState[st] = d
		w.EnergyJ += d
	}
	w.GCO2e = w.Intensity * w.EnergyJ / JoulesPerKWh
	return w
}

// reportAt prices the stream observed so far against horizon h. It is a
// pure read; open (unsettled) segments are not included.
func (a *Accumulator) reportAt(h time.Duration) Report {
	tot := a.ByState()
	r := Report{
		Grid:    a.grid.Name,
		Cost:    a.cost.Name,
		Horizon: h,
		Disks:   len(a.disks),
		ByState: tot,
	}
	var cum, reading, prev [core.StateSpinDown + 1]float64
	start := time.Duration(0)
	for k := 0; k < len(a.bounds) && a.bounds[k] < h; k++ {
		for st := range cum {
			cum[st] += a.full[k][st]
			reading[st] = cum[st] + a.prorate[k][st]
		}
		r.Windows = append(r.Windows, a.window(start, a.bounds[k], prev, reading))
		start, prev = a.bounds[k], reading
	}
	r.Windows = append(r.Windows, a.window(start, h, prev, tot))
	for _, w := range r.Windows {
		r.GCO2e += w.GCO2e
	}
	for _, j := range tot {
		r.EnergyJ += j
	}
	r.EnergyUSD = a.cost.EnergyUSD(r.EnergyJ)
	r.CapexUSD = a.cost.CapexUSD(r.Disks, h)
	r.TotalUSD = r.EnergyUSD + r.CapexUSD
	return r
}

// Snapshot prices the settled energy observed so far (for live /state
// endpoints); the report is partial until the run ends.
func (a *Accumulator) Snapshot() (gco2e, usd float64) {
	if a.final != nil {
		return a.final.GCO2e, a.final.TotalUSD
	}
	r := a.reportAt(a.maxAt)
	return r.GCO2e, r.TotalUSD
}

// Finalize closes the accounting at the run horizon (the run-end event's
// timestamp; the last observed timestamp for partial captures), reconciles
// any bound metric families to the authoritative totals, and returns the
// report. Subsequent calls return the cached report.
func (a *Accumulator) Finalize() Report {
	if a.final != nil {
		return *a.final
	}
	h := a.horizon
	if !a.runEnded {
		h = a.maxAt
	}
	r := a.reportAt(h)
	a.final = &r
	if a.m != nil {
		a.m.reconcile(a, r)
	}
	return r
}
