package account

import (
	"math"
	"testing"
	"time"
)

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		g    GridProfile
		ok   bool
	}{
		{"empty", GridProfile{Name: "x"}, false},
		{"nonzero first start", GridProfile{Steps: []GridStep{{time.Second, 100}}}, false},
		{"descending starts", GridProfile{Steps: []GridStep{{0, 1}, {2 * time.Second, 2}, {time.Second, 3}}}, false},
		{"negative intensity", GridProfile{Steps: []GridStep{{0, -1}}}, false},
		{"nan intensity", GridProfile{Steps: []GridStep{{0, math.NaN()}}}, false},
		{"period inside steps", GridProfile{Period: time.Second, Steps: []GridStep{{0, 1}, {2 * time.Second, 2}}}, false},
		{"negative period", GridProfile{Period: -time.Second, Steps: []GridStep{{0, 1}}}, false},
		{"flat ok", *FlatGrid(), true},
		{"diurnal ok", *DiurnalGrid(), true},
		{"coal ok", *CoalGrid(), true},
	}
	for _, c := range cases {
		if err := c.g.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestGridIntensityAt(t *testing.T) {
	g := &GridProfile{
		Name:   "test",
		Period: 10 * time.Second,
		Steps:  []GridStep{{0, 100}, {4 * time.Second, 200}, {7 * time.Second, 50}},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{3 * time.Second, 100},
		{4 * time.Second, 200},
		{6 * time.Second, 200},
		{7 * time.Second, 50},
		{9 * time.Second, 50},
		{10 * time.Second, 100}, // period wraps
		{14 * time.Second, 200},
		{-time.Second, 100}, // clamped
	}
	for _, c := range cases {
		if got := g.IntensityAt(c.at); got != c.want {
			t.Errorf("IntensityAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestGridMeanIntensity(t *testing.T) {
	g := &GridProfile{
		Name:  "step",
		Steps: []GridStep{{0, 100}, {4 * time.Second, 200}},
	}
	// [0,8s]: 4s at 100 + 4s at 200 = mean 150.
	if got := g.MeanIntensity(8 * time.Second); got != 150 {
		t.Fatalf("MeanIntensity(8s) = %v, want 150", got)
	}
	// Entirely inside the first step.
	if got := g.MeanIntensity(2 * time.Second); got != 100 {
		t.Fatalf("MeanIntensity(2s) = %v, want 100", got)
	}
	// Zero horizon falls back to the instant intensity.
	if got := g.MeanIntensity(0); got != 100 {
		t.Fatalf("MeanIntensity(0) = %v, want 100", got)
	}
	// A periodic profile keeps cycling.
	p := &GridProfile{
		Name:   "cycle",
		Period: 2 * time.Second,
		Steps:  []GridStep{{0, 100}, {time.Second, 300}},
	}
	if got := p.MeanIntensity(4 * time.Second); got != 200 {
		t.Fatalf("periodic MeanIntensity(4s) = %v, want 200", got)
	}
}

func TestGridJSONRoundTrip(t *testing.T) {
	data := []byte(`{
		"name": "custom",
		"period_s": 60,
		"steps": [
			{"start_s": 0, "gco2e_per_kwh": 480},
			{"start_s": 20, "gco2e_per_kwh": 120},
			{"start_s": 45.5, "gco2e_per_kwh": 500}
		]
	}`)
	g, err := ParseGridProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "custom" || g.Period != time.Minute || len(g.Steps) != 3 {
		t.Fatalf("parsed %+v", g)
	}
	if g.Steps[2].Start != 45500*time.Millisecond || g.Steps[2].Intensity != 500 {
		t.Fatalf("step 2 parsed as %+v", g.Steps[2])
	}
	if _, err := ParseGridProfile([]byte(`{"steps": []}`)); err == nil {
		t.Fatal("empty profile parsed without error")
	}
	if _, err := ParseGridProfile([]byte(`{nonsense`)); err == nil {
		t.Fatal("malformed JSON parsed without error")
	}
}

func TestResolveGrid(t *testing.T) {
	for name, want := range map[string]string{
		"flat": "flat", "diurnal": "diurnal", "solar": "diurnal", "coal": "coal",
	} {
		g, err := ResolveGrid(name)
		if err != nil {
			t.Fatalf("ResolveGrid(%q): %v", name, err)
		}
		if g.Name != want {
			t.Fatalf("ResolveGrid(%q) = %q", name, g.Name)
		}
	}
	if _, err := ResolveGrid("no/such/file.json"); err == nil {
		t.Fatal("missing profile file resolved without error")
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{Name: "t", USDPerKWh: 0.10, DiskCapexUSD: 365.25, AmortYears: 1}
	if got := c.EnergyUSD(JoulesPerKWh); got != 0.10 {
		t.Fatalf("EnergyUSD(1 kWh) = %v, want 0.10", got)
	}
	// One disk for one day of a one-year amortization of $365.25 = $1/day.
	if got := c.CapexUSD(1, 24*time.Hour); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CapexUSD(1, 24h) = %v, want 1", got)
	}
	if got := c.CapexUSD(10, 0); got != 0 {
		t.Fatalf("CapexUSD at zero horizon = %v, want 0", got)
	}
	if err := (CostModel{USDPerKWh: math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN tariff validated")
	}
	if m, err := ResolveCost("default"); err != nil || m != DefaultCostModel() {
		t.Fatalf("ResolveCost(default) = %+v, %v", m, err)
	}
	if _, err := ResolveCost("no/such/cost.json"); err == nil {
		t.Fatal("missing cost file resolved without error")
	}
}
