package account

import (
	"math"
	"time"

	"repro/internal/core"
)

// RunTotals is the minimal shape of a finished run this package can
// price without an event stream: by-state joules, the run horizon, and
// the physical fleet size. Cached sweep cells (internal/experiments) carry
// exactly this much in their per-disk stats, which is what lets the
// what-if evaluator re-price policies without re-simulation.
type RunTotals struct {
	ByState [core.StateSpinDown + 1]float64
	Horizon time.Duration
	Disks   int
}

// Energy returns the total joules, summed in state order.
func (t RunTotals) Energy() float64 {
	var e float64
	for _, j := range t.ByState {
		e += j
	}
	return e
}

// Consolidation implements cloud-carbon-exporter's block-storage
// hypothesis: one virtual disk is a fraction of PhysicalPerVirtual
// replicated physical disks, and the enclosure (rack, controllers,
// cooling fans) adds RackOverhead on top of the disks' own draw.
type Consolidation struct {
	PhysicalPerVirtual float64
	RackOverhead       float64
}

// DefaultConsolidation returns the exporter's published hypothesis: a
// virtual disk maps onto 3x replicated physical disks with a 10% rack
// overhead.
func DefaultConsolidation() Consolidation {
	return Consolidation{PhysicalPerVirtual: 3, RackOverhead: 0.10}
}

// WhatIf re-prices the same workload on ratio times the physical disks
// (ratio 1 is the measured fleet, 0.67 consolidates 3 replicas onto 2
// spindles' worth of hardware). Work-conserving states — active service
// and the spin transitions the workload itself forced — are unchanged;
// idle and standby floor energy scales with the number of spindles kept
// powered; rack overhead multiplies everything. The evaluator is pure
// arithmetic over RunTotals, so sweep-cache hits are enough to compare
// policies — no re-simulation.
func (c Consolidation) WhatIf(t RunTotals, ratio float64) RunTotals {
	out := t
	out.Disks = int(math.Round(float64(t.Disks) * ratio))
	oh := 1 + c.RackOverhead
	for st := range out.ByState {
		switch core.DiskState(st) {
		case core.StateIdle, core.StateStandby:
			out.ByState[st] = t.ByState[st] * ratio * oh
		default:
			out.ByState[st] = t.ByState[st] * oh
		}
	}
	return out
}

// Price is a run priced under a grid profile and cost model.
type Price struct {
	EnergyJ   float64
	GCO2e     float64
	EnergyUSD float64
	CapexUSD  float64
	TotalUSD  float64
}

// PriceTotals prices end-of-run totals: carbon at the profile's
// time-weighted mean intensity over the horizon (totals carry no timing,
// so energy is treated as uniform in time — see GridProfile.MeanIntensity),
// dollars at the tariff plus amortized capex.
func PriceTotals(g *GridProfile, cm CostModel, t RunTotals) Price {
	e := t.Energy()
	p := Price{
		EnergyJ:   e,
		GCO2e:     g.MeanIntensity(t.Horizon) * e / JoulesPerKWh,
		EnergyUSD: cm.EnergyUSD(e),
		CapexUSD:  cm.CapexUSD(t.Disks, t.Horizon),
	}
	p.TotalUSD = p.EnergyUSD + p.CapexUSD
	return p
}
