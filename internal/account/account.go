// Package account prices simulated disk energy in grams of CO2-equivalent
// and dollars.
//
// The paper evaluates scheduling policies in joules; operators compare them
// in carbon and money. This package adds three models on top of the
// power.Meter joule accounting:
//
//   - GridProfile: piecewise-constant grid carbon intensity (gCO2e/kWh)
//     over virtual run time, optionally repeating with a period — a
//     watt-hour consumed under the midday solar dip prices differently
//     than one at midnight. Built-ins cover a flat world-average grid, a
//     diurnal solar-heavy grid and a coal-heavy grid; arbitrary profiles
//     load from JSON (see docs/OBSERVABILITY.md for the schema).
//   - CostModel: $/kWh for energy plus straight-line per-disk capex
//     amortization, emitting fleet TCO per run.
//   - Consolidation: cloud-carbon-exporter's virtual-over-physical block
//     storage hypothesis (a virtual disk is a fraction of replicated
//     physical disks plus a rack overhead), with a what-if evaluator that
//     re-prices a finished run on a smaller physical fleet without
//     re-simulation.
//
// The windowed integrator (Accumulator) tees off the internal/obs event
// stream, so a live run and a `tracelens carbon` replay of its log execute
// the identical floating-point program and produce byte-identical gCO2e
// and dollar totals; its final by-state joule totals reproduce the
// power.Meter sums bit-exactly (monitor-checked, see VerifyWindows in
// internal/obs/monitor).
package account

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// JoulesPerKWh converts the meter's joule totals to the kilowatt-hours
// grid intensities and tariffs are quoted in.
const JoulesPerKWh = 3.6e6

// GridStep is one piecewise-constant step of a grid-intensity profile.
type GridStep struct {
	Start     time.Duration // offset from run start (and from each period repeat)
	Intensity float64       // gCO2e per kWh while the step is in effect
}

// GridProfile models location/time-varying grid carbon intensity as
// piecewise-constant gCO2e/kWh steps over virtual run time. With a
// non-zero Period the step pattern repeats (a diurnal cycle); with Period
// zero the last step extends forever.
type GridProfile struct {
	Name   string
	Period time.Duration
	Steps  []GridStep
}

// FlatGrid returns a constant world-average grid (475 gCO2e/kWh, the IEA
// global average), the baseline that prices energy identically at every
// instant.
func FlatGrid() *GridProfile {
	return &GridProfile{
		Name:  "flat",
		Steps: []GridStep{{0, 475}},
	}
}

// DiurnalGrid returns a solar-heavy grid with a 24 h cycle: intensity
// collapses through the midday solar window and peaks in the evening ramp
// (the classic duck curve).
func DiurnalGrid() *GridProfile {
	return &GridProfile{
		Name:   "diurnal",
		Period: 24 * time.Hour,
		Steps: []GridStep{
			{0, 420},
			{6 * time.Hour, 320},
			{9 * time.Hour, 140},
			{15 * time.Hour, 220},
			{18 * time.Hour, 520},
			{21 * time.Hour, 470},
		},
	}
}

// CoalGrid returns a coal-heavy grid: high intensity around the clock with
// only a mild daytime dip.
func CoalGrid() *GridProfile {
	return &GridProfile{
		Name:   "coal",
		Period: 24 * time.Hour,
		Steps: []GridStep{
			{0, 820},
			{6 * time.Hour, 760},
			{18 * time.Hour, 840},
		},
	}
}

// gridJSON is the on-disk schema; durations are plain seconds so profiles
// are writable by hand and by non-Go tooling.
type gridJSON struct {
	Name    string         `json:"name"`
	PeriodS float64        `json:"period_s,omitempty"`
	Steps   []gridStepJSON `json:"steps"`
}

type gridStepJSON struct {
	StartS    float64 `json:"start_s"`
	Intensity float64 `json:"gco2e_per_kwh"`
}

// ParseGridProfile decodes a JSON grid profile and validates it.
func ParseGridProfile(data []byte) (*GridProfile, error) {
	var w gridJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("account: parse grid profile: %w", err)
	}
	g := &GridProfile{
		Name:   w.Name,
		Period: time.Duration(w.PeriodS * float64(time.Second)),
	}
	for _, s := range w.Steps {
		g.Steps = append(g.Steps, GridStep{
			Start:     time.Duration(s.StartS * float64(time.Second)),
			Intensity: s.Intensity,
		})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadGridProfile reads and parses a JSON grid profile from a file.
func LoadGridProfile(path string) (*GridProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("account: %w", err)
	}
	return ParseGridProfile(data)
}

// ResolveGrid maps a -grid flag value to a profile: the built-in names
// "flat", "diurnal" (alias "solar") and "coal", or a path to a JSON
// profile file.
func ResolveGrid(name string) (*GridProfile, error) {
	switch name {
	case "flat":
		return FlatGrid(), nil
	case "diurnal", "solar":
		return DiurnalGrid(), nil
	case "coal":
		return CoalGrid(), nil
	default:
		return LoadGridProfile(name)
	}
}

// Validate reports whether the profile is usable: at least one step, the
// first starting at zero, strictly ascending starts, finite non-negative
// intensities, and a period (when set) beyond the last step start.
func (g *GridProfile) Validate() error {
	if len(g.Steps) == 0 {
		return fmt.Errorf("account: grid profile %q has no steps", g.Name)
	}
	if g.Steps[0].Start != 0 {
		return fmt.Errorf("account: grid profile %q first step starts at %v, want 0", g.Name, g.Steps[0].Start)
	}
	for i, s := range g.Steps {
		if i > 0 && s.Start <= g.Steps[i-1].Start {
			return fmt.Errorf("account: grid profile %q step starts not ascending at %v", g.Name, s.Start)
		}
		if s.Intensity < 0 || math.IsNaN(s.Intensity) || math.IsInf(s.Intensity, 0) {
			return fmt.Errorf("account: grid profile %q has invalid intensity %v", g.Name, s.Intensity)
		}
	}
	if g.Period < 0 {
		return fmt.Errorf("account: grid profile %q has negative period %v", g.Name, g.Period)
	}
	if g.Period > 0 && g.Period <= g.Steps[len(g.Steps)-1].Start {
		return fmt.Errorf("account: grid profile %q period %v not beyond last step start %v",
			g.Name, g.Period, g.Steps[len(g.Steps)-1].Start)
	}
	return nil
}

// IntensityAt returns the gCO2e/kWh in effect at virtual time t.
func (g *GridProfile) IntensityAt(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	if g.Period > 0 {
		t %= g.Period
	}
	v := g.Steps[0].Intensity
	for _, s := range g.Steps {
		if s.Start > t {
			break
		}
		v = s.Intensity
	}
	return v
}

// boundary returns the i-th instant (0-based, ascending, all > 0) at which
// the profile switches steps; ok=false past the last boundary of an
// aperiodic profile. For a periodic profile each cycle contributes its
// interior step starts plus the wrap back to the first step.
func (g *GridProfile) boundary(i int) (time.Duration, bool) {
	if g.Period == 0 {
		if i >= len(g.Steps)-1 {
			return 0, false
		}
		return g.Steps[i+1].Start, true
	}
	perCycle := len(g.Steps) // len-1 interior starts + the period wrap
	cycle, idx := i/perCycle, i%perCycle
	base := time.Duration(cycle) * g.Period
	if idx < len(g.Steps)-1 {
		return base + g.Steps[idx+1].Start, true
	}
	return base + g.Period, true
}

// MeanIntensity returns the time-weighted average intensity over [0, h] —
// the pricing factor for runs that only report end-of-run joule totals
// (cached sweeps), which treats energy as uniform in time. Windowed
// integration through an Accumulator is exact and preferred when an event
// stream is available.
func (g *GridProfile) MeanIntensity(h time.Duration) float64 {
	if h <= 0 {
		return g.IntensityAt(0)
	}
	var weighted float64
	prev := time.Duration(0)
	for i := 0; ; i++ {
		b, ok := g.boundary(i)
		if !ok || b >= h {
			break
		}
		weighted += g.IntensityAt(prev) * (b - prev).Seconds()
		prev = b
	}
	weighted += g.IntensityAt(prev) * (h - prev).Seconds()
	return weighted / h.Seconds()
}
