package account_test

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/monitor"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

func e2eConfig(numDisks int) storage.Config {
	p := power.DefaultConfig()
	return storage.Config{
		NumDisks: numDisks,
		Power:    p,
		Mech:     diskmodel.Cheetah15K5(),
		Policy:   power.TwoCompetitive{Config: p},
	}
}

func e2eWorkload(t *testing.T, numDisks, numBlocks, numReqs, rf int, seed int64) ([]core.Request, *placement.Placement) {
	t.Helper()
	p, err := placement.Generate(placement.GenerateConfig{
		NumDisks: numDisks, NumBlocks: numBlocks,
		ReplicationFactor: rf, ZipfExponent: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return workload.CelloLike(numReqs, numBlocks, seed), p
}

// runWithGrid runs a deterministic cell with carbon accounting attached
// and returns the finalized report, the run result, the event log, the
// monitor suite and the metrics export.
func runWithGrid(t *testing.T, g *account.GridProfile) (account.Report, *storage.Result, []byte, *monitor.Suite, string) {
	t.Helper()
	cfg := e2eConfig(8)
	reqs, p := e2eWorkload(t, 8, 60, 400, 2, 3)

	var log bytes.Buffer
	tr := obs.NewTracer(512)
	tr.SetSink(&log, false)
	col := obs.NewCollector()
	suite := monitor.NewSuite(monitor.Config{Power: cfg.Power})
	acc, err := account.NewAccumulator(cfg.Power, g, account.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := storage.RunOnline(cfg, p.Locations, sched.Static{Locations: p.Locations}, reqs,
		storage.WithTracer(tr), storage.WithCollector(col),
		storage.WithMonitor(suite), storage.WithAccounting(acc))
	if err != nil {
		t.Fatal(err)
	}
	var export bytes.Buffer
	if _, err := col.WriteTo(&export); err != nil {
		t.Fatal(err)
	}
	return acc.Finalize(), res, log.Bytes(), suite, export.String()
}

func TestAccountingMatchesMeterBitExact(t *testing.T) {
	// First pass under the flat grid to learn the horizon, then a second
	// deterministic pass under a short-period custom grid that forces many
	// window boundaries inside the run.
	rep, res, _, _, _ := runWithGrid(t, account.FlatGrid())
	if len(rep.Windows) != 1 {
		t.Fatalf("flat grid produced %d windows", len(rep.Windows))
	}
	if rep.ByState != res.EnergyByState {
		t.Fatalf("flat accounting %v != meter %v", rep.ByState, res.EnergyByState)
	}

	period := res.Horizon / 8
	g := &account.GridProfile{
		Name:   "e2e-cycle",
		Period: period,
		Steps:  []account.GridStep{{Start: 0, Intensity: 480}, {Start: period / 2, Intensity: 90}},
	}
	rep2, res2, _, suite, _ := runWithGrid(t, g)
	if rep2.ByState != res2.EnergyByState {
		t.Fatalf("windowed accounting %v != meter %v", rep2.ByState, res2.EnergyByState)
	}
	if len(rep2.Windows) < 4 {
		t.Fatalf("only %d windows across the run", len(rep2.Windows))
	}
	if !suite.Passed() {
		var r bytes.Buffer
		suite.WriteReport(&r)
		t.Fatalf("monitor flagged the accounting run:\n%s", r.String())
	}
	var report bytes.Buffer
	suite.WriteReport(&report)
	if strings.Contains(report.String(), "SKIP windowed-energy") {
		t.Fatal("windowed-energy check was not exercised")
	}
	// The cumulative-reading construction telescopes per state: summing a
	// state's energy across windows reproduces the meter total for that
	// state EXACTLY (bitwise). The scalar cross-state sum differs from the
	// report total only in addition order, so it gets an epsilon.
	var perState [core.StateSpinDown + 1]float64
	var sum float64
	for _, w := range rep2.Windows {
		sum += w.EnergyJ
		for st := core.StateStandby; st <= core.StateSpinDown; st++ {
			perState[st] += w.ByState[st]
		}
	}
	if perState != res2.EnergyByState {
		t.Fatalf("windowed per-state sums %v != meter %v", perState, res2.EnergyByState)
	}
	if rel := (sum - rep2.EnergyJ) / rep2.EnergyJ; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("window sum %v vs report total %v", sum, rep2.EnergyJ)
	}
	if rep2.GCO2e <= 0 || rep2.TotalUSD <= 0 {
		t.Fatalf("degenerate pricing %+v", rep2)
	}
}

func TestAccountingReplayIsByteIdentical(t *testing.T) {
	g := account.DiurnalGrid()
	rep, res, log, _, _ := runWithGrid(t, g)

	events, err := analyze.Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := account.NewAccumulator(e2eConfig(8).Power, g, account.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		replay.Observe(ev)
	}
	rrep := replay.Finalize()
	if !reflect.DeepEqual(rep, rrep) {
		t.Fatalf("replayed report differs:\nlive:   %+v\nreplay: %+v", rep, rrep)
	}
	// Spot-check the replay against the analyzer's own energy attribution.
	run, err := analyze.New(events)
	if err != nil {
		t.Fatal(err)
	}
	if run.EnergyByState() != res.EnergyByState {
		t.Fatalf("analyzer energy %v != result %v", run.EnergyByState(), res.EnergyByState)
	}
}

func TestAccountingMetricsReconcile(t *testing.T) {
	rep, _, _, _, export := runWithGrid(t, account.DiurnalGrid())
	for metric, want := range map[string]float64{
		account.MetricCarbon + `{grid="diurnal"}`:   rep.GCO2e,
		account.MetricCost + `{component="energy"}`: rep.EnergyUSD,
		account.MetricCost + `{component="capex"}`:  rep.CapexUSD,
	} {
		needle := metric + " " + strconv.FormatFloat(want, 'g', -1, 64)
		if !strings.Contains(export, needle) {
			t.Errorf("export missing reconciled series %q\n%s", needle, export)
		}
	}
}

func TestLiveAccountingMatchesBatch(t *testing.T) {
	// Drive the same workload through the Live facade and confirm the
	// accumulator settles to the meter totals there too.
	cfg := e2eConfig(6)
	reqs, p := e2eWorkload(t, 6, 40, 200, 2, 5)
	acc, err := account.NewAccumulator(cfg.Power, account.FlatGrid(), account.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	suite := monitor.NewSuite(monitor.Config{Power: cfg.Power})
	lv, err := storage.NewLive(cfg, p.Locations, storage.WithMonitor(suite), storage.WithAccounting(acc))
	if err != nil {
		t.Fatal(err)
	}
	if lv.Accounting() != acc {
		t.Fatal("Live.Accounting does not expose the attached accumulator")
	}
	s := sched.Static{Locations: p.Locations}
	for _, r := range reqs {
		lv.Advance(r.Arrival)
		lv.Arrive(r)
		d := s.Schedule(r, lv.View())
		if d == core.InvalidDisk {
			lv.Drop(r)
			continue
		}
		lv.Dispatch(r, d, 0)
	}
	res, err := lv.Finish("static")
	if err != nil {
		t.Fatal(err)
	}
	rep := acc.Finalize()
	if rep.ByState != res.EnergyByState {
		t.Fatalf("live accounting %v != meter %v", rep.ByState, res.EnergyByState)
	}
	if !suite.Passed() {
		var r bytes.Buffer
		suite.WriteReport(&r)
		t.Fatalf("monitor flagged the live run:\n%s", r.String())
	}
	if rep.Horizon != res.Horizon {
		t.Fatalf("horizon %v != %v", rep.Horizon, res.Horizon)
	}
}
