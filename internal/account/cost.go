package account

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// yearSeconds is the Julian year used for capex amortization.
const yearSeconds = 365.25 * 24 * 3600

// CostModel prices a run in dollars: grid energy at a flat tariff plus
// straight-line amortization of the physical disks over the run horizon.
type CostModel struct {
	Name         string  `json:"name"`
	USDPerKWh    float64 `json:"usd_per_kwh"`
	DiskCapexUSD float64 `json:"disk_capex_usd"`
	AmortYears   float64 `json:"amort_years"`
}

// DefaultCostModel returns a plausible datacenter tariff and enterprise
// disk price: $0.12/kWh, $450 per disk amortized over 5 years.
func DefaultCostModel() CostModel {
	return CostModel{Name: "default", USDPerKWh: 0.12, DiskCapexUSD: 450, AmortYears: 5}
}

// ParseCostModel decodes a JSON cost model and validates it.
func ParseCostModel(data []byte) (CostModel, error) {
	var c CostModel
	if err := json.Unmarshal(data, &c); err != nil {
		return CostModel{}, fmt.Errorf("account: parse cost model: %w", err)
	}
	if err := c.Validate(); err != nil {
		return CostModel{}, err
	}
	return c, nil
}

// LoadCostModel reads and parses a JSON cost model from a file.
func LoadCostModel(path string) (CostModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return CostModel{}, fmt.Errorf("account: %w", err)
	}
	return ParseCostModel(data)
}

// ResolveCost maps a -cost flag value to a model: the built-in name
// "default", or a path to a JSON cost-model file.
func ResolveCost(name string) (CostModel, error) {
	if name == "default" {
		return DefaultCostModel(), nil
	}
	return LoadCostModel(name)
}

// Validate reports whether the model is usable.
func (c CostModel) Validate() error {
	for _, v := range []float64{c.USDPerKWh, c.DiskCapexUSD, c.AmortYears} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("account: cost model %q has invalid field %v", c.Name, v)
		}
	}
	return nil
}

// EnergyUSD prices joules at the model's tariff.
func (c CostModel) EnergyUSD(joules float64) float64 {
	return joules / JoulesPerKWh * c.USDPerKWh
}

// CapexUSD returns the amortized purchase cost of `disks` physical disks
// over a run of length horizon (straight-line over AmortYears).
func (c CostModel) CapexUSD(disks int, horizon time.Duration) float64 {
	if c.AmortYears <= 0 || horizon <= 0 {
		return 0
	}
	years := horizon.Seconds() / yearSeconds
	return c.DiskCapexUSD * float64(disks) * years / c.AmortYears
}
