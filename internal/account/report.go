package account

import "fmt"

// CarbonLine and CostLine format the report's headline totals. Every
// surface that prints them — esched, eschedd's drain summary, tracelens
// carbon — calls exactly these functions, which is what lets the carbon
// gate (scripts/carbongate.sh) diff a live run's output against a replay
// byte-for-byte.

// CarbonLine is the one-line gCO2e summary.
func (r Report) CarbonLine() string {
	return fmt.Sprintf("carbon: %.6g gCO2e (grid %s, %d windows)", r.GCO2e, r.Grid, len(r.Windows))
}

// CostLine is the one-line TCO summary.
func (r Report) CostLine() string {
	return fmt.Sprintf("cost: %.6g USD energy + %.6g USD capex = %.6g USD (tariff %s)",
		r.EnergyUSD, r.CapexUSD, r.TotalUSD, r.Cost)
}
