package core

import (
	"testing"
	"time"
)

func TestDiskStateString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		state DiskState
		want  string
	}{
		{StateStandby, "standby"},
		{StateSpinUp, "spin-up"},
		{StateIdle, "idle"},
		{StateActive, "active"},
		{StateSpinDown, "spin-down"},
		{DiskState(0), "DiskState(0)"},
		{DiskState(42), "DiskState(42)"},
	}
	for _, tc := range tests {
		if got := tc.state.String(); got != tc.want {
			t.Errorf("DiskState(%d).String() = %q, want %q", int(tc.state), got, tc.want)
		}
	}
}

func TestDiskStateValid(t *testing.T) {
	t.Parallel()
	for s := StateStandby; s <= StateSpinDown; s++ {
		if !s.Valid() {
			t.Errorf("%v.Valid() = false", s)
		}
	}
	if DiskState(0).Valid() || DiskState(6).Valid() {
		t.Error("out-of-range state reported valid")
	}
}

func TestDiskStateSpinning(t *testing.T) {
	t.Parallel()
	spinning := map[DiskState]bool{
		StateStandby: false, StateSpinUp: false, StateIdle: true,
		StateActive: true, StateSpinDown: false,
	}
	for s, want := range spinning {
		if got := s.Spinning(); got != want {
			t.Errorf("%v.Spinning() = %v, want %v", s, got, want)
		}
	}
}

func TestRequestString(t *testing.T) {
	t.Parallel()
	r := Request{ID: 3, Block: 17, Arrival: 2 * time.Second, Size: 512}
	if got := r.String(); got != "r3{read block=17 t=2s size=512B}" {
		t.Errorf("String() = %q", got)
	}
	r.Write = true
	if got := r.String(); got != "r3{write block=17 t=2s size=512B}" {
		t.Errorf("String() = %q", got)
	}
}

func TestScheduleCloneIsIndependent(t *testing.T) {
	t.Parallel()
	s := Schedule{1, 2, 3}
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestScheduleValid(t *testing.T) {
	t.Parallel()
	reqs := []Request{
		{ID: 0, Block: 0},
		{ID: 1, Block: 1},
	}
	locs := func(b BlockID) []DiskID {
		return map[BlockID][]DiskID{0: {0, 1}, 1: {2}}[b]
	}
	tests := []struct {
		name  string
		sched Schedule
		want  bool
	}{
		{"valid", Schedule{1, 2}, true},
		{"valid alt replica", Schedule{0, 2}, true},
		{"wrong disk", Schedule{2, 2}, false},
		{"length mismatch", Schedule{1}, false},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := tc.sched.Valid(reqs, locs); got != tc.want {
				t.Errorf("Valid() = %v, want %v", got, tc.want)
			}
		})
	}
}
