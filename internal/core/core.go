// Package core defines the shared domain types of the energy-aware
// scheduling reproduction: requests, disks, blocks and the vocabulary used
// across every other package (mirroring Table 1 of the paper).
//
// The types are deliberately small value types so that every simulator layer
// can pass them around without aliasing hazards.
package core

import (
	"fmt"
	"time"
)

// DiskID identifies a disk d_k in the storage system. IDs are dense indices
// in [0, NumDisks).
type DiskID int

// InvalidDisk is returned by schedulers when no placement exists for a
// request's block; a well-formed system never observes it.
const InvalidDisk DiskID = -1

// BlockID identifies a data item b_m (a unique combination of the original
// trace's disk id and logical block address, per Section 4.1 of the paper).
type BlockID int64

// RequestID identifies a request r_i. IDs are dense indices in the order of
// arrival (the paper's request stream R is sorted by arrival time).
type RequestID int

// Request is a read I/O request r_i against a replicated block. Arrival is
// the disk access time t_i measured from simulation start. Size and LBA feed
// the disk service-time model; they do not influence scheduling decisions
// (Section 2.1: I/O time is negligible at the power-management time scale).
type Request struct {
	ID      RequestID
	Block   BlockID
	Arrival time.Duration
	Size    int64 // bytes; zero means the model's default block size
	LBA     int64 // logical block address on the serving disk
	// Write marks a write request. The paper's scheduler only handles
	// reads (Section 2.1), assuming writes are diverted by write
	// off-loading; internal/offload implements that diversion.
	Write bool
}

// String implements fmt.Stringer for debugging output.
func (r Request) String() string {
	op := "read"
	if r.Write {
		op = "write"
	}
	return fmt.Sprintf("r%d{%s block=%d t=%s size=%dB}", r.ID, op, r.Block, r.Arrival, r.Size)
}

// Assignment maps a request to the disk chosen to serve it.
type Assignment struct {
	Request RequestID
	Disk    DiskID
}

// Schedule is a complete scheduling solution S^x_ES: one disk per request.
// Index i holds the disk serving request ID i.
type Schedule []DiskID

// Clone returns an independent copy of the schedule.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}

// Valid reports whether every request has been assigned to one of its
// replica locations according to the placement lookup.
func (s Schedule) Valid(reqs []Request, locations func(BlockID) []DiskID) bool {
	if len(s) != len(reqs) {
		return false
	}
	for _, r := range reqs {
		found := false
		for _, d := range locations(r.Block) {
			if d == s[r.ID] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// DiskState enumerates the power states of a disk. The ordering matches the
// paper's Figure 9 breakdown (standby, active, idle, spin-up/down); values
// start at 1 so the zero value is invalid and cannot be mistaken for a state.
type DiskState int

// Disk power states.
const (
	StateStandby  DiskState = iota + 1 // spun down, near-zero power
	StateSpinUp                        // transitioning standby -> idle
	StateIdle                          // platters spinning, no I/O in flight
	StateActive                        // servicing an I/O
	StateSpinDown                      // transitioning idle -> standby
)

var stateNames = map[DiskState]string{
	StateStandby:  "standby",
	StateSpinUp:   "spin-up",
	StateIdle:     "idle",
	StateActive:   "active",
	StateSpinDown: "spin-down",
}

// String implements fmt.Stringer.
func (s DiskState) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("DiskState(%d)", int(s))
}

// Valid reports whether s is one of the defined states.
func (s DiskState) Valid() bool {
	_, ok := stateNames[s]
	return ok
}

// Spinning reports whether the platters are rotating at full speed, i.e. the
// disk can service a request without a spin-up delay.
func (s DiskState) Spinning() bool {
	return s == StateIdle || s == StateActive
}
