// Package workload generates synthetic request streams standing in for the
// paper's evaluation traces (Section 4.1).
//
// The real Cello (HP Labs) and Financial1 (UMass/SPC) traces are not
// redistributable, so this package generates streams matching the
// characteristics the paper's results depend on: the request count (70,000)
// and unique-block count (>30,000), Zipf-skewed block popularity, and the
// arrival-process shape — Cello is bursty with heavy-tailed quiet gaps
// (the paper attributes its ~1 s mean response time to this burstiness,
// Appendix A.4) while Financial1 is a smoother OLTP stream (~300 ms mean
// response). Real traces can still be used via the parsers in
// internal/trace.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
)

// ArrivalProcess produces successive inter-arrival gaps.
type ArrivalProcess interface {
	// NextGap returns the gap between the previous request and the next.
	NextGap(rng *rand.Rand) time.Duration
	// Name identifies the process in reports.
	Name() string
}

// Poisson is a memoryless arrival process with the given mean rate.
type Poisson struct {
	Rate float64 // requests per second
}

// NextGap implements ArrivalProcess.
func (p Poisson) NextGap(rng *rand.Rand) time.Duration {
	if p.Rate <= 0 {
		panic(fmt.Sprintf("workload: Poisson rate %v", p.Rate))
	}
	return time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
}

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%.2f/s)", p.Rate) }

// BurstyOnOff models self-similar traffic: bursts of requests arriving at
// BurstRate with geometrically distributed length, separated by
// Pareto-distributed quiet gaps (heavy tail, like Cello).
type BurstyOnOff struct {
	BurstRate     float64       // requests/second inside a burst
	MeanBurstLen  float64       // mean requests per burst (geometric)
	OffShape      float64       // Pareto tail index alpha (>1 for finite mean)
	OffScale      time.Duration // Pareto minimum gap
	remainInBurst int
}

// NextGap implements ArrivalProcess.
func (b *BurstyOnOff) NextGap(rng *rand.Rand) time.Duration {
	if b.BurstRate <= 0 || b.MeanBurstLen < 1 || b.OffShape <= 1 || b.OffScale <= 0 {
		panic(fmt.Sprintf("workload: invalid BurstyOnOff %+v", b))
	}
	if b.remainInBurst > 0 {
		b.remainInBurst--
		return time.Duration(rng.ExpFloat64() / b.BurstRate * float64(time.Second))
	}
	// Start a new burst after a Pareto OFF gap.
	b.remainInBurst = b.sampleBurstLen(rng) - 1
	gap := float64(b.OffScale) * math.Pow(1-rng.Float64(), -1/b.OffShape)
	return time.Duration(gap)
}

func (b *BurstyOnOff) sampleBurstLen(rng *rand.Rand) int {
	// Geometric with mean MeanBurstLen.
	p := 1 / b.MeanBurstLen
	n := 1
	for rng.Float64() > p {
		n++
	}
	return n
}

// Name implements ArrivalProcess.
func (b *BurstyOnOff) Name() string {
	return fmt.Sprintf("bursty(rate=%.0f/s burst=%.0f off~pareto(%.1f,%s))",
		b.BurstRate, b.MeanBurstLen, b.OffShape, b.OffScale)
}

// Diurnal modulates another arrival process with a day/night cycle:
// inter-arrival gaps are stretched when the diurnal intensity is low and
// compressed near the peak, producing the long quiet valleys datacenter
// traces show overnight. Intensity follows 1 + Amplitude*sin(2*pi*t/Period)
// with t advanced by each emitted gap.
type Diurnal struct {
	Base      ArrivalProcess
	Period    time.Duration // full day length in trace time
	Amplitude float64       // in [0,1): 0 = no modulation
	elapsed   time.Duration
}

// NextGap implements ArrivalProcess.
func (d *Diurnal) NextGap(rng *rand.Rand) time.Duration {
	if d.Base == nil || d.Period <= 0 || d.Amplitude < 0 || d.Amplitude >= 1 {
		panic(fmt.Sprintf("workload: invalid Diurnal %+v", d))
	}
	phase := 2 * math.Pi * float64(d.elapsed%d.Period) / float64(d.Period)
	intensity := 1 + d.Amplitude*math.Sin(phase)
	gap := time.Duration(float64(d.Base.NextGap(rng)) / intensity)
	d.elapsed += gap
	return gap
}

// Name implements ArrivalProcess.
func (d *Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%s, %.0f%%, %s)", d.Base.Name(), d.Amplitude*100, d.Period)
}

// Config parameterizes synthetic stream generation.
type Config struct {
	NumRequests    int
	NumBlocks      int
	PopularityZipf float64 // skew of block popularity (~1 per [2])
	BlockSize      int64   // bytes per request; 0 uses 512 KB
	Arrivals       ArrivalProcess
	Seed           int64
}

// Generate produces a request stream sorted by arrival time with dense IDs.
func Generate(cfg Config) ([]core.Request, error) {
	switch {
	case cfg.NumRequests < 0:
		return nil, fmt.Errorf("workload: NumRequests = %d", cfg.NumRequests)
	case cfg.NumBlocks <= 0 && cfg.NumRequests > 0:
		return nil, fmt.Errorf("workload: NumBlocks = %d", cfg.NumBlocks)
	case cfg.Arrivals == nil:
		return nil, fmt.Errorf("workload: nil arrival process")
	case cfg.PopularityZipf < 0 || math.IsNaN(cfg.PopularityZipf):
		return nil, fmt.Errorf("workload: PopularityZipf = %v", cfg.PopularityZipf)
	}
	size := cfg.BlockSize
	if size == 0 {
		size = 512 << 10
	}
	if size < 0 {
		return nil, fmt.Errorf("workload: BlockSize = %d", size)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := placement.NewZipf(cfg.NumBlocks, cfg.PopularityZipf)
	// A seeded permutation decouples a block's popularity rank from its ID.
	rankToBlock := rng.Perm(cfg.NumBlocks)

	reqs := make([]core.Request, cfg.NumRequests)
	now := time.Duration(0)
	for i := range reqs {
		if i > 0 {
			now += cfg.Arrivals.NextGap(rng)
		}
		block := core.BlockID(rankToBlock[pop.Sample(rng)])
		reqs[i] = core.Request{
			ID:      core.RequestID(i),
			Block:   block,
			Arrival: now,
			Size:    size,
			LBA:     blockLBA(block),
		}
	}
	return reqs, nil
}

// BlockLBA maps a block to its stable pseudo-random logical block address,
// the same mapping trace generation uses. The serving path (internal/serve)
// stamps it onto requests that arrive without an LBA so the disk
// service-time model sees identical seek distances live and in batch.
func BlockLBA(b core.BlockID) int64 { return blockLBA(b) }

// blockLBA maps a block to a stable pseudo-random LBA so the disk
// service-time model sees realistic seek distances.
func blockLBA(b core.BlockID) int64 {
	const maxLBA = 586072368
	x := uint64(b)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int64(x % maxLBA)
}

// CelloLike generates a bursty stream with the Cello trace's scale: by
// default 70,000 requests over 30,000+ blocks (Section 4.1) arriving in
// bursts separated by heavy-tailed quiet periods.
func CelloLike(numRequests, numBlocks int, seed int64) []core.Request {
	reqs, err := Generate(Config{
		NumRequests:    numRequests,
		NumBlocks:      numBlocks,
		PopularityZipf: 1,
		Arrivals: &BurstyOnOff{
			BurstRate:    100,
			MeanBurstLen: 60,
			OffShape:     1.3,
			OffScale:     time.Second,
		},
		Seed: seed,
	})
	if err != nil {
		panic(err) // static config: unreachable
	}
	return reqs
}

// FinancialLike generates a smoother OLTP-style stream with the Financial1
// trace's scale: Poisson arrivals with moderate popularity skew.
func FinancialLike(numRequests, numBlocks int, seed int64) []core.Request {
	reqs, err := Generate(Config{
		NumRequests:    numRequests,
		NumBlocks:      numBlocks,
		PopularityZipf: 0.8,
		Arrivals:       Poisson{Rate: 15},
		Seed:           seed,
	})
	if err != nil {
		panic(err) // static config: unreachable
	}
	return reqs
}

// Stats summarizes a request stream's arrival characteristics.
type Stats struct {
	Count            int
	UniqueBlocks     int
	Duration         time.Duration
	MeanInterArrival time.Duration
	// CoV is the coefficient of variation of inter-arrival gaps; ~1 for
	// Poisson, >> 1 for bursty streams.
	CoV float64
}

// Analyze computes stream statistics.
func Analyze(reqs []core.Request) Stats {
	s := Stats{Count: len(reqs)}
	if len(reqs) == 0 {
		return s
	}
	blocks := make(map[core.BlockID]struct{})
	for _, r := range reqs {
		blocks[r.Block] = struct{}{}
	}
	s.UniqueBlocks = len(blocks)
	s.Duration = reqs[len(reqs)-1].Arrival - reqs[0].Arrival
	if len(reqs) < 2 {
		return s
	}
	mean := float64(s.Duration) / float64(len(reqs)-1)
	s.MeanInterArrival = time.Duration(mean)
	ss := 0.0
	for i := 1; i < len(reqs); i++ {
		gap := float64(reqs[i].Arrival - reqs[i-1].Arrival)
		ss += (gap - mean) * (gap - mean)
	}
	std := math.Sqrt(ss / float64(len(reqs)-2+1))
	if mean > 0 {
		s.CoV = std / mean
	}
	return s
}
