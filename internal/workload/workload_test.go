package workload

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestGenerateValidation(t *testing.T) {
	t.Parallel()
	valid := Config{NumRequests: 10, NumBlocks: 5, PopularityZipf: 1, Arrivals: Poisson{Rate: 1}}
	if _, err := Generate(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative requests", func(c *Config) { c.NumRequests = -1 }},
		{"zero blocks", func(c *Config) { c.NumBlocks = 0 }},
		{"nil arrivals", func(c *Config) { c.Arrivals = nil }},
		{"negative zipf", func(c *Config) { c.PopularityZipf = -1 }},
		{"negative block size", func(c *Config) { c.BlockSize = -4 }},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := valid
			tc.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Errorf("Generate accepted %+v", cfg)
			}
		})
	}
}

func TestGenerateStreamShape(t *testing.T) {
	t.Parallel()
	reqs, err := Generate(Config{
		NumRequests: 1000, NumBlocks: 300, PopularityZipf: 1,
		Arrivals: Poisson{Rate: 5}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1000 {
		t.Fatalf("len = %d", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != core.RequestID(i) {
			t.Fatalf("request %d has ID %d, want dense IDs", i, r.ID)
		}
		if r.Block < 0 || int(r.Block) >= 300 {
			t.Fatalf("request %d block %d out of range", i, r.Block)
		}
		if r.Size != 512<<10 {
			t.Fatalf("request %d size %d, want default 512 KB", i, r.Size)
		}
		if r.LBA < 0 {
			t.Fatalf("request %d negative LBA", i)
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	t.Parallel()
	cfg := Config{NumRequests: 200, NumBlocks: 50, PopularityZipf: 1, Arrivals: Poisson{Rate: 3}, Seed: 5}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between same-seed generations", i)
		}
	}
}

func TestBlockLBAStableAndInRange(t *testing.T) {
	t.Parallel()
	f := func(b int64) bool {
		lba := blockLBA(core.BlockID(b))
		return lba >= 0 && lba < 586072368 && lba == blockLBA(core.BlockID(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonGapStatistics(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	p := Poisson{Rate: 10}
	var total time.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		g := p.NextGap(rng)
		if g < 0 {
			t.Fatal("negative gap")
		}
		total += g
	}
	mean := total.Seconds() / n
	if mean < 0.095 || mean > 0.105 {
		t.Errorf("mean gap = %.4fs, want ~0.1s", mean)
	}
}

func TestPoissonPanicsOnBadRate(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("Poisson rate 0 did not panic")
		}
	}()
	Poisson{}.NextGap(rand.New(rand.NewSource(1)))
}

func TestBurstyPanicsOnBadParams(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("invalid BurstyOnOff did not panic")
		}
	}()
	(&BurstyOnOff{BurstRate: -1}).NextGap(rand.New(rand.NewSource(1)))
}

func TestCelloLikeIsBurstierThanFinancialLike(t *testing.T) {
	t.Parallel()
	cello := Analyze(CelloLike(20000, 8000, 1))
	fin := Analyze(FinancialLike(20000, 8000, 1))
	if cello.CoV <= 2 {
		t.Errorf("Cello-like CoV = %.2f, want heavy burstiness (> 2)", cello.CoV)
	}
	if fin.CoV > 1.5 {
		t.Errorf("Financial-like CoV = %.2f, want near-Poisson (~1)", fin.CoV)
	}
	if cello.CoV < 2*fin.CoV {
		t.Errorf("Cello CoV %.2f not clearly burstier than Financial %.2f", cello.CoV, fin.CoV)
	}
}

func TestCelloLikeScaleMatchesPaper(t *testing.T) {
	t.Parallel()
	reqs := CelloLike(70000, 31000, 2)
	s := Analyze(reqs)
	if s.Count != 70000 {
		t.Fatalf("count = %d", s.Count)
	}
	// Section 4.1: 70,000 requests over a 30,000+ block universe. With Zipf
	// popularity a fair share of blocks is never touched; require that the
	// stream still spreads over a wide working set.
	if s.UniqueBlocks < 12000 {
		t.Errorf("unique blocks = %d, want a wide working set", s.UniqueBlocks)
	}
	// Several hours of trace time so disks see idle gaps beyond breakeven.
	if s.Duration < time.Hour {
		t.Errorf("duration = %v, want multi-hour trace", s.Duration)
	}
}

func TestPopularitySkew(t *testing.T) {
	t.Parallel()
	reqs := CelloLike(50000, 10000, 3)
	counts := map[core.BlockID]int{}
	for _, r := range reqs {
		counts[r.Block]++
	}
	freq := make([]int, 0, len(counts))
	for _, c := range counts {
		freq = append(freq, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	top := 0
	for _, c := range freq[:len(freq)/100] { // top 1% of touched blocks
		top += c
	}
	if frac := float64(top) / 50000; frac < 0.1 {
		t.Errorf("top 1%% blocks draw %.1f%% of requests, want Zipf-like skew (>10%%)", frac*100)
	}
}

func TestAnalyzeEdgeCases(t *testing.T) {
	t.Parallel()
	if s := Analyze(nil); s.Count != 0 || s.CoV != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	one := []core.Request{{ID: 0, Block: 1, Arrival: time.Second}}
	if s := Analyze(one); s.Count != 1 || s.UniqueBlocks != 1 || s.Duration != 0 {
		t.Errorf("single-request stats = %+v", s)
	}
}

func TestGenerateZeroRequests(t *testing.T) {
	t.Parallel()
	reqs, err := Generate(Config{NumRequests: 0, NumBlocks: 1, Arrivals: Poisson{Rate: 1}})
	if err != nil || len(reqs) != 0 {
		t.Errorf("zero requests: %v, %v", reqs, err)
	}
}

func TestDiurnalModulatesRate(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	d := &Diurnal{Base: Poisson{Rate: 10}, Period: time.Hour, Amplitude: 0.9}
	// Collect arrivals over two periods and compare the busiest and
	// quietest quarter-hour bucket counts.
	buckets := map[int]int{}
	now := time.Duration(0)
	for now < 2*time.Hour {
		g := d.NextGap(rng)
		if g < 0 {
			t.Fatal("negative gap")
		}
		now += g
		buckets[int(now/(15*time.Minute))]++
	}
	min, max := 1<<30, 0
	for b := 0; b < 8; b++ {
		c := buckets[b]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 3*min {
		t.Errorf("diurnal modulation too weak: min bucket %d, max bucket %d", min, max)
	}
}

func TestDiurnalPanicsOnBadConfig(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for _, d := range []*Diurnal{
		{Base: nil, Period: time.Hour, Amplitude: 0.5},
		{Base: Poisson{Rate: 1}, Period: 0, Amplitude: 0.5},
		{Base: Poisson{Rate: 1}, Period: time.Hour, Amplitude: 1},
	} {
		d := d
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", d)
				}
			}()
			d.NextGap(rng)
		}()
	}
}

func TestDiurnalName(t *testing.T) {
	t.Parallel()
	d := &Diurnal{Base: Poisson{Rate: 2}, Period: time.Hour, Amplitude: 0.5}
	if got := d.Name(); got != "diurnal(poisson(2.00/s), 50%, 1h0m0s)" {
		t.Errorf("Name = %q", got)
	}
}
