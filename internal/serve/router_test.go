package serve

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
)

func testPlacement(t *testing.T, disks, blocks, rf int) *placement.Placement {
	t.Helper()
	p, err := placement.Generate(placement.GenerateConfig{
		NumDisks: disks, NumBlocks: blocks,
		ReplicationFactor: rf, ZipfExponent: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRouterLookupMatchesPlacement(t *testing.T) {
	t.Parallel()
	p := testPlacement(t, 16, 333, 3)
	for _, shards := range []int{1, 7, 64, 1000} {
		r := NewRouter(p, shards)
		if r.NumBlocks() != 333 {
			t.Fatalf("shards=%d: NumBlocks = %d, want 333", shards, r.NumBlocks())
		}
		for b := 0; b < 333; b++ {
			got := r.Lookup(core.BlockID(b))
			want := p.Locations(core.BlockID(b))
			if len(got) != len(want) {
				t.Fatalf("shards=%d block %d: %v != %v", shards, b, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d block %d: %v != %v", shards, b, got, want)
				}
			}
		}
	}
}

func TestRouterUnknownBlocks(t *testing.T) {
	t.Parallel()
	r := NewRouter(testPlacement(t, 4, 10, 2), 3)
	for _, b := range []core.BlockID{-1, 10, 11, 1 << 30} {
		if locs := r.Lookup(b); locs != nil {
			t.Errorf("Lookup(%d) = %v, want nil", b, locs)
		}
	}
}

func TestRouterUpdate(t *testing.T) {
	t.Parallel()
	r := NewRouter(testPlacement(t, 8, 40, 2), 4)
	if err := r.Update(5, []core.DiskID{7, 0, 3}); err != nil {
		t.Fatal(err)
	}
	got := r.Lookup(5)
	if len(got) != 3 || got[0] != 7 || got[1] != 0 || got[2] != 3 {
		t.Fatalf("Lookup(5) = %v after update", got)
	}
	// Neighbors in the same shard are untouched.
	if locs := r.Lookup(9); len(locs) != 2 {
		t.Fatalf("Lookup(9) = %v, want original 2 replicas", locs)
	}
	for _, bad := range []struct {
		name string
		b    core.BlockID
		locs []core.DiskID
	}{
		{"empty", 5, nil},
		{"out of range", 5, []core.DiskID{8}},
		{"negative disk", 5, []core.DiskID{-1}},
		{"duplicate", 5, []core.DiskID{3, 3}},
		{"unknown block", 40, []core.DiskID{1}},
		{"negative block", -1, []core.DiskID{1}},
	} {
		if err := r.Update(bad.b, bad.locs); err == nil {
			t.Errorf("%s: Update accepted", bad.name)
		}
	}
}

// TestRouterConcurrent hammers lookups against copy-on-write updates; under
// -race this proves the lock-free path is clean, and every observed list
// must be a valid replica set (never a partial write).
func TestRouterConcurrent(t *testing.T) {
	t.Parallel()
	const blocks = 64
	r := NewRouter(testPlacement(t, 8, blocks, 2), 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := core.BlockID((g*13 + i) % blocks)
				locs := r.Lookup(b)
				if len(locs) < 1 {
					t.Errorf("block %d: empty locations", b)
					return
				}
				for _, d := range locs {
					if d < 0 || d >= 8 {
						t.Errorf("block %d: invalid disk %d", b, d)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 2000; i++ {
		b := core.BlockID(i % blocks)
		if err := r.Update(b, []core.DiskID{core.DiskID(i % 8), core.DiskID((i + 3) % 8)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
