package serve

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/placement"
)

// Router is the daemon's replica-lookup surface: a sharded, lock-free view
// of a placement (internal/placement) that HTTP handlers and the decision
// loop read concurrently with zero synchronization on the hot path.
//
// Blocks are striped across shards by block ID; each shard holds an
// immutable location table behind an atomic pointer. Reads are two index
// operations and one atomic load. Updates (replica creation or migration
// feeding a future replication manager) copy-on-write a single shard's
// table, so writers on different shards never contend and readers are
// never blocked.
type Router struct {
	numDisks int
	shards   []atomic.Pointer[shardTable]
}

// shardTable is one shard's immutable slice of location lists, indexed by
// block/numShards. Location slices are shared with the source placement
// and must never be mutated in place.
type shardTable struct {
	locs [][]core.DiskID
}

// NewRouter builds a sharded router over a placement. shards <= 0 selects
// one shard per available stripe up to 64 — enough that copy-on-write
// updates to distinct stripes never touch the same table.
func NewRouter(p *placement.Placement, shards int) *Router {
	if shards <= 0 {
		shards = 64
	}
	if n := p.NumBlocks(); shards > n && n > 0 {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	r := &Router{numDisks: p.NumDisks(), shards: make([]atomic.Pointer[shardTable], shards)}
	tables := make([]shardTable, shards)
	for s := range tables {
		n := (p.NumBlocks() - s + shards - 1) / shards
		if n < 0 {
			n = 0
		}
		tables[s].locs = make([][]core.DiskID, 0, n)
	}
	for b := 0; b < p.NumBlocks(); b++ {
		s := b % shards
		tables[s].locs = append(tables[s].locs, p.Locations(core.BlockID(b)))
	}
	for s := range tables {
		t := tables[s]
		r.shards[s].Store(&t)
	}
	return r
}

// NumDisks returns the disk population size the router validates against.
func (r *Router) NumDisks() int { return r.numDisks }

// NumShards returns the stripe count.
func (r *Router) NumShards() int { return len(r.shards) }

// NumBlocks returns the number of blocks with a location list.
func (r *Router) NumBlocks() int {
	n := 0
	for s := range r.shards {
		n += len(r.shards[s].Load().locs)
	}
	return n
}

// Lookup returns the replica locations of a block, original first, or nil
// for an unknown block. The caller must not modify the returned slice.
// Lookup is lock-free and safe for any number of concurrent callers.
func (r *Router) Lookup(b core.BlockID) []core.DiskID {
	if b < 0 {
		return nil
	}
	s := int(b) % len(r.shards)
	t := r.shards[s].Load()
	i := int(b) / len(r.shards)
	if i >= len(t.locs) {
		return nil
	}
	return t.locs[i]
}

// Update replaces one block's location list (copy-on-write on the block's
// shard). Readers observe either the old or the new list, never a partial
// write. The block must already exist and the new list must name at least
// one valid, distinct disk — the serving layer only re-routes replicas, it
// does not grow the block space.
func (r *Router) Update(b core.BlockID, locs []core.DiskID) error {
	if len(locs) == 0 {
		return fmt.Errorf("serve: block %d must keep at least one location", b)
	}
	seen := make(map[core.DiskID]struct{}, len(locs))
	for _, d := range locs {
		if d < 0 || int(d) >= r.numDisks {
			return fmt.Errorf("serve: block %d on invalid disk %d", b, d)
		}
		if _, dup := seen[d]; dup {
			return fmt.Errorf("serve: block %d lists disk %d twice", b, d)
		}
		seen[d] = struct{}{}
	}
	if b < 0 {
		return fmt.Errorf("serve: invalid block %d", b)
	}
	s := int(b) % len(r.shards)
	i := int(b) / len(r.shards)
	for {
		old := r.shards[s].Load()
		if i >= len(old.locs) {
			return fmt.Errorf("serve: unknown block %d", b)
		}
		next := &shardTable{locs: make([][]core.DiskID, len(old.locs))}
		copy(next.locs, old.locs)
		next.locs[i] = append([]core.DiskID(nil), locs...)
		if r.shards[s].CompareAndSwap(old, next) {
			return nil
		}
	}
}
