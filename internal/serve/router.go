package serve

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/simkernel"
)

// Router is the daemon's replica-lookup surface: a sharded, lock-free view
// of a placement (internal/placement) that HTTP handlers and the decision
// loop read concurrently with zero synchronization on the hot path.
//
// Blocks are striped across shards by block ID; each shard holds an
// immutable location table behind an atomic pointer. Reads are two index
// operations and one atomic load. Updates (replica creation or migration
// feeding a future replication manager) copy-on-write a single shard's
// table, so writers on different shards never contend and readers are
// never blocked.
type Router struct {
	numDisks int
	shards   []atomic.Pointer[shardTable]
	// alignShards, when set (see SetAlignment), makes Update reject location
	// lists that straddle the serving engine's decision shards.
	alignShards atomic.Int32
}

// shardTable is one shard's immutable location store, indexed by
// block/numShards. Replica lists are packed into fixed-width rows of one
// flat array instead of a slice of slices: a lookup loads the row
// directly rather than chasing a per-block slice header first, halving
// the dependent cache misses on the decision hot path. The table must
// never be mutated in place.
type shardTable struct {
	width int           // replica slots per row (the widest list stored)
	cnt   []uint16      // live replica count per block
	flat  []core.DiskID // rows, width apart; block i's row starts at i*width
}

// lookup returns block row i's live replicas, or nil when out of range.
func (t *shardTable) lookup(i int) []core.DiskID {
	if i >= len(t.cnt) {
		return nil
	}
	off := i * t.width
	end := off + int(t.cnt[i])
	return t.flat[off:end:end]
}

// packTable builds an immutable shardTable from per-block location lists.
func packTable(lists [][]core.DiskID) *shardTable {
	w := 1
	for _, l := range lists {
		if len(l) > w {
			w = len(l)
		}
	}
	t := &shardTable{
		width: w,
		cnt:   make([]uint16, len(lists)),
		flat:  make([]core.DiskID, len(lists)*w),
	}
	for i, l := range lists {
		t.cnt[i] = uint16(len(l))
		copy(t.flat[i*w:], l)
	}
	return t
}

// NewRouter builds a sharded router over a placement. shards <= 0 selects
// one shard per available stripe up to 64 — enough that copy-on-write
// updates to distinct stripes never touch the same table.
func NewRouter(p *placement.Placement, shards int) *Router {
	if shards <= 0 {
		shards = 64
	}
	if n := p.NumBlocks(); shards > n && n > 0 {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	r := &Router{numDisks: p.NumDisks(), shards: make([]atomic.Pointer[shardTable], shards)}
	lists := make([][][]core.DiskID, shards)
	for s := range lists {
		n := (p.NumBlocks() - s + shards - 1) / shards
		if n < 0 {
			n = 0
		}
		lists[s] = make([][]core.DiskID, 0, n)
	}
	for b := 0; b < p.NumBlocks(); b++ {
		s := b % shards
		lists[s] = append(lists[s], p.Locations(core.BlockID(b)))
	}
	for s := range lists {
		r.shards[s].Store(packTable(lists[s]))
	}
	return r
}

// NumDisks returns the disk population size the router validates against.
func (r *Router) NumDisks() int { return r.numDisks }

// NumShards returns the stripe count.
func (r *Router) NumShards() int { return len(r.shards) }

// NumBlocks returns the number of blocks with a location list.
func (r *Router) NumBlocks() int {
	n := 0
	for s := range r.shards {
		n += len(r.shards[s].Load().cnt)
	}
	return n
}

// Lookup returns the replica locations of a block, original first, or nil
// for an unknown block. The caller must not modify the returned slice.
// Lookup is lock-free and safe for any number of concurrent callers.
func (r *Router) Lookup(b core.BlockID) []core.DiskID {
	if b < 0 {
		return nil
	}
	s := int(b) % len(r.shards)
	t := r.shards[s].Load()
	return t.lookup(int(b) / len(r.shards))
}

// SetAlignment pins the router to a decision-shard topology: every
// subsequent Update must keep a block's replicas inside one engine shard's
// disk range, preserving the invariant serve.New validated at startup (a
// decision never needs two shards' state). The serving engine calls this
// once, before traffic; shards <= 1 clears the constraint.
func (r *Router) SetAlignment(shards int) {
	r.alignShards.Store(int32(shards))
}

// Update replaces one block's location list (copy-on-write on the block's
// shard). Readers observe either the old or the new list, never a partial
// write. The block must already exist and the new list must name at least
// one valid, distinct disk — the serving layer only re-routes replicas, it
// does not grow the block space.
func (r *Router) Update(b core.BlockID, locs []core.DiskID) error {
	if len(locs) == 0 {
		return fmt.Errorf("serve: block %d must keep at least one location", b)
	}
	seen := make(map[core.DiskID]struct{}, len(locs))
	for _, d := range locs {
		if d < 0 || int(d) >= r.numDisks {
			return fmt.Errorf("serve: block %d on invalid disk %d", b, d)
		}
		if _, dup := seen[d]; dup {
			return fmt.Errorf("serve: block %d lists disk %d twice", b, d)
		}
		seen[d] = struct{}{}
	}
	if shards := int(r.alignShards.Load()); shards > 1 {
		home := simkernel.ShardOf(locs[0], r.numDisks, shards)
		for _, d := range locs[1:] {
			if simkernel.ShardOf(d, r.numDisks, shards) != home {
				return fmt.Errorf("serve: block %d update %v straddles decision shards (engine is aligned to %d shards)", b, locs, shards)
			}
		}
	}
	if b < 0 {
		return fmt.Errorf("serve: invalid block %d", b)
	}
	s := int(b) % len(r.shards)
	i := int(b) / len(r.shards)
	for {
		old := r.shards[s].Load()
		if i >= len(old.cnt) {
			return fmt.Errorf("serve: unknown block %d", b)
		}
		var next *shardTable
		if len(locs) <= old.width {
			// Same row width: copy the packed table and overwrite one row.
			next = &shardTable{
				width: old.width,
				cnt:   append([]uint16(nil), old.cnt...),
				flat:  append([]core.DiskID(nil), old.flat...),
			}
			row := next.flat[i*next.width : i*next.width+next.width]
			n := copy(row, locs)
			for j := n; j < len(row); j++ {
				row[j] = 0
			}
			next.cnt[i] = uint16(len(locs))
		} else {
			// The new list is wider than any row; repack the shard with
			// wider rows. Updates are rare and per-shard, so the rebuild
			// never touches another stripe or blocks a reader.
			lists := make([][]core.DiskID, len(old.cnt))
			for j := range lists {
				if j == i {
					lists[j] = locs
				} else {
					lists[j] = old.lookup(j)
				}
			}
			next = packTable(lists)
		}
		if r.shards[s].CompareAndSwap(old, next) {
			return nil
		}
	}
}
