// Package serve turns the batch/offline energy-aware scheduling stack into
// a long-lived serving system: eschedd's decision engine.
//
// An Engine ingests read requests (HTTP handlers in this package, or any
// in-process caller), makes streaming replica-scheduling decisions with the
// paper's Eq. 6 online cost function C(d) = E(d)·α/β + P(d)·(1−α)
// (internal/sched) against live per-disk power state, and dispatches each
// request into the same disk/power/discrete-event machinery the batch
// runners use (storage.LiveSet over internal/diskmodel, internal/power,
// internal/simkernel). Replica lookup is a sharded lock-free Router over
// internal/placement; batched decision rounds can reuse the weighted-set-
// cover scheduler (internal/sched + internal/graph) instead of per-request
// cost minimization.
//
// The fleet is partitioned into Config.Shards decision shards, each owning
// a contiguous per-rack disk range, its own virtual-clock segment and its
// own serial kernel — the serving-path analogue of simkernel.Sharded.
// Admission is a per-shard lock-free MPSC ring; decisions are made by flat
// combining: the submitting goroutine that wins a shard's combining token
// drains the ring and decides the round inline, so the hot submit path has
// no cross-goroutine handoff and zero allocations. Observability streams
// from the shards are journaled and merged back into the canonical global
// order (storage.LiveSet), so a sharded run keeps every batch-path
// guarantee: the event log (internal/obs) is replayable with tracelens,
// the doctor monitors (internal/obs/monitor) can ride along live, and the
// Prometheus metrics reconcile bit-exactly to the power meters at drain —
// in Sequential mode the sharded output is byte-identical to a one-shard
// run. Admission is bounded (queue-full submissions fail fast for HTTP 429
// backpressure), each request carries a decision deadline, and Drain
// performs a graceful shutdown: in-flight requests complete, new ones are
// rejected, trailing spin-downs settle, and the final accounting is
// returned.
//
// See docs/SERVING.md for the architecture and the endpoint reference.
package serve

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/sched"
	"repro/internal/simkernel"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Serving-path errors, mapped to HTTP statuses by the Server (http.go).
var (
	// ErrQueueFull reports that the admission bound was hit: the caller
	// should back off and retry (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: decision queue full")
	// ErrDraining reports that the engine is shutting down and rejects new
	// work (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrDeadline reports that a request waited past its decision deadline
	// and was dropped (HTTP 504).
	ErrDeadline = errors.New("serve: decision deadline exceeded")
	// ErrNoReplica reports a block with no replica locations (HTTP 422).
	ErrNoReplica = errors.New("serve: no replica locations for block")
)

// Mode selects the decision path for a round.
type Mode int

const (
	// ModeHeuristic decides each request independently: the Eq. 6 argmin
	// over the block's replicas (sched.Heuristic).
	ModeHeuristic Mode = iota
	// ModeWSC decides each round as one weighted-set-cover instance over
	// the batched requests (sched.WSC), the paper's batch model applied to
	// serving rounds.
	ModeWSC
)

func (m Mode) String() string {
	if m == ModeWSC {
		return "wsc"
	}
	return "heuristic"
}

// Config parameterizes an Engine.
type Config struct {
	// System is the simulated disk population (storage.Config); Shards must
	// be 0 or 1 (each serving shard runs its own serial kernel; use the
	// serve-level Shards field below to parallelize).
	System storage.Config
	// Router resolves blocks to replica locations.
	Router *Router
	// Shards partitions the fleet into per-rack decision shards, each with
	// its own combining loop, admission ring and virtual-clock segment.
	// 0 or 1 selects the single-shard engine. With more than one shard,
	// every block's replica set must live inside one shard's disk range
	// (placement.GenerateRackLocal with racks divisible by Shards), so a
	// decision never crosses shards.
	Shards int
	// Cost is the Eq. 6 cost function; zero Alpha+Beta selects
	// sched.DefaultCost over System.Power.
	Cost sched.CostConfig
	// Mode selects per-request heuristic or per-round WSC decisions.
	Mode Mode
	// MaxInFlight bounds admitted-but-undecided requests; submissions over
	// the bound fail with ErrQueueFull. Default 4096.
	MaxInFlight int
	// RoundMax caps how many queued requests one decision round drains.
	// Default 512.
	RoundMax int
	// Deadline is the default wall-clock bound on queueing before a
	// decision; an expired request is dropped with ErrDeadline. 0 = none.
	Deadline time.Duration
	// Sequential switches the engine to deterministic replay order:
	// submitters supply dense request IDs and virtual arrival times, and
	// decisions are made in strict ID order regardless of submission
	// interleaving, so concurrent and serial clients produce bit-identical
	// accounting — at any shard count. Rounds are per-request and
	// wall-clock deadlines do not apply. When false (live mode), the engine
	// stamps IDs and arrivals from the wall clock in admission order.
	Sequential bool
	// Tracer, Collector and Monitor attach the observability stack exactly
	// as on a batch run (storage.WithTracer / WithCollector / WithMonitor).
	Tracer    *obs.Tracer
	Collector *obs.Collector
	Monitor   *monitor.Suite
	// StateLog streams disk power-state transitions as CSV
	// (storage.WithStateLog), in canonical global order at any shard count.
	StateLog io.Writer
	// Accounting attaches carbon/cost attribution (storage.WithAccounting):
	// the accumulator sees the live event stream, surfaces running gCO2e/$
	// on /state, and is finalized and reconciled at Drain.
	Accounting *account.Accumulator
	// Flight attaches an always-on flight recorder (storage.WithFlight).
	// The engine arms its triggers: a doctor violation (via Monitor), the
	// first queue-full rejection, and the first decision span breaching
	// FlightSLO each freeze the recorder's window into a dump.
	Flight *flight.Recorder
	// FlightSLO is the wall-clock submit-to-reply bound whose first breach
	// triggers a flight dump (requires Flight and Collector; 0 disables).
	FlightSLO time.Duration
}

// Decision is the outcome of scheduling one request.
type Decision struct {
	Req     core.RequestID
	Block   core.BlockID
	Disk    core.DiskID
	State   core.DiskState // the chosen disk's power state at decision time
	Load    int            // queued+in-service on the chosen disk, pre-dispatch
	Cost    float64        // composite C(d) of Eq. 6
	EnergyJ float64        // energy term E(d) of Eq. 5
	At      time.Duration  // virtual decision time
}

// Totals is the running aggregate surfaced on /state and /healthz.
type Totals struct {
	Now       time.Duration
	Decisions uint64
	Served    int
	Dropped   int
	InFlight  int
	EnergyJ   float64
	SpinUps   int
	SpinDowns int
	Draining  bool
	// CarbonG and CostUSD are the accounting snapshot (zero without
	// Config.Accounting): settled gCO2e and energy dollars so far, exact
	// after Drain.
	CarbonG float64
	CostUSD float64
}

// ShardState is one decision shard's entry in a Snapshot: its disk range,
// clock segment and local counters.
type ShardState struct {
	Shard     int           `json:"shard"`
	BaseDisk  int           `json:"base_disk"`
	NumDisks  int           `json:"num_disks"`
	NowUS     int64         `json:"now_us"`
	Decisions uint64        `json:"decisions"`
	Rounds    uint64        `json:"rounds"`
	Served    int           `json:"served"`
	Dropped   int           `json:"dropped"`
	Now       time.Duration `json:"-"`
}

// Snapshot is a consistent view of the serving system: per-disk power
// state plus totals, taken with every shard quiescent.
type Snapshot struct {
	Totals Totals
	Disks  []storage.DiskSnapshot
	// Shards breaks the totals down per decision shard.
	Shards []ShardState
	// Slow holds the slow-request exemplars (slowest first), populated when
	// a collector is attached.
	Slow []SlowSpan
	// Kernel is the engine's kernel introspection snapshot, one
	// pseudo-shard per decision shard (events, queue/pool high-water
	// marks).
	Kernel *simkernel.KernelStats
}

// serveMetrics is the engine's own metric catalog, alongside the
// simulator's RunMetrics on the shared collector.
type serveMetrics struct {
	decided, queueFull, deadline, draining, noReplica *obs.Counter
	inflight                                          *obs.Gauge
	rounds                                            *obs.Counter
	roundSize                                         *obs.Histogram
	decisionLatency                                   *obs.Histogram
	// Request lifecycle spans: per-phase wall-clock latency from admission
	// to the decision reply (queue: admitted, waiting for a round; decide:
	// scheduling; dispatch: kernel advance + submit-to-disk + reply).
	spanQueue, spanDecide, spanDispatch *obs.Histogram
	// Per-shard decision/round counters (esched_serve_shard_*), index =
	// shard.
	shardDecisions, shardRounds []*obs.Counter
}

func newServeMetrics(c *obs.Collector, shards int) *serveMetrics {
	const outName = "esched_serve_requests_total"
	const outHelp = "Serving submissions by outcome."
	m := &serveMetrics{
		decided:   c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "decided"}),
		queueFull: c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "queue_full"}),
		deadline:  c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "deadline_expired"}),
		draining:  c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "draining"}),
		noReplica: c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "no_replica"}),
		inflight:  c.Gauge("esched_serve_inflight", "Admitted requests awaiting a decision."),
		rounds:    c.Counter("esched_serve_rounds_total", "Decision rounds executed."),
		roundSize: c.Histogram("esched_serve_round_size",
			"Requests decided per round.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
		decisionLatency: c.Histogram("esched_serve_decision_latency_seconds",
			"Wall-clock submit-to-decision latency.",
			[]float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
				0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}),
		spanQueue:    spanHistogram(c, "queue"),
		spanDecide:   spanHistogram(c, "decide"),
		spanDispatch: spanHistogram(c, "dispatch"),
	}
	for i := 0; i < shards; i++ {
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
		m.shardDecisions = append(m.shardDecisions, c.Counter("esched_serve_shard_decisions_total",
			"Scheduling decisions per decision shard.", lbl))
		m.shardRounds = append(m.shardRounds, c.Counter("esched_serve_shard_rounds_total",
			"Decision rounds per decision shard.", lbl))
	}
	return m
}

func spanHistogram(c *obs.Collector, phase string) *obs.Histogram {
	return c.Histogram("esched_span_phase_seconds",
		"Request lifecycle phase latency (admit->queue->decide->dispatch->reply).",
		[]float64{0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
			0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1},
		obs.Label{Key: "phase", Value: phase})
}

// SlowSpan is one slow-request exemplar: the per-phase wall-clock breakdown
// of a request whose total span ranked among the slowest seen. Surfaced on
// /state and in the loadgen SLO report so a tail-latency spike carries its
// own diagnosis (which phase, which disk, which decision).
type SlowSpan struct {
	Req        core.RequestID `json:"req"`
	Block      core.BlockID   `json:"block"`
	Disk       core.DiskID    `json:"disk"`
	Decision   uint64         `json:"decision"`
	QueueUS    int64          `json:"queue_us"`
	DecideUS   int64          `json:"decide_us"`
	DispatchUS int64          `json:"dispatch_us"`
	TotalUS    int64          `json:"total_us"`
}

// slowSpanCap bounds the exemplar ring.
const slowSpanCap = 8

// pending waiter states.
const (
	pWait   uint32 = iota // submitted, decision outstanding, waiter spinning
	pParked               // waiter gave up spinning and will block on wake
	pDone                 // decision published
)

// pending is one admitted request traveling from Submit to a decision
// round. Instances are pooled: the submit hot path performs no allocation
// in steady state. The decider publishes dec/err and flips state to pDone
// (waking a parked waiter); the submitter spins briefly, parks if needed,
// then reads the outcome and returns the record to the pool.
type pending struct {
	req      core.Request
	deadline time.Time // zero = none
	enqueued time.Time
	// Span timestamps, populated only when metrics are attached: when the
	// request's round started (queue phase ends) and when its scheduling
	// decision was computed (decide phase ends).
	roundAt   time.Time
	decidedAt time.Time

	dec   Decision
	err   error
	state atomic.Uint32
	wake  chan struct{} // cap 1, allocated once per pooled record
}

// publish hands the outcome to the waiter.
func (p *pending) publish(dec Decision, err error) {
	p.dec = dec
	p.finish(err)
}

// finish wakes the waiter with whatever p.dec already holds; the success
// path fills the decision in place and skips publish's extra copy.
func (p *pending) finish(err error) {
	p.err = err
	if p.state.Swap(pDone) == pParked {
		p.wake <- struct{}{}
	}
}

// await blocks until the outcome is published: a short spin (the common
// case — the submitter itself just combined its own request inline), then
// a parked channel wait.
func (p *pending) await() {
	for i := 0; i < 64; i++ {
		if p.state.Load() == pDone {
			return
		}
		if i >= 8 {
			runtime.Gosched()
		}
	}
	if p.state.CompareAndSwap(pWait, pParked) {
		<-p.wake
	}
}

// shard is one decision shard: a contiguous disk range with its own
// storage.Live facade (serial kernel + virtual-clock segment), admission
// ring, combining token and schedulers. All fields below the token are
// owned by whichever goroutine holds it.
type shard struct {
	idx         int
	base, count int
	ring        *ring
	lv          *storage.Live
	// tok is the flat-combining token: CAS 0→1 to own the shard.
	tok atomic.Uint32
	// pubClock is the shard's last published virtual clock (nanoseconds),
	// the watermark input for incremental journal merging; pubFired is the
	// kernel's executed-event count as of that publication. Both are
	// written under the token and read by the maintenance loop.
	pubClock atomic.Int64
	pubFired atomic.Uint64

	// Token-holder state.
	heur        sched.Heuristic
	wsc         sched.WSC
	scratch     sched.CoverScratch
	round       []*pending
	batch       []core.Request
	lastArrival time.Duration
	decisions   uint64
	rounds      uint64
}

// Engine is the serving decision engine. Create with New, feed with
// Submit from any number of goroutines, stop with Drain.
type Engine struct {
	cfg    Config
	ls     *storage.LiveSet
	shards []*shard
	sm     *serveMetrics
	pool   sync.Pool
	stop   chan struct{}
	ended  chan struct{}

	inflight  atomic.Int64
	draining  atomic.Bool
	decisions atomic.Uint64
	liveID    atomic.Uint64

	start time.Time // wall anchor for the virtual clock (live mode)

	// Sequential-mode sequencer: submissions park here until every lower ID
	// has arrived, then release — under seqMu, preserving per-ring ID
	// order — to their home shards with globally clamped arrivals.
	seqMu     sync.Mutex
	seqNext   core.RequestID
	seqLast   time.Duration
	seqParked map[core.RequestID]*pending
	seqMark   []bool   // scratch: shards touched by one release run
	seqTouch  []*shard // scratch: same, in touch order

	// mergeMu serializes journal merging (maintenance flushes, accounting
	// snapshots, flight sweeps) in multi-shard mode.
	mergeMu sync.Mutex

	// slowMu guards the slow-span exemplar ring.
	slowMu sync.Mutex
	slow   []SlowSpan // slowest spans seen, descending by TotalUS

	// kstats caches the merged kernel introspection snapshot for flight
	// dump telemetry (refreshed by maintenance and Snapshot).
	kstats atomic.Pointer[simkernel.KernelStats]

	sloDumped atomic.Bool // the FlightSLO trigger fires once per run
	qfDumped  atomic.Bool // latches the queue-full flight trigger

	maintDone chan struct{} // maintenance goroutine exit (live mode)

	// Set once Drain has completed.
	final    *Snapshot
	report   *storage.Result
	finalErr error
}

// New builds and starts a serving engine; it serves until Drain.
func New(cfg Config) (*Engine, error) {
	if cfg.Router == nil {
		return nil, errors.New("serve: nil Router")
	}
	if cfg.Router.NumDisks() != cfg.System.NumDisks {
		return nil, fmt.Errorf("serve: router over %d disks, system has %d",
			cfg.Router.NumDisks(), cfg.System.NumDisks)
	}
	if cfg.Cost.Beta == 0 && cfg.Cost.Alpha == 0 {
		cfg.Cost = sched.DefaultCost(cfg.System.Power)
	}
	if err := cfg.Cost.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	if cfg.RoundMax <= 0 {
		cfg.RoundMax = 512
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.System.NumDisks {
		return nil, fmt.Errorf("serve: %d shards exceed %d disks", cfg.Shards, cfg.System.NumDisks)
	}
	if cfg.Shards > 1 {
		if err := checkAlignment(cfg.Router, cfg.System.NumDisks, cfg.Shards); err != nil {
			return nil, err
		}
		cfg.Router.SetAlignment(cfg.Shards)
	}
	var opts []storage.RunOption
	if cfg.Tracer != nil {
		opts = append(opts, storage.WithTracer(cfg.Tracer))
	}
	if cfg.Collector != nil {
		opts = append(opts, storage.WithCollector(cfg.Collector))
	}
	if cfg.Monitor != nil {
		opts = append(opts, storage.WithMonitor(cfg.Monitor))
	}
	if cfg.StateLog != nil {
		opts = append(opts, storage.WithStateLog(cfg.StateLog))
	}
	if cfg.Accounting != nil {
		opts = append(opts, storage.WithAccounting(cfg.Accounting))
	}
	if cfg.Flight != nil {
		opts = append(opts, storage.WithFlight(cfg.Flight))
	}
	ls, err := storage.NewLiveSet(cfg.System, cfg.Router.Lookup, cfg.Shards, cfg.Sequential, opts...)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		ls:        ls,
		shards:    make([]*shard, ls.NumShards()),
		stop:      make(chan struct{}),
		ended:     make(chan struct{}),
		start:     time.Now(),
		seqParked: map[core.RequestID]*pending{},
		seqMark:   make([]bool, ls.NumShards()),
	}
	e.pool.New = func() any { return &pending{wake: make(chan struct{}, 1)} }
	for i := range e.shards {
		base, count := ls.ShardRange(i)
		s := &shard{idx: i, base: base, count: count, lv: ls.Shard(i), ring: newRing(cfg.MaxInFlight)}
		// The shard's scheduler traces into the shard relay (journaled and
		// renumbered at merge) — but only when the caller traces at all, so
		// an untraced run's decision stream stays absent exactly as on the
		// single-shard path.
		var tr *obs.Tracer
		if cfg.Tracer != nil {
			tr = s.lv.Tracer()
		}
		s.heur = sched.Heuristic{Locations: cfg.Router.Lookup, Cost: cfg.Cost, Tracer: tr}
		s.wsc = sched.WSC{Locations: cfg.Router.Lookup, Cost: cfg.Cost, Scratch: &s.scratch, Tracer: tr}
		e.shards[i] = s
	}
	if cfg.Collector != nil {
		e.sm = newServeMetrics(cfg.Collector, ls.NumShards())
	}
	if cfg.Flight != nil {
		// Dump telemetry rides the kernel's introspection counters. With one
		// shard the dump is written under that shard's token, which also owns
		// the counters; with several, the maintenance loop refreshes a cached
		// snapshot the dump reads instead.
		if len(e.shards) == 1 {
			lv := e.shards[0].lv
			cfg.Flight.SetTelemetry(func() any { return lv.KernelStats() })
		} else {
			cfg.Flight.SetTelemetry(func() any {
				if ks := e.kstats.Load(); ks != nil {
					return ks
				}
				return nil
			})
		}
	}
	if !cfg.Sequential {
		e.maintDone = make(chan struct{})
		go e.maintain()
	}
	return e, nil
}

// checkAlignment verifies that every block's replica set lives inside one
// shard's disk range, so no decision ever needs two shards' state.
func checkAlignment(r *Router, numDisks, shards int) error {
	for b := 0; b < r.NumBlocks(); b++ {
		locs := r.Lookup(core.BlockID(b))
		if len(locs) == 0 {
			continue
		}
		home := simkernel.ShardOf(locs[0], numDisks, shards)
		for _, d := range locs[1:] {
			if simkernel.ShardOf(d, numDisks, shards) != home {
				return fmt.Errorf("serve: block %d replicas %v straddle decision shards (want rack-local placement aligned to %d shards; see placement.GenerateRackLocal)",
					b, locs, shards)
			}
		}
	}
	return nil
}

// elapsed maps the wall clock onto the virtual clock (live mode).
func (e *Engine) elapsed() time.Duration { return time.Since(e.start) }

// homeShard returns the shard owning every replica of locs.
func (e *Engine) homeShard(locs []core.DiskID) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	return e.shards[simkernel.ShardOf(locs[0], e.cfg.System.NumDisks, len(e.shards))]
}

// Submit admits one read request and blocks until its decision (or
// rejection). In live mode req.ID and req.Arrival are ignored: the engine
// stamps both. In Sequential mode req.ID must be the dense replay ID and
// req.Arrival the virtual arrival time. deadline zero uses the engine
// default; a negative duration disables it for this request.
//
// The hot path allocates nothing: replica lookup is one atomic load, the
// admission bound one atomic add, the pending record comes from a pool,
// and the shard handoff is a lock-free ring push — after which the caller
// either combines the round itself (inline decision) or spins/parks until
// the current combiner publishes its outcome.
func (e *Engine) Submit(req core.Request, deadline time.Duration) (Decision, error) {
	locs := e.cfg.Router.Lookup(req.Block)
	if len(locs) == 0 {
		e.count(func(m *serveMetrics) { m.noReplica.Inc() })
		return Decision{}, fmt.Errorf("%w %d", ErrNoReplica, req.Block)
	}
	if n := e.inflight.Add(1); n > int64(e.cfg.MaxInFlight) {
		e.inflight.Add(-1)
		e.count(func(m *serveMetrics) { m.queueFull.Inc() })
		if e.cfg.Flight != nil && e.qfDumped.CompareAndSwap(false, true) {
			// A queue-full spike is a flight trigger: freeze the window that
			// led up to it. Cross-goroutine safe; the next merge or sweep
			// materialises the dump.
			e.cfg.Flight.RequestDump("queue full")
		}
		return Decision{}, ErrQueueFull
	}
	e.gaugeInflight()
	// One ordered drain check, after the inflight reservation: a Drain that
	// began before the reservation is seen here (rejected exactly once), and
	// one that begins after it sees our reservation and keeps polling until
	// we are answered.
	if e.draining.Load() {
		e.inflight.Add(-1)
		e.gaugeInflight()
		e.count(func(m *serveMetrics) { m.draining.Inc() })
		return Decision{}, ErrDraining
	}
	if deadline == 0 {
		deadline = e.cfg.Deadline
	}
	p := e.pool.Get().(*pending)
	p.req = req
	p.err = nil
	p.deadline = time.Time{}
	if e.sm != nil || (deadline > 0 && !e.cfg.Sequential) {
		// The wall clock is only read when something consumes it — the span
		// metrics (collector attached) or a deadline. A bare engine submits
		// without touching the clock at all.
		p.enqueued = time.Now()
		if deadline > 0 && !e.cfg.Sequential {
			p.deadline = p.enqueued.Add(deadline)
		}
	}
	if e.cfg.Sequential {
		e.submitSequential(p)
	} else {
		p.req.ID = core.RequestID(e.liveID.Add(1) - 1)
		if p.req.LBA == 0 {
			p.req.LBA = workload.BlockLBA(p.req.Block)
		}
		s := e.homeShard(locs)
		s.ring.push(p)
		e.combineOn(s)
	}
	p.await()
	dec, err := p.dec, p.err
	p.state.Store(pWait)
	e.pool.Put(p)
	e.inflight.Add(-1)
	e.gaugeInflight()
	return dec, err
}

// submitSequential parks p until every lower request ID has been
// submitted, then releases the maximal run of consecutive IDs to their
// home shards. Ring pushes happen under seqMu so each shard's ring
// receives its requests in global ID order; combining runs after the
// release, outside the lock.
func (e *Engine) submitSequential(p *pending) {
	e.seqMu.Lock()
	e.seqParked[p.req.ID] = p
	if p.req.ID != e.seqNext {
		e.seqMu.Unlock()
		return
	}
	touched := e.seqTouch[:0]
	for {
		q, ok := e.seqParked[e.seqNext]
		if !ok {
			break
		}
		delete(e.seqParked, e.seqNext)
		e.seqNext++
		if q.req.Arrival < e.seqLast {
			q.req.Arrival = e.seqLast
		}
		e.seqLast = q.req.Arrival
		locs := e.cfg.Router.Lookup(q.req.Block)
		s := e.homeShard(locs)
		s.ring.push(q)
		if !e.seqMark[s.idx] {
			e.seqMark[s.idx] = true
			touched = append(touched, s)
		}
	}
	for _, s := range touched {
		e.seqMark[s.idx] = false
	}
	e.seqTouch = touched[:0]
	e.seqMu.Unlock()
	for _, s := range touched {
		e.combineOn(s)
	}
}

// combineOn runs the flat-combining protocol on s: win the token and
// decide rounds until the ring drains, or leave the work to the current
// holder — whose release-recheck (token release, then emptiness test)
// pairs with our pre-CAS ring push to guarantee the item is seen.
func (e *Engine) combineOn(s *shard) {
	for {
		if !s.tok.CompareAndSwap(0, 1) {
			// Someone holds the token. Our push happened before the failed
			// CAS, so the holder's post-release emptiness recheck sees it.
			return
		}
		e.combine(s)
		s.tok.Store(0)
		if s.ring.empty() {
			return
		}
		// New work arrived between the drain and the release (or a producer
		// is mid-publish); take the token back rather than strand it.
		runtime.Gosched()
	}
}

// combine drains s's ring in rounds of up to RoundMax. Caller holds the
// token.
func (e *Engine) combine(s *shard) {
	for {
		round := s.round[:0]
		for len(round) < e.cfg.RoundMax {
			p := s.ring.pop()
			if p == nil {
				break
			}
			round = append(round, p)
		}
		s.round = round
		if len(round) == 0 {
			return
		}
		s.rounds++
		if e.sm != nil {
			e.sm.rounds.Inc()
			e.sm.shardRounds[s.idx].Inc()
			e.sm.roundSize.Observe(float64(len(round)))
		}
		e.decideRound(s, round)
		if !e.cfg.Sequential && e.ls.Journaling() {
			// Republish the clock watermark so journal merging keeps pace
			// even when this shard is busy enough that the maintenance loop
			// never wins its token. Without a journal nothing consumes the
			// watermark, so the un-journaled hot path skips the stores.
			s.pubClock.Store(int64(s.lv.Now()))
			s.pubFired.Store(s.lv.Fired())
		}
	}
}

// decideRound decides one gathered round on s. Live mode stamps arrivals
// here (shard-monotone); sequential requests arrive pre-stamped in ID
// order and are decided one per-request round each, so round grouping can
// never affect results.
func (e *Engine) decideRound(s *shard, round []*pending) {
	if e.cfg.Sequential {
		for _, p := range round {
			arr := p.req.Arrival
			if arr < s.lastArrival {
				arr = s.lastArrival
			}
			s.lastArrival = arr
			p.req.Arrival = arr
			e.decideOne(s, p)
		}
		return
	}
	// One elapsed-clock read stamps the whole round (members share an
	// arrival instant, clamped shard-monotone), and the wall clock is read
	// lazily: only a request carrying a deadline, or the span metrics,
	// need it.
	elapsed := e.elapsed()
	var now time.Time
	if e.sm != nil {
		now = time.Now()
	}
	// Expire deadlines first: an expired request still arrives (it was
	// admitted) but is dropped instead of scheduled, keeping request
	// conservation intact in the event log.
	live := round[:0]
	for _, p := range round {
		arr := elapsed
		if arr < s.lastArrival {
			arr = s.lastArrival
		}
		s.lastArrival = arr
		p.req.Arrival = arr
		if !p.deadline.IsZero() {
			if now.IsZero() {
				now = time.Now()
			}
		}
		if !p.deadline.IsZero() && now.After(p.deadline) {
			s.lv.Advance(arr)
			s.lv.BeginRequest(arr, uint64(p.req.ID))
			s.lv.Arrive(p.req)
			s.lv.Drop(p.req)
			s.lv.EndRequest()
			e.count(func(m *serveMetrics) { m.deadline.Inc() })
			p.publish(Decision{}, ErrDeadline)
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	if e.sm != nil {
		// The round timestamp closes every member's queue phase; per-request
		// decide timestamps are taken after each Schedule call below.
		for _, p := range live {
			p.roundAt = now
		}
	}
	if e.cfg.Mode == ModeWSC && len(live) > 1 {
		e.decideWSC(s, live)
		return
	}
	for _, p := range live {
		e.decideOne(s, p)
	}
}

// decideOne advances the shard clock to p's arrival, emits the arrival,
// schedules with the per-request heuristic and dispatches. The journal
// bracket keys everything the admission emits — arrive, decision,
// dispatch, any synchronous spin-up — to (arrival, request), the exact
// stream position a serial engine gives it.
func (e *Engine) decideOne(s *shard, p *pending) {
	arr := p.req.Arrival
	s.lv.Advance(arr)
	s.lv.BeginRequest(arr, uint64(p.req.ID))
	s.lv.Arrive(p.req)
	base := s.lv.DecisionBase()
	d := s.heur.Schedule(p.req, s.lv.View())
	if e.sm != nil {
		p.decidedAt = time.Now()
	}
	e.answer(s, p, d, func(r core.Request, d core.DiskID) {
		s.lv.Dispatch(r, d, base)
	})
	s.lv.EndRequest()
}

// decideWSC decides one live round as a weighted-set-cover instance:
// arrivals are emitted at their own timestamps, then the whole batch is
// assigned at the round's decision time, mirroring storage.RunBatch's tick
// shape. The dispatch block is journal-bracketed at the round's latest
// arrival under the last request's ID, keeping the shard journal sorted.
func (e *Engine) decideWSC(s *shard, live []*pending) {
	s.batch = s.batch[:0]
	var lastArr time.Duration
	var lastID uint64
	for _, p := range live {
		s.lv.Advance(p.req.Arrival)
		s.lv.BeginRequest(p.req.Arrival, uint64(p.req.ID))
		s.lv.Arrive(p.req)
		s.lv.EndRequest()
		s.batch = append(s.batch, p.req)
		lastArr, lastID = p.req.Arrival, uint64(p.req.ID)
	}
	s.lv.BeginRequest(lastArr, lastID)
	base := s.lv.DecisionBase()
	assignment := s.wsc.ScheduleBatch(s.batch, s.lv.View())
	if e.sm != nil {
		// One cover decides the whole batch; every member's decide phase
		// closes at the same instant.
		decided := time.Now()
		for _, p := range live {
			p.decidedAt = decided
		}
	}
	// A traced WSC emits one decision per placed request in batch order;
	// pair them back exactly as storage.RunBatch does (IDs base+1..base+n).
	placed := 0
	for _, d := range assignment {
		if d != core.InvalidDisk {
			placed++
		}
	}
	traced := placed > 0 && s.lv.DecisionBase() == base+uint64(placed)
	k := base
	for i, p := range live {
		var dec obs.DecisionID
		if traced && assignment[i] != core.InvalidDisk {
			k++
			dec = obs.DecisionID(k)
		}
		e.answer(s, p, assignment[i], func(r core.Request, d core.DiskID) {
			s.lv.DispatchDecision(r, d, dec)
		})
	}
	s.lv.EndRequest()
}

// answer dispatches the decision via dispatch and replies to the waiter.
func (e *Engine) answer(s *shard, p *pending, d core.DiskID, dispatch func(core.Request, core.DiskID)) {
	if d == core.InvalidDisk {
		// Replicas vanished between admission and decision (router update).
		s.lv.Drop(p.req)
		e.count(func(m *serveMetrics) { m.noReplica.Inc() })
		p.publish(Decision{}, fmt.Errorf("%w %d", ErrNoReplica, p.req.Block))
		return
	}
	v := s.lv.View()
	en := e.cfg.Cost.EnergyCost(v, d)
	ld := v.Load(d)
	p.dec = Decision{
		Req:     p.req.ID,
		Block:   p.req.Block,
		Disk:    d,
		State:   v.DiskState(d),
		Load:    ld,
		Cost:    e.cfg.Cost.CostOf(en, ld),
		EnergyJ: en,
		At:      s.lv.Now(),
	}
	dispatch(p.req, d)
	if err := s.lv.Err(); err != nil {
		p.publish(Decision{}, err)
		return
	}
	s.decisions++
	n := e.decisions.Add(1)
	if e.sm != nil {
		e.sm.decided.Inc()
		e.sm.shardDecisions[s.idx].Inc()
		e.sm.decisionLatency.Observe(time.Since(p.enqueued).Seconds())
		e.recordSpan(p, p.dec, n)
	}
	p.finish(nil)
}

func (e *Engine) count(f func(*serveMetrics)) {
	if e.sm != nil {
		f(e.sm)
	}
}

func (e *Engine) gaugeInflight() {
	if e.sm != nil {
		e.sm.inflight.Set(float64(e.inflight.Load()))
	}
}

// Decisions returns the number of scheduling decisions made so far.
func (e *Engine) Decisions() uint64 { return e.decisions.Load() }

// Draining reports whether Drain has begun.
func (e *Engine) Draining() bool { return e.draining.Load() }

// recordSpan closes a decided request's lifecycle span: per-phase
// histograms, the slow-exemplar ring, and the FlightSLO trigger. Runs on
// the combining goroutine with p.roundAt/p.decidedAt already stamped.
func (e *Engine) recordSpan(p *pending, dec Decision, decision uint64) {
	done := time.Now()
	queue := p.roundAt.Sub(p.enqueued)
	decide := p.decidedAt.Sub(p.roundAt)
	dispatch := done.Sub(p.decidedAt)
	e.sm.spanQueue.Observe(queue.Seconds())
	e.sm.spanDecide.Observe(decide.Seconds())
	e.sm.spanDispatch.Observe(dispatch.Seconds())
	total := done.Sub(p.enqueued)
	e.slowMu.Lock()
	if len(e.slow) == slowSpanCap && total.Microseconds() <= e.slow[len(e.slow)-1].TotalUS {
		// Fast path: not among the slowest seen.
	} else {
		s := SlowSpan{
			Req: dec.Req, Block: dec.Block, Disk: dec.Disk, Decision: decision,
			QueueUS: queue.Microseconds(), DecideUS: decide.Microseconds(),
			DispatchUS: dispatch.Microseconds(), TotalUS: total.Microseconds(),
		}
		i := sort.Search(len(e.slow), func(i int) bool { return e.slow[i].TotalUS < s.TotalUS })
		if len(e.slow) < slowSpanCap {
			e.slow = append(e.slow, SlowSpan{})
		}
		copy(e.slow[i+1:], e.slow[i:])
		e.slow[i] = s
	}
	e.slowMu.Unlock()
	if e.cfg.Flight != nil && e.cfg.FlightSLO > 0 && total > e.cfg.FlightSLO &&
		e.sloDumped.CompareAndSwap(false, true) {
		e.cfg.Flight.RequestDump("slo breach")
	}
}

// slowSpans returns a copy of the slow-request exemplars, slowest first.
func (e *Engine) slowSpans() []SlowSpan {
	e.slowMu.Lock()
	out := make([]SlowSpan, len(e.slow))
	copy(out, e.slow)
	e.slowMu.Unlock()
	return out
}

// maintain is the live-mode housekeeping loop: every tick it advances any
// idle shard's clock to wall time (firing completions, idle timeouts and
// spin-downs during quiet periods so /state stays live and disks spin
// down on schedule with no traffic), publishes per-shard clock watermarks,
// flushes the journal merge up to the fleet-wide minimum, and refreshes
// the cached kernel snapshot. Busy shards are skipped — their combiners
// advance their clocks with every round.
func (e *Engine) maintain() {
	defer close(e.maintDone)
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		}
		e.tick()
	}
}

// tick runs one maintenance pass.
func (e *Engine) tick() {
	stats := make([]simkernel.ShardStats, 0, len(e.shards))
	for _, s := range e.shards {
		if !s.tok.CompareAndSwap(0, 1) {
			// A combiner owns the shard; it republishes the watermark with
			// every round, so the merge below still advances.
			continue
		}
		s.lv.Advance(e.elapsed())
		s.pubClock.Store(int64(s.lv.Now()))
		s.pubFired.Store(s.lv.Fired())
		ss := s.lv.KernelStats().Shards[0]
		ss.Shard = s.idx
		stats = append(stats, ss)
		s.tok.Store(0)
		if !s.ring.empty() {
			e.combineOn(s)
		}
	}
	if len(stats) == len(e.shards) {
		merged := &simkernel.KernelStats{Shards: stats}
		for _, ss := range stats {
			merged.Events += ss.Events
		}
		e.kstats.Store(merged)
	}
	if e.ls.Journaling() {
		w := time.Duration(1<<63 - 1)
		var fired uint64
		for _, s := range e.shards {
			if c := time.Duration(s.pubClock.Load()); c < w {
				w = c
			}
			fired += s.pubFired.Load()
		}
		if w > 0 {
			e.mergeMu.Lock()
			e.ls.Flush(w)
			e.ls.SetGauges(w, fired)
			e.mergeMu.Unlock()
		}
	}
}

// FlushFlight materialises a pending flight-dump trigger. Triggers raised
// while the engine is idle (an operator SIGQUIT with no traffic) have no
// event flow to sweep them; this forces the sweep. No-op without a
// recorder or pending trigger.
func (e *Engine) FlushFlight() {
	if e.cfg.Flight == nil {
		return
	}
	select {
	case <-e.ended:
		return // drain already swept
	default:
	}
	if len(e.shards) == 1 {
		s := e.shards[0]
		if !e.acquire(s) {
			return
		}
		e.cfg.Flight.MaybeDump()
		s.tok.Store(0)
		if !s.ring.empty() {
			e.combineOn(s)
		}
		return
	}
	e.mergeMu.Lock()
	e.cfg.Flight.MaybeDump()
	e.mergeMu.Unlock()
}

// acquire spin-waits for s's token, giving up when the engine has ended
// (the drain holds every token forever).
func (e *Engine) acquire(s *shard) bool {
	for !s.tok.CompareAndSwap(0, 1) {
		select {
		case <-e.ended:
			return false
		default:
			runtime.Gosched()
		}
	}
	return true
}

// Snapshot returns a consistent view of the serving system, taken with
// every shard's token held. After Drain it returns the final snapshot.
func (e *Engine) Snapshot() Snapshot {
	held := 0
	for _, s := range e.shards {
		if !e.acquire(s) {
			break
		}
		held++
	}
	if held < len(e.shards) {
		// The engine ended mid-acquisition; back out and serve the final.
		for _, s := range e.shards[:held] {
			s.tok.Store(0)
		}
		<-e.ended
		if e.final != nil {
			return *e.final
		}
		return Snapshot{}
	}
	snap := e.snapshotHeld()
	for _, s := range e.shards {
		s.tok.Store(0)
	}
	for _, s := range e.shards {
		if !s.ring.empty() {
			e.combineOn(s)
		}
	}
	return snap
}

// snapshotHeld builds the snapshot; the caller holds every shard token.
func (e *Engine) snapshotHeld() Snapshot {
	var snap Snapshot
	var fired uint64
	kernel := &simkernel.KernelStats{Shards: make([]simkernel.ShardStats, len(e.shards))}
	for i, s := range e.shards {
		if !e.cfg.Sequential {
			s.lv.Advance(e.elapsed())
			s.pubClock.Store(int64(s.lv.Now()))
			s.pubFired.Store(s.lv.Fired())
		}
		disks := s.lv.Snapshot()
		snap.Disks = append(snap.Disks, disks...)
		now := s.lv.Now()
		snap.Shards = append(snap.Shards, ShardState{
			Shard: s.idx, BaseDisk: s.base, NumDisks: s.count,
			Now: now, NowUS: now.Microseconds(),
			Decisions: s.decisions, Rounds: s.rounds,
			Served: s.lv.Served(), Dropped: s.lv.Dropped(),
		})
		if now > snap.Totals.Now {
			snap.Totals.Now = now
		}
		snap.Totals.Served += s.lv.Served()
		snap.Totals.Dropped += s.lv.Dropped()
		for _, d := range disks {
			snap.Totals.EnergyJ += d.EnergyJ
			snap.Totals.SpinUps += d.SpinUps
			snap.Totals.SpinDowns += d.SpinDowns
		}
		ss := s.lv.KernelStats().Shards[0]
		ss.Shard = i
		kernel.Shards[i] = ss
		kernel.Events += ss.Events
		fired += s.lv.Fired()
	}
	snap.Totals.Decisions = e.decisions.Load()
	snap.Totals.InFlight = int(e.inflight.Load())
	snap.Totals.Draining = e.draining.Load()
	if acc := e.ls.Accounting(); acc != nil {
		// In journaling mode the accumulator is fed by the merge; exclude
		// the flusher while reading. (With every token held, no new records
		// are being appended either way.)
		e.mergeMu.Lock()
		snap.Totals.CarbonG, snap.Totals.CostUSD = acc.Snapshot()
		e.mergeMu.Unlock()
	}
	snap.Slow = e.slowSpans()
	snap.Kernel = kernel
	e.kstats.Store(kernel)
	return snap
}

// Drain gracefully shuts the engine down: new submissions are rejected,
// admitted ones are decided, outstanding disk work completes, trailing
// idle timeouts and spin-downs settle, and the exact final accounting is
// returned (metrics reconciled to the meters, event log flushed, monitor
// end-of-stream checks run). Drain is idempotent; concurrent callers get
// the same result. The winning caller's goroutine performs the drain.
func (e *Engine) Drain() (*storage.Result, error) {
	if e.draining.CompareAndSwap(false, true) {
		e.doDrain()
	}
	<-e.ended
	return e.report, e.finalErr
}

// doDrain runs on the first Drain caller: stop maintenance, answer the
// admitted backlog, seize every shard, finish the storage set and publish
// the final snapshot.
func (e *Engine) doDrain() {
	defer close(e.ended)
	close(e.stop)
	if e.maintDone != nil {
		<-e.maintDone
	}
	// Answer the backlog. Every submitter that reserved inflight before the
	// draining flag flipped either gets decided (its request reached a ring)
	// or rejects itself on the post-reservation drain check; parked
	// sequential requests are rejected (their predecessors will never
	// arrive). Poll until the count settles.
	for {
		for _, s := range e.shards {
			e.combineOn(s)
		}
		e.rejectParked()
		if e.inflight.Load() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Seize the fleet: from here no other goroutine can touch a shard.
	for _, s := range e.shards {
		for !s.tok.CompareAndSwap(0, 1) {
			runtime.Gosched()
		}
	}
	name := "eschedd " + e.cfg.Mode.String()
	res, err := e.ls.Finish(name)
	e.report, e.finalErr = res, err
	if rec := e.cfg.Flight; rec != nil {
		// Flush a trigger raised after the last observed event (the drain
		// itself emits events, so this is usually a no-op).
		rec.MaybeDump()
		if err == nil && rec.Err() != nil {
			e.finalErr = rec.Err()
		}
	}
	snap := Snapshot{}
	if res != nil {
		t := Totals{
			Now:       res.Horizon,
			Decisions: e.decisions.Load(),
			Served:    res.Served,
			Dropped:   res.Dropped,
			Draining:  true,
			EnergyJ:   res.Energy,
			SpinUps:   res.SpinUps,
			SpinDowns: res.SpinDowns,
		}
		if acc := e.ls.Accounting(); acc != nil {
			t.CarbonG, t.CostUSD = acc.Snapshot()
		}
		snap.Totals = t
		for i, st := range res.PerDisk {
			snap.Disks = append(snap.Disks, storage.DiskSnapshot{
				Disk: core.DiskID(i), State: core.StateStandby, Load: 0,
				Served: st.Served, EnergyJ: st.Energy,
				SpinUps: st.SpinUps, SpinDowns: st.SpinDowns,
			})
		}
		for _, s := range e.shards {
			snap.Shards = append(snap.Shards, ShardState{
				Shard: s.idx, BaseDisk: s.base, NumDisks: s.count,
				Now: res.Horizon, NowUS: res.Horizon.Microseconds(),
				Decisions: s.decisions, Rounds: s.rounds,
				Served: s.lv.Served(), Dropped: s.lv.Dropped(),
			})
		}
	}
	snap.Slow = e.slowSpans()
	snap.Kernel = e.ls.KernelStats()
	e.kstats.Store(snap.Kernel)
	e.final = &snap
}

// rejectParked rejects every sequencer resident during drain. The
// requests were admitted but never arrived in virtual terms (their turn
// never came), so they are rejected without trace events.
func (e *Engine) rejectParked() {
	e.seqMu.Lock()
	if len(e.seqParked) == 0 {
		e.seqMu.Unlock()
		return
	}
	ids := make([]core.RequestID, 0, len(e.seqParked))
	for id := range e.seqParked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parked := make([]*pending, len(ids))
	for i, id := range ids {
		parked[i] = e.seqParked[id]
		delete(e.seqParked, id)
	}
	e.seqMu.Unlock()
	for _, p := range parked {
		e.count(func(m *serveMetrics) { m.draining.Inc() })
		p.publish(Decision{}, ErrDraining)
	}
}
