// Package serve turns the batch/offline energy-aware scheduling stack into
// a long-lived serving system: eschedd's decision engine.
//
// An Engine ingests read requests (HTTP handlers in this package, or any
// in-process caller), makes streaming replica-scheduling decisions with the
// paper's Eq. 6 online cost function C(d) = E(d)·α/β + P(d)·(1−α)
// (internal/sched) against live per-disk power state, and dispatches each
// request into the same disk/power/discrete-event machinery the batch
// runners use (storage.Live over internal/diskmodel, internal/power,
// internal/simkernel). Replica lookup is a sharded lock-free Router over
// internal/placement; batched decision rounds can reuse the weighted-set-
// cover scheduler (internal/sched + internal/graph) instead of per-request
// cost minimization.
//
// The engine is built around one decision goroutine that owns the
// simulation clock, so a serving run keeps every batch-path guarantee:
// the event log (internal/obs) is replayable with tracelens, the doctor
// monitors (internal/obs/monitor) can ride along live, and the Prometheus
// metrics reconcile bit-exactly to the power meters at drain. Admission is
// bounded (queue-full submissions fail fast for HTTP 429 backpressure),
// each request carries a decision deadline, and Drain performs a graceful
// shutdown: in-flight requests complete, new ones are rejected, trailing
// spin-downs settle, and the final accounting is returned.
//
// See docs/SERVING.md for the architecture and the endpoint reference.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/sched"
	"repro/internal/simkernel"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Serving-path errors, mapped to HTTP statuses by the Server (http.go).
var (
	// ErrQueueFull reports that the admission bound was hit: the caller
	// should back off and retry (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: decision queue full")
	// ErrDraining reports that the engine is shutting down and rejects new
	// work (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrDeadline reports that a request waited past its decision deadline
	// and was dropped (HTTP 504).
	ErrDeadline = errors.New("serve: decision deadline exceeded")
	// ErrNoReplica reports a block with no replica locations (HTTP 422).
	ErrNoReplica = errors.New("serve: no replica locations for block")
)

// Mode selects the decision path for a round.
type Mode int

const (
	// ModeHeuristic decides each request independently: the Eq. 6 argmin
	// over the block's replicas (sched.Heuristic).
	ModeHeuristic Mode = iota
	// ModeWSC decides each round as one weighted-set-cover instance over
	// the batched requests (sched.WSC), the paper's batch model applied to
	// serving rounds.
	ModeWSC
)

func (m Mode) String() string {
	if m == ModeWSC {
		return "wsc"
	}
	return "heuristic"
}

// Config parameterizes an Engine.
type Config struct {
	// System is the simulated disk population (storage.Config); Shards must
	// be 0 or 1 (the serving clock is owned by one goroutine).
	System storage.Config
	// Router resolves blocks to replica locations.
	Router *Router
	// Cost is the Eq. 6 cost function; zero Alpha+Beta selects
	// sched.DefaultCost over System.Power.
	Cost sched.CostConfig
	// Mode selects per-request heuristic or per-round WSC decisions.
	Mode Mode
	// MaxInFlight bounds admitted-but-undecided requests; submissions over
	// the bound fail with ErrQueueFull. Default 4096.
	MaxInFlight int
	// RoundMax caps how many queued requests one decision round drains.
	// Default 512.
	RoundMax int
	// Deadline is the default wall-clock bound on queueing before a
	// decision; an expired request is dropped with ErrDeadline. 0 = none.
	Deadline time.Duration
	// Sequential switches the engine to deterministic replay order:
	// submitters supply dense request IDs and virtual arrival times, and
	// decisions are made in strict ID order regardless of submission
	// interleaving, so concurrent and serial clients produce bit-identical
	// accounting. Rounds are per-request and wall-clock deadlines do not
	// apply. When false (live mode), the engine stamps IDs and arrivals
	// from the wall clock in admission order.
	Sequential bool
	// Tracer, Collector and Monitor attach the observability stack exactly
	// as on a batch run (storage.WithTracer / WithCollector / WithMonitor).
	Tracer    *obs.Tracer
	Collector *obs.Collector
	Monitor   *monitor.Suite
	// Accounting attaches carbon/cost attribution (storage.WithAccounting):
	// the accumulator sees the live event stream, surfaces running gCO2e/$
	// on /state, and is finalized and reconciled at Drain.
	Accounting *account.Accumulator
	// Flight attaches an always-on flight recorder (storage.WithFlight).
	// The engine arms its triggers: a doctor violation (via Monitor), the
	// first queue-full rejection, and the first decision span breaching
	// FlightSLO each freeze the recorder's window into a dump.
	Flight *flight.Recorder
	// FlightSLO is the wall-clock submit-to-reply bound whose first breach
	// triggers a flight dump (requires Flight and Collector; 0 disables).
	FlightSLO time.Duration
}

// Decision is the outcome of scheduling one request.
type Decision struct {
	Req     core.RequestID
	Block   core.BlockID
	Disk    core.DiskID
	State   core.DiskState // the chosen disk's power state at decision time
	Load    int            // queued+in-service on the chosen disk, pre-dispatch
	Cost    float64        // composite C(d) of Eq. 6
	EnergyJ float64        // energy term E(d) of Eq. 5
	At      time.Duration  // virtual decision time
}

// Totals is the running aggregate surfaced on /state and /healthz.
type Totals struct {
	Now       time.Duration
	Decisions uint64
	Served    int
	Dropped   int
	InFlight  int
	EnergyJ   float64
	SpinUps   int
	SpinDowns int
	Draining  bool
	// CarbonG and CostUSD are the accounting snapshot (zero without
	// Config.Accounting): settled gCO2e and energy dollars so far, exact
	// after Drain.
	CarbonG float64
	CostUSD float64
}

// Snapshot is a consistent view of the serving system: per-disk power
// state plus totals, taken between decision rounds.
type Snapshot struct {
	Totals Totals
	Disks  []storage.DiskSnapshot
	// Slow holds the slow-request exemplars (slowest first), populated when
	// a collector is attached.
	Slow []SlowSpan
	// Kernel is the engine's kernel introspection snapshot (serial
	// pseudo-shard: events, queue/pool high-water marks).
	Kernel *simkernel.KernelStats
}

// serveMetrics is the engine's own metric catalog, alongside the
// simulator's RunMetrics on the shared collector.
type serveMetrics struct {
	decided, queueFull, deadline, draining, noReplica *obs.Counter
	inflight                                          *obs.Gauge
	rounds                                            *obs.Counter
	roundSize                                         *obs.Histogram
	decisionLatency                                   *obs.Histogram
	// Request lifecycle spans: per-phase wall-clock latency from admission
	// to the decision reply (queue: admitted, waiting for a round; decide:
	// scheduling; dispatch: kernel advance + submit-to-disk + reply).
	spanQueue, spanDecide, spanDispatch *obs.Histogram
}

func newServeMetrics(c *obs.Collector) *serveMetrics {
	const outName = "esched_serve_requests_total"
	const outHelp = "Serving submissions by outcome."
	return &serveMetrics{
		decided:   c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "decided"}),
		queueFull: c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "queue_full"}),
		deadline:  c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "deadline_expired"}),
		draining:  c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "draining"}),
		noReplica: c.Counter(outName, outHelp, obs.Label{Key: "outcome", Value: "no_replica"}),
		inflight:  c.Gauge("esched_serve_inflight", "Admitted requests awaiting a decision."),
		rounds:    c.Counter("esched_serve_rounds_total", "Decision rounds executed."),
		roundSize: c.Histogram("esched_serve_round_size",
			"Requests decided per round.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
		decisionLatency: c.Histogram("esched_serve_decision_latency_seconds",
			"Wall-clock submit-to-decision latency.",
			[]float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
				0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}),
		spanQueue:    spanHistogram(c, "queue"),
		spanDecide:   spanHistogram(c, "decide"),
		spanDispatch: spanHistogram(c, "dispatch"),
	}
}

func spanHistogram(c *obs.Collector, phase string) *obs.Histogram {
	return c.Histogram("esched_span_phase_seconds",
		"Request lifecycle phase latency (admit->queue->decide->dispatch->reply).",
		[]float64{0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
			0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1},
		obs.Label{Key: "phase", Value: phase})
}

// SlowSpan is one slow-request exemplar: the per-phase wall-clock breakdown
// of a request whose total span ranked among the slowest seen. Surfaced on
// /state and in the loadgen SLO report so a tail-latency spike carries its
// own diagnosis (which phase, which disk, which decision).
type SlowSpan struct {
	Req        core.RequestID `json:"req"`
	Block      core.BlockID   `json:"block"`
	Disk       core.DiskID    `json:"disk"`
	Decision   uint64         `json:"decision"`
	QueueUS    int64          `json:"queue_us"`
	DecideUS   int64          `json:"decide_us"`
	DispatchUS int64          `json:"dispatch_us"`
	TotalUS    int64          `json:"total_us"`
}

// slowSpanCap bounds the exemplar ring.
const slowSpanCap = 8

// outcome is what a waiter receives.
type outcome struct {
	dec Decision
	err error
}

// pending is one admitted request traveling from Submit to the loop.
type pending struct {
	req      core.Request
	deadline time.Time // zero = none
	enqueued time.Time
	// Span timestamps, populated only when metrics are attached: when the
	// request's round started (queue phase ends) and when its scheduling
	// decision was computed (decide phase ends).
	roundAt   time.Time
	decidedAt time.Time
	res       chan outcome
}

// ctlMsg runs fn on the decision goroutine between rounds.
type ctlMsg struct {
	fn   func()
	done chan struct{}
}

// Engine is the serving decision engine. Create with New, feed with
// Submit from any number of goroutines, stop with Drain.
type Engine struct {
	cfg   Config
	lv    *storage.Live
	heur  sched.Heuristic
	wsc   sched.WSC
	sm    *serveMetrics
	in    chan *pending
	ctl   chan ctlMsg
	stop  chan struct{}
	ended chan struct{}

	inflight  atomic.Int64
	draining  atomic.Bool
	decisions atomic.Uint64

	start time.Time // wall anchor for the virtual clock (live mode)

	// Loop-owned state.
	lastArrival time.Duration
	nextID      core.RequestID
	parked      map[core.RequestID]*pending // sequential mode reorder buffer
	round       []*pending
	batch       []core.Request
	scratch     sched.CoverScratch
	slow        []SlowSpan // slowest spans seen, descending by TotalUS
	sloDumped   bool       // the FlightSLO trigger fires once per run

	// qfDumped latches the queue-full flight trigger (any goroutine).
	qfDumped atomic.Bool

	// Set once the loop has exited (after Drain).
	final    *Snapshot
	report   *storage.Result
	finalErr error
}

// New builds and starts a serving engine; the decision loop runs until
// Drain.
func New(cfg Config) (*Engine, error) {
	if cfg.Router == nil {
		return nil, errors.New("serve: nil Router")
	}
	if cfg.Router.NumDisks() != cfg.System.NumDisks {
		return nil, fmt.Errorf("serve: router over %d disks, system has %d",
			cfg.Router.NumDisks(), cfg.System.NumDisks)
	}
	if cfg.Cost.Beta == 0 && cfg.Cost.Alpha == 0 {
		cfg.Cost = sched.DefaultCost(cfg.System.Power)
	}
	if err := cfg.Cost.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	if cfg.RoundMax <= 0 {
		cfg.RoundMax = 512
	}
	var opts []storage.RunOption
	if cfg.Tracer != nil {
		opts = append(opts, storage.WithTracer(cfg.Tracer))
	}
	if cfg.Collector != nil {
		opts = append(opts, storage.WithCollector(cfg.Collector))
	}
	if cfg.Monitor != nil {
		opts = append(opts, storage.WithMonitor(cfg.Monitor))
	}
	if cfg.Accounting != nil {
		opts = append(opts, storage.WithAccounting(cfg.Accounting))
	}
	if cfg.Flight != nil {
		opts = append(opts, storage.WithFlight(cfg.Flight))
	}
	lv, err := storage.NewLive(cfg.System, cfg.Router.Lookup, opts...)
	if err != nil {
		return nil, err
	}
	if cfg.Flight != nil {
		// Dump telemetry rides the kernel's introspection counters. Dumps are
		// written on the decision goroutine (observer chain or finish), the
		// only goroutine allowed to read them.
		cfg.Flight.SetTelemetry(func() any { return lv.KernelStats() })
	}
	e := &Engine{
		cfg:    cfg,
		lv:     lv,
		in:     make(chan *pending, cfg.MaxInFlight),
		ctl:    make(chan ctlMsg),
		stop:   make(chan struct{}),
		ended:  make(chan struct{}),
		start:  time.Now(),
		parked: map[core.RequestID]*pending{},
	}
	e.heur = sched.Heuristic{Locations: cfg.Router.Lookup, Cost: cfg.Cost, Tracer: cfg.Tracer}
	e.wsc = sched.WSC{Locations: cfg.Router.Lookup, Cost: cfg.Cost, Scratch: &e.scratch, Tracer: cfg.Tracer}
	if cfg.Collector != nil {
		e.sm = newServeMetrics(cfg.Collector)
	}
	go e.loop()
	return e, nil
}

// elapsed maps the wall clock onto the virtual clock (live mode).
func (e *Engine) elapsed() time.Duration { return time.Since(e.start) }

// Submit admits one read request and blocks until its decision (or
// rejection). In live mode req.ID and req.Arrival are ignored: the engine
// stamps both. In Sequential mode req.ID must be the dense replay ID and
// req.Arrival the virtual arrival time. deadline zero uses the engine
// default; a negative duration disables it for this request.
func (e *Engine) Submit(req core.Request, deadline time.Duration) (Decision, error) {
	if len(e.cfg.Router.Lookup(req.Block)) == 0 {
		e.count(func(m *serveMetrics) { m.noReplica.Inc() })
		return Decision{}, fmt.Errorf("%w %d", ErrNoReplica, req.Block)
	}
	if e.draining.Load() {
		e.count(func(m *serveMetrics) { m.draining.Inc() })
		return Decision{}, ErrDraining
	}
	if n := e.inflight.Add(1); n > int64(e.cfg.MaxInFlight) {
		e.inflight.Add(-1)
		e.count(func(m *serveMetrics) { m.queueFull.Inc() })
		if e.cfg.Flight != nil && e.qfDumped.CompareAndSwap(false, true) {
			// A queue-full spike is a flight trigger: freeze the window that
			// led up to it. Cross-goroutine safe; the decision goroutine
			// materialises the dump at its next observed event.
			e.cfg.Flight.RequestDump("queue full")
		}
		return Decision{}, ErrQueueFull
	}
	e.gaugeInflight()
	if e.draining.Load() { // re-check: Drain may have begun since the first test
		e.inflight.Add(-1)
		e.gaugeInflight()
		e.count(func(m *serveMetrics) { m.draining.Inc() })
		return Decision{}, ErrDraining
	}
	if deadline == 0 {
		deadline = e.cfg.Deadline
	}
	p := &pending{req: req, enqueued: time.Now(), res: make(chan outcome, 1)}
	if deadline > 0 && !e.cfg.Sequential {
		p.deadline = p.enqueued.Add(deadline)
	}
	e.in <- p
	out := <-p.res
	e.inflight.Add(-1)
	e.gaugeInflight()
	return out.dec, out.err
}

func (e *Engine) count(f func(*serveMetrics)) {
	if e.sm != nil {
		f(e.sm)
	}
}

func (e *Engine) gaugeInflight() {
	if e.sm != nil {
		e.sm.inflight.Set(float64(e.inflight.Load()))
	}
}

// Decisions returns the number of scheduling decisions made so far.
func (e *Engine) Decisions() uint64 { return e.decisions.Load() }

// Draining reports whether Drain has begun.
func (e *Engine) Draining() bool { return e.draining.Load() }

// loop is the decision goroutine: it owns the virtual clock, the disks and
// the tracer, and is the only goroutine touching them.
func (e *Engine) loop() {
	defer close(e.ended)
	// The clock tick fires kernel events (completions, idle timeouts,
	// spin-downs) during quiet periods so /state stays live and disks spin
	// down on schedule even with no traffic. Sequential mode advances on
	// arrivals only.
	var tickC <-chan time.Time
	if !e.cfg.Sequential {
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case p := <-e.in:
			e.gather(p)
			e.processRound()
		case <-tickC:
			e.lv.Advance(e.elapsed())
		case c := <-e.ctl:
			c.fn()
			close(c.done)
		case <-e.stop:
			e.drainLoop()
			e.finish()
			return
		}
	}
}

// gather starts a round with p and drains the queue non-blockingly up to
// RoundMax.
func (e *Engine) gather(p *pending) {
	e.round = e.round[:0]
	e.admit(p)
	for len(e.round) < e.cfg.RoundMax {
		select {
		case q := <-e.in:
			e.admit(q)
		default:
			return
		}
	}
}

// admit routes one popped submission into the current round, or parks it
// (sequential mode) until its predecessors arrive.
func (e *Engine) admit(p *pending) {
	if e.cfg.Sequential {
		e.parked[p.req.ID] = p
		return
	}
	e.round = append(e.round, p)
}

// processRound decides the gathered round. Live mode stamps IDs and
// arrivals here, in admission order; sequential mode releases the maximal
// run of consecutive IDs from the reorder buffer, one per-request round
// each, so round grouping can never affect results.
func (e *Engine) processRound() {
	if e.cfg.Sequential {
		for {
			p, ok := e.parked[e.nextID]
			if !ok {
				return
			}
			delete(e.parked, e.nextID)
			e.nextID++
			arr := p.req.Arrival
			if arr < e.lastArrival {
				arr = e.lastArrival
			}
			e.lastArrival = arr
			p.req.Arrival = arr
			e.decide([]*pending{p})
		}
	}
	for _, p := range e.round {
		arr := e.elapsed()
		if arr < e.lastArrival {
			arr = e.lastArrival
		}
		e.lastArrival = arr
		p.req.ID = e.nextID
		e.nextID++
		p.req.Arrival = arr
		if p.req.LBA == 0 {
			p.req.LBA = workload.BlockLBA(p.req.Block)
		}
	}
	e.decide(e.round)
}

// decide advances the clock through the round's arrivals, emits arrival
// events, schedules (per-request or as one WSC cover), dispatches, and
// answers the waiters.
func (e *Engine) decide(round []*pending) {
	if len(round) == 0 {
		return
	}
	if e.sm != nil {
		e.sm.rounds.Inc()
		e.sm.roundSize.Observe(float64(len(round)))
	}
	now := time.Now()
	// Expire deadlines first: an expired request still arrives (it was
	// admitted) but is dropped instead of scheduled, keeping request
	// conservation intact in the event log.
	live := round[:0]
	for _, p := range round {
		if !p.deadline.IsZero() && now.After(p.deadline) {
			e.lv.Advance(p.req.Arrival)
			e.lv.Arrive(p.req)
			e.lv.Drop(p.req)
			e.count(func(m *serveMetrics) { m.deadline.Inc() })
			p.res <- outcome{err: ErrDeadline}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	if e.sm != nil {
		// The round timestamp closes every member's queue phase; per-request
		// decide timestamps are taken after each Schedule call below.
		for _, p := range live {
			p.roundAt = now
		}
	}
	if e.cfg.Mode == ModeWSC && len(live) > 1 {
		e.decideWSC(live)
		return
	}
	for _, p := range live {
		e.lv.Advance(p.req.Arrival)
		e.lv.Arrive(p.req)
		base := e.lv.DecisionBase()
		d := e.heur.Schedule(p.req, e.lv.View())
		if e.sm != nil {
			p.decidedAt = time.Now()
		}
		e.answer(p, d, func(r core.Request, d core.DiskID) {
			e.lv.Dispatch(r, d, base)
		})
	}
}

// decideWSC decides one round as a weighted-set-cover instance: arrivals
// are emitted at their own timestamps, then the whole batch is assigned at
// the round's decision time, mirroring storage.RunBatch's tick shape.
func (e *Engine) decideWSC(live []*pending) {
	e.batch = e.batch[:0]
	for _, p := range live {
		e.lv.Advance(p.req.Arrival)
		e.lv.Arrive(p.req)
		e.batch = append(e.batch, p.req)
	}
	base := e.lv.DecisionBase()
	assignment := e.wsc.ScheduleBatch(e.batch, e.lv.View())
	if e.sm != nil {
		// One cover decides the whole batch; every member's decide phase
		// closes at the same instant.
		decided := time.Now()
		for _, p := range live {
			p.decidedAt = decided
		}
	}
	// A traced WSC emits one decision per placed request in batch order;
	// pair them back exactly as storage.RunBatch does (IDs base+1..base+n).
	placed := 0
	for _, d := range assignment {
		if d != core.InvalidDisk {
			placed++
		}
	}
	traced := placed > 0 && e.lv.DecisionBase() == base+uint64(placed)
	k := base
	for i, p := range live {
		var dec obs.DecisionID
		if traced && assignment[i] != core.InvalidDisk {
			k++
			dec = obs.DecisionID(k)
		}
		e.answer(p, assignment[i], func(r core.Request, d core.DiskID) {
			e.lv.DispatchDecision(r, d, dec)
		})
	}
}

// answer dispatches the decision via dispatch and replies to the waiter.
func (e *Engine) answer(p *pending, d core.DiskID, dispatch func(core.Request, core.DiskID)) {
	if d == core.InvalidDisk {
		// Replicas vanished between admission and decision (router update).
		e.lv.Drop(p.req)
		e.count(func(m *serveMetrics) { m.noReplica.Inc() })
		p.res <- outcome{err: fmt.Errorf("%w %d", ErrNoReplica, p.req.Block)}
		return
	}
	v := e.lv.View()
	dec := Decision{
		Req:     p.req.ID,
		Block:   p.req.Block,
		Disk:    d,
		State:   v.DiskState(d),
		Load:    v.Load(d),
		Cost:    e.cfg.Cost.Cost(v, d),
		EnergyJ: e.cfg.Cost.EnergyCost(v, d),
		At:      e.lv.Now(),
	}
	dispatch(p.req, d)
	if err := e.lv.Err(); err != nil {
		p.res <- outcome{err: err}
		return
	}
	n := e.decisions.Add(1)
	if e.sm != nil {
		e.sm.decided.Inc()
		e.sm.decisionLatency.Observe(time.Since(p.enqueued).Seconds())
		e.recordSpan(p, dec, n)
	}
	p.res <- outcome{dec: dec}
}

// recordSpan closes a decided request's lifecycle span: per-phase
// histograms, the slow-exemplar ring, and the FlightSLO trigger. Runs on
// the decision goroutine with p.roundAt/p.decidedAt already stamped.
func (e *Engine) recordSpan(p *pending, dec Decision, decision uint64) {
	done := time.Now()
	queue := p.roundAt.Sub(p.enqueued)
	decide := p.decidedAt.Sub(p.roundAt)
	dispatch := done.Sub(p.decidedAt)
	e.sm.spanQueue.Observe(queue.Seconds())
	e.sm.spanDecide.Observe(decide.Seconds())
	e.sm.spanDispatch.Observe(dispatch.Seconds())
	total := done.Sub(p.enqueued)
	if len(e.slow) == slowSpanCap && total.Microseconds() <= e.slow[len(e.slow)-1].TotalUS {
		// Fast path: not among the slowest seen.
	} else {
		s := SlowSpan{
			Req: dec.Req, Block: dec.Block, Disk: dec.Disk, Decision: decision,
			QueueUS: queue.Microseconds(), DecideUS: decide.Microseconds(),
			DispatchUS: dispatch.Microseconds(), TotalUS: total.Microseconds(),
		}
		i := sort.Search(len(e.slow), func(i int) bool { return e.slow[i].TotalUS < s.TotalUS })
		if len(e.slow) < slowSpanCap {
			e.slow = append(e.slow, SlowSpan{})
		}
		copy(e.slow[i+1:], e.slow[i:])
		e.slow[i] = s
	}
	if e.cfg.Flight != nil && e.cfg.FlightSLO > 0 && total > e.cfg.FlightSLO && !e.sloDumped {
		e.sloDumped = true
		e.cfg.Flight.RequestDump("slo breach")
	}
}

// SlowSpans returns a copy of the slow-request exemplars, slowest first.
// Loop-owned; callers outside the decision goroutine go through Snapshot.
func (e *Engine) slowSpans() []SlowSpan {
	out := make([]SlowSpan, len(e.slow))
	copy(out, e.slow)
	return out
}

// FlushFlight materialises a pending flight-dump trigger on the decision
// goroutine. Triggers raised while the engine is idle (an operator SIGQUIT
// with no traffic) have no event flow to sweep them; this forces the sweep.
// No-op without a recorder or pending trigger.
func (e *Engine) FlushFlight() {
	if e.cfg.Flight == nil {
		return
	}
	c := ctlMsg{done: make(chan struct{})}
	c.fn = func() { e.cfg.Flight.MaybeDump() }
	select {
	case e.ctl <- c:
		<-c.done
	case <-e.ended:
	}
}

// drainLoop finishes the admitted backlog after Drain: parked sequential
// requests are dropped (their predecessors will never arrive), the channel
// is emptied, and every waiter is answered before the loop exits.
func (e *Engine) drainLoop() {
	e.dropParked()
	for e.inflight.Load() > 0 {
		select {
		case p := <-e.in:
			e.gather(p)
			e.processRound()
			e.dropParked()
		case <-time.After(5 * time.Millisecond):
			// A submitter may have bumped inflight and then rejected itself
			// on the draining re-check; re-test rather than block forever.
		}
	}
}

// dropParked rejects every reorder-buffer resident during drain. The
// requests were admitted but never arrived in virtual terms (their turn
// never came), so they are rejected without trace events.
func (e *Engine) dropParked() {
	if len(e.parked) == 0 {
		return
	}
	ids := make([]core.RequestID, 0, len(e.parked))
	for id := range e.parked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := e.parked[id]
		delete(e.parked, id)
		e.count(func(m *serveMetrics) { m.draining.Inc() })
		p.res <- outcome{err: ErrDraining}
	}
}

// Snapshot returns a consistent per-disk state view, serialized with the
// decision loop. After Drain it returns the final snapshot.
func (e *Engine) Snapshot() Snapshot {
	var snap Snapshot
	c := ctlMsg{done: make(chan struct{})}
	c.fn = func() { snap = e.snapshotLocked() }
	select {
	case e.ctl <- c:
		<-c.done
		return snap
	case <-e.ended:
		if e.final != nil {
			return *e.final
		}
		return Snapshot{}
	}
}

// snapshotLocked builds the snapshot on the decision goroutine.
func (e *Engine) snapshotLocked() Snapshot {
	if !e.cfg.Sequential {
		e.lv.Advance(e.elapsed())
	}
	disks := e.lv.Snapshot()
	t := Totals{
		Now:       e.lv.Now(),
		Decisions: e.decisions.Load(),
		Served:    e.lv.Served(),
		Dropped:   e.lv.Dropped(),
		InFlight:  int(e.inflight.Load()),
		Draining:  e.draining.Load(),
	}
	for _, d := range disks {
		t.EnergyJ += d.EnergyJ
		t.SpinUps += d.SpinUps
		t.SpinDowns += d.SpinDowns
	}
	if acc := e.lv.Accounting(); acc != nil {
		t.CarbonG, t.CostUSD = acc.Snapshot()
	}
	return Snapshot{Totals: t, Disks: disks, Slow: e.slowSpans(), Kernel: e.lv.KernelStats()}
}

// Drain gracefully shuts the engine down: new submissions are rejected,
// admitted ones are decided, outstanding disk work completes, trailing
// idle timeouts and spin-downs settle, and the exact final accounting is
// returned (metrics reconciled to the meters, event log flushed, monitor
// end-of-stream checks run). Drain is idempotent; concurrent callers get
// the same result.
func (e *Engine) Drain() (*storage.Result, error) {
	if e.draining.CompareAndSwap(false, true) {
		close(e.stop)
	}
	<-e.ended
	return e.report, e.finalErr
}

// finishOnce runs on the decision goroutine right before loop exit.
func (e *Engine) finish() {
	name := "eschedd " + e.cfg.Mode.String()
	res, err := e.lv.Finish(name)
	e.report, e.finalErr = res, err
	if rec := e.cfg.Flight; rec != nil {
		// Flush a trigger raised after the last observed event (the drain
		// itself emits events, so this is usually a no-op).
		rec.MaybeDump()
		if err == nil && rec.Err() != nil {
			e.finalErr = rec.Err()
		}
	}
	snap := Snapshot{}
	if res != nil {
		t := Totals{
			Now:       res.Horizon,
			Decisions: e.decisions.Load(),
			Served:    res.Served,
			Dropped:   res.Dropped,
			Draining:  true,
			EnergyJ:   res.Energy,
			SpinUps:   res.SpinUps,
			SpinDowns: res.SpinDowns,
		}
		if acc := e.lv.Accounting(); acc != nil {
			t.CarbonG, t.CostUSD = acc.Snapshot()
		}
		snap.Totals = t
		for i, st := range res.PerDisk {
			snap.Disks = append(snap.Disks, storage.DiskSnapshot{
				Disk: core.DiskID(i), State: core.StateStandby, Load: 0,
				Served: st.Served, EnergyJ: st.Energy,
				SpinUps: st.SpinUps, SpinDowns: st.SpinDowns,
			})
		}
	}
	snap.Slow = e.slowSpans()
	snap.Kernel = e.lv.KernelStats()
	e.final = &snap
}
