package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/storage"
	"repro/internal/workload"
)

// rackLocalConfig builds a shard-aligned serving config: rack-local
// placement over racks contiguous stripes, so the engine accepts any shard
// count dividing racks.
func rackLocalConfig(t *testing.T, disks, blocks, rf, racks int) (Config, *placement.Placement) {
	t.Helper()
	p, err := placement.GenerateRackLocal(placement.GenerateConfig{
		NumDisks: disks, NumBlocks: blocks,
		ReplicationFactor: rf, ZipfExponent: 1, Seed: 7,
	}, racks)
	if err != nil {
		t.Fatal(err)
	}
	pc := power.DefaultConfig()
	return Config{
		System: storage.Config{
			NumDisks: disks,
			Power:    pc,
			Mech:     diskmodel.Cheetah15K5(),
			Policy:   power.TwoCompetitive{Config: pc},
		},
		Router: NewRouter(p, 8),
	}, p
}

// runShardedSequential runs one Sequential pass at the given shard count
// and returns the result, the event log and the state log.
func runShardedSequential(t *testing.T, cfg Config, shards int, reqs []core.Request, workers int) (*storage.Result, []byte, []byte) {
	t.Helper()
	var trace, states bytes.Buffer
	tr := obs.NewTracer(256)
	tr.SetSink(&trace, false)
	cfg.Sequential = true
	cfg.Shards = shards
	cfg.Tracer = tr
	cfg.StateLog = &states
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitTrace(t, e, reqs, workers)
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return res, trace.Bytes(), states.Bytes()
}

// TestShardedSequentialByteIdentical is the tentpole determinism pin: the
// same request sequence decided on 1, 2 and 4 shards — under heavy
// submitter concurrency — must produce byte-identical event logs, state
// logs and accounting. The merge layer earns its keep here: per-shard
// kernels run interleaved in wall time, yet the canonical streams cannot
// tell.
func TestShardedSequentialByteIdentical(t *testing.T) {
	t.Parallel()
	cfg, _ := rackLocalConfig(t, 16, 96, 3, 4)
	cfg.MaxInFlight = 128
	reqs := workload.CelloLike(600, 96, 11)
	serial, serialLog, serialStates := runShardedSequential(t, cfg, 1, reqs, 1)
	if serial.Served != 600 || serial.Dropped != 0 {
		t.Fatalf("serial served/dropped = %d/%d", serial.Served, serial.Dropped)
	}
	if len(serialStates) == 0 {
		t.Fatal("serial run logged no state transitions")
	}
	serialResp, err := json.Marshal(serial.Response)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		for _, workers := range []int{1, 16} {
			res, log, states := runShardedSequential(t, cfg, shards, reqs, workers)
			if res.Energy != serial.Energy || res.EnergyByState != serial.EnergyByState {
				t.Errorf("shards=%d workers=%d: energy %v/%v != serial %v/%v",
					shards, workers, res.Energy, res.EnergyByState, serial.Energy, serial.EnergyByState)
			}
			if res.Served != serial.Served || res.Dropped != serial.Dropped ||
				res.SpinUps != serial.SpinUps || res.SpinDowns != serial.SpinDowns ||
				res.Horizon != serial.Horizon {
				t.Errorf("shards=%d workers=%d: counters diverge", shards, workers)
			}
			if !bytes.Equal(log, serialLog) {
				t.Errorf("shards=%d workers=%d: event log differs from serial", shards, workers)
			}
			if !bytes.Equal(states, serialStates) {
				t.Errorf("shards=%d workers=%d: state log differs from serial", shards, workers)
			}
			resp, err := json.Marshal(res.Response)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resp, serialResp) {
				t.Errorf("shards=%d workers=%d: response samples diverge", shards, workers)
			}
		}
	}
}

// TestShardedSequentialDoctorClean rides the full monitor suite on a
// 4-shard concurrent sequential run: the merged stream must satisfy every
// batch-path invariant.
func TestShardedSequentialDoctorClean(t *testing.T) {
	t.Parallel()
	cfg, p := rackLocalConfig(t, 16, 96, 2, 4)
	cfg.MaxInFlight = 64
	cfg.Shards = 4
	cfg.Sequential = true
	mon := monitor.NewSuite(monitor.Config{
		Power:     cfg.System.Power,
		Mech:      cfg.System.Mech,
		Policy:    cfg.System.Policy,
		Locations: p.Locations,
	})
	cfg.Tracer = obs.NewTracer(256)
	cfg.Monitor = mon
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitTrace(t, e, workload.CelloLike(400, 96, 3), 8)
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if !mon.Passed() {
		var rep bytes.Buffer
		mon.WriteReport(&rep)
		t.Fatalf("doctor violations on a sharded sequential run:\n%s", rep.String())
	}
}

// TestShardedLiveDoctorClean runs wall-clock mode on 4 shards with the
// doctor attached and checks the merged stream stays clean under
// concurrent submitters.
func TestShardedLiveDoctorClean(t *testing.T) {
	t.Parallel()
	cfg, p := rackLocalConfig(t, 16, 96, 2, 4)
	cfg.MaxInFlight = 64
	cfg.Shards = 4
	mon := monitor.NewSuite(monitor.Config{
		Power:     cfg.System.Power,
		Mech:      cfg.System.Mech,
		Policy:    cfg.System.Policy,
		Locations: p.Locations,
	})
	cfg.Tracer = obs.NewTracer(256)
	cfg.Monitor = mon
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				if _, err := e.Submit(core.Request{Block: core.BlockID(i % 96)}, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != n || res.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d, want %d/0", res.Served, res.Dropped, n)
	}
	if !mon.Passed() {
		var rep bytes.Buffer
		mon.WriteReport(&rep)
		t.Fatalf("doctor violations on a sharded live run:\n%s", rep.String())
	}
}

// TestShardAlignment covers the topology validations: a random placement
// straddles shard ranges and must be rejected; a rack-local one aligned to
// the shard count is accepted, and the router then refuses cross-shard
// replica moves.
func TestShardAlignment(t *testing.T) {
	t.Parallel()
	misaligned, _ := testConfig(t, 16, 200, 3)
	misaligned.Shards = 4
	if _, err := New(misaligned); err == nil {
		t.Error("misaligned placement accepted at 4 shards")
	}
	cfg, _ := rackLocalConfig(t, 16, 96, 2, 4)
	cfg.Shards = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rack 0 owns disks 0..3: an in-shard move is fine, a cross-shard one
	// must be refused now that the engine pinned the alignment.
	var b core.BlockID
	for b = 0; b < 96; b++ {
		if locs := cfg.Router.Lookup(b); len(locs) > 0 && locs[0] < 4 {
			break
		}
	}
	if err := cfg.Router.Update(b, []core.DiskID{0, 3}); err != nil {
		t.Errorf("in-shard update rejected: %v", err)
	}
	if err := cfg.Router.Update(b, []core.DiskID{0, 12}); err == nil {
		t.Error("cross-shard update accepted on an aligned router")
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	// More shards than disks is rejected outright.
	tiny, _ := rackLocalConfig(t, 4, 20, 2, 2)
	tiny.Shards = 8
	if _, err := New(tiny); err == nil {
		t.Error("8 shards over 4 disks accepted")
	}
}

// TestDrainUnderFullLoad is the satellite stress test: submitters hammer a
// 4-shard live engine while Drain races them, and the doctor plus the
// engine's own conservation check must still hold — every admitted request
// is either decided (and served by the drain) or rejected, never lost.
func TestDrainUnderFullLoad(t *testing.T) {
	t.Parallel()
	cfg, p := rackLocalConfig(t, 16, 96, 2, 4)
	cfg.MaxInFlight = 256
	cfg.Shards = 4
	mon := monitor.NewSuite(monitor.Config{
		Power:     cfg.System.Power,
		Mech:      cfg.System.Mech,
		Policy:    cfg.System.Policy,
		Locations: p.Locations,
	})
	cfg.Tracer = obs.NewTracer(256)
	cfg.Monitor = mon
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var decided, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := e.Submit(core.Request{Block: core.BlockID((g*31 + i) % 96)}, 0)
				switch {
				case err == nil:
					decided.Add(1)
				case errors.Is(err, ErrDraining):
					rejected.Add(1)
					return
				case errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				default:
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	res, err := e.Drain()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != int(decided.Load()) {
		t.Fatalf("served %d != decided %d (rejected %d)", res.Served, decided.Load(), rejected.Load())
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d, want 0", res.Dropped)
	}
	if decided.Load() == 0 {
		t.Fatal("no requests decided before drain")
	}
	if !mon.Passed() {
		var rep bytes.Buffer
		mon.WriteReport(&rep)
		t.Fatalf("doctor violations on drain under load:\n%s", rep.String())
	}
}

// TestDrainingCountedOnce is the satellite-1 regression: one rejected
// submission during drain must increment the draining outcome counter
// exactly once (the old Submit checked the flag twice).
func TestDrainingCountedOnce(t *testing.T) {
	t.Parallel()
	cfg, _ := testConfig(t, 4, 20, 2)
	col := obs.NewCollector()
	cfg.Collector = col
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(core.Request{Block: 1}, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	c := col.Counter("esched_serve_requests_total", "Serving submissions by outcome.",
		obs.Label{Key: "outcome", Value: "draining"})
	if got := c.Value(); got != 1 {
		t.Fatalf("draining counter = %v after one rejection, want 1", got)
	}
	if got := e.inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d after rejection, want 0", got)
	}
}

// TestShardStateSurfaced checks the per-shard breakdown in Snapshot.
func TestShardStateSurfaced(t *testing.T) {
	t.Parallel()
	cfg, _ := rackLocalConfig(t, 16, 96, 2, 4)
	cfg.Shards = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := e.Submit(core.Request{Block: core.BlockID(i % 96)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()
	if len(snap.Shards) != 4 {
		t.Fatalf("snapshot has %d shards, want 4", len(snap.Shards))
	}
	var decisions uint64
	covered := 0
	for i, ss := range snap.Shards {
		if ss.Shard != i || ss.NumDisks != 4 || ss.BaseDisk != i*4 {
			t.Fatalf("shard %d range = %+v", i, ss)
		}
		decisions += ss.Decisions
		covered += ss.NumDisks
	}
	if covered != 16 {
		t.Fatalf("shard ranges cover %d disks, want 16", covered)
	}
	if decisions != 64 || snap.Totals.Decisions != 64 {
		t.Fatalf("per-shard decisions %d / total %d, want 64", decisions, snap.Totals.Decisions)
	}
	if snap.Kernel == nil || len(snap.Kernel.Shards) != 4 {
		t.Fatalf("kernel snapshot = %+v", snap.Kernel)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestRingOrder pins the admission ring's FIFO contract including a
// wraparound lap.
func TestRingOrder(t *testing.T) {
	t.Parallel()
	r := newRing(4) // capacity 4
	ps := make([]*pending, 10)
	for i := range ps {
		ps[i] = &pending{}
	}
	if r.pop() != nil {
		t.Fatal("pop on empty ring")
	}
	for lap := 0; lap < 2; lap++ {
		for i := 0; i < 4; i++ {
			r.push(ps[lap*4+i])
		}
		if r.empty() {
			t.Fatal("ring empty after pushes")
		}
		for i := 0; i < 4; i++ {
			if got := r.pop(); got != ps[lap*4+i] {
				t.Fatalf("lap %d pop %d: wrong item", lap, i)
			}
		}
		if !r.empty() {
			t.Fatal("ring not empty after draining")
		}
	}
}
