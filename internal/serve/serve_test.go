package serve

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/storage"
	"repro/internal/workload"
)

func testConfig(t *testing.T, disks, blocks, rf int) (Config, *placement.Placement) {
	t.Helper()
	p := testPlacement(t, disks, blocks, rf)
	pc := power.DefaultConfig()
	return Config{
		System: storage.Config{
			NumDisks: disks,
			Power:    pc,
			Mech:     diskmodel.Cheetah15K5(),
			Policy:   power.TwoCompetitive{Config: pc},
		},
		Router: NewRouter(p, 8),
	}, p
}

// submitTrace feeds a pre-generated trace to a Sequential engine with
// `workers` concurrent submitters (worker g owns IDs congruent to g), each
// submitting its IDs in order. workers=1 is the serial baseline.
func submitTrace(t *testing.T, e *Engine, reqs []core.Request, workers int) {
	t.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(reqs); i += workers {
				if _, err := e.Submit(reqs[i], 0); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// runSequential runs one full serving pass over reqs and returns the final
// accounting plus the canonical JSONL event log.
func runSequential(t *testing.T, cfg Config, reqs []core.Request, workers int) (*storage.Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(256)
	tr.SetSink(&buf, false)
	cfg.Sequential = true
	cfg.Tracer = tr
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitTrace(t, e, reqs, workers)
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestSequentialDeterminism is the satellite determinism check: the same
// request sequence served serially and highly concurrently must yield
// identical energy accounting — and, stronger, a byte-identical event log.
func TestSequentialDeterminism(t *testing.T) {
	t.Parallel()
	cfg, _ := testConfig(t, 10, 80, 3)
	cfg.MaxInFlight = 128
	reqs := workload.CelloLike(400, 80, 11)
	serial, serialLog := runSequential(t, cfg, reqs, 1)
	if serial.Served != 400 || serial.Dropped != 0 {
		t.Fatalf("serial served/dropped = %d/%d", serial.Served, serial.Dropped)
	}
	if serial.Energy <= 0 {
		t.Fatal("no energy accounted")
	}
	for _, workers := range []int{4, 16} {
		conc, concLog := runSequential(t, cfg, reqs, workers)
		if conc.Energy != serial.Energy {
			t.Errorf("workers=%d: energy %v != serial %v", workers, conc.Energy, serial.Energy)
		}
		if conc.EnergyByState != serial.EnergyByState {
			t.Errorf("workers=%d: by-state %v != serial %v", workers, conc.EnergyByState, serial.EnergyByState)
		}
		if conc.Served != serial.Served || conc.Dropped != serial.Dropped ||
			conc.SpinUps != serial.SpinUps || conc.SpinDowns != serial.SpinDowns ||
			conc.Horizon != serial.Horizon {
			t.Errorf("workers=%d: counters diverge: %+v vs %+v", workers, conc, serial)
		}
		if !bytes.Equal(concLog, serialLog) {
			t.Errorf("workers=%d: event log differs from serial run", workers)
		}
	}
}

// TestSequentialDoctorClean attaches the full monitor suite to a concurrent
// sequential run: a serving run must satisfy every batch-path invariant.
func TestSequentialDoctorClean(t *testing.T) {
	t.Parallel()
	cfg, p := testConfig(t, 8, 60, 2)
	cfg.MaxInFlight = 64
	mon := monitor.NewSuite(monitor.Config{
		Power:     cfg.System.Power,
		Mech:      cfg.System.Mech,
		Policy:    cfg.System.Policy,
		Locations: p.Locations,
	})
	cfg.Sequential = true
	cfg.Tracer = obs.NewTracer(256)
	cfg.Monitor = mon
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitTrace(t, e, workload.CelloLike(300, 60, 3), 8)
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if !mon.Passed() {
		var rep bytes.Buffer
		mon.WriteReport(&rep)
		t.Fatalf("doctor violations on a live serving run:\n%s", rep.String())
	}
}

// TestWSCRoundsServeAll runs live (wall-clock) mode with WSC decision
// rounds under concurrent submitters and checks full conservation.
func TestWSCRoundsServeAll(t *testing.T) {
	t.Parallel()
	cfg, p := testConfig(t, 8, 60, 2)
	cfg.Mode = ModeWSC
	cfg.MaxInFlight = 64
	mon := monitor.NewSuite(monitor.Config{
		Power:     cfg.System.Power,
		Mech:      cfg.System.Mech,
		Policy:    cfg.System.Policy,
		Locations: p.Locations,
	})
	cfg.Tracer = obs.NewTracer(256)
	cfg.Monitor = mon
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				if _, err := e.Submit(core.Request{Block: core.BlockID(i % 60)}, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != n || res.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d, want %d/0", res.Served, res.Dropped, n)
	}
	if !mon.Passed() {
		var rep bytes.Buffer
		mon.WriteReport(&rep)
		t.Fatalf("doctor violations:\n%s", rep.String())
	}
}

// TestBackpressureQueueFull parks requests behind a withheld sequential ID
// so the admission bound is hit deterministically.
func TestBackpressureQueueFull(t *testing.T) {
	t.Parallel()
	cfg, _ := testConfig(t, 4, 20, 2)
	cfg.Sequential = true
	cfg.MaxInFlight = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// IDs 1..4 can never be decided while ID 0 is withheld: they park in
	// the reorder buffer and hold their admission slots.
	var wg sync.WaitGroup
	for id := 1; id <= 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := e.Submit(core.Request{ID: core.RequestID(id), Block: 1}, 0)
			if !errors.Is(err, ErrDraining) {
				t.Errorf("parked request %d: err = %v, want ErrDraining", id, err)
			}
		}(id)
	}
	waitFor(t, func() bool { return e.inflight.Load() == 4 })
	if _, err := e.Submit(core.Request{ID: 5, Block: 1}, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	// Graceful drain rejects the parked backlog (their predecessor never
	// arrives) and still reconciles cleanly.
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if res.Served != 0 || res.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d, want 0/0", res.Served, res.Dropped)
	}
	if _, err := e.Submit(core.Request{ID: 6, Block: 1}, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
}

// TestGracefulDrain checks that in-flight work completes and accounting
// reconciles when the engine is stopped mid-service.
func TestGracefulDrain(t *testing.T) {
	t.Parallel()
	cfg, _ := testConfig(t, 6, 40, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	for i := 0; i < n; i++ {
		if _, err := e.Submit(core.Request{Block: core.BlockID(i % 40)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Decisions are made; disk service is still outstanding in virtual time.
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != n || res.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d, want %d/0", res.Served, res.Dropped, n)
	}
	if res.Energy <= 0 {
		t.Fatal("no energy accounted")
	}
	if _, err := e.Submit(core.Request{Block: 1}, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
	if res2, err := e.Drain(); err != nil || res2 != res {
		t.Fatalf("second Drain = (%p, %v), want same result", res2, err)
	}
	snap := e.Snapshot()
	if snap.Totals.Served != n || !snap.Totals.Draining {
		t.Fatalf("final snapshot totals = %+v", snap.Totals)
	}
}

// TestDeadlineExpiry blocks the decision loop long enough for a short
// per-request deadline to lapse; the request must be dropped (504 path)
// and the run must still reconcile.
func TestDeadlineExpiry(t *testing.T) {
	t.Parallel()
	cfg, _ := testConfig(t, 4, 20, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blockLoop(e, 60*time.Millisecond)
	if _, err := e.Submit(core.Request{Block: 1}, time.Millisecond); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// A generous deadline on a live loop decides fine.
	if _, err := e.Submit(core.Request{Block: 1}, time.Minute); err != nil {
		t.Fatalf("generous deadline: %v", err)
	}
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 || res.Dropped != 1 {
		t.Fatalf("served/dropped = %d/%d, want 1/1", res.Served, res.Dropped)
	}
}

func TestSubmitUnknownBlock(t *testing.T) {
	t.Parallel()
	cfg, _ := testConfig(t, 4, 20, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(core.Request{Block: 999}, 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionFields sanity-checks the decision surface against the view.
func TestDecisionFields(t *testing.T) {
	t.Parallel()
	cfg, p := testConfig(t, 4, 20, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Submit(core.Request{Block: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	locs := p.Locations(3)
	found := false
	for _, l := range locs {
		if l == d.Disk {
			found = true
		}
	}
	if !found {
		t.Fatalf("decision disk %d not a replica of block 3 (%v)", d.Disk, locs)
	}
	if d.Cost < 0 || d.EnergyJ < 0 {
		t.Fatalf("negative cost %v / energy %v", d.Cost, d.EnergyJ)
	}
	if e.Decisions() != 1 {
		t.Fatalf("Decisions() = %d, want 1", e.Decisions())
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestNewValidation covers constructor rejections.
func TestNewValidation(t *testing.T) {
	t.Parallel()
	cfg, _ := testConfig(t, 4, 20, 2)
	if _, err := New(Config{System: cfg.System}); err == nil {
		t.Error("nil router accepted")
	}
	bad := cfg
	bad.System.NumDisks = 5
	if _, err := New(bad); err == nil {
		t.Error("router/system disk mismatch accepted")
	}
	sharded := cfg
	sharded.System.Shards = 4
	if _, err := New(sharded); err == nil {
		t.Error("sharded kernel accepted on the serving path")
	}
}

// blockLoop occupies every decision shard for d without deciding: it seizes
// all combining tokens, so submissions queue in the rings until release.
func blockLoop(e *Engine, d time.Duration) {
	acquired := make(chan struct{})
	go func() {
		for _, s := range e.shards {
			for !s.tok.CompareAndSwap(0, 1) {
				time.Sleep(time.Microsecond)
			}
		}
		close(acquired)
		time.Sleep(d)
		for _, s := range e.shards {
			s.tok.Store(0)
		}
		// Combine anything that queued while the tokens were held, exactly
		// as a real holder's release-recheck would.
		for _, s := range e.shards {
			if !s.ring.empty() {
				e.combineOn(s)
			}
		}
	}()
	<-acquired
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
