package serve

import (
	"runtime"
	"sync/atomic"
)

// ring is a bounded multi-producer single-consumer queue of admitted
// requests, modeled on the flight recorder's sequence-stamped ring: one
// atomic ticket fetch plus one slot store per push, no locks, no
// allocation. Producers are Submit goroutines; the consumer is whichever
// goroutine holds the owning shard's combining token (see Engine).
//
// Each slot carries a sequence number. Slot i is free for ticket pos when
// seq == pos, published when seq == pos+1, and recycled by the consumer to
// pos+len for the next lap. Capacity must exceed the maximum number of
// simultaneously queued items (the engine sizes rings to MaxInFlight, the
// admission bound), so the producer-side wait for a slot only triggers on
// a consumer lagging mid-lap, never on sustained overflow.
type ring struct {
	slots []ringSlot
	mask  uint64
	_     [48]byte // keep tail off the slots/mask cache line
	tail  atomic.Uint64
	_     [56]byte // producers bang on tail; keep head clear of it
	head  atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	p   *pending
}

// newRing returns a ring with capacity rounded up to a power of two, at
// least min.
func newRing(min int) *ring {
	n := 1
	for n < min {
		n <<= 1
	}
	r := &ring{slots: make([]ringSlot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push publishes p. Safe for any number of concurrent producers.
func (r *ring) push(p *pending) {
	pos := r.tail.Add(1) - 1
	s := &r.slots[pos&r.mask]
	for s.seq.Load() != pos {
		// Full lap: the consumer hasn't recycled this slot yet.
		runtime.Gosched()
	}
	s.p = p
	s.seq.Store(pos + 1)
}

// pop takes the next item, or nil when none is published (empty, or a
// producer holds a ticket but hasn't stored its slot yet). Single
// consumer: only the shard-token holder may call it.
func (r *ring) pop() *pending {
	h := r.head.Load()
	s := &r.slots[h&r.mask]
	if s.seq.Load() != h+1 {
		return nil
	}
	p := s.p
	s.p = nil
	s.seq.Store(h + uint64(len(r.slots)))
	r.head.Store(h + 1)
	return p
}

// empty reports whether every issued ticket has been consumed. A false
// return may reflect a producer that holds a ticket but hasn't published
// yet; the release-recheck protocol in Engine.combineOn relies on exactly
// that conservatism.
func (r *ring) empty() bool {
	return r.head.Load() == r.tail.Load()
}
