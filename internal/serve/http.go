package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simkernel"
	"repro/internal/storage"
)

// ScheduleRequest is the JSON body of POST /v1/schedule.
type ScheduleRequest struct {
	// Block is the block to read (required).
	Block int64 `json:"block"`
	// Size is the transfer size in bytes; 0 uses the workload default.
	Size int64 `json:"size,omitempty"`
	// DeadlineMS bounds queueing before a decision in milliseconds;
	// 0 uses the daemon default, -1 disables the deadline.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// ScheduleResponse is the JSON body of a successful scheduling decision.
type ScheduleResponse struct {
	Request uint64  `json:"request"`
	Block   int64   `json:"block"`
	Disk    int     `json:"disk"`
	State   string  `json:"state"`    // chosen disk's power state at decision time
	Load    int     `json:"load"`     // P(d): queued+in-service before this dispatch
	Cost    float64 `json:"cost"`     // Eq. 6 composite C(d)
	EnergyJ float64 `json:"energy_j"` // Eq. 5 energy term E(d)
	AtUS    int64   `json:"at_us"`    // virtual decision time, microseconds
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"` // queue_full | draining | deadline | no_replica | bad_request
}

// StateResponse is the JSON body of GET /state.
type StateResponse struct {
	NowUS     int64   `json:"now_us"`
	Decisions uint64  `json:"decisions"`
	Served    int     `json:"served"`
	Dropped   int     `json:"dropped"`
	InFlight  int     `json:"in_flight"`
	Draining  bool    `json:"draining"`
	EnergyJ   float64 `json:"energy_j"`
	SpinUps   int     `json:"spin_ups"`
	SpinDowns int     `json:"spin_downs"`
	// Carbon/cost accounting snapshot; omitted when the engine runs
	// without a grid profile attached.
	CarbonG float64     `json:"carbon_gco2e,omitempty"`
	CostUSD float64     `json:"cost_usd,omitempty"`
	Disks   []DiskState `json:"disks"`
	// Shards breaks the run down per decision shard (disk range, clock
	// segment, decision/round counters).
	Shards []ShardState `json:"shards,omitempty"`
	// Slow lists the slowest request lifecycle spans seen so far, worst
	// first (admit→queue→decide→dispatch→reply breakdown per entry);
	// empty when the engine runs without a metrics collector.
	Slow []SlowSpan `json:"slow_requests,omitempty"`
	// Kernel is the simulation kernel's introspection snapshot (event
	// counts, queue churn, pool high-water marks).
	Kernel *simkernel.KernelStats `json:"kernel,omitempty"`
}

// DiskState is one disk's entry in StateResponse.
type DiskState struct {
	Disk      int     `json:"disk"`
	State     string  `json:"state"`
	Load      int     `json:"load"`
	Served    int     `json:"served"`
	EnergyJ   float64 `json:"energy_j"`
	SpinUps   int     `json:"spin_ups"`
	SpinDowns int     `json:"spin_downs"`
}

// Server exposes an Engine over HTTP:
//
//	POST /v1/schedule        JSON ScheduleRequest → ScheduleResponse
//	POST /v1/schedule/batch  compact text: whitespace-separated block IDs →
//	                         one line per block, "disk at_us" or "! code"
//	GET  /healthz            liveness + decision counters
//	GET  /metrics            Prometheus text (reconciled at drain)
//	GET  /state              per-disk power-state snapshot (JSON)
//
// Backpressure and lifecycle map onto statuses: a full decision queue is
// 429 with Retry-After, a draining daemon is 503, an expired decision
// deadline is 504, a block with no replicas is 422, malformed input is 400.
type Server struct {
	eng *Engine
	col *obs.Collector
	// RetryAfter is the Retry-After hint on 429 responses (default 1s).
	RetryAfter time.Duration
}

// NewServer wraps an engine. col may be nil, disabling /metrics content
// (it serves an empty export).
func NewServer(eng *Engine, col *obs.Collector) *Server {
	return &Server{eng: eng, col: col, RetryAfter: time.Second}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/schedule/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/state", s.handleState)
	return mux
}

// Serve binds addr and serves in the background, returning the bound
// address (useful with ":0") and a shutdown func that stops the listener
// (it does not drain the engine; call Engine.Drain for that).
func (s *Server) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}

// errStatus maps an engine error to (HTTP status, machine-readable code).
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, ErrNoReplica):
		return http.StatusUnprocessableEntity, "no_replica"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.RetryAfter+time.Second-1)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Code: code})
}

func writeBadRequest(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg, Code: "bad_request"})
}

// deadline converts the wire field to Engine.Submit's convention.
func deadline(ms int) time.Duration {
	switch {
	case ms < 0:
		return -1
	case ms == 0:
		return 0
	default:
		return time.Duration(ms) * time.Millisecond
	}
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ScheduleRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeBadRequest(w, "bad JSON: "+err.Error())
		return
	}
	if req.Block < 0 {
		writeBadRequest(w, fmt.Sprintf("negative block %d", req.Block))
		return
	}
	d, err := s.eng.Submit(core.Request{Block: core.BlockID(req.Block), Size: req.Size}, deadline(req.DeadlineMS))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(decisionJSON(d))
}

func decisionJSON(d Decision) ScheduleResponse {
	return ScheduleResponse{
		Request: uint64(d.Req),
		Block:   int64(d.Block),
		Disk:    int(d.Disk),
		State:   d.State.String(),
		Load:    d.Load,
		Cost:    d.Cost,
		EnergyJ: d.EnergyJ,
		AtUS:    d.At.Microseconds(),
	}
}

// handleBatch is the compact endpoint: the body is whitespace-separated
// block IDs; the response has one line per block, in order — "disk at_us"
// on success or "! code" on rejection. Blocks are submitted concurrently so
// one batch becomes one (or few) decision rounds.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeBadRequest(w, err.Error())
		return
	}
	fields := strings.Fields(string(body))
	if len(fields) == 0 {
		writeBadRequest(w, "empty batch")
		return
	}
	blocks := make([]core.BlockID, len(fields))
	for i, f := range fields {
		b, err := strconv.ParseInt(f, 10, 64)
		if err != nil || b < 0 {
			writeBadRequest(w, "bad block "+f)
			return
		}
		blocks[i] = core.BlockID(b)
	}
	type slot struct {
		dec Decision
		err error
	}
	out := make([]slot, len(blocks))
	done := make(chan int, len(blocks))
	for i, b := range blocks {
		go func(i int, b core.BlockID) {
			d, err := s.eng.Submit(core.Request{Block: b}, 0)
			out[i] = slot{dec: d, err: err}
			done <- i
		}(i, b)
	}
	for range blocks {
		<-done
	}
	var sb strings.Builder
	for _, sl := range out {
		if sl.err != nil {
			_, code := errStatus(sl.err)
			sb.WriteString("! " + code + "\n")
			continue
		}
		sb.WriteString(strconv.Itoa(int(sl.dec.Disk)))
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatInt(sl.dec.At.Microseconds(), 10))
		sb.WriteByte('\n')
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, sb.String())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.eng.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "draining decisions=%d\n", s.eng.Decisions())
		return
	}
	fmt.Fprintf(w, "ok decisions=%d\n", s.eng.Decisions())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.col == nil {
		return
	}
	// Refresh the esched_kernel_* families before rendering. The kernel
	// counters are owned by the decision goroutine, so they are read through
	// the serialized Snapshot path and reconciled into the (mutex-protected)
	// collector here on the scrape goroutine.
	if ks := s.eng.Snapshot().Kernel; ks != nil {
		storage.ExportKernelMetrics(s.col, ks)
	}
	s.col.WriteTo(w)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	resp := StateResponse{
		NowUS:     snap.Totals.Now.Microseconds(),
		Decisions: snap.Totals.Decisions,
		Served:    snap.Totals.Served,
		Dropped:   snap.Totals.Dropped,
		InFlight:  snap.Totals.InFlight,
		Draining:  snap.Totals.Draining,
		EnergyJ:   snap.Totals.EnergyJ,
		SpinUps:   snap.Totals.SpinUps,
		SpinDowns: snap.Totals.SpinDowns,
		CarbonG:   snap.Totals.CarbonG,
		CostUSD:   snap.Totals.CostUSD,
		Disks:     make([]DiskState, len(snap.Disks)),
		Shards:    snap.Shards,
		Slow:      snap.Slow,
		Kernel:    snap.Kernel,
	}
	for i, d := range snap.Disks {
		resp.Disks[i] = DiskState{
			Disk:      int(d.Disk),
			State:     d.State.String(),
			Load:      d.Load,
			Served:    d.Served,
			EnergyJ:   d.EnergyJ,
			SpinUps:   d.SpinUps,
			SpinDowns: d.SpinDowns,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
