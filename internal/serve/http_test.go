package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func newTestServer(t *testing.T, mut func(*Config)) (*Engine, *httptest.Server, *obs.Collector) {
	t.Helper()
	cfg, _ := testConfig(t, 6, 40, 2)
	col := obs.NewCollector()
	cfg.Collector = col
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(e, col).Handler())
	t.Cleanup(ts.Close)
	return e, ts, col
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestHTTPSchedule(t *testing.T) {
	t.Parallel()
	e, ts, _ := newTestServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/schedule", `{"block": 3, "size": 8192}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dec ScheduleResponse
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if dec.Block != 3 || dec.Disk < 0 || dec.Disk >= 6 || dec.State == "" {
		t.Fatalf("decision %+v", dec)
	}

	for _, bad := range []struct {
		body string
		want int
		code string
	}{
		{`{"block": 3, `, http.StatusBadRequest, "bad_request"},
		{`{"block": -1}`, http.StatusBadRequest, "bad_request"},
		{`{"block": 3, "bogus": 1}`, http.StatusBadRequest, "bad_request"},
		{`{"block": 99999}`, http.StatusUnprocessableEntity, "no_replica"},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/schedule", bad.body)
		if resp.StatusCode != bad.want {
			t.Errorf("%q: status %d, want %d", bad.body, resp.StatusCode, bad.want)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Code != bad.code {
			t.Errorf("%q: error body %s (code %q, want %q)", bad.body, body, er.Code, bad.code)
		}
	}
	if resp, _ := http.Get(ts.URL + "/v1/schedule"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/schedule: status %d", resp.StatusCode)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPBatch(t *testing.T) {
	t.Parallel()
	e, ts, _ := newTestServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/schedule/batch", "0 1 2 39\n7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5: %q", len(lines), body)
	}
	for i, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) != 2 || fields[0] == "!" {
			t.Fatalf("line %d = %q, want \"disk at_us\"", i, ln)
		}
		d, err := strconv.Atoi(fields[0])
		if err != nil || d < 0 || d >= 6 {
			t.Fatalf("line %d: bad disk %q", i, fields[0])
		}
	}
	// Unknown blocks come back as in-band rejections, not a failed batch.
	resp, body = postJSON(t, ts.URL+"/v1/schedule/batch", "1 99999")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status %d", resp.StatusCode)
	}
	lines = strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "! no_replica") {
		t.Fatalf("mixed batch body %q", body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/schedule/batch", "  "); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/schedule/batch", "12x"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad block: status %d", resp.StatusCode)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	t.Parallel()
	e, ts, _ := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })
	// Hold the decision loop so the first request occupies the only slot.
	go blockLoop(e, 150*time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/v1/schedule", `{"block": 1}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first request: status %d", resp.StatusCode)
		}
	}()
	waitFor(t, func() bool { return e.inflight.Load() == 1 })
	resp, body := postJSON(t, ts.URL+"/v1/schedule", `{"block": 2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("no Retry-After header on 429")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "queue_full" {
		t.Errorf("429 body %s", body)
	}
	<-done
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPDeadline504(t *testing.T) {
	t.Parallel()
	e, ts, _ := newTestServer(t, nil)
	go blockLoop(e, 100*time.Millisecond)
	waitFor(t, func() bool { return true })
	resp, body := postJSON(t, ts.URL+"/v1/schedule", `{"block": 1, "deadline_ms": 1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "deadline" {
		t.Errorf("504 body %s", body)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPHealthStateAndDrain(t *testing.T) {
	t.Parallel()
	e, ts, _ := newTestServer(t, nil)
	resp, body := func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, b
	}()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if _, err := e.Submit(core.Request{Block: 5}, 0); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	var st StateResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(st.Disks) != 6 || st.Decisions != 1 {
		t.Fatalf("state %+v", st)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	// After drain: schedule → 503, healthz → 503.
	resp2, body2 := postJSON(t, ts.URL+"/v1/schedule", `{"block": 1}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain schedule: %d %s", resp2.StatusCode, body2)
	}
	if r, _ := http.Get(ts.URL + "/healthz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz: %d", r.StatusCode)
	}
}

// TestMetricsBitExactEnergy is the acceptance check that /metrics energy
// totals reconcile bit-exactly to the power meters at drain.
func TestMetricsBitExactEnergy(t *testing.T) {
	t.Parallel()
	e, ts, _ := newTestServer(t, nil)
	for i := 0; i < 120; i++ {
		if _, err := e.Submit(core.Request{Block: core.BlockID(i % 40)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	// Every per-state series must equal the meter total for that state
	// bit-exactly (the Reconcile mechanism), and their sum must match the
	// result's grand total up to summation order.
	byName := map[string]float64{}
	for st := core.StateStandby; st <= core.StateSpinDown; st++ {
		byName[st.String()] = res.EnergyByState[st]
	}
	total, seen := 0.0, 0
	for _, ln := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(ln, "esched_energy_joules_total{") {
			continue
		}
		fields := strings.Fields(ln)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", ln, err)
		}
		name := ln[strings.Index(ln, `state="`)+len(`state="`):]
		name = name[:strings.Index(name, `"`)]
		want, ok := byName[name]
		if !ok {
			t.Fatalf("unexpected state series %q", ln)
		}
		if v != want {
			t.Fatalf("state %q: exported %v != meter %v (not bit-exact)", name, v, want)
		}
		total += v
		seen++
	}
	if seen == 0 {
		t.Fatalf("no energy series in export:\n%s", body)
	}
	if math.Abs(total-res.Energy) > 1e-9 {
		t.Fatalf("exported energy %v != result total %v", total, res.Energy)
	}
	// The serving counters are exported too.
	if !strings.Contains(string(body), `esched_serve_requests_total{outcome="decided"} 120`) {
		t.Errorf("decided counter missing or wrong:\n%s", grepLines(string(body), "esched_serve"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return fmt.Sprint(strings.Join(out, "\n"))
}
