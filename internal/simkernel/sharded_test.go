package simkernel

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
)

// shardHarness drives an identical synthetic workload on either kernel:
// numDisks independent event chains (disk events scheduling same-disk
// follow-ups, with occasional timers that get cancelled — the disk-model
// shape), poked by preloaded coordinator arrivals. Every execution appends
// to a shared log through the kernel's effect path, so the log captures the
// exact global execution order including same-instant ties.
type shardHarness struct {
	numDisks int
	sims     []Sim
	deferFn  []func(func())
	log      []string
	probes   []string
	counters []int
	timers   []Handle
}

func newSerialHarness(numDisks int) (*shardHarness, *Engine) {
	eng := &Engine{}
	h := &shardHarness{numDisks: numDisks}
	for d := 0; d < numDisks; d++ {
		h.sims = append(h.sims, eng)
		h.deferFn = append(h.deferFn, func(fn func()) { fn() })
	}
	h.counters = make([]int, numDisks)
	h.timers = make([]Handle, numDisks)
	return h, eng
}

func newShardedHarness(numDisks, shards, workers int) (*shardHarness, *Sharded) {
	se := NewSharded(numDisks, shards, workers)
	h := &shardHarness{numDisks: numDisks}
	for d := 0; d < numDisks; d++ {
		v := se.DiskSim(core.DiskID(d))
		h.sims = append(h.sims, v)
		h.deferFn = append(h.deferFn, v.Defer)
	}
	h.counters = make([]int, numDisks)
	h.timers = make([]Handle, numDisks)
	return h, se
}

// poke is one disk event: log the execution, maybe cancel the disk's armed
// timer, maybe re-arm it, and chain a few follow-ups at deterministic
// pseudo-random delays (quantized so cross-disk same-instant ties are
// common).
func (h *shardHarness) poke(d int, depth int) Event {
	return func(now time.Duration) {
		h.counters[d]++
		c := h.counters[d]
		h.deferFn[d](func() {
			h.log = append(h.log, fmt.Sprintf("d%d c%d t%d", d, c, now))
		})
		r := uint64(d*2654435761) ^ uint64(c*40503) // deterministic mix
		if !h.timers[d].Cancelled() && r%3 == 0 {
			h.sims[d].Cancel(h.timers[d])
		}
		if depth >= 4 {
			return
		}
		quantum := 10 * time.Microsecond
		delay := time.Duration(1+r%7) * quantum
		h.sims[d].After(delay, h.poke(d, depth+1))
		if r%5 == 1 {
			h.timers[d] = h.sims[d].After(delay*3, h.poke(d, depth+2))
		}
	}
}

func (h *shardHarness) arrivals(n int) []core.Request {
	reqs := make([]core.Request, n)
	for i := range reqs {
		reqs[i] = core.Request{
			ID:      core.RequestID(i),
			Arrival: time.Duration(i) * 35 * time.Microsecond,
		}
	}
	return reqs
}

// deliver fans an arrival out to a couple of disks, coordinator-side.
func (h *shardHarness) deliver(r core.Request, now time.Duration) {
	h.log = append(h.log, fmt.Sprintf("arrive r%d t%d", r.ID, now))
	d := int(r.ID) % h.numDisks
	h.sims[d].At(now, h.poke(d, 0))
	d2 := (d + h.numDisks/2) % h.numDisks
	h.sims[d2].After(5*time.Microsecond, h.poke(d2, 1))
}

func runHarness(h *shardHarness, k Kernel, n int, deadline time.Duration) {
	k.SetProbe(func(now time.Duration, fired uint64) {
		h.probes = append(h.probes, fmt.Sprintf("%d@%d", fired, now))
	})
	k.Preload(h.arrivals(n), h.deliver)
	k.RunUntil(deadline)
	for k.Step() { // drain past the deadline, exercising Step on both kernels
	}
}

// TestShardedMatchesSerial is the kernel-level determinism guarantee: the
// execution log, probe stream, event count, and final clock of the sharded
// kernel are identical to the serial engine's at every shard and worker
// count.
func TestShardedMatchesSerial(t *testing.T) {
	const numDisks, numReqs = 16, 120
	deadline := 2 * time.Millisecond

	ref, eng := newSerialHarness(numDisks)
	runHarness(ref, eng, numReqs, deadline)
	refFired, refNow := eng.Fired(), eng.Now()
	if len(ref.log) < 500 {
		t.Fatalf("workload too small to be meaningful: %d log entries", len(ref.log))
	}

	for _, shards := range []int{1, 2, 4, 8, 16} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				h, se := newShardedHarness(numDisks, shards, workers)
				runHarness(h, se, numReqs, deadline)
				if !reflect.DeepEqual(h.log, ref.log) {
					i := 0
					for i < len(h.log) && i < len(ref.log) && h.log[i] == ref.log[i] {
						i++
					}
					t.Fatalf("log diverges at %d: sharded %q vs serial %q (lens %d/%d)",
						i, at(h.log, i), at(ref.log, i), len(h.log), len(ref.log))
				}
				if !reflect.DeepEqual(h.probes, ref.probes) {
					t.Fatal("probe stream diverges from serial")
				}
				if se.Fired() != refFired || se.Now() != refNow {
					t.Fatalf("fired/now = %d/%v, serial %d/%v", se.Fired(), se.Now(), refFired, refNow)
				}
				if !reflect.DeepEqual(h.counters, ref.counters) {
					t.Fatal("per-disk counters diverge from serial")
				}
			})
		}
	}
}

func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<end>"
}

// TestShardedRepeatedRuns pins run-to-run determinism of the parallel path:
// two identical sharded runs produce identical logs.
func TestShardedRepeatedRuns(t *testing.T) {
	run := func() []string {
		h, se := newShardedHarness(12, 4, 4)
		runHarness(h, se, 80, time.Millisecond)
		return h.log
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical sharded runs diverged")
	}
}

// TestShardViewHandleSemantics mirrors the PR-5 pool guarantees on the
// per-shard arenas: cancel is effective, handles to fired events are stale,
// and record reuse cannot resurrect an old handle.
func TestShardViewHandleSemantics(t *testing.T) {
	se := NewSharded(4, 2, 1)
	v := se.DiskSim(0)

	var firedLog []string
	ha := v.After(time.Millisecond, func(time.Duration) { firedLog = append(firedLog, "a") })
	hb := v.After(2*time.Millisecond, func(time.Duration) { firedLog = append(firedLog, "b") })
	if ha.Cancelled() || hb.Cancelled() {
		t.Fatal("fresh handles must be live")
	}
	v.Cancel(hb)
	if !hb.Cancelled() {
		t.Fatal("cancelled handle must report Cancelled")
	}
	se.RunUntil(3 * time.Millisecond)
	if got := fmt.Sprint(firedLog); got != "[a]" {
		t.Fatalf("fired %v, want [a]", firedLog)
	}
	if !ha.Cancelled() {
		t.Fatal("handle to a fired event must be stale")
	}
	// Reuse: the records behind ha/hb return to the shard arena; new events
	// reuse them with a bumped generation, so the old handles stay dead and
	// cancelling them must not touch the new events.
	hc := v.After(time.Millisecond, func(time.Duration) { firedLog = append(firedLog, "c") })
	v.Cancel(ha)
	v.Cancel(hb)
	if hc.Cancelled() {
		t.Fatal("stale cancel leaked onto a reused record")
	}
	se.RunUntil(5 * time.Millisecond)
	if got := fmt.Sprint(firedLog); got != "[a c]" {
		t.Fatalf("fired %v, want [a c]", firedLog)
	}
	if se.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2 (cancelled events must not count)", se.Fired())
	}
}

// TestShardedRunFree pins the free-running mode's shard-count invariance:
// self-scheduling chains with shard-local sinks yield identical per-disk
// sums, event counts, and final clocks at every shard count.
func TestShardedRunFree(t *testing.T) {
	const numDisks = 24
	run := func(shards, workers int) ([]int, uint64, time.Duration) {
		se := NewSharded(numDisks, shards, workers)
		sums := make([]int, numDisks)
		for d := 0; d < numDisks; d++ {
			v := se.DiskSim(core.DiskID(d))
			var chain func(left int) Event
			chain = func(left int) Event {
				return func(now time.Duration) {
					sums[d]++ // shard-local: only disk d's shard touches sums[d]
					if left > 0 {
						v.After(time.Duration(1+(sums[d]*7)%13)*time.Microsecond, chain(left-1))
					}
				}
			}
			v.At(time.Duration(d)*time.Microsecond, chain(200))
		}
		now := se.RunFree()
		return sums, se.Fired(), now
	}
	refSums, refFired, refNow := run(1, 1)
	for _, shards := range []int{2, 4, 8, 24} {
		sums, fired, now := run(shards, 4)
		if !reflect.DeepEqual(sums, refSums) || fired != refFired || now != refNow {
			t.Fatalf("shards=%d: (fired=%d now=%v) diverges from serial (fired=%d now=%v)",
				shards, fired, now, refFired, refNow)
		}
	}
}

// TestShardOfMatchesRackStriping pins ShardOf to the same contiguous
// striping as placement.RackOf, so a rack never straddles a shard boundary
// when the shard count divides the rack count.
func TestShardOfMatchesRackStriping(t *testing.T) {
	for _, tc := range []struct{ disks, groups int }{
		{100, 4}, {100, 7}, {13, 13}, {13, 1}, {100000, 1000},
	} {
		for d := 0; d < tc.disks; d++ {
			got := ShardOf(core.DiskID(d), tc.disks, tc.groups)
			want := placement.RackOf(core.DiskID(d), tc.disks, tc.groups)
			if got != want {
				t.Fatalf("ShardOf(%d,%d,%d) = %d, RackOf = %d", d, tc.disks, tc.groups, got, want)
			}
		}
	}
}

// TestFreeRunSlotHandles pins the free-running fast path's handle
// identity: when a newly scheduled event displaces the slot holder, the
// returned handle must target the new event, not the demoted one —
// cancelling it must suppress exactly the new event. A handle bound to
// the wrong item turns every later Cancel into a misdirected cancel of a
// live event (lost completions at fleet scale).
func TestFreeRunSlotHandles(t *testing.T) {
	se := NewSharded(2, 2, 1)
	v := se.DiskSim(0)
	var log []string
	v.At(time.Microsecond, func(now time.Duration) {
		// A (later) takes the empty slot; B (earlier) must displace it.
		ha := v.At(now+10*time.Microsecond, func(time.Duration) { log = append(log, "a") })
		hb := v.At(now+5*time.Microsecond, func(time.Duration) { log = append(log, "b") })
		v.Cancel(hb)
		if ha.Cancelled() {
			t.Error("cancelling the displacing event's handle hit the demoted one")
		}
	})
	se.RunFree()
	if got := fmt.Sprint(log); got != "[a]" {
		t.Fatalf("fired %v, want [a]: slot swap returned a handle to the wrong event", log)
	}
	if se.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", se.Fired())
	}
}
