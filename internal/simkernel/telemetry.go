package simkernel

import "time"

// ShardStats is one sub-kernel's introspection counters. The structural
// counters (queue ops, rebuilds, span rounds, pool growth) are always on —
// each is a plain field increment on a path that already touches the same
// cache line — while the wall-clock buckets (ExecNS/QueueNS/StallNS) are
// populated only after EnableTelemetry, which swaps the drain loops for
// timestamp-chaining variants. A serial Engine reports itself as a single
// pseudo-shard with the calendar- and span-specific fields zero.
type ShardStats struct {
	Shard  int    `json:"shard"`
	Events uint64 `json:"events"`

	// Calendar-queue meters.
	Pushes         uint64 `json:"queue_pushes"`
	Pops           uint64 `json:"queue_pops"`
	Rebuilds       uint64 `json:"queue_rebuilds"`
	Recalibrations uint64 `json:"queue_recalibrations"`
	Migrations     uint64 `json:"queue_migrations"`
	FarHighWater   int    `json:"far_high_water"`
	QueueHighWater int    `json:"queue_high_water"`

	// Event-arena high-water mark: pooled records ever allocated.
	PoolHighWater int `json:"pool_high_water"`

	// Span synchronization (exact mode): rounds this shard executed events
	// in vs. rounds it sat below the lookahead bound with nothing runnable,
	// and the deferred-effect replay volume merged back in global order.
	SpanRounds      uint64 `json:"span_rounds"`
	LookaheadWaits  uint64 `json:"lookahead_waits"`
	DeferredEffects uint64 `json:"deferred_effects"`
	ReplayDepthMax  int    `json:"replay_depth_max"`

	// Free-running slot fast-path hits.
	SlotHits uint64 `json:"slot_hits"`

	// Wall-clock attribution (telemetry mode only): time spent executing
	// event callbacks, time spent in queue operations (pop/peek/reap), and
	// time stalled — idle while a straggler shard or the span barrier held
	// the drain open.
	ExecNS  int64 `json:"exec_ns"`
	QueueNS int64 `json:"queue_ns"`
	StallNS int64 `json:"stall_ns"`
}

// BusyNS returns the shard's attributed busy time.
func (s *ShardStats) BusyNS() int64 { return s.ExecNS + s.QueueNS }

// KernelStats is a deterministic snapshot of a kernel's telemetry: shards
// appear in shard order and every field is derived from per-shard counters
// aggregated on the coordinator goroutine, so two identical runs snapshot
// identically (wall-clock fields aside).
type KernelStats struct {
	Shards []ShardStats `json:"shards"`
	// WallNS is the drain's wall-clock time (telemetry mode; RunFree and
	// parallel exact spans contribute). MergeNS is coordinator time spent
	// replaying deferred effects in global order.
	WallNS  int64 `json:"wall_ns"`
	MergeNS int64 `json:"merge_ns"`
	Events  uint64 `json:"events"`
	// CoordEvents counts events executed on the coordinator engine between
	// drains (preload deliveries, probes) — part of Events but belonging to
	// no shard, so per-shard events plus CoordEvents equals Events.
	CoordEvents uint64 `json:"coord_events"`
	Timed       bool   `json:"timed"`
}

// Attribution sums the named wall-clock buckets across shards and returns
// the fraction of shards×wall they cover, along with the per-bucket totals.
// Zero wall (telemetry off) reports zero coverage.
func (ks *KernelStats) Attribution() (exec, queue, stall int64, coverage float64) {
	for i := range ks.Shards {
		s := &ks.Shards[i]
		exec += s.ExecNS
		queue += s.QueueNS
		stall += s.StallNS
	}
	if total := ks.WallNS * int64(len(ks.Shards)); total > 0 {
		coverage = float64(exec+queue+stall) / float64(total)
	}
	return exec, queue, stall, coverage
}

// Straggler returns the index of the shard with the most attributed busy
// time — the rack holding the drain open — or -1 for an empty snapshot.
func (ks *KernelStats) Straggler() int {
	best, bestNS := -1, int64(-1)
	for i := range ks.Shards {
		if b := ks.Shards[i].BusyNS(); b > bestNS {
			best, bestNS = i, b
		}
	}
	return best
}

// shardTimes is the opt-in wall-clock meter attached to a shard (and to the
// coordinator for merge time) by EnableTelemetry.
type shardTimes struct {
	execNS   int64
	queueNS  int64
	stallNS  int64
	loopNS   int64 // this shard's loop wall, used to derive stall
	lastSpan int64 // wall of the shard's most recent parallel span
}

// EnableTelemetry arms wall-clock attribution: subsequent RunFree drains
// and parallel exact-mode spans run through timestamp-chaining loops that
// bucket every nanosecond into execute/queue/stall. The structural counters
// are always on; this only adds the timing. Costs two clock reads per event
// while enabled — leave it off on throughput-critical runs.
func (se *Sharded) EnableTelemetry() {
	for _, sh := range se.shards {
		if sh.telem == nil {
			sh.telem = &shardTimes{}
		}
	}
	se.telemetry = true
}

// Telemetry snapshots the kernel's per-shard counters in shard order. Call
// it between drains (it reads shard state the drain loops write).
func (se *Sharded) Telemetry() *KernelStats {
	ks := &KernelStats{
		Shards:      make([]ShardStats, len(se.shards)),
		WallNS:      se.wallNS,
		MergeNS:     se.mergeNS,
		Events:      se.fired,
		CoordEvents: se.coord.fired,
		Timed:       se.telemetry,
	}
	for i, sh := range se.shards {
		st := &ks.Shards[i]
		st.Shard = i
		st.Events = sh.firedTotal
		st.Pushes = sh.q.pushes
		st.Pops = sh.q.pops
		st.Rebuilds = sh.q.rebuilds
		st.Recalibrations = sh.q.recals
		st.Migrations = sh.q.migrations
		st.FarHighWater = sh.q.farHW
		st.QueueHighWater = sh.q.nHW
		st.PoolHighWater = sh.poolBlocks * poolBlock
		st.SpanRounds = sh.spanRounds
		st.LookaheadWaits = sh.lookaheadWaits
		st.DeferredEffects = sh.deferred
		st.ReplayDepthMax = sh.replayHW
		st.SlotHits = sh.slotHits
		if sh.telem != nil {
			st.ExecNS = sh.telem.execNS
			st.QueueNS = sh.telem.queueNS
			st.StallNS = sh.telem.stallNS
		}
	}
	return ks
}

// Telemetry snapshots the serial engine's counters as a single pseudo-shard.
// The heap path has no calendar meters; events, queue high-water and the
// pool high-water are the introspectable state.
func (e *Engine) Telemetry() *KernelStats {
	return &KernelStats{
		Shards: []ShardStats{{
			Events:         e.fired,
			QueueHighWater: e.queueHW,
			PoolHighWater:  e.poolBlocks * poolBlock,
		}},
		Events: e.fired,
	}
}

// runFreeLocalTimed is runFreeLocal with timestamp chaining: consecutive
// clock reads bracket the queue operation and the callback of every
// iteration, so queueNS+execNS equals the loop's wall minus only the
// bucketing arithmetic itself.
func (sh *shard) runFreeLocalTimed() {
	tm := sh.telem
	start := time.Now()
	t := start
	for {
		it := sh.slot
		if it != nil {
			if m := sh.q.Peek(); m != nil && (m.at < it.at || (m.at == it.at && m.seq < it.seq)) {
				it = sh.q.Pop()
			} else {
				sh.slot = nil
				it.index = fired
				sh.slotHits++
			}
		} else if it = sh.q.Pop(); it == nil {
			now := time.Now()
			tm.queueNS += int64(now.Sub(t))
			tm.loopNS += int64(now.Sub(start))
			return
		}
		if it.cancelled {
			sh.cancelled--
			sh.release(it)
			continue
		}
		at, fn := it.at, it.fn
		sh.now = at
		sh.fired++
		sh.release(it)
		tq := time.Now()
		tm.queueNS += int64(tq.Sub(t))
		fn(at)
		t = time.Now()
		tm.execNS += int64(t.Sub(tq))
	}
}

// runSpanLocalTimed wraps one parallel exact-mode span in a wall-clock
// bracket; the coordinator derives barrier stall from the span wall.
func (sh *shard) runSpanLocalTimed(boundAt time.Duration, boundSeq uint64) {
	start := time.Now()
	sh.runSpanLocal(boundAt, boundSeq)
	d := int64(time.Since(start))
	sh.telem.lastSpan = d
	sh.telem.execNS += d
}
