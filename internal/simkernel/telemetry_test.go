package simkernel

import (
	"reflect"
	"testing"
	"time"
)

// TestEngineTelemetry pins the serial pseudo-shard snapshot: event count
// matches Fired, the queue and pool high-water marks are live, and the
// snapshot is untimed.
func TestEngineTelemetry(t *testing.T) {
	h, eng := newSerialHarness(8)
	runHarness(h, eng, 60, time.Millisecond)
	ks := eng.Telemetry()
	if len(ks.Shards) != 1 {
		t.Fatalf("serial engine reports %d shards, want 1", len(ks.Shards))
	}
	s := ks.Shards[0]
	if s.Events != eng.Fired() || ks.Events != eng.Fired() {
		t.Fatalf("events %d/%d, want %d", s.Events, ks.Events, eng.Fired())
	}
	if s.QueueHighWater <= 0 || s.PoolHighWater <= 0 {
		t.Fatalf("high-water marks not recorded: queue=%d pool=%d",
			s.QueueHighWater, s.PoolHighWater)
	}
	if s.PoolHighWater%poolBlock != 0 {
		t.Fatalf("pool high-water %d not a multiple of block size %d",
			s.PoolHighWater, poolBlock)
	}
	if ks.Timed {
		t.Fatal("serial snapshot must be untimed")
	}
	if _, _, _, cov := ks.Attribution(); cov != 0 {
		t.Fatalf("untimed snapshot reports coverage %v", cov)
	}
}

// TestShardedTelemetryCounters pins the structural counters on the exact
// span path: per-shard events sum to the global count, queue pushes cover
// pops, spans and deferred effects are recorded, and arming telemetry does
// not perturb the execution order.
func TestShardedTelemetryCounters(t *testing.T) {
	const numDisks, numReqs = 16, 120
	deadline := 2 * time.Millisecond

	ref, eng := newSerialHarness(numDisks)
	runHarness(ref, eng, numReqs, deadline)

	h, se := newShardedHarness(numDisks, 4, 4)
	se.EnableTelemetry()
	runHarness(h, se, numReqs, deadline)
	if !reflect.DeepEqual(h.log, ref.log) {
		t.Fatal("telemetry perturbed the execution log")
	}

	ks := se.Telemetry()
	if len(ks.Shards) != 4 {
		t.Fatalf("snapshot has %d shards, want 4", len(ks.Shards))
	}
	var events, pushes, pops, spans, deferred uint64
	for i, s := range ks.Shards {
		if s.Shard != i {
			t.Fatalf("shard %d labelled %d", i, s.Shard)
		}
		if s.Rebuilds == 0 {
			t.Fatalf("shard %d recorded no calendar rebuilds (init counts one)", i)
		}
		if s.Pushes < s.Pops {
			t.Fatalf("shard %d popped %d of %d pushes", i, s.Pops, s.Pushes)
		}
		events += s.Events
		pushes += s.Pushes
		pops += s.Pops
		spans += s.SpanRounds
		deferred += s.DeferredEffects
	}
	if events+ks.CoordEvents != se.Fired() || ks.Events != se.Fired() {
		t.Fatalf("per-shard events %d + coordinator %d != global %d",
			events, ks.CoordEvents, se.Fired())
	}
	if pushes == 0 || pops == 0 || spans == 0 {
		t.Fatalf("structural counters dead: pushes=%d pops=%d spans=%d", pushes, pops, spans)
	}
	if deferred == 0 {
		t.Fatal("exact-mode run recorded no deferred effects")
	}
	if !ks.Timed || ks.WallNS <= 0 {
		t.Fatalf("telemetry armed but snapshot untimed (wall=%d)", ks.WallNS)
	}
	if got := ks.Straggler(); got < 0 || got >= 4 {
		t.Fatalf("straggler index %d out of range", got)
	}
	exec, queue, stall, cov := ks.Attribution()
	if exec <= 0 {
		t.Fatalf("no exec time attributed (exec=%d queue=%d stall=%d)", exec, queue, stall)
	}
	if cov <= 0 || cov > 1.10 {
		t.Fatalf("attribution coverage %.3f outside (0, 1.1]", cov)
	}
}

// TestTelemetryDeterministicSnapshot pins that two identical runs produce
// identical structural counters (wall-clock fields aside).
func TestTelemetryDeterministicSnapshot(t *testing.T) {
	run := func() *KernelStats {
		h, se := newShardedHarness(12, 4, 4)
		runHarness(h, se, 80, time.Millisecond)
		ks := se.Telemetry()
		ks.WallNS, ks.MergeNS = 0, 0
		for i := range ks.Shards {
			ks.Shards[i].ExecNS = 0
			ks.Shards[i].QueueNS = 0
			ks.Shards[i].StallNS = 0
		}
		return ks
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("structural counters diverged between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}
