package simkernel

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

func preloadReqs(arrivals ...time.Duration) []core.Request {
	reqs := make([]core.Request, len(arrivals))
	for i, at := range arrivals {
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i), Arrival: at}
	}
	return reqs
}

// TestPreloadMatchesAtLoop pins Preload's contract: interleaved with heap
// events, preloaded deliveries fire in exactly the order an At call per
// request would produce — including FIFO ties at the same instant.
func TestPreloadMatchesAtLoop(t *testing.T) {
	t.Parallel()
	arrivals := []time.Duration{
		2 * time.Second, 2 * time.Second, 5 * time.Second, 7 * time.Second,
	}
	heapTimes := []time.Duration{time.Second, 2 * time.Second, 6 * time.Second}

	trace := func(preload bool) []string {
		var e Engine
		var got []string
		reqs := preloadReqs(arrivals...)
		// Heap events scheduled first, as armFailures is in storage.
		for _, at := range heapTimes {
			at := at
			e.At(at, func(now time.Duration) {
				got = append(got, "heap@"+now.String())
			})
		}
		record := func(r core.Request, now time.Duration) {
			got = append(got, fmt.Sprintf("req%d@%s", r.ID, now))
		}
		if preload {
			e.Preload(reqs, record)
		} else {
			for _, r := range reqs {
				r := r
				e.At(r.Arrival, func(now time.Duration) { record(r, now) })
			}
		}
		e.Run()
		return got
	}

	want, got := trace(false), trace(true)
	if len(want) != len(got) {
		t.Fatalf("fired %d events with Preload, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d = %q with Preload, want %q (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestPreloadSortsUnorderedArrivals(t *testing.T) {
	t.Parallel()
	var e Engine
	var got []core.RequestID
	e.Preload(preloadReqs(3*time.Second, time.Second, 2*time.Second),
		func(r core.Request, _ time.Duration) { got = append(got, r.ID) })
	e.Run()
	want := []core.RequestID{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", got, want)
		}
	}
}

func TestPreloadPastArrivalPanics(t *testing.T) {
	t.Parallel()
	var e Engine
	e.At(2*time.Second, func(time.Duration) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Preload of a past arrival did not panic")
		}
	}()
	e.Preload(preloadReqs(time.Second), func(core.Request, time.Duration) {})
}

func TestPreloadPendingCountsRemaining(t *testing.T) {
	t.Parallel()
	var e Engine
	e.Preload(preloadReqs(time.Second, 2*time.Second, 3*time.Second),
		func(core.Request, time.Duration) {})
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d after preloading 3, want 3", e.Pending())
	}
	e.Step()
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d after one step, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
}

// TestPendingAndLiveWithCancelled pins the documented accounting: Cancel is
// O(1) and leaves the event in the heap, so Pending includes it until the
// dispatcher reaps it, while Live excludes it immediately.
func TestPendingAndLiveWithCancelled(t *testing.T) {
	t.Parallel()
	var e Engine
	h := e.At(time.Second, func(time.Duration) { t.Fatal("cancelled event fired") })
	e.At(2*time.Second, func(time.Duration) {})
	e.Cancel(h)
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d with one cancelled-unreaped event, want 2", e.Pending())
	}
	if e.Live() != 1 {
		t.Fatalf("Live() = %d with one cancelled event, want 1", e.Live())
	}
	e.Cancel(h) // double-cancel must not double-count
	if e.Live() != 1 {
		t.Fatalf("Live() = %d after double cancel, want 1", e.Live())
	}
	if !e.Step() { // fires the 2s event, reaping the cancelled one
		t.Fatal("Step() = false, want true")
	}
	if e.Pending() != 0 || e.Live() != 0 {
		t.Fatalf("Pending() = %d, Live() = %d after run, want 0, 0", e.Pending(), e.Live())
	}
}

func TestPreloadInterleavesWithRunUntil(t *testing.T) {
	t.Parallel()
	var e Engine
	fired := 0
	e.Preload(preloadReqs(time.Second, 3*time.Second, 5*time.Second),
		func(core.Request, time.Duration) { fired++ })
	e.RunUntil(3 * time.Second)
	if fired != 2 {
		t.Fatalf("fired %d preloaded events by 3s, want 2", fired)
	}
	if at, ok := e.peek(); !ok || at != 5*time.Second {
		t.Fatalf("peek() = %v, %v, want 5s, true", at, ok)
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired %d preloaded events total, want 3", fired)
	}
}
