package simkernel

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refHeap drives the production eventHeap as the ordering oracle for the
// calendar queue property tests.
type refHeap struct{ h eventHeap }

func (r *refHeap) push(it *eventItem) { heap.Push(&r.h, it) }
func (r *refHeap) pop() *eventItem {
	if len(r.h) == 0 {
		return nil
	}
	return heap.Pop(&r.h).(*eventItem)
}

// TestCalendarMatchesHeap drives a calendar queue and the binary heap with
// the same randomized push/pop interleavings and requires identical pop
// sequences, across several workload shapes that stress different bucket
// geometries.
func TestCalendarMatchesHeap(t *testing.T) {
	shapes := []struct {
		name string
		gap  func(rng *rand.Rand) time.Duration
	}{
		{"uniform-ms", func(rng *rand.Rand) time.Duration { return time.Duration(rng.Int63n(int64(5 * time.Millisecond))) }},
		{"uniform-wide", func(rng *rand.Rand) time.Duration { return time.Duration(rng.Int63n(int64(3 * time.Hour))) }},
		{"same-instant", func(rng *rand.Rand) time.Duration { return 0 }},
		{"bimodal", func(rng *rand.Rand) time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(rng.Int63n(int64(10 * time.Second)))
			}
			return time.Duration(rng.Int63n(int64(100 * time.Microsecond)))
		}},
		// Pushes behind the cursor — exact mode does this after a span
		// merge. Regression shape for lap aliasing: a push before the
		// ring's lap origin must rebase the lap, not land in a bucket a
		// lap away where the cursor sweep overlooks it.
		{"time-warp", func(rng *rand.Rand) time.Duration {
			if rng.Intn(20) == 0 {
				return -time.Duration(rng.Int63n(int64(time.Second)))
			}
			return time.Duration(rng.Int63n(int64(50 * time.Microsecond)))
		}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			cal := newCalQueue()
			ref := &refHeap{}
			var now time.Duration
			var seq uint64
			for step := 0; step < 20000; step++ {
				if cal.Len() == 0 || rng.Intn(100) < 55 {
					at := now + shape.gap(rng)
					if at < 0 {
						at = 0
					}
					a := &eventItem{at: at, seq: seq}
					b := &eventItem{at: at, seq: seq}
					seq++
					cal.Push(a)
					ref.push(b)
					continue
				}
				got, want := cal.Pop(), ref.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("step %d: calendar popped (at=%v seq=%d), heap popped (at=%v seq=%d)",
						step, got.at, got.seq, want.at, want.seq)
				}
				if got.index != fired {
					t.Fatalf("step %d: popped item index = %d, want fired", step, got.index)
				}
				now = got.at
			}
			for {
				got, want := cal.Pop(), ref.pop()
				if got == nil || want == nil {
					if got != nil || want != nil {
						t.Fatalf("drain mismatch: calendar=%v heap=%v", got, want)
					}
					break
				}
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("drain: calendar popped (at=%v seq=%d), heap popped (at=%v seq=%d)",
						got.at, got.seq, want.at, want.seq)
				}
			}
		})
	}
}

// TestCalendarPeekPop pins Peek as a non-destructive preview of Pop,
// including across interleaved pushes that invalidate the memoized minimum.
func TestCalendarPeekPop(t *testing.T) {
	q := newCalQueue()
	rng := rand.New(rand.NewSource(7))
	var seq uint64
	for i := 0; i < 500; i++ {
		q.Push(&eventItem{at: time.Duration(rng.Int63n(int64(time.Second))), seq: seq})
		seq++
	}
	for iter := 0; q.Len() > 0; iter++ {
		p := q.Peek()
		if iter%7 == 3 {
			q.Push(&eventItem{at: p.at, seq: seq}) // same time, later seq: must not displace p
			seq++
			if q2 := q.Peek(); q2 != p {
				t.Fatalf("push at same time displaced peeked min: %v -> %v", p, q2)
			}
		}
		if got := q.Pop(); got != p {
			t.Fatalf("pop returned %+v, peek promised %+v", got, p)
		}
	}
}

// TestCalendarResizeEdges exercises bucket-geometry edge cases: a burst of
// identical timestamps (zero span forces the minimum width), a huge time
// spread right after, and a drain back through the shrink threshold.
func TestCalendarResizeEdges(t *testing.T) {
	q := newCalQueue()
	var seq uint64
	push := func(at time.Duration) {
		q.Push(&eventItem{at: at, seq: seq})
		seq++
	}
	// Same-instant burst well past the grow threshold: span 0, width clamps.
	for i := 0; i < 300; i++ {
		push(time.Second)
	}
	// Extreme spread: items years apart retrigger growth with a wide width.
	for i := 0; i < 300; i++ {
		push(time.Second + time.Duration(i)*365*24*time.Hour)
	}
	var last time.Duration
	var lastSeq uint64
	firstPop := true
	for i := 0; q.Len() > 0; i++ {
		it := q.Pop()
		if !firstPop && (it.at < last || (it.at == last && it.seq < lastSeq)) {
			t.Fatalf("pop %d out of order: (at=%v seq=%d) after (at=%v seq=%d)", i, it.at, it.seq, last, lastSeq)
		}
		last, lastSeq, firstPop = it.at, it.seq, false
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Fatal("empty queue must pop/peek nil")
	}
	// Occupancy-driven growth: pushes landing inside the ring's lap double
	// the bucket count once the population passes the grow factor. (Pop
	// cost is occupancy-independent with sorted buckets, so growth comes
	// from Push, not from scan-cost calibration.)
	for i := 0; i < 300; i++ {
		push(time.Duration(i) * time.Microsecond)
	}
	grown := len(q.buckets)
	if grown <= calMinBuckets {
		t.Fatalf("occupancy never grew the ring (buckets = %d)", grown)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	// Shrinking is gated by calCountHysteresis pops so burst/idle regime
	// changes cannot thrash the ring's allocations; after enough sustained
	// traffic at low occupancy the ring must shrink back down.
	for i := 0; len(q.buckets) > calMinBuckets && i < 100*calCountHysteresis; i++ {
		push(time.Duration(i) * time.Millisecond)
		if q.Pop() == nil {
			t.Fatal("pop during shrink traffic returned nil")
		}
	}
	if len(q.buckets) != calMinBuckets {
		t.Fatalf("ring never shrank: buckets = %d, want %d", len(q.buckets), calMinBuckets)
	}
}

// TestCalendarScan pins Scan's contract: every queued item is visited
// exactly once, and rewriting seq in place keeps pops ordered (the sharded
// kernel renumbers provisional sequence numbers this way).
func TestCalendarScan(t *testing.T) {
	q := newCalQueue()
	for i := 0; i < 100; i++ {
		q.Push(&eventItem{at: time.Duration(i) * time.Millisecond, seq: 1000 + uint64(i)})
	}
	seen := 0
	q.Scan(func(it *eventItem) {
		it.seq -= 1000 // order-preserving rewrite
		seen++
	})
	if seen != 100 {
		t.Fatalf("Scan visited %d items, want 100", seen)
	}
	for i := 0; i < 100; i++ {
		it := q.Pop()
		if it.seq != uint64(i) {
			t.Fatalf("pop %d: seq = %d after renumbering", i, it.seq)
		}
	}
}
