package simkernel

import (
	"testing"
	"time"
)

// TestStaleHandleAfterRecordReuse pins the generation discipline: once an
// event fires, its record returns to the free list and may back a later At
// call — the old handle must keep reporting Cancelled and must not be able
// to cancel the record's new occupant.
func TestStaleHandleAfterRecordReuse(t *testing.T) {
	var e Engine
	var firedA, firedB bool
	hA := e.At(time.Millisecond, func(time.Duration) { firedA = true })
	if hA.Cancelled() {
		t.Fatal("fresh handle reports cancelled")
	}
	if !e.Step() || !firedA {
		t.Fatal("first event did not fire")
	}
	if !hA.Cancelled() {
		t.Fatal("fired handle does not report cancelled")
	}

	// The free list holds the fired record; this At reuses it.
	hB := e.At(2*time.Millisecond, func(time.Duration) { firedB = true })
	if hA.item != hB.item {
		t.Fatalf("expected record reuse from the free list (pool broken?)")
	}
	if hA.gen == hB.gen {
		t.Fatal("generation did not advance across reuse")
	}
	if hB.Cancelled() {
		t.Fatal("reused record's new handle reports cancelled")
	}
	if !hA.Cancelled() {
		t.Fatal("stale handle resurrected by record reuse")
	}

	e.Cancel(hA) // must be a no-op against the new occupant
	if hB.Cancelled() {
		t.Fatal("cancelling a stale handle cancelled the record's new event")
	}
	e.Run()
	if !firedB {
		t.Fatal("second event did not fire")
	}
}

// TestCancelledEventRecordIsRecycled checks reaped cancellations also bump
// the generation before reuse.
func TestCancelledEventRecordIsRecycled(t *testing.T) {
	var e Engine
	h := e.At(time.Millisecond, func(time.Duration) { t.Error("cancelled event fired") })
	e.Cancel(h)
	fired := false
	e.At(time.Millisecond, func(time.Duration) { fired = true })
	e.Run()
	if !fired {
		t.Fatal("live event did not fire")
	}
	if !h.Cancelled() {
		t.Fatal("cancelled handle reports live after reap")
	}
	h2 := e.At(2*time.Millisecond, func(time.Duration) {})
	if h2.Cancelled() {
		t.Fatal("handle on recycled record reports cancelled")
	}
	e.Cancel(h) // stale; must not touch h2
	if h2.Cancelled() {
		t.Fatal("stale cancel leaked onto recycled record")
	}
}

// TestPoolPreservesDispatchOrder runs enough churn to cycle records through
// the free list repeatedly and checks the (time, seq) total order survives.
func TestPoolPreservesDispatchOrder(t *testing.T) {
	var e Engine
	var got []int
	const n = 500
	// Schedule in two interleaved waves so pops and pushes alternate and the
	// free list is actively exercised mid-run.
	for i := 0; i < n; i++ {
		i := i
		e.At(time.Duration(i)*time.Microsecond, func(now time.Duration) {
			got = append(got, i)
			e.At(now+time.Duration(n)*time.Microsecond, func(time.Duration) {
				got = append(got, n+i)
			})
		})
	}
	e.Run()
	if len(got) != 2*n {
		t.Fatalf("fired %d events, want %d", len(got), 2*n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("dispatch order broken at %d: got %d", i, v)
		}
	}
}

// BenchmarkSteadyStateChurn measures the pooled schedule-fire-reschedule
// cycle that dominates the storage hot path; it should not allocate per
// event once the pool is warm.
func BenchmarkSteadyStateChurn(b *testing.B) {
	var e Engine
	var tick func(now time.Duration)
	remaining := b.N
	tick = func(now time.Duration) {
		if remaining--; remaining > 0 {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(time.Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
