package simkernel

import (
	"math"
	"math/bits"
	"time"
)

// calQueue is a calendar queue (Brown, CACM 1988) with a ladder-style far
// tier, specialized for the kernel's eventItems. The near tier is a ring of
// buckets covering exactly one lap of virtual time, [curStart, limit):
// bucket i holds only items from its own window, unsorted — a push is a
// plain append, min extraction linearly scans the cursor bucket's inline
// keys (a handful of contiguous slots), and removal swaps the last slot
// into the hole. Items at or beyond limit wait in an unsorted far tier and are
// admitted in bulk when the ring drains — each admission pass is O(far)
// with no allocation, so enqueue and dequeue stay O(1) amortized regardless
// of queue size. The split is what survives fleet workloads, whose
// timestamp mix is sharply bimodal (µs-spaced service completions against
// power-policy timers seconds out): no single bucket width covers both, but
// the ring only ever needs to match the density at the cursor.
//
// Two width estimators drive the geometry. While popping, an EWMA of the
// inter-pop gap tracks the density at the cursor, and Pop rebuilds the
// ring whenever the measured insert/scan cost per pop degrades (a regime
// change: burst → idle gap → burst). When the ring drains and the far tier
// takes over, the same pop-rate estimate positions the next lap; the far
// population's span is only the cold-start fallback.
//
// Ordering is the kernel's strict total order (at, then seq), so min
// extraction is deterministic no matter how items landed in a bucket.
// Cancellation is lazy, exactly like the heap path: items keep their
// cancelled flag and are reaped when they surface at the front.
type calQueue struct {
	buckets [][]calSlot
	mask    int  // len(buckets)-1; bucket count is a power of two
	shift   uint // bucket width is 1<<shift nanoseconds
	n       int  // all queued items, both tiers, including cancelled ones
	nNear   int  // items in the ring

	// far holds items with at >= limit, unsorted. limit is base plus one
	// full lap of the ring; base is the lap's origin. Every near item lies
	// in [base, limit) — the strict one-lap invariant — so a bucket only
	// ever holds items from its own window and never aliased ones a lap
	// apart. Pushes before base rebase the lap (exact mode schedules into
	// the past of the cursor after a span merge; free-running mode never
	// does).
	far   []*eventItem
	base  time.Duration
	limit time.Duration

	// Cursor state: the sweep is positioned at bucket curIdx, which covers
	// virtual times [curStart, curStart+width). Pops only ever move the
	// cursor forward; a push behind curStart rewinds it (the kernel pushes
	// in the past of the cursor only after a sparse-queue jump).
	curIdx   int
	curStart time.Duration

	// Peek/Pop pairs dominate the shard event loop, so findMin memoizes its
	// result; any mutation invalidates it.
	memo    *eventItem
	memoB   int
	memoPos int

	// Width calibration: gapEWMA tracks the recent inter-pop gap; ops/cost
	// meter the slots the per-pop min scans touch. scratch stages items
	// during rebuilds so bucket and far backing arrays are reused.
	lastPop time.Duration
	gapEWMA uint64 // ns, ~last 16 pops
	ops     int    // pops since the last calibration check
	cost    int    // slots touched by searches and insertions since then
	stable  int    // pops since the bucket count last changed
	scratch []*eventItem

	// Introspection meters (see ShardStats): lifetime push/pop counts, how
	// often and why the geometry was rebuilt, and both tiers' high-water
	// occupancy. Plain increments on paths that already own the struct.
	pushes     uint64
	pops       uint64
	rebuilds   uint64
	recals     uint64 // rebuilds triggered by cost calibration
	migrations uint64
	farHW      int
	nHW        int
}

// calSlot pairs an item with an inline copy of its ordering key: the
// per-bucket min scans touch only the contiguous slot array, never the
// pooled items they point at. The copy is refreshed by Scan when the
// sharded kernel renumbers sequence numbers in place.
type calSlot struct {
	at  time.Duration
	seq uint64
	it  *eventItem
}

const (
	calMinBuckets = 8
	calMaxBuckets = 1 << 20
	// calGrowFactor bounds ring occupancy: past count×calGrowFactor near
	// items the ring doubles. Shrinking is deliberately slack (n below
	// count/calShrinkFactor) so the drain-to-empty pattern at the end of
	// every run does not thrash through repeated halvings.
	calGrowFactor   = 2
	calShrinkFactor = 8
	// calCalibrateOps / calCostFactor: every calCalibrateOps pops — or as
	// soon as the same cost has accrued, so a geometry gone badly stale is
	// fixed within a few pushes instead of calCalibrateOps pops — if
	// searches and insertions touched more than calCostFactor slots per pop
	// on average, the width no longer fits the event density and the ring
	// is rebuilt.
	calCalibrateOps = 256
	calCostFactor   = 10
	// calCountHysteresis: a rebuild may shrink the bucket count only after
	// this many pops at the current count. Rebuilds that keep the count
	// reuse every backing array and allocate nothing; letting the count
	// ping-pong with each burst/idle regime would reallocate the ring (and
	// all its bucket slices) every cycle.
	calCountHysteresis = 4096
)

// inFar marks an item parked in the far tier. Distinct from `fired` so
// stale-handle checks keep working; never a valid bucket index.
const inFar = -3

func newCalQueue() *calQueue {
	q := &calQueue{}
	q.init()
	return q
}

// init readies a zero calQueue (e.g. one embedded by value in a shard).
func (q *calQueue) init() {
	q.shift = 20 // ~1ms buckets until the first calibration learns better
	q.rebuild(calMinBuckets, q.shift, 0)
}

func (q *calQueue) bucketOf(at time.Duration) int {
	return int(uint64(at)>>q.shift) & q.mask
}

// windowStart returns the start of the bucket window containing at.
func (q *calQueue) windowStart(at time.Duration) time.Duration {
	return at &^ (time.Duration(1)<<q.shift - 1)
}

func (q *calQueue) Len() int { return q.n }

// bucketCountFor rounds the population up to a power of two within the
// ring-size bounds.
func bucketCountFor(n int) int {
	c := calMinBuckets
	for c < n && c < calMaxBuckets {
		c <<= 1
	}
	return c
}

// popShift is the width estimate from the pop-rate EWMA, or ^uint(0) when
// there is no pop history yet. The target width is half the mean inter-pop
// gap: with unsorted buckets every pop at the cursor rescans its whole
// bucket (interleaved pushes keep invalidating the memo), so narrow,
// mostly-empty buckets beat the classic one-pop-per-bucket sizing — an
// empty header costs one length check to skip, a deep bucket costs a
// rescan per pop. Halving again measurably loses: the sweep's empty-header
// skips start to dominate.
func (q *calQueue) popShift() uint {
	ideal := q.gapEWMA / 2
	if ideal == 0 {
		return ^uint(0)
	}
	return clampShift(uint(bits.Len64(ideal)) - 1)
}

func clampShift(s uint) uint {
	if s > 62 {
		return 62
	}
	return s
}

// rebuild reconstructs both tiers with the given bucket count, width and
// cursor origin, redistributing every item against the new one-lap horizon.
// Buckets are unsorted, so redistribution is a single append pass; backing
// arrays — buckets, bucket slices, the far slice — are reused via the
// scratch buffer, so steady-state rebuilds allocate nothing.
func (q *calQueue) rebuild(count int, shift uint, start time.Duration) {
	q.scratch = q.scratch[:0]
	for b, bucket := range q.buckets {
		for i := range bucket {
			q.scratch = append(q.scratch, bucket[i].it)
		}
		q.buckets[b] = bucket[:0]
	}
	q.scratch = append(q.scratch, q.far...)
	q.far = q.far[:0]

	if count != len(q.buckets) {
		// Preserve bucket backing arrays across count changes. A shrink
		// only truncates the header slice, so the tail headers — and the
		// bucket arrays they point at — stay alive in its capacity; a
		// regrowth within capacity gets them back allocation-free. The
		// capacities are the steady-state occupancy the workload already
		// taught us, and burst/idle regime swings retoggle the same counts.
		if count <= cap(q.buckets) {
			q.buckets = q.buckets[:count]
		} else {
			nb := make([][]calSlot, count)
			copy(nb, q.buckets[:cap(q.buckets)])
			q.buckets = nb
		}
		q.mask = count - 1
		q.stable = 0
	}
	q.shift = shift
	q.curStart = start &^ (time.Duration(1)<<shift - 1)
	q.curIdx = q.bucketOf(q.curStart)
	q.base = q.curStart
	span := time.Duration(count) << shift
	q.limit = q.curStart + span
	if span <= 0 || q.limit < q.curStart { // overflowed: ring covers everything
		q.limit = math.MaxInt64
	}
	q.nNear = 0
	q.memo = nil
	q.ops, q.cost = 0, 0
	for _, it := range q.scratch {
		q.place(it)
	}
	q.rebuilds++
	if len(q.far) > q.farHW {
		q.farHW = len(q.far)
	}
}

// place routes one item to its tier; n is not touched.
func (q *calQueue) place(it *eventItem) {
	if it.at >= q.limit {
		it.index = inFar
		q.far = append(q.far, it)
		return
	}
	b := q.bucketOf(it.at)
	it.index = b
	q.buckets[b] = appendSlot(q.buckets[b], calSlot{at: it.at, seq: it.seq, it: it})
	q.nNear++
}

// appendSlot is append with a one-shot starting capacity. Rings hold up to
// a million bucket headers across all shards, and letting each grow through
// the 1→2→4→8 doubling ladder makes slice warmup the top allocation site of
// a whole fleet run; one 8-slot allocation replaces the first four.
func appendSlot(bucket []calSlot, s calSlot) []calSlot {
	if cap(bucket) == 0 {
		bucket = make([]calSlot, 0, 8)
	}
	return append(bucket, s)
}

// Push inserts an item. The item's at and seq must already be set.
func (q *calQueue) Push(it *eventItem) {
	q.memo = nil
	if it.at < q.base {
		// The ring cannot represent a time before its lap origin without
		// aliasing it into a bucket a lap away; rebase the lap there. Only
		// exact-mode pushes behind a merged span ever take this path.
		q.rebuild(len(q.buckets), q.shift, it.at)
	}
	q.pushes++
	q.n++
	if q.n > q.nHW {
		q.nHW = q.n
	}
	if it.at >= q.limit {
		it.index = inFar
		q.far = append(q.far, it)
		if len(q.far) > q.farHW {
			q.farHW = len(q.far)
		}
		return
	}
	if q.nNear >= len(q.buckets)*calGrowFactor && len(q.buckets) < calMaxBuckets {
		q.rebuild(len(q.buckets)*2, q.shift, q.curStart)
		if it.at >= q.limit { // a wider ring cannot shrink the horizon, but stay safe
			it.index = inFar
			q.far = append(q.far, it)
			return
		}
	}
	b := q.bucketOf(it.at)
	it.index = b
	q.buckets[b] = appendSlot(q.buckets[b], calSlot{at: it.at, seq: it.seq, it: it})
	q.nNear++
	if it.at < q.curStart {
		// The cursor has swept past this item's window (possible after a
		// sparse-queue jump far into the future); rewind so the sweep sees it.
		q.curIdx = q.bucketOf(it.at)
		q.curStart = q.windowStart(it.at)
	}
}

// Peek returns the minimum item by (at, seq) without removing it, or nil
// when the queue is empty. Cancelled items are returned like live ones;
// the caller reaps them (mirroring the heap path's reapCancelled).
func (q *calQueue) Peek() *eventItem {
	it, _, _ := q.findMin()
	return it
}

// Pop removes and returns the minimum item, or nil when empty.
func (q *calQueue) Pop() *eventItem {
	if q.ops >= calCalibrateOps || q.cost >= calCalibrateOps*calCostFactor {
		if q.cost > q.ops*calCostFactor && q.n > 4 {
			if s := q.popShift(); s != ^uint(0) {
				count := bucketCountFor(q.nNear)
				if count < len(q.buckets) && q.stable < calCountHysteresis {
					count = len(q.buckets)
				}
				// Rebuild only if calibration actually changes the geometry:
				// a steady workload whose insert depth sits above the cost
				// threshold would otherwise trigger an identical rebuild every
				// few hundred pops, each an O(n) redistribution for nothing.
				if s != q.shift || count != len(q.buckets) {
					q.recals++
					q.rebuild(count, s, q.curStart)
				}
			}
		}
		q.ops, q.cost = 0, 0
	}
	it, b, pos := q.findMin()
	if it == nil {
		return nil
	}
	q.pops++
	// Inter-pop gap EWMA: the pop-rate width estimator. Pops are monotone
	// in at except across a cursor rewind, so negative gaps are skipped.
	if gap := it.at - q.lastPop; gap > 0 {
		q.gapEWMA += uint64(gap)/16 - q.gapEWMA/16
	}
	q.lastPop = it.at
	q.ops++
	q.stable++
	// Swap-remove: buckets are unsorted, so the last slot fills the hole.
	bucket := q.buckets[b]
	last := len(bucket) - 1
	bucket[pos] = bucket[last]
	bucket[last] = calSlot{}
	q.buckets[b] = bucket[:last]
	q.n--
	q.nNear--
	q.memo = nil
	it.index = fired
	if q.n < len(q.buckets)/calShrinkFactor && len(q.buckets) > calMinBuckets &&
		q.stable >= calCountHysteresis {
		q.rebuild(len(q.buckets)/2, q.shift, q.curStart)
	}
	return it
}

// findMin locates the minimum item and its bucket/slot, migrating the far
// tier into the ring first whenever the ring is empty (every far item sits
// at or beyond the ring's horizon, so the ring always holds the minimum).
func (q *calQueue) findMin() (*eventItem, int, int) {
	if q.n == 0 {
		return nil, 0, 0
	}
	if q.memo != nil {
		return q.memo, q.memoB, q.memoPos
	}
	if q.nNear == 0 {
		q.migrate()
	}
	it, b, pos := q.searchMin()
	q.memo, q.memoB, q.memoPos = it, b, pos
	return it, b, pos
}

// migrate advances the ring to the far tier's earliest window. The width
// comes from the pop-rate EWMA — the regime the queue is actually popping
// in — because the far population's span is routinely poisoned by one
// far-future outlier (a rack's next burst tick seconds out behind µs-spaced
// service events): a span-derived width would smear the whole upcoming
// burst into one bucket. The span estimate is only the cold-start fallback.
// If the chosen horizon still leaves items far, they are admitted by a
// later migrate, each pass O(far) and allocation-free; the cursor jumps
// straight to the earliest far window, so sparse phases cost one migrate
// per cluster, not one per lap.
func (q *calQueue) migrate() {
	minAt, maxAt := q.far[0].at, q.far[0].at
	for _, it := range q.far[1:] {
		if it.at < minAt {
			minAt = it.at
		}
		if it.at > maxAt {
			maxAt = it.at
		}
	}
	// Right-size the ring to the population being admitted: an idle-phase
	// cluster (a handful of power timers) gets a minimum ring instead of
	// dragging the previous burst's bucket count through every rebuild.
	// Count changes reuse preserved backing arrays, so resizing here only
	// buys cheaper rebuild sweeps; Push's occupancy growth restores a big
	// ring within one doubling cascade when the next burst arrives.
	count := bucketCountFor(len(q.far))
	shift := q.popShift()
	if shift == ^uint(0) {
		shift = q.shift
		if span := uint64(maxAt - minAt); span > 0 {
			ideal := span * 4 / uint64(len(q.far))
			if ideal == 0 {
				ideal = 1
			}
			shift = clampShift(uint(bits.Len64(ideal)) - 1)
		}
	}
	q.cost += len(q.far)
	q.migrations++
	q.rebuild(count, shift, minAt)
}

// searchMin sweeps the cursor forward one bucket window at a time. The
// first non-empty bucket holds the global ring minimum, because the
// one-lap invariant confines every bucket's items to its own window — so
// the sweep skips empty headers and then min-scans one bucket's inline
// keys. The scan length is charged to the calibration cost meter: deep
// buckets mean the width has gone stale for the density at the cursor.
// A fruitless full lap is only possible if the invariant was disturbed
// (exact-mode pushes into the past of a rewound cursor); the direct scan
// restores it by repositioning the cursor.
func (q *calQueue) searchMin() (*eventItem, int, int) {
	width := time.Duration(1) << q.shift
	idx, start := q.curIdx, q.curStart
	for lap := 0; lap <= q.mask; lap++ {
		q.cost++
		if bucket := q.buckets[idx]; len(bucket) > 0 {
			if bucket[0].at < start+width {
				q.curIdx, q.curStart = idx, start
				pos := bucketMin(bucket)
				q.cost += len(bucket)
				return bucket[pos].it, idx, pos
			}
		}
		idx = (idx + 1) & q.mask
		start += width
	}
	q.cost += len(q.buckets)
	return q.directMin()
}

// bucketMin returns the slot index of the bucket's (at, seq) minimum.
func bucketMin(bucket []calSlot) int {
	pos := 0
	at, seq := bucket[0].at, bucket[0].seq
	for i := 1; i < len(bucket); i++ {
		s := &bucket[i]
		if s.at < at || (s.at == at && s.seq < seq) {
			pos, at, seq = i, s.at, s.seq
		}
	}
	return pos
}

// directMin scans every ring slot for the global minimum — the fallback
// after a fruitless lap — and repositions the cursor at its window.
func (q *calQueue) directMin() (*eventItem, int, int) {
	var best *calSlot
	bIdx, bPos := 0, 0
	for b, bucket := range q.buckets {
		if len(bucket) == 0 {
			continue
		}
		pos := bucketMin(bucket)
		it := &bucket[pos]
		if best == nil || it.at < best.at || (it.at == best.at && it.seq < best.seq) {
			best, bIdx, bPos = it, b, pos
		}
	}
	q.curIdx = q.bucketOf(best.at)
	q.curStart = q.windowStart(best.at)
	return best.it, bIdx, bPos
}

// Scan calls fn for every queued item in unspecified order, across both
// tiers. The sharded kernel uses it to renumber provisional sequence
// numbers after a span merge; rewriting seq in place is safe because
// renumbering never changes the relative (at, seq) order of any queued
// pair. Slot key copies are refreshed after each callback so bucket order
// stays coherent with the rewritten items.
func (q *calQueue) Scan(fn func(*eventItem)) {
	for _, bucket := range q.buckets {
		for i := range bucket {
			it := bucket[i].it
			fn(it)
			bucket[i].at, bucket[i].seq = it.at, it.seq
		}
	}
	for _, it := range q.far {
		fn(it)
	}
}
