package simkernel

import (
	"testing"
	"time"

	"repro/internal/core"
)

func benchArrivals(n int) []core.Request {
	reqs := make([]core.Request, n)
	for i := range reqs {
		reqs[i] = core.Request{
			ID:      core.RequestID(i),
			Block:   core.BlockID(i % 64),
			Arrival: time.Duration(i) * time.Millisecond,
		}
	}
	return reqs
}

// BenchmarkSchedulePerEvent is the pre-Preload arrival path: one heap push
// and one closure per request.
func BenchmarkSchedulePerEvent(b *testing.B) {
	reqs := benchArrivals(10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		fired := 0
		for _, r := range reqs {
			r := r
			e.At(r.Arrival, func(time.Duration) { fired++ })
		}
		e.Run()
		if fired != len(reqs) {
			b.Fatalf("fired %d of %d", fired, len(reqs))
		}
	}
}

// BenchmarkSchedulePreloaded is the same workload through Preload: one
// sorted run merged lazily with the heap.
func BenchmarkSchedulePreloaded(b *testing.B) {
	reqs := benchArrivals(10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		fired := 0
		e.Preload(reqs, func(core.Request, time.Duration) { fired++ })
		e.Run()
		if fired != len(reqs) {
			b.Fatalf("fired %d of %d", fired, len(reqs))
		}
	}
}

// BenchmarkScheduleMixed interleaves a preloaded arrival run with per-event
// heap traffic (the shape of a real simulation: one run of arrivals plus
// disk timers scheduled on the fly).
func BenchmarkScheduleMixed(b *testing.B) {
	reqs := benchArrivals(10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		fired := 0
		e.Preload(reqs, func(r core.Request, now time.Duration) {
			fired++
			if r.ID%8 == 0 {
				e.After(3*time.Millisecond, func(time.Duration) { fired++ })
			}
		})
		e.Run()
	}
}
