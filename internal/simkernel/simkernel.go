// Package simkernel provides a deterministic discrete-event simulation
// kernel: a virtual clock and a priority event queue.
//
// It replaces the role OMNeT++ plays in the paper's evaluation (Section 4).
// Events scheduled for the same instant fire in FIFO order of scheduling,
// which keeps runs bit-for-bit reproducible for a fixed seed.
package simkernel

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a callback executed at a virtual time.
type Event func(now time.Duration)

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	item *eventItem
}

// Cancelled reports whether the handle's event has been cancelled or already
// fired. A zero Handle reports true.
func (h Handle) Cancelled() bool {
	return h.item == nil || h.item.cancelled || h.item.index == fired
}

type eventItem struct {
	at        time.Duration
	seq       uint64
	fn        Event
	index     int // heap index, or `fired` once popped
	cancelled bool
}

const fired = -2

type eventHeap []*eventItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*eventItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = fired
	*h = old[:n-1]
	return it
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// ErrPast is returned when an event is scheduled before the current virtual
// time.
var ErrPast = errors.New("simkernel: event scheduled in the past")

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events still queued (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a simulator bug, never an input problem.
func (e *Engine) At(t time.Duration, fn Event) Handle {
	if t < e.now {
		panic(fmt.Errorf("%w: at=%s now=%s", ErrPast, t, e.now))
	}
	it := &eventItem{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, it)
	return Handle{item: it}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// Cancel prevents the handled event from firing. Cancelling an already-fired
// or zero handle is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.item == nil || h.item.index == fired {
		return
	}
	h.item.cancelled = true
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the next non-cancelled event, advancing the clock. It
// returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*eventItem)
		if it.cancelled {
			continue
		}
		e.now = it.at
		e.fired++
		it.fn(e.now)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called, and
// returns the final virtual time.
func (e *Engine) Run() time.Duration {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline; the clock is then
// advanced to the deadline even if no event fired exactly there.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	e.halted = false
	for !e.halted {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}
