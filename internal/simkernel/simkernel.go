// Package simkernel provides a deterministic discrete-event simulation
// kernel: a virtual clock and a priority event queue.
//
// It replaces the role OMNeT++ plays in the paper's evaluation (Section 4).
// Events scheduled for the same instant fire in FIFO order of scheduling,
// which keeps runs bit-for-bit reproducible for a fixed seed.
package simkernel

import (
	"container/heap"
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/core"
)

// Event is a callback executed at a virtual time.
type Event func(now time.Duration)

// Sim is the scheduling surface a simulated component needs: a clock plus
// schedule/cancel. Both the serial Engine and a sharded kernel's per-shard
// ShardView implement it, so a disk model written against Sim runs
// unchanged on either kernel.
type Sim interface {
	Now() time.Duration
	At(t time.Duration, fn Event) Handle
	After(d time.Duration, fn Event) Handle
	Cancel(h Handle)
}

// Kernel is the full run-loop surface the storage layer drives: Sim plus
// batch preloading and execution control. *Engine and *Sharded both satisfy
// it; storage picks one per Config.Shards.
type Kernel interface {
	Sim
	Preload(reqs []core.Request, fn func(core.Request, time.Duration))
	Step() bool
	RunUntil(deadline time.Duration) time.Duration
	Halt()
	Fired() uint64
	SetProbe(fn func(now time.Duration, fired uint64))
	Telemetry() *KernelStats
}

// Handle identifies a scheduled event so it can be cancelled. Handles carry
// the item's generation at scheduling time: fired items return to the
// engine's free list and are reused by later At calls, so a stale handle is
// detected by a generation mismatch rather than a dangling pointer.
type Handle struct {
	item *eventItem
	gen  uint64
}

// Cancelled reports whether the handle's event has been cancelled or already
// fired. A zero Handle reports true.
func (h Handle) Cancelled() bool {
	return h.item == nil || h.item.gen != h.gen || h.item.cancelled || h.item.index == fired
}

type eventItem struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	fn        Event
	index     int // heap index (or calendar bucket), or `fired` once popped
	cancelled bool
	owner     int32 // owning shard index, or ownerSerial for a standalone Engine
}

const ownerSerial = -1

const fired = -2

type eventHeap []*eventItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*eventItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = fired
	*h = old[:n-1]
	return it
}

// preloadEvent is one entry of a preloaded arrival run: a request delivery
// at a fixed time, carrying the sequence number it would have received from
// an equivalent At call.
type preloadEvent struct {
	at  time.Duration
	seq uint64
	req core.Request
}

// preloadRun is a sorted batch of request deliveries installed by Preload.
// Runs live outside the heap and are merged lazily: the dispatcher compares
// each run's head against the heap's top, so a run of n arrivals costs one
// slice and zero heap operations instead of n eventItem allocations and
// n pushes.
type preloadRun struct {
	events []preloadEvent
	fn     func(core.Request, time.Duration)
	next   int
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now       time.Duration
	seq       uint64
	seqRef    *uint64 // when non-nil, sequence numbers come from here (shared counter)
	queue     eventHeap
	runs      []preloadRun
	free      []*eventItem // recycled event records (see alloc/release)
	fired     uint64
	cancelled int
	halted    bool
	probe     func(now time.Duration, fired uint64)

	// Introspection counters (see Telemetry): heap occupancy high-water and
	// event-pool blocks ever allocated.
	queueHW    int
	poolBlocks int
}

// takeSeq reserves n consecutive sequence numbers and returns the first.
// A sharded kernel points seqRef at its global counter so its coordinator
// engine draws from the same ordering domain as the shards; a standalone
// engine uses its own field.
func (e *Engine) takeSeq(n uint64) uint64 {
	if e.seqRef != nil {
		s := *e.seqRef
		*e.seqRef += n
		return s
	}
	s := e.seq
	e.seq += n
	return s
}

// alloc takes an event record off the free list, growing it a block at a
// time: steady-state simulation (the storage hot path schedules one service
// completion per request plus idle/spin timers) reuses records instead of
// allocating one per event, and a cold engine pays one allocation per
// poolBlock events rather than per event.
const poolBlock = 64

func (e *Engine) alloc() *eventItem {
	if n := len(e.free); n > 0 {
		it := e.free[n-1]
		e.free = e.free[:n-1]
		return it
	}
	e.poolBlocks++
	block := make([]eventItem, poolBlock)
	for i := range block {
		block[i].owner = ownerSerial
	}
	for i := poolBlock - 1; i > 0; i-- {
		e.free = append(e.free, &block[i])
	}
	return &block[0]
}

// release returns a popped record to the free list. Bumping the generation
// invalidates every outstanding Handle to the record before it is reused;
// dropping the callback releases whatever the closure captured.
func (e *Engine) release(it *eventItem) {
	it.gen++
	it.fn = nil
	e.free = append(e.free, it)
}

// SetProbe installs an observer called after every executed event with the
// new virtual time and the cumulative fired count. The observability layer
// uses it to keep sim-time and event-throughput gauges current; a nil
// probe (the default) costs one branch per event. The probe must not
// schedule or cancel events.
func (e *Engine) SetProbe(fn func(now time.Duration, fired uint64)) { e.probe = fn }

// ErrPast is returned when an event is scheduled before the current virtual
// time.
var ErrPast = errors.New("simkernel: event scheduled in the past")

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events still queued, counting preloaded
// arrivals not yet delivered and cancelled events not yet reaped. Cancelled
// events stay in the heap until the dispatcher reaches them (Cancel is O(1)
// because it runs on the disk submit hot path); use Live for the count that
// excludes them.
func (e *Engine) Pending() int {
	n := len(e.queue)
	for i := range e.runs {
		n += len(e.runs[i].events) - e.runs[i].next
	}
	return n
}

// Live returns the number of events that will still fire: Pending minus
// cancelled-but-unreaped events.
func (e *Engine) Live() int { return e.Pending() - e.cancelled }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a simulator bug, never an input problem.
func (e *Engine) At(t time.Duration, fn Event) Handle {
	if t < e.now {
		panic(fmt.Errorf("%w: at=%s now=%s", ErrPast, t, e.now))
	}
	it := e.alloc()
	it.at, it.seq, it.fn, it.cancelled = t, e.takeSeq(1), fn, false
	heap.Push(&e.queue, it)
	if len(e.queue) > e.queueHW {
		e.queueHW = len(e.queue)
	}
	return Handle{item: it, gen: it.gen}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// Preload schedules delivery of every request at its arrival time, calling
// fn(request, now) as each fires. It is equivalent to an At call per
// request — preloaded deliveries interleave with heap events in exactly the
// (time, scheduling-order) sequence those At calls would produce — but
// stores the batch as one sorted run merged lazily with the heap, costing
// one allocation instead of a heap push per request. Arrivals before the
// current virtual time panic like At; preloaded deliveries cannot be
// cancelled.
func (e *Engine) Preload(reqs []core.Request, fn func(core.Request, time.Duration)) {
	if fn == nil {
		panic("simkernel: Preload with nil fn")
	}
	if len(reqs) == 0 {
		return
	}
	events := make([]preloadEvent, len(reqs))
	base := e.takeSeq(uint64(len(reqs)))
	for i, r := range reqs {
		if r.Arrival < e.now {
			panic(fmt.Errorf("%w: at=%s now=%s", ErrPast, r.Arrival, e.now))
		}
		events[i] = preloadEvent{at: r.Arrival, seq: base + uint64(i), req: r}
	}
	// Traces are normally arrival-ordered already; the sort (by the same
	// (time, seq) order the dispatcher uses, a strict total order since seq
	// is unique) only pays when they are not.
	if !slices.IsSortedFunc(events, cmpPreload) {
		slices.SortFunc(events, cmpPreload)
	}
	e.runs = append(e.runs, preloadRun{events: events, fn: fn})
}

func cmpPreload(a, b preloadEvent) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	switch {
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// Cancel prevents the handled event from firing. Cancelling an already-fired
// or zero handle is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.item == nil || h.item.gen != h.gen || h.item.index == fired || h.item.cancelled {
		return
	}
	h.item.cancelled = true
	e.cancelled++
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// reapCancelled pops cancelled events off the heap top so e.queue[0], when
// present, is live.
func (e *Engine) reapCancelled() {
	for len(e.queue) > 0 && e.queue[0].cancelled {
		e.release(heap.Pop(&e.queue).(*eventItem))
		e.cancelled--
	}
}

// nextSource locates the earliest live event in (time, seq) order: the
// index of the preload run holding it, or srcHeap for the heap top. The
// run list stays tiny (one entry per Preload batch), so the scan is a few
// comparisons, far cheaper than keeping arrivals heapified.
const srcHeap = -1

func (e *Engine) nextSource() (int, bool) {
	e.reapCancelled()
	src, have := srcHeap, false
	var at time.Duration
	var seq uint64
	if len(e.queue) > 0 {
		at, seq, have = e.queue[0].at, e.queue[0].seq, true
	}
	for i := range e.runs {
		r := &e.runs[i]
		ev := r.events[r.next]
		if !have || ev.at < at || (ev.at == at && ev.seq < seq) {
			src, at, seq, have = i, ev.at, ev.seq, true
		}
	}
	return src, have
}

// Step executes the next non-cancelled event, advancing the clock. It
// returns false when the queue is empty.
func (e *Engine) Step() bool {
	src, ok := e.nextSource()
	if !ok {
		return false
	}
	if src >= 0 {
		r := &e.runs[src]
		ev := r.events[r.next]
		r.next++
		fn := r.fn
		if r.next == len(r.events) {
			e.runs = slices.Delete(e.runs, src, src+1)
		}
		e.now = ev.at
		e.fired++
		if e.probe != nil {
			e.probe(e.now, e.fired)
		}
		fn(ev.req, e.now)
		return true
	}
	it := heap.Pop(&e.queue).(*eventItem)
	fn := it.fn
	e.now = it.at
	e.fired++
	// Recycle before dispatch: fn may schedule new events, and the record is
	// free for them — any handle to the fired event is invalidated by the
	// generation bump.
	e.release(it)
	if e.probe != nil {
		e.probe(e.now, e.fired)
	}
	fn(e.now)
	return true
}

// Run executes events until the queue is empty or Halt is called, and
// returns the final virtual time.
func (e *Engine) Run() time.Duration {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline; the clock is then
// advanced to the deadline even if no event fired exactly there.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	e.halted = false
	for !e.halted {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (time.Duration, bool) {
	src, ok := e.nextSource()
	if !ok {
		return 0, false
	}
	if src >= 0 {
		r := &e.runs[src]
		return r.events[r.next].at, true
	}
	return e.queue[0].at, true
}

// peekKey returns the full (time, seq) ordering key of the next live event.
// The sharded kernel uses it to bound each shard span: shard events with
// keys below the coordinator's next key are independent of it and may run
// early.
func (e *Engine) peekKey() (time.Duration, uint64, bool) {
	src, ok := e.nextSource()
	if !ok {
		return 0, 0, false
	}
	if src >= 0 {
		ev := e.runs[src].events[e.runs[src].next]
		return ev.at, ev.seq, true
	}
	return e.queue[0].at, e.queue[0].seq, true
}

var (
	_ Sim    = (*Engine)(nil)
	_ Kernel = (*Engine)(nil)
)
