package simkernel

import (
	"math/rand"

	"repro/internal/core"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineZeroValueReady(t *testing.T) {
	t.Parallel()
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
	if e.Step() {
		t.Fatal("Step() on empty queue = true, want false")
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	t.Parallel()
	var e Engine
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d * time.Second
		e.At(d, func(now time.Duration) { got = append(got, now) })
	}
	end := e.Run()
	if end != 5*time.Second {
		t.Errorf("Run() end = %v, want 5s", end)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("fired %d events, want 5", len(got))
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	t.Parallel()
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(time.Duration) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant ordering broken: got %v", got)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	t.Parallel()
	var e Engine
	var fired time.Duration
	e.At(2*time.Second, func(time.Duration) {
		e.After(3*time.Second, func(now time.Duration) { fired = now })
	})
	e.Run()
	if fired != 5*time.Second {
		t.Errorf("nested After fired at %v, want 5s", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	t.Parallel()
	var e Engine
	ran := false
	h := e.At(time.Second, func(time.Duration) { ran = true })
	if h.Cancelled() {
		t.Fatal("fresh handle reports cancelled")
	}
	e.Cancel(h)
	if !h.Cancelled() {
		t.Fatal("cancelled handle reports live")
	}
	e.Run()
	if ran {
		t.Error("cancelled event fired")
	}
}

func TestEngineCancelIsIdempotent(t *testing.T) {
	t.Parallel()
	var e Engine
	h := e.At(time.Second, func(time.Duration) {})
	e.Cancel(h)
	e.Cancel(h)
	e.Cancel(Handle{}) // zero handle
	e.Run()
}

func TestEngineHalt(t *testing.T) {
	t.Parallel()
	var e Engine
	count := 0
	e.At(1*time.Second, func(time.Duration) { count++; e.Halt() })
	e.At(2*time.Second, func(time.Duration) { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("fired %d events after Halt, want 1", count)
	}
	// A second Run resumes.
	e.Run()
	if count != 2 {
		t.Fatalf("fired %d events total, want 2", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	t.Parallel()
	var e Engine
	e.At(5*time.Second, func(time.Duration) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(time.Second, func(time.Duration) {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	t.Parallel()
	var e Engine
	var fired []time.Duration
	for _, s := range []time.Duration{1, 2, 3, 7} {
		s := s * time.Second
		e.At(s, func(now time.Duration) { fired = append(fired, now) })
	}
	end := e.RunUntil(5 * time.Second)
	if end != 5*time.Second {
		t.Errorf("RunUntil end = %v, want 5s", end)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events, want 3 (the 7s event is beyond the deadline)", len(fired))
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("resume after RunUntil fired %d total, want 4", len(fired))
	}
}

func TestEngineRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	t.Parallel()
	var e Engine
	e.RunUntil(42 * time.Second)
	if e.Now() != 42*time.Second {
		t.Errorf("Now() = %v, want 42s", e.Now())
	}
}

func TestEngineFiredCounter(t *testing.T) {
	t.Parallel()
	var e Engine
	for i := 0; i < 7; i++ {
		e.At(time.Duration(i)*time.Second, func(time.Duration) {})
	}
	h := e.At(8*time.Second, func(time.Duration) {})
	e.Cancel(h)
	e.Run()
	if e.Fired() != 7 {
		t.Errorf("Fired() = %d, want 7", e.Fired())
	}
}

// Property: for any random multiset of event times, events fire in
// nondecreasing time order and all non-cancelled events fire exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		count := int(n)%64 + 1
		var fired []time.Duration
		for i := 0; i < count; i++ {
			at := time.Duration(rng.Int63n(int64(time.Hour)))
			e.At(at, func(now time.Duration) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != count {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1024; j++ {
			e.At(time.Duration(j%97)*time.Millisecond, func(time.Duration) {})
		}
		e.Run()
	}
}

// TestProbeSeesEveryExecutedEvent pins the SetProbe contract: the probe
// fires after every executed event — heap-scheduled and preloaded alike —
// with the post-execution clock and a fired count that increments by one
// each call.
func TestProbeSeesEveryExecutedEvent(t *testing.T) {
	var e Engine
	type obs struct {
		now   time.Duration
		fired uint64
	}
	var seen []obs
	e.SetProbe(func(now time.Duration, fired uint64) {
		seen = append(seen, obs{now, fired})
	})
	e.At(3*time.Second, func(time.Duration) {})
	e.At(1*time.Second, func(time.Duration) {})
	e.Preload(requestsAt(2*time.Second, 4*time.Second), func(core.Request, time.Duration) {})
	e.Run()
	want := []obs{
		{1 * time.Second, 1},
		{2 * time.Second, 2},
		{3 * time.Second, 3},
		{4 * time.Second, 4},
	}
	if len(seen) != len(want) {
		t.Fatalf("probe called %d times, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("probe call %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
	if e.Fired() != uint64(len(want)) {
		t.Errorf("Fired() = %d, want %d", e.Fired(), len(want))
	}
}

// TestProbeFiresBeforeEventBody documents the ordering the storage layer
// relies on: gauge updates installed via SetProbe observe the new clock
// before the event's own callback runs.
func TestProbeFiresBeforeEventBody(t *testing.T) {
	var e Engine
	var order []string
	e.SetProbe(func(time.Duration, uint64) { order = append(order, "probe") })
	e.At(time.Second, func(time.Duration) { order = append(order, "event") })
	e.Run()
	if len(order) != 2 || order[0] != "probe" || order[1] != "event" {
		t.Fatalf("order = %v, want [probe event]", order)
	}
}

// requestsAt builds a minimal arrival run for Preload-based probe tests.
func requestsAt(times ...time.Duration) []core.Request {
	reqs := make([]core.Request, len(times))
	for i, at := range times {
		reqs[i] = core.Request{ID: core.RequestID(i), Arrival: at}
	}
	return reqs
}
