package simkernel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Sharded is a conservatively synchronized parallel simulation kernel that
// produces results byte-identical to the serial Engine at any shard or
// worker count.
//
// The event population is split in two ordering domains:
//
//   - Shard events live in per-shard calendar queues. A shard owns a
//     contiguous stripe of disks (the same striping as placement.RackOf),
//     and disk events only ever schedule or cancel events on their own
//     disk, so shards never interact directly.
//   - Coordinator events — preloaded arrivals, batch ticks, failure
//     injections: anything that reads or writes cross-disk state — live in
//     an embedded serial Engine that shares the global sequence counter.
//
// Execution alternates between coordinator events and "spans": the next
// coordinator key (time, seq) is a lower bound on any future cross-shard
// influence, so every shard event strictly below that key is independent
// and may run early, concurrently across shards. That key is the epoch's
// lookahead bound. Within a span each shard executes its own events in
// local (time, seq) order; side effects that touch shared state are
// buffered via ShardView.Defer and replayed afterwards in the exact global
// order the serial kernel would have produced (see mergeSpans), which is
// what makes traces, metrics, and response-time sample orders bit-for-bit
// identical.
type Sharded struct {
	coord    Engine // coordinator: cross-shard events + preloaded arrivals
	seq      uint64 // global sequence counter; coord draws from it via seqRef
	now      time.Duration
	fired    uint64
	halted   bool
	inSpan   bool
	freeRun  bool
	workers  int
	numDisks int
	shards   []*shard
	active   []*shard // scratch for span assembly
	probe    func(now time.Duration, fired uint64)

	// Wall-clock telemetry (see EnableTelemetry): drain wall and
	// deferred-effect merge time, accumulated on the coordinator goroutine.
	telemetry bool
	wallNS    int64
	mergeNS   int64
}

// provSeqBase is the first provisional sequence number. Events scheduled
// inside a span cannot draw from the global counter without racing, so the
// scheduling shard assigns provBase+k (k = shard-local scheduling order)
// and the post-span merge rewrites each to the real value the serial kernel
// would have assigned. Real sequence numbers stay far below 1<<63 for any
// feasible run, so the two ranges never collide, and provisional numbers
// compare after real ones at equal timestamps — exactly the serial order,
// since an event scheduled during a span is necessarily scheduled later
// than any event that was already queued when the span began.
const provSeqBase = uint64(1) << 63

// execRec records one executed shard event during a span: its ordering key
// (seq may be provisional), the provisional numbers it assigned to children
// [provA, provB), and its buffered effects [fxA, fxB).
type execRec struct {
	at           time.Duration
	seq          uint64
	provA, provB uint32
	fxA, fxB     int32
}

// shard is one sub-kernel: a calendar queue, a private event arena (the
// PR-5 generation-counted pool, duplicated per shard so shards never
// contend on a free list), and the span bookkeeping.
type shard struct {
	idx       int32
	q         calQueue
	free      []*eventItem
	now       time.Duration
	cancelled int
	provSeq   uint64 // next provisional seq; reset to provSeqBase after each merge
	execs     []execRec
	head      int
	effects   []func()
	remap     []uint64 // provisional index -> real seq, filled during merge
	fired     uint64   // free-running mode's local event count
	// slot holds the earliest event scheduled since the last consume in
	// free-running mode: self-chaining workloads (a generator tick
	// scheduling the next tick, a service completion starting the next
	// service) usually schedule the very event that fires next, and the
	// slot lets it bypass the calendar queue's push/pop round trip
	// entirely. Never populated outside RunFree.
	slot *eventItem
	view ShardView

	// Introspection counters (see ShardStats).
	firedTotal     uint64 // lifetime events, surviving RunFree's fold-and-reset
	poolBlocks     int    // event-arena blocks ever allocated
	spanRounds     uint64 // exact-mode spans this shard executed events in
	lookaheadWaits uint64 // spans it held events above the lookahead bound
	deferred       uint64 // deferred effects replayed by mergeSpans
	replayHW       int    // deepest single-span effect replay
	slotHits       uint64 // free-running slot fast-path consumes
	telem          *shardTimes
}

// inSlot marks an item held in a shard's fast-path slot: not in either
// calendar tier, not yet fired, still cancellable.
const inSlot = -4

// NewSharded builds a kernel with numShards sub-kernels over numDisks
// disks. workers caps the goroutines used per span; workers <= 0 means
// GOMAXPROCS. Shard counts are clamped to [1, numDisks].
func NewSharded(numDisks, numShards, workers int) *Sharded {
	if numDisks < 1 {
		panic(fmt.Sprintf("simkernel: NewSharded with %d disks", numDisks))
	}
	if numShards < 1 {
		numShards = 1
	}
	if numShards > numDisks {
		numShards = numDisks
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	se := &Sharded{workers: workers, numDisks: numDisks}
	se.coord.seqRef = &se.seq
	// The coordinator's probe shim folds its executions into the global
	// clock and event count so Fired() and the storage probe see one
	// stream, exactly as the serial kernel reports it.
	se.coord.SetProbe(func(now time.Duration, _ uint64) {
		se.now = now
		se.fired++
		if se.probe != nil {
			se.probe(se.now, se.fired)
		}
	})
	se.shards = make([]*shard, numShards)
	se.active = make([]*shard, 0, numShards)
	for i := range se.shards {
		sh := &shard{idx: int32(i), provSeq: provSeqBase}
		sh.q.init()
		sh.view = ShardView{se: se, sh: sh}
		se.shards[i] = sh
	}
	return se
}

// ShardOf returns the shard owning a disk: the same contiguous striping as
// placement.RackOf, so rack topology maps onto shards with rack r's disks
// never straddling a shard boundary when the rack count divides evenly.
func ShardOf(d core.DiskID, numDisks, numShards int) int {
	per := numDisks / numShards
	s := int(d) / per
	if s >= numShards {
		s = numShards - 1
	}
	return s
}

// ShardRange returns the contiguous disk range [base, base+count) owned by
// shard s under the ShardOf striping: every shard owns numDisks/numShards
// disks, with the final shard absorbing any remainder.
func ShardRange(numDisks, numShards, s int) (base, count int) {
	per := numDisks / numShards
	base = s * per
	count = per
	if s == numShards-1 {
		count = numDisks - base
	}
	return base, count
}

// NumShards returns the number of sub-kernels.
func (se *Sharded) NumShards() int { return len(se.shards) }

// DiskSim returns the scheduling surface for a disk: the ShardView of the
// shard that owns it. Views are shared by all disks of a shard.
func (se *Sharded) DiskSim(d core.DiskID) *ShardView {
	return &se.shards[ShardOf(d, se.numDisks, len(se.shards))].view
}

// --- Kernel surface (serial phase only) ---

// Now returns the current virtual time.
func (se *Sharded) Now() time.Duration { return se.now }

// At schedules a coordinator event: one that may touch cross-shard state.
// It must not be called while a span is executing.
func (se *Sharded) At(t time.Duration, fn Event) Handle {
	if t < se.now {
		panic(fmt.Errorf("%w: at=%s now=%s", ErrPast, t, se.now))
	}
	return se.coord.At(t, fn)
}

// After schedules a coordinator event d after the current virtual time.
func (se *Sharded) After(d time.Duration, fn Event) Handle {
	return se.At(se.now+d, fn)
}

// Preload installs a batch of request deliveries as coordinator events.
func (se *Sharded) Preload(reqs []core.Request, fn func(core.Request, time.Duration)) {
	se.coord.Preload(reqs, fn)
}

// Cancel prevents a scheduled event from firing, routing the bookkeeping to
// the engine that owns the item (a shard or the coordinator).
func (se *Sharded) Cancel(h Handle) {
	it := h.item
	if it == nil || it.gen != h.gen || it.index == fired || it.cancelled {
		return
	}
	it.cancelled = true
	if it.owner >= 0 {
		se.shards[it.owner].cancelled++
	} else {
		se.coord.cancelled++
	}
}

// Halt stops RunUntil after the current event completes. Like the serial
// kernel it takes effect between events; it must be called from coordinator
// events or probes, not from inside a span.
func (se *Sharded) Halt() { se.halted = true }

// Fired returns the number of events executed so far, identical to the
// serial kernel's count for the same workload.
func (se *Sharded) Fired() uint64 { return se.fired }

// SetProbe installs the per-event observer. In exact (span-merged) mode the
// probe fires for every event in canonical global order with the same
// (now, fired) pairs as the serial kernel. Free-running mode does not
// support probes.
func (se *Sharded) SetProbe(fn func(now time.Duration, fired uint64)) { se.probe = fn }

// keyLess orders two events by the kernel's strict total order.
func keyLess(a1 time.Duration, s1 uint64, a2 time.Duration, s2 uint64) bool {
	return a1 < a2 || (a1 == a2 && s1 < s2)
}

// peekLive returns the shard's next live event, reaping cancelled ones.
func (sh *shard) peekLive() *eventItem {
	for {
		it := sh.q.Peek()
		if it == nil || !it.cancelled {
			return it
		}
		sh.q.Pop()
		sh.cancelled--
		sh.release(it)
	}
}

func (sh *shard) alloc() *eventItem {
	if n := len(sh.free); n > 0 {
		it := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return it
	}
	sh.poolBlocks++
	block := make([]eventItem, poolBlock)
	for i := range block {
		block[i].owner = sh.idx
	}
	for i := poolBlock - 1; i > 0; i-- {
		sh.free = append(sh.free, &block[i])
	}
	return &block[0]
}

func (sh *shard) release(it *eventItem) {
	it.gen++
	it.fn = nil
	sh.free = append(sh.free, it)
}

// Step executes the single globally next event — coordinator or shard — in
// serial phase. The storage layer's drain loop uses it; it is not the fast
// path.
func (se *Sharded) Step() bool {
	cAt, cSeq, cOK := se.coord.peekKey()
	var best *shard
	var bestIt *eventItem
	for _, sh := range se.shards {
		it := sh.peekLive()
		if it == nil {
			continue
		}
		if bestIt == nil || keyLess(it.at, it.seq, bestIt.at, bestIt.seq) {
			best, bestIt = sh, it
		}
	}
	if cOK && (bestIt == nil || keyLess(cAt, cSeq, bestIt.at, bestIt.seq)) {
		return se.coord.Step()
	}
	if bestIt == nil {
		return false
	}
	se.execInline(best, bestIt)
	return true
}

// execInline runs one shard event in serial phase: real sequence numbers,
// direct effects, global clock.
func (se *Sharded) execInline(sh *shard, it *eventItem) {
	sh.q.Pop()
	at, fn := it.at, it.fn
	sh.now, se.now = at, at
	se.fired++
	sh.firedTotal++
	sh.release(it)
	if se.probe != nil {
		se.probe(se.now, se.fired)
	}
	fn(at)
}

// RunUntil executes all events with timestamps <= deadline in canonical
// order, then advances the clock to the deadline. Equivalent to the serial
// kernel's RunUntil, event for event.
func (se *Sharded) RunUntil(deadline time.Duration) time.Duration {
	se.halted = false
	for !se.halted {
		cAt, cSeq, cOK := se.coord.peekKey()
		if !cOK || cAt > deadline {
			// No coordinator event inside the horizon: settle every shard
			// event at or before it. boundSeq ^uint64(0) makes the bound
			// exclusive only in seq, i.e. "all events with at <= deadline".
			se.runSpan(deadline, ^uint64(0))
			break
		}
		// Every shard event strictly below the coordinator's key is
		// independent of it; run those, then the coordinator event itself.
		se.runSpan(cAt, cSeq)
		if se.halted {
			break
		}
		se.coord.Step()
	}
	if se.now < deadline {
		se.now = deadline
	}
	return se.now
}

// runSpan executes every shard event with key strictly below the bound.
// Shards cannot schedule onto other shards, so a single pass settles the
// span: afterwards no shard holds an event below the bound.
func (se *Sharded) runSpan(boundAt time.Duration, boundSeq uint64) {
	active := se.active[:0]
	for _, sh := range se.shards {
		it := sh.peekLive()
		if it == nil {
			continue
		}
		if keyLess(it.at, it.seq, boundAt, boundSeq) {
			active = append(active, sh)
			sh.spanRounds++
		} else {
			sh.lookaheadWaits++
		}
	}
	switch len(active) {
	case 0:
		return
	case 1:
		// One shard active: its events are already globally ordered, so run
		// them inline with real sequence numbers and direct effects. This is
		// the common case between consecutive arrivals and keeps the merge
		// machinery off the serial-dominated paths.
		sh := active[0]
		for {
			it := sh.peekLive()
			if it == nil || !keyLess(it.at, it.seq, boundAt, boundSeq) {
				return
			}
			se.execInline(sh, it)
		}
	}
	se.inSpan = true
	var spanStart time.Time
	if se.telemetry {
		spanStart = time.Now()
	}
	if se.workers <= 1 || len(active) == 1 {
		for _, sh := range active {
			if sh.telem != nil && se.telemetry {
				sh.runSpanLocalTimed(boundAt, boundSeq)
			} else {
				sh.runSpanLocal(boundAt, boundSeq)
			}
		}
	} else {
		timed := se.telemetry
		var next atomic.Int32
		var wg sync.WaitGroup
		n := min(se.workers, len(active))
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(active) {
						return
					}
					if timed {
						active[i].runSpanLocalTimed(boundAt, boundSeq)
					} else {
						active[i].runSpanLocal(boundAt, boundSeq)
					}
				}
			}()
		}
		wg.Wait()
	}
	se.inSpan = false
	if se.telemetry {
		// Barrier stall: the span holds every active shard until the slowest
		// one (or the worker pool) finishes; the gap between a shard's own
		// span wall and the barrier wall is its sync-stall time.
		spanWall := int64(time.Since(spanStart))
		se.wallNS += spanWall
		for _, sh := range active {
			if d := spanWall - sh.telem.lastSpan; d > 0 {
				sh.telem.stallNS += d
			}
		}
		mergeStart := time.Now()
		se.mergeSpans(active)
		se.mergeNS += int64(time.Since(mergeStart))
		return
	}
	se.mergeSpans(active)
}

// runSpanLocal drains one shard's events below the bound, recording each
// execution and assigning provisional sequence numbers to anything it
// schedules. Runs concurrently with other shards; touches only shard state.
func (sh *shard) runSpanLocal(boundAt time.Duration, boundSeq uint64) {
	for {
		it := sh.peekLive()
		if it == nil || !keyLess(it.at, it.seq, boundAt, boundSeq) {
			return
		}
		sh.q.Pop()
		rec := execRec{
			at:    it.at,
			seq:   it.seq,
			provA: uint32(sh.provSeq - provSeqBase),
			fxA:   int32(len(sh.effects)),
		}
		fn := it.fn
		sh.now = it.at
		sh.firedTotal++
		sh.release(it)
		fn(rec.at)
		rec.provB = uint32(sh.provSeq - provSeqBase)
		rec.fxB = int32(len(sh.effects))
		sh.execs = append(sh.execs, rec)
	}
}

// mergeSpans replays the span's executions in canonical global order,
// reconstructing the exact sequence numbers the serial kernel would have
// assigned and firing buffered effects in that order.
//
// The k-way merge compares each shard's next unreplayed execution by
// (at, real seq). A provisional seq is resolved through the shard's remap
// table; the entry is always populated by the time it is needed, because
// the event that scheduled it ran earlier on the same shard and was
// therefore merged earlier (its key is strictly smaller). When an execution
// is merged, the global counter hands its children their real sequence
// numbers, in the scheduling order the serial kernel would have used.
func (se *Sharded) mergeSpans(active []*shard) {
	for {
		var best *shard
		var bestAt time.Duration
		var bestSeq uint64
		for _, sh := range active {
			if sh.head >= len(sh.execs) {
				continue
			}
			rec := &sh.execs[sh.head]
			seq := rec.seq
			if seq >= provSeqBase {
				seq = sh.remap[seq-provSeqBase]
			}
			if best == nil || keyLess(rec.at, seq, bestAt, bestSeq) {
				best, bestAt, bestSeq = sh, rec.at, seq
			}
		}
		if best == nil {
			break
		}
		rec := &best.execs[best.head]
		best.head++
		for k := rec.provA; k < rec.provB; k++ {
			best.remap[k] = se.seq
			se.seq++
		}
		se.now = rec.at
		se.fired++
		if se.probe != nil {
			se.probe(se.now, se.fired)
		}
		for i := rec.fxA; i < rec.fxB; i++ {
			best.effects[i]()
		}
	}
	// Surviving span-scheduled events keep their real numbers so future
	// comparisons against serial-phase events order correctly. Rewriting in
	// place is safe: renumbering maps provisional order onto ascending real
	// seqs past every pre-span number, so no queued pair's relative order
	// changes.
	for _, sh := range active {
		if sh.provSeq > provSeqBase {
			sh.q.Scan(func(it *eventItem) {
				if it.seq >= provSeqBase {
					it.seq = sh.remap[it.seq-provSeqBase]
				}
			})
		}
		sh.deferred += uint64(len(sh.effects))
		if len(sh.effects) > sh.replayHW {
			sh.replayHW = len(sh.effects)
		}
		sh.head = 0
		sh.execs = sh.execs[:0]
		clear(sh.effects)
		sh.effects = sh.effects[:0]
		sh.remap = sh.remap[:0]
		sh.provSeq = provSeqBase
	}
}

// RunFree drains every shard to empty with no cross-shard ordering, no
// execution records, and no effect buffering: the free-running mode behind
// the fleet benchmark. It requires a workload with no coordinator events
// (self-scheduling generators) and shard-local result sinks; any
// shard-count-invariant aggregation (integer sums, histograms, per-disk
// reductions) then yields identical results at every shard count. Probes
// are not supported. Returns the final virtual time: the max over shards.
func (se *Sharded) RunFree() time.Duration {
	if _, _, ok := se.coord.peekKey(); ok {
		panic("simkernel: RunFree with pending coordinator events")
	}
	timed := se.telemetry
	var loop0 []int64
	var start time.Time
	if timed {
		loop0 = make([]int64, len(se.shards))
		for i, sh := range se.shards {
			loop0[i] = sh.telem.loopNS
		}
		start = time.Now()
	}
	se.inSpan, se.freeRun = true, true
	if w := min(se.workers, len(se.shards)); w <= 1 {
		for _, sh := range se.shards {
			if timed {
				sh.runFreeLocalTimed()
			} else {
				sh.runFreeLocal()
			}
		}
	} else {
		var next atomic.Int32
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(se.shards) {
						return
					}
					if timed {
						se.shards[i].runFreeLocalTimed()
					} else {
						se.shards[i].runFreeLocal()
					}
				}
			}()
		}
		wg.Wait()
	}
	se.inSpan, se.freeRun = false, false
	if timed {
		// A shard's stall is the drain wall minus its own loop wall: time it
		// spent finished (or waiting for a worker slot) while the straggler
		// held the drain open.
		wall := int64(time.Since(start))
		se.wallNS += wall
		for i, sh := range se.shards {
			if d := wall - (sh.telem.loopNS - loop0[i]); d > 0 {
				sh.telem.stallNS += d
			}
		}
	}
	for _, sh := range se.shards {
		se.fired += sh.fired
		sh.firedTotal += sh.fired
		sh.fired = 0
		if sh.now > se.now {
			se.now = sh.now
		}
	}
	return se.now
}

// runFreeLocal is the free-running shard loop: the kernel's hottest path.
// Each iteration fires the strict (at, seq) minimum of the slot and the
// queue; the slot hit rate is what makes self-chaining fleet workloads
// cheap, since a hit costs two key compares instead of a queue round trip.
func (sh *shard) runFreeLocal() {
	for {
		it := sh.slot
		if it != nil {
			if m := sh.q.Peek(); m != nil && (m.at < it.at || (m.at == it.at && m.seq < it.seq)) {
				it = sh.q.Pop()
			} else {
				sh.slot = nil
				it.index = fired
				sh.slotHits++
			}
		} else if it = sh.q.Pop(); it == nil {
			return
		}
		if it.cancelled {
			sh.cancelled--
			sh.release(it)
			continue
		}
		at, fn := it.at, it.fn
		sh.now = at
		sh.fired++
		sh.release(it)
		fn(at)
	}
}

// ShardView is the Sim a disk schedules against: shard-local during spans
// (provisional sequence numbers, buffered effects), global otherwise.
type ShardView struct {
	se *Sharded
	sh *shard
}

// Now returns the executing shard's clock during a span, the global clock
// otherwise.
func (v *ShardView) Now() time.Duration {
	if v.se.inSpan {
		return v.sh.now
	}
	return v.se.now
}

// At schedules fn on this view's shard at absolute time t.
func (v *ShardView) At(t time.Duration, fn Event) Handle {
	se, sh := v.se, v.sh
	it := sh.alloc()
	if se.inSpan {
		if t < sh.now {
			panic(fmt.Errorf("%w: at=%s now=%s", ErrPast, t, sh.now))
		}
		it.at, it.seq, it.fn, it.cancelled = t, sh.provSeq, fn, false
		sh.provSeq++
		if se.freeRun {
			// Free-running fast path: hold the earliest pending schedule in
			// the slot. A later-keyed schedule goes through the queue; an
			// earlier one takes the slot and demotes the previous holder to
			// the queue (the returned handle must stay on the new item).
			s := sh.slot
			if s == nil {
				it.index = inSlot
				sh.slot = it
				return Handle{item: it, gen: it.gen}
			}
			if it.at < s.at {
				it.index = inSlot
				sh.slot = it
				sh.q.Push(s)
				return Handle{item: it, gen: it.gen}
			}
		} else {
			sh.remap = append(sh.remap, 0)
		}
	} else {
		if t < se.now {
			panic(fmt.Errorf("%w: at=%s now=%s", ErrPast, t, se.now))
		}
		it.at, it.seq, it.fn, it.cancelled = t, se.seq, fn, false
		se.seq++
	}
	sh.q.Push(it)
	return Handle{item: it, gen: it.gen}
}

// After schedules fn d after the view's current time.
func (v *ShardView) After(d time.Duration, fn Event) Handle {
	return v.At(v.Now()+d, fn)
}

// Cancel prevents the handled event from firing; same semantics as the
// serial kernel, including stale-handle detection by generation.
func (v *ShardView) Cancel(h Handle) { v.se.Cancel(h) }

// Defer queues fn to run at effect-replay time when called inside an exact
// span, and runs it immediately otherwise. The storage layer wraps every
// callback that touches shared state (tracer emission, response recording,
// run metrics) in Defer; replay order is the canonical global event order,
// so downstream consumers cannot tell a sharded run from a serial one.
// Deferred effects must not schedule or cancel events.
func (v *ShardView) Defer(fn func()) {
	if v.se.inSpan && !v.se.freeRun {
		v.sh.effects = append(v.sh.effects, fn)
		return
	}
	fn()
}

var (
	_ Sim    = (*ShardView)(nil)
	_ Kernel = (*Sharded)(nil)
)
