// Package report renders experiment results as a single Markdown document:
// the replication sweeps for both traces, the headline comparisons against
// the paper's claims, and (optionally) the extension experiments. cmd/
// figures -summary drives it.
package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/account"
	"repro/internal/experiments"
)

// Options selects report content.
type Options struct {
	Scale experiments.Scale
	// Extensions includes the extension experiment tables.
	Extensions bool
	// Generated stamps the document; zero omits the stamp.
	Generated time.Time
	// Grid, when non-nil, adds the carbon & TCO section: per-policy
	// gCO2e/cost pricing of the Cello sweep plus the consolidation
	// what-if, all cache hits against the sweeps above.
	Grid *account.GridProfile
	// Cost is the cost model for the carbon & TCO section (zero value
	// falls back to account.DefaultCostModel).
	Cost account.CostModel
}

// Generate runs the sweeps and renders the Markdown report. On error the
// markdown accumulated before the failure is returned alongside it (with a
// truncation note), so callers can flush partial results instead of
// discarding completed sweeps.
func Generate(opts Options) (string, error) {
	var b strings.Builder
	b.WriteString("# Energy-aware scheduling — experiment summary\n\n")
	if !opts.Generated.IsZero() {
		fmt.Fprintf(&b, "_Generated %s._\n\n", opts.Generated.Format(time.RFC3339))
	}
	fmt.Fprintf(&b, "Setup: %d disks, %d requests over %d blocks, 2CPM power management.\n\n",
		opts.Scale.NumDisks, opts.Scale.NumRequests, opts.Scale.NumBlocks)

	for _, tr := range []experiments.Trace{experiments.Cello, experiments.Financial} {
		sweep, err := experiments.SweepReplication(opts.Scale, tr)
		if err != nil {
			return truncated(&b, err), err
		}
		fmt.Fprintf(&b, "## %s trace\n\n", tr)
		writeHeadline(&b, sweep)
		for _, tbl := range []*experiments.Table{
			sweep.Figure6(), sweep.Figure7(), sweep.Figure8(),
		} {
			writeMarkdownTable(&b, tbl)
		}
	}

	if opts.Grid != nil {
		cost := opts.Cost
		if cost == (account.CostModel{}) {
			cost = account.DefaultCostModel()
		}
		fmt.Fprintf(&b, "## Carbon & TCO (grid %s, tariff %s)\n\n", opts.Grid.Name, cost.Name)
		b.WriteString("Re-pricings of the Cello sweep above — sweep-cache hits, no extra simulation.\n\n")
		ct, err := experiments.CarbonTable(opts.Scale, experiments.Cello, opts.Grid, cost)
		if err != nil {
			return truncated(&b, err), err
		}
		writeMarkdownTable(&b, ct)
		wt, err := experiments.WhatIfTable(opts.Scale, experiments.Cello, opts.Grid, cost)
		if err != nil {
			return truncated(&b, err), err
		}
		writeMarkdownTable(&b, wt)
	}

	if opts.Extensions {
		tables, err := experiments.Extensions(opts.Scale, experiments.Cello)
		if err != nil {
			return truncated(&b, err), err
		}
		b.WriteString("## Extensions\n\n")
		for _, tbl := range tables {
			writeMarkdownTable(&b, tbl)
		}
	}
	return b.String(), nil
}

// truncated stamps a partial report with the failure that cut it short.
func truncated(b *strings.Builder, err error) string {
	fmt.Fprintf(b, "> **Report truncated**: %v\n", err)
	return b.String()
}

// writeHeadline summarizes the sweep against the paper's three claims.
func writeHeadline(b *strings.Builder, sw *experiments.ReplicationSweep) {
	rfMax := sw.RFs[len(sw.RFs)-1]
	static, _ := sw.Get(rfMax, experiments.AlgoStatic)
	wsc, _ := sw.Get(rfMax, experiments.AlgoWSC)
	heur, _ := sw.Get(rfMax, experiments.AlgoHeuristic)

	fmt.Fprintf(b, "At replication factor %d the energy-aware WSC scheduler uses %.1f%% of the always-on energy (static: %.1f%%), ",
		rfMax, 100*wsc.NormEnergy, 100*static.NormEnergy)
	fmt.Fprintf(b, "performs %.0f%% of static's spin operations, ",
		100*float64(wsc.SpinUps+wsc.SpinDowns)/float64(static.SpinUps+static.SpinDowns))
	if heur.Mean < static.Mean {
		fmt.Fprintf(b, "and the online heuristic improves mean response time from %s to %s.\n\n",
			static.Mean.Round(time.Millisecond), heur.Mean.Round(time.Millisecond))
	} else {
		fmt.Fprintf(b, "with the online heuristic's mean response at %s (static: %s).\n\n",
			heur.Mean.Round(time.Millisecond), static.Mean.Round(time.Millisecond))
	}
}

// writeMarkdownTable renders an experiments.Table as GitHub Markdown.
func writeMarkdownTable(b *strings.Builder, t *experiments.Table) {
	if t.Title != "" {
		fmt.Fprintf(b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteString("\n")
}
