package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func reportScale() experiments.Scale {
	s := experiments.SmallScale()
	s.NumRequests = 1500
	s.NumBlocks = 800
	s.NumDisks = 12
	return s
}

func TestGenerateBasicReport(t *testing.T) {
	t.Parallel()
	out, err := Generate(Options{Scale: reportScale()})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Energy-aware scheduling",
		"## cello trace",
		"## financial1 trace",
		"Figure 6",
		"Figure 7",
		"Figure 8",
		"| replication |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "_Generated") {
		t.Error("unstamped report carries a timestamp")
	}
	if strings.Contains(out, "## Extensions") {
		t.Error("extensions included without opting in")
	}
}

func TestGenerateWithExtensionsAndStamp(t *testing.T) {
	t.Parallel()
	out, err := Generate(Options{
		Scale:      reportScale(),
		Extensions: true,
		Generated:  time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"_Generated 2026-07-05T12:00:00Z._",
		"## Extensions",
		"write off-loading",
		"gear-shifting",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestMarkdownTableShape(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	writeMarkdownTable(&b, &experiments.Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	})
	want := "### T\n\n| a | b |\n| --- | --- |\n| 1 | 2 |\n\n"
	if b.String() != want {
		t.Errorf("markdown table =\n%q\nwant\n%q", b.String(), want)
	}
}
