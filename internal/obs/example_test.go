package obs_test

import (
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ExampleTracer traces a two-event request lifecycle and drains it as
// JSONL. Real runs attach the tracer with storage.WithTracer; the encoding
// is canonical, so seeded runs produce byte-identical logs.
func ExampleTracer() {
	tr := obs.NewTracer(16)
	dec := tr.Decision(250*time.Millisecond, 0, 42, 3, 1.5, 148.5, 0)
	tr.Dispatch(250*time.Millisecond, 0, 42, 3, dec)
	tr.Power(250*time.Millisecond, 3, core.StateStandby, core.StateSpinUp, 0, 0, dec)
	tr.Complete(10*time.Second+250*time.Millisecond, 0, 3, 10*time.Second)
	tr.WriteJSONL(os.Stdout)
	// Output:
	// {"t":250000000,"seq":0,"kind":"decision","disk":3,"req":0,"block":42,"dec":1,"cost":1.5,"ej":148.5,"load":0}
	// {"t":250000000,"seq":1,"kind":"dispatch","disk":3,"req":0,"block":42,"dec":1}
	// {"t":250000000,"seq":2,"kind":"power","disk":3,"dec":1,"from":"standby","to":"spin-up","j":0}
	// {"t":10250000000,"seq":3,"kind":"complete","disk":3,"req":0,"lat":10000000000}
}

// ExampleCollector exports a counter and a gauge in the Prometheus text
// format. storage.WithCollector populates the full catalog of
// obs.NewRunMetrics during a run.
func ExampleCollector() {
	c := obs.NewCollector()
	c.Counter("esched_spin_ups_total", "Disk spin-up operations.").Add(17)
	c.Counter("esched_energy_joules_total", "Energy by power state.",
		obs.Label{Key: "state", Value: "idle"}).Add(5230.5)
	c.Gauge("esched_sim_time_seconds", "Current virtual time in seconds.").Set(86400)
	c.WriteTo(os.Stdout)
	// Output:
	// # HELP esched_energy_joules_total Energy by power state.
	// # TYPE esched_energy_joules_total counter
	// esched_energy_joules_total{state="idle"} 5230.5
	// # HELP esched_sim_time_seconds Current virtual time in seconds.
	// # TYPE esched_sim_time_seconds gauge
	// esched_sim_time_seconds 86400
	// # HELP esched_spin_ups_total Disk spin-up operations.
	// # TYPE esched_spin_ups_total counter
	// esched_spin_ups_total 17
}
