package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func binaryLog(t testing.TB) []byte {
	t.Helper()
	tr := NewTracer(64)
	emitOneOfEach(tr)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBinaryRejectsV1Magic(t *testing.T) {
	t.Parallel()
	log := binaryLog(t)
	copy(log, binaryMagicV1)
	_, err := ReadBinary(bytes.NewReader(log))
	if err == nil || !strings.Contains(err.Error(), "superseded") {
		t.Fatalf("v1 magic: err = %v, want superseded-version diagnostic", err)
	}
}

func TestReadBinaryRejectsUnknownMagic(t *testing.T) {
	t.Parallel()
	_, err := ReadBinary(strings.NewReader("NOTALOG!xxxxxxxx"))
	if err == nil || !strings.Contains(err.Error(), "bad binary log magic") {
		t.Fatalf("unknown magic: err = %v", err)
	}
}

func TestReadBinaryRejectsTruncatedRecord(t *testing.T) {
	t.Parallel()
	log := binaryLog(t)
	// Chop the final record short by 5 bytes.
	_, err := ReadBinary(bytes.NewReader(log[:len(log)-5]))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated log: err = %v, want truncation diagnostic", err)
	}
	if !strings.Contains(err.Error(), "record 10") {
		t.Fatalf("truncated log: err = %v, want failing record index", err)
	}
}

func TestReadBinaryRejectsBitFlip(t *testing.T) {
	t.Parallel()
	log := binaryLog(t)
	// Flip one payload bit in record 3.
	log[len(BinaryMagic)+3*binaryRecordSize+40] ^= 0x10
	_, err := ReadBinary(bytes.NewReader(log))
	if err == nil || !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("bit flip: err = %v, want crc diagnostic", err)
	}
	if !strings.Contains(err.Error(), "record 3") {
		t.Fatalf("bit flip: err = %v, want failing record index", err)
	}
}

func TestReadBinaryRejectsValidCRCOverBadPayload(t *testing.T) {
	t.Parallel()
	// A record whose CRC is right but whose kind is out of range must still
	// be rejected (corruption introduced before the CRC was computed, or a
	// log forged by a buggy writer).
	bad := AppendBinary(nil, Event{Kind: Kind(200), Disk: core.InvalidDisk, Req: -1, Block: -1})
	_, err := ReadBinary(bytes.NewReader(append([]byte(BinaryMagic), bad...)))
	if err == nil || !strings.Contains(err.Error(), "invalid kind") {
		t.Fatalf("bad kind: err = %v", err)
	}
}

func TestBinaryRecordsAreSeekable(t *testing.T) {
	t.Parallel()
	log := binaryLog(t)
	if want := len(BinaryMagic) + emitOneOfEachCount*binaryRecordSize; len(log) != want {
		t.Fatalf("log is %d bytes, want %d (header + %d fixed records)",
			len(log), want, emitOneOfEachCount)
	}
	// Decode record 6 (the power event) straight from its offset.
	off := len(BinaryMagic) + 6*binaryRecordSize
	ev, err := decodeBinaryPayload(log[off : off+binaryPayloadSize])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindPower || ev.ImpulseJ != 0.5 || ev.Dec != 1 {
		t.Fatalf("seeked record = %+v, want the power event", ev)
	}
}

// FuzzReadBinary throws arbitrary bytes at the binary log reader: it must
// never panic, and every log it accepts must re-encode to the identical
// bytes (the validation keeps the accepted set exactly the encodable set).
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(BinaryMagic))
	f.Add([]byte(binaryMagicV1))
	f.Add(binaryLog(f))
	trunc := binaryLog(f)
	f.Add(trunc[:len(trunc)-7])
	flip := binaryLog(f)
	flip[len(BinaryMagic)+2*binaryRecordSize] ^= 0x01
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		re := []byte(BinaryMagic)
		for _, ev := range evs {
			re = AppendBinary(re, ev)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted log does not round-trip: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
	})
}

func TestMeterSplitMatchesPowerEvent(t *testing.T) {
	t.Parallel()
	// The tracer's Power event must carry the state accrual and impulse
	// separately so by-state replay can mirror the meter's additions.
	tr := NewTracer(8)
	tr.Power(time.Second, 1, core.StateIdle, core.StateSpinDown, 10.25, 2.5, 7)
	ev := tr.Events()[0]
	if ev.EnergyJ != 10.25 || ev.ImpulseJ != 2.5 || ev.Dec != 7 {
		t.Fatalf("power event = %+v", ev)
	}
}
