package flight

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// mkEvents builds n well-formed events with strictly increasing sequence
// numbers starting at seq0.
func mkEvents(seq0 uint64, n int) []obs.Event {
	out := make([]obs.Event, n)
	for i := range out {
		out[i] = obs.Event{
			Kind:  obs.KindArrive,
			At:    time.Duration(i) * time.Millisecond,
			Seq:   seq0 + uint64(i),
			Disk:  -1,
			Req:   -1,
			Block: core.BlockID(i),
		}
	}
	return out
}

// snapshotBytes encodes events the way DumpNow writes events.bin.
func snapshotBytes(evs []obs.Event) []byte {
	buf := []byte(obs.BinaryMagic)
	for _, ev := range evs {
		buf = obs.AppendBinary(buf, ev)
	}
	return buf
}

// TestDumpRoundTrip pins the full cycle: observe, dump, locate, read back —
// with and without ring wrap.
func TestDumpRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	r := New(Config{Capacity: 8, Dir: dir, Telemetry: func() any {
		return map[string]int{"shards": 4}
	}})
	for _, ev := range mkEvents(1, 5) {
		r.Observe(ev)
	}
	if _, err := r.DumpNow("unit test"); err != nil {
		t.Fatal(err)
	}
	// Push past capacity so the second dump's window is a wrapped suffix.
	for _, ev := range mkEvents(6, 10) {
		r.Observe(ev)
	}
	dump2, err := r.DumpNow("queue full")
	if err != nil {
		t.Fatal(err)
	}
	latest, err := FindLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != dump2 {
		t.Fatalf("FindLatest = %s, want %s", latest, dump2)
	}
	d, err := ReadDump(latest)
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Reason != "queue full" || !d.Meta.Wrapped || d.Meta.Observed != 15 {
		t.Fatalf("meta = %+v", d.Meta)
	}
	if len(d.Events) != 8 {
		t.Fatalf("window holds %d events, want ring capacity 8", len(d.Events))
	}
	if d.Events[0].Seq != 8 || d.Events[7].Seq != 15 {
		t.Fatalf("window spans seq %d..%d, want 8..15 (last 8 observed)",
			d.Events[0].Seq, d.Events[7].Seq)
	}
	if d.Meta.FirstSeq != 8 || d.Meta.LastSeq != 15 {
		t.Fatalf("manifest seq bounds %d..%d diverge from window", d.Meta.FirstSeq, d.Meta.LastSeq)
	}
	if d.Telemetry == nil || !strings.Contains(string(d.Telemetry), `"shards"`) {
		t.Fatalf("telemetry.json not captured: %q", d.Telemetry)
	}
	if !strings.Contains(filepath.Base(latest), "queue-full") {
		t.Fatalf("dump dir %s does not carry the sanitized reason", latest)
	}
	// Reading the first (unwrapped, prefix) dump still works.
	d1, err := ReadDump(filepath.Join(dir, "flight-001-unit-test"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Events) != 5 || d1.Meta.Wrapped {
		t.Fatalf("first dump: %d events wrapped=%v, want 5 unwrapped", len(d1.Events), d1.Meta.Wrapped)
	}
}

// TestRequestDumpCrossGoroutine pins the trigger protocol: a request
// published from another goroutine materialises at the owner's next sweep,
// and a sweep with no pending trigger is a no-op.
func TestRequestDumpCrossGoroutine(t *testing.T) {
	t.Parallel()
	r := New(Config{Capacity: 4, Dir: t.TempDir()})
	if dir, err := r.MaybeDump(); err != nil || dir != "" {
		t.Fatalf("idle MaybeDump = %q, %v", dir, err)
	}
	r.Observe(mkEvents(1, 1)[0])
	done := make(chan struct{})
	go func() {
		r.RequestDump("slo breach")
		close(done)
	}()
	<-done
	if !r.Pending() {
		t.Fatal("trigger not visible to owner goroutine")
	}
	dir, err := r.MaybeDump()
	if err != nil || dir == "" {
		t.Fatalf("MaybeDump = %q, %v", dir, err)
	}
	if r.Pending() {
		t.Fatal("trigger not consumed")
	}
	if r.Dumps() != 1 {
		t.Fatalf("dump counter %d, want 1", r.Dumps())
	}
}

// TestDumpPprofBundle pins the profile artifacts: with Pprof set, a dump
// carries a readable goroutine listing and a non-empty heap profile.
func TestDumpPprofBundle(t *testing.T) {
	t.Parallel()
	r := New(Config{Capacity: 4, Dir: t.TempDir(), Pprof: true})
	r.Observe(mkEvents(1, 1)[0])
	dir, err := r.DumpNow("sigquit")
	if err != nil {
		t.Fatal(err)
	}
	g, err := os.ReadFile(filepath.Join(dir, "goroutine.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(g, []byte("goroutine")) {
		t.Fatal("goroutine.txt does not look like a goroutine profile")
	}
	h, err := os.Stat(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() == 0 {
		t.Fatal("heap.pprof is empty")
	}
}

// TestReadSnapshotSingleByteCorruption flips every byte of a snapshot in
// turn: no corruption may be accepted (the magic, payload CRCs and CRC
// bytes themselves cover the whole file) and none may panic.
func TestReadSnapshotSingleByteCorruption(t *testing.T) {
	t.Parallel()
	good := snapshotBytes(mkEvents(1, 6))
	if _, err := ReadSnapshot(good); err != nil {
		t.Fatal(err)
	}
	for i := range good {
		bad := bytes.Clone(good)
		bad[i] ^= 0x40
		if _, err := ReadSnapshot(bad); err == nil {
			t.Fatalf("byte %d: corruption accepted", i)
		}
	}
}

// TestReadSnapshotRejectsOutOfOrder pins the flight-specific framing check:
// a stream of individually valid records with non-monotone sequence numbers
// passes the generic reader but not the snapshot reader.
func TestReadSnapshotRejectsOutOfOrder(t *testing.T) {
	t.Parallel()
	evs := mkEvents(1, 4)
	evs[2].Seq = evs[1].Seq // duplicate
	data := snapshotBytes(evs)
	if _, err := obs.ReadBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("generic reader rejected the stream: %v", err)
	}
	if _, err := ReadSnapshot(data); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order window: err = %v", err)
	}
}

// TestSanitizeReason pins the dump-directory slug mapping.
func TestSanitizeReason(t *testing.T) {
	t.Parallel()
	for in, want := range map[string]string{
		"SLO breach":             "slo-breach",
		"doctor-power":           "doctor-power",
		"  ":                     "manual",
		"":                       "manual",
		"q/full!!spike":          "q-full-spike",
		strings.Repeat("x", 100): strings.Repeat("x", 40),
	} {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

// FuzzReadSnapshot throws arbitrary bytes at the snapshot reader: it must
// never panic, and every snapshot it accepts must have strictly increasing
// sequence numbers and re-encode to the identical bytes.
func FuzzReadSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(obs.BinaryMagic))
	good := snapshotBytes(mkEvents(1, 6))
	f.Add(good)
	trunc := bytes.Clone(good)
	f.Add(trunc[:len(trunc)-9])
	flip := bytes.Clone(good)
	flip[len(obs.BinaryMagic)+20] ^= 0x04
	f.Add(flip)
	dup := mkEvents(1, 3)
	dup[2].Seq = dup[0].Seq
	f.Add(snapshotBytes(dup))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadSnapshot(data)
		if err != nil {
			return
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("accepted snapshot has non-monotone seq at %d", i)
			}
		}
		if !bytes.Equal(snapshotBytes(evs), data) {
			t.Fatal("accepted snapshot does not round-trip")
		}
	})
}
