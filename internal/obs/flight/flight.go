// Package flight implements the always-on flight recorder: a fixed-size
// ring of the most recent canonical events, written inline by the run's
// observer chain at ring-slot cost, plus a trigger/dump protocol that
// freezes the window into a replayable ESCHOBS2 snapshot the moment
// something goes wrong — an SLO breach, a doctor violation, a queue-full
// spike, or an operator SIGQUIT. The dump bundles the event window with an
// engine-telemetry snapshot and optional pprof profiles, so the last
// seconds before an incident are always reconstructable without having
// traced the whole run.
//
// Threading: Observe, DumpNow and MaybeDump belong to the goroutine that
// drives the simulation (the same one the tracer's observer runs on).
// RequestDump is the only cross-goroutine entry point — it publishes the
// trigger atomically and the owner goroutine materialises the dump at its
// next MaybeDump call.
package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultCapacity is the ring size when Config.Capacity is zero: at 84
// bytes per encoded event this keeps a dump's events.bin under ~6 MB.
const DefaultCapacity = 1 << 16

// Config configures a Recorder.
type Config struct {
	// Capacity is the ring size in events (DefaultCapacity if zero).
	Capacity int
	// Dir is the directory dumps are written under (one flight-NNN-reason
	// subdirectory per dump). Required before the first dump.
	Dir string
	// Pprof bundles goroutine and heap profiles into each dump.
	Pprof bool
	// Telemetry, when set, is snapshotted at dump time and JSON-encoded
	// into the dump's telemetry.json (typically a *simkernel.KernelStats).
	Telemetry func() any
}

// Recorder is the flight-recorder ring. The zero value is not usable; call
// New.
type Recorder struct {
	cfg     Config
	ring    []obs.Event
	next    int
	wrapped bool
	total   uint64
	dumps   int
	lastErr error
	pending atomic.Pointer[string]
}

// New builds a recorder. It does not touch the filesystem until a dump
// triggers.
func New(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Recorder{cfg: cfg, ring: make([]obs.Event, cfg.Capacity)}
}

// SetTelemetry installs (or replaces) the telemetry snapshot source. Call
// before the recorder is attached to a run: the function executes on the
// dump-writing goroutine, so it must only read state owned by that
// goroutine (e.g. the engine's kernel counters).
func (r *Recorder) SetTelemetry(fn func() any) { r.cfg.Telemetry = fn }

// Observe appends one event to the ring, overwriting the oldest once full.
// One slot store per event, no allocation.
func (r *Recorder) Observe(ev obs.Event) {
	r.ring[r.next] = ev
	r.next++
	r.total++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
}

// Events returns the total number of events observed so far.
func (r *Recorder) Events() uint64 { return r.total }

// Dumps returns the number of dumps written so far.
func (r *Recorder) Dumps() int { return r.dumps }

// RequestDump publishes a dump trigger. Safe to call from any goroutine
// (signal handlers included); the owner goroutine writes the dump at its
// next MaybeDump. Later requests before that point overwrite the reason.
func (r *Recorder) RequestDump(reason string) { r.pending.Store(&reason) }

// Pending reports whether a dump trigger is waiting.
func (r *Recorder) Pending() bool { return r.pending.Load() != nil }

// MaybeDump consumes a pending trigger, if any, and writes the dump. It
// returns the dump directory, or "" when no trigger was pending.
func (r *Recorder) MaybeDump() (string, error) {
	reason := r.pending.Swap(nil)
	if reason == nil {
		return "", nil
	}
	return r.DumpNow(*reason)
}

// Err returns the most recent dump-write failure, if any. The observer
// chain writes dumps inline and cannot surface errors; entry points check
// Err at drain time.
func (r *Recorder) Err() error { return r.lastErr }

// Meta is the dump manifest written to meta.json.
type Meta struct {
	Reason     string    `json:"reason"`
	CapturedAt time.Time `json:"captured_at"`
	Events     int       `json:"events"`
	Observed   uint64    `json:"events_observed"`
	Wrapped    bool      `json:"wrapped"`
	FirstSeq   uint64    `json:"first_seq"`
	LastSeq    uint64    `json:"last_seq"`
	Goroutines int       `json:"goroutines"`
}

// DumpNow freezes the ring and writes a dump directory under Config.Dir:
// events.bin (the window as a standard ESCHOBS2 log, oldest first),
// meta.json (trigger, window bounds), telemetry.json (when a Telemetry
// snapshot is configured) and, with Pprof, goroutine.txt and heap.pprof.
// Call from the owner goroutine only.
func (r *Recorder) DumpNow(reason string) (dir string, err error) {
	defer func() {
		if err != nil {
			r.lastErr = err
		}
	}()
	if r.cfg.Dir == "" {
		return "", fmt.Errorf("flight: no dump directory configured")
	}
	r.dumps++
	dir = filepath.Join(r.cfg.Dir, fmt.Sprintf("flight-%03d-%s", r.dumps, sanitizeReason(reason)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}

	evs := r.window()
	buf := make([]byte, 0, len(obs.BinaryMagic)+84*len(evs))
	buf = append(buf, obs.BinaryMagic...)
	for _, ev := range evs {
		buf = obs.AppendBinary(buf, ev)
	}
	if err := os.WriteFile(filepath.Join(dir, "events.bin"), buf, 0o644); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}

	meta := Meta{
		Reason:     reason,
		CapturedAt: time.Now().UTC(),
		Events:     len(evs),
		Observed:   r.total,
		Wrapped:    r.wrapped,
		Goroutines: runtime.NumGoroutine(),
	}
	if len(evs) > 0 {
		meta.FirstSeq, meta.LastSeq = evs[0].Seq, evs[len(evs)-1].Seq
	}
	if err := writeJSON(filepath.Join(dir, "meta.json"), meta); err != nil {
		return "", err
	}
	if r.cfg.Telemetry != nil {
		if snap := r.cfg.Telemetry(); snap != nil {
			if err := writeJSON(filepath.Join(dir, "telemetry.json"), snap); err != nil {
				return "", err
			}
		}
	}
	if r.cfg.Pprof {
		if err := writeProfiles(dir); err != nil {
			return "", err
		}
	}
	return dir, nil
}

// window returns the ring's events oldest-first.
func (r *Recorder) window() []obs.Event {
	if !r.wrapped {
		return r.ring[:r.next]
	}
	out := make([]obs.Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	return nil
}

func writeProfiles(dir string) error {
	g, err := os.Create(filepath.Join(dir, "goroutine.txt"))
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	defer g.Close()
	if err := pprof.Lookup("goroutine").WriteTo(g, 1); err != nil {
		return fmt.Errorf("flight: goroutine profile: %w", err)
	}
	h, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	defer h.Close()
	if err := pprof.Lookup("heap").WriteTo(h, 0); err != nil {
		return fmt.Errorf("flight: heap profile: %w", err)
	}
	return nil
}

// sanitizeReason maps an arbitrary trigger string onto a filesystem-safe
// slug: lowercase alphanumerics and dashes, at most 40 bytes.
func sanitizeReason(reason string) string {
	var b strings.Builder
	dash := true // suppress leading dashes
	for _, c := range strings.ToLower(reason) {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			b.WriteRune(c)
			dash = false
		case !dash:
			b.WriteByte('-')
			dash = true
		}
		if b.Len() >= 40 {
			break
		}
	}
	s := strings.TrimRight(b.String(), "-")
	if s == "" {
		return "manual"
	}
	return s
}
