package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Dump is one flight-recorder dump read back from disk.
type Dump struct {
	Dir       string
	Meta      Meta
	Events    []obs.Event
	Telemetry json.RawMessage // contents of telemetry.json, nil when absent
}

// FindLatest locates the most recent dump directory under root (dumps sort
// by their zero-padded sequence number, so lexicographic order is creation
// order). root may itself be a dump directory, in which case it is returned
// as-is.
func FindLatest(root string) (string, error) {
	if _, err := os.Stat(filepath.Join(root, "meta.json")); err == nil {
		return root, nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	var dumps []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "flight-") {
			dumps = append(dumps, e.Name())
		}
	}
	if len(dumps) == 0 {
		return "", fmt.Errorf("flight: no dumps under %s", root)
	}
	sort.Strings(dumps)
	return filepath.Join(root, dumps[len(dumps)-1]), nil
}

// ReadDump reads one dump directory back: manifest, event window (validated
// the same way ReadSnapshot validates it) and the raw telemetry snapshot.
func ReadDump(dir string) (*Dump, error) {
	d := &Dump{Dir: dir}
	metaRaw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	if err := json.Unmarshal(metaRaw, &d.Meta); err != nil {
		return nil, fmt.Errorf("flight: %s: %w", filepath.Join(dir, "meta.json"), err)
	}
	evRaw, err := os.ReadFile(filepath.Join(dir, "events.bin"))
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	if d.Events, err = ReadSnapshot(evRaw); err != nil {
		return nil, fmt.Errorf("flight: %s: %w", filepath.Join(dir, "events.bin"), err)
	}
	if len(d.Events) != d.Meta.Events {
		return nil, fmt.Errorf("flight: %s holds %d events, manifest says %d",
			filepath.Join(dir, "events.bin"), len(d.Events), d.Meta.Events)
	}
	if tel, err := os.ReadFile(filepath.Join(dir, "telemetry.json")); err == nil {
		if !json.Valid(tel) {
			return nil, fmt.Errorf("flight: %s: invalid JSON", filepath.Join(dir, "telemetry.json"))
		}
		d.Telemetry = tel
	}
	return d, nil
}

// ReadSnapshot decodes a dump's event window (a standard ESCHOBS2 stream)
// and validates the flight-recorder framing on top of the per-record CRCs:
// sequence numbers must be strictly increasing, since the ring preserves
// emit order. It never panics on arbitrary input.
func ReadSnapshot(data []byte) ([]obs.Event, error) {
	evs, err := obs.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			return nil, fmt.Errorf("flight: record %d: seq %d not after %d (window out of order)",
				i, evs[i].Seq, evs[i-1].Seq)
		}
	}
	return evs, nil
}
