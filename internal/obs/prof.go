package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runpprof "runtime/pprof"
	"runtime/trace"
	"time"
)

// Profiles bundles the standard Go profiling hooks so every command
// exposes the same surface: CPU and heap profiles, a runtime execution
// trace, and an optional live net/http/pprof endpoint.
//
// Usage:
//
//	var p obs.Profiles
//	p.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := p.Start()
//	if err != nil { ... }
//	defer stop()
//
// Stop is idempotent and safe to call on both the error and success paths,
// so profiles are flushed even when a run fails.
type Profiles struct {
	CPUFile   string // write a pprof CPU profile here
	MemFile   string // write a pprof heap profile here at exit
	TraceFile string // write a runtime/trace execution trace here
	PprofAddr string // serve net/http/pprof on this address (e.g. localhost:6060)

	cpuOut, traceOut *os.File
	listener         net.Listener
	started          bool
}

// RegisterFlags installs the -cpuprofile, -memprofile, -trace and -pprof
// flags on fs.
func (p *Profiles) RegisterFlags(fs *flag.FlagSet) {
	p.RegisterFlagsTraceName(fs, "trace")
}

// RegisterFlagsTraceName is RegisterFlags with the execution-trace flag
// under a different name, for commands (cmd/esched) where -trace already
// means an input I/O trace.
func (p *Profiles) RegisterFlagsTraceName(fs *flag.FlagSet, traceName string) {
	fs.StringVar(&p.CPUFile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemFile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&p.TraceFile, traceName, "", "write a runtime execution trace to this file")
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Active reports whether any profiling output is configured.
func (p *Profiles) Active() bool {
	return p.CPUFile != "" || p.MemFile != "" || p.TraceFile != "" || p.PprofAddr != ""
}

// Start begins every configured profile and returns the stop function,
// which flushes and closes them (reporting the first error). The pprof
// HTTP endpoint, when configured, is bound synchronously so address errors
// surface here, then served in the background until stop.
func (p *Profiles) Start() (stop func() error, err error) {
	if p.started {
		return nil, fmt.Errorf("obs: profiles already started")
	}
	p.started = true
	cleanup := func() {
		if p.cpuOut != nil {
			runpprof.StopCPUProfile()
			p.cpuOut.Close()
		}
		if p.traceOut != nil {
			trace.Stop()
			p.traceOut.Close()
		}
		if p.listener != nil {
			p.listener.Close()
		}
	}
	if p.CPUFile != "" {
		if p.cpuOut, err = os.Create(p.CPUFile); err != nil {
			return nil, err
		}
		if err = runpprof.StartCPUProfile(p.cpuOut); err != nil {
			cleanup()
			return nil, err
		}
	}
	if p.TraceFile != "" {
		if p.traceOut, err = os.Create(p.TraceFile); err != nil {
			cleanup()
			return nil, err
		}
		if err = trace.Start(p.traceOut); err != nil {
			cleanup()
			return nil, err
		}
	}
	if p.PprofAddr != "" {
		if p.listener, err = net.Listen("tcp", p.PprofAddr); err != nil {
			cleanup()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(p.listener) //nolint:errcheck // closed by stop
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		if p.cpuOut != nil {
			runpprof.StopCPUProfile()
			if err := p.cpuOut.Close(); err != nil && first == nil {
				first = err
			}
		}
		if p.traceOut != nil {
			trace.Stop()
			if err := p.traceOut.Close(); err != nil && first == nil {
				first = err
			}
		}
		if p.MemFile != "" {
			f, err := os.Create(p.MemFile)
			if err != nil {
				if first == nil {
					first = err
				}
			} else {
				runtime.GC() // settle allocations so the heap profile is sharp
				if err := runpprof.WriteHeapProfile(f); err != nil && first == nil {
					first = err
				}
				if err := f.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		if p.listener != nil {
			p.listener.Close()
		}
		return first
	}, nil
}
