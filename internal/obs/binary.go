package obs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/internal/core"
)

// Binary event log: an 8-byte versioned magic header followed by
// fixed-width little-endian records, each closed by a CRC-32 (IEEE) of the
// record's payload bytes. Denser than JSONL and trivially seekable (record
// i lives at offset 8 + 84*i), for long traced runs where the JSONL form
// gets bulky — and self-checking, so a truncated or bit-flipped log is
// rejected with a diagnostic instead of being decoded into garbage.
//
// Record layout (offsets in bytes):
//
//	0  kind (u8)    1  from (u8)   2  to (u8)   3  reserved (must be 0)
//	4  depth (i32)  8  t ns (i64)  16 seq (u64)
//	24 disk (i32)   28 req (i32)   32 block (i64)
//	40 latency ns (i64)            48 state energy J (f64)
//	56 cost (f64)   64 impulse J (f64)          72 decision id (i64)
//	80 crc32 (u32, IEEE, over bytes 0..79)
//
// Version history: ESCHOBS1 was the 64-byte uncrc'd form (bytes 0..63
// above, with the impulse folded into the energy field); readers reject it
// with an explicit "unsupported version" error rather than misparsing.

// BinaryMagic opens every binary event log.
const BinaryMagic = "ESCHOBS2"

// binaryMagicV1 is the superseded v1 header, recognised only to produce a
// precise diagnostic.
const binaryMagicV1 = "ESCHOBS1"

// binaryRecordSize is the fixed encoded size of one event, CRC included.
const binaryRecordSize = 84

// binaryPayloadSize is the CRC-protected prefix of a record.
const binaryPayloadSize = binaryRecordSize - 4

// AppendBinary appends the fixed-width binary encoding of ev (payload plus
// CRC) to dst. The stream it builds must be prefixed once with BinaryMagic
// (WriteBinary and streaming sinks handle this via BinaryWriter).
func AppendBinary(dst []byte, ev Event) []byte {
	var rec [binaryRecordSize]byte
	rec[0] = byte(ev.Kind)
	rec[1] = byte(ev.From)
	rec[2] = byte(ev.To)
	binary.LittleEndian.PutUint32(rec[4:], uint32(int32(ev.Depth)))
	binary.LittleEndian.PutUint64(rec[8:], uint64(ev.At))
	binary.LittleEndian.PutUint64(rec[16:], ev.Seq)
	binary.LittleEndian.PutUint32(rec[24:], uint32(int32(ev.Disk)))
	binary.LittleEndian.PutUint32(rec[28:], uint32(int32(ev.Req)))
	binary.LittleEndian.PutUint64(rec[32:], uint64(ev.Block))
	binary.LittleEndian.PutUint64(rec[40:], uint64(ev.Latency))
	binary.LittleEndian.PutUint64(rec[48:], math.Float64bits(ev.EnergyJ))
	binary.LittleEndian.PutUint64(rec[56:], math.Float64bits(ev.Cost))
	binary.LittleEndian.PutUint64(rec[64:], math.Float64bits(ev.ImpulseJ))
	binary.LittleEndian.PutUint64(rec[72:], uint64(ev.Dec))
	binary.LittleEndian.PutUint32(rec[80:], crc32.ChecksumIEEE(rec[:binaryPayloadSize]))
	return append(dst, rec[:]...)
}

// BinaryWriter wraps w so the magic header is written exactly once, before
// the first record. Pass it to Tracer.SetSink for streaming binary logs.
type BinaryWriter struct {
	W      io.Writer
	headed bool
}

// Write implements io.Writer.
func (bw *BinaryWriter) Write(p []byte) (int, error) {
	if !bw.headed {
		bw.headed = true
		if _, err := io.WriteString(bw.W, BinaryMagic); err != nil {
			return 0, err
		}
	}
	return bw.W.Write(p)
}

// ReadBinary parses a binary event log (magic header plus records) back
// into events. It rejects, with a diagnostic naming the failing record:
// unknown or superseded headers, truncated records, CRC mismatches, and
// payloads with out-of-range enum fields — so a corrupt log never decodes
// into plausible-looking garbage.
func ReadBinary(r io.Reader) ([]Event, error) {
	var magic [len(BinaryMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("obs: reading binary log header: %w", err)
	}
	if string(magic[:]) != BinaryMagic {
		if string(magic[:]) == binaryMagicV1 {
			return nil, fmt.Errorf("obs: binary log is the superseded %s format (64-byte records, no CRC); re-record it with this build", binaryMagicV1)
		}
		return nil, fmt.Errorf("obs: bad binary log magic %q (want %q)", magic, BinaryMagic)
	}
	var out []Event
	var rec [binaryRecordSize]byte
	for i := 0; ; i++ {
		n, err := io.ReadFull(r, rec[:])
		if err == io.EOF {
			return out, nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("obs: record %d: truncated (%d of %d bytes)", i, n, binaryRecordSize)
		}
		if err != nil {
			return nil, fmt.Errorf("obs: record %d: %w", i, err)
		}
		if got, want := binary.LittleEndian.Uint32(rec[80:]), crc32.ChecksumIEEE(rec[:binaryPayloadSize]); got != want {
			return nil, fmt.Errorf("obs: record %d: crc mismatch (got %08x want %08x)", i, got, want)
		}
		ev, err := decodeBinaryPayload(rec[:binaryPayloadSize])
		if err != nil {
			return nil, fmt.Errorf("obs: record %d: %w", i, err)
		}
		out = append(out, ev)
	}
}

// decodeBinaryPayload decodes and validates one record payload. Validation
// keeps the accepted set exactly the encodable set (reserved byte zero,
// enums in range), so encode(decode(rec)) == rec for every accepted record.
func decodeBinaryPayload(rec []byte) (Event, error) {
	if k := Kind(rec[0]); k < KindArrive || k > KindRunEnd {
		return Event{}, fmt.Errorf("invalid kind %d", rec[0])
	}
	for _, b := range []byte{rec[1], rec[2]} {
		if s := core.DiskState(b); b != 0 && (s < core.StateStandby || s > core.StateSpinDown) {
			return Event{}, fmt.Errorf("invalid power state %d", b)
		}
	}
	if rec[3] != 0 {
		return Event{}, fmt.Errorf("nonzero reserved byte %d", rec[3])
	}
	return Event{
		Kind:     Kind(rec[0]),
		From:     core.DiskState(rec[1]),
		To:       core.DiskState(rec[2]),
		Depth:    int(int32(binary.LittleEndian.Uint32(rec[4:]))),
		At:       time.Duration(binary.LittleEndian.Uint64(rec[8:])),
		Seq:      binary.LittleEndian.Uint64(rec[16:]),
		Disk:     core.DiskID(int32(binary.LittleEndian.Uint32(rec[24:]))),
		Req:      core.RequestID(int32(binary.LittleEndian.Uint32(rec[28:]))),
		Block:    core.BlockID(binary.LittleEndian.Uint64(rec[32:])),
		Latency:  time.Duration(binary.LittleEndian.Uint64(rec[40:])),
		EnergyJ:  math.Float64frombits(binary.LittleEndian.Uint64(rec[48:])),
		Cost:     math.Float64frombits(binary.LittleEndian.Uint64(rec[56:])),
		ImpulseJ: math.Float64frombits(binary.LittleEndian.Uint64(rec[64:])),
		Dec:      DecisionID(binary.LittleEndian.Uint64(rec[72:])),
	}, nil
}
