package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
)

// Binary event log: an 8-byte magic header followed by fixed-width 64-byte
// little-endian records. About 3x denser than JSONL and trivially seekable
// (record i lives at offset 8 + 64*i), for long traced runs where the
// JSONL form gets bulky.
//
// Record layout (offsets in bytes):
//
//	0  kind (u8)    1  from (u8)   2  to (u8)   3  reserved
//	4  depth (i32)  8  t ns (i64)  16 seq (u64)
//	24 disk (i32)   28 req (i32)   32 block (i64)
//	40 latency ns (i64)            48 energy J (f64)   56 cost (f64)

// BinaryMagic opens every binary event log.
const BinaryMagic = "ESCHOBS1"

// binaryRecordSize is the fixed encoded size of one event.
const binaryRecordSize = 64

// AppendBinary appends the fixed-width binary encoding of ev to dst. The
// stream it builds must be prefixed once with BinaryMagic (WriteBinary and
// streaming sinks handle this via BinaryWriter).
func AppendBinary(dst []byte, ev Event) []byte {
	var rec [binaryRecordSize]byte
	rec[0] = byte(ev.Kind)
	rec[1] = byte(ev.From)
	rec[2] = byte(ev.To)
	binary.LittleEndian.PutUint32(rec[4:], uint32(int32(ev.Depth)))
	binary.LittleEndian.PutUint64(rec[8:], uint64(ev.At))
	binary.LittleEndian.PutUint64(rec[16:], ev.Seq)
	binary.LittleEndian.PutUint32(rec[24:], uint32(int32(ev.Disk)))
	binary.LittleEndian.PutUint32(rec[28:], uint32(int32(ev.Req)))
	binary.LittleEndian.PutUint64(rec[32:], uint64(ev.Block))
	binary.LittleEndian.PutUint64(rec[40:], uint64(ev.Latency))
	binary.LittleEndian.PutUint64(rec[48:], math.Float64bits(ev.EnergyJ))
	binary.LittleEndian.PutUint64(rec[56:], math.Float64bits(ev.Cost))
	return append(dst, rec[:]...)
}

// BinaryWriter wraps w so the magic header is written exactly once, before
// the first record. Pass it to Tracer.SetSink for streaming binary logs.
type BinaryWriter struct {
	W      io.Writer
	headed bool
}

// Write implements io.Writer.
func (bw *BinaryWriter) Write(p []byte) (int, error) {
	if !bw.headed {
		bw.headed = true
		if _, err := io.WriteString(bw.W, BinaryMagic); err != nil {
			return 0, err
		}
	}
	return bw.W.Write(p)
}

// ReadBinary parses a binary event log (magic header plus records) back
// into events.
func ReadBinary(r io.Reader) ([]Event, error) {
	var magic [len(BinaryMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("obs: reading binary log header: %w", err)
	}
	if string(magic[:]) != BinaryMagic {
		return nil, fmt.Errorf("obs: bad binary log magic %q", magic)
	}
	var out []Event
	var rec [binaryRecordSize]byte
	for i := 0; ; i++ {
		_, err := io.ReadFull(r, rec[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("obs: record %d: %w", i, err)
		}
		out = append(out, Event{
			Kind:    Kind(rec[0]),
			From:    core.DiskState(rec[1]),
			To:      core.DiskState(rec[2]),
			Depth:   int(int32(binary.LittleEndian.Uint32(rec[4:]))),
			At:      time.Duration(binary.LittleEndian.Uint64(rec[8:])),
			Seq:     binary.LittleEndian.Uint64(rec[16:]),
			Disk:    core.DiskID(int32(binary.LittleEndian.Uint32(rec[24:]))),
			Req:     core.RequestID(int32(binary.LittleEndian.Uint32(rec[28:]))),
			Block:   core.BlockID(binary.LittleEndian.Uint64(rec[32:])),
			Latency: time.Duration(binary.LittleEndian.Uint64(rec[40:])),
			EnergyJ: math.Float64frombits(binary.LittleEndian.Uint64(rec[48:])),
			Cost:    math.Float64frombits(binary.LittleEndian.Uint64(rec[56:])),
		})
	}
}
