// Package obs is the observability layer of the simulator: a structured
// event tracer, a Prometheus-text-format metrics exporter, and profiling
// hooks shared by the CLI commands.
//
// The package sits between the simulation layers (internal/simkernel,
// internal/diskmodel, internal/sched, internal/storage) and the offline
// reporters (internal/report, cmd/esched, cmd/figures). The layers emit
// into it; nothing in it feeds back into a run, so attaching observability
// can never change a simulation result.
//
// # Tracer
//
// Tracer records the request lifecycle (arrive, dispatch, queue, serve,
// complete), disk power-state transitions with their energy deltas, and
// scheduler decisions with the cost-function terms that drove them. Events
// are held in a pre-sized ring buffer and drained as JSONL or a fixed-width
// binary log. The hot path is gated on an atomic enabled flag and allocates
// nothing when tracing is disabled (all emit helpers are safe on a nil
// *Tracer), so instrumented call sites cost one predictable branch in
// production runs.
//
// Event order is deterministic: the simulator is single-threaded per run,
// events carry (virtual time, sequence number), and the encoders format
// every field canonically — so two runs of the same seeded workload produce
// byte-identical logs regardless of how many workers built the schedule
// (see Scale.Workers and docs/OBSERVABILITY.md).
//
// # Collector
//
// Collector aggregates counters, gauges and histograms (spin-ups, energy
// joules by power state, response-time buckets, queue depths) and renders
// them in the Prometheus text exposition format. It can be snapshotted
// mid-run and is reconciled against the exact end-of-run meter values when
// a run finishes, so exported energy totals match internal/report's
// aggregates exactly.
//
// # Profiles
//
// Profiles bundles the standard pprof/trace flags (-cpuprofile,
// -memprofile, -trace, -pprof) so every command exposes the same profiling
// surface.
package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Kind identifies the type of a traced event.
type Kind uint8

// Event kinds, in rough request-lifecycle order.
const (
	// KindArrive marks a request entering the system.
	KindArrive Kind = iota + 1
	// KindDecision is a scheduler decision: the chosen disk together with
	// the composite cost C(d) and energy term E(d) that selected it. Dec is
	// the decision's run-monotonic identifier.
	KindDecision
	// KindDispatch marks a request being sent to its serving disk; Dec
	// links it to the scheduler decision that chose the disk.
	KindDispatch
	// KindQueue marks a request enqueued on a disk that cannot serve it
	// immediately (busy, spinning up or down, or spun down); Dec links it to
	// the decision that routed the request there.
	KindQueue
	// KindServe marks service beginning on a disk.
	KindServe
	// KindComplete marks a request completion; Latency is the response time.
	KindComplete
	// KindPower is a disk power-state transition; EnergyJ is the energy
	// accrued in the state being left and ImpulseJ any instantaneous
	// transition impulse charged to the state entered. Dec names the
	// scheduler decision that caused the transition (0 = no decision: the
	// idle-threshold expiry or another policy action).
	KindPower
	// KindDrop marks a request that could not be served (no replica
	// locations, or every replica failed).
	KindDrop
	// KindCacheHit marks a read absorbed by the block cache; Latency is the
	// response time charged to the hit.
	KindCacheHit
	// KindEnd closes one disk's accounting at the end of the run: From (and
	// To) hold the final power state, EnergyJ the final accrual settled by
	// the meter's Close. One per disk, so replaying a log reproduces the
	// meters' by-state totals exactly.
	KindEnd
	// KindRunEnd is the run's final event: At is the horizon the exporter
	// reports as sim time and Block holds the kernel's executed-event count
	// (the only i64 payload field free on this kind).
	KindRunEnd
)

var kindNames = [...]string{
	KindArrive:   "arrive",
	KindDecision: "decision",
	KindDispatch: "dispatch",
	KindQueue:    "queue",
	KindServe:    "serve",
	KindComplete: "complete",
	KindPower:    "power",
	KindDrop:     "drop",
	KindCacheHit: "cachehit",
	KindEnd:      "end",
	KindRunEnd:   "runend",
}

// DecisionID identifies one scheduler decision within a run. IDs are
// assigned by the tracer in emission order starting at 1; 0 means "no
// decision" (a policy action such as the idle-threshold expiry, or an
// untraced scheduler). The simulator is deterministic, so a seeded run
// assigns the same IDs at any pipeline worker count.
type DecisionID int64

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one traced occurrence. It is a flat value type — no pointers,
// maps or strings — so the ring buffer holds events without any per-event
// allocation. Fields not meaningful for a Kind are zero.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration
	// Seq is the tracer-assigned sequence number; (At, Seq) is a strict
	// total order over a run's events.
	Seq uint64
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind
	// Disk is the disk involved (InvalidDisk when none).
	Disk core.DiskID
	// Req is the request involved (-1 when none).
	Req core.RequestID
	// Block is the block involved (-1 when none).
	Block core.BlockID
	// From and To are the power states of a KindPower transition.
	From, To core.DiskState
	// Depth is the disk queue depth after a KindQueue event, or the chosen
	// disk's load P(d) for a KindDecision.
	Depth int
	// Latency is the response time of a KindComplete or KindCacheHit.
	Latency time.Duration
	// EnergyJ is the state-accrual energy of a KindPower transition (joules
	// spent in the state being left), the final accrual of a KindEnd, or the
	// energy cost term E(d) of a KindDecision.
	EnergyJ float64
	// Cost is the composite cost C(d) of a KindDecision.
	Cost float64
	// ImpulseJ is the instantaneous transition impulse of a KindPower event
	// (charged to the state entered; non-zero only when the corresponding
	// transition time is zero).
	ImpulseJ float64
	// Dec is the scheduler decision that caused this event, when causality
	// is known: the decision's own ID on KindDecision, the routing decision
	// on KindDispatch/KindQueue, and the waking decision on a KindPower
	// transition it induced. 0 = no causing decision.
	Dec DecisionID
}

// Tracer is a ring-buffered structured event recorder.
//
// Two modes:
//
//   - Flight recorder (no sink): the ring keeps the most recent Cap events;
//     older events are overwritten. Drain with WriteJSONL/WriteBinary.
//   - Streaming (SetSink): the ring is flushed to the sink whenever it
//     fills and on Flush, so a run of any length is captured completely.
//
// A Tracer must only be used from the simulation goroutine (the simulator
// is single-threaded per run); the enabled flag is atomic only so the gate
// is a single cheap load. All emit methods are safe to call on a nil
// *Tracer, which is the zero-cost disabled form.
type Tracer struct {
	enabled   atomic.Bool
	seq       uint64
	decisions uint64 // decision IDs handed out so far; next ID is decisions+1
	ring      []Event
	head      int // index of the oldest buffered event
	n         int // number of buffered events
	dropped   uint64
	sink      io.Writer
	binary    bool
	encBuf    []byte
	err       error
	observer  func(Event)
}

// DefaultCapacity is the ring size used when NewTracer is given a
// non-positive capacity: enough for ~8k requests' full lifecycles.
const DefaultCapacity = 1 << 16

// NewTracer returns an enabled tracer with a ring of the given capacity
// (DefaultCapacity if cap <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{ring: make([]Event, capacity)}
	t.enabled.Store(true)
	return t
}

// SetSink switches the tracer to streaming mode: buffered events are
// encoded (JSONL, or the binary log format when binary is true) and written
// to w whenever the ring fills and on Flush. Call before the run starts.
// A binary sink is wrapped so the BinaryMagic header is emitted exactly
// once before the first record.
func (t *Tracer) SetSink(w io.Writer, binary bool) {
	if binary {
		w = &BinaryWriter{W: w}
	}
	t.sink = w
	t.binary = binary
}

// SetObserver tees every emitted event (after its sequence number is
// assigned) to fn, in emission order, in addition to the ring buffer. It is
// how runtime verifiers (internal/obs/monitor) watch a live run without a
// second log pass. A nil fn removes the tee; the disabled-tracer fast path
// is unaffected either way, so observation follows the layer's rule:
// nothing feeds back into the run, and a disabled tracer still costs one
// branch and zero allocations.
func (t *Tracer) SetObserver(fn func(Event)) { t.observer = fn }

// Enabled reports whether the tracer is recording. A nil tracer is
// disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled toggles recording. Events emitted while disabled are not
// buffered and do not consume sequence numbers.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error { return t.err }

// Dropped returns the number of events overwritten before being drained
// (flight-recorder mode only; a streaming tracer drops nothing).
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Len returns the number of events currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Emit records one event, assigning its sequence number. It is a no-op on
// a nil or disabled tracer and never allocates on that path.
func (t *Tracer) Emit(ev Event) {
	if t == nil || !t.enabled.Load() {
		return
	}
	ev.Seq = t.seq
	t.seq++
	if t.n == len(t.ring) {
		if t.sink != nil {
			t.flushLocked()
		} else {
			// Flight recorder: overwrite the oldest event.
			t.head++
			if t.head == len(t.ring) {
				t.head = 0
			}
			t.n--
			t.dropped++
		}
	}
	i := t.head + t.n
	if i >= len(t.ring) {
		i -= len(t.ring)
	}
	t.ring[i] = ev
	t.n++
	if t.observer != nil {
		t.observer(ev)
	}
}

// Events returns a copy of the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		j := t.head + i
		if j >= len(t.ring) {
			j -= len(t.ring)
		}
		out[i] = t.ring[j]
	}
	return out
}

// Flush drains buffered events to the sink (a no-op without one) and
// returns the first write error seen.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if t.sink != nil && t.n > 0 {
		t.flushLocked()
	}
	return t.err
}

func (t *Tracer) flushLocked() {
	for i := 0; i < t.n; i++ {
		j := t.head + i
		if j >= len(t.ring) {
			j -= len(t.ring)
		}
		if t.binary {
			t.encBuf = AppendBinary(t.encBuf[:0], t.ring[j])
		} else {
			t.encBuf = AppendJSONL(t.encBuf[:0], t.ring[j])
		}
		if _, err := t.sink.Write(t.encBuf); err != nil && t.err == nil {
			t.err = err
		}
	}
	t.head, t.n = 0, 0
}

// WriteJSONL writes the buffered events to w as JSON lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error { return t.write(w, false) }

// WriteBinary writes the buffered events to w in the binary log format
// (magic header plus fixed-width records), oldest first.
func (t *Tracer) WriteBinary(w io.Writer) error {
	if t == nil {
		return nil
	}
	if _, err := io.WriteString(w, BinaryMagic); err != nil {
		return err
	}
	return t.write(w, true)
}

func (t *Tracer) write(w io.Writer, binary bool) error {
	if t == nil {
		return nil
	}
	var buf []byte
	for i := 0; i < t.n; i++ {
		j := t.head + i
		if j >= len(t.ring) {
			j -= len(t.ring)
		}
		if binary {
			buf = AppendBinary(buf[:0], t.ring[j])
		} else {
			buf = AppendJSONL(buf[:0], t.ring[j])
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// The emit helpers below are the instrumentation points the simulation
// layers call. Each is a single branch when tracing is off.

// Arrive records a request entering the system.
func (t *Tracer) Arrive(now time.Duration, req core.RequestID, block core.BlockID) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindArrive, Disk: core.InvalidDisk, Req: req, Block: block})
}

// Decision records a scheduler decision with its cost-function terms and
// returns the decision's assigned ID (0 on a nil or disabled tracer, where
// nothing is recorded). block is the block whose replica set the decision
// chose from, so log consumers can check replica validity of the decision
// itself (-1 when unknown).
func (t *Tracer) Decision(now time.Duration, req core.RequestID, block core.BlockID, d core.DiskID, cost, energyJ float64, load int) DecisionID {
	if t == nil || !t.enabled.Load() {
		return 0
	}
	t.decisions++
	id := DecisionID(t.decisions)
	t.Emit(Event{At: now, Kind: KindDecision, Disk: d, Req: req, Block: block,
		Cost: cost, EnergyJ: energyJ, Depth: load, Dec: id})
	return id
}

// DecisionCount returns the number of decision IDs assigned so far; the
// next Decision call (on an enabled tracer) gets DecisionCount()+1. Nil-safe.
func (t *Tracer) DecisionCount() uint64 {
	if t == nil {
		return 0
	}
	return t.decisions
}

// Dispatch records a request being sent to its serving disk; dec is the
// scheduler decision that chose it (0 if untraced).
func (t *Tracer) Dispatch(now time.Duration, req core.RequestID, block core.BlockID, d core.DiskID, dec DecisionID) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindDispatch, Disk: d, Req: req, Block: block, Dec: dec})
}

// Queue records a request enqueued behind depth-1 others on a disk; dec is
// the decision that routed it there (0 if untraced).
func (t *Tracer) Queue(now time.Duration, req core.RequestID, d core.DiskID, depth int, dec DecisionID) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindQueue, Disk: d, Req: req, Block: -1, Depth: depth, Dec: dec})
}

// Serve records service beginning for a request.
func (t *Tracer) Serve(now time.Duration, req core.RequestID, d core.DiskID) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindServe, Disk: d, Req: req, Block: -1})
}

// Complete records a request completion with its response time.
func (t *Tracer) Complete(now time.Duration, req core.RequestID, d core.DiskID, latency time.Duration) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindComplete, Disk: d, Req: req, Block: -1, Latency: latency})
}

// Power records a disk power-state transition and the energy it settles:
// stateJ is the accrual in the state being left, impulseJ any instantaneous
// transition impulse charged to the state entered. dec names the scheduler
// decision that caused the transition (0 for policy actions such as the
// idle-threshold expiry).
func (t *Tracer) Power(now time.Duration, d core.DiskID, from, to core.DiskState, stateJ, impulseJ float64, dec DecisionID) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindPower, Disk: d, Req: -1, Block: -1,
		From: from, To: to, EnergyJ: stateJ, ImpulseJ: impulseJ, Dec: dec})
}

// Drop records a request that could not be served.
func (t *Tracer) Drop(now time.Duration, req core.RequestID, block core.BlockID) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindDrop, Disk: core.InvalidDisk, Req: req, Block: block})
}

// CacheHit records a read absorbed by the block cache; lat is the response
// time charged to the hit.
func (t *Tracer) CacheHit(now time.Duration, req core.RequestID, block core.BlockID, lat time.Duration) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindCacheHit, Disk: core.InvalidDisk, Req: req, Block: block, Latency: lat})
}

// End closes one disk's energy accounting: state is the power state the
// disk finished the run in and j the final accrual settled by the meter's
// Close. Emitted once per disk, in disk order, before RunEnd.
func (t *Tracer) End(now time.Duration, d core.DiskID, state core.DiskState, j float64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindEnd, Disk: d, Req: -1, Block: -1,
		From: state, To: state, EnergyJ: j})
}

// RunEnd records the end of the run: now is the horizon reported as sim
// time and fired the kernel's executed-event count.
func (t *Tracer) RunEnd(now time.Duration, fired uint64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.Emit(Event{At: now, Kind: KindRunEnd, Disk: core.InvalidDisk, Req: -1,
		Block: core.BlockID(fired)})
}
