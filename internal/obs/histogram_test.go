package obs

import (
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket-assignment rule: a sample
// exactly on an upper bound belongs to that bucket (Prometheus `le`
// semantics), samples below the first bound land in the first bucket, and
// samples above every bound are counted only by +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	h := c.Histogram("test_hist", "Boundary probe.", []float64{1, 2.5, 10})
	for _, v := range []float64{
		0.1,  // below first bound -> bucket le=1
		1,    // exactly on a bound -> bucket le=1, not le=2.5
		1.0000001,
		2.5, // exactly on a bound -> le=2.5
		10,  // exactly the last bound -> le=10
		11,  // above all bounds -> only +Inf
	} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.1+1+1.0000001+2.5+10+11; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	out := c.String()
	for _, want := range []string{
		`test_hist_bucket{le="1"} 2`,     // cumulative: 0.1 and 1
		`test_hist_bucket{le="2.5"} 4`,   // + 1.0000001 and 2.5
		`test_hist_bucket{le="10"} 5`,    // + 10
		`test_hist_bucket{le="+Inf"} 6`,  // + 11, the overflow sample
		`test_hist_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

// TestHistogramBoundaryValuesMatchDepthBuckets drives the exporter's own
// queue-depth buckets through integer depths: a depth equal to a bound
// stays in that bucket, mirroring what analyze.DepthHeatmap assumes.
func TestHistogramBoundaryValuesMatchDepthBuckets(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	h := c.Histogram("depth_probe", "Depth boundary probe.", DepthBuckets())
	bounds := DepthBuckets()
	for _, b := range bounds {
		h.Observe(b) // each exactly on its bound
	}
	out := c.String()
	// The first bucket holds exactly one sample (its own bound); the last
	// holds all of them cumulatively.
	if want := `depth_probe_bucket{le="1"} 1`; !strings.Contains(out, want) {
		t.Errorf("render lacks %q:\n%s", want, out)
	}
	lastProbe := `depth_probe_bucket{le="+Inf"} ` // all samples cumulative
	if !strings.Contains(out, lastProbe) {
		t.Errorf("render lacks +Inf bucket:\n%s", out)
	}
	if got := h.Count(); got != uint64(len(bounds)) {
		t.Errorf("Count = %d, want %d", got, len(bounds))
	}
}

// TestHistogramEmptyRendersZeroBuckets: a registered but never-observed
// histogram still renders complete, all-zero cumulative buckets.
func TestHistogramEmptyRendersZeroBuckets(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	c.Histogram("never_hist", "Empty probe.", []float64{1, 2})
	out := c.String()
	for _, want := range []string{
		`never_hist_bucket{le="1"} 0`,
		`never_hist_bucket{le="2"} 0`,
		`never_hist_bucket{le="+Inf"} 0`,
		`never_hist_count 0`,
		`never_hist_sum 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}
