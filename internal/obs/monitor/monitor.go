// Package monitor is the simulator's runtime-verification layer: a suite
// of streaming invariant checkers over the canonical event stream
// (internal/obs). The paper's claims rest on physical invariants — legal
// power-state transitions with their exact spin durations, energy totals
// that are the integral of each disk's state timeline, request
// conservation, replica-valid scheduling decisions, 2CPM threshold
// compliance and mechanically-possible latencies — and the suite checks
// all of them continuously, either live (teed off a Tracer via
// SetObserver) or offline over a recorded JSONL/binary log.
//
// The suite follows the observability layer's design rule: it consumes
// events and never feeds back into a run. A nil or absent suite costs the
// tracer one branch and zero allocations; violations are exceptional and
// may allocate freely.
//
// Every violation carries the triggering event's sequence number, virtual
// time, disk, request and causal decision ID, so a FAIL points directly at
// the log line (tracelens timeline/attribute) that explains it.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/power"
)

// Monitor names, in report order.
const (
	MonitorOrder     = "event-order"
	MonitorPower     = "power-machine"
	MonitorEnergy    = "energy-conservation"
	MonitorWindows   = "windowed-energy"
	MonitorRequests  = "request-conservation"
	MonitorReplicas  = "replica-validity"
	MonitorThreshold = "2cpm-threshold"
	MonitorLatency   = "latency-sanity"
)

// windowMonitor anchors the windowed-energy reconciliation check
// (Suite.VerifyWindows) in the registry. It is stream-passive: the
// carbon-accounting integrator (internal/account) consumes the same event
// stream independently, and the check compares its final cumulative
// by-state reading — the telescoped sum of its grid windows — against the
// meters' totals at end of run. The report shows SKIP until an accounting
// layer exercises it.
type windowMonitor struct{ exercised bool }

func (*windowMonitor) name() string               { return MonitorWindows }
func (*windowMonitor) observe(*Suite, *obs.Event) {}
func (*windowMonitor) finish(*Suite)              {}

// Config parameterizes a Suite with the run's physical model. The power
// configuration is required (it defines legal transition durations and the
// accrual arithmetic); the rest degrade gracefully: a nil Policy defaults
// to 2CPM over Power, a zero Mech disables the mechanical latency floor,
// and a nil Locations skips the replica-validity monitor.
type Config struct {
	// Power is the electrical model the run used; transition-duration and
	// energy-conservation checks recompute from it bit-exactly.
	Power power.Config
	// Mech provides the mechanical latency lower bound
	// (MechConfig.MinServiceTime). A zero value (RPM 0) disables the floor
	// but keeps the latency bookkeeping checks.
	Mech diskmodel.MechConfig
	// Policy is the power-management policy the run used (nil = 2CPM over
	// Power); the threshold monitor checks every spin-down against it.
	Policy power.Policy
	// Locations is the placement lookup; when non-nil every decision and
	// dispatch must target a replica of its block.
	Locations func(core.BlockID) []core.DiskID
	// NonFIFO relaxes the per-disk FIFO service-order check for runs using
	// an alternative queue discipline (SSTF, SCAN).
	NonFIFO bool
	// MaxViolations bounds the violations kept per monitor (default 8);
	// counting past the cap is unbounded.
	MaxViolations int
}

// Violation is one invariant breach, pinned to the event that exposed it.
type Violation struct {
	Monitor string
	Seq     uint64
	At      time.Duration
	Disk    core.DiskID    // InvalidDisk when no disk is involved
	Req     core.RequestID // -1 when no request is involved
	Dec     obs.DecisionID // causal decision, 0 when unknown
	Msg     string
}

// String renders the violation on one line.
func (v Violation) String() string {
	s := fmt.Sprintf("[%s] seq=%d t=%v", v.Monitor, v.Seq, v.At)
	if v.Disk != core.InvalidDisk {
		s += fmt.Sprintf(" disk=%d", v.Disk)
	}
	if v.Req >= 0 {
		s += fmt.Sprintf(" req=%d", v.Req)
	}
	if v.Dec != 0 {
		s += fmt.Sprintf(" dec=%d", v.Dec)
	}
	return s + ": " + v.Msg
}

// invariant is one streaming checker. observe sees every event in order;
// finish runs once after the stream ends.
type invariant interface {
	name() string
	observe(s *Suite, ev *obs.Event)
	finish(s *Suite)
}

// Suite runs a set of invariant monitors over one event stream. Create
// with NewSuite, feed with Observe (directly, via Tracer.SetObserver, or
// ObserveAll over a decoded log), then call Finish once and inspect
// Violations / WriteReport. A Suite is single-goroutine, like the
// simulator and the Tracer.
type Suite struct {
	cfg      Config
	mons     []invariant
	skipped  []string // monitors omitted by configuration, with reasons
	counts   []uint64 // total violations per monitor
	kept     [][]Violation
	cur      obs.Event
	events   uint64
	lastSeq  uint64
	lastAt   time.Duration
	hasEnd   bool
	finished bool
	// onViolation, when set, fires synchronously on every recorded
	// violation (see SetOnViolation).
	onViolation func(Violation)
}

// NewSuite builds the full monitor suite for a run described by cfg.
func NewSuite(cfg Config) *Suite {
	if cfg.Policy == nil {
		cfg.Policy = power.TwoCompetitive{Config: cfg.Power}
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 8
	}
	s := &Suite{cfg: cfg}
	s.mons = append(s.mons,
		&orderMonitor{},
		newPowerMonitor(cfg.Power),
		newEnergyMonitor(cfg.Power),
		&windowMonitor{},
		newRequestMonitor(!cfg.NonFIFO),
	)
	if cfg.Locations != nil {
		s.mons = append(s.mons, &replicaMonitor{locations: cfg.Locations})
	} else {
		s.skipped = append(s.skipped, MonitorReplicas+" (no placement lookup)")
	}
	s.mons = append(s.mons, newThresholdMonitor(cfg.Policy))
	lm := &latencyMonitor{disks: map[core.DiskID]*latencyDisk{}, arrivals: map[core.RequestID]time.Duration{}}
	if cfg.Mech.RPM > 0 {
		lm.minService = cfg.Mech.MinServiceTime()
	} else {
		s.skipped = append(s.skipped, "latency floor (no mechanics provided)")
	}
	s.mons = append(s.mons, lm)
	s.counts = make([]uint64, len(s.mons))
	s.kept = make([][]Violation, len(s.mons))
	return s
}

// Observe feeds one event to every monitor. Events must arrive in emission
// order (the tracer's, or a decoded log's). Call via Tracer.SetObserver
// for live monitoring: tracer.SetObserver(suite.Observe).
func (s *Suite) Observe(ev obs.Event) {
	s.cur = ev
	s.events++
	for _, m := range s.mons {
		m.observe(s, &s.cur)
	}
	s.lastSeq = ev.Seq
	if ev.At > s.lastAt {
		s.lastAt = ev.At
	}
	if ev.Kind == obs.KindRunEnd {
		s.hasEnd = true
	}
}

// ObserveAll feeds a decoded event log (see analyze.Load) through the
// suite in order.
func (s *Suite) ObserveAll(events []obs.Event) {
	for _, ev := range events {
		s.Observe(ev)
	}
}

// Finish runs the end-of-stream checks (unterminated requests, disks
// without end-of-run accounting). It is idempotent; Observe must not be
// called after it. Returns all kept violations, as Violations does.
func (s *Suite) Finish() []Violation {
	if !s.finished {
		s.finished = true
		for _, m := range s.mons {
			m.finish(s)
		}
	}
	return s.Violations()
}

// monitorIndex returns the registry index of the named monitor (-1 when
// the monitor was skipped by configuration).
func (s *Suite) monitorIndex(name string) int {
	for i, m := range s.mons {
		if m.name() == name {
			return i
		}
	}
	return -1
}

// add records a violation for monitor i, keeping at most MaxViolations per
// monitor but counting all of them.
func (s *Suite) add(i int, seq uint64, at time.Duration, disk core.DiskID, req core.RequestID, dec obs.DecisionID, format string, args ...any) {
	s.counts[i]++
	if len(s.kept[i]) < s.cfg.MaxViolations || s.onViolation != nil {
		v := Violation{
			Monitor: s.mons[i].name(), Seq: seq, At: at,
			Disk: disk, Req: req, Dec: dec, Msg: fmt.Sprintf(format, args...),
		}
		if len(s.kept[i]) < s.cfg.MaxViolations {
			s.kept[i] = append(s.kept[i], v)
		}
		if s.onViolation != nil {
			s.onViolation(v)
		}
	}
}

// SetOnViolation registers a hook called synchronously on every recorded
// violation (including ones beyond the per-monitor keep cap). It is the
// flight-recorder trigger point: the hook runs on the observing goroutine,
// inside Observe/Finish, so it must not re-enter the suite.
func (s *Suite) SetOnViolation(fn func(Violation)) { s.onViolation = fn }

// addEv records a violation pinned to ev.
func (s *Suite) addEv(i int, ev *obs.Event, format string, args ...any) {
	s.add(i, ev.Seq, ev.At, ev.Disk, ev.Req, ev.Dec, format, args...)
}

// monIdx finds the index of monitor m in the registry. Monitors capture it
// lazily on first violation to avoid carrying back-pointers.
func (s *Suite) monIdx(m invariant) int {
	for i, reg := range s.mons {
		if reg == m {
			return i
		}
	}
	panic("monitor: unregistered invariant")
}

// Events returns the number of events observed.
func (s *Suite) Events() uint64 { return s.events }

// Complete reports whether a run-end marker was observed.
func (s *Suite) Complete() bool { return s.hasEnd }

// Passed reports whether no monitor recorded any violation.
func (s *Suite) Passed() bool {
	for _, n := range s.counts {
		if n > 0 {
			return false
		}
	}
	return true
}

// Total returns the total violation count across monitors (including
// violations beyond the per-monitor keep cap).
func (s *Suite) Total() uint64 {
	var n uint64
	for _, c := range s.counts {
		n += c
	}
	return n
}

// Count returns the violation count for one monitor by name.
func (s *Suite) Count(name string) uint64 {
	if i := s.monitorIndex(name); i >= 0 {
		return s.counts[i]
	}
	return 0
}

// Violations returns the kept violations in monitor registry order.
func (s *Suite) Violations() []Violation {
	var out []Violation
	for _, vs := range s.kept {
		out = append(out, vs...)
	}
	return out
}

// EnergyByState returns the per-state energy totals integrated from the
// observed event stream, accumulated with the meters' addition order
// (per-disk in event order, disks summed in ascending ID order) so a
// correct log reproduces storage.Result.EnergyByState bit for bit.
func (s *Suite) EnergyByState() [core.StateSpinDown + 1]float64 {
	em := s.energyMonitor()
	var out [core.StateSpinDown + 1]float64
	ids := make([]core.DiskID, 0, len(em.disks))
	for d := range em.disks {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, d := range ids {
		for st := core.StateStandby; st <= core.StateSpinDown; st++ {
			out[st] += em.disks[d].by[st]
		}
	}
	return out
}

// VerifyResult cross-checks the run's reported by-state energy totals
// against the stream integral: any state whose total is not bit-identical
// records an energy-conservation violation. Call it after the run (live
// mode, with Result.EnergyByState) or against an independent replay
// (offline mode, with analyze.Run.EnergyByState()).
func (s *Suite) VerifyResult(byState [core.StateSpinDown + 1]float64) {
	got := s.EnergyByState()
	i := s.monitorIndex(MonitorEnergy)
	for st := core.StateStandby; st <= core.StateSpinDown; st++ {
		if got[st] != byState[st] {
			s.add(i, s.lastSeq, s.lastAt, core.InvalidDisk, -1, 0,
				"run reports %v J in %v, log integrates to %v J (diff %g)",
				byState[st], st, got[st], byState[st]-got[st])
		}
	}
}

func (s *Suite) energyMonitor() *energyMonitor {
	return s.mons[s.monitorIndex(MonitorEnergy)].(*energyMonitor)
}

// VerifyWindows cross-checks the carbon accounting's windowed energy
// against the meters: `integrated` is the accounting integrator's final
// cumulative by-state reading (by construction the telescoped sum of its
// grid-window energies), `byState` the run's reported meter totals. Any
// state that is not bit-identical records a windowed-energy violation.
// Storage calls it at end of run whenever both a monitor and an
// accounting accumulator are attached.
func (s *Suite) VerifyWindows(integrated, byState [core.StateSpinDown + 1]float64) {
	i := s.monitorIndex(MonitorWindows)
	s.mons[i].(*windowMonitor).exercised = true
	for st := core.StateStandby; st <= core.StateSpinDown; st++ {
		if integrated[st] != byState[st] {
			s.add(i, s.lastSeq, s.lastAt, core.InvalidDisk, -1, 0,
				"windowed accounting integrates %v J in %v, meter reports %v J (diff %g)",
				integrated[st], st, byState[st], integrated[st]-byState[st])
		}
	}
}

// WriteReport renders one PASS/FAIL line per monitor, the kept violations
// for failing monitors, and a summary line.
func (s *Suite) WriteReport(w io.Writer) (int64, error) {
	var n int64
	pf := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	for i, m := range s.mons {
		if wm, ok := m.(*windowMonitor); ok && !wm.exercised && s.counts[i] == 0 {
			if err := pf("doctor: SKIP %-20s (no accounting attached)\n", m.name()); err != nil {
				return n, err
			}
			continue
		}
		if s.counts[i] == 0 {
			if err := pf("doctor: PASS %-20s\n", m.name()); err != nil {
				return n, err
			}
			continue
		}
		if err := pf("doctor: FAIL %-20s %d violations\n", m.name(), s.counts[i]); err != nil {
			return n, err
		}
		for _, v := range s.kept[i] {
			if err := pf("  %s\n", v); err != nil {
				return n, err
			}
		}
		if extra := s.counts[i] - uint64(len(s.kept[i])); extra > 0 {
			if err := pf("  ... %d more\n", extra); err != nil {
				return n, err
			}
		}
	}
	for _, sk := range s.skipped {
		if err := pf("doctor: SKIP %s\n", sk); err != nil {
			return n, err
		}
	}
	status := "PASS"
	if !s.Passed() {
		status = "FAIL"
	}
	err := pf("doctor: %s — %d events, %d violations\n", status, s.events, s.Total())
	return n, err
}
