package monitor

import (
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
)

// diskTrack follows one disk's power state through the stream. The first
// power or end event reveals the state the disk held since t=0 (the
// engine's start), matching the analyzer's timeline reconstruction.
type diskTrack struct {
	state core.DiskState
	since time.Duration
	known bool
	ended bool
}

// reveal folds a transition's From state into the track, returning false
// if the tracked state disagrees with the event (a desync the power
// monitor reports; other monitors resync silently).
func (t *diskTrack) reveal(from core.DiskState) bool {
	if !t.known {
		t.state, t.known = from, true
		return true
	}
	return t.state == from
}

// orderMonitor checks the stream's total order and decision-ID causality:
// sequence numbers strictly increase, virtual time never regresses, no
// event follows the run-end marker, decision IDs are assigned densely in
// emission order, no event references a decision that has not happened,
// and decision cost terms are finite.
type orderMonitor struct {
	seen     bool
	lastSeq  uint64
	lastAt   time.Duration
	runEnded bool
	maxDec   obs.DecisionID
}

func (*orderMonitor) name() string { return MonitorOrder }

func (m *orderMonitor) observe(s *Suite, ev *obs.Event) {
	i := s.monIdx(m)
	if m.runEnded {
		s.addEv(i, ev, "%v event after the run-end marker", ev.Kind)
	}
	if m.seen {
		if ev.Seq <= m.lastSeq {
			s.addEv(i, ev, "sequence number %d not above predecessor %d", ev.Seq, m.lastSeq)
		}
		if ev.At < m.lastAt {
			s.addEv(i, ev, "virtual time went backwards: %v after %v", ev.At, m.lastAt)
		}
	}
	m.seen, m.lastSeq = true, ev.Seq
	if ev.At > m.lastAt {
		m.lastAt = ev.At
	}
	switch ev.Kind {
	case obs.KindDecision:
		if ev.Dec != m.maxDec+1 {
			s.addEv(i, ev, "decision ID %d out of order (want %d)", ev.Dec, m.maxDec+1)
		}
		if ev.Dec > m.maxDec {
			m.maxDec = ev.Dec
		}
		if math.IsNaN(ev.Cost) || math.IsInf(ev.Cost, 0) || math.IsNaN(ev.EnergyJ) || math.IsInf(ev.EnergyJ, 0) {
			s.addEv(i, ev, "non-finite cost terms C=%v E=%v", ev.Cost, ev.EnergyJ)
		}
	case obs.KindRunEnd:
		m.runEnded = true
	default:
		if ev.Dec > m.maxDec {
			s.addEv(i, ev, "references decision %d before it was made (max %d)", ev.Dec, m.maxDec)
		}
	}
}

func (*orderMonitor) finish(*Suite) {}

// powerMonitor checks the five-state power machine: transitions follow the
// paper's state graph (failures may drop any state to standby), spin-up
// and spin-down take exactly their configured durations (failures may
// truncate them), the From state of every transition matches the timeline,
// and every disk's accounting is closed by an end event before run end.
type powerMonitor struct {
	cfg   power.Config
	disks map[core.DiskID]*diskTrack
}

func newPowerMonitor(cfg power.Config) *powerMonitor {
	return &powerMonitor{cfg: cfg, disks: map[core.DiskID]*diskTrack{}}
}

func (*powerMonitor) name() string { return MonitorPower }

// legalTransition reports whether the power machine may move from one
// state to the other. Transitions to standby are legal from any state
// because an abrupt disk failure (diskmodel.Disk.Fail) drops the disk to
// standby from wherever it was.
func legalTransition(from, to core.DiskState) bool {
	if to == core.StateStandby {
		return from != core.StateStandby
	}
	switch from {
	case core.StateStandby:
		return to == core.StateSpinUp
	case core.StateSpinUp:
		return to == core.StateIdle
	case core.StateIdle:
		return to == core.StateActive || to == core.StateSpinDown
	case core.StateActive:
		return to == core.StateIdle
	case core.StateSpinDown:
		return to == core.StateSpinUp
	default:
		return false
	}
}

func (m *powerMonitor) track(d core.DiskID) *diskTrack {
	t := m.disks[d]
	if t == nil {
		t = &diskTrack{}
		m.disks[d] = t
	}
	return t
}

func (m *powerMonitor) observe(s *Suite, ev *obs.Event) {
	if ev.Kind != obs.KindPower && ev.Kind != obs.KindEnd {
		return
	}
	i := s.monIdx(m)
	if !ev.From.Valid() || !ev.To.Valid() {
		s.addEv(i, ev, "invalid power state in transition %d->%d", ev.From, ev.To)
		return
	}
	t := m.track(ev.Disk)
	if t.ended {
		s.addEv(i, ev, "%v event after the disk's end-of-run accounting", ev.Kind)
		return
	}
	if ev.Kind == obs.KindEnd {
		if t.known && t.state != ev.From {
			s.addEv(i, ev, "end event closes in %v but the timeline is in %v", ev.From, t.state)
		}
		t.ended = true
		return
	}
	if ev.From == ev.To {
		s.addEv(i, ev, "self-transition %v->%v", ev.From, ev.To)
	}
	if !t.reveal(ev.From) {
		s.addEv(i, ev, "transition leaves %v but the timeline is in %v", ev.From, t.state)
	} else if legal := legalTransition(ev.From, ev.To); !legal {
		s.addEv(i, ev, "illegal transition %v->%v", ev.From, ev.To)
	} else if t.known {
		// Spin transitions have exact durations; a failure (any-state ->
		// standby) may only truncate them.
		dur := ev.At - t.since
		switch {
		case ev.From == core.StateSpinUp && ev.To == core.StateIdle && dur != m.cfg.SpinUpTime:
			s.addEv(i, ev, "spin-up lasted %v, configured T_up is %v", dur, m.cfg.SpinUpTime)
		case ev.From == core.StateSpinUp && ev.To == core.StateStandby && dur > m.cfg.SpinUpTime:
			s.addEv(i, ev, "failed spin-up lasted %v, beyond T_up %v", dur, m.cfg.SpinUpTime)
		case ev.From == core.StateSpinDown && ev.To == core.StateSpinUp && dur != m.cfg.SpinDownTime:
			s.addEv(i, ev, "spin-down lasted %v before re-spin, configured T_down is %v", dur, m.cfg.SpinDownTime)
		case ev.From == core.StateSpinDown && ev.To == core.StateStandby && dur > m.cfg.SpinDownTime:
			s.addEv(i, ev, "spin-down lasted %v, beyond T_down %v", dur, m.cfg.SpinDownTime)
		}
	}
	t.state, t.since = ev.To, ev.At
}

func (m *powerMonitor) finish(s *Suite) {
	if !s.hasEnd {
		return // partial capture: disks legitimately still open
	}
	i := s.monIdx(m)
	ids := make([]core.DiskID, 0, len(m.disks))
	for d := range m.disks {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, d := range ids {
		if !m.disks[d].ended {
			s.add(i, s.lastSeq, s.lastAt, d, -1, 0, "no end-of-run accounting event for this disk")
		}
	}
}

// energyDisk mirrors one power.Meter: the state timeline plus the by-state
// energy sums, accumulated with the meter's exact addition order.
type energyDisk struct {
	diskTrack
	by [core.StateSpinDown + 1]float64
}

// energyMonitor checks energy conservation: every power event's accrual
// must equal Config.Accrual over the segment it closes, bit for bit;
// transition impulses appear exactly when the configured transition time
// is zero and carry exactly the configured transition energy; and the
// accumulated by-state totals reproduce the meters' (see
// Suite.VerifyResult). When the timeline desyncs (an illegal From already
// reported by the power monitor) the accrual check resyncs silently
// instead of double-reporting.
type energyMonitor struct {
	cfg   power.Config
	disks map[core.DiskID]*energyDisk
}

func newEnergyMonitor(cfg power.Config) *energyMonitor {
	return &energyMonitor{cfg: cfg, disks: map[core.DiskID]*energyDisk{}}
}

func (*energyMonitor) name() string { return MonitorEnergy }

func (m *energyMonitor) observe(s *Suite, ev *obs.Event) {
	if ev.Kind != obs.KindPower && ev.Kind != obs.KindEnd {
		return
	}
	if !ev.From.Valid() || !ev.To.Valid() {
		return // the power monitor reports it; nothing to integrate
	}
	i := s.monIdx(m)
	t := m.disks[ev.Disk]
	if t == nil {
		t = &energyDisk{}
		m.disks[ev.Disk] = t
	}
	if t.ended {
		return
	}
	inSync := t.reveal(ev.From)
	if inSync {
		want := m.cfg.Accrual(ev.From, ev.At-t.since)
		if ev.EnergyJ != want {
			s.addEv(i, ev, "%v accrual %v J over %v, meter arithmetic gives %v J (diff %g)",
				ev.From, ev.EnergyJ, ev.At-t.since, want, ev.EnergyJ-want)
		}
	}
	// Mirror the meter: the closing accrual lands on the state being left,
	// any impulse on the transition state entered.
	t.by[ev.From] += ev.EnergyJ
	if ev.Kind == obs.KindEnd {
		t.ended = true
		return
	}
	var wantImpulse float64
	switch ev.To {
	case core.StateSpinUp:
		if m.cfg.SpinUpTime == 0 {
			wantImpulse = m.cfg.SpinUpEnergy
		}
	case core.StateSpinDown:
		if m.cfg.SpinDownTime == 0 {
			wantImpulse = m.cfg.SpinDownEnergy
		}
	}
	if ev.ImpulseJ != wantImpulse {
		s.addEv(i, ev, "transition into %v carries impulse %v J, configuration implies %v J",
			ev.To, ev.ImpulseJ, wantImpulse)
	}
	if ev.ImpulseJ != 0 {
		t.by[ev.To] += ev.ImpulseJ
	}
	t.state, t.since = ev.To, ev.At
}

func (*energyMonitor) finish(*Suite) {}

// reqInfo follows one request through its lifecycle.
type reqInfo struct {
	arrived    bool
	arriveAt   time.Duration
	dispatches int
	terminal   obs.Kind // 0 until complete, drop or cachehit
	queuedOn   core.DiskID
	queued     bool
}

// requestDisk models one disk's queue: the pending FIFO and the in-flight
// request.
type requestDisk struct {
	fifo        []core.RequestID
	inflight    core.RequestID
	hasInflight bool
}

// requestMonitor checks request conservation: every request arrives
// exactly once, is dispatched only while unowned (failure drains release
// ownership implicitly — the storage layer emits no drain events), is
// served in per-disk FIFO order, completes at most once from the disk
// serving it, ends in exactly one terminal event (complete, drop or cache
// hit), and every disk's queue is empty at its end-of-run accounting.
type requestMonitor struct {
	fifoOrder bool
	reqs      map[core.RequestID]*reqInfo
	disks     map[core.DiskID]*requestDisk
}

func newRequestMonitor(fifoOrder bool) *requestMonitor {
	return &requestMonitor{
		fifoOrder: fifoOrder,
		reqs:      map[core.RequestID]*reqInfo{},
		disks:     map[core.DiskID]*requestDisk{},
	}
}

func (*requestMonitor) name() string { return MonitorRequests }

func (m *requestMonitor) req(id core.RequestID) *reqInfo {
	r := m.reqs[id]
	if r == nil {
		r = &reqInfo{queuedOn: core.InvalidDisk}
		m.reqs[id] = r
	}
	return r
}

func (m *requestMonitor) disk(id core.DiskID) *requestDisk {
	d := m.disks[id]
	if d == nil {
		d = &requestDisk{}
		m.disks[id] = d
	}
	return d
}

// release clears ownership of every request the disk holds — the model of
// a failure drain (diskmodel.Disk.Fail returns the queue for re-dispatch
// without emitting events; the only log signature is the transition to
// standby).
func (m *requestMonitor) release(s *Suite, d *requestDisk) {
	if d.hasInflight {
		m.req(d.inflight).queued = false
		d.hasInflight = false
	}
	for _, id := range d.fifo {
		m.req(id).queued = false
	}
	d.fifo = d.fifo[:0]
}

func (m *requestMonitor) observe(s *Suite, ev *obs.Event) {
	i := -1
	report := func(format string, args ...any) {
		if i < 0 {
			i = s.monIdx(m)
		}
		s.addEv(i, ev, format, args...)
	}
	switch ev.Kind {
	case obs.KindArrive:
		r := m.req(ev.Req)
		if r.arrived {
			report("duplicate arrival")
		}
		r.arrived, r.arriveAt = true, ev.At
	case obs.KindDecision:
		if !m.req(ev.Req).arrived {
			report("decision for a request that never arrived")
		}
	case obs.KindDispatch:
		r := m.req(ev.Req)
		switch {
		case !r.arrived:
			report("dispatch before arrival")
		case r.terminal != 0:
			report("dispatch after terminal %v event", r.terminal)
		case r.queued:
			report("dispatch while still owned by disk %d", r.queuedOn)
		}
		r.dispatches++
	case obs.KindQueue:
		r := m.req(ev.Req)
		if r.queued {
			report("queued on disk %d while still owned by disk %d", ev.Disk, r.queuedOn)
			break
		}
		r.queued, r.queuedOn = true, ev.Disk
		d := m.disk(ev.Disk)
		d.fifo = append(d.fifo, ev.Req)
	case obs.KindServe:
		d := m.disk(ev.Disk)
		if d.hasInflight {
			report("service starts while request %d is still in flight", d.inflight)
		}
		pos := -1
		for k, id := range d.fifo {
			if id == ev.Req {
				pos = k
				break
			}
		}
		if pos < 0 {
			report("service for a request not queued on disk %d", ev.Disk)
		} else {
			if m.fifoOrder && pos != 0 {
				report("out-of-FIFO service: queue head is request %d", d.fifo[0])
			}
			copy(d.fifo[pos:], d.fifo[pos+1:])
			d.fifo = d.fifo[:len(d.fifo)-1]
		}
		d.inflight, d.hasInflight = ev.Req, true
	case obs.KindComplete:
		d := m.disk(ev.Disk)
		r := m.req(ev.Req)
		if !d.hasInflight || d.inflight != ev.Req {
			report("completion without service in flight on disk %d", ev.Disk)
		} else {
			d.hasInflight = false
		}
		if r.terminal != 0 {
			report("second terminal event (already %v)", r.terminal)
		}
		r.terminal, r.queued = obs.KindComplete, false
	case obs.KindDrop:
		r := m.req(ev.Req)
		if r.terminal != 0 {
			report("second terminal event (already %v)", r.terminal)
		}
		if !r.arrived {
			report("drop before arrival")
		}
		r.terminal, r.queued = obs.KindDrop, false
	case obs.KindCacheHit:
		r := m.req(ev.Req)
		if r.terminal != 0 {
			report("second terminal event (already %v)", r.terminal)
		}
		if r.dispatches > 0 {
			report("cache hit after %d dispatches", r.dispatches)
		}
		r.terminal, r.queued = obs.KindCacheHit, false
	case obs.KindPower:
		if ev.To == core.StateStandby {
			// Normal spin-down completion reaches standby with an empty
			// queue; a failure drains whatever the disk held. Either way
			// the disk owns nothing once it is in standby.
			m.release(s, m.disk(ev.Disk))
		}
	case obs.KindEnd:
		d := m.disk(ev.Disk)
		pending := len(d.fifo)
		if d.hasInflight {
			pending++
		}
		if pending > 0 {
			report("disk ends the run with %d requests outstanding", pending)
		}
	}
}

func (m *requestMonitor) finish(s *Suite) {
	if !s.hasEnd {
		return // partial capture: lifecycles legitimately still open
	}
	i := s.monIdx(m)
	ids := make([]core.RequestID, 0, len(m.reqs))
	for id := range m.reqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		r := m.reqs[id]
		if r.arrived && r.terminal == 0 {
			s.add(i, s.lastSeq, r.arriveAt, core.InvalidDisk, id, 0,
				"request arrived but never completed, dropped or hit cache")
		}
	}
}

// replicaMonitor checks that every scheduling decision and every dispatch
// targets a disk actually holding a replica of the block.
type replicaMonitor struct {
	locations func(core.BlockID) []core.DiskID
}

func (*replicaMonitor) name() string { return MonitorReplicas }

func (m *replicaMonitor) observe(s *Suite, ev *obs.Event) {
	switch ev.Kind {
	case obs.KindDecision, obs.KindDispatch:
	default:
		return
	}
	if ev.Block < 0 {
		return // logs from before decisions carried blocks
	}
	for _, d := range m.locations(ev.Block) {
		if d == ev.Disk {
			return
		}
	}
	s.addEv(s.monIdx(m), ev, "%v targets disk %d, which holds no replica of block %d",
		ev.Kind, ev.Disk, ev.Block)
}

func (*replicaMonitor) finish(*Suite) {}

// thresholdMonitor checks 2CPM compliance: under a spin-down policy every
// idle->spin-down transition happens exactly the policy threshold after
// the disk entered idle; under always-on no disk ever spins down.
type thresholdMonitor struct {
	threshold time.Duration
	spinsDown bool
	policy    string
	disks     map[core.DiskID]*diskTrack
}

func newThresholdMonitor(p power.Policy) *thresholdMonitor {
	idle, ok := p.SpinDownAfter()
	return &thresholdMonitor{threshold: idle, spinsDown: ok, policy: p.Name(), disks: map[core.DiskID]*diskTrack{}}
}

func (*thresholdMonitor) name() string { return MonitorThreshold }

func (m *thresholdMonitor) observe(s *Suite, ev *obs.Event) {
	if ev.Kind != obs.KindPower || !ev.From.Valid() || !ev.To.Valid() {
		return
	}
	t := m.disks[ev.Disk]
	if t == nil {
		t = &diskTrack{}
		m.disks[ev.Disk] = t
	}
	inSync := t.reveal(ev.From)
	if ev.From == core.StateIdle && ev.To == core.StateSpinDown {
		i := s.monIdx(m)
		switch {
		case !m.spinsDown:
			s.addEv(i, ev, "disk spun down under the %s policy, which never spins down", m.policy)
		case inSync:
			if dur := ev.At - t.since; dur != m.threshold {
				s.addEv(i, ev, "spin-down after %v idle; the %s threshold is %v", dur, m.policy, m.threshold)
			}
		}
	}
	t.state, t.since = ev.To, ev.At
}

func (*thresholdMonitor) finish(*Suite) {}

// latencyDisk tracks the in-flight service interval on one disk.
type latencyDisk struct {
	serveAt time.Duration
	req     core.RequestID
	serving bool
}

// latencyMonitor checks latency sanity: a completion's recorded latency is
// exactly completion time minus arrival time, and both the latency and the
// serve->complete interval respect the mechanical lower bound (mean
// rotational latency) when mechanics are configured. Cache hits bypass the
// mechanics and only need a non-negative latency.
type latencyMonitor struct {
	minService time.Duration // 0 disables the mechanical floor
	disks      map[core.DiskID]*latencyDisk
	arrivals   map[core.RequestID]time.Duration
}

func (*latencyMonitor) name() string { return MonitorLatency }

func (m *latencyMonitor) observe(s *Suite, ev *obs.Event) {
	switch ev.Kind {
	case obs.KindArrive:
		m.arrivals[ev.Req] = ev.At
	case obs.KindServe:
		d := m.disks[ev.Disk]
		if d == nil {
			d = &latencyDisk{}
			m.disks[ev.Disk] = d
		}
		d.serveAt, d.req, d.serving = ev.At, ev.Req, true
	case obs.KindComplete:
		i := s.monIdx(m)
		if at, ok := m.arrivals[ev.Req]; ok {
			if want := ev.At - at; ev.Latency != want {
				s.addEv(i, ev, "recorded latency %v, completion minus arrival is %v", ev.Latency, want)
			}
		}
		if m.minService > 0 && ev.Latency < m.minService {
			s.addEv(i, ev, "latency %v below the mechanical floor %v (half a revolution)",
				ev.Latency, m.minService)
		}
		if d := m.disks[ev.Disk]; d != nil && d.serving && d.req == ev.Req {
			d.serving = false
			if m.minService > 0 && ev.At-d.serveAt < m.minService {
				s.addEv(i, ev, "service took %v, below the mechanical floor %v",
					ev.At-d.serveAt, m.minService)
			}
		}
	case obs.KindCacheHit:
		if ev.Latency < 0 {
			s.addEv(s.monIdx(m), ev, "negative cache-hit latency %v", ev.Latency)
		}
	}
}

func (*latencyMonitor) finish(*Suite) {}
