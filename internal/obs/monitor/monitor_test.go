package monitor_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// allMonitors lists every monitor name, for exactly-one-trip assertions.
var allMonitors = []string{
	monitor.MonitorOrder, monitor.MonitorPower, monitor.MonitorEnergy,
	monitor.MonitorRequests, monitor.MonitorReplicas,
	monitor.MonitorThreshold, monitor.MonitorLatency,
}

type recorded struct {
	cfg    storage.Config
	plc    *placement.Placement
	events []obs.Event
	res    *storage.Result
}

// record executes one small seeded run with a fully traced heuristic
// scheduler and returns the event log plus the run result.
func record(t *testing.T, opts ...storage.RunOption) recorded {
	t.Helper()
	cfg := storage.DefaultConfig()
	cfg.NumDisks = 8
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 8, NumBlocks: 60, ReplicationFactor: 2, ZipfExponent: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(400, 60, 3)
	tr := obs.NewTracer(1 << 16)
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
	res, err := storage.RunOnline(cfg, plc.Locations, h, reqs,
		append([]storage.RunOption{storage.WithTracer(tr)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer ring overflowed: %d events dropped", tr.Dropped())
	}
	return recorded{cfg: cfg, plc: plc, events: tr.Events(), res: res}
}

// suiteFor builds the full doctor configuration for a recorded run.
func suiteFor(rec recorded) *monitor.Suite {
	return monitor.NewSuite(monitor.Config{
		Power:     rec.cfg.Power,
		Mech:      rec.cfg.Mech,
		Policy:    rec.cfg.Policy,
		Locations: rec.plc.Locations,
	})
}

func TestDoctorCleanRunPasses(t *testing.T) {
	t.Parallel()
	rec := record(t)
	s := suiteFor(rec)
	s.ObserveAll(rec.events)
	s.VerifyResult(rec.res.EnergyByState)
	s.Finish()
	if !s.Passed() {
		for _, v := range s.Violations() {
			t.Error(v)
		}
		t.Fatalf("clean run reported %d violations", s.Total())
	}
	if !s.Complete() {
		t.Error("run-end marker not observed")
	}
	if got := s.Events(); got != uint64(len(rec.events)) {
		t.Errorf("observed %d events, fed %d", got, len(rec.events))
	}
	var sb strings.Builder
	if _, err := s.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	rep := sb.String()
	if strings.Contains(rep, "FAIL") {
		t.Errorf("report contains FAIL:\n%s", rep)
	}
	for _, name := range []string{monitor.MonitorPower, monitor.MonitorEnergy, monitor.MonitorRequests} {
		if !strings.Contains(rep, "PASS "+name) {
			t.Errorf("report missing PASS line for %s:\n%s", name, rep)
		}
	}
}

// TestDoctorEnergyIntegralBitExact pins the tentpole's conservation claim:
// the suite's stream integral reproduces the run's per-state meter totals
// bit for bit, with no tolerance.
func TestDoctorEnergyIntegralBitExact(t *testing.T) {
	t.Parallel()
	rec := record(t)
	s := suiteFor(rec)
	s.ObserveAll(rec.events)
	got := s.EnergyByState()
	for st := core.StateStandby; st <= core.StateSpinDown; st++ {
		if got[st] != rec.res.EnergyByState[st] {
			t.Errorf("%v: integral %v J != meter %v J (diff %g)",
				st, got[st], rec.res.EnergyByState[st], got[st]-rec.res.EnergyByState[st])
		}
	}
}

// TestDoctorMutationsTripExactlyOneMonitor is the framework's soundness
// check: four targeted log corruptions — an illegal power transition, a
// dropped completion, a corrupted energy record and an off-replica
// decision — each trip their own monitor and no other.
func TestDoctorMutationsTripExactlyOneMonitor(t *testing.T) {
	t.Parallel()
	rec := record(t)

	find := func(match func(obs.Event) bool) int {
		for i, ev := range rec.events {
			if match(ev) {
				return i
			}
		}
		t.Fatal("no event matches the mutation target")
		return -1
	}
	clone := func() []obs.Event {
		out := make([]obs.Event, len(rec.events))
		copy(out, rec.events)
		return out
	}

	cases := []struct {
		name   string
		trips  string
		mutate func() []obs.Event
	}{
		{
			name:  "illegal transition",
			trips: monitor.MonitorPower,
			mutate: func() []obs.Event {
				evs := clone()
				i := find(func(ev obs.Event) bool {
					return ev.Kind == obs.KindPower &&
						ev.From == core.StateStandby && ev.To == core.StateSpinUp
				})
				evs[i].To = core.StateActive // standby -> active skips spin-up
				return evs
			},
		},
		{
			name:  "dropped completion",
			trips: monitor.MonitorRequests,
			mutate: func() []obs.Event {
				evs := clone()
				i := find(func(ev obs.Event) bool { return ev.Kind == obs.KindComplete })
				return append(evs[:i:i], evs[i+1:]...)
			},
		},
		{
			name:  "corrupted energy record",
			trips: monitor.MonitorEnergy,
			mutate: func() []obs.Event {
				evs := clone()
				i := find(func(ev obs.Event) bool { return ev.Kind == obs.KindPower })
				evs[i].EnergyJ += 0.5
				return evs
			},
		},
		{
			name:  "off-replica decision",
			trips: monitor.MonitorReplicas,
			mutate: func() []obs.Event {
				evs := clone()
				i := find(func(ev obs.Event) bool { return ev.Kind == obs.KindDecision })
				replicas := rec.plc.Locations(evs[i].Block)
				for d := core.DiskID(0); int(d) < rec.cfg.NumDisks; d++ {
					onReplica := false
					for _, r := range replicas {
						if r == d {
							onReplica = true
							break
						}
					}
					if !onReplica {
						evs[i].Disk = d
						return evs
					}
				}
				t.Fatal("every disk holds a replica; cannot craft an off-replica decision")
				return nil
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := suiteFor(rec)
			s.ObserveAll(tc.mutate())
			s.Finish()
			if got := s.Count(tc.trips); got == 0 {
				t.Errorf("%s monitor did not trip", tc.trips)
			}
			for _, name := range allMonitors {
				if name == tc.trips {
					continue
				}
				if got := s.Count(name); got != 0 {
					t.Errorf("%s monitor tripped %d times; only %s should", name, got, tc.trips)
					for _, v := range s.Violations() {
						if v.Monitor == name {
							t.Logf("  %s", v)
						}
					}
				}
			}
		})
	}
}

// TestDoctorVerifyResultCatchesMismatch: a tampered reported total is an
// energy-conservation violation even when the stream itself is clean.
func TestDoctorVerifyResultCatchesMismatch(t *testing.T) {
	t.Parallel()
	rec := record(t)
	s := suiteFor(rec)
	s.ObserveAll(rec.events)
	tampered := rec.res.EnergyByState
	tampered[core.StateIdle] += 1
	s.VerifyResult(tampered)
	if s.Count(monitor.MonitorEnergy) == 0 {
		t.Error("tampered reported total not caught")
	}
}

// TestDoctorLiveRunPasses exercises the live tee: storage.WithMonitor
// observes the run as it executes and storage finalizes the suite
// (VerifyResult + Finish) at end of run.
func TestDoctorLiveRunPasses(t *testing.T) {
	t.Parallel()
	cfg := storage.DefaultConfig()
	cfg.NumDisks = 8
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 8, NumBlocks: 60, ReplicationFactor: 2, ZipfExponent: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(400, 60, 5)
	s := monitor.NewSuite(monitor.Config{
		Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: plc.Locations,
	})
	tr := obs.NewTracer(256) // deliberately tiny: the live tee must not depend on ring capacity
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
	if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs,
		storage.WithTracer(tr), storage.WithMonitor(s)); err != nil {
		t.Fatal(err)
	}
	if !s.Passed() {
		for _, v := range s.Violations() {
			t.Error(v)
		}
		t.Fatalf("live run reported %d violations", s.Total())
	}
	if !s.Complete() {
		t.Error("live suite saw no run-end marker")
	}
	if s.Events() == 0 {
		t.Error("live suite observed no events")
	}
}

// TestDoctorLiveWithoutTracer: WithMonitor alone creates an internal feed;
// the stream then lacks scheduler decisions but all physical invariants
// still verify.
func TestDoctorLiveWithoutTracer(t *testing.T) {
	t.Parallel()
	cfg := storage.DefaultConfig()
	cfg.NumDisks = 8
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 8, NumBlocks: 60, ReplicationFactor: 2, ZipfExponent: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(300, 60, 5)
	s := monitor.NewSuite(monitor.Config{
		Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: plc.Locations,
	})
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
	if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs, storage.WithMonitor(s)); err != nil {
		t.Fatal(err)
	}
	if !s.Passed() {
		for _, v := range s.Violations() {
			t.Error(v)
		}
		t.Fatal("monitor-only run reported violations")
	}
	if s.Events() == 0 {
		t.Error("internal tracer fed no events")
	}
}

// TestDoctorFailureInjectionConservation is the fault-tolerance acceptance
// test: runs with abrupt disk failures, drains and re-dispatches still
// satisfy every invariant — in particular request and energy conservation
// — under the full suite, for both scheduling models.
func TestDoctorFailureInjectionConservation(t *testing.T) {
	t.Parallel()
	cfg := storage.DefaultConfig()
	cfg.NumDisks = 8
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 8, NumBlocks: 60, ReplicationFactor: 3, ZipfExponent: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(500, 60, 9)
	failures := []storage.FailureEvent{
		{Disk: 0, At: time.Second, Duration: 5 * time.Minute},
		{Disk: 3, At: 30 * time.Second, Duration: 10 * time.Minute},
		{Disk: 0, At: 20 * time.Minute, Duration: time.Minute},
	}
	newSuite := func() *monitor.Suite {
		return monitor.NewSuite(monitor.Config{
			Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: plc.Locations,
		})
	}
	check := func(t *testing.T, s *monitor.Suite, res *storage.Result) {
		t.Helper()
		if res.Redispatched == 0 {
			t.Log("note: no requests were drained by the injected failures")
		}
		for _, name := range []string{monitor.MonitorRequests, monitor.MonitorEnergy} {
			if got := s.Count(name); got != 0 {
				t.Errorf("%s: %d violations under failure injection", name, got)
			}
		}
		if !s.Passed() {
			for _, v := range s.Violations() {
				t.Error(v)
			}
		}
	}
	t.Run("online", func(t *testing.T) {
		t.Parallel()
		s := newSuite()
		tr := obs.NewTracer(1 << 10)
		h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
		res, err := storage.RunOnline(cfg, plc.Locations, h, reqs,
			storage.WithTracer(tr), storage.WithMonitor(s), storage.WithFailures(failures...))
		if err != nil {
			t.Fatal(err)
		}
		check(t, s, res)
	})
	t.Run("batch", func(t *testing.T) {
		t.Parallel()
		s := newSuite()
		tr := obs.NewTracer(1 << 10)
		w := sched.WSC{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
		res, err := storage.RunBatch(cfg, plc.Locations, w, reqs, 100*time.Millisecond,
			storage.WithTracer(tr), storage.WithMonitor(s), storage.WithFailures(failures...))
		if err != nil {
			t.Fatal(err)
		}
		check(t, s, res)
	})
}

// TestDoctorNonFIFODiscipline: an SSTF run passes with the FIFO check
// relaxed (the other request-conservation checks remain in force).
func TestDoctorNonFIFODiscipline(t *testing.T) {
	t.Parallel()
	cfg := storage.DefaultConfig()
	cfg.NumDisks = 8
	cfg.Discipline = diskmodel.SSTF
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 8, NumBlocks: 60, ReplicationFactor: 2, ZipfExponent: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(400, 60, 4)
	s := monitor.NewSuite(monitor.Config{
		Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy,
		Locations: plc.Locations, NonFIFO: true,
	})
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
	if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs, storage.WithMonitor(s)); err != nil {
		t.Fatal(err)
	}
	if !s.Passed() {
		for _, v := range s.Violations() {
			t.Error(v)
		}
		t.Fatal("SSTF run reported violations with NonFIFO set")
	}
}

// TestDoctorPartialLogNoFalsePositives: a truncated capture (no run-end
// marker) must not report unterminated requests or unclosed disks — those
// finish checks only make sense for complete logs.
func TestDoctorPartialLogTolerated(t *testing.T) {
	t.Parallel()
	rec := record(t)
	half := rec.events[:len(rec.events)/2]
	s := suiteFor(rec)
	s.ObserveAll(half)
	s.Finish()
	if s.Complete() {
		t.Fatal("half a log should not contain the run-end marker")
	}
	if !s.Passed() {
		for _, v := range s.Violations() {
			t.Error(v)
		}
		t.Fatal("partial capture reported violations")
	}
}

// TestDoctorViolationCapKeepsCounting: MaxViolations bounds kept details,
// not the counts.
func TestDoctorViolationCapKeepsCounting(t *testing.T) {
	t.Parallel()
	rec := record(t)
	evs := make([]obs.Event, len(rec.events))
	copy(evs, rec.events)
	corrupted := 0
	for i := range evs {
		if evs[i].Kind == obs.KindPower {
			evs[i].EnergyJ += 0.25
			corrupted++
		}
	}
	if corrupted < 5 {
		t.Fatalf("only %d power events in the fixture", corrupted)
	}
	s := monitor.NewSuite(monitor.Config{
		Power: rec.cfg.Power, Mech: rec.cfg.Mech, Policy: rec.cfg.Policy,
		Locations: rec.plc.Locations, MaxViolations: 2,
	})
	s.ObserveAll(evs)
	if got := s.Count(monitor.MonitorEnergy); got < uint64(corrupted) {
		t.Errorf("counted %d energy violations, corrupted %d records", got, corrupted)
	}
	kept := 0
	for _, v := range s.Violations() {
		if v.Monitor == monitor.MonitorEnergy {
			kept++
		}
	}
	if kept != 2 {
		t.Errorf("kept %d violations, cap is 2", kept)
	}
	var sb strings.Builder
	if _, err := s.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "more") {
		t.Errorf("report does not mention elided violations:\n%s", sb.String())
	}
}
