package obs

import (
	"strings"
	"testing"
)

// TestCollectorEmitsZeroValuedSeries pins the emit-when-zero contract the
// reconciliation gates rely on: a registered series renders even when it
// was never incremented (or was explicitly set to zero), with its HELP and
// TYPE headers and an exact "0" value — absence of a sample is a scrape
// bug, not a quiet zero.
func TestCollectorEmitsZeroValuedSeries(t *testing.T) {
	c := NewCollector()
	c.Counter("untouched_total", "Registered but never incremented.")
	z := c.Counter("zeroed_total", "Incremented by zero.", Label{Key: "grid", Value: "flat"})
	z.Add(0)
	g := c.Gauge("zero_gauge", "Set to zero explicitly.")
	g.Set(0)
	c.Histogram("empty_seconds", "No observations.", []float64{1, 2})

	out := c.String()
	for _, want := range []string{
		"# HELP untouched_total Registered but never incremented.\n",
		"# TYPE untouched_total counter\n",
		"untouched_total 0\n",
		`zeroed_total{grid="flat"} 0` + "\n",
		"zero_gauge 0\n",
		// Empty histograms render every bucket at zero.
		`empty_seconds_bucket{le="1"} 0` + "\n",
		`empty_seconds_bucket{le="+Inf"} 0` + "\n",
		"empty_seconds_sum 0\n",
		"empty_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export lacks %q:\n%s", want, out)
		}
	}
}

// TestCounterReconcileToZero checks the end-of-run overwrite discipline on
// the degenerate run: a counter that accumulated live increments can be
// reconciled back to exactly zero, and renders as "0".
func TestCounterReconcileToZero(t *testing.T) {
	c := NewCollector()
	x := c.Counter("settled_total", "Reconciled to the authoritative zero.")
	x.Add(0.125) // approximate live increment
	x.Reconcile(0)
	if got := x.Value(); got != 0 {
		t.Fatalf("Value() after Reconcile(0) = %v, want 0", got)
	}
	if out := c.String(); !strings.Contains(out, "settled_total 0\n") {
		t.Fatalf("export lacks zero sample after reconcile:\n%s", out)
	}
}
