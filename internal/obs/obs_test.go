package obs

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// emitOneOfEach drives every emit helper once and returns the tracer.
func emitOneOfEach(t *Tracer) {
	t.Arrive(1*time.Second, 7, 42)
	dec := t.Decision(1*time.Second, 7, 42, 3, 1.25, 148.5, 2)
	t.Dispatch(1*time.Second, 7, 42, 3, dec)
	t.Queue(1*time.Second, 7, 3, 4, dec)
	t.Serve(2*time.Second, 7, 3)
	t.Complete(2*time.Second+5*time.Millisecond, 7, 3, 1*time.Second+5*time.Millisecond)
	t.Power(3*time.Second, 3, core.StateIdle, core.StateSpinDown, 27.9, 0.5, dec)
	t.Drop(4*time.Second, 8, 43)
	t.CacheHit(5*time.Second, 9, 44, 100*time.Microsecond)
	t.End(6*time.Second, 3, core.StateStandby, 3.75)
	t.RunEnd(6*time.Second, 12345)
}

// emitOneOfEachCount is the number of events emitOneOfEach produces.
const emitOneOfEachCount = 11

func TestTracerJSONLRoundTrip(t *testing.T) {
	t.Parallel()
	tr := NewTracer(64)
	emitOneOfEach(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSONL round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestTracerBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	tr := NewTracer(64)
	emitOneOfEach(tr)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestTracerFlightRecorderKeepsNewest(t *testing.T) {
	t.Parallel()
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Serve(time.Duration(i)*time.Second, core.RequestID(i), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := core.RequestID(6 + i); ev.Req != want {
			t.Fatalf("event %d: req %d, want %d", i, ev.Req, want)
		}
		if want := uint64(6 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTracerStreamingSinkLosesNothing(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	tr := NewTracer(2) // tiny ring forces mid-run flushes
	tr.SetSink(&buf, false)
	for i := 0; i < 7; i++ {
		tr.Serve(time.Duration(i)*time.Second, core.RequestID(i), 1)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("streamed %d events, want 7", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d out of order: seq %d", i, ev.Seq)
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("streaming tracer dropped %d events", tr.Dropped())
	}
}

func TestTracerStreamingBinarySink(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	tr := NewTracer(2)
	tr.SetSink(&buf, true)
	emitOneOfEach(tr)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != emitOneOfEachCount {
		t.Fatalf("streamed %d events, want %d", len(got), emitOneOfEachCount)
	}
}

func TestTracerDisabledAndNilAllocateNothing(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(false)
	var nilTr *Tracer
	for name, target := range map[string]*Tracer{"disabled": tr, "nil": nilTr} {
		allocs := testing.AllocsPerRun(100, func() {
			target.Arrive(time.Second, 1, 2)
			target.Power(time.Second, 0, core.StateIdle, core.StateActive, 1.0, 0, 0)
			target.Complete(time.Second, 1, 0, time.Millisecond)
		})
		if allocs != 0 {
			t.Errorf("%s tracer: %.0f allocs/op, want 0", name, allocs)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer buffered %d events", tr.Len())
	}
}

func TestTracerEnabledEmitDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1 << 12)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Serve(time.Second, 1, 2)
	})
	if allocs != 0 {
		t.Errorf("enabled emit into ring: %.0f allocs/op, want 0", allocs)
	}
}

func TestTracerDeterministicBytes(t *testing.T) {
	t.Parallel()
	render := func() []byte {
		tr := NewTracer(64)
		emitOneOfEach(tr)
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs rendered different bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if got := KindPower.String(); got != "power" {
		t.Fatalf("KindPower = %q", got)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown kind = %q", got)
	}
}
