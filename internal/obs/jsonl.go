package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/core"
)

// JSONL event encoding. One JSON object per line, keys in a fixed order,
// integers for times (nanoseconds) and shortest-round-trip formatting for
// floats, so encoding is canonical: equal event sequences produce
// byte-identical logs. Only the fields meaningful for the event's kind are
// written (see docs/OBSERVABILITY.md for the schema reference).

// AppendJSONL appends the canonical JSONL encoding of ev (including the
// trailing newline) to dst and returns the extended slice.
func AppendJSONL(dst []byte, ev Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, int64(ev.At), 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, ev.Seq, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, '"')
	if ev.Kind == KindRunEnd {
		// Block carries the kernel's executed-event count, not a block ID.
		dst = append(dst, `,"fired":`...)
		dst = strconv.AppendInt(dst, int64(ev.Block), 10)
		return append(dst, '}', '\n')
	}
	if ev.Disk != core.InvalidDisk {
		dst = append(dst, `,"disk":`...)
		dst = strconv.AppendInt(dst, int64(ev.Disk), 10)
	}
	if ev.Req >= 0 {
		dst = append(dst, `,"req":`...)
		dst = strconv.AppendInt(dst, int64(ev.Req), 10)
	}
	if ev.Block >= 0 {
		dst = append(dst, `,"block":`...)
		dst = strconv.AppendInt(dst, int64(ev.Block), 10)
	}
	if ev.Dec != 0 {
		dst = append(dst, `,"dec":`...)
		dst = strconv.AppendInt(dst, int64(ev.Dec), 10)
	}
	switch ev.Kind {
	case KindPower:
		dst = append(dst, `,"from":"`...)
		dst = append(dst, ev.From.String()...)
		dst = append(dst, `","to":"`...)
		dst = append(dst, ev.To.String()...)
		dst = append(dst, `","j":`...)
		dst = appendFloat(dst, ev.EnergyJ)
		if ev.ImpulseJ != 0 {
			dst = append(dst, `,"imp":`...)
			dst = appendFloat(dst, ev.ImpulseJ)
		}
	case KindEnd:
		dst = append(dst, `,"state":"`...)
		dst = append(dst, ev.From.String()...)
		dst = append(dst, `","j":`...)
		dst = appendFloat(dst, ev.EnergyJ)
	case KindDecision:
		dst = append(dst, `,"cost":`...)
		dst = appendFloat(dst, ev.Cost)
		dst = append(dst, `,"ej":`...)
		dst = appendFloat(dst, ev.EnergyJ)
		dst = append(dst, `,"load":`...)
		dst = strconv.AppendInt(dst, int64(ev.Depth), 10)
	case KindQueue:
		dst = append(dst, `,"depth":`...)
		dst = strconv.AppendInt(dst, int64(ev.Depth), 10)
	case KindComplete, KindCacheHit:
		dst = append(dst, `,"lat":`...)
		dst = strconv.AppendInt(dst, int64(ev.Latency), 10)
	}
	return append(dst, '}', '\n')
}

// appendFloat formats a float with the shortest representation that
// round-trips, the same canonical form for every encoder in this package.
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// ReadJSONL parses a JSONL event log produced by WriteJSONL or a streaming
// JSONL sink back into events. It accepts exactly the canonical encoding:
// every parsed line must re-encode to the same bytes, so permuted keys,
// redundant fields and non-canonical number forms are rejected rather than
// silently normalized (it is a log-analysis tool, not a general JSON
// parser, and downstream verification relies on logs being canonical).
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	var scratch []byte
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		ev, err := parseJSONLEvent(b)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		scratch = AppendJSONL(scratch[:0], ev)
		if canon := scratch[:len(scratch)-1]; !bytes.Equal(canon, b) {
			return nil, fmt.Errorf("obs: line %d: non-canonical encoding %q (canonical form %q)", line, b, canon)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseJSONLEvent(b []byte) (Event, error) {
	ev := Event{Disk: core.InvalidDisk, Req: -1, Block: -1}
	if len(b) < 2 || b[0] != '{' || b[len(b)-1] != '}' {
		return ev, fmt.Errorf("not an object: %q", b)
	}
	for _, field := range bytes.Split(b[1:len(b)-1], []byte{','}) {
		key, val, ok := bytes.Cut(field, []byte{':'})
		if !ok {
			return ev, fmt.Errorf("bad field %q", field)
		}
		k := string(bytes.Trim(key, `"`))
		v := string(val)
		var err error
		switch k {
		case "t":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			ev.At = time.Duration(n)
		case "seq":
			ev.Seq, err = strconv.ParseUint(v, 10, 64)
		case "kind":
			ev.Kind, err = kindFromString(trimQuotes(v))
		case "disk":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			ev.Disk = core.DiskID(n)
		case "req":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			ev.Req = core.RequestID(n)
		case "block", "fired":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			ev.Block = core.BlockID(n)
		case "dec":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			ev.Dec = DecisionID(n)
		case "from":
			ev.From, err = stateFromString(trimQuotes(v))
		case "to":
			ev.To, err = stateFromString(trimQuotes(v))
		case "state":
			ev.From, err = stateFromString(trimQuotes(v))
			ev.To = ev.From
		case "j", "ej":
			ev.EnergyJ, err = strconv.ParseFloat(v, 64)
		case "imp":
			ev.ImpulseJ, err = strconv.ParseFloat(v, 64)
		case "cost":
			ev.Cost, err = strconv.ParseFloat(v, 64)
		case "load", "depth":
			ev.Depth, err = strconv.Atoi(v)
		case "lat":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			ev.Latency = time.Duration(n)
		default:
			return ev, fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return ev, fmt.Errorf("field %q: %w", k, err)
		}
	}
	if ev.Kind == 0 {
		return ev, fmt.Errorf("missing kind in %q", b)
	}
	return ev, nil
}

func trimQuotes(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

func kindFromString(s string) (Kind, error) {
	for k := KindArrive; k <= KindRunEnd; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

func stateFromString(s string) (core.DiskState, error) {
	for st := core.StateStandby; st <= core.StateSpinDown; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown state %q", s)
}
