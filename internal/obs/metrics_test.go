package obs

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestCollectorGolden pins the exact exporter output for a small registry:
// the Prometheus text format with families sorted by name, series sorted
// by label signature, and shortest-round-trip float formatting.
func TestCollectorGolden(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	c.Counter("sim_spin_ups_total", "Spin-up operations.").Add(42)
	c.Counter("sim_energy_joules_total", "Energy by state.", Label{"state", "idle"}).Add(1234.5)
	c.Counter("sim_energy_joules_total", "Energy by state.", Label{"state", "standby"}).Add(0.125)
	c.Gauge("sim_time_seconds", "Virtual time.").Set(3600)
	h := c.Histogram("sim_response_seconds", "Response time.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5) // beyond every bound: only +Inf
	const want = `# HELP sim_energy_joules_total Energy by state.
# TYPE sim_energy_joules_total counter
sim_energy_joules_total{state="idle"} 1234.5
sim_energy_joules_total{state="standby"} 0.125
# HELP sim_response_seconds Response time.
# TYPE sim_response_seconds histogram
sim_response_seconds_bucket{le="0.01"} 1
sim_response_seconds_bucket{le="0.1"} 3
sim_response_seconds_bucket{le="1"} 3
sim_response_seconds_bucket{le="+Inf"} 4
sim_response_seconds_sum 5.105
sim_response_seconds_count 4
# HELP sim_spin_ups_total Spin-up operations.
# TYPE sim_spin_ups_total counter
sim_spin_ups_total 42
# HELP sim_time_seconds Virtual time.
# TYPE sim_time_seconds gauge
sim_time_seconds 3600
`
	if got := c.String(); got != want {
		t.Fatalf("exporter output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCollectorHandlesShareSeries(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	a := c.Counter("x_total", "X.")
	b := c.Counter("x_total", "X.")
	a.Add(1)
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("shared series value = %v, want 3", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewCollector().Counter("x_total", "X.").Add(-1)
}

func TestCollectorTypeConflictPanics(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	c.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	c.Gauge("x_total", "X.")
}

func TestGaugeAddAndSet(t *testing.T) {
	t.Parallel()
	g := NewCollector().Gauge("g", "G.")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestCounterReconcileOverwrites(t *testing.T) {
	t.Parallel()
	x := NewCollector().Counter("e_total", "E.")
	x.Add(5)
	x.Reconcile(4.75)
	if got := x.Value(); got != 4.75 {
		t.Fatalf("reconciled value = %v, want 4.75", got)
	}
}

func TestRunMetricsTransitionAttribution(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	m := NewRunMetrics(c)
	// Leave idle (12.5 J accrued) entering spin-down with a 13 J impulse.
	m.Transition(core.StateIdle, core.StateSpinDown, EnergyDelta{StateJ: 12.5, ImpulseJ: 13})
	if got := m.Energy[core.StateIdle].Value(); got != 12.5 {
		t.Fatalf("idle energy = %v, want 12.5", got)
	}
	if got := m.Energy[core.StateSpinDown].Value(); got != 13.0 {
		t.Fatalf("spin-down energy = %v, want 13", got)
	}
	if got := m.SpinDowns.Value(); got != 1 {
		t.Fatalf("spin-downs = %v, want 1", got)
	}
	if got := m.SpinUps.Value(); got != 0 {
		t.Fatalf("spin-ups = %v, want 0", got)
	}
	// Reconciliation replaces live values with authoritative totals.
	var exact [core.StateSpinDown + 1]float64
	exact[core.StateIdle] = 100
	m.ReconcileEnergy(exact)
	if got := m.Energy[core.StateIdle].Value(); got != 100 {
		t.Fatalf("reconciled idle energy = %v, want 100", got)
	}
	if got := m.Energy[core.StateSpinDown].Value(); got != 0 {
		t.Fatalf("reconciled spin-down energy = %v, want 0", got)
	}
}

func TestRunMetricsSharedRegistry(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	a, b := NewRunMetrics(c), NewRunMetrics(c)
	a.SpinUps.Inc()
	b.SpinUps.Inc()
	if got := a.SpinUps.Value(); got != 2 {
		t.Fatalf("shared spin-ups = %v, want 2", got)
	}
}

func TestHistogramUpdateDoesNotAllocate(t *testing.T) {
	c := NewCollector()
	m := NewRunMetrics(c)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Response.Observe(0.042)
		m.SpinUps.Inc()
	})
	if allocs != 0 {
		t.Errorf("hot-path metric updates: %.0f allocs/op, want 0", allocs)
	}
}

func TestWriteToIsSnapshotable(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	x := c.Counter("x_total", "X.")
	x.Add(1)
	first := c.String()
	x.Add(1)
	second := c.String()
	if first == second {
		t.Fatal("snapshot did not change after update")
	}
	if !strings.Contains(second, "x_total 2") {
		t.Fatalf("second snapshot missing updated value:\n%s", second)
	}
}
