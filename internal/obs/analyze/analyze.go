// Package analyze is the consumer side of the observability layer: a
// replay/query engine over the canonical event logs the simulator emits
// (internal/obs JSONL and binary formats).
//
// Where internal/obs only records, analyze reconstructs: per-request
// lifecycles (arrive → dispatch → queue → serve → complete, with drops,
// cache hits and failure-driven redispatches), per-disk power-state
// timelines, and — because every event carries the scheduler decision that
// caused it — an exact energy attribution: which decision woke which disk
// and what it cost, the causal question behind the paper's break-even
// accounting (PAPER.md §3–4).
//
// The replay is exact, not approximate. Power events carry the meter's
// state accrual and transition impulse separately, the per-disk "end"
// events carry the final accrual the last transition never sees, and the
// replay performs the same floating-point additions in the same order as
// power.Meter and storage.Result — so a replayed run reproduces
// Result.EnergyByState and the reconciled RunMetrics export bit for bit
// (Replay / VerifyMetrics), at any pipeline worker count. cmd/tracelens
// is the CLI over this package.
package analyze

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Load reads an event log from path, auto-detecting the encoding: logs
// opening with a binary magic header are decoded as binary (with CRC and
// structure validation), anything else is parsed as canonical JSONL.
func Load(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read is Load over an io.Reader.
func Read(r io.Reader) ([]obs.Event, error) {
	head := make([]byte, len(obs.BinaryMagic))
	n, err := io.ReadFull(r, head)
	if err == io.EOF {
		return nil, nil
	}
	rest := io.MultiReader(bytes.NewReader(head[:n]), r)
	if err == nil && head[0] == 'E' && head[1] == 'S' && head[2] == 'C' && head[3] == 'H' {
		return obs.ReadBinary(rest)
	}
	return obs.ReadJSONL(rest)
}

// Dispatch is one delivery of a request to a disk.
type Dispatch struct {
	At   time.Duration
	Disk core.DiskID
	// Dec is the scheduler decision that chose the disk (0 if untraced).
	Dec obs.DecisionID
}

// Outcome classifies how a request's lifecycle ended.
type Outcome int

// Request outcomes, in log vocabulary.
const (
	// OutcomeOpen marks a lifecycle with no terminal event (a truncated
	// flight-recorder log, or a request still in flight).
	OutcomeOpen Outcome = iota
	// OutcomeServed is a completion by a disk.
	OutcomeServed
	// OutcomeCacheHit is absorption by the block cache.
	OutcomeCacheHit
	// OutcomeDropped means no replica could serve the request.
	OutcomeDropped
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeCacheHit:
		return "cache-hit"
	case OutcomeDropped:
		return "dropped"
	default:
		return "open"
	}
}

// Lifecycle is the reconstructed history of one request.
type Lifecycle struct {
	Req   core.RequestID
	Block core.BlockID
	// Arrive is the arrival time (valid when HasArrive; a truncated log may
	// open mid-lifecycle).
	Arrive    time.Duration
	HasArrive bool
	// Dispatches lists every delivery, in order; more than one means the
	// request was redispatched off a failed disk.
	Dispatches []Dispatch
	// ServeAt is when service began (last serve event seen).
	ServeAt  time.Duration
	HasServe bool
	// CompleteAt and Latency are set for served and cache-hit outcomes.
	CompleteAt time.Duration
	Latency    time.Duration
	// Disk is the disk that completed the request (served outcome only).
	Disk    core.DiskID
	Outcome Outcome
}

// Redispatches returns how many times the request was delivered beyond the
// first.
func (l *Lifecycle) Redispatches() int {
	if len(l.Dispatches) <= 1 {
		return 0
	}
	return len(l.Dispatches) - 1
}

// Run is the reconstructed view of one simulation run's event log: the raw
// events plus lifecycle, timeline and decision indexes.
type Run struct {
	Events []obs.Event
	// Requests indexes lifecycles by request ID; ReqOrder preserves first
	// appearance order.
	Requests map[core.RequestID]*Lifecycle
	ReqOrder []core.RequestID
	// Disks indexes power-state timelines by disk; DiskOrder is ascending.
	Disks     map[core.DiskID]*DiskTimeline
	DiskOrder []core.DiskID
	// Decisions indexes decision events by their monotonic ID.
	Decisions map[obs.DecisionID]*obs.Event
	// Horizon and Fired come from the run-end marker (HasRunEnd); without
	// it the log is partial and exact replay is refused.
	Horizon   time.Duration
	Fired     uint64
	HasRunEnd bool
}

// New reconstructs a run from its events. Events must be in emission order
// (as read back from any canonical log).
func New(events []obs.Event) (*Run, error) {
	r := &Run{
		Events:    events,
		Requests:  make(map[core.RequestID]*Lifecycle),
		Disks:     make(map[core.DiskID]*DiskTimeline),
		Decisions: make(map[obs.DecisionID]*obs.Event),
	}
	var lastSeq uint64
	for i := range events {
		ev := &events[i]
		if i > 0 && ev.Seq <= lastSeq {
			return nil, fmt.Errorf("analyze: event %d out of order (seq %d after %d)", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case obs.KindArrive:
			l := r.lifecycle(ev.Req, ev.Block)
			l.Arrive, l.HasArrive = ev.At, true
		case obs.KindDecision:
			if ev.Dec == 0 {
				return nil, fmt.Errorf("analyze: decision event seq %d has no decision ID (pre-decision-ID log?)", ev.Seq)
			}
			if _, dup := r.Decisions[ev.Dec]; dup {
				return nil, fmt.Errorf("analyze: duplicate decision ID %d at seq %d", ev.Dec, ev.Seq)
			}
			r.Decisions[ev.Dec] = ev
		case obs.KindDispatch:
			l := r.lifecycle(ev.Req, ev.Block)
			l.Dispatches = append(l.Dispatches, Dispatch{At: ev.At, Disk: ev.Disk, Dec: ev.Dec})
		case obs.KindServe:
			l := r.lifecycle(ev.Req, -1)
			l.ServeAt, l.HasServe = ev.At, true
		case obs.KindComplete:
			l := r.lifecycle(ev.Req, -1)
			l.CompleteAt, l.Latency, l.Disk, l.Outcome = ev.At, ev.Latency, ev.Disk, OutcomeServed
		case obs.KindDrop:
			l := r.lifecycle(ev.Req, ev.Block)
			l.Outcome = OutcomeDropped
		case obs.KindCacheHit:
			l := r.lifecycle(ev.Req, ev.Block)
			l.CompleteAt, l.Latency, l.Outcome = ev.At, ev.Latency, OutcomeCacheHit
		case obs.KindQueue, obs.KindPower, obs.KindEnd:
			// Disk-side events are folded into timelines below.
		case obs.KindRunEnd:
			if r.HasRunEnd {
				return nil, fmt.Errorf("analyze: second run-end marker at seq %d", ev.Seq)
			}
			r.Horizon, r.Fired, r.HasRunEnd = ev.At, uint64(ev.Block), true
		default:
			return nil, fmt.Errorf("analyze: unknown event kind %d at seq %d", ev.Kind, ev.Seq)
		}
		if ev.Disk != core.InvalidDisk {
			switch ev.Kind {
			case obs.KindPower, obs.KindEnd, obs.KindQueue, obs.KindServe, obs.KindComplete:
				if err := r.timeline(ev.Disk).apply(ev); err != nil {
					return nil, err
				}
			}
		}
	}
	r.DiskOrder = make([]core.DiskID, 0, len(r.Disks))
	for d := range r.Disks {
		r.DiskOrder = append(r.DiskOrder, d)
	}
	sort.Slice(r.DiskOrder, func(i, j int) bool { return r.DiskOrder[i] < r.DiskOrder[j] })
	return r, nil
}

func (r *Run) lifecycle(id core.RequestID, block core.BlockID) *Lifecycle {
	if l, ok := r.Requests[id]; ok {
		if block >= 0 {
			l.Block = block
		}
		return l
	}
	l := &Lifecycle{Req: id, Block: block, Disk: core.InvalidDisk}
	r.Requests[id] = l
	r.ReqOrder = append(r.ReqOrder, id)
	return l
}

func (r *Run) timeline(d core.DiskID) *DiskTimeline {
	if t, ok := r.Disks[d]; ok {
		return t
	}
	t := &DiskTimeline{Disk: d}
	r.Disks[d] = t
	return t
}

// Complete reports whether the log captures the whole run: a run-end
// marker plus a closed timeline for every disk seen. Flight-recorder rings
// that overflowed fail this; exact replay and attribution require it.
func (r *Run) Complete() bool {
	if !r.HasRunEnd {
		return false
	}
	for _, d := range r.DiskOrder {
		if !r.Disks[d].Closed {
			return false
		}
	}
	return true
}

// EnergyByState sums the replayed per-disk, per-state energy over disks in
// ascending disk order — the same addition order storage.Result uses — so
// on a complete log the result equals Result.EnergyByState bit for bit.
func (r *Run) EnergyByState() [core.StateSpinDown + 1]float64 {
	var by [core.StateSpinDown + 1]float64
	for _, d := range r.DiskOrder {
		t := r.Disks[d]
		for s := core.StateStandby; s <= core.StateSpinDown; s++ {
			by[s] += t.EnergyBy[s]
		}
	}
	return by
}

// Energy sums the replayed per-disk totals in ascending disk order,
// mirroring storage.Result.Energy's accumulation exactly.
func (r *Run) Energy() float64 {
	var total float64
	for _, d := range r.DiskOrder {
		total += r.Disks[d].Energy
	}
	return total
}
