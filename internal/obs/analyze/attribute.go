package analyze

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Attribution explains where every joule of a run went, causally: the
// baseline cost of disks sitting in standby, the warm cost of idling, the
// service cost of actual work, and the spin cycles — each spin-up pinned
// to the scheduler decision that induced it (or to the idle-threshold
// expiry when no decision did). The per-state totals are the replayed
// meter values, so the waterfall accounts for 100% of the measured energy
// bit-exactly: Baseline+Idle+Service+SpinUp+SpinDown reproduces the run's
// by-state meter totals term by term.
type Attribution struct {
	// ByState is the exact replayed energy per power state (= the run's
	// power.Meter totals on a complete log).
	ByState [core.StateSpinDown + 1]float64
	// The waterfall: every ByState entry appears in exactly one bucket.
	BaselineJ float64 // standby accrual: the floor of having disks at all
	IdleJ     float64 // warm idling: spinning, waiting for work
	ServiceJ  float64 // active: actually serving requests
	SpinUpJ   float64 // induced spin-ups (accrual + impulses)
	SpinDownJ float64 // induced spin-downs
	// Causes breaks the spin cycles down by causing decision, sorted by
	// energy descending. The Dec==0 entry aggregates policy actions
	// (idle-threshold expiries) and untraced schedulers.
	Causes []Cause
	// DecisionSpinUps counts spin-ups caused by scheduler decisions;
	// PolicySpinUps the remainder (redundant wake-ups after spin-down, by
	// a decision the log did not carry — 0 only for fully traced runs).
	DecisionSpinUps int
	PolicySpinUps   int
	// SpinDowns counts spin-down transitions (2CPM idle-threshold
	// expiries; never decision-caused).
	SpinDowns int
}

// Cause is the energy and spin activity attributed to one scheduler
// decision (or, for Dec 0, to power-management policy actions).
type Cause struct {
	Dec obs.DecisionID
	// Req and Disk echo the decision event when the log carries it.
	Req     core.RequestID
	Disk    core.DiskID
	At      time.Duration
	HasInfo bool
	// SpinUps and SpinDowns this cause induced; Joules is the energy of
	// those cycles (spin-state accruals plus impulses).
	SpinUps   int
	SpinDowns int
	Joules    float64
}

// Attribute builds the energy waterfall. Atoms (per-transition accruals
// and impulses, per the meter's own split) are partitioned over the
// buckets by the state they were metered against, so the bucket sums
// regroup — and exactly reproduce — the replayed by-state totals.
func (r *Run) Attribute() *Attribution {
	a := &Attribution{ByState: r.EnergyByState()}
	a.BaselineJ = a.ByState[core.StateStandby]
	a.IdleJ = a.ByState[core.StateIdle]
	a.ServiceJ = a.ByState[core.StateActive]
	a.SpinUpJ = a.ByState[core.StateSpinUp]
	a.SpinDownJ = a.ByState[core.StateSpinDown]

	causes := map[obs.DecisionID]*Cause{}
	cause := func(dec obs.DecisionID) *Cause {
		c, ok := causes[dec]
		if !ok {
			c = &Cause{Dec: dec, Req: -1, Disk: core.InvalidDisk}
			if ev := r.Decisions[dec]; ev != nil {
				c.Req, c.Disk, c.At, c.HasInfo = ev.Req, ev.Disk, ev.At, true
			}
			causes[dec] = c
		}
		return c
	}
	for _, d := range r.DiskOrder {
		for _, seg := range r.Disks[d].Segments {
			switch seg.State {
			case core.StateSpinUp:
				c := cause(seg.Cause)
				c.SpinUps++
				c.Joules += seg.EnergyJ()
				if seg.Cause != 0 {
					a.DecisionSpinUps++
				} else {
					a.PolicySpinUps++
				}
			case core.StateSpinDown:
				c := cause(seg.Cause)
				c.SpinDowns++
				c.Joules += seg.EnergyJ()
				a.SpinDowns++
			}
		}
	}
	a.Causes = make([]Cause, 0, len(causes))
	for _, c := range causes {
		a.Causes = append(a.Causes, *c)
	}
	sort.Slice(a.Causes, func(i, j int) bool {
		if a.Causes[i].Joules != a.Causes[j].Joules {
			return a.Causes[i].Joules > a.Causes[j].Joules
		}
		return a.Causes[i].Dec < a.Causes[j].Dec
	})
	return a
}

// Total returns the waterfall total, summing the by-state entries in state
// order — the same order report code sums Result.EnergyByState — so the
// accounted total is bit-identical to the run's, not merely close. (The
// five named buckets are those same entries regrouped; summing them in
// presentation order would round differently.)
func (a *Attribution) Total() float64 {
	var total float64
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		total += a.ByState[s]
	}
	return total
}
