package analyze

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Segment is one contiguous stay in a power state on a disk's timeline.
type Segment struct {
	State core.DiskState
	Start time.Duration
	// End is when the disk left the state (or the run-end close). Open is
	// true when the log ended before the segment did.
	End  time.Duration
	Open bool
	// EntryImpulseJ is the instantaneous energy charged to this state when
	// it was entered (zero-duration spin transitions only).
	EntryImpulseJ float64
	// ExitStateJ is the accrual settled for the time spent in this state,
	// known once the segment closes (the exiting transition or the disk's
	// end event carries it).
	ExitStateJ float64
	// Cause is the scheduler decision stamped on the transition that
	// entered this state: the decision whose dispatch woke the disk for
	// spin-up segments, 0 for policy actions (idle-threshold expiry) and
	// untraced schedulers.
	Cause obs.DecisionID
}

// EnergyJ is the segment's total energy: entry impulse plus settled
// accrual. Presentation only — exact by-state totals come from
// DiskTimeline.EnergyBy, which preserves the meter's addition order.
func (s Segment) EnergyJ() float64 { return s.EntryImpulseJ + s.ExitStateJ }

// Duration returns the segment length (zero while Open).
func (s Segment) Duration() time.Duration {
	if s.Open {
		return 0
	}
	return s.End - s.Start
}

// DiskTimeline is one disk's reconstructed power-state history plus its
// replayed energy accounting.
type DiskTimeline struct {
	Disk     core.DiskID
	Segments []Segment
	// EnergyBy replays the disk's meter by state: the same additions in the
	// same order as power.Meter, so it matches Stats.EnergyIn bit for bit
	// on a complete log. Energy is the matching total (Stats.Energy).
	EnergyBy [core.StateSpinDown + 1]float64
	Energy   float64
	SpinUps  int
	SpinDowns int
	// Served counts completions; Response collects their latencies; Depths
	// the queue depth seen at each enqueue.
	Served   int
	Response metrics.ResponseTimes
	Depths   []int
	// FinalState and Closed come from the disk's end event.
	FinalState core.DiskState
	Closed     bool
}

// apply folds one disk-side event into the timeline. Events arrive in
// emission order, so segments build chronologically.
func (t *DiskTimeline) apply(ev *obs.Event) error {
	switch ev.Kind {
	case obs.KindPower:
		if t.Closed {
			return fmt.Errorf("analyze: disk %d: power event seq %d after end event", t.Disk, ev.Seq)
		}
		if n := len(t.Segments); n == 0 {
			// First transition reveals the initial state, held since t=0.
			t.Segments = append(t.Segments, Segment{State: ev.From, Open: true})
		} else if cur := &t.Segments[n-1]; cur.State != ev.From {
			return fmt.Errorf("analyze: disk %d: transition %s→%s at seq %d but timeline is in %s",
				t.Disk, ev.From, ev.To, ev.Seq, cur.State)
		}
		cur := &t.Segments[len(t.Segments)-1]
		cur.End, cur.Open, cur.ExitStateJ = ev.At, false, ev.EnergyJ
		// Replay the meter's additions in its order: accrual to the state
		// left, then any impulse to the state entered.
		t.EnergyBy[ev.From] += ev.EnergyJ
		t.Energy += ev.EnergyJ
		if ev.ImpulseJ != 0 {
			t.EnergyBy[ev.To] += ev.ImpulseJ
			t.Energy += ev.ImpulseJ
		}
		switch ev.To {
		case core.StateSpinUp:
			t.SpinUps++
		case core.StateSpinDown:
			t.SpinDowns++
		}
		t.Segments = append(t.Segments, Segment{
			State: ev.To, Start: ev.At, Open: true,
			EntryImpulseJ: ev.ImpulseJ, Cause: ev.Dec,
		})
	case obs.KindEnd:
		if t.Closed {
			return fmt.Errorf("analyze: disk %d: second end event at seq %d", t.Disk, ev.Seq)
		}
		if len(t.Segments) == 0 {
			// Disk never transitioned: one segment covering the whole run.
			t.Segments = append(t.Segments, Segment{State: ev.From, Open: true})
		}
		cur := &t.Segments[len(t.Segments)-1]
		if cur.State != ev.From {
			return fmt.Errorf("analyze: disk %d: end event in %s at seq %d but timeline is in %s",
				t.Disk, ev.From, ev.Seq, cur.State)
		}
		cur.End, cur.Open, cur.ExitStateJ = ev.At, false, ev.EnergyJ
		t.EnergyBy[ev.From] += ev.EnergyJ
		t.Energy += ev.EnergyJ
		t.FinalState, t.Closed = ev.From, true
	case obs.KindQueue:
		t.Depths = append(t.Depths, ev.Depth)
	case obs.KindComplete:
		t.Served++
		t.Response.Add(ev.Latency)
	case obs.KindServe:
		// Nothing beyond lifecycle bookkeeping.
	}
	return nil
}

// DepthHeatmap buckets every queue-depth observation per disk into the
// exporter's depth buckets, returning one row per disk in run disk order
// plus the bucket upper bounds; the final column counts observations above
// the last bound. The raw data behind a queue-depth heatmap.
func (r *Run) DepthHeatmap() (bounds []float64, rows [][]int) {
	bounds = obs.DepthBuckets()
	rows = make([][]int, len(r.DiskOrder))
	for i, d := range r.DiskOrder {
		row := make([]int, len(bounds)+1)
		for _, depth := range r.Disks[d].Depths {
			placed := false
			for b, ub := range bounds {
				if float64(depth) <= ub {
					row[b]++
					placed = true
					break
				}
			}
			if !placed {
				row[len(bounds)]++
			}
		}
		rows[i] = row
	}
	return bounds, rows
}
