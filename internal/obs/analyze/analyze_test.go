package analyze_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/offline"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"

	"repro/internal/diskmodel"
)

func smallConfig(numDisks int) storage.Config {
	p := power.DefaultConfig()
	return storage.Config{
		NumDisks: numDisks,
		Power:    p,
		Mech:     diskmodel.Cheetah15K5(),
		Policy:   power.TwoCompetitive{Config: p},
	}
}

func smallWorkload(t testing.TB, numDisks, numBlocks, numReqs, rf int, seed int64) ([]core.Request, *placement.Placement) {
	t.Helper()
	p, err := placement.Generate(placement.GenerateConfig{
		NumDisks: numDisks, NumBlocks: numBlocks,
		ReplicationFactor: rf, ZipfExponent: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(numReqs, numBlocks, seed)
	return reqs, p
}

// capture is one fully instrumented run: the streamed event log, the
// rendered end-of-run metrics export, and the live result to compare
// against.
type capture struct {
	log     []byte
	metrics []byte
	res     *storage.Result
}

// tracedRun executes a seeded heuristic run with a streaming sink (ring
// smaller than the event count, forcing mid-run flushes) and a live
// collector, mirroring how esched -events/-metrics records runs.
func tracedRun(t testing.TB, binary bool, opts ...storage.RunOption) capture {
	t.Helper()
	reqs, p := smallWorkload(t, 10, 80, 600, 3, 5)
	cfg := smallConfig(10)
	var buf bytes.Buffer
	tr := obs.NewTracer(512)
	tr.SetSink(&buf, binary)
	c := obs.NewCollector()
	opts = append([]storage.RunOption{storage.WithTracer(tr), storage.WithCollector(c)}, opts...)
	res, err := storage.RunOnline(cfg, p.Locations,
		sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr},
		reqs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var m bytes.Buffer
	if _, err := c.WriteTo(&m); err != nil {
		t.Fatal(err)
	}
	return capture{log: buf.Bytes(), metrics: m.Bytes(), res: res}
}

func reconstruct(t testing.TB, log []byte) *analyze.Run {
	t.Helper()
	evs, err := analyze.Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	r, err := analyze.New(evs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestReplayReproducesMetricsExport is the PR's verify criterion: from the
// event log alone, the replayed collector renders byte-identically to the
// metrics snapshot the live run exported.
func TestReplayReproducesMetricsExport(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	r := reconstruct(t, cap.log)
	if !r.Complete() {
		t.Fatal("streamed log should be a complete capture")
	}
	if err := r.VerifyMetrics(cap.metrics); err != nil {
		t.Fatalf("replay does not reproduce the export: %v", err)
	}
}

// TestReplayEnergyBitExact pins the energy replay against the live result:
// per-state and total joules match storage.Result bit for bit.
func TestReplayEnergyBitExact(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	r := reconstruct(t, cap.log)
	by := r.EnergyByState()
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		if by[s] != cap.res.EnergyByState[s] {
			t.Errorf("replayed %v energy = %v, want exactly %v", s, by[s], cap.res.EnergyByState[s])
		}
	}
	if got := r.Energy(); got != cap.res.Energy {
		t.Errorf("replayed total energy = %v, want exactly %v", got, cap.res.Energy)
	}
	// Per-disk totals match the per-disk stats too.
	for _, st := range cap.res.PerDisk {
		tl := r.Disks[st.Disk]
		if tl == nil {
			t.Fatalf("no timeline for disk %d", st.Disk)
		}
		if tl.Energy != st.Energy {
			t.Errorf("disk %d replayed energy = %v, want exactly %v", st.Disk, tl.Energy, st.Energy)
		}
		if !tl.Closed {
			t.Errorf("disk %d timeline not closed", st.Disk)
		}
	}
}

// TestBinaryLogReplaysLikeJSONL records the same seeded run through both
// encodings and checks they decode to the same events and the binary
// capture passes the same metrics verification.
func TestBinaryLogReplaysLikeJSONL(t *testing.T) {
	t.Parallel()
	jcap := tracedRun(t, false)
	bcap := tracedRun(t, true)
	jr := reconstruct(t, jcap.log)
	br := reconstruct(t, bcap.log)
	if len(jr.Events) != len(br.Events) {
		t.Fatalf("event counts differ: jsonl %d, binary %d", len(jr.Events), len(br.Events))
	}
	for i := range jr.Events {
		if jr.Events[i] != br.Events[i] {
			t.Fatalf("event %d differs across encodings:\n  jsonl:  %+v\n  binary: %+v",
				i, jr.Events[i], br.Events[i])
		}
	}
	if err := br.VerifyMetrics(bcap.metrics); err != nil {
		t.Fatalf("binary replay does not reproduce the export: %v", err)
	}
}

// TestReplayByteIdenticalAcrossWorkers extends the determinism guarantee
// to the analyzer: MWIS schedules built with 1 and 8 pipeline workers
// produce runs whose logs replay to byte-identical metric exports.
func TestReplayByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 10, 80, 600, 3, 5)
	cfg := smallConfig(10)
	run := func(workers int) (log, metrics []byte) {
		s, _, err := offline.SolveRefined(reqs, p.Locations, cfg.Power, offline.BuildOptions{
			MaxSuccessors: 4, MaxNodes: 1_000_000, Workers: workers,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr := obs.NewTracer(512)
		tr.SetSink(&buf, false)
		c := obs.NewCollector()
		if _, err := storage.RunOnline(cfg, p.Locations,
			sched.Precomputed{Label: "mwis", Assignments: s}, reqs,
			storage.WithTracer(tr), storage.WithCollector(c)); err != nil {
			t.Fatal(err)
		}
		var m bytes.Buffer
		if _, err := c.WriteTo(&m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), m.Bytes()
	}
	log1, met1 := run(1)
	log8, met8 := run(8)
	if !bytes.Equal(log1, log8) {
		t.Fatal("event logs differ across worker counts")
	}
	if !bytes.Equal(met1, met8) {
		t.Fatal("metric exports differ across worker counts")
	}
	if err := reconstruct(t, log1).VerifyMetrics(met8); err != nil {
		t.Fatalf("cross-worker verify failed: %v", err)
	}
}

// TestAttributeAccountsAllEnergy is the acceptance criterion for the
// waterfall: the five buckets regroup the replayed by-state totals term by
// term, bit-exactly against the live meter values.
func TestAttributeAccountsAllEnergy(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	r := reconstruct(t, cap.log)
	a := r.Attribute()
	want := cap.res.EnergyByState
	if a.BaselineJ != want[core.StateStandby] {
		t.Errorf("baseline = %v, want exactly %v", a.BaselineJ, want[core.StateStandby])
	}
	if a.IdleJ != want[core.StateIdle] {
		t.Errorf("idle = %v, want exactly %v", a.IdleJ, want[core.StateIdle])
	}
	if a.ServiceJ != want[core.StateActive] {
		t.Errorf("service = %v, want exactly %v", a.ServiceJ, want[core.StateActive])
	}
	if a.SpinUpJ != want[core.StateSpinUp] {
		t.Errorf("spin-up = %v, want exactly %v", a.SpinUpJ, want[core.StateSpinUp])
	}
	if a.SpinDownJ != want[core.StateSpinDown] {
		t.Errorf("spin-down = %v, want exactly %v", a.SpinDownJ, want[core.StateSpinDown])
	}
	var sum float64
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		sum += want[s]
	}
	if a.Total() != sum {
		t.Errorf("waterfall total = %v, want exactly %v", a.Total(), sum)
	}
	if a.DecisionSpinUps+a.PolicySpinUps != cap.res.SpinUps {
		t.Errorf("spin-up attribution %d+%d != %d spin-ups",
			a.DecisionSpinUps, a.PolicySpinUps, cap.res.SpinUps)
	}
	if a.DecisionSpinUps == 0 {
		t.Error("traced heuristic run attributed no spin-ups to decisions")
	}
	if a.SpinDowns != cap.res.SpinDowns {
		t.Errorf("attributed spin-downs = %d, want %d", a.SpinDowns, cap.res.SpinDowns)
	}
	for _, c := range a.Causes {
		if c.Dec != 0 && !c.HasInfo {
			t.Errorf("cause %d has no decision event in the log", c.Dec)
		}
		if c.Dec != 0 {
			ev := r.Decisions[c.Dec]
			if ev == nil || ev.Kind != obs.KindDecision {
				t.Fatalf("cause %d does not resolve to a decision event", c.Dec)
			}
		}
	}
}

// TestDispatchDecisionLinkage checks the causal thread: every dispatch in
// a traced online run carries the ID of a decision event for the same
// request and disk.
func TestDispatchDecisionLinkage(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	r := reconstruct(t, cap.log)
	dispatches := 0
	for _, id := range r.ReqOrder {
		for _, d := range r.Requests[id].Dispatches {
			dispatches++
			if d.Dec == 0 {
				t.Fatalf("request %d dispatched without a decision ID", id)
			}
			ev := r.Decisions[d.Dec]
			if ev == nil {
				t.Fatalf("request %d dispatch references unknown decision %d", id, d.Dec)
			}
			if ev.Req != id || ev.Disk != d.Disk {
				t.Fatalf("decision %d is (req %d, disk %d), dispatch is (req %d, disk %d)",
					d.Dec, ev.Req, ev.Disk, id, d.Disk)
			}
		}
	}
	if dispatches == 0 {
		t.Fatal("no dispatches reconstructed")
	}
}

// TestBatchDecisionLinkage repeats the linkage check for the WSC batch
// scheduler, whose decision IDs are assigned per batch tick.
func TestBatchDecisionLinkage(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 10, 80, 600, 3, 5)
	cfg := smallConfig(10)
	var buf bytes.Buffer
	tr := obs.NewTracer(512)
	tr.SetSink(&buf, false)
	c := obs.NewCollector()
	res, err := storage.RunBatch(cfg, p.Locations,
		sched.WSC{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr},
		reqs, 200*time.Millisecond,
		storage.WithTracer(tr), storage.WithCollector(c))
	if err != nil {
		t.Fatal(err)
	}
	var m bytes.Buffer
	if _, err := c.WriteTo(&m); err != nil {
		t.Fatal(err)
	}
	r := reconstruct(t, buf.Bytes())
	if err := r.VerifyMetrics(m.Bytes()); err != nil {
		t.Fatalf("batch replay does not reproduce the export: %v", err)
	}
	for _, id := range r.ReqOrder {
		for _, d := range r.Requests[id].Dispatches {
			if d.Dec == 0 {
				t.Fatalf("batch request %d dispatched without a decision ID", id)
			}
			ev := r.Decisions[d.Dec]
			if ev == nil || ev.Req != id || ev.Disk != d.Disk {
				t.Fatalf("batch decision %d does not match dispatch (req %d, disk %d)", d.Dec, id, d.Disk)
			}
		}
	}
	s := r.Summarize()
	if s.Served != res.Served || s.Dropped != res.Dropped {
		t.Errorf("summary served/dropped = %d/%d, want %d/%d", s.Served, s.Dropped, res.Served, res.Dropped)
	}
}

// TestSummarizeMatchesResult checks every aggregate the summary derives
// from the log against the live run report.
func TestSummarizeMatchesResult(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 10, 80, 600, 3, 5)
	cfg := smallConfig(10)
	bc, err := cache.New(16, cache.LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(512)
	tr.SetSink(&buf, false)
	res, err := storage.RunOnline(cfg, p.Locations,
		sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr},
		reqs, storage.WithTracer(tr), storage.WithCache(bc),
		// Fail three disks at t=10s, mid-burst for this seed: whatever is
		// queued on them drains to surviving replicas (rf=3).
		storage.WithFailures(
			storage.FailureEvent{Disk: 0, At: 10 * time.Second, Duration: time.Hour},
			storage.FailureEvent{Disk: 1, At: 10 * time.Second, Duration: time.Hour},
			storage.FailureEvent{Disk: 2, At: 10 * time.Second, Duration: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	r := reconstruct(t, buf.Bytes())
	s := r.Summarize()
	if s.Served != res.Served {
		t.Errorf("served = %d, want %d", s.Served, res.Served)
	}
	if s.Dropped != res.Dropped {
		t.Errorf("dropped = %d, want %d", s.Dropped, res.Dropped)
	}
	if s.CacheHits != res.CacheHits {
		t.Errorf("cache hits = %d, want %d", s.CacheHits, res.CacheHits)
	}
	if res.CacheHits == 0 {
		t.Error("workload produced no cache hits; strengthen the scenario")
	}
	if s.Redispatched != res.Redispatched {
		t.Errorf("redispatched = %d, want %d", s.Redispatched, res.Redispatched)
	}
	if res.Redispatched == 0 {
		t.Error("failure produced no redispatches; strengthen the scenario")
	}
	if s.SpinUps != res.SpinUps || s.SpinDowns != res.SpinDowns {
		t.Errorf("spin ups/downs = %d/%d, want %d/%d", s.SpinUps, s.SpinDowns, res.SpinUps, res.SpinDowns)
	}
	if s.Requests != len(reqs) {
		t.Errorf("requests = %d, want %d", s.Requests, len(reqs))
	}
	if s.Horizon != res.Horizon {
		t.Errorf("horizon = %v, want %v", s.Horizon, res.Horizon)
	}
	if s.Fired == 0 {
		t.Error("no kernel events recorded in run-end marker")
	}
}

// TestDepthHeatmap sanity-checks the heatmap: every queue observation
// lands in exactly one bucket.
func TestDepthHeatmap(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	r := reconstruct(t, cap.log)
	bounds, rows := r.DepthHeatmap()
	if len(bounds) == 0 || len(rows) != len(r.DiskOrder) {
		t.Fatalf("heatmap shape: %d bounds, %d rows for %d disks", len(bounds), len(rows), len(r.DiskOrder))
	}
	total := 0
	for i, row := range rows {
		if len(row) != len(bounds)+1 {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(bounds)+1)
		}
		for _, n := range row {
			total += n
		}
	}
	want := 0
	for _, d := range r.DiskOrder {
		want += len(r.Disks[d].Depths)
	}
	if total != want || want == 0 {
		t.Fatalf("heatmap covers %d of %d observations", total, want)
	}
}

// TestDiffSelfIsZero diffs a run against itself: every row must be
// exactly zero delta.
func TestDiffSelfIsZero(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	r := reconstruct(t, cap.log)
	rep := analyze.Diff(r, r)
	if len(rep.Rows) == 0 {
		t.Fatal("empty diff report")
	}
	for _, row := range rep.Rows {
		if row.Delta != 0 || row.Pct != 0 {
			t.Errorf("self-diff row %s: delta %v pct %v", row.Name, row.Delta, row.Pct)
		}
	}
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty rendered report")
	}
}

// TestVerifyMetricsDetectsTamper flips one byte of the export and checks
// the verifier reports the diverging line.
func TestVerifyMetricsDetectsTamper(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	r := reconstruct(t, cap.log)
	tampered := bytes.Replace(cap.metrics, []byte("esched_spin_ups_total"), []byte("esched_spin_upx_total"), 1)
	if bytes.Equal(tampered, cap.metrics) {
		t.Fatal("tamper target not found in export")
	}
	err := r.VerifyMetrics(tampered)
	if err == nil {
		t.Fatal("verify accepted a tampered export")
	}
}

// TestReplayRefusesPartialLog drops the run-end marker and checks exact
// replay is refused rather than silently wrong.
func TestReplayRefusesPartialLog(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	evs, err := analyze.Read(bytes.NewReader(cap.log))
	if err != nil {
		t.Fatal(err)
	}
	if evs[len(evs)-1].Kind != obs.KindRunEnd {
		t.Fatal("last event is not the run-end marker")
	}
	r, err := analyze.New(evs[:len(evs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete() {
		t.Fatal("truncated log reported complete")
	}
	if _, _, err := r.Replay(); err == nil {
		t.Fatal("replay accepted a partial log")
	}
}

// TestParseMetricValuesRoundTrip parses the rendered export and checks the
// energy series recover the result's float64 values bit for bit.
func TestParseMetricValuesRoundTrip(t *testing.T) {
	t.Parallel()
	cap := tracedRun(t, false)
	vals, err := analyze.ParseMetricValues(cap.metrics)
	if err != nil {
		t.Fatal(err)
	}
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		key := `esched_energy_joules_total{state="` + s.String() + `"}`
		v, ok := vals[key]
		if !ok {
			t.Fatalf("export lacks %s", key)
		}
		if v != cap.res.EnergyByState[s] {
			t.Errorf("parsed %s = %v, want exactly %v", key, v, cap.res.EnergyByState[s])
		}
	}
}
