package analyze

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Summary aggregates a run from its log alone, mirroring the live
// storage.Result / RunMetrics accounting.
type Summary struct {
	Served       int
	Dropped      int
	Redispatched int
	CacheHits    int
	Decisions    int
	SpinUps      int
	SpinDowns    int
	// Energy and EnergyByState replay the meters exactly (see Run).
	Energy        float64
	EnergyByState [core.StateSpinDown + 1]float64
	Horizon       time.Duration
	Fired         uint64
	Disks         int
	Requests      int
	Events        int
}

// Summarize computes the run's aggregate view. Counts follow the live
// pipeline's invariants: every delivery emits exactly one dispatch or drop
// event, so decisions = dispatches + drops and redispatches are the
// deliveries beyond each request's first.
func (r *Run) Summarize() *Summary {
	s := &Summary{}
	s.Events = len(r.Events)
	s.Requests = len(r.ReqOrder)
	s.Disks = len(r.DiskOrder)
	s.Horizon, s.Fired = r.Horizon, r.Fired
	delivered := 0
	deliveredReqs := 0
	for _, id := range r.ReqOrder {
		l := r.Requests[id]
		switch l.Outcome {
		case OutcomeServed:
			s.Served++
		case OutcomeCacheHit:
			s.Served++
			s.CacheHits++
		case OutcomeDropped:
			s.Dropped++
		}
		if n := len(l.Dispatches); n > 0 || l.Outcome == OutcomeDropped {
			// Drops are deliveries too (the scheduler returned no disk);
			// a dropped request may also have earlier real dispatches
			// (failure redispatch that found no survivor).
			delivered += n
			if l.Outcome == OutcomeDropped {
				delivered++
			}
			deliveredReqs++
		}
	}
	s.Decisions = delivered
	s.Redispatched = delivered - deliveredReqs
	for _, d := range r.DiskOrder {
		t := r.Disks[d]
		s.SpinUps += t.SpinUps
		s.SpinDowns += t.SpinDowns
	}
	s.EnergyByState = r.EnergyByState()
	s.Energy = r.Energy()
	return s
}

// Replay drives a fresh Collector through the run exactly the way the live
// pipeline does — histograms observed in event order, counters reconciled
// to the replayed end-of-run values — so on a complete log its rendered
// output is byte-identical to the metrics snapshot the run exported.
func (r *Run) Replay() (*obs.Collector, *Summary, error) {
	if !r.Complete() {
		return nil, nil, fmt.Errorf("analyze: log is not a complete run capture (missing run-end marker or disk end events); was it recorded with a streaming sink?")
	}
	c := obs.NewCollector()
	rm := obs.NewRunMetrics(c)
	for i := range r.Events {
		ev := &r.Events[i]
		switch ev.Kind {
		case obs.KindDispatch, obs.KindDrop:
			// One delivery each — the live run increments the decision
			// counter per delivery (batch mode adds per batch, but integer
			// counter sums are order-insensitive below 2^53).
			rm.Decisions.Inc()
		case obs.KindQueue:
			rm.QueueDepth.Observe(float64(ev.Depth))
		case obs.KindComplete, obs.KindCacheHit:
			rm.ObserveResponse(ev.Latency)
		}
	}
	s := r.Summarize()
	rm.ReconcileEnergy(s.EnergyByState)
	rm.SpinUps.Reconcile(float64(s.SpinUps))
	rm.SpinDowns.Reconcile(float64(s.SpinDowns))
	rm.Served.Reconcile(float64(s.Served))
	rm.Dropped.Reconcile(float64(s.Dropped))
	rm.Redispatched.Reconcile(float64(s.Redispatched))
	rm.CacheHits.Reconcile(float64(s.CacheHits))
	rm.SimTime.Set(s.Horizon.Seconds())
	rm.EventsFired.Set(float64(s.Fired))
	return c, s, nil
}

// VerifyMetrics replays the run and byte-compares the rendered collector
// against a metrics snapshot the live run exported (esched -metrics). A
// nil error means the log alone reproduces the export byte-identically.
func (r *Run) VerifyMetrics(exported []byte) error {
	c, _, err := r.Replay()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		return err
	}
	if bytes.Equal(buf.Bytes(), exported) {
		return nil
	}
	// Name the first diverging line for the diagnostic.
	got := bytes.Split(buf.Bytes(), []byte{'\n'})
	want := bytes.Split(exported, []byte{'\n'})
	for i := 0; i < len(got) && i < len(want); i++ {
		if !bytes.Equal(got[i], want[i]) {
			return fmt.Errorf("analyze: replay diverges from export at line %d:\n  replayed: %s\n  exported: %s", i+1, got[i], want[i])
		}
	}
	return fmt.Errorf("analyze: replay diverges from export: %d vs %d lines", len(got), len(want))
}
