package analyze

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
)

// DiffRow is one compared quantity in a policy-regression report.
type DiffRow struct {
	Name string
	A, B float64
	// Delta = B − A; Pct is the relative change (NaN-free: zero A with
	// nonzero B reports +Inf semantics as Pct=0 and the row still shows the
	// absolute delta).
	Delta float64
	Pct   float64
}

// Report compares two runs (e.g. two scheduling policies over the same
// workload) into a regression report: energy, spin activity, request
// outcomes and latency percentiles.
type Report struct {
	Rows []DiffRow
}

// Diff builds the policy-regression report comparing run a to run b.
func Diff(a, b *Run) *Report {
	sa, sb := a.Summarize(), b.Summarize()
	aa, ab := a.Attribute(), b.Attribute()
	rep := &Report{}
	add := func(name string, va, vb float64) {
		row := DiffRow{Name: name, A: va, B: vb, Delta: vb - va}
		if va != 0 {
			row.Pct = (vb - va) / va * 100
		}
		rep.Rows = append(rep.Rows, row)
	}
	add("energy_total_j", sa.Energy, sb.Energy)
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		add("energy_"+s.String()+"_j", sa.EnergyByState[s], sb.EnergyByState[s])
	}
	add("spin_ups", float64(sa.SpinUps), float64(sb.SpinUps))
	add("spin_ups_decision_caused", float64(aa.DecisionSpinUps), float64(ab.DecisionSpinUps))
	add("spin_downs", float64(sa.SpinDowns), float64(sb.SpinDowns))
	add("served", float64(sa.Served), float64(sb.Served))
	add("dropped", float64(sa.Dropped), float64(sb.Dropped))
	add("redispatched", float64(sa.Redispatched), float64(sb.Redispatched))
	add("cache_hits", float64(sa.CacheHits), float64(sb.CacheHits))
	add("decisions", float64(sa.Decisions), float64(sb.Decisions))
	la, lb := a.Latencies(), b.Latencies()
	for _, p := range []float64{50, 95, 99} {
		add(fmt.Sprintf("latency_p%.0f_s", p),
			la.Percentile(p).Seconds(), lb.Percentile(p).Seconds())
	}
	add("latency_mean_s", la.Mean().Seconds(), lb.Mean().Seconds())
	add("horizon_s", sa.Horizon.Seconds(), sb.Horizon.Seconds())
	return rep
}

// Latencies pools every response-time sample in the run (completions and
// cache hits), matching the live Response histogram's population.
func (r *Run) Latencies() *metrics.ResponseTimes {
	var rs metrics.ResponseTimes
	for _, id := range r.ReqOrder {
		l := r.Requests[id]
		if l.Outcome == OutcomeServed || l.Outcome == OutcomeCacheHit {
			rs.Add(l.Latency)
		}
	}
	return &rs
}

// WriteTo renders the report as an aligned text table.
func (rep *Report) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%-28s %16s %16s %16s %9s\n", "metric", "run A", "run B", "delta", "pct")
	for _, row := range rep.Rows {
		fmt.Fprintf(&buf, "%-28s %16.6g %16.6g %+16.6g %+8.2f%%\n",
			row.Name, row.A, row.B, row.Delta, row.Pct)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ParseMetricValues extracts the plain (non-histogram) series from a
// Prometheus text snapshot, keyed exactly as rendered ("name" or
// name{label="v"}). The collector renders shortest-round-trip floats, so
// parsing recovers the exported float64 values bit for bit — which is what
// lets tracelens compare replayed energy against a run's metrics file
// exactly rather than within a tolerance.
func ParseMetricValues(data []byte) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("analyze: unparseable metric line %q", line)
		}
		key, val := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("analyze: metric %q: %w", key, err)
		}
		out[key] = v
	}
	return out, sc.Err()
}
