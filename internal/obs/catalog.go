package obs

import (
	"time"

	"repro/internal/core"
)

// EnergyDelta is the energy settled by one power-state transition, split
// for exact per-state attribution: StateJ accrued in the state being left,
// ImpulseJ charged instantaneously against the transition state being
// entered (nonzero only for zero-duration spin transitions, as in the
// paper's toy model).
type EnergyDelta struct {
	StateJ   float64
	ImpulseJ float64
}

// Total returns the full energy delta in joules.
func (e EnergyDelta) Total() float64 { return e.StateJ + e.ImpulseJ }

// ResponseBuckets are the default response-time histogram bounds in
// seconds: sub-millisecond cache hits up to multi-spin-up queueing delays.
func ResponseBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}
}

// DepthBuckets are the default queue-depth histogram bounds.
func DepthBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
}

// RunMetrics is the simulator's metric catalog, pre-registered on a
// Collector so the hot path updates handles rather than looking up names.
// See docs/OBSERVABILITY.md for the full catalog with units.
type RunMetrics struct {
	// SpinUps / SpinDowns count spin operations across all disks.
	SpinUps   *Counter // esched_spin_ups_total
	SpinDowns *Counter // esched_spin_downs_total
	// Energy accumulates joules by power state, indexed by core.DiskState.
	// Live values settle at each transition; Reconcile overwrites them with
	// the exact end-of-run meter totals.
	Energy [core.StateSpinDown + 1]*Counter // esched_energy_joules_total{state=...}
	// Request outcomes.
	Served       *Counter // esched_requests_total{outcome="served"}
	Dropped      *Counter // esched_requests_total{outcome="dropped"}
	Redispatched *Counter // esched_requests_total{outcome="redispatched"}
	CacheHits    *Counter // esched_requests_total{outcome="cache_hit"}
	// Decisions counts scheduler decisions (online picks plus batch
	// assignments).
	Decisions *Counter // esched_scheduler_decisions_total
	// Response is the response-time distribution in seconds.
	Response *Histogram // esched_response_time_seconds
	// QueueDepth is the disk queue depth observed at each enqueue.
	QueueDepth *Histogram // esched_queue_depth
	// SimTime is the current virtual time in seconds.
	SimTime *Gauge // esched_sim_time_seconds
	// EventsFired is the kernel's executed-event count.
	EventsFired *Gauge // esched_sim_events_fired
}

// NewRunMetrics registers the simulator catalog on c and returns the
// update handles. Registering twice on the same collector returns handles
// to the same series, so parallel cells can share one registry.
func NewRunMetrics(c *Collector) *RunMetrics {
	m := &RunMetrics{
		SpinUps:   c.Counter("esched_spin_ups_total", "Disk spin-up operations."),
		SpinDowns: c.Counter("esched_spin_downs_total", "Disk spin-down operations."),
		Decisions: c.Counter("esched_scheduler_decisions_total", "Scheduler placement decisions."),
		Response: c.Histogram("esched_response_time_seconds",
			"Request response time in seconds.", ResponseBuckets()),
		QueueDepth: c.Histogram("esched_queue_depth",
			"Disk queue depth observed at each enqueue.", DepthBuckets()),
		SimTime:     c.Gauge("esched_sim_time_seconds", "Current virtual time in seconds."),
		EventsFired: c.Gauge("esched_sim_events_fired", "Simulation kernel events executed."),
	}
	const reqName = "esched_requests_total"
	const reqHelp = "Requests by outcome."
	m.Served = c.Counter(reqName, reqHelp, Label{"outcome", "served"})
	m.Dropped = c.Counter(reqName, reqHelp, Label{"outcome", "dropped"})
	m.Redispatched = c.Counter(reqName, reqHelp, Label{"outcome", "redispatched"})
	m.CacheHits = c.Counter(reqName, reqHelp, Label{"outcome", "cache_hit"})
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		m.Energy[s] = c.Counter("esched_energy_joules_total",
			"Energy consumed by all disks, by power state, in joules.",
			Label{"state", s.String()})
	}
	return m
}

// Transition applies one power-state transition's live updates: the
// per-state energy deltas and the spin operation counters.
func (m *RunMetrics) Transition(from, to core.DiskState, e EnergyDelta) {
	if e.StateJ > 0 {
		m.Energy[from].Add(e.StateJ)
	}
	if e.ImpulseJ > 0 {
		m.Energy[to].Add(e.ImpulseJ)
	}
	switch to {
	case core.StateSpinUp:
		m.SpinUps.Inc()
	case core.StateSpinDown:
		m.SpinDowns.Inc()
	}
}

// ObserveResponse records one completed request's response time.
func (m *RunMetrics) ObserveResponse(latency time.Duration) {
	m.Response.Observe(latency.Seconds())
}

// ReconcileEnergy overwrites the per-state energy counters with the exact
// end-of-run totals (joules by state, summed over disks in disk order),
// making exporter output match internal/report's aggregates exactly.
func (m *RunMetrics) ReconcileEnergy(byState [core.StateSpinDown + 1]float64) {
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		m.Energy[s].Reconcile(byState[s])
	}
}
