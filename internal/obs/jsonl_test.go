package obs

import (
	"bytes"
	"strings"
	"testing"
)

// jsonlLog renders the one-of-each fixture as canonical JSONL bytes.
func jsonlLog(tb testing.TB) []byte {
	tb.Helper()
	tr := NewTracer(64)
	emitOneOfEach(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadJSONLRejectsNonCanonical pins the strict-parser contract: the
// accepted set is exactly the encodable set, so permuted keys, redundant
// or missing fields and non-canonical number forms are errors, not
// silently normalized events.
func TestReadJSONLRejectsNonCanonical(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		line string
	}{
		{"permuted keys", `{"seq":0,"t":1000,"kind":"arrive","req":7,"block":42}`},
		{"redundant default disk", `{"t":1000,"seq":0,"kind":"arrive","disk":-1,"req":7,"block":42}`},
		{"duplicate key", `{"t":1000,"t":1000,"seq":0,"kind":"arrive","req":7,"block":42}`},
		{"zero impulse spelled out", `{"t":1,"seq":0,"kind":"power","disk":3,"from":"idle","to":"active","j":1,"imp":0}`},
		{"non-canonical float", `{"t":1,"seq":0,"kind":"power","disk":3,"from":"idle","to":"active","j":1.50}`},
		{"plus-signed int", `{"t":+1,"seq":0,"kind":"arrive","req":7,"block":42}`},
		{"whitespace inside object", `{"t":1000, "seq":0,"kind":"arrive","req":7,"block":42}`},
		{"missing lat on complete", `{"t":1,"seq":0,"kind":"complete","disk":3,"req":7}`},
		{"block on runend", `{"t":1,"seq":0,"kind":"runend","block":9}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := ReadJSONL(strings.NewReader(tc.line + "\n")); err == nil {
				t.Errorf("accepted non-canonical line %q", tc.line)
			}
		})
	}
}

func TestReadJSONLAcceptsCanonical(t *testing.T) {
	t.Parallel()
	log := jsonlLog(t)
	evs, err := ReadJSONL(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != emitOneOfEachCount {
		t.Fatalf("parsed %d events, want %d", len(evs), emitOneOfEachCount)
	}
}

// FuzzReadJSONL throws arbitrary text at the JSONL log reader: it must
// never panic, and every log it accepts must re-encode to the identical
// bytes modulo blank lines and surrounding whitespace (the strict-parser
// guarantee ReadJSONL enforces per line).
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\n\n"))
	f.Add(jsonlLog(f))
	f.Add([]byte(`{"t":250000000,"seq":0,"kind":"decision","disk":3,"req":0,"block":42,"dec":1,"cost":1.5,"ej":148.5,"load":0}` + "\n"))
	f.Add([]byte(`{"t":1,"seq":2,"kind":"power","disk":3,"dec":1,"from":"standby","to":"spin-up","j":0.25,"imp":135}` + "\n"))
	f.Add([]byte(`{"t":6000000000,"seq":10,"kind":"runend","fired":12345}` + "\n"))
	f.Add([]byte(`{"t":1,"seq":0,"kind":"end","disk":0,"state":"standby","j":3.75}`))
	f.Add([]byte(`{"kind":"arrive"`))
	f.Add([]byte(`{"t":9223372036854775807,"seq":18446744073709551615,"kind":"arrive","req":7,"block":42}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re []byte
		for _, ev := range evs {
			re = AppendJSONL(re, ev)
		}
		// The reader tolerates blank lines and per-line surrounding space;
		// compare the canonical re-encoding against the normalized input.
		var norm []byte
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			norm = append(norm, line...)
			norm = append(norm, '\n')
		}
		if !bytes.Equal(re, norm) {
			t.Fatalf("accepted log does not round-trip:\nin:  %q\nout: %q", norm, re)
		}
	})
}

// TestReadJSONLRoundTripAfterMutation feeds the strict parser every
// single-byte corruption of a canonical log line: none may panic, and any
// accepted mutant must still round-trip (the fuzz property, exercised
// deterministically in the regular test suite).
func TestReadJSONLSingleByteCorruptions(t *testing.T) {
	t.Parallel()
	line := []byte(`{"t":250000000,"seq":3,"kind":"power","disk":3,"dec":1,"from":"standby","to":"spin-up","j":0.25}` + "\n")
	for i := range line {
		for _, delta := range []byte{1, 0x20, 0x80} {
			mut := append([]byte(nil), line...)
			mut[i] ^= delta
			evs, err := ReadJSONL(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			var re []byte
			for _, ev := range evs {
				re = AppendJSONL(re, ev)
			}
			norm := append(bytes.TrimSpace(mut), '\n')
			if len(bytes.TrimSpace(mut)) == 0 {
				norm = nil
			}
			if !bytes.Equal(re, norm) {
				t.Fatalf("byte %d ^ %#x accepted but does not round-trip:\nin:  %q\nout: %q", i, delta, mut, re)
			}
		}
	}
}

// TestJSONLKnownFieldsStayCanonical re-encodes a log after a parse and
// requires byte identity, guarding the AppendJSONL/ReadJSONL pair against
// drifting apart when fields are added.
func TestJSONLKnownFieldsStayCanonical(t *testing.T) {
	t.Parallel()
	log := jsonlLog(t)
	evs, err := ReadJSONL(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	var re []byte
	for _, ev := range evs {
		re = AppendJSONL(re, ev)
	}
	if !bytes.Equal(re, log) {
		t.Fatal("canonical log does not re-encode to identical bytes")
	}
}
