package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Collector is a small metrics registry rendering the Prometheus text
// exposition format (the idiom of exporters like cloud-carbon-exporter,
// without the client_golang dependency).
//
// Metrics are created once at wiring time — Counter/Gauge/Histogram return
// handles — and updated through the handles on the hot path with a single
// mutex acquisition and no allocation. A Collector is safe for concurrent
// use, so one registry can aggregate across parallel experiment cells, and
// WriteTo can snapshot it mid-run from another goroutine (e.g. the pprof
// HTTP endpoint).
//
// Output is deterministic: families render sorted by name, series sorted
// by label signature, values in shortest-round-trip form — so exporter
// output is golden-testable.
type Collector struct {
	mu     sync.Mutex
	byName map[string]*family
}

type metricType uint8

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64 // histogram families only
	series  map[string]*series
}

type series struct {
	labels string // rendered {k="v",...} signature, "" for none
	val    float64
	counts []uint64 // histogram bucket counts (non-cumulative)
	sum    float64
	n      uint64
}

// Label is one metric label pair.
type Label struct{ Key, Value string }

// NewCollector returns an empty registry.
func NewCollector() *Collector {
	return &Collector{byName: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (c *Collector) family(name, help string, typ metricType, buckets []float64) *family {
	f, ok := c.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			series: make(map[string]*series)}
		c.byName[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

func (f *family) get(labels []Label) *series {
	sig := renderLabels(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sig}
		if f.typ == typeHistogram {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[sig] = s
	}
	return s
}

// Counter registers (or looks up) a monotonically increasing metric and
// returns its update handle.
func (c *Collector) Counter(name, help string, labels ...Label) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Counter{mu: &c.mu, s: c.family(name, help, typeCounter, nil).get(labels)}
}

// Gauge registers (or looks up) a point-in-time metric and returns its
// update handle.
func (c *Collector) Gauge(name, help string, labels ...Label) *Gauge {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Gauge{mu: &c.mu, s: c.family(name, help, typeGauge, nil).get(labels)}
}

// Histogram registers (or looks up) a bucketed distribution with the given
// upper bounds (ascending; an implicit +Inf bucket is always present) and
// returns its update handle. Bounds must match any prior registration of
// the same name.
func (c *Collector) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, buckets))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.family(name, help, typeHistogram, buckets)
	return &Histogram{mu: &c.mu, f: f, s: f.get(labels)}
}

// Counter is a handle to one counter series.
type Counter struct {
	mu *sync.Mutex
	s  *series
}

// Add increases the counter; negative deltas panic.
func (x *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("obs: counter add %v", v))
	}
	x.mu.Lock()
	x.s.val += v
	x.mu.Unlock()
}

// Inc adds one.
func (x *Counter) Inc() { x.Add(1) }

// Reconcile overwrites the counter with an authoritative total — the
// end-of-run exact value from the energy meters, replacing the live
// incremental approximation so exported totals match internal/report's
// aggregates bit for bit.
func (x *Counter) Reconcile(v float64) {
	x.mu.Lock()
	x.s.val = v
	x.mu.Unlock()
}

// Value returns the current value.
func (x *Counter) Value() float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.s.val
}

// Gauge is a handle to one gauge series.
type Gauge struct {
	mu *sync.Mutex
	s  *series
}

// Set overwrites the gauge.
func (x *Gauge) Set(v float64) {
	x.mu.Lock()
	x.s.val = v
	x.mu.Unlock()
}

// Add adjusts the gauge by a (possibly negative) delta.
func (x *Gauge) Add(v float64) {
	x.mu.Lock()
	x.s.val += v
	x.mu.Unlock()
}

// Value returns the current value.
func (x *Gauge) Value() float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.s.val
}

// Histogram is a handle to one histogram series.
type Histogram struct {
	mu *sync.Mutex
	f  *family
	s  *series
}

// Observe records one sample.
func (x *Histogram) Observe(v float64) {
	x.mu.Lock()
	// First bucket whose upper bound contains v; sample may exceed every
	// bound (counted only by +Inf via n).
	for i, ub := range x.f.buckets {
		if v <= ub {
			x.s.counts[i]++
			break
		}
	}
	x.s.sum += v
	x.s.n++
	x.mu.Unlock()
}

// Count returns the number of samples observed.
func (x *Histogram) Count() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.s.n
}

// Sum returns the sum of all observed samples.
func (x *Histogram) Sum() float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.s.sum
}

// WriteTo renders the registry in the Prometheus text exposition format.
// It implements io.WriterTo and may be called at any time, including
// mid-run.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	names := make([]string, 0, len(c.byName))
	for name := range c.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var b []byte
	for _, name := range names {
		f := c.byName[name]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ.String()...)
		b = append(b, '\n')
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			if f.typ == typeHistogram {
				b = appendHistogram(b, f, s)
				continue
			}
			b = append(b, f.name...)
			b = append(b, s.labels...)
			b = append(b, ' ')
			b = appendMetricValue(b, s.val)
			b = append(b, '\n')
		}
	}
	c.mu.Unlock()
	n, err := w.Write(b)
	return int64(n), err
}

// appendHistogram renders the cumulative _bucket series plus _sum/_count.
func appendHistogram(b []byte, f *family, s *series) []byte {
	cum := uint64(0)
	for i, ub := range f.buckets {
		cum += s.counts[i]
		b = appendBucket(b, f.name, s.labels, strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	b = appendBucket(b, f.name, s.labels, "+Inf", s.n)
	b = append(b, f.name...)
	b = append(b, "_sum"...)
	b = append(b, s.labels...)
	b = append(b, ' ')
	b = appendMetricValue(b, s.sum)
	b = append(b, '\n')
	b = append(b, f.name...)
	b = append(b, "_count"...)
	b = append(b, s.labels...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, s.n, 10)
	return append(b, '\n')
}

func appendBucket(b []byte, name, labels, le string, n uint64) []byte {
	b = append(b, name...)
	b = append(b, "_bucket"...)
	if labels == "" {
		b = append(b, `{le="`...)
	} else {
		b = append(b, labels[:len(labels)-1]...)
		b = append(b, `,le="`...)
	}
	b = append(b, le...)
	b = append(b, `"} `...)
	b = strconv.AppendUint(b, n, 10)
	return append(b, '\n')
}

func appendMetricValue(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// String renders the registry as a string (for tests and logs).
func (c *Collector) String() string {
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		return "obs: " + err.Error()
	}
	return b.String()
}
