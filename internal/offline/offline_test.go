package offline

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/power"
)

// paperExample builds the worked example of Figures 2-4: requests r1..r6
// for blocks b1..b6 (0-indexed here), four disks with the paper's layout.
func paperExample() (locations func(core.BlockID) []core.DiskID) {
	locs := [][]core.DiskID{
		0: {0},       // b1 on d1
		1: {0, 1},    // b2 on d1, d2
		2: {0, 1, 3}, // b3 on d1, d2, d4
		3: {2, 3},    // b4 on d3, d4
		4: {0, 3},    // b5 on d1, d4
		5: {2, 3},    // b6 on d3, d4
	}
	return func(b core.BlockID) []core.DiskID {
		if b < 0 || int(b) >= len(locs) {
			return nil
		}
		return locs[b]
	}
}

func offlineRequests() []core.Request {
	times := []time.Duration{0, 1 * time.Second, 3 * time.Second, 5 * time.Second, 12 * time.Second, 13 * time.Second}
	reqs := make([]core.Request, 6)
	for i := range reqs {
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i), Arrival: times[i]}
	}
	return reqs
}

func batchRequests() []core.Request {
	reqs := make([]core.Request, 6)
	for i := range reqs {
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i)}
	}
	return reqs
}

func TestSavingEquation3(t *testing.T) {
	t.Parallel()
	cfg := power.ToyConfig() // T_B=5s, E=0, P_I=1
	tests := []struct {
		name   string
		ti, tj time.Duration
		want   float64
	}{
		{"zero gap", 0, 0, 5},
		{"one second gap (paper: saving of r1 is 4)", 0, time.Second, 4},
		{"gap at breakeven edge", 0, 5 * time.Second, 0},
		{"gap beyond window", 0, 10 * time.Second, 0},
		{"negative gap", 5 * time.Second, 0, 0},
	}
	for _, tc := range tests {
		if got := Saving(cfg, tc.ti, tc.tj); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: Saving = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSavingWithTransitionTimes(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	window := cfg.ReplacementWindow()
	// Inside the window but beyond breakeven (case II): saving is positive
	// only while E_up/down exceeds the extra idle energy.
	gap := cfg.Breakeven() + time.Second
	want := cfg.UpDownEnergy() - (gap-cfg.Breakeven()).Seconds()*cfg.IdlePower
	if got := Saving(cfg, 0, gap); math.Abs(got-want) > 1e-9 {
		t.Errorf("case II saving = %v, want %v", got, want)
	}
	if got := Saving(cfg, 0, window); got != 0 {
		t.Errorf("saving at window edge = %v, want 0", got)
	}
}

func TestGapCostMonotoneUnderFootnote4(t *testing.T) {
	t.Parallel()
	// Footnote 4's condition ((T_up+T_down)*P_I <= E_up/down) holds for the
	// default config, making gapCost non-decreasing — the property that
	// makes the MWIS objective exact.
	cfg := power.DefaultConfig()
	if (cfg.SpinUpTime+cfg.SpinDownTime).Seconds()*cfg.IdlePower > cfg.UpDownEnergy() {
		t.Fatal("default config violates footnote 4 precondition")
	}
	prev := -1.0
	for g := time.Duration(0); g < 2*cfg.ReplacementWindow(); g += 100 * time.Millisecond {
		c := GapCost(cfg, g)
		if c < prev {
			t.Fatalf("GapCost not monotone at gap %s: %v < %v", g, c, prev)
		}
		prev = c
	}
}

func TestGapCostPanicsOnNegative(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	GapCost(power.ToyConfig(), -time.Second)
}

func TestEvaluatePaperScheduleB_Offline(t *testing.T) {
	t.Parallel()
	// Figure 3(a): schedule B = {r1,r2,r3,r5 -> d1; r4,r6 -> d3},
	// energy 23 (13 on d1, 10 on d3).
	reqs := offlineRequests()
	sched := core.Schedule{0, 0, 0, 2, 0, 2}
	st, err := Evaluate(reqs, sched, power.ToyConfig(), paperExample())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Energy-23) > 1e-9 {
		t.Errorf("schedule B energy = %v, want 23", st.Energy)
	}
	if st.DisksUsed != 2 {
		t.Errorf("disks used = %d, want 2", st.DisksUsed)
	}
	// d1 cycles twice (gap 3->12 exceeds window), d3 cycles twice.
	if st.SpinUps != 4 {
		t.Errorf("spin-ups = %d, want 4", st.SpinUps)
	}
}

func TestEvaluatePaperScheduleC_Offline(t *testing.T) {
	t.Parallel()
	// Figure 3(b): schedule C = {r1,r2,r3 -> d1; r4 -> d3; r5,r6 -> d4},
	// energy 19 (Section 2.3.2's text; the figure caption's 21 is
	// inconsistent with the text's own arithmetic).
	reqs := offlineRequests()
	sched := core.Schedule{0, 0, 0, 2, 3, 3}
	st, err := Evaluate(reqs, sched, power.ToyConfig(), paperExample())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Energy-19) > 1e-9 {
		t.Errorf("schedule C energy = %v, want 19", st.Energy)
	}
	if st.DisksUsed != 3 {
		t.Errorf("disks used = %d, want 3", st.DisksUsed)
	}
}

func TestEvaluatePaperBatchSchedules(t *testing.T) {
	t.Parallel()
	// Figure 2: with all requests concurrent, schedule A (3 disks) costs 15
	// and schedule B (2 disks) costs 10.
	reqs := batchRequests()
	cfg := power.ToyConfig()
	schedA := core.Schedule{0, 1, 1, 2, 0, 2}
	stA, err := Evaluate(reqs, schedA, cfg, paperExample())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stA.Energy-15) > 1e-9 {
		t.Errorf("schedule A energy = %v, want 15", stA.Energy)
	}
	schedB := core.Schedule{0, 0, 0, 2, 0, 2}
	stB, err := Evaluate(reqs, schedB, cfg, paperExample())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stB.Energy-10) > 1e-9 {
		t.Errorf("schedule B energy = %v, want 10", stB.Energy)
	}
}

func TestEvaluateSavingIdentity(t *testing.T) {
	t.Parallel()
	// Total energy = N*MaxRequestEnergy - saving (Section 3.1.1).
	reqs := offlineRequests()
	cfg := power.ToyConfig()
	sched := core.Schedule{0, 0, 0, 2, 3, 3}
	st, err := Evaluate(reqs, sched, cfg, paperExample())
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(reqs))*cfg.MaxRequestEnergy() - st.Energy
	if math.Abs(st.Saving-want) > 1e-9 {
		t.Errorf("saving = %v, want %v", st.Saving, want)
	}
}

func TestEvaluateRejectsBadSchedules(t *testing.T) {
	t.Parallel()
	reqs := offlineRequests()
	if _, err := Evaluate(reqs, core.Schedule{0}, power.ToyConfig(), paperExample()); err == nil {
		t.Error("accepted short schedule")
	}
	// r1 (block b1) lives only on d1; scheduling it on d2 must fail.
	bad := core.Schedule{1, 0, 0, 2, 0, 2}
	if _, err := Evaluate(reqs, bad, power.ToyConfig(), paperExample()); err == nil {
		t.Error("accepted off-replica assignment")
	}
}

func TestAlwaysOnEnergyAndHorizon(t *testing.T) {
	t.Parallel()
	cfg := power.ToyConfig()
	reqs := offlineRequests()
	h := Horizon(reqs, cfg)
	if h != 18*time.Second {
		t.Errorf("Horizon = %v, want 18s (last arrival 13s + T_B 5s)", h)
	}
	// Figure 3's always-on benchmark: 4 disks * 18s * 1 W = 72... the paper
	// says 76 (=18*4) with a slightly different horizon reading; we assert
	// our own arithmetic.
	if got := AlwaysOnEnergy(cfg, 4, h); math.Abs(got-72) > 1e-9 {
		t.Errorf("AlwaysOnEnergy = %v, want 72", got)
	}
	if Horizon(nil, cfg) != 0 {
		t.Error("empty horizon != 0")
	}
}
