package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/power"
)

func TestBreakdownPaperScheduleC(t *testing.T) {
	t.Parallel()
	// Figure 3(b): d1 idle 0-8, d3 idle 5-10, d4 idle 12-18 (toy model,
	// instantaneous transitions).
	reqs := offlineRequests()
	sched := core.Schedule{0, 0, 0, 2, 3, 3}
	cfg := power.ToyConfig()
	horizon := Horizon(reqs, cfg) // 18s
	stats, err := Breakdown(reqs, sched, cfg, 4, horizon)
	if err != nil {
		t.Fatal(err)
	}
	wantIdle := []time.Duration{8 * time.Second, 0, 5 * time.Second, 6 * time.Second}
	for d, want := range wantIdle {
		if got := stats[d].TimeIn[core.StateIdle]; got != want {
			t.Errorf("disk %d idle = %v, want %v", d+1, got, want)
		}
	}
	// d2 never used: full-horizon standby.
	if got := stats[1].TimeIn[core.StateStandby]; got != horizon {
		t.Errorf("d2 standby = %v, want %v", got, horizon)
	}
	// Toy standby power is zero, so breakdown energy equals Evaluate's 19.
	if got := BreakdownEnergy(stats); math.Abs(got-19) > 1e-9 {
		t.Errorf("breakdown energy = %v, want 19", got)
	}
}

func TestBreakdownTimeConservation(t *testing.T) {
	t.Parallel()
	// Property: per-disk state times sum to the horizon (modulo the
	// clamped pre-time-zero spin-up lead-in).
	cfg := power.DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs, locations := randomInstance(rng)
		sched := make(core.Schedule, len(reqs))
		numDisks := 0
		for _, r := range reqs {
			locs := locations(r.Block)
			sched[r.ID] = locs[rng.Intn(len(locs))]
			for _, d := range locs {
				if int(d) >= numDisks {
					numDisks = int(d) + 1
				}
			}
		}
		horizon := Horizon(reqs, cfg) + time.Minute
		stats, err := Breakdown(reqs, sched, cfg, numDisks, horizon)
		if err != nil {
			return false
		}
		for _, st := range stats {
			if st.Total() != horizon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBreakdownEnergyConsistentWithEvaluate(t *testing.T) {
	t.Parallel()
	// With zero standby power, Breakdown's energy must equal Evaluate's
	// (they are two views of the same analytic model).
	cfg := power.DefaultConfig()
	cfg.StandbyPower = 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs, locations := randomInstance(rng)
		// Shift all arrivals past T_up so no lead-in clipping occurs.
		for i := range reqs {
			reqs[i].Arrival += cfg.SpinUpTime
		}
		sched := make(core.Schedule, len(reqs))
		numDisks := 0
		for _, r := range reqs {
			locs := locations(r.Block)
			sched[r.ID] = locs[rng.Intn(len(locs))]
			for _, d := range locs {
				if int(d) >= numDisks {
					numDisks = int(d) + 1
				}
			}
		}
		st, err := Evaluate(reqs, sched, cfg, nil)
		if err != nil {
			return false
		}
		stats, err := Breakdown(reqs, sched, cfg, numDisks, Horizon(reqs, cfg))
		if err != nil {
			return false
		}
		got := BreakdownEnergy(stats)
		return math.Abs(got-st.Energy) < 1e-6*(1+st.Energy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBreakdownSpinCountsMatchEvaluate(t *testing.T) {
	t.Parallel()
	reqs := offlineRequests()
	sched := core.Schedule{0, 0, 0, 2, 0, 2} // schedule B
	cfg := power.ToyConfig()
	st, err := Evaluate(reqs, sched, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Breakdown(reqs, sched, cfg, 4, Horizon(reqs, cfg))
	if err != nil {
		t.Fatal(err)
	}
	ups, downs := 0, 0
	for _, s := range stats {
		ups += s.SpinUps
		downs += s.SpinDowns
	}
	if ups != st.SpinUps || downs != st.SpinDowns {
		t.Errorf("breakdown spin ops = %d/%d, Evaluate = %d/%d", ups, downs, st.SpinUps, st.SpinDowns)
	}
}

func TestBreakdownRejectsBadInput(t *testing.T) {
	t.Parallel()
	reqs := offlineRequests()
	if _, err := Breakdown(reqs, core.Schedule{0}, power.ToyConfig(), 4, time.Minute); err == nil {
		t.Error("accepted short schedule")
	}
	bad := core.Schedule{9, 0, 0, 2, 0, 2}
	if _, err := Breakdown(reqs, bad, power.ToyConfig(), 4, time.Minute); err == nil {
		t.Error("accepted out-of-range disk")
	}
}
