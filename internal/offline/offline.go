// Package offline implements the paper's offline scheduling theory
// (Section 3.1 and Appendix B): the per-request energy-saving function
// X(i,j,k) of Lemma 1/Eq. 3, the analytic energy evaluator for a schedule
// under the offline model (disks are spun up in advance or kept idle so
// requests never wait), the reduction of offline scheduling to maximum
// weighted independent set (Theorem 1), and the Theorem 3 NP-completeness
// gadget.
//
// In the offline model a disk serving requests at times t_1 < ... < t_n
// costs
//
//	E = E_up + sum_{i<n} gapCost(t_{i+1}-t_i) + (T_B*P_I + E_down)
//
// where gapCost(g) = g*P_I when g < T_B+T_up+T_down (the disk stays idle,
// Lemma 1 cases II/III) and E_up/down + T_B*P_I otherwise (full power
// cycle, case I). Total schedule energy then equals
// N*MaxRequestEnergy - totalSaving, so maximizing Eq. 3 savings is exactly
// minimizing energy.
package offline

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/power"
)

// Saving computes X(i,j,k) of Eq. 3: the energy saved on request r_i when
// its successor on the same disk arrives at t_j. It is zero when the gap
// reaches the replacement window T_B + T_up + T_down.
func Saving(cfg power.Config, ti, tj time.Duration) float64 {
	gap := tj - ti
	if gap < 0 || gap >= cfg.ReplacementWindow() {
		return 0
	}
	return cfg.UpDownEnergy() + (cfg.Breakeven()-gap).Seconds()*cfg.IdlePower
}

// GapCost returns the energy a disk spends between servicing a request and
// its successor arriving gap later (Lemma 1): idle power for gaps inside
// the replacement window, one full power cycle beyond it.
func GapCost(cfg power.Config, gap time.Duration) float64 {
	if gap < 0 {
		panic(fmt.Sprintf("offline: negative gap %s", gap))
	}
	if gap < cfg.ReplacementWindow() {
		return gap.Seconds() * cfg.IdlePower
	}
	return cfg.UpDownEnergy() + cfg.Breakeven().Seconds()*cfg.IdlePower
}

// Stats summarizes a schedule under the offline analytic model.
type Stats struct {
	Energy    float64 // joules
	Saving    float64 // joules versus the per-request worst case
	DisksUsed int
	SpinUps   int // including each disk's initial spin-up
	SpinDowns int
}

// Evaluate computes the analytic offline energy of a schedule. locations is
// consulted only for validation and may be nil to skip it.
func Evaluate(reqs []core.Request, sched core.Schedule, cfg power.Config, locations func(core.BlockID) []core.DiskID) (Stats, error) {
	if len(sched) != len(reqs) {
		return Stats{}, fmt.Errorf("offline: schedule covers %d of %d requests", len(sched), len(reqs))
	}
	if locations != nil && !sched.Valid(reqs, locations) {
		return Stats{}, fmt.Errorf("offline: schedule assigns a request off its replica locations")
	}
	numDisks := 0
	for _, d := range sched {
		if d < 0 {
			return Stats{}, fmt.Errorf("offline: schedule assigns negative disk %d", d)
		}
		if int(d)+1 > numDisks {
			numDisks = int(d) + 1
		}
	}
	perDisk := make([][]time.Duration, numDisks)
	counts := make([]int, numDisks)
	for _, r := range reqs {
		counts[sched[r.ID]]++
	}
	for d, c := range counts {
		if c > 0 {
			perDisk[d] = make([]time.Duration, 0, c)
		}
	}
	for _, r := range reqs {
		d := sched[r.ID]
		perDisk[d] = append(perDisk[d], r.Arrival)
	}
	var st Stats
	tail := cfg.Breakeven().Seconds()*cfg.IdlePower + cfg.SpinDownEnergy
	// Disks are visited in id order so the floating-point energy sum is the
	// same on every run (map iteration would reorder the additions).
	for _, times := range perDisk {
		if len(times) == 0 {
			continue
		}
		slices.Sort(times)
		st.DisksUsed++
		st.SpinUps++
		st.SpinDowns++
		st.Energy += cfg.SpinUpEnergy
		for i := 0; i+1 < len(times); i++ {
			gap := times[i+1] - times[i]
			st.Energy += GapCost(cfg, gap)
			if gap >= cfg.ReplacementWindow() {
				st.SpinUps++
				st.SpinDowns++
			}
		}
		st.Energy += tail
	}
	st.Saving = float64(len(reqs))*cfg.MaxRequestEnergy() - st.Energy
	return st, nil
}

// AlwaysOnEnergy returns the energy of the paper's normalization baseline:
// all numDisks disks spinning idle for the whole horizon.
func AlwaysOnEnergy(cfg power.Config, numDisks int, horizon time.Duration) float64 {
	return float64(numDisks) * cfg.IdlePower * horizon.Seconds()
}

// Horizon returns the accounting horizon used when normalizing a trace's
// energy: the last arrival plus the time for the last disk to finish its
// breakeven idle period and spin down.
func Horizon(reqs []core.Request, cfg power.Config) time.Duration {
	if len(reqs) == 0 {
		return 0
	}
	last := reqs[len(reqs)-1].Arrival
	for _, r := range reqs {
		if r.Arrival > last {
			last = r.Arrival
		}
	}
	return last + cfg.Breakeven() + cfg.SpinUpTime + cfg.SpinDownTime
}
