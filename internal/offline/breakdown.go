package offline

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/power"
)

// Breakdown reconstructs each disk's state timeline under the offline
// scheduling model (Section 2.2: disks are spun up in advance, so requests
// never wait) and returns per-disk statistics directly comparable with the
// event-driven simulator's: state times over the horizon, spin counts and
// energy including standby draw.
//
// Timeline per disk serving requests at t_1 < ... < t_n: standby, then a
// spin-up finishing exactly at t_1; between consecutive requests the disk
// stays idle when the gap is inside the replacement window and otherwise
// idles for T_B, spins down, sleeps and spins back up to be ready at the
// next request; after t_n it idles T_B, spins down and sleeps until the
// horizon. I/O time is negligible at this time scale (Section 2.1), so
// active time is zero.
func Breakdown(reqs []core.Request, sched core.Schedule, cfg power.Config, numDisks int, horizon time.Duration) ([]diskmodel.Stats, error) {
	if len(sched) != len(reqs) {
		return nil, fmt.Errorf("offline: schedule covers %d of %d requests", len(sched), len(reqs))
	}
	perDisk := make([][]time.Duration, numDisks)
	for _, r := range reqs {
		d := sched[r.ID]
		if d < 0 || int(d) >= numDisks {
			return nil, fmt.Errorf("offline: request %d scheduled on invalid disk %d", r.ID, d)
		}
		perDisk[d] = append(perDisk[d], r.Arrival)
	}
	out := make([]diskmodel.Stats, numDisks)
	window := cfg.ReplacementWindow()
	tb := cfg.Breakeven()
	for d := range out {
		st := &out[d]
		st.Disk = core.DiskID(d)
		times := perDisk[d]
		if len(times) == 0 {
			st.TimeIn[core.StateStandby] = horizon
			st.Energy = cfg.StandbyPower * horizon.Seconds()
			st.EnergyIn[core.StateStandby] = st.Energy
			continue
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		st.Served = len(times)

		addEnergy := func(s core.DiskState, j float64) {
			st.Energy += j
			st.EnergyIn[s] += j
		}
		addSpinUp := func() {
			st.SpinUps++
			st.TimeIn[core.StateSpinUp] += cfg.SpinUpTime
			addEnergy(core.StateSpinUp, cfg.SpinUpEnergy)
		}
		addSpinDown := func() {
			st.SpinDowns++
			st.TimeIn[core.StateSpinDown] += cfg.SpinDownTime
			addEnergy(core.StateSpinDown, cfg.SpinDownEnergy)
		}
		addIdle := func(d time.Duration) {
			st.TimeIn[core.StateIdle] += d
			addEnergy(core.StateIdle, cfg.IdlePower*d.Seconds())
		}
		addStandby := func(d time.Duration) {
			st.TimeIn[core.StateStandby] += d
			addEnergy(core.StateStandby, cfg.StandbyPower*d.Seconds())
		}

		// Lead-in: standby until the prescient spin-up that completes at
		// t_1. When t_1 < T_up the spin-up started before the accounting
		// window: clip its in-window duration (and pro-rate its energy)
		// so state times still sum to the horizon.
		if lead := times[0]; lead >= cfg.SpinUpTime {
			addStandby(lead - cfg.SpinUpTime)
			addSpinUp()
		} else {
			st.SpinUps++
			st.TimeIn[core.StateSpinUp] += lead
			if cfg.SpinUpTime > 0 {
				addEnergy(core.StateSpinUp, cfg.SpinUpEnergy*lead.Seconds()/cfg.SpinUpTime.Seconds())
			} else {
				addEnergy(core.StateSpinUp, cfg.SpinUpEnergy)
			}
		}
		for i := 0; i+1 < len(times); i++ {
			gap := times[i+1] - times[i]
			if gap < window {
				addIdle(gap)
				continue
			}
			addIdle(tb)
			addSpinDown()
			addStandby(gap - tb - cfg.SpinDownTime - cfg.SpinUpTime)
			addSpinUp()
		}
		// Tail: breakeven idle, spin down, sleep to the horizon.
		addIdle(tb)
		addSpinDown()
		addStandby(horizon - times[len(times)-1] - tb - cfg.SpinDownTime)
	}
	return out, nil
}

// BreakdownEnergy sums the per-disk energies of Breakdown — the offline
// energy including standby draw, directly comparable with simulator totals.
func BreakdownEnergy(stats []diskmodel.Stats) float64 {
	total := 0.0
	for _, st := range stats {
		total += st.Energy
	}
	return total
}
