package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/power"
)

func TestImproveNeverWorsensAndMatchesEvaluate(t *testing.T) {
	t.Parallel()
	cfg := power.ToyConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs, locations := randomInstance(rng)
		// Start from the static schedule (original locations).
		start := make(core.Schedule, len(reqs))
		for _, r := range reqs {
			start[r.ID] = locations(r.Block)[0]
		}
		before, err := Evaluate(reqs, start, cfg, locations)
		if err != nil {
			return false
		}
		improved, _, err := Improve(reqs, start, cfg, locations, 10)
		if err != nil || !improved.Valid(reqs, locations) {
			return false
		}
		after, err := Evaluate(reqs, improved, cfg, locations)
		if err != nil {
			return false
		}
		return after.Energy <= before.Energy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestImproveReachesOptimumOnPaperExample(t *testing.T) {
	t.Parallel()
	// Start one strictly-improving move away from schedule C: r3 sits alone
	// on d2 (energy 22); moving it next to r1,r2 on d1 saves 3 and yields
	// the optimal 19. (Schedule B itself is separated from C by a
	// zero-gain plateau that strict single-move descent cannot cross.)
	reqs := offlineRequests()
	start := core.Schedule{0, 0, 1, 2, 3, 3}
	improved, moves, err := Improve(reqs, start, power.ToyConfig(), paperExample(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("no moves made from suboptimal schedule B")
	}
	st, err := Evaluate(reqs, improved, power.ToyConfig(), paperExample())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Energy-19) > 1e-9 {
		t.Errorf("improved energy = %v, want 19", st.Energy)
	}
}

func TestImproveFixedPointIsStable(t *testing.T) {
	t.Parallel()
	reqs := offlineRequests()
	sched, _, err := SolveExact(reqs, paperExample(), power.ToyConfig())
	if err != nil {
		t.Fatal(err)
	}
	improved, moves, err := Improve(reqs, sched, power.ToyConfig(), paperExample(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Errorf("%d moves from an optimal schedule", moves)
	}
	for i := range sched {
		if improved[i] != sched[i] {
			t.Errorf("optimal schedule mutated at %d", i)
		}
	}
}

func TestImproveDeltaConsistency(t *testing.T) {
	t.Parallel()
	// Property: after Improve, recomputing energy from scratch matches a
	// from-scratch evaluation of the returned schedule (the incremental
	// deltas didn't drift).
	cfg := power.DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs, locations := randomInstance(rng)
		start := make(core.Schedule, len(reqs))
		for _, r := range reqs {
			locs := locations(r.Block)
			start[r.ID] = locs[rng.Intn(len(locs))]
		}
		improved, _, err := Improve(reqs, start, cfg, locations, 5)
		if err != nil {
			return false
		}
		// Re-run Improve on its own output: it must make no further moves
		// in the first pass (local optimality) unless floating-point noise.
		again, moves, err := Improve(reqs, improved, cfg, locations, 1)
		if err != nil {
			return false
		}
		if moves != 0 {
			return false
		}
		_ = again
		return improved.Valid(reqs, locations)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestImproveRejectsShortSchedule(t *testing.T) {
	t.Parallel()
	reqs := offlineRequests()
	if _, _, err := Improve(reqs, core.Schedule{0}, power.ToyConfig(), paperExample(), 1); err == nil {
		t.Error("accepted short schedule")
	}
}

func TestSolveRefinedNotWorseThanSolve(t *testing.T) {
	t.Parallel()
	cfg := power.ToyConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs, locations := randomInstance(rng)
		_, plain, err := Solve(reqs, locations, cfg, BuildOptions{})
		if err != nil {
			return false
		}
		_, refined, err := SolveRefined(reqs, locations, cfg, BuildOptions{}, 5)
		if err != nil {
			return false
		}
		return refined.Energy <= plain.Energy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
