package offline

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/workload"
)

// TestPipelineDeterministicAcrossWorkers pins the parallel pipeline's
// contract: the sharded graph construction and the component-parallel MWIS
// solve produce bit-identical schedules, energy, and spin-up counts for
// every worker count. Integer degree maintenance, per-component greedy
// independence, and component-indexed result merging make this exact, not
// approximate — any floating-point reassociation or order dependence
// sneaking into the pipeline fails this test.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 12, NumBlocks: 600, ReplicationFactor: 3, ZipfExponent: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(1200, 600, 1)
	pcfg := power.DefaultConfig()

	type outcome struct {
		sched  []int32
		energy float64
		saving float64
		ups    int
		downs  int
	}
	run := func(workers int) outcome {
		sched, st, err := SolveRefined(reqs, plc.Locations, pcfg, BuildOptions{
			MaxSuccessors:    4,
			HybridExactLimit: 12,
			Workers:          workers,
		}, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		o := outcome{energy: st.Energy, saving: st.Saving, ups: st.SpinUps, downs: st.SpinDowns}
		for _, d := range sched {
			o.sched = append(o.sched, int32(d))
		}
		return o
	}

	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got.sched) != len(want.sched) {
			t.Fatalf("workers=%d: schedule length %d, want %d", workers, len(got.sched), len(want.sched))
		}
		for i := range want.sched {
			if got.sched[i] != want.sched[i] {
				t.Fatalf("workers=%d: request %d on disk %d, serial says %d",
					workers, i, got.sched[i], want.sched[i])
			}
		}
		// Bit-identical, not approximately equal.
		if got.energy != want.energy || got.saving != want.saving {
			t.Errorf("workers=%d: energy/saving = %v/%v, serial says %v/%v",
				workers, got.energy, got.saving, want.energy, want.saving)
		}
		if got.ups != want.ups || got.downs != want.downs {
			t.Errorf("workers=%d: spin ups/downs = %d/%d, serial says %d/%d",
				workers, got.ups, got.downs, want.ups, want.downs)
		}
	}
}

// TestBuildDeterministicAcrossWorkers checks the constructed instance
// itself: node list and edge count are identical for serial and sharded
// construction.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: 8, NumBlocks: 400, ReplicationFactor: 2, ZipfExponent: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(800, 400, 2)
	pcfg := power.DefaultConfig()

	serial, err := Build(reqs, plc.Locations, pcfg, BuildOptions{MaxSuccessors: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(reqs, plc.Locations, pcfg, BuildOptions{MaxSuccessors: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Nodes) != len(parallel.Nodes) {
		t.Fatalf("node count %d parallel vs %d serial", len(parallel.Nodes), len(serial.Nodes))
	}
	for i := range serial.Nodes {
		if serial.Nodes[i] != parallel.Nodes[i] {
			t.Fatalf("node %d = %+v parallel, %+v serial", i, parallel.Nodes[i], serial.Nodes[i])
		}
	}
	if serial.Graph.M() != parallel.Graph.M() {
		t.Fatalf("edge count %d parallel vs %d serial", parallel.Graph.M(), serial.Graph.M())
	}
}
