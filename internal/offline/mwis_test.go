package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/power"
)

func TestBuildPaperExampleNodes(t *testing.T) {
	t.Parallel()
	// Figure 4 Step 1: the instance contains, among others, X(1,2,1),
	// X(2,3,1), X(2,3,2) and X(4,6,4) (1-indexed in the paper).
	in, err := Build(offlineRequests(), paperExample(), power.ToyConfig(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	find := func(i, j core.RequestID, d core.DiskID) *Node {
		for v := range in.Nodes {
			n := &in.Nodes[v]
			if n.I == i && n.J == j && n.Disk == d {
				return n
			}
		}
		return nil
	}
	tests := []struct {
		i, j   core.RequestID
		d      core.DiskID
		weight float64
	}{
		{0, 1, 0, 4}, // X(1,2,1): gap 1 -> saving 4
		{1, 2, 0, 3}, // X(2,3,1): gap 2 -> saving 3
		{1, 2, 1, 3}, // X(2,3,2)
		{4, 5, 3, 4}, // X(5,6,4): gap 1 -> saving 4
	}
	for _, tc := range tests {
		n := find(tc.i, tc.j, tc.d)
		if n == nil {
			t.Errorf("node X(%d,%d,%d) missing", tc.i+1, tc.j+1, tc.d+1)
			continue
		}
		if math.Abs(n.Weight-tc.weight) > 1e-9 {
			t.Errorf("X(%d,%d,%d) weight = %v, want %v", tc.i+1, tc.j+1, tc.d+1, n.Weight, tc.weight)
		}
	}
	// r4 (index 3, t=5s) has no partner within the 5 s window on its disks:
	// d3's other request r6 arrives at 13 s, d4's r5 at 12 s.
	for _, n := range in.Nodes {
		if n.I == 3 {
			t.Errorf("unexpected node X(4,%d,%d)", n.J+1, n.Disk+1)
		}
	}
}

func TestBuildEdgesEncodeConstraints(t *testing.T) {
	t.Parallel()
	in, err := Build(offlineRequests(), paperExample(), power.ToyConfig(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idx := func(i, j core.RequestID, d core.DiskID) int {
		for v, n := range in.Nodes {
			if n.I == i && n.J == j && n.Disk == d {
				return v
			}
		}
		t.Fatalf("node X(%d,%d,%d) missing", i+1, j+1, d+1)
		return -1
	}
	// Energy constraint: X(2,3,1) vs X(2,3,2) share i=2.
	if !in.Graph.HasEdge(idx(1, 2, 0), idx(1, 2, 1)) {
		t.Error("missing energy-constraint edge between X(2,3,1) and X(2,3,2)")
	}
	// Schedule constraint (Figure 4 Step 2): X(1,2,1) and X(2,3,2) share
	// request 2 on different disks.
	if !in.Graph.HasEdge(idx(0, 1, 0), idx(1, 2, 1)) {
		t.Error("missing schedule-constraint edge between X(1,2,1) and X(2,3,2)")
	}
	// Same disk, shared request, distinct predecessors: compatible.
	if in.Graph.HasEdge(idx(0, 1, 0), idx(1, 2, 0)) {
		t.Error("spurious edge between chainable X(1,2,1) and X(2,3,1)")
	}
}

func TestSolveExactReproducesScheduleCEnergy(t *testing.T) {
	t.Parallel()
	// The optimal offline schedule for Figure 3 costs 19 energy units.
	reqs := offlineRequests()
	sched, st, err := SolveExact(reqs, paperExample(), power.ToyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Energy-19) > 1e-9 {
		t.Errorf("optimal energy = %v, want 19 (schedule C)", st.Energy)
	}
	if !sched.Valid(reqs, paperExample()) {
		t.Error("derived schedule invalid")
	}
	// r1,r2,r3 must share one disk (only d1 holds all their blocks with
	// pairwise savings).
	if sched[0] != 0 || sched[1] != 0 || sched[2] != 0 {
		t.Errorf("r1..r3 on %v, want all on d1", sched[:3])
	}
}

func TestSolveGreedyIsValidAndNearExactOnPaperExample(t *testing.T) {
	t.Parallel()
	reqs := offlineRequests()
	sched, st, err := Solve(reqs, paperExample(), power.ToyConfig(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Valid(reqs, paperExample()) {
		t.Fatal("greedy schedule invalid")
	}
	if st.Energy < 19-1e-9 {
		t.Errorf("greedy energy %v beats the proven optimum 19", st.Energy)
	}
	if st.Energy > 23+1e-9 {
		t.Errorf("greedy energy %v worse than the naive schedule B", st.Energy)
	}
}

func TestBatchOptimalEqualsMinimumDiskCount(t *testing.T) {
	t.Parallel()
	// Theorem 2 corollary: with concurrent requests and all-standby disks,
	// optimal energy = (minimum covering disks) * (E_up/down + T_B*P_I).
	// Figure 2(b): two disks suffice, so optimal energy = 2*5 = 10.
	reqs := batchRequests()
	_, st, err := SolveExact(reqs, paperExample(), power.ToyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Energy-10) > 1e-9 {
		t.Errorf("batch optimal energy = %v, want 10", st.Energy)
	}
	if st.DisksUsed != 2 {
		t.Errorf("disks used = %d, want 2", st.DisksUsed)
	}
}

// randomInstance builds a small random scheduling problem.
func randomInstance(rng *rand.Rand) ([]core.Request, func(core.BlockID) []core.DiskID) {
	numDisks := 2 + rng.Intn(3)
	numBlocks := 1 + rng.Intn(5)
	locs := make([][]core.DiskID, numBlocks)
	for b := range locs {
		rf := 1 + rng.Intn(numDisks)
		perm := rng.Perm(numDisks)
		for _, d := range perm[:rf] {
			locs[b] = append(locs[b], core.DiskID(d))
		}
	}
	n := 2 + rng.Intn(5)
	reqs := make([]core.Request, n)
	now := time.Duration(0)
	for i := range reqs {
		now += time.Duration(rng.Int63n(int64(4 * time.Second)))
		reqs[i] = core.Request{
			ID:      core.RequestID(i),
			Block:   core.BlockID(rng.Intn(numBlocks)),
			Arrival: now,
		}
	}
	return reqs, func(b core.BlockID) []core.DiskID { return locs[b] }
}

// bruteForceMin enumerates every feasible schedule and returns the minimum
// analytic energy.
func bruteForceMin(t *testing.T, reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config) float64 {
	t.Helper()
	best := math.Inf(1)
	sched := make(core.Schedule, len(reqs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(reqs) {
			st, err := Evaluate(reqs, sched, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if st.Energy < best {
				best = st.Energy
			}
			return
		}
		for _, d := range locations(reqs[i].Block) {
			sched[reqs[i].ID] = d
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// Theorem 1 property: the exact-MWIS pipeline yields an energy-optimal
// offline schedule (checked against brute force on random small instances,
// for both the toy and the realistic power model — both satisfy footnote
// 4's precondition).
func TestSolveExactIsOptimalProperty(t *testing.T) {
	t.Parallel()
	for _, cfg := range []power.Config{power.ToyConfig(), power.DefaultConfig()} {
		cfg := cfg
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			reqs, locations := randomInstance(rng)
			sched, st, err := SolveExact(reqs, locations, cfg)
			if err != nil {
				return false
			}
			if !sched.Valid(reqs, locations) {
				return false
			}
			want := bruteForceMin(t, reqs, locations, cfg)
			return math.Abs(st.Energy-want) < 1e-6*(1+want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

// Property: the greedy pipeline is always valid and never beats the exact
// optimum.
func TestSolveGreedyProperty(t *testing.T) {
	t.Parallel()
	cfg := power.ToyConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs, locations := randomInstance(rng)
		sched, st, err := Solve(reqs, locations, cfg, BuildOptions{})
		if err != nil || !sched.Valid(reqs, locations) {
			return false
		}
		_, exact, err := SolveExact(reqs, locations, cfg)
		if err != nil {
			return false
		}
		return st.Energy >= exact.Energy-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildOptionsCaps(t *testing.T) {
	t.Parallel()
	reqs := offlineRequests()
	if _, err := Build(reqs, paperExample(), power.ToyConfig(), BuildOptions{MaxNodes: 1}); err == nil {
		t.Error("MaxNodes cap not enforced")
	}
	in, err := Build(reqs, paperExample(), power.ToyConfig(), BuildOptions{MaxSuccessors: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With one successor per (request, disk), each (i, disk) appears in at
	// most one node as predecessor.
	seen := map[[2]int]int{}
	for _, n := range in.Nodes {
		seen[[2]int{int(n.I), int(n.Disk)}]++
	}
	for k, c := range seen {
		if c > 1 {
			t.Errorf("predecessor (r%d,d%d) appears in %d nodes despite MaxSuccessors=1", k[0]+1, k[1]+1, c)
		}
	}
}

func TestBuildErrorsOnUnplacedBlock(t *testing.T) {
	t.Parallel()
	reqs := []core.Request{{ID: 0, Block: 99}}
	if _, err := Build(reqs, paperExample(), power.ToyConfig(), BuildOptions{}); err == nil {
		t.Error("Build accepted a request with no locations")
	}
}

func TestDeriveScheduleRejectsConflictingSelection(t *testing.T) {
	t.Parallel()
	in, err := Build(offlineRequests(), paperExample(), power.ToyConfig(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Find two nodes sharing a request on different disks; selecting both
	// must be rejected.
	for a := range in.Nodes {
		for b := range in.Nodes {
			na, nb := in.Nodes[a], in.Nodes[b]
			if a != b && na.Disk != nb.Disk &&
				(na.I == nb.I || na.I == nb.J || na.J == nb.I || na.J == nb.J) {
				if _, err := in.DeriveSchedule(offlineRequests(), paperExample(), []int{a, b}); err == nil {
					t.Fatal("DeriveSchedule accepted a conflicting selection")
				}
				return
			}
		}
	}
	t.Fatal("no conflicting node pair found in example")
}

func TestGadgetStructure(t *testing.T) {
	t.Parallel()
	// Theorem 3's construction on a triangle: 3 requests per edge, per-edge
	// groups separated beyond the replacement window, and the reduction's
	// MWIS optimum is exactly one full saving per edge.
	cfg := power.ToyConfig()
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	reqs, locations, err := Gadget(3, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 9 {
		t.Fatalf("requests = %d, want 9", len(reqs))
	}
	in, err := Build(reqs, locations, cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, w := graph.ExactMWIS(in.Graph)
	want := float64(len(edges)) * cfg.MaxRequestEnergy()
	if math.Abs(w-want) > 1e-9 {
		t.Errorf("gadget MWIS weight = %v, want %v (one saved pair per edge)", w, want)
	}
}

func TestGadgetValidation(t *testing.T) {
	t.Parallel()
	cfg := power.ToyConfig()
	if _, _, err := Gadget(0, nil, cfg); err == nil {
		t.Error("accepted zero vertices")
	}
	if _, _, err := Gadget(2, [][2]int{{0, 5}}, cfg); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if _, _, err := Gadget(2, [][2]int{{1, 1}}, cfg); err == nil {
		t.Error("accepted self-loop")
	}
}
