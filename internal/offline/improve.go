package offline

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/power"
)

// Improve refines a feasible offline schedule by local search: each pass
// visits every request and moves it to the replica location that most
// reduces total analytic energy, until a pass makes no progress or
// maxPasses is reached. Energy deltas are evaluated incrementally from the
// per-disk timelines (a move only disturbs the gaps adjacent to the moved
// request), so a pass costs O(N * replicationFactor * log N).
//
// The paper notes (Section 5.1) that "more sophisticated set cover and
// independent set algorithms" could push its greedy results further; this
// is that refinement for the MWIS pipeline, and it never worsens a
// schedule.
func Improve(reqs []core.Request, sched core.Schedule, cfg power.Config, locations func(core.BlockID) []core.DiskID, maxPasses int) (core.Schedule, int, error) {
	if len(sched) != len(reqs) {
		return nil, 0, fmt.Errorf("offline: schedule covers %d of %d requests", len(sched), len(reqs))
	}
	out := sched.Clone()
	tl := newTimelines(reqs, out, cfg)
	moves := 0
	for pass := 0; pass < maxPasses; pass++ {
		improvedThisPass := false
		for _, r := range reqs {
			cur := out[r.ID]
			locs := locations(r.Block)
			best := cur
			bestDelta := 0.0
			for _, d := range locs {
				if d == cur {
					continue
				}
				delta := tl.removalDelta(cur, r) + tl.insertionDelta(d, r)
				if delta < bestDelta-1e-9 {
					best, bestDelta = d, delta
				}
			}
			if best != cur {
				tl.remove(cur, r)
				tl.insert(best, r)
				out[r.ID] = best
				moves++
				improvedThisPass = true
			}
		}
		if !improvedThisPass {
			break
		}
	}
	return out, moves, nil
}

// timelines maintains per-disk request timelines sorted by (time, id) with
// incremental energy-delta queries. Disks index a slice directly (disk IDs
// are dense), avoiding per-query map lookups on the local-search hot path.
type timelines struct {
	cfg  power.Config
	tail float64
	byD  [][]core.Request
}

func newTimelines(reqs []core.Request, sched core.Schedule, cfg power.Config) *timelines {
	tl := &timelines{
		cfg:  cfg,
		tail: cfg.Breakeven().Seconds()*cfg.IdlePower + cfg.SpinDownEnergy,
	}
	numDisks := 0
	for _, d := range sched {
		if int(d)+1 > numDisks {
			numDisks = int(d) + 1
		}
	}
	tl.byD = make([][]core.Request, numDisks)
	counts := make([]int, numDisks)
	for _, r := range reqs {
		counts[sched[r.ID]]++
	}
	for d, c := range counts {
		if c > 0 {
			tl.byD[d] = make([]core.Request, 0, c)
		}
	}
	for _, r := range reqs {
		d := sched[r.ID]
		tl.byD[d] = append(tl.byD[d], r)
	}
	for d := range tl.byD {
		slices.SortFunc(tl.byD[d], cmpReq)
	}
	return tl
}

// disk returns disk d's timeline, growing the table when a local-search
// move targets a previously unused replica disk.
func (tl *timelines) disk(d core.DiskID) []core.Request {
	if int(d) >= len(tl.byD) {
		return nil
	}
	return tl.byD[d]
}

func lessReq(a, b core.Request) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

func cmpReq(a, b core.Request) int {
	if a.Arrival != b.Arrival {
		if a.Arrival < b.Arrival {
			return -1
		}
		return 1
	}
	return int(a.ID) - int(b.ID)
}

// pos locates r in disk d's timeline.
func (tl *timelines) pos(d core.DiskID, r core.Request) int {
	rs := tl.disk(d)
	i := sort.Search(len(rs), func(k int) bool { return !lessReq(rs[k], r) })
	if i >= len(rs) || rs[i].ID != r.ID {
		panic(fmt.Sprintf("offline: request %d not on disk %d", r.ID, d))
	}
	return i
}

func (tl *timelines) gap(a, b time.Duration) float64 { return GapCost(tl.cfg, b-a) }

// removalDelta returns the energy change from removing r from disk d.
func (tl *timelines) removalDelta(d core.DiskID, r core.Request) float64 {
	rs := tl.disk(d)
	i := tl.pos(d, r)
	switch {
	case len(rs) == 1:
		return -(tl.cfg.SpinUpEnergy + tl.tail)
	case i == 0:
		return -tl.gap(rs[0].Arrival, rs[1].Arrival)
	case i == len(rs)-1:
		return -tl.gap(rs[i-1].Arrival, rs[i].Arrival)
	default:
		return tl.gap(rs[i-1].Arrival, rs[i+1].Arrival) -
			tl.gap(rs[i-1].Arrival, rs[i].Arrival) -
			tl.gap(rs[i].Arrival, rs[i+1].Arrival)
	}
}

// insertionDelta returns the energy change from adding r to disk d.
func (tl *timelines) insertionDelta(d core.DiskID, r core.Request) float64 {
	rs := tl.disk(d)
	if len(rs) == 0 {
		return tl.cfg.SpinUpEnergy + tl.tail
	}
	i := sort.Search(len(rs), func(k int) bool { return !lessReq(rs[k], r) })
	switch {
	case i == 0:
		return tl.gap(r.Arrival, rs[0].Arrival)
	case i == len(rs):
		return tl.gap(rs[i-1].Arrival, r.Arrival)
	default:
		return tl.gap(rs[i-1].Arrival, r.Arrival) +
			tl.gap(r.Arrival, rs[i].Arrival) -
			tl.gap(rs[i-1].Arrival, rs[i].Arrival)
	}
}

func (tl *timelines) remove(d core.DiskID, r core.Request) {
	rs := tl.byD[d]
	i := tl.pos(d, r)
	tl.byD[d] = append(rs[:i], rs[i+1:]...)
}

func (tl *timelines) insert(d core.DiskID, r core.Request) {
	for int(d) >= len(tl.byD) {
		tl.byD = append(tl.byD, nil)
	}
	rs := tl.byD[d]
	i := sort.Search(len(rs), func(k int) bool { return !lessReq(rs[k], r) })
	rs = append(rs, core.Request{})
	copy(rs[i+1:], rs[i:])
	rs[i] = r
	tl.byD[d] = rs
}

// SolveRefined runs the greedy MWIS pipeline followed by local-search
// refinement, the configuration used for the full-trace MWIS experiments.
func SolveRefined(reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config, opts BuildOptions, passes int) (core.Schedule, Stats, error) {
	sched, _, err := Solve(reqs, locations, cfg, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	sched, _, err = Improve(reqs, sched, cfg, locations, passes)
	if err != nil {
		return nil, Stats{}, err
	}
	st, err := Evaluate(reqs, sched, cfg, locations)
	return sched, st, err
}
