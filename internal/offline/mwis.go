package offline

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/power"
)

// Node is one X(i,j,k) vertex of the MWIS reduction: scheduling requests
// r_I and r_J consecutively on disk Disk saves Weight joules.
type Node struct {
	I, J   core.RequestID
	Disk   core.DiskID
	Weight float64
}

// Instance is a constructed MWIS problem plus the node metadata needed to
// derive a schedule from an independent set.
type Instance struct {
	Graph *graph.Graph
	Nodes []Node
}

// BuildOptions bounds graph construction on large traces.
type BuildOptions struct {
	// MaxSuccessors caps, per (request, disk), how many candidate
	// successors inside the replacement window become nodes. In any
	// schedule the realized successor is overwhelmingly one of the next
	// few same-disk requests, so small caps lose almost nothing while
	// keeping the graph near-linear in the trace length. 0 means
	// unlimited (exact reduction).
	MaxSuccessors int
	// MaxNodes aborts construction when exceeded (0 = unlimited),
	// guarding against quadratic blowup on pathological traces.
	MaxNodes int
	// HybridExactLimit, when positive, solves connected components of the
	// conflict graph with at most this many vertices exactly (branch and
	// bound) and only the larger ones greedily. Bursty traces decompose
	// into many small components, so modest limits recover most of the
	// optimum at near-greedy cost.
	HybridExactLimit int
}

// Build constructs the MWIS reduction of Section 3.1.2 for a request
// stream: Step 1 adds a vertex for every non-zero X(i,j,k) (Eqs. 3-4),
// Step 2 adds an edge for every energy-constraint violation (same i) and
// schedule-constraint violation (shared request, different disk).
func Build(reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config, opts BuildOptions) (*Instance, error) {
	window := cfg.ReplacementWindow()

	// Requests that can be served by each disk, in time order.
	perDisk := make(map[core.DiskID][]core.Request)
	for _, r := range reqs {
		locs := locations(r.Block)
		if len(locs) == 0 {
			return nil, fmt.Errorf("offline: request %d block %d has no locations", r.ID, r.Block)
		}
		for _, d := range locs {
			perDisk[d] = append(perDisk[d], r)
		}
	}
	var nodes []Node
	for d, rs := range perDisk {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Arrival != rs[j].Arrival {
				return rs[i].Arrival < rs[j].Arrival
			}
			return rs[i].ID < rs[j].ID
		})
		for i := 0; i < len(rs); i++ {
			succ := 0
			for j := i + 1; j < len(rs); j++ {
				if rs[j].Arrival-rs[i].Arrival >= window {
					break
				}
				w := Saving(cfg, rs[i].Arrival, rs[j].Arrival)
				if w <= 0 {
					continue
				}
				nodes = append(nodes, Node{I: rs[i].ID, J: rs[j].ID, Disk: d, Weight: w})
				if opts.MaxNodes > 0 && len(nodes) > opts.MaxNodes {
					return nil, fmt.Errorf("offline: MWIS graph exceeds %d nodes", opts.MaxNodes)
				}
				succ++
				if opts.MaxSuccessors > 0 && succ >= opts.MaxSuccessors {
					break
				}
			}
		}
	}
	// Deterministic vertex order regardless of map iteration.
	sort.Slice(nodes, func(a, b int) bool {
		na, nb := nodes[a], nodes[b]
		if na.I != nb.I {
			return na.I < nb.I
		}
		if na.J != nb.J {
			return na.J < nb.J
		}
		return na.Disk < nb.Disk
	})

	g := graph.NewGraph(len(nodes))
	// Nodes mentioning each request, in either role.
	byRequest := make(map[core.RequestID][]int)
	for v, n := range nodes {
		g.SetWeight(v, n.Weight)
		byRequest[n.I] = append(byRequest[n.I], v)
		byRequest[n.J] = append(byRequest[n.J], v)
	}
	for _, vs := range byRequest {
		for a := 0; a < len(vs); a++ {
			for b := a + 1; b < len(vs); b++ {
				u, v := vs[a], vs[b]
				nu, nv := nodes[u], nodes[v]
				// Energy constraint: at most one node per predecessor i.
				// Schedule constraint: shared request forces same disk.
				if nu.I == nv.I || nu.Disk != nv.Disk {
					g.AddEdge(u, v)
				}
			}
		}
	}
	return &Instance{Graph: g, Nodes: nodes}, nil
}

// DeriveSchedule is Step 4 of the algorithm: requests appearing in selected
// nodes go to those nodes' disks; requests with no selected node cannot
// save energy anywhere and are placed on a replica already in use when
// possible, else their original location.
func (in *Instance) DeriveSchedule(reqs []core.Request, locations func(core.BlockID) []core.DiskID, selected []int) (core.Schedule, error) {
	sched := make(core.Schedule, len(reqs))
	for i := range sched {
		sched[i] = core.InvalidDisk
	}
	assign := func(r core.RequestID, d core.DiskID) error {
		if sched[r] != core.InvalidDisk && sched[r] != d {
			return fmt.Errorf("offline: request %d assigned to disks %d and %d (selection not independent)", r, sched[r], d)
		}
		sched[r] = d
		return nil
	}
	for _, v := range selected {
		if v < 0 || v >= len(in.Nodes) {
			return nil, fmt.Errorf("offline: selected vertex %d out of range", v)
		}
		n := in.Nodes[v]
		if err := assign(n.I, n.Disk); err != nil {
			return nil, err
		}
		if err := assign(n.J, n.Disk); err != nil {
			return nil, err
		}
	}
	used := make(map[core.DiskID]struct{})
	for _, d := range sched {
		if d != core.InvalidDisk {
			used[d] = struct{}{}
		}
	}
	for _, r := range reqs {
		if sched[r.ID] != core.InvalidDisk {
			continue
		}
		locs := locations(r.Block)
		if len(locs) == 0 {
			return nil, fmt.Errorf("offline: request %d block %d has no locations", r.ID, r.Block)
		}
		choice := locs[0]
		for _, d := range locs {
			if _, ok := used[d]; ok {
				choice = d
				break
			}
		}
		sched[r.ID] = choice
		used[choice] = struct{}{}
	}
	return sched, nil
}

// Solve runs the full offline pipeline with the GWMIN greedy the paper uses
// (Section 4.3): build the reduction, solve MWIS, derive the schedule.
func Solve(reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config, opts BuildOptions) (core.Schedule, Stats, error) {
	in, err := Build(reqs, locations, cfg, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var selected []int
	if opts.HybridExactLimit > 0 {
		selected, _ = graph.HybridMWIS(in.Graph, opts.HybridExactLimit)
	} else {
		selected, _ = graph.GWMIN(in.Graph)
	}
	sched, err := in.DeriveSchedule(reqs, locations, selected)
	if err != nil {
		return nil, Stats{}, err
	}
	st, err := Evaluate(reqs, sched, cfg, locations)
	return sched, st, err
}

// SolveExact is Solve with the exact branch-and-bound MWIS solver; only
// viable on small instances (tests, worked examples).
func SolveExact(reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config) (core.Schedule, Stats, error) {
	in, err := Build(reqs, locations, cfg, BuildOptions{})
	if err != nil {
		return nil, Stats{}, err
	}
	selected, _ := graph.ExactMWIS(in.Graph)
	sched, err := in.DeriveSchedule(reqs, locations, selected)
	if err != nil {
		return nil, Stats{}, err
	}
	st, err := Evaluate(reqs, sched, cfg, locations)
	return sched, st, err
}

// Gadget builds the Theorem 3 NP-completeness reduction from an arbitrary
// graph G: disks are G's vertices; every edge e=(u,v) contributes a request
// r_e replicated on disks u and v plus dummy requests r_eu (only on u) and
// r_ev (only on v) at the same arrival time, with consecutive edge groups
// separated by more than the replacement window.
func Gadget(n int, edges [][2]int, cfg power.Config) ([]core.Request, func(core.BlockID) []core.DiskID, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("offline: gadget needs vertices, got %d", n)
	}
	sep := cfg.ReplacementWindow() + time.Second
	var reqs []core.Request
	locs := make([][]core.DiskID, 0, 3*len(edges))
	addReq := func(at time.Duration, disks ...core.DiskID) {
		b := core.BlockID(len(locs))
		locs = append(locs, disks)
		reqs = append(reqs, core.Request{ID: core.RequestID(len(reqs)), Block: b, Arrival: at})
	}
	for idx, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= n || v >= n || u == v {
			return nil, nil, fmt.Errorf("offline: gadget edge %d = (%d,%d) invalid for %d vertices", idx, u, v, n)
		}
		at := time.Duration(idx+1) * sep
		addReq(at, core.DiskID(u), core.DiskID(v)) // r_e
		addReq(at, core.DiskID(u))                 // r_eu
		addReq(at, core.DiskID(v))                 // r_ev
	}
	lookup := func(b core.BlockID) []core.DiskID {
		if b < 0 || int(b) >= len(locs) {
			return nil
		}
		return locs[b]
	}
	return reqs, lookup, nil
}
