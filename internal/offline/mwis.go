package offline

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/power"
)

// Node is one X(i,j,k) vertex of the MWIS reduction: scheduling requests
// r_I and r_J consecutively on disk Disk saves Weight joules.
type Node struct {
	I, J   core.RequestID
	Disk   core.DiskID
	Weight float64
}

// Instance is a constructed MWIS problem plus the node metadata needed to
// derive a schedule from an independent set.
type Instance struct {
	Graph *graph.Graph
	Nodes []Node
}

// BuildOptions bounds graph construction on large traces.
type BuildOptions struct {
	// MaxSuccessors caps, per (request, disk), how many candidate
	// successors inside the replacement window become nodes. In any
	// schedule the realized successor is overwhelmingly one of the next
	// few same-disk requests, so small caps lose almost nothing while
	// keeping the graph near-linear in the trace length. 0 means
	// unlimited (exact reduction).
	MaxSuccessors int
	// MaxNodes aborts construction when exceeded (0 = unlimited),
	// guarding against quadratic blowup on pathological traces.
	MaxNodes int
	// HybridExactLimit, when positive, solves connected components of the
	// conflict graph with at most this many vertices exactly (branch and
	// bound) and only the larger ones greedily. Bursty traces decompose
	// into many small components, so modest limits recover most of the
	// optimum at near-greedy cost.
	HybridExactLimit int
	// Workers bounds the goroutines used for graph construction (the
	// per-disk successor scans are independent) and for the
	// component-parallel MWIS solve. 0 or 1 means serial. Results are
	// bit-identical for every worker count.
	Workers int
}

// workerCount normalizes the Workers knob.
func (o BuildOptions) workerCount() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// Build constructs the MWIS reduction of Section 3.1.2 for a request
// stream: Step 1 adds a vertex for every non-zero X(i,j,k) (Eqs. 3-4),
// Step 2 adds an edge for every energy-constraint violation (same i) and
// schedule-constraint violation (shared request, different disk).
//
// Construction is allocation-lean and sharded: replica membership is
// gathered into one sorted (disk, request) run instead of a map of slices,
// each disk's successor scan runs independently (concurrently when
// opts.Workers > 1) into a pre-counted node slice, and the conflict-edge
// expansion walks sorted (request, vertex) index ranges rather than a
// map keyed by request. The produced instance is bit-identical to the
// serial construction for every worker count.
func Build(reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config, opts BuildOptions) (*Instance, error) {
	window := cfg.ReplacementWindow()

	// Step 0: one sorted run of (disk, request index) pairs replaces the
	// per-disk map of request copies. Packing both into a uint64 keyed by
	// disk groups the run by disk after a single sort. Capacity assumes the
	// common 3-way replication; higher factors regrow geometrically.
	pairs := make([]uint64, 0, 3*len(reqs))
	for i, r := range reqs {
		locs := locations(r.Block)
		if len(locs) == 0 {
			return nil, fmt.Errorf("offline: request %d block %d has no locations", r.ID, r.Block)
		}
		for _, d := range locs {
			if d < 0 {
				return nil, fmt.Errorf("offline: request %d block %d on negative disk %d", r.ID, r.Block, d)
			}
			pairs = append(pairs, uint64(d)<<32|uint64(uint32(i)))
		}
	}
	graph.RadixSortUint64(pairs)

	// Disk shards: contiguous ranges of the sorted run, counted first so the
	// shard slice is allocated exactly once.
	type shard struct{ lo, hi int }
	nshards := 0
	for i := range pairs {
		if i == 0 || pairs[i]>>32 != pairs[i-1]>>32 {
			nshards++
		}
	}
	shards := make([]shard, 0, nshards)
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && pairs[hi]>>32 == pairs[lo]>>32 {
			hi++
		}
		shards = append(shards, shard{lo, hi})
		lo = hi
	}

	// Step 1 per disk: sort the disk's requests by (arrival, id), then scan
	// successors inside the replacement window. A cheap counting pass
	// (window arithmetic only) pre-sizes the node slice exactly once.
	nodesByShard := make([][]Node, len(shards))
	var built atomic.Int64 // nodes completed by finished shards
	var exceeded atomic.Bool
	buildShard := func(si int) {
		sh := shards[si]
		d := core.DiskID(pairs[sh.lo] >> 32)
		run := pairs[sh.lo:sh.hi]
		// Order the disk's requests by (arrival, id). The run arrives in
		// request-index order, which for arrival-sorted traces is already
		// correct, so this sort is near-free in the common case.
		slices.SortFunc(run, func(a, b uint64) int {
			ra, rb := reqs[uint32(a)], reqs[uint32(b)]
			if ra.Arrival != rb.Arrival {
				if ra.Arrival < rb.Arrival {
					return -1
				}
				return 1
			}
			switch {
			case ra.ID < rb.ID:
				return -1
			case ra.ID > rb.ID:
				return 1
			}
			return 0
		})
		// Counting pass: pairs inside the window, capped per request at
		// MaxSuccessors — an upper bound on accepted nodes.
		upper := 0
		for i := 0; i < len(run); i++ {
			ti := reqs[uint32(run[i])].Arrival
			c := 0
			for j := i + 1; j < len(run); j++ {
				if reqs[uint32(run[j])].Arrival-ti >= window {
					break
				}
				c++
				if opts.MaxSuccessors > 0 && c >= opts.MaxSuccessors {
					break
				}
			}
			upper += c
		}
		nodes := make([]Node, 0, upper)
		for i := 0; i < len(run); i++ {
			ri := reqs[uint32(run[i])]
			succ := 0
			for j := i + 1; j < len(run); j++ {
				rj := reqs[uint32(run[j])]
				if rj.Arrival-ri.Arrival >= window {
					break
				}
				w := Saving(cfg, ri.Arrival, rj.Arrival)
				if w <= 0 {
					continue
				}
				nodes = append(nodes, Node{I: ri.ID, J: rj.ID, Disk: d, Weight: w})
				if opts.MaxNodes > 0 && built.Load()+int64(len(nodes)) > int64(opts.MaxNodes) {
					exceeded.Store(true)
					return
				}
				succ++
				if opts.MaxSuccessors > 0 && succ >= opts.MaxSuccessors {
					break
				}
			}
		}
		built.Add(int64(len(nodes)))
		nodesByShard[si] = nodes
	}
	if workers := min(opts.workerCount(), len(shards)); workers <= 1 {
		for si := range shards {
			buildShard(si)
			if exceeded.Load() {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !exceeded.Load() {
					si := int(next.Add(1)) - 1
					if si >= len(shards) {
						return
					}
					buildShard(si)
				}
			}()
		}
		wg.Wait()
	}
	if exceeded.Load() {
		return nil, fmt.Errorf("offline: MWIS graph exceeds %d nodes", opts.MaxNodes)
	}
	total := 0
	for _, ns := range nodesByShard {
		total += len(ns)
	}
	if opts.MaxNodes > 0 && total > opts.MaxNodes {
		return nil, fmt.Errorf("offline: MWIS graph exceeds %d nodes", opts.MaxNodes)
	}
	nodes := make([]Node, 0, total)
	for _, ns := range nodesByShard {
		nodes = append(nodes, ns...)
	}
	// Deterministic vertex order regardless of shard or worker schedule:
	// (I, J, Disk) is unique per node, so this order is total.
	slices.SortFunc(nodes, func(na, nb Node) int {
		if na.I != nb.I {
			return int(na.I) - int(nb.I)
		}
		if na.J != nb.J {
			return int(na.J) - int(nb.J)
		}
		return int(na.Disk) - int(nb.Disk)
	})

	// Step 2: conflict edges. Every vertex is indexed under both requests
	// it mentions via one sorted (request, vertex) run; vertices sharing a
	// request form a contiguous range, replacing the map of slices.
	g := graph.NewGraph(len(nodes))
	mentions := make([]uint64, 0, 2*len(nodes))
	for v, n := range nodes {
		g.SetWeight(v, n.Weight)
		mentions = append(mentions,
			uint64(n.I)<<32|uint64(uint32(v)),
			uint64(n.J)<<32|uint64(uint32(v)))
	}
	graph.RadixSortUint64(mentions)
	// forEachEdge yields every conflict edge exactly once: within the
	// sorted range of one request, every vertex pair violating the energy
	// constraint (same predecessor i) or the schedule constraint (shared
	// request, different disk) is an edge. A pair sharing both requests
	// (same (i,j) on two disks) appears in two ranges; it is emitted only
	// from the predecessor's range so the edge buffer stays duplicate-free.
	forEachEdge := func(yield func(u, v int)) {
		for lo := 0; lo < len(mentions); {
			r := core.RequestID(mentions[lo] >> 32)
			hi := lo + 1
			for hi < len(mentions) && core.RequestID(mentions[hi]>>32) == r {
				hi++
			}
			for a := lo; a < hi; a++ {
				u := int(uint32(mentions[a]))
				nu := nodes[u]
				for b := a + 1; b < hi; b++ {
					v := int(uint32(mentions[b]))
					nv := nodes[v]
					if nu.I == nv.I {
						if nu.J == nv.J && r != nu.I {
							continue // counted in the predecessor's range
						}
						yield(u, v)
					} else if nu.Disk != nv.Disk {
						yield(u, v)
					}
				}
			}
			lo = hi
		}
	}
	// One expansion pass; the edge buffer starts at a mentions-proportional
	// estimate and the rare geometric regrowth is far cheaper than walking
	// the ranges twice for an exact count.
	g.Grow(2 * len(mentions))
	forEachEdge(g.AddEdge)
	g.Finalize()
	return &Instance{Graph: g, Nodes: nodes}, nil
}

// DeriveSchedule is Step 4 of the algorithm: requests appearing in selected
// nodes go to those nodes' disks; requests with no selected node cannot
// save energy anywhere and are placed on a replica already in use when
// possible, else their original location.
func (in *Instance) DeriveSchedule(reqs []core.Request, locations func(core.BlockID) []core.DiskID, selected []int) (core.Schedule, error) {
	sched := make(core.Schedule, len(reqs))
	for i := range sched {
		sched[i] = core.InvalidDisk
	}
	assign := func(r core.RequestID, d core.DiskID) error {
		if sched[r] != core.InvalidDisk && sched[r] != d {
			return fmt.Errorf("offline: request %d assigned to disks %d and %d (selection not independent)", r, sched[r], d)
		}
		sched[r] = d
		return nil
	}
	for _, v := range selected {
		if v < 0 || v >= len(in.Nodes) {
			return nil, fmt.Errorf("offline: selected vertex %d out of range", v)
		}
		n := in.Nodes[v]
		if err := assign(n.I, n.Disk); err != nil {
			return nil, err
		}
		if err := assign(n.J, n.Disk); err != nil {
			return nil, err
		}
	}
	// Flat membership set over disk IDs: one allocation instead of a map,
	// grown on the rare disk ID past the initial span.
	used := make([]bool, 256)
	mark := func(d core.DiskID) {
		if int(d) >= len(used) {
			grown := make([]bool, max(2*len(used), int(d)+1))
			copy(grown, used)
			used = grown
		}
		used[d] = true
	}
	for _, d := range sched {
		if d != core.InvalidDisk {
			mark(d)
		}
	}
	for _, r := range reqs {
		if sched[r.ID] != core.InvalidDisk {
			continue
		}
		locs := locations(r.Block)
		if len(locs) == 0 {
			return nil, fmt.Errorf("offline: request %d block %d has no locations", r.ID, r.Block)
		}
		choice := locs[0]
		for _, d := range locs {
			if int(d) < len(used) && used[d] {
				choice = d
				break
			}
		}
		sched[r.ID] = choice
		mark(choice)
	}
	return sched, nil
}

// Solve runs the full offline pipeline with the GWMIN greedy the paper uses
// (Section 4.3): build the reduction, solve MWIS, derive the schedule.
// With opts.Workers > 1 both graph construction and the component-parallel
// solve run concurrently; the schedule and stats are bit-identical for
// every worker count.
func Solve(reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config, opts BuildOptions) (core.Schedule, Stats, error) {
	in, err := Build(reqs, locations, cfg, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var selected []int
	if opts.HybridExactLimit > 0 {
		selected, _ = graph.ParallelHybridMWIS(in.Graph, opts.HybridExactLimit, opts.workerCount())
	} else {
		selected, _ = graph.ParallelGWMIN(in.Graph, opts.workerCount())
	}
	sched, err := in.DeriveSchedule(reqs, locations, selected)
	if err != nil {
		return nil, Stats{}, err
	}
	st, err := Evaluate(reqs, sched, cfg, locations)
	return sched, st, err
}

// SolveExact is Solve with the exact branch-and-bound MWIS solver; only
// viable on small instances (tests, worked examples).
func SolveExact(reqs []core.Request, locations func(core.BlockID) []core.DiskID, cfg power.Config) (core.Schedule, Stats, error) {
	in, err := Build(reqs, locations, cfg, BuildOptions{})
	if err != nil {
		return nil, Stats{}, err
	}
	selected, _ := graph.ExactMWIS(in.Graph)
	sched, err := in.DeriveSchedule(reqs, locations, selected)
	if err != nil {
		return nil, Stats{}, err
	}
	st, err := Evaluate(reqs, sched, cfg, locations)
	return sched, st, err
}

// Gadget builds the Theorem 3 NP-completeness reduction from an arbitrary
// graph G: disks are G's vertices; every edge e=(u,v) contributes a request
// r_e replicated on disks u and v plus dummy requests r_eu (only on u) and
// r_ev (only on v) at the same arrival time, with consecutive edge groups
// separated by more than the replacement window.
func Gadget(n int, edges [][2]int, cfg power.Config) ([]core.Request, func(core.BlockID) []core.DiskID, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("offline: gadget needs vertices, got %d", n)
	}
	sep := cfg.ReplacementWindow() + time.Second
	var reqs []core.Request
	locs := make([][]core.DiskID, 0, 3*len(edges))
	addReq := func(at time.Duration, disks ...core.DiskID) {
		b := core.BlockID(len(locs))
		locs = append(locs, disks)
		reqs = append(reqs, core.Request{ID: core.RequestID(len(reqs)), Block: b, Arrival: at})
	}
	for idx, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= n || v >= n || u == v {
			return nil, nil, fmt.Errorf("offline: gadget edge %d = (%d,%d) invalid for %d vertices", idx, u, v, n)
		}
		at := time.Duration(idx+1) * sep
		addReq(at, core.DiskID(u), core.DiskID(v)) // r_e
		addReq(at, core.DiskID(u))                 // r_eu
		addReq(at, core.DiskID(v))                 // r_ev
	}
	lookup := func(b core.BlockID) []core.DiskID {
		if b < 0 || int(b) >= len(locs) {
			return nil
		}
		return locs[b]
	}
	return reqs, lookup, nil
}
