package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/power"
)

func figure2Locations() Locator {
	locs := [][]core.DiskID{
		{0}, {0, 1}, {0, 1, 3}, {2, 3}, {0, 3}, {2, 3},
	}
	return func(b core.BlockID) []core.DiskID {
		if b < 0 || int(b) >= len(locs) {
			return nil
		}
		return locs[b]
	}
}

func TestMWISBatchSolvesFigure2(t *testing.T) {
	t.Parallel()
	// Theorem 2: the batch instance's MWIS solution uses the minimum
	// number of disks — Figure 2's schedule B needs only two.
	m := MWISBatch{Locations: figure2Locations(), Power: power.ToyConfig(), HybridExactLimit: 64}
	reqs := make([]core.Request, 6)
	for i := range reqs {
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i)}
	}
	out := m.ScheduleBatch(reqs, &fakeView{})
	used := map[core.DiskID]struct{}{}
	for i, d := range out {
		valid := false
		for _, l := range figure2Locations()(core.BlockID(i)) {
			if l == d {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("request %d off-replica (%v)", i, d)
		}
		used[d] = struct{}{}
	}
	if len(used) != 2 {
		t.Errorf("MWIS batch used %d disks, want 2 (Theorem 2 minimum cover)", len(used))
	}
	if m.Name() != "energy-aware MWIS (batch)" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestMWISBatchHandlesUnplacedAndEmpty(t *testing.T) {
	t.Parallel()
	m := MWISBatch{
		Locations: func(b core.BlockID) []core.DiskID {
			if b == 0 {
				return nil
			}
			return []core.DiskID{1}
		},
		Power: power.ToyConfig(),
	}
	out := m.ScheduleBatch([]core.Request{{ID: 0, Block: 0}, {ID: 1, Block: 1}}, &fakeView{})
	if out[0] != core.InvalidDisk || out[1] != 1 {
		t.Errorf("out = %v", out)
	}
	if got := m.ScheduleBatch(nil, &fakeView{}); len(got) != 0 {
		t.Errorf("empty batch -> %v", got)
	}
	all := m.ScheduleBatch([]core.Request{{ID: 0, Block: 0}}, &fakeView{})
	if all[0] != core.InvalidDisk {
		t.Errorf("unplaced-only batch -> %v", all)
	}
}

// Property: MWISBatch always produces valid assignments, and with the
// exact solver it never uses more disks than the greedy WSC cover on a
// fresh (all-standby) system.
func TestMWISBatchVsWSCDiskCountProperty(t *testing.T) {
	t.Parallel()
	pcfg := power.DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numDisks := 2 + rng.Intn(4)
		numBlocks := 1 + rng.Intn(6)
		locs := make([][]core.DiskID, numBlocks)
		for b := range locs {
			n := 1 + rng.Intn(numDisks)
			perm := rng.Perm(numDisks)
			for _, d := range perm[:n] {
				locs[b] = append(locs[b], core.DiskID(d))
			}
		}
		loc := func(b core.BlockID) []core.DiskID { return locs[b] }
		reqs := make([]core.Request, numBlocks)
		for i := range reqs {
			reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i)}
		}
		v := &fakeView{} // all standby: uniform Eq. 5 weights
		countDisks := func(out []core.DiskID) int {
			used := map[core.DiskID]struct{}{}
			for _, d := range out {
				used[d] = struct{}{}
			}
			return len(used)
		}
		contains := func(ds []core.DiskID, d core.DiskID) bool {
			for _, x := range ds {
				if x == d {
					return true
				}
			}
			return false
		}
		mwisOut := MWISBatch{Locations: loc, Power: pcfg, HybridExactLimit: 64}.ScheduleBatch(reqs, v)
		wscOut := WSC{Locations: loc, Cost: CostConfig{Alpha: 1, Beta: 1, Power: pcfg}}.ScheduleBatch(reqs, v)
		for i := range reqs {
			if !contains(locs[i], mwisOut[i]) || !contains(locs[i], wscOut[i]) {
				return false
			}
		}
		return countDisks(mwisOut) <= countDisks(wscOut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
