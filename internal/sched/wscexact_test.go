package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/power"
)

func TestWSCExactMatchesGreedyOnEasyInstance(t *testing.T) {
	t.Parallel()
	w := WSCExact{Locations: twoLocs, Cost: DefaultCost(power.DefaultConfig())}
	v := &fakeView{states: map[core.DiskID]core.DiskState{1: core.StateActive}}
	reqs := []core.Request{{ID: 0}, {ID: 1}}
	got := w.ScheduleBatch(reqs, v)
	for i, d := range got {
		if d != 1 {
			t.Errorf("request %d -> %v, want free disk 1", i, d)
		}
	}
	if w.Name() != "energy-aware WSC (exact)" {
		t.Errorf("Name = %q", w.Name())
	}
}

func TestWSCExactBeatsGreedyOnTrapInstance(t *testing.T) {
	t.Parallel()
	// A classic greedy-cover trap expressed as disks: disk 0 covers blocks
	// {0,1,2,3,4} cheaply per element, but the optimal cover is disks 1+2.
	// All disks standby, so Eq. 5 weights are equal; force asymmetry via
	// load with alpha=0 (cost = load).
	locs := [][]core.DiskID{
		{0, 1}, {0, 1}, {0, 1}, {0, 2}, {0, 2}, {1, 2},
	}
	loc := func(b core.BlockID) []core.DiskID { return locs[b] }
	cost := CostConfig{Alpha: 0, Beta: 1, Power: power.DefaultConfig()}
	v := &fakeView{loads: map[core.DiskID]int{0: 31, 1: 20, 2: 20}}
	reqs := make([]core.Request, 6)
	for i := range reqs {
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i)}
	}
	greedyOut := (WSC{Locations: loc, Cost: cost}).ScheduleBatch(reqs, v)
	exactOut := (WSCExact{Locations: loc, Cost: cost}).ScheduleBatch(reqs, v)

	weightOf := func(out []core.DiskID) float64 {
		used := map[core.DiskID]struct{}{}
		for _, d := range out {
			used[d] = struct{}{}
		}
		total := 0.0
		for d := range used {
			total += cost.Cost(v, d)
		}
		return total
	}
	// Greedy picks disk 0 first (31/5 = 6.2 per element beats 20/3 ≈ 6.7),
	// then needs disk 1 or 2 for block 5: total ≥ 51. Exact uses 1+2 = 40.
	if weightOf(exactOut) > weightOf(greedyOut) {
		t.Errorf("exact cover weight %.0f above greedy %.0f", weightOf(exactOut), weightOf(greedyOut))
	}
	if weightOf(exactOut) != 40 {
		t.Errorf("exact cover weight = %.0f, want 40 (disks 1+2)", weightOf(exactOut))
	}
}

func TestWSCExactFallsBackUnderExpansionCap(t *testing.T) {
	t.Parallel()
	// With a 1-expansion cap the exact search gives up; results must still
	// be a valid assignment (greedy fallback).
	rng := rand.New(rand.NewSource(2))
	locs := make([][]core.DiskID, 30)
	for b := range locs {
		perm := rng.Perm(8)
		locs[b] = []core.DiskID{core.DiskID(perm[0]), core.DiskID(perm[1]), core.DiskID(perm[2])}
	}
	loc := func(b core.BlockID) []core.DiskID { return locs[b] }
	w := WSCExact{Locations: loc, Cost: DefaultCost(power.DefaultConfig()), MaxExpansions: 1}
	reqs := make([]core.Request, 30)
	for i := range reqs {
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i)}
	}
	out := w.ScheduleBatch(reqs, &fakeView{})
	for i, d := range out {
		found := false
		for _, l := range locs[i] {
			if l == d {
				found = true
			}
		}
		if !found {
			t.Fatalf("request %d off-replica (%v)", i, d)
		}
	}
}

// Property: exact and greedy both produce valid assignments and the exact
// cover's chosen-disk weight never exceeds the greedy's.
func TestWSCExactNeverWorseProperty(t *testing.T) {
	t.Parallel()
	cost := CostConfig{Alpha: 0, Beta: 1, Power: power.DefaultConfig()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numDisks := 3 + rng.Intn(4)
		numBlocks := 2 + rng.Intn(6)
		locs := make([][]core.DiskID, numBlocks)
		for b := range locs {
			n := 1 + rng.Intn(numDisks)
			perm := rng.Perm(numDisks)
			for _, d := range perm[:n] {
				locs[b] = append(locs[b], core.DiskID(d))
			}
		}
		loc := func(b core.BlockID) []core.DiskID { return locs[b] }
		v := &fakeView{loads: map[core.DiskID]int{}}
		for d := 0; d < numDisks; d++ {
			v.loads[core.DiskID(d)] = rng.Intn(20) + 1
		}
		reqs := make([]core.Request, numBlocks)
		for i := range reqs {
			reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i)}
		}
		weightOf := func(out []core.DiskID) float64 {
			used := map[core.DiskID]struct{}{}
			for _, d := range out {
				used[d] = struct{}{}
			}
			total := 0.0
			for d := range used {
				total += cost.Cost(v, d)
			}
			return total
		}
		g := (WSC{Locations: loc, Cost: cost}).ScheduleBatch(reqs, v)
		e := (WSCExact{Locations: loc, Cost: cost}).ScheduleBatch(reqs, v)
		contains := func(ds []core.DiskID, d core.DiskID) bool {
			for _, x := range ds {
				if x == d {
					return true
				}
			}
			return false
		}
		for i := range reqs {
			if !contains(locs[i], g[i]) || !contains(locs[i], e[i]) {
				return false
			}
		}
		return weightOf(e) <= weightOf(g)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
