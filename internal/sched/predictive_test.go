package sched

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/power"
)

func newPredictive(t *testing.T, gamma float64) *Predictive {
	t.Helper()
	p, err := NewPredictive(twoLocs, DefaultCost(power.DefaultConfig()), gamma, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPredictiveValidation(t *testing.T) {
	t.Parallel()
	cost := DefaultCost(power.DefaultConfig())
	if _, err := NewPredictive(nil, cost, 0.5, time.Second); err == nil {
		t.Error("accepted nil locator")
	}
	if _, err := NewPredictive(twoLocs, cost, 1, time.Second); err == nil {
		t.Error("accepted gamma = 1")
	}
	if _, err := NewPredictive(twoLocs, cost, -0.1, time.Second); err == nil {
		t.Error("accepted negative gamma")
	}
	if _, err := NewPredictive(twoLocs, cost, 0.5, 0); err == nil {
		t.Error("accepted zero half-life")
	}
	bad := cost
	bad.Alpha = 2
	if _, err := NewPredictive(twoLocs, bad, 0.5, time.Second); err == nil {
		t.Error("accepted invalid cost config")
	}
}

func TestPredictiveZeroGammaMatchesHeuristic(t *testing.T) {
	t.Parallel()
	cost := DefaultCost(power.DefaultConfig())
	p := newPredictive(t, 0)
	h := Heuristic{Locations: twoLocs, Cost: cost}
	v := &fakeView{
		now: time.Minute,
		states: map[core.DiskID]core.DiskState{
			0: core.StateStandby,
			1: core.StateIdle,
		},
		lasts: map[core.DiskID]time.Duration{1: 55 * time.Second},
	}
	for i := 0; i < 10; i++ {
		req := core.Request{ID: core.RequestID(i)}
		if got, want := p.Schedule(req, v), h.Schedule(req, v); got != want {
			t.Fatalf("gamma=0 predictive picked %v, heuristic %v", got, want)
		}
	}
}

func TestPredictiveFavorsFrequentlyUsedDisk(t *testing.T) {
	t.Parallel()
	// Both disks standby (equal base cost). Seed history on disk 1, then
	// check the discount steers the next request there.
	p := newPredictive(t, 0.8)
	v := &fakeView{now: time.Second, states: map[core.DiskID]core.DiskState{}}
	// Manually seed: schedule several requests while only disk 1 is
	// spinning so its counter grows.
	warm := &fakeView{now: time.Second, states: map[core.DiskID]core.DiskState{1: core.StateIdle}}
	for i := 0; i < 5; i++ {
		if d := p.Schedule(core.Request{ID: core.RequestID(i)}, warm); d != 1 {
			t.Fatalf("warmup pick = %v", d)
		}
	}
	// Now both asleep: identical Eq. 5 cost, but disk 1's history wins.
	v.now = 2 * time.Second
	if d := p.Schedule(core.Request{ID: 99}, v); d != 1 {
		t.Errorf("predictive picked %v, want history-favored disk 1", d)
	}
}

func TestPredictiveHistoryDecays(t *testing.T) {
	t.Parallel()
	p := newPredictive(t, 0.8)
	warm := &fakeView{now: time.Second, states: map[core.DiskID]core.DiskState{1: core.StateIdle}}
	for i := 0; i < 3; i++ {
		p.Schedule(core.Request{ID: core.RequestID(i)}, warm)
	}
	r0 := p.decayedRate(1, time.Second)
	rLater := p.decayedRate(1, time.Second+30*time.Second) // one half-life
	if math.Abs(rLater-r0/2) > 1e-9 {
		t.Errorf("rate after one half-life = %v, want %v", rLater, r0/2)
	}
	if p.decayedRate(0, time.Minute) != 0 {
		t.Error("untouched disk has nonzero rate")
	}
}

func TestPredictiveUnplacedBlock(t *testing.T) {
	t.Parallel()
	p, err := NewPredictive(func(core.BlockID) []core.DiskID { return nil },
		DefaultCost(power.DefaultConfig()), 0.5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Schedule(core.Request{}, &fakeView{}); d != core.InvalidDisk {
		t.Errorf("got %v, want InvalidDisk", d)
	}
}

func TestPredictiveName(t *testing.T) {
	t.Parallel()
	if got := newPredictive(t, 0.5).Name(); got != "energy-aware predictive" {
		t.Errorf("Name = %q", got)
	}
}
