// Package sched implements the paper's five scheduling algorithms
// (Section 4.3): the energy-oblivious Random and Static baselines, the
// cost-function online Heuristic (Section 3.3), the weighted-set-cover
// batch scheduler (Section 3.2), and the precomputed offline MWIS schedule
// (Section 3.1, built by internal/offline).
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/power"
)

// Locator resolves a block to its replica locations (original first).
type Locator func(core.BlockID) []core.DiskID

// View is the scheduler's read-only window onto the running system.
type View interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// DiskState returns the disk's power state.
	DiskState(core.DiskID) core.DiskState
	// Load returns the number of requests queued or in service (Eq. 7).
	Load(core.DiskID) int
	// LastRequestTime returns T_last; ok is false before the first request.
	LastRequestTime(core.DiskID) (time.Duration, bool)
}

// Online schedules each request the moment it arrives.
type Online interface {
	Name() string
	// Schedule returns the disk to serve the request; it must be one of
	// the block's replica locations.
	Schedule(req core.Request, v View) core.DiskID
}

// Batch schedules a queued batch of requests at each scheduling interval.
type Batch interface {
	Name() string
	// ScheduleBatch returns one disk per request, parallel to reqs.
	ScheduleBatch(reqs []core.Request, v View) []core.DiskID
}

// CostConfig parameterizes the composite cost function of Eq. 6:
// C(d) = E(d)*Alpha/Beta + P(d)*(1-Alpha), with E(d) from Eq. 5.
type CostConfig struct {
	Alpha float64 // energy/performance mix: 1 = energy only, 0 = load only
	Beta  float64 // unit scale between joules and queued requests
	Power power.Config
}

// DefaultCost returns the configuration used throughout the evaluation:
// the paper's alpha=0.2 (Appendix A.2) with beta=10. Beta only fixes the
// unit scale between E(d) and P(d); the paper's beta=100 assumed its own
// energy unit, and with E(d) in joules under our power model the same
// energy/response balance point (Figure 11's knee) sits at beta=10 — see
// EXPERIMENTS.md for the sweep.
func DefaultCost(p power.Config) CostConfig {
	return CostConfig{Alpha: 0.2, Beta: 10, Power: p}
}

// Validate checks the cost parameters.
func (c CostConfig) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("sched: alpha %v outside [0,1]", c.Alpha)
	}
	if c.Beta <= 0 || math.IsNaN(c.Beta) {
		return fmt.Errorf("sched: beta %v must be positive", c.Beta)
	}
	return c.Power.Validate()
}

// EnergyCost computes E(d_k) of Eq. 5: the additional energy incurred by
// routing a request to the disk given its current state.
func (c CostConfig) EnergyCost(v View, d core.DiskID) float64 {
	switch s := v.DiskState(d); s {
	case core.StateActive, core.StateSpinUp:
		return 0
	case core.StateStandby, core.StateSpinDown:
		return c.Power.UpDownEnergy() + c.Power.Breakeven().Seconds()*c.Power.IdlePower
	case core.StateIdle:
		last, ok := v.LastRequestTime(d)
		if !ok {
			last = 0
		}
		return (v.Now() - last).Seconds() * c.Power.IdlePower
	default:
		panic(fmt.Sprintf("sched: invalid disk state %v", s))
	}
}

// CostOf computes the composite C(d_k) of Eq. 6 from an already-evaluated
// E(d_k) and queue depth, so a caller that reports both the energy term
// and the composite (the serving engine's per-decision payload) prices
// the disk with a single energy evaluation.
func (c CostConfig) CostOf(energy float64, load int) float64 {
	return energy*c.Alpha/c.Beta + float64(load)*(1-c.Alpha)
}

// Cost computes the composite C(d_k) of Eq. 6.
func (c CostConfig) Cost(v View, d core.DiskID) float64 {
	return c.CostOf(c.EnergyCost(v, d), v.Load(d))
}

// Random is the energy-oblivious baseline that sends each request to a
// uniformly random replica.
type Random struct {
	Locations Locator
	rng       *rand.Rand
}

// NewRandom returns a seeded Random scheduler.
func NewRandom(loc Locator, seed int64) *Random {
	return &Random{Locations: loc, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Online.
func (*Random) Name() string { return "random" }

// Schedule implements Online.
func (r *Random) Schedule(req core.Request, _ View) core.DiskID {
	locs := r.Locations(req.Block)
	if len(locs) == 0 {
		return core.InvalidDisk
	}
	return locs[r.rng.Intn(len(locs))]
}

// Static is the energy-oblivious baseline that always uses the original
// data location.
type Static struct {
	Locations Locator
}

// Name implements Online.
func (Static) Name() string { return "static" }

// Schedule implements Online.
func (s Static) Schedule(req core.Request, _ View) core.DiskID {
	locs := s.Locations(req.Block)
	if len(locs) == 0 {
		return core.InvalidDisk
	}
	return locs[0]
}

// Heuristic is the online energy-aware scheduler of Section 3.3: each
// request goes to the replica location minimizing the composite cost C(d).
type Heuristic struct {
	Locations Locator
	Cost      CostConfig
	// Tracer, when non-nil and enabled, receives a decision event per
	// scheduled request carrying the winning composite cost C(d), its energy
	// term E(d) and the chosen disk's load P(d). Pass the same tracer to
	// storage.WithTracer so decisions interleave with the request lifecycle.
	Tracer *obs.Tracer
}

// Name implements Online.
func (Heuristic) Name() string { return "energy-aware heuristic" }

// Schedule implements Online. Ties break toward the lower disk ID so runs
// are reproducible.
func (h Heuristic) Schedule(req core.Request, v View) core.DiskID {
	locs := h.Locations(req.Block)
	if len(locs) == 0 {
		return core.InvalidDisk
	}
	best := locs[0]
	bestCost := h.Cost.Cost(v, best)
	for _, d := range locs[1:] {
		c := h.Cost.Cost(v, d)
		if c < bestCost || (c == bestCost && d < best) {
			best, bestCost = d, c
		}
	}
	if h.Tracer.Enabled() {
		h.Tracer.Decision(v.Now(), req.ID, req.Block, best, bestCost,
			h.Cost.EnergyCost(v, best), v.Load(best))
	}
	return best
}

// WSC is the weighted-set-cover batch scheduler of Section 3.2: the
// universe is the queued batch, each disk is a set containing the requests
// it can serve, weighted by the composite cost function, and the greedy
// cover picks the serving disks.
type WSC struct {
	Locations Locator
	Cost      CostConfig
	// Scratch, when set, is reused across batch ticks so steady-state
	// scheduling does not allocate per batch. A pointer so it survives the
	// value-receiver copies Batch implementations make.
	Scratch *CoverScratch
	// Tracer, when non-nil and enabled, receives a decision event per placed
	// request (see Heuristic.Tracer).
	Tracer *obs.Tracer
}

// Name implements Batch.
func (WSC) Name() string { return "energy-aware WSC" }

// CoverScratch holds the reusable buffers of the per-tick cover
// construction: disk-indexed element lists, the first-seen disk order, the
// universe index and the set list. A batch scheduler carrying one (see
// WSC.Scratch) builds every tick's Theorem 2 instance with zero steady-state
// allocations instead of a fresh map of slices per batch. The zero value is
// ready to use; a CoverScratch must not be shared by concurrent runs.
type CoverScratch struct {
	perDisk  [][]int // element lists indexed by disk, truncated between ticks
	disks    []core.DiskID
	covIdx   []int
	sets     []graph.Set
	out      []core.DiskID // assignment buffer returned by ScheduleBatch
	assigned []bool
	greedy   graph.GreedyScratch
}

func (s *CoverScratch) reset() {
	for _, d := range s.disks {
		s.perDisk[d] = s.perDisk[d][:0]
	}
	s.disks = s.disks[:0]
	s.covIdx = s.covIdx[:0]
	s.sets = s.sets[:0]
}

// outFor returns the assignment buffer sized and zeroed for n requests.
// buildCover overwrites every entry (InvalidDisk for unplaceable requests,
// the covering disk otherwise), so the clear only guards against a stale
// read if that invariant ever broke.
func (s *CoverScratch) outFor(n int) []core.DiskID {
	if cap(s.out) < n {
		s.out = make([]core.DiskID, n)
	} else {
		s.out = s.out[:n]
		clear(s.out)
	}
	return s.out
}

// assignedFor returns the per-element assignment mask sized and zeroed for
// n universe elements.
func (s *CoverScratch) assignedFor(n int) []bool {
	if cap(s.assigned) < n {
		s.assigned = make([]bool, n)
	} else {
		s.assigned = s.assigned[:n]
		clear(s.assigned)
	}
	return s.assigned
}

// buildCover constructs the Theorem 2 reduction for a batch: the universe
// is the subset of requests that have (non-negative) locations at all
// (covIdx maps universe elements back to batch positions), each candidate
// disk is a set weighted by the composite cost, and out is pre-marked with
// InvalidDisk for unplaced requests. scratch may be nil (per-call buffers);
// the returned slices alias it and are valid until its next use.
func buildCover(loc Locator, cost CostConfig, reqs []core.Request, v View, scratch *CoverScratch) (in graph.CoverInstance, disks []core.DiskID, covIdx []int, out []core.DiskID) {
	if scratch == nil {
		scratch = &CoverScratch{}
	}
	scratch.reset()
	out = scratch.outFor(len(reqs))
	for i, r := range reqs {
		e := -1
		for _, d := range loc(r.Block) {
			if d < 0 {
				continue
			}
			if e < 0 {
				e = len(scratch.covIdx)
				scratch.covIdx = append(scratch.covIdx, i)
			}
			for int(d) >= len(scratch.perDisk) {
				scratch.perDisk = append(scratch.perDisk, nil)
			}
			if len(scratch.perDisk[d]) == 0 {
				scratch.disks = append(scratch.disks, d)
			}
			scratch.perDisk[d] = append(scratch.perDisk[d], e)
		}
		if e < 0 {
			out[i] = core.InvalidDisk
		}
	}
	in = graph.CoverInstance{NumElements: len(scratch.covIdx)}
	for _, d := range scratch.disks {
		scratch.sets = append(scratch.sets, graph.Set{
			Weight:   cost.Cost(v, d),
			Elements: scratch.perDisk[d],
		})
	}
	in.Sets = scratch.sets
	return in, scratch.disks, scratch.covIdx, out
}

// applyCover assigns each covered request to its covering disk. scratch may
// be nil (per-call mask).
func applyCover(in graph.CoverInstance, chosen []int, disks []core.DiskID, covIdx []int, out []core.DiskID, scratch *CoverScratch) {
	if scratch == nil {
		scratch = &CoverScratch{}
	}
	assigned := scratch.assignedFor(len(covIdx))
	for _, si := range chosen {
		d := disks[si]
		for _, e := range in.Sets[si].Elements {
			if !assigned[e] {
				assigned[e] = true
				out[covIdx[e]] = d
			}
		}
	}
}

// ScheduleBatch implements Batch.
func (w WSC) ScheduleBatch(reqs []core.Request, v View) []core.DiskID {
	if len(reqs) == 0 {
		return nil
	}
	scratch := w.Scratch
	if scratch == nil {
		scratch = &CoverScratch{}
	}
	in, disks, covIdx, out := buildCover(w.Locations, w.Cost, reqs, v, scratch)
	// Every universe element appears in at least one set by construction,
	// so the greedy cover cannot fail.
	chosen, _, err := graph.GreedyCoverWith(in, &scratch.greedy)
	if err != nil {
		panic(fmt.Sprintf("sched: greedy cover on coverable instance failed: %v", err))
	}
	applyCover(in, chosen, disks, covIdx, out, scratch)
	traceBatchDecisions(w.Tracer, w.Cost, reqs, out, v)
	return out
}

// traceBatchDecisions emits one decision event per placed request of a
// batch assignment; a nil or disabled tracer costs one branch per tick.
func traceBatchDecisions(tr *obs.Tracer, cost CostConfig, reqs []core.Request, out []core.DiskID, v View) {
	if !tr.Enabled() {
		return
	}
	for i, r := range reqs {
		d := out[i]
		if d == core.InvalidDisk {
			continue
		}
		tr.Decision(v.Now(), r.ID, r.Block, d, cost.Cost(v, d), cost.EnergyCost(v, d), v.Load(d))
	}
}

// WSCExact is the batch scheduler with an optimal set-cover solver: each
// batch's Theorem 2 instance is solved by branch and bound, falling back
// to the greedy cover when the search exceeds MaxExpansions. Useful for
// measuring the greedy's optimality gap on real batches
// (BenchmarkAblationCoverSolver); exponential worst case.
type WSCExact struct {
	Locations Locator
	Cost      CostConfig
	// MaxExpansions caps the branch-and-bound search per batch
	// (0 = a conservative default).
	MaxExpansions int
	// Scratch is reused across batch ticks when set, as in WSC.
	Scratch *CoverScratch
	// Tracer receives per-request decision events, as in WSC.
	Tracer *obs.Tracer
}

// Name implements Batch.
func (WSCExact) Name() string { return "energy-aware WSC (exact)" }

// ScheduleBatch implements Batch.
func (w WSCExact) ScheduleBatch(reqs []core.Request, v View) []core.DiskID {
	if len(reqs) == 0 {
		return nil
	}
	scratch := w.Scratch
	if scratch == nil {
		scratch = &CoverScratch{}
	}
	in, disks, covIdx, out := buildCover(w.Locations, w.Cost, reqs, v, scratch)
	limit := w.MaxExpansions
	if limit == 0 {
		limit = 200000
	}
	chosen, _, err := graph.ExactCover(in, limit)
	if err != nil {
		// Search too large (or uncoverable, which cannot happen by
		// construction): fall back to the greedy cover.
		chosen, _, err = graph.GreedyCoverWith(in, &scratch.greedy)
		if err != nil {
			panic(fmt.Sprintf("sched: greedy cover on coverable instance failed: %v", err))
		}
	}
	applyCover(in, chosen, disks, covIdx, out, scratch)
	traceBatchDecisions(w.Tracer, w.Cost, reqs, out, v)
	return out
}

// Precomputed wraps a full offline schedule (e.g. from internal/offline's
// MWIS pipeline) as an Online scheduler: each arriving request is sent to
// its precomputed disk.
type Precomputed struct {
	Label       string
	Assignments core.Schedule
}

// Name implements Online.
func (p Precomputed) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "precomputed"
}

// Schedule implements Online.
func (p Precomputed) Schedule(req core.Request, _ View) core.DiskID {
	if req.ID < 0 || int(req.ID) >= len(p.Assignments) {
		return core.InvalidDisk
	}
	return p.Assignments[req.ID]
}

var (
	_ Online = (*Random)(nil)
	_ Online = Static{}
	_ Online = Heuristic{}
	_ Online = Precomputed{}
	_ Batch  = WSC{}
	_ Batch  = WSCExact{}
)
