package sched

import (
	"time"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/power"
)

// MWISBatch applies the offline MWIS pipeline to each batch, as Section
// 3.2 notes is possible ("our MWIS offline scheduling algorithm still can
// be used to solve a batch scheduling problem"): the queued requests are
// treated as one offline instance whose requests all access disks at the
// batch instant, which by Theorem 2 makes the reduction equivalent to the
// weighted set cover — minimizing the number of serving disks.
//
// Unlike WSC it does not see current disk states (the offline model
// assumes all-standby disks), so WSC generally wins online; MWISBatch
// exists to complete the paper's algorithm matrix and for the Theorem 2
// equivalence tests.
type MWISBatch struct {
	Locations Locator
	Power     power.Config
	// HybridExactLimit is forwarded to the MWIS solver (0 = pure greedy).
	HybridExactLimit int
}

// Name implements Batch.
func (MWISBatch) Name() string { return "energy-aware MWIS (batch)" }

// ScheduleBatch implements Batch.
func (m MWISBatch) ScheduleBatch(reqs []core.Request, v View) []core.DiskID {
	if len(reqs) == 0 {
		return nil
	}
	// Re-index the batch as a standalone offline instance: dense IDs,
	// concurrent arrivals (the batch model's defining property).
	batch := make([]core.Request, 0, len(reqs))
	backIdx := make([]int, 0, len(reqs))
	out := make([]core.DiskID, len(reqs))
	for i, r := range reqs {
		if len(m.Locations(r.Block)) == 0 {
			out[i] = core.InvalidDisk
			continue
		}
		batch = append(batch, core.Request{
			ID:      core.RequestID(len(batch)),
			Block:   r.Block,
			Arrival: time.Duration(0),
		})
		backIdx = append(backIdx, i)
	}
	if len(batch) == 0 {
		return out
	}
	schedule, _, err := offline.Solve(batch, m.Locations, m.Power, offline.BuildOptions{
		HybridExactLimit: m.HybridExactLimit,
	})
	if err != nil {
		// Cannot happen: every batch request has locations. Fall back to
		// original locations to stay total.
		for k, i := range backIdx {
			out[i] = m.Locations(batch[k].Block)[0]
		}
		return out
	}
	for k, i := range backIdx {
		out[i] = schedule[k]
	}
	return out
}

var _ Batch = MWISBatch{}
