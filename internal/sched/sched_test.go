package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/power"
)

// fakeView is a scriptable scheduler view.
type fakeView struct {
	now    time.Duration
	states map[core.DiskID]core.DiskState
	loads  map[core.DiskID]int
	lasts  map[core.DiskID]time.Duration
}

func (f *fakeView) Now() time.Duration { return f.now }
func (f *fakeView) DiskState(d core.DiskID) core.DiskState {
	if s, ok := f.states[d]; ok {
		return s
	}
	return core.StateStandby
}
func (f *fakeView) Load(d core.DiskID) int { return f.loads[d] }
func (f *fakeView) LastRequestTime(d core.DiskID) (time.Duration, bool) {
	t, ok := f.lasts[d]
	return t, ok
}

func twoLocs(b core.BlockID) []core.DiskID { return []core.DiskID{0, 1} }

func TestCostConfigValidate(t *testing.T) {
	t.Parallel()
	good := DefaultCost(power.DefaultConfig())
	if err := good.Validate(); err != nil {
		t.Fatalf("default cost invalid: %v", err)
	}
	if good.Alpha != 0.2 || good.Beta != 10 {
		t.Errorf("default alpha/beta = %v/%v, want 0.2/10 (paper A.2's alpha, rescaled beta)", good.Alpha, good.Beta)
	}
	for _, bad := range []CostConfig{
		{Alpha: -0.1, Beta: 1, Power: power.DefaultConfig()},
		{Alpha: 1.1, Beta: 1, Power: power.DefaultConfig()},
		{Alpha: 0.5, Beta: 0, Power: power.DefaultConfig()},
		{Alpha: math.NaN(), Beta: 1, Power: power.DefaultConfig()},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

func TestEnergyCostEquation5(t *testing.T) {
	t.Parallel()
	pcfg := power.DefaultConfig()
	c := DefaultCost(pcfg)
	v := &fakeView{
		now: 100 * time.Second,
		states: map[core.DiskID]core.DiskState{
			0: core.StateActive,
			1: core.StateSpinUp,
			2: core.StateStandby,
			3: core.StateSpinDown,
			4: core.StateIdle,
		},
		lasts: map[core.DiskID]time.Duration{4: 90 * time.Second},
	}
	cycle := pcfg.UpDownEnergy() + pcfg.Breakeven().Seconds()*pcfg.IdlePower
	tests := []struct {
		name string
		disk core.DiskID
		want float64
	}{
		{"active is free", 0, 0},
		{"spin-up is free", 1, 0},
		{"standby pays a full cycle", 2, cycle},
		{"spin-down pays a full cycle", 3, cycle},
		{"idle pays the extension", 4, 10 * pcfg.IdlePower},
	}
	for _, tc := range tests {
		if got := c.EnergyCost(v, tc.disk); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: EnergyCost = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEnergyCostIdleWithoutHistory(t *testing.T) {
	t.Parallel()
	pcfg := power.DefaultConfig()
	c := DefaultCost(pcfg)
	v := &fakeView{now: 7 * time.Second, states: map[core.DiskID]core.DiskState{0: core.StateIdle}}
	if got := c.EnergyCost(v, 0); math.Abs(got-7*pcfg.IdlePower) > 1e-9 {
		t.Errorf("idle-without-history cost = %v", got)
	}
}

func TestCostEquation6Mixing(t *testing.T) {
	t.Parallel()
	pcfg := power.DefaultConfig()
	v := &fakeView{
		now:    time.Second,
		states: map[core.DiskID]core.DiskState{0: core.StateStandby},
		loads:  map[core.DiskID]int{0: 5},
	}
	cycle := pcfg.UpDownEnergy() + pcfg.Breakeven().Seconds()*pcfg.IdlePower
	// alpha=1: energy only.
	c := CostConfig{Alpha: 1, Beta: 100, Power: pcfg}
	if got := c.Cost(v, 0); math.Abs(got-cycle/100) > 1e-9 {
		t.Errorf("alpha=1 cost = %v, want %v", got, cycle/100)
	}
	// alpha=0: load only.
	c.Alpha = 0
	if got := c.Cost(v, 0); math.Abs(got-5) > 1e-9 {
		t.Errorf("alpha=0 cost = %v, want 5", got)
	}
	// Mixed.
	c.Alpha = 0.2
	want := cycle*0.2/100 + 5*0.8
	if got := c.Cost(v, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("alpha=0.2 cost = %v, want %v", got, want)
	}
}

func TestStaticAlwaysPicksOriginal(t *testing.T) {
	t.Parallel()
	s := Static{Locations: func(core.BlockID) []core.DiskID { return []core.DiskID{3, 1, 2} }}
	for i := 0; i < 5; i++ {
		if got := s.Schedule(core.Request{Block: 1}, &fakeView{}); got != 3 {
			t.Fatalf("Static picked %v, want original disk 3", got)
		}
	}
	none := Static{Locations: func(core.BlockID) []core.DiskID { return nil }}
	if got := none.Schedule(core.Request{}, &fakeView{}); got != core.InvalidDisk {
		t.Errorf("Static on unplaced block = %v", got)
	}
}

func TestRandomIsUniformAcrossReplicas(t *testing.T) {
	t.Parallel()
	r := NewRandom(func(core.BlockID) []core.DiskID { return []core.DiskID{0, 1, 2} }, 42)
	counts := map[core.DiskID]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Schedule(core.Request{}, &fakeView{})]++
	}
	for d := core.DiskID(0); d < 3; d++ {
		frac := float64(counts[d]) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("disk %d frequency %.3f, want ~0.333", d, frac)
		}
	}
}

func TestRandomDeterministicForSeed(t *testing.T) {
	t.Parallel()
	mk := func() *Random { return NewRandom(twoLocs, 9) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Schedule(core.Request{}, &fakeView{}) != b.Schedule(core.Request{}, &fakeView{}) {
			t.Fatal("same-seed Random diverged")
		}
	}
}

func TestHeuristicPrefersCheapDisk(t *testing.T) {
	t.Parallel()
	pcfg := power.DefaultConfig()
	h := Heuristic{Locations: twoLocs, Cost: DefaultCost(pcfg)}
	// Disk 0 standby (expensive), disk 1 active (free): pick 1.
	v := &fakeView{states: map[core.DiskID]core.DiskState{
		0: core.StateStandby,
		1: core.StateActive,
	}}
	if got := h.Schedule(core.Request{}, v); got != 1 {
		t.Errorf("Heuristic picked %v, want active disk 1", got)
	}
}

func TestHeuristicPrefersSpinUpOverIdle(t *testing.T) {
	t.Parallel()
	// Section 3.3: a spinning-up disk (E=0) beats an idle disk whose idle
	// window would be extended.
	pcfg := power.DefaultConfig()
	h := Heuristic{Locations: twoLocs, Cost: CostConfig{Alpha: 1, Beta: 100, Power: pcfg}}
	v := &fakeView{
		now:    60 * time.Second,
		states: map[core.DiskID]core.DiskState{0: core.StateIdle, 1: core.StateSpinUp},
		lasts:  map[core.DiskID]time.Duration{0: 50 * time.Second},
	}
	if got := h.Schedule(core.Request{}, v); got != 1 {
		t.Errorf("Heuristic picked %v, want spinning-up disk 1", got)
	}
}

func TestHeuristicLoadBalancesWhenAlphaZero(t *testing.T) {
	t.Parallel()
	h := Heuristic{Locations: twoLocs, Cost: CostConfig{Alpha: 0, Beta: 100, Power: power.DefaultConfig()}}
	v := &fakeView{
		states: map[core.DiskID]core.DiskState{0: core.StateActive, 1: core.StateStandby},
		loads:  map[core.DiskID]int{0: 10, 1: 0},
	}
	if got := h.Schedule(core.Request{}, v); got != 1 {
		t.Errorf("alpha=0 Heuristic picked %v, want unloaded disk 1", got)
	}
}

func TestWSCCoversBatchOnActiveDisk(t *testing.T) {
	t.Parallel()
	// Three requests, all replicated on disks {0,1}; disk 1 is active
	// (free) so the whole batch should land there.
	w := WSC{Locations: twoLocs, Cost: DefaultCost(power.DefaultConfig())}
	v := &fakeView{states: map[core.DiskID]core.DiskState{
		0: core.StateStandby,
		1: core.StateActive,
	}}
	reqs := []core.Request{{ID: 0}, {ID: 1}, {ID: 2}}
	got := w.ScheduleBatch(reqs, v)
	for i, d := range got {
		if d != 1 {
			t.Errorf("request %d -> disk %v, want 1", i, d)
		}
	}
}

func TestWSCConsolidatesOntoFewerDisks(t *testing.T) {
	t.Parallel()
	// Figure 2's structure: the greedy cover should use 2 disks, not 3.
	locs := [][]core.DiskID{
		{0}, {0, 1}, {0, 1, 3}, {2, 3}, {0, 3}, {2, 3},
	}
	loc := func(b core.BlockID) []core.DiskID { return locs[b] }
	w := WSC{Locations: loc, Cost: CostConfig{Alpha: 1, Beta: 1, Power: power.ToyConfig()}}
	reqs := make([]core.Request, 6)
	for i := range reqs {
		reqs[i] = core.Request{ID: core.RequestID(i), Block: core.BlockID(i)}
	}
	got := w.ScheduleBatch(reqs, &fakeView{}) // all disks standby
	used := map[core.DiskID]struct{}{}
	for i, d := range got {
		found := false
		for _, l := range locs[i] {
			if l == d {
				found = true
			}
		}
		if !found {
			t.Fatalf("request %d assigned off-replica disk %v", i, d)
		}
		used[d] = struct{}{}
	}
	if len(used) != 2 {
		t.Errorf("WSC used %d disks, want 2 (schedule B)", len(used))
	}
}

func TestWSCHandlesUnplacedAndEmpty(t *testing.T) {
	t.Parallel()
	w := WSC{
		Locations: func(b core.BlockID) []core.DiskID {
			if b == 0 {
				return nil
			}
			return []core.DiskID{2}
		},
		Cost: DefaultCost(power.DefaultConfig()),
	}
	got := w.ScheduleBatch([]core.Request{{ID: 0, Block: 0}, {ID: 1, Block: 1}}, &fakeView{})
	if got[0] != core.InvalidDisk {
		t.Errorf("unplaced request -> %v, want InvalidDisk", got[0])
	}
	if got[1] != 2 {
		t.Errorf("placed request -> %v, want 2", got[1])
	}
	if out := w.ScheduleBatch(nil, &fakeView{}); len(out) != 0 {
		t.Errorf("empty batch -> %v", out)
	}
}

func TestPrecomputed(t *testing.T) {
	t.Parallel()
	p := Precomputed{Label: "energy-aware MWIS", Assignments: core.Schedule{3, 1}}
	if p.Name() != "energy-aware MWIS" {
		t.Errorf("Name = %q", p.Name())
	}
	if got := (Precomputed{}).Name(); got != "precomputed" {
		t.Errorf("default name = %q", got)
	}
	v := &fakeView{}
	if got := p.Schedule(core.Request{ID: 0}, v); got != 3 {
		t.Errorf("Schedule(r0) = %v, want 3", got)
	}
	var o Online = p
	if got := o.Schedule(core.Request{ID: 1}, v); got != 1 {
		t.Errorf("Schedule(r1) = %v, want 1", got)
	}
	if got := o.Schedule(core.Request{ID: 99}, v); got != core.InvalidDisk {
		t.Errorf("out-of-range = %v, want InvalidDisk", got)
	}
}

// Property: every scheduler returns one of the block's replica locations
// (or InvalidDisk for unplaced blocks), for arbitrary system states.
func TestSchedulersReturnValidLocations(t *testing.T) {
	t.Parallel()
	pcfg := power.DefaultConfig()
	f := func(seed int64, stateSeed uint8, load uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numDisks := 3
		locs := [][]core.DiskID{}
		for b := 0; b < 4; b++ {
			n := 1 + rng.Intn(numDisks)
			perm := rng.Perm(numDisks)
			row := make([]core.DiskID, 0, n)
			for _, d := range perm[:n] {
				row = append(row, core.DiskID(d))
			}
			locs = append(locs, row)
		}
		loc := func(b core.BlockID) []core.DiskID { return locs[b] }
		v := &fakeView{
			now:    time.Duration(rng.Int63n(int64(time.Hour))),
			states: map[core.DiskID]core.DiskState{},
			loads:  map[core.DiskID]int{0: int(load) % 7},
			lasts:  map[core.DiskID]time.Duration{},
		}
		for d := core.DiskID(0); d < 3; d++ {
			v.states[d] = core.DiskState(int(stateSeed+uint8(d))%5 + 1)
		}
		contains := func(ds []core.DiskID, d core.DiskID) bool {
			for _, x := range ds {
				if x == d {
					return true
				}
			}
			return false
		}
		schedulers := []Online{
			NewRandom(loc, seed),
			Static{Locations: loc},
			Heuristic{Locations: loc, Cost: DefaultCost(pcfg)},
		}
		for b := core.BlockID(0); b < 4; b++ {
			req := core.Request{Block: b}
			for _, s := range schedulers {
				if d := s.Schedule(req, v); !contains(locs[b], d) {
					return false
				}
			}
		}
		w := WSC{Locations: loc, Cost: DefaultCost(pcfg)}
		batch := []core.Request{{ID: 0, Block: 0}, {ID: 1, Block: 1}, {ID: 2, Block: 2}}
		for i, d := range w.ScheduleBatch(batch, v) {
			if !contains(locs[batch[i].Block], d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
