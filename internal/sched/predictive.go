package sched

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// Predictive is the cost-function extension sketched in Section 3.3: "a
// prediction technique could be used to estimate the access probability of
// a disk and assign lower cost to a more frequently used disk". It keeps
// an exponentially decayed access counter per disk and discounts the
// composite cost of frequently accessed disks, steering requests toward
// disks that are likely to be kept spinning by future traffic anyway.
//
// Predictive carries mutable per-disk state; create one per run with
// NewPredictive and do not share across concurrent simulations.
type Predictive struct {
	locations Locator
	cost      CostConfig
	// gamma in [0,1) is the maximum discount applied to the hottest disk.
	gamma float64
	// halfLife controls how fast access history fades.
	halfLife time.Duration

	rate        map[core.DiskID]float64
	lastUpdated map[core.DiskID]time.Duration
}

// NewPredictive builds the predictive scheduler. gamma must be in [0,1);
// halfLife must be positive.
func NewPredictive(loc Locator, cost CostConfig, gamma float64, halfLife time.Duration) (*Predictive, error) {
	if loc == nil {
		return nil, fmt.Errorf("sched: nil locator")
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if gamma < 0 || gamma >= 1 || math.IsNaN(gamma) {
		return nil, fmt.Errorf("sched: predictive gamma %v outside [0,1)", gamma)
	}
	if halfLife <= 0 {
		return nil, fmt.Errorf("sched: predictive half-life %s", halfLife)
	}
	return &Predictive{
		locations:   loc,
		cost:        cost,
		gamma:       gamma,
		halfLife:    halfLife,
		rate:        make(map[core.DiskID]float64),
		lastUpdated: make(map[core.DiskID]time.Duration),
	}, nil
}

// Name implements Online.
func (p *Predictive) Name() string { return "energy-aware predictive" }

// decayedRate returns the disk's access counter decayed to now.
func (p *Predictive) decayedRate(d core.DiskID, now time.Duration) float64 {
	r, ok := p.rate[d]
	if !ok || r == 0 {
		return 0
	}
	dt := now - p.lastUpdated[d]
	if dt <= 0 {
		return r
	}
	return r * math.Exp2(-float64(dt)/float64(p.halfLife))
}

// Schedule implements Online: pick the replica minimizing the discounted
// cost C(d) * (1 - gamma * rate(d)/maxRate), then bump the chosen disk's
// counter.
func (p *Predictive) Schedule(req core.Request, v View) core.DiskID {
	locs := p.locations(req.Block)
	if len(locs) == 0 {
		return core.InvalidDisk
	}
	now := v.Now()
	maxRate := 0.0
	for _, d := range locs {
		if r := p.decayedRate(d, now); r > maxRate {
			maxRate = r
		}
	}
	best := locs[0]
	bestCost := math.Inf(1)
	for _, d := range locs {
		c := p.cost.Cost(v, d)
		if maxRate > 0 {
			c *= 1 - p.gamma*p.decayedRate(d, now)/maxRate
		}
		if c < bestCost || (c == bestCost && d < best) {
			best, bestCost = d, c
		}
	}
	p.rate[best] = p.decayedRate(best, now) + 1
	p.lastUpdated[best] = now
	return best
}

var _ Online = (*Predictive)(nil)
