package placement

import (
	"testing"

	"repro/internal/core"
)

func TestRackOf(t *testing.T) {
	t.Parallel()
	// 10 disks, 3 racks: per=3, so disks 0-2 rack0, 3-5 rack1, 6-9 rack2
	// (last rack absorbs the remainder).
	tests := []struct {
		d    core.DiskID
		want int
	}{{0, 0}, {2, 0}, {3, 1}, {5, 1}, {6, 2}, {9, 2}}
	for _, tc := range tests {
		if got := RackOf(tc.d, 10, 3); got != tc.want {
			t.Errorf("RackOf(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestGenerateRackAwareValidation(t *testing.T) {
	t.Parallel()
	base := RackConfig{NumDisks: 12, NumRacks: 3, NumBlocks: 10, ReplicationFactor: 3, ZipfExponent: 1}
	muts := []struct {
		name   string
		mutate func(*RackConfig)
	}{
		{"no disks", func(c *RackConfig) { c.NumDisks = 0 }},
		{"no racks", func(c *RackConfig) { c.NumRacks = 0 }},
		{"more racks than disks", func(c *RackConfig) { c.NumRacks = 13 }},
		{"negative blocks", func(c *RackConfig) { c.NumBlocks = -1 }},
		{"zero replication", func(c *RackConfig) { c.ReplicationFactor = 0 }},
		{"negative zipf", func(c *RackConfig) { c.ZipfExponent = -1 }},
	}
	for _, tc := range muts {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := base
			tc.mutate(&cfg)
			if _, err := GenerateRackAware(cfg); err == nil {
				t.Errorf("accepted %+v", cfg)
			}
		})
	}
}

func TestGenerateRackAwareHDFSInvariants(t *testing.T) {
	t.Parallel()
	cfg := RackConfig{
		NumDisks: 30, NumRacks: 5, NumBlocks: 2000,
		ReplicationFactor: 3, ZipfExponent: 1, Seed: 6,
	}
	p, err := GenerateRackAware(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameRackSecond, crossRackThird := 0, 0
	for b := 0; b < cfg.NumBlocks; b++ {
		ls := p.Locations(core.BlockID(b))
		if len(ls) != 3 {
			t.Fatalf("block %d has %d replicas", b, len(ls))
		}
		seen := map[core.DiskID]struct{}{}
		for _, d := range ls {
			if _, dup := seen[d]; dup {
				t.Fatalf("block %d duplicates disk %d", b, d)
			}
			seen[d] = struct{}{}
		}
		r0 := RackOf(ls[0], cfg.NumDisks, cfg.NumRacks)
		r1 := RackOf(ls[1], cfg.NumDisks, cfg.NumRacks)
		r2 := RackOf(ls[2], cfg.NumDisks, cfg.NumRacks)
		if r0 == r1 {
			sameRackSecond++
		}
		if r2 != r0 && r2 != r1 {
			crossRackThird++
		}
	}
	// HDFS policy: second replica in the same rack, third in a new rack —
	// always, given racks have >= 2 disks and more than 2 racks exist.
	if sameRackSecond != cfg.NumBlocks {
		t.Errorf("second replica in original rack for %d/%d blocks", sameRackSecond, cfg.NumBlocks)
	}
	if crossRackThird != cfg.NumBlocks {
		t.Errorf("third replica in a fresh rack for %d/%d blocks", crossRackThird, cfg.NumBlocks)
	}
}

func TestGenerateRackAwareHighReplicationWraps(t *testing.T) {
	t.Parallel()
	// rf exceeds the rack count: placement must still succeed with
	// distinct disks.
	p, err := GenerateRackAware(RackConfig{
		NumDisks: 8, NumRacks: 2, NumBlocks: 50,
		ReplicationFactor: 6, ZipfExponent: 0, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 50; b++ {
		ls := p.Locations(core.BlockID(b))
		if len(ls) != 6 {
			t.Fatalf("block %d has %d replicas", b, len(ls))
		}
	}
}

func TestGenerateRackAwareDeterministic(t *testing.T) {
	t.Parallel()
	cfg := RackConfig{NumDisks: 12, NumRacks: 3, NumBlocks: 100, ReplicationFactor: 3, ZipfExponent: 1, Seed: 5}
	a, err := GenerateRackAware(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRackAware(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 100; blk++ {
		la, lb := a.Locations(core.BlockID(blk)), b.Locations(core.BlockID(blk))
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("block %d differs across same-seed generations", blk)
			}
		}
	}
}
