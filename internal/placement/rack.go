package placement

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// RackConfig parameterizes an HDFS-style rack-aware layout — the paper's
// conclusion names HDFS as the target deployment, and HDFS's default block
// placement is: first replica on the writer's node, second on a different
// node in the same rack, third on a node in a different rack.
type RackConfig struct {
	NumDisks          int
	NumRacks          int
	NumBlocks         int
	ReplicationFactor int
	ZipfExponent      float64 // skew of the first replica's disk
	Seed              int64
}

// RackOf returns the rack housing a disk under the contiguous striping
// used by GenerateRackAware: disks [0, K/R) are rack 0, and so on (the
// final rack absorbs any remainder).
func RackOf(d core.DiskID, numDisks, numRacks int) int {
	per := numDisks / numRacks
	r := int(d) / per
	if r >= numRacks {
		r = numRacks - 1
	}
	return r
}

// GenerateRackAware builds an HDFS-style placement: the original location
// is Zipf(z)-skewed over all disks, the second replica sits on a distinct
// disk in the same rack, and further replicas on distinct disks in other
// racks (wrapping to anywhere once racks are exhausted).
func GenerateRackAware(cfg RackConfig) (*Placement, error) {
	switch {
	case cfg.NumDisks <= 0:
		return nil, fmt.Errorf("placement: NumDisks = %d", cfg.NumDisks)
	case cfg.NumRacks <= 0 || cfg.NumRacks > cfg.NumDisks:
		return nil, fmt.Errorf("placement: NumRacks = %d for %d disks", cfg.NumRacks, cfg.NumDisks)
	case cfg.NumBlocks < 0:
		return nil, fmt.Errorf("placement: NumBlocks = %d", cfg.NumBlocks)
	case cfg.ReplicationFactor < 1 || cfg.ReplicationFactor > cfg.NumDisks:
		return nil, fmt.Errorf("placement: ReplicationFactor = %d for %d disks", cfg.ReplicationFactor, cfg.NumDisks)
	case cfg.ZipfExponent < 0:
		return nil, fmt.Errorf("placement: ZipfExponent = %v", cfg.ZipfExponent)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rankToDisk := rng.Perm(cfg.NumDisks)
	zipf := NewZipf(cfg.NumDisks, cfg.ZipfExponent)

	// Disks per rack under contiguous striping.
	byRack := make([][]core.DiskID, cfg.NumRacks)
	for d := 0; d < cfg.NumDisks; d++ {
		r := RackOf(core.DiskID(d), cfg.NumDisks, cfg.NumRacks)
		byRack[r] = append(byRack[r], core.DiskID(d))
	}

	locs := make([][]core.DiskID, cfg.NumBlocks)
	for b := range locs {
		used := make(map[core.DiskID]struct{}, cfg.ReplicationFactor)
		usedRacks := make(map[int]struct{}, cfg.ReplicationFactor)
		ds := make([]core.DiskID, 0, cfg.ReplicationFactor)
		add := func(d core.DiskID) {
			ds = append(ds, d)
			used[d] = struct{}{}
			usedRacks[RackOf(d, cfg.NumDisks, cfg.NumRacks)] = struct{}{}
		}

		orig := core.DiskID(rankToDisk[zipf.Sample(rng)])
		add(orig)

		// Second replica: same rack, different disk (when the rack has one).
		if cfg.ReplicationFactor >= 2 {
			rack := byRack[RackOf(orig, cfg.NumDisks, cfg.NumRacks)]
			if d, ok := pickDistinct(rng, rack, used); ok {
				add(d)
			}
		}
		// Remaining replicas: prefer unused racks, then anywhere.
		for len(ds) < cfg.ReplicationFactor {
			var pool []core.DiskID
			for r, disks := range byRack {
				if _, taken := usedRacks[r]; !taken {
					pool = append(pool, disks...)
				}
			}
			d, ok := pickDistinct(rng, pool, used)
			if !ok {
				// All racks used: fall back to any distinct disk.
				all := make([]core.DiskID, 0, cfg.NumDisks)
				for i := 0; i < cfg.NumDisks; i++ {
					all = append(all, core.DiskID(i))
				}
				if d, ok = pickDistinct(rng, all, used); !ok {
					return nil, fmt.Errorf("placement: cannot place %d replicas on %d disks", cfg.ReplicationFactor, cfg.NumDisks)
				}
			}
			add(d)
		}
		locs[b] = ds
	}
	return New(cfg.NumDisks, locs)
}

// GenerateRackLocal builds a rack-local placement: the original location is
// Zipf(z)-skewed over all disks (as Generate), and every further replica
// sits on a distinct disk in the same rack as the original. Racks are
// contiguous disk stripes of NumDisks/racks (NumDisks must divide evenly,
// and each rack must hold at least ReplicationFactor disks).
//
// This is the layout the sharded serving engine wants: because racks are
// the same contiguous stripes simkernel.ShardOf partitions by, every
// block's whole replica set lands inside one decision shard for any shard
// count that divides racks — so rack-local data can be decided without
// cross-shard coordination at 1, 2, 4, ... racks shards of the same fleet.
func GenerateRackLocal(cfg GenerateConfig, racks int) (*Placement, error) {
	switch {
	case cfg.NumDisks <= 0:
		return nil, fmt.Errorf("placement: NumDisks = %d", cfg.NumDisks)
	case racks <= 0 || racks > cfg.NumDisks:
		return nil, fmt.Errorf("placement: racks = %d for %d disks", racks, cfg.NumDisks)
	case cfg.NumDisks%racks != 0:
		return nil, fmt.Errorf("placement: %d disks do not stripe evenly over %d racks", cfg.NumDisks, racks)
	case cfg.NumBlocks < 0:
		return nil, fmt.Errorf("placement: NumBlocks = %d", cfg.NumBlocks)
	case cfg.ReplicationFactor < 1:
		return nil, fmt.Errorf("placement: ReplicationFactor = %d", cfg.ReplicationFactor)
	case cfg.ReplicationFactor > cfg.NumDisks/racks:
		return nil, fmt.Errorf("placement: replication factor %d exceeds the %d disks per rack",
			cfg.ReplicationFactor, cfg.NumDisks/racks)
	case cfg.ZipfExponent < 0:
		return nil, fmt.Errorf("placement: ZipfExponent = %v", cfg.ZipfExponent)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rankToDisk := rng.Perm(cfg.NumDisks)
	zipf := NewZipf(cfg.NumDisks, cfg.ZipfExponent)
	per := cfg.NumDisks / racks

	locs := make([][]core.DiskID, cfg.NumBlocks)
	for b := range locs {
		ds := make([]core.DiskID, 0, cfg.ReplicationFactor)
		used := make(map[core.DiskID]struct{}, cfg.ReplicationFactor)
		orig := core.DiskID(rankToDisk[zipf.Sample(rng)])
		ds = append(ds, orig)
		used[orig] = struct{}{}
		base := (int(orig) / per) * per
		for len(ds) < cfg.ReplicationFactor {
			d := core.DiskID(base + rng.Intn(per))
			if _, dup := used[d]; dup {
				continue
			}
			used[d] = struct{}{}
			ds = append(ds, d)
		}
		locs[b] = ds
	}
	return New(cfg.NumDisks, locs)
}

// pickDistinct draws a uniform disk from pool that is not yet used.
func pickDistinct(rng *rand.Rand, pool []core.DiskID, used map[core.DiskID]struct{}) (core.DiskID, bool) {
	candidates := make([]core.DiskID, 0, len(pool))
	for _, d := range pool {
		if _, taken := used[d]; !taken {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return core.InvalidDisk, false
	}
	return candidates[rng.Intn(len(candidates))], true
}
