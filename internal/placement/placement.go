// Package placement models the data placement manager of Section 2.1: it
// maps each block to its replica locations L = {l_1 ... l_M}. The scheduler
// never moves data — it only reads this layout (the paper's central design
// point) — so the package is read-only after construction.
//
// The evaluation layout (Section 4.2) puts each block's original location on
// a disk drawn from a Zipf(z) distribution over disk ranks and spreads the
// remaining replicas uniformly over distinct disks.
package placement

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Placement is an immutable block -> replica-locations map over a fixed
// disk population. Index 0 of each location list is the block's original
// location; the rest are replicas.
type Placement struct {
	numDisks int
	locs     [][]core.DiskID
}

// New builds a placement from explicit locations (used by the paper's
// worked examples and by tests). locs[b] lists the disks holding block b.
func New(numDisks int, locs [][]core.DiskID) (*Placement, error) {
	if numDisks <= 0 {
		return nil, fmt.Errorf("placement: need at least one disk, got %d", numDisks)
	}
	for b, ds := range locs {
		if len(ds) == 0 {
			return nil, fmt.Errorf("placement: block %d has no locations", b)
		}
		seen := make(map[core.DiskID]struct{}, len(ds))
		for _, d := range ds {
			if d < 0 || int(d) >= numDisks {
				return nil, fmt.Errorf("placement: block %d on invalid disk %d", b, d)
			}
			if _, dup := seen[d]; dup {
				return nil, fmt.Errorf("placement: block %d lists disk %d twice", b, d)
			}
			seen[d] = struct{}{}
		}
	}
	return &Placement{numDisks: numDisks, locs: locs}, nil
}

// NumDisks returns the disk population size K.
func (p *Placement) NumDisks() int { return p.numDisks }

// NumBlocks returns the number of placed blocks M.
func (p *Placement) NumBlocks() int { return len(p.locs) }

// Locations returns the replica locations of a block (original first). The
// caller must not modify the returned slice. Unknown blocks return nil.
func (p *Placement) Locations(b core.BlockID) []core.DiskID {
	if b < 0 || int(b) >= len(p.locs) {
		return nil
	}
	return p.locs[b]
}

// Original returns the block's original (first) location.
func (p *Placement) Original(b core.BlockID) core.DiskID {
	ls := p.Locations(b)
	if len(ls) == 0 {
		return core.InvalidDisk
	}
	return ls[0]
}

// GenerateConfig parameterizes the synthetic layout of Section 4.2.
type GenerateConfig struct {
	NumDisks          int
	NumBlocks         int
	ReplicationFactor int     // total copies per block, >= 1
	ZipfExponent      float64 // z in p = c/r^z; 0 = uniform originals, 1 = Zipf
	Seed              int64
}

// Generate builds the evaluation layout: original locations Zipf(z)-skewed
// over a seeded random permutation of disk ranks (so the hot disks are not
// always the low IDs), replicas uniform over the remaining disks, all
// copies of a block on distinct disks.
func Generate(cfg GenerateConfig) (*Placement, error) {
	switch {
	case cfg.NumDisks <= 0:
		return nil, fmt.Errorf("placement: NumDisks = %d", cfg.NumDisks)
	case cfg.NumBlocks < 0:
		return nil, fmt.Errorf("placement: NumBlocks = %d", cfg.NumBlocks)
	case cfg.ReplicationFactor < 1:
		return nil, fmt.Errorf("placement: ReplicationFactor = %d", cfg.ReplicationFactor)
	case cfg.ReplicationFactor > cfg.NumDisks:
		return nil, fmt.Errorf("placement: replication factor %d exceeds disk count %d",
			cfg.ReplicationFactor, cfg.NumDisks)
	case cfg.ZipfExponent < 0 || math.IsNaN(cfg.ZipfExponent):
		return nil, fmt.Errorf("placement: ZipfExponent = %v", cfg.ZipfExponent)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Rank permutation: rankToDisk[r] is the disk holding popularity rank r.
	rankToDisk := rng.Perm(cfg.NumDisks)
	zipf := NewZipf(cfg.NumDisks, cfg.ZipfExponent)

	locs := make([][]core.DiskID, cfg.NumBlocks)
	for b := range locs {
		ds := make([]core.DiskID, 0, cfg.ReplicationFactor)
		used := make(map[core.DiskID]struct{}, cfg.ReplicationFactor)
		orig := core.DiskID(rankToDisk[zipf.Sample(rng)])
		ds = append(ds, orig)
		used[orig] = struct{}{}
		for len(ds) < cfg.ReplicationFactor {
			d := core.DiskID(rng.Intn(cfg.NumDisks))
			if _, dup := used[d]; dup {
				continue
			}
			used[d] = struct{}{}
			ds = append(ds, d)
		}
		locs[b] = ds
	}
	return New(cfg.NumDisks, locs)
}

// LoadSkew returns, per disk, the number of blocks whose original location
// is that disk — a direct view of the Zipf skew used in Figures 9 and 10.
func (p *Placement) LoadSkew() []int {
	counts := make([]int, p.numDisks)
	for _, ls := range p.locs {
		counts[ls[0]]++
	}
	return counts
}

// Zipf samples ranks 0..n-1 with P(r) proportional to 1/(r+1)^z. Unlike
// math/rand's Zipf it supports any exponent z >= 0 (the paper sweeps
// z in [0,1], Appendix A.1) via an inverse-CDF table.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent z.
func NewZipf(n int, z float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("placement: Zipf over %d ranks", n))
	}
	if z < 0 || math.IsNaN(z) {
		panic(fmt.Sprintf("placement: Zipf exponent %v", z))
	}
	cdf := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), z)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// Sample draws a rank using the provided source.
func (zp *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(zp.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if zp.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// P returns the probability mass of rank r.
func (zp *Zipf) P(r int) float64 {
	if r < 0 || r >= len(zp.cdf) {
		return 0
	}
	if r == 0 {
		return zp.cdf[0]
	}
	return zp.cdf[r] - zp.cdf[r-1]
}
