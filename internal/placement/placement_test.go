package placement

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name     string
		numDisks int
		locs     [][]core.DiskID
		ok       bool
	}{
		{"valid", 3, [][]core.DiskID{{0, 1}, {2}}, true},
		{"no disks", 0, nil, false},
		{"empty locations", 2, [][]core.DiskID{{}}, false},
		{"disk out of range", 2, [][]core.DiskID{{5}}, false},
		{"negative disk", 2, [][]core.DiskID{{-1}}, false},
		{"duplicate replica", 3, [][]core.DiskID{{1, 1}}, false},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := New(tc.numDisks, tc.locs)
			if (err == nil) != tc.ok {
				t.Errorf("New err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestLocationsAndOriginal(t *testing.T) {
	t.Parallel()
	p, err := New(4, [][]core.DiskID{{2, 0}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Locations(0); len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("Locations(0) = %v", got)
	}
	if got := p.Original(0); got != 2 {
		t.Errorf("Original(0) = %v, want 2", got)
	}
	if got := p.Locations(99); got != nil {
		t.Errorf("Locations(unknown) = %v, want nil", got)
	}
	if got := p.Original(99); got != core.InvalidDisk {
		t.Errorf("Original(unknown) = %v, want InvalidDisk", got)
	}
	if p.NumDisks() != 4 || p.NumBlocks() != 2 {
		t.Errorf("sizes = %d disks, %d blocks", p.NumDisks(), p.NumBlocks())
	}
}

func TestGenerateValidation(t *testing.T) {
	t.Parallel()
	base := GenerateConfig{NumDisks: 10, NumBlocks: 5, ReplicationFactor: 2, ZipfExponent: 1}
	mutations := []struct {
		name   string
		mutate func(*GenerateConfig)
	}{
		{"no disks", func(c *GenerateConfig) { c.NumDisks = 0 }},
		{"negative blocks", func(c *GenerateConfig) { c.NumBlocks = -1 }},
		{"zero replication", func(c *GenerateConfig) { c.ReplicationFactor = 0 }},
		{"replication over disks", func(c *GenerateConfig) { c.ReplicationFactor = 11 }},
		{"negative zipf", func(c *GenerateConfig) { c.ZipfExponent = -0.5 }},
	}
	for _, tc := range mutations {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := base
			tc.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Errorf("Generate accepted %+v", cfg)
			}
		})
	}
}

func TestGenerateStructure(t *testing.T) {
	t.Parallel()
	cfg := GenerateConfig{NumDisks: 20, NumBlocks: 500, ReplicationFactor: 3, ZipfExponent: 1, Seed: 42}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 500 {
		t.Fatalf("blocks = %d", p.NumBlocks())
	}
	for b := 0; b < p.NumBlocks(); b++ {
		ls := p.Locations(core.BlockID(b))
		if len(ls) != 3 {
			t.Fatalf("block %d has %d locations, want 3", b, len(ls))
		}
		seen := map[core.DiskID]struct{}{}
		for _, d := range ls {
			if d < 0 || int(d) >= 20 {
				t.Fatalf("block %d on invalid disk %d", b, d)
			}
			if _, dup := seen[d]; dup {
				t.Fatalf("block %d has duplicate replica on disk %d", b, d)
			}
			seen[d] = struct{}{}
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	t.Parallel()
	cfg := GenerateConfig{NumDisks: 10, NumBlocks: 100, ReplicationFactor: 2, ZipfExponent: 1, Seed: 7}
	p1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 100; b++ {
		l1, l2 := p1.Locations(core.BlockID(b)), p2.Locations(core.BlockID(b))
		for i := range l1 {
			if l1[i] != l2[i] {
				t.Fatalf("block %d differs between same-seed generations", b)
			}
		}
	}
}

func TestGenerateZipfSkewsOriginals(t *testing.T) {
	t.Parallel()
	// With z=1 the hottest disk should hold far more originals than the
	// median disk; with z=0 the distribution should be roughly flat.
	skewed, err := Generate(GenerateConfig{NumDisks: 30, NumBlocks: 10000, ReplicationFactor: 1, ZipfExponent: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Generate(GenerateConfig{NumDisks: 30, NumBlocks: 10000, ReplicationFactor: 1, ZipfExponent: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sk := append([]int(nil), skewed.LoadSkew()...)
	fl := append([]int(nil), flat.LoadSkew()...)
	sort.Sort(sort.Reverse(sort.IntSlice(sk)))
	sort.Sort(sort.Reverse(sort.IntSlice(fl)))
	if sk[0] < 3*sk[15] {
		t.Errorf("z=1 skew too weak: max=%d median=%d", sk[0], sk[15])
	}
	if fl[0] > 2*fl[29] {
		t.Errorf("z=0 not flat: max=%d min=%d", fl[0], fl[29])
	}
}

func TestZipfDistributionMatchesTheory(t *testing.T) {
	t.Parallel()
	const n = 5
	z := NewZipf(n, 1)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, n)
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[z.Sample(rng)]++
	}
	h := 0.0
	for r := 1; r <= n; r++ {
		h += 1 / float64(r)
	}
	for r := 0; r < n; r++ {
		want := 1 / float64(r+1) / h
		got := float64(counts[r]) / samples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d frequency = %.4f, want %.4f", r, got, want)
		}
		if p := z.P(r); math.Abs(p-want) > 1e-12 {
			t.Errorf("P(%d) = %v, want %v", r, p, want)
		}
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	t.Parallel()
	z := NewZipf(4, 0)
	for r := 0; r < 4; r++ {
		if math.Abs(z.P(r)-0.25) > 1e-12 {
			t.Errorf("P(%d) = %v, want 0.25", r, z.P(r))
		}
	}
	if z.P(-1) != 0 || z.P(4) != 0 {
		t.Error("out-of-range P != 0")
	}
}

func TestZipfPanics(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		n int
		z float64
	}{{0, 1}, {5, -1}, {5, math.NaN()}} {
		tc := tc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) did not panic", tc.n, tc.z)
				}
			}()
			NewZipf(tc.n, tc.z)
		}()
	}
}

// Property: samples are always in range and the CDF is monotone.
func TestZipfSampleInRange(t *testing.T) {
	t.Parallel()
	f := func(seed int64, n uint8, zTenths uint8) bool {
		ranks := int(n)%100 + 1
		z := NewZipf(ranks, float64(zTenths%20)/10)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			r := z.Sample(rng)
			if r < 0 || r >= ranks {
				return false
			}
		}
		sum := 0.0
		for r := 0; r < ranks; r++ {
			sum += z.P(r)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
