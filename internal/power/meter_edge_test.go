package power

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestMeterUnclosedReads pins the read-side behavior of a meter that has
// never been closed: EnergyIn, TimeIn and Breakdown report only settled
// segments — the open segment since the last transition is invisible
// until the next Transition or Close accrues it.
func TestMeterUnclosedReads(t *testing.T) {
	cfg := Config{ActivePower: 4, IdlePower: 2, StandbyPower: 1}
	m := NewMeter(cfg, core.StateIdle, 0)
	m.Transition(3*time.Second, core.StateActive)
	// The disk has now been active for 5 more virtual seconds, but nothing
	// observed it: reads must not include the open [3s, now) segment.
	if got := m.EnergyIn(core.StateIdle); got != 6 {
		t.Fatalf("EnergyIn(idle) = %v, want 6", got)
	}
	if got := m.EnergyIn(core.StateActive); got != 0 {
		t.Fatalf("EnergyIn(active) = %v on unclosed meter, want 0 (open segment unsettled)", got)
	}
	if got := m.TimeIn(core.StateActive); got != 0 {
		t.Fatalf("TimeIn(active) = %v on unclosed meter, want 0", got)
	}
	if got := m.Energy(); got != 6 {
		t.Fatalf("Energy() = %v, want 6", got)
	}
	// Breakdown over settled time only: all of it idle.
	bd := m.Breakdown()
	if bd[core.StateIdle] != 1 || bd[core.StateActive] != 0 {
		t.Fatalf("Breakdown() = %v, want all settled time in idle", bd)
	}
	// Closing settles the open segment and the reads catch up.
	if j := m.Close(8 * time.Second); j != 20 {
		t.Fatalf("Close accrual = %v, want 20 (5s active at 4W)", j)
	}
	if got := m.EnergyIn(core.StateActive); got != 20 {
		t.Fatalf("EnergyIn(active) after Close = %v, want 20", got)
	}
	if got := m.TimeIn(core.StateActive); got != 5*time.Second {
		t.Fatalf("TimeIn(active) after Close = %v, want 5s", got)
	}
}

// TestMeterEmptyTimelineBreakdown checks the never-transitioned,
// never-closed meter: no settled time at all, every breakdown fraction
// exactly zero (not NaN).
func TestMeterEmptyTimelineBreakdown(t *testing.T) {
	m := NewMeter(DefaultConfig(), core.StateStandby, 0)
	if got := m.Total(); got != 0 {
		t.Fatalf("Total() = %v on fresh meter, want 0", got)
	}
	for s, f := range m.Breakdown() {
		if f != 0 {
			t.Fatalf("Breakdown()[%v] = %v on fresh meter, want 0", s, f)
		}
	}
	if got := m.Energy(); got != 0 {
		t.Fatalf("Energy() = %v on fresh meter, want 0", got)
	}
}

// TestMeterZeroDurationTransitions drives a full standby→up→idle→down
// cycle where every state change happens at the same instant under a
// zero-transition-time config: all energy arrives as impulses attributed
// to the transition states, no state accrues any time, and the spin
// counters still advance.
func TestMeterZeroDurationTransitions(t *testing.T) {
	cfg := Config{ActivePower: 1, IdlePower: 1, StandbyPower: 0,
		SpinUpEnergy: 135, SpinDownEnergy: 13} // instantaneous transitions
	at := 5 * time.Second
	m := NewMeter(cfg, core.StateStandby, at)

	stateJ, impulseJ := m.Transition(at, core.StateSpinUp)
	if stateJ != 0 || impulseJ != 135 {
		t.Fatalf("standby→spin-up settled (%v, %v), want (0, 135)", stateJ, impulseJ)
	}
	stateJ, impulseJ = m.Transition(at, core.StateIdle)
	if stateJ != 0 || impulseJ != 0 {
		t.Fatalf("spin-up→idle settled (%v, %v), want (0, 0)", stateJ, impulseJ)
	}
	stateJ, impulseJ = m.Transition(at, core.StateSpinDown)
	if stateJ != 0 || impulseJ != 13 {
		t.Fatalf("idle→spin-down settled (%v, %v), want (0, 13)", stateJ, impulseJ)
	}
	m.Transition(at, core.StateStandby)
	m.Close(at)

	if got := m.Energy(); got != 148 {
		t.Fatalf("Energy() = %v, want 148 (impulses only)", got)
	}
	if got := m.EnergyIn(core.StateSpinUp); got != 135 {
		t.Fatalf("EnergyIn(spin-up) = %v, want 135", got)
	}
	if got := m.EnergyIn(core.StateSpinDown); got != 13 {
		t.Fatalf("EnergyIn(spin-down) = %v, want 13", got)
	}
	if m.SpinUps() != 1 || m.SpinDowns() != 1 {
		t.Fatalf("spin counters = %d up / %d down, want 1 / 1", m.SpinUps(), m.SpinDowns())
	}
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		if got := m.TimeIn(s); got != 0 {
			t.Fatalf("TimeIn(%v) = %v, want 0 (zero-duration timeline)", s, got)
		}
	}
}

// TestMeterDoubleClose pins Close idempotence: the first Close settles
// the tail and returns its accrual, the second accrues nothing, returns
// zero, and leaves every total untouched.
func TestMeterDoubleClose(t *testing.T) {
	cfg := Config{ActivePower: 4, IdlePower: 2, StandbyPower: 1}
	m := NewMeter(cfg, core.StateIdle, 0)
	if j := m.Close(10 * time.Second); j != 20 {
		t.Fatalf("first Close = %v, want 20 (10s idle at 2W)", j)
	}
	energy, elapsed := m.Energy(), m.TimeIn(core.StateIdle)
	if j := m.Close(25 * time.Second); j != 0 {
		t.Fatalf("second Close = %v, want 0", j)
	}
	if m.Energy() != energy || m.TimeIn(core.StateIdle) != elapsed {
		t.Fatalf("second Close changed totals: energy %v→%v, idle time %v→%v",
			energy, m.Energy(), elapsed, m.TimeIn(core.StateIdle))
	}
}
