package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestDefaultConfigValid(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	// T_B = (135+13)/9.3 ~= 15.91s.
	tb := cfg.Breakeven()
	want := 148.0 / 9.3
	if got := tb.Seconds(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Breakeven = %.4fs, want %.4fs", got, want)
	}
}

func TestToyConfigMatchesPaperExamples(t *testing.T) {
	t.Parallel()
	cfg := ToyConfig()
	if got := cfg.Breakeven(); got != 5*time.Second {
		t.Errorf("toy breakeven = %v, want 5s", got)
	}
	// Max per-request energy in the toy model is T_B * P_I = 5 units
	// (Section 3.1.1's worked example: max energy of r1 is 5).
	if got := cfg.MaxRequestEnergy(); math.Abs(got-5) > 1e-9 {
		t.Errorf("MaxRequestEnergy = %v, want 5", got)
	}
}

func TestBreakevenOverride(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.FixedBreakeven = 42 * time.Second
	if got := cfg.Breakeven(); got != 42*time.Second {
		t.Errorf("Breakeven = %v, want 42s", got)
	}
}

func TestStatePowerCoversAllStates(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		if p := cfg.StatePower(s); p < 0 || math.IsNaN(p) {
			t.Errorf("StatePower(%v) = %v", s, p)
		}
	}
	if got := cfg.StatePower(core.StateSpinUp); math.Abs(got-13.5) > 1e-9 {
		t.Errorf("spin-up power = %v, want 135J/10s = 13.5W", got)
	}
}

func TestStatePowerPanicsOnInvalid(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("StatePower(0) did not panic")
		}
	}()
	DefaultConfig().StatePower(core.DiskState(0))
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative idle", func(c *Config) { c.IdlePower = -1 }},
		{"negative spin-up energy", func(c *Config) { c.SpinUpEnergy = -5 }},
		{"negative spin-down time", func(c *Config) { c.SpinDownTime = -time.Second }},
		{"idle below standby", func(c *Config) { c.IdlePower = 0.1; c.StandbyPower = 0.8 }},
		{"NaN power", func(c *Config) { c.ActivePower = math.NaN() }},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", cfg)
			}
		})
	}
}

func TestPolicies(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	if d, ok := (TwoCompetitive{Config: cfg}).SpinDownAfter(); !ok || d != cfg.Breakeven() {
		t.Errorf("2CPM SpinDownAfter = (%v,%v), want (%v,true)", d, ok, cfg.Breakeven())
	}
	if _, ok := (AlwaysOn{}).SpinDownAfter(); ok {
		t.Error("AlwaysOn reports a spin-down threshold")
	}
	if d, ok := (FixedThreshold{Idle: time.Minute}).SpinDownAfter(); !ok || d != time.Minute {
		t.Errorf("FixedThreshold SpinDownAfter = (%v,%v)", d, ok)
	}
	for _, p := range []Policy{TwoCompetitive{Config: cfg}, AlwaysOn{}, FixedThreshold{Idle: time.Second}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestReplacementWindow(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	want := cfg.Breakeven() + cfg.SpinUpTime + cfg.SpinDownTime
	if got := cfg.ReplacementWindow(); got != want {
		t.Errorf("ReplacementWindow = %v, want %v", got, want)
	}
}

func TestMeterSimpleTimeline(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	m := NewMeter(cfg, core.StateStandby, 0)
	// standby 10s -> spin-up 10s -> idle 20s -> active 5s -> idle 16s ->
	// spin-down 4s -> standby, close at 80s.
	m.Transition(10*time.Second, core.StateSpinUp)
	m.Transition(20*time.Second, core.StateIdle)
	m.Transition(40*time.Second, core.StateActive)
	m.Transition(45*time.Second, core.StateIdle)
	m.Transition(61*time.Second, core.StateSpinDown)
	m.Transition(65*time.Second, core.StateStandby)
	m.Close(80 * time.Second)

	want := 0.8*10 + 135 + 9.3*20 + 12.8*5 + 9.3*16 + 13 + 0.8*15
	if got := m.Energy(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Energy = %.3f, want %.3f", got, want)
	}
	if m.SpinUps() != 1 || m.SpinDowns() != 1 {
		t.Errorf("spin ops = (%d,%d), want (1,1)", m.SpinUps(), m.SpinDowns())
	}
	if got := m.TimeIn(core.StateIdle); got != 36*time.Second {
		t.Errorf("idle time = %v, want 36s", got)
	}
	if got := m.Total(); got != 80*time.Second {
		t.Errorf("Total = %v, want 80s", got)
	}
}

func TestMeterImpulseEnergyForInstantTransitions(t *testing.T) {
	t.Parallel()
	cfg := ToyConfig()
	cfg.SpinUpEnergy = 7
	cfg.SpinDownEnergy = 3
	m := NewMeter(cfg, core.StateStandby, 0)
	m.Transition(0, core.StateSpinUp)
	m.Transition(0, core.StateIdle) // instantaneous
	m.Transition(10*time.Second, core.StateSpinDown)
	m.Transition(10*time.Second, core.StateStandby)
	m.Close(10 * time.Second)
	want := 7.0 + 10*1 + 3.0
	if got := m.Energy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func TestMeterBreakdownSumsToOne(t *testing.T) {
	t.Parallel()
	m := NewMeter(DefaultConfig(), core.StateStandby, 0)
	m.Transition(3*time.Second, core.StateSpinUp)
	m.Transition(13*time.Second, core.StateIdle)
	m.Close(100 * time.Second)
	sum := 0.0
	for _, f := range m.Breakdown() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("breakdown fractions sum to %v, want 1", sum)
	}
}

func TestMeterPanics(t *testing.T) {
	t.Parallel()
	t.Run("backwards time", func(t *testing.T) {
		t.Parallel()
		m := NewMeter(DefaultConfig(), core.StateIdle, 10*time.Second)
		defer func() {
			if recover() == nil {
				t.Error("no panic on backwards transition")
			}
		}()
		m.Transition(5*time.Second, core.StateActive)
	})
	t.Run("after close", func(t *testing.T) {
		t.Parallel()
		m := NewMeter(DefaultConfig(), core.StateIdle, 0)
		m.Close(time.Second)
		defer func() {
			if recover() == nil {
				t.Error("no panic on transition after Close")
			}
		}()
		m.Transition(2*time.Second, core.StateActive)
	})
	t.Run("invalid state", func(t *testing.T) {
		t.Parallel()
		m := NewMeter(DefaultConfig(), core.StateIdle, 0)
		defer func() {
			if recover() == nil {
				t.Error("no panic on invalid state")
			}
		}()
		m.Transition(time.Second, core.DiskState(99))
	})
}

// Property: energy equals the sum over states of state power times time in
// state (plus impulse energies, absent here), for arbitrary valid timelines.
func TestMeterEnergyDecomposition(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	states := []core.DiskState{
		core.StateStandby, core.StateSpinUp, core.StateIdle,
		core.StateActive, core.StateSpinDown,
	}
	f := func(steps []uint16) bool {
		m := NewMeter(cfg, core.StateStandby, 0)
		now := time.Duration(0)
		for i, s := range steps {
			now += time.Duration(s) * time.Millisecond
			m.Transition(now, states[i%len(states)])
		}
		m.Close(now + time.Second)
		want := 0.0
		for _, s := range states {
			want += cfg.StatePower(s) * m.TimeIn(s).Seconds()
		}
		return math.Abs(m.Energy()-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total accounted time equals close time minus start time.
func TestMeterTotalTimeConservation(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	f := func(steps []uint16, tail uint16) bool {
		m := NewMeter(cfg, core.StateIdle, 0)
		now := time.Duration(0)
		for i, s := range steps {
			now += time.Duration(s) * time.Millisecond
			next := core.DiskState(i%5 + 1)
			m.Transition(now, next)
		}
		end := now + time.Duration(tail)*time.Millisecond
		m.Close(end)
		return m.Total() == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
