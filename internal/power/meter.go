package power

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Meter integrates a single disk's energy over its state timeline and
// counts spin operations. Drive it by calling Transition at every state
// change and Close once at the end of the run.
type Meter struct {
	cfg      Config
	state    core.DiskState
	since    time.Duration
	closed   bool
	elapsed  [core.StateSpinDown + 1]time.Duration
	energy   float64
	energyBy [core.StateSpinDown + 1]float64
	spinUps  int
	spinDn   int
}

// NewMeter returns a meter for a disk that is in the initial state at
// virtual time start (the paper assumes all disks start in standby).
func NewMeter(cfg Config, initial core.DiskState, start time.Duration) *Meter {
	if !initial.Valid() {
		panic(fmt.Sprintf("power: invalid initial state %v", initial))
	}
	return &Meter{cfg: cfg, state: initial, since: start}
}

// State returns the state currently being accumulated.
func (m *Meter) State() core.DiskState { return m.state }

// Transition accrues energy for the state ending now and switches to next.
// Transitioning into spin-up or spin-down with a zero-duration configuration
// still charges the full transition energy as an impulse (the paper's toy
// model has instantaneous transitions but still defines E_up/down).
//
// It returns the energy the transition settles, split for per-state
// attribution: stateJ accrued in the state being left, impulseJ charged
// instantaneously against the transition state being entered (nonzero only
// for zero-duration spin transitions). Observability layers forward the
// pair to event logs and exporters; other callers may ignore it.
func (m *Meter) Transition(now time.Duration, next core.DiskState) (stateJ, impulseJ float64) {
	if m.closed {
		panic("power: Transition on closed Meter")
	}
	if !next.Valid() {
		panic(fmt.Sprintf("power: invalid state %v", next))
	}
	if now < m.since {
		panic(fmt.Sprintf("power: time went backwards: %s < %s", now, m.since))
	}
	stateJ = m.accrue(now)
	switch next {
	case core.StateSpinUp:
		m.spinUps++
		if m.cfg.SpinUpTime == 0 {
			impulseJ = m.cfg.SpinUpEnergy
		}
	case core.StateSpinDown:
		m.spinDn++
		if m.cfg.SpinDownTime == 0 {
			impulseJ = m.cfg.SpinDownEnergy
		}
	}
	if impulseJ != 0 {
		m.energy += impulseJ
		m.energyBy[next] += impulseJ
	}
	m.state = next
	m.since = now
	return stateJ, impulseJ
}

// Close accrues energy up to the end-of-run time and returns that final
// accrual (joules settled into the state the disk finished in), so event
// logs can record the tail the last Transition never sees. Further
// transitions panic; Close is idempotent (a second Close accrues and
// returns zero).
func (m *Meter) Close(now time.Duration) float64 {
	if m.closed {
		return 0
	}
	j := m.accrue(now)
	m.since = now
	m.closed = true
	return j
}

func (m *Meter) accrue(now time.Duration) float64 {
	dt := now - m.since
	m.elapsed[m.state] += dt
	j := m.cfg.Accrual(m.state, dt)
	m.energy += j
	m.energyBy[m.state] += j
	return j
}

// Energy returns the accumulated energy in joules.
func (m *Meter) Energy() float64 { return m.energy }

// EnergyIn returns the energy accumulated while in the given state, in
// joules. Zero-duration transition impulses count toward the transition
// state they enter. The per-state values are accumulated with the same
// additions as Energy, so summing them over disks gives exporter totals
// that match the report aggregates exactly.
func (m *Meter) EnergyIn(s core.DiskState) float64 {
	if !s.Valid() {
		panic(fmt.Sprintf("power: invalid state %v", s))
	}
	return m.energyBy[s]
}

// SpinUps returns the number of spin-up operations so far.
func (m *Meter) SpinUps() int { return m.spinUps }

// SpinDowns returns the number of spin-down operations so far.
func (m *Meter) SpinDowns() int { return m.spinDn }

// TimeIn returns the accumulated time spent in the given state.
func (m *Meter) TimeIn(s core.DiskState) time.Duration {
	if !s.Valid() {
		panic(fmt.Sprintf("power: invalid state %v", s))
	}
	return m.elapsed[s]
}

// Total returns the total accounted time across all states.
func (m *Meter) Total() time.Duration {
	var t time.Duration
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		t += m.elapsed[s]
	}
	return t
}

// Breakdown returns the fraction of accounted time in each state; fractions
// sum to 1 for a non-empty timeline.
func (m *Meter) Breakdown() map[core.DiskState]float64 {
	total := m.Total().Seconds()
	out := make(map[core.DiskState]float64, 5)
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		if total > 0 {
			out[s] = m.elapsed[s].Seconds() / total
		} else {
			out[s] = 0
		}
	}
	return out
}
