// Package power models disk power consumption and power-management
// policies.
//
// It implements the paper's 2CPM scheme (Section 1): a disk is spun down
// after an idle period of length T_B = E_up/down / P_I, the breakeven time,
// which is 2-competitive against an offline-optimal power manager. It also
// provides an always-on policy (the paper's normalization baseline) and a
// per-disk energy Meter that integrates power over the disk state timeline.
package power

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// Config holds the electrical and mechanical power parameters of a disk
// (the paper's P = {T_up/down, E_up/down, T_B, P_I}, Figure 5).
//
// The zero value is not meaningful; use DefaultConfig, ToyConfig or fill all
// fields. FixedBreakeven, when non-zero, overrides the derived breakeven
// time (the paper's toy examples use T_B = 5 s with zero transition energy).
type Config struct {
	ActivePower  float64 // watts while servicing an I/O
	IdlePower    float64 // watts while spinning with no I/O (P_I)
	StandbyPower float64 // watts while spun down

	SpinUpEnergy   float64       // joules for standby -> idle (E_up)
	SpinDownEnergy float64       // joules for idle -> standby (E_down)
	SpinUpTime     time.Duration // T_up
	SpinDownTime   time.Duration // T_down

	// FixedBreakeven overrides the derived breakeven time when > 0.
	FixedBreakeven time.Duration
}

// DefaultConfig returns the power parameters used by the evaluation
// (Section 4): Seagate Cheetah 15K.5 mechanics with Seagate Barracuda-class
// power figures, since the Cheetah documents omit standby power.
func DefaultConfig() Config {
	return Config{
		ActivePower:    12.8,
		IdlePower:      9.3,
		StandbyPower:   0.8,
		SpinUpEnergy:   135,
		SpinDownEnergy: 13,
		SpinUpTime:     10 * time.Second,
		SpinDownTime:   4 * time.Second,
	}
}

// ToyConfig returns the simplified model of the paper's Section 2.3
// examples: 1 W in idle/active, free and instantaneous spin transitions, and
// a fixed 5-second breakeven time.
func ToyConfig() Config {
	return Config{
		ActivePower:    1,
		IdlePower:      1,
		StandbyPower:   0,
		FixedBreakeven: 5 * time.Second,
	}
}

// UpDownEnergy returns E_up/down = E_up + E_down, the energy of one full
// spin-down/spin-up cycle.
func (c Config) UpDownEnergy() float64 { return c.SpinUpEnergy + c.SpinDownEnergy }

// Breakeven returns the idleness threshold T_B. Unless overridden by
// FixedBreakeven it is E_up/down / P_I, the optimal deterministic threshold
// [Irani et al.], which makes 2CPM 2-competitive.
func (c Config) Breakeven() time.Duration {
	if c.FixedBreakeven > 0 {
		return c.FixedBreakeven
	}
	if c.IdlePower <= 0 {
		return 0
	}
	return time.Duration(c.UpDownEnergy() / c.IdlePower * float64(time.Second))
}

// ReplacementWindow returns T_B + T_up + T_down: if the next request on a
// disk arrives within this window of the previous one, keeping the disk idle
// is no more expensive than cycling it down and up (Lemma 1, cases II/III).
func (c Config) ReplacementWindow() time.Duration {
	return c.Breakeven() + c.SpinUpTime + c.SpinDownTime
}

// MaxRequestEnergy returns the worst-case energy attributable to one request
// under 2CPM: E_up + E_down + T_B * P_I (Section 3.1.1). Request savings
// X(i,j,k) are measured against this ceiling.
func (c Config) MaxRequestEnergy() float64 {
	return c.UpDownEnergy() + c.Breakeven().Seconds()*c.IdlePower
}

// StatePower returns the power draw, in watts, for a disk state. Spin
// transitions draw their transition energy spread uniformly over the
// transition time; with instantaneous transitions the energy is accounted
// for separately by the Meter as an impulse.
func (c Config) StatePower(s core.DiskState) float64 {
	switch s {
	case core.StateActive:
		return c.ActivePower
	case core.StateIdle:
		return c.IdlePower
	case core.StateStandby:
		return c.StandbyPower
	case core.StateSpinUp:
		if c.SpinUpTime > 0 {
			return c.SpinUpEnergy / c.SpinUpTime.Seconds()
		}
		return 0
	case core.StateSpinDown:
		if c.SpinDownTime > 0 {
			return c.SpinDownEnergy / c.SpinDownTime.Seconds()
		}
		return 0
	default:
		panic(fmt.Sprintf("power: invalid state %v", s))
	}
}

// Accrual returns the energy, in joules, a disk accrues by spending dt in
// state s: StatePower(s) * dt seconds. It is the Meter's integration step,
// exported so runtime verifiers (internal/obs/monitor) can recompute every
// accrual from the state timeline with bit-identical floating-point
// operations.
func (c Config) Accrual(s core.DiskState, dt time.Duration) float64 {
	return c.StatePower(s) * dt.Seconds()
}

// Validate reports whether the configuration is physically sensible.
func (c Config) Validate() error {
	switch {
	case c.ActivePower < 0 || c.IdlePower < 0 || c.StandbyPower < 0:
		return fmt.Errorf("power: negative power in %+v", c)
	case c.SpinUpEnergy < 0 || c.SpinDownEnergy < 0:
		return fmt.Errorf("power: negative transition energy in %+v", c)
	case c.SpinUpTime < 0 || c.SpinDownTime < 0:
		return fmt.Errorf("power: negative transition time in %+v", c)
	case c.IdlePower < c.StandbyPower:
		return fmt.Errorf("power: idle power %.2f below standby power %.2f", c.IdlePower, c.StandbyPower)
	case math.IsNaN(c.ActivePower) || math.IsNaN(c.IdlePower) || math.IsNaN(c.StandbyPower):
		return fmt.Errorf("power: NaN power in %+v", c)
	}
	return nil
}

// Policy decides how long a disk may stay idle before being spun down.
type Policy interface {
	// SpinDownAfter returns the idle duration after which the disk should
	// spin down. ok=false means the disk never spins down (always-on).
	SpinDownAfter() (idle time.Duration, ok bool)
	// Name identifies the policy in reports.
	Name() string
}

// TwoCompetitive is the 2CPM policy: spin down after the breakeven time.
type TwoCompetitive struct {
	Config Config
}

// SpinDownAfter implements Policy.
func (p TwoCompetitive) SpinDownAfter() (time.Duration, bool) {
	return p.Config.Breakeven(), true
}

// Name implements Policy.
func (TwoCompetitive) Name() string { return "2CPM" }

// AlwaysOn never spins disks down; it is the paper's normalization baseline.
type AlwaysOn struct{}

// SpinDownAfter implements Policy.
func (AlwaysOn) SpinDownAfter() (time.Duration, bool) { return 0, false }

// Name implements Policy.
func (AlwaysOn) Name() string { return "always-on" }

// FixedThreshold spins down after an arbitrary idle duration, for ablations
// of the breakeven choice.
type FixedThreshold struct {
	Idle time.Duration
}

// SpinDownAfter implements Policy.
func (p FixedThreshold) SpinDownAfter() (time.Duration, bool) { return p.Idle, true }

// Name implements Policy.
func (p FixedThreshold) Name() string { return fmt.Sprintf("fixed(%s)", p.Idle) }

var (
	_ Policy = TwoCompetitive{}
	_ Policy = AlwaysOn{}
	_ Policy = FixedThreshold{}
)
