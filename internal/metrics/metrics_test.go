package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestResponseTimesEmpty(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	if r.Count() != 0 || r.Mean() != 0 || r.Max() != 0 {
		t.Error("zero-value ResponseTimes not empty")
	}
	if got := r.Percentile(50); got != 0 {
		t.Errorf("Percentile on empty = %v", got)
	}
	ccdf := r.CCDF([]time.Duration{time.Second})
	if ccdf[0] != 0 {
		t.Errorf("CCDF on empty = %v", ccdf)
	}
}

func TestResponseTimesMeanMax(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	for _, d := range []time.Duration{time.Second, 3 * time.Second, 2 * time.Second} {
		r.Add(d)
	}
	if got := r.Mean(); got != 2*time.Second {
		t.Errorf("Mean = %v, want 2s", got)
	}
	if got := r.Max(); got != 3*time.Second {
		t.Errorf("Max = %v, want 3s", got)
	}
}

func TestResponseTimesPercentile(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{90, 90 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, tc := range tests {
		if got := r.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestResponseTimesPercentilePanics(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	r.Add(time.Second)
	for _, p := range []float64{0, -5, 101, math.NaN()} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			r.Percentile(p)
		}()
	}
}

func TestResponseTimesNegativePanics(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	r.Add(-time.Second)
}

func TestCCDF(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	for _, d := range []time.Duration{1, 2, 3, 4} {
		r.Add(d * time.Second)
	}
	got := r.CCDF([]time.Duration{0, time.Second, 2 * time.Second, 4 * time.Second, 5 * time.Second})
	want := []float64{1, 0.75, 0.5, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CCDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCCDFIsMonotoneNonIncreasing(t *testing.T) {
	t.Parallel()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var r ResponseTimes
		for i := 0; i < int(n)+1; i++ {
			r.Add(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		ts := LogSpace(time.Millisecond, 20*time.Second, 30)
		ccdf := r.CCDF(ts)
		for i := 1; i < len(ccdf); i++ {
			if ccdf[i] > ccdf[i-1] {
				return false
			}
		}
		return ccdf[0] <= 1 && ccdf[len(ccdf)-1] >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSpace(t *testing.T) {
	t.Parallel()
	ts := LogSpace(time.Millisecond, time.Second, 4)
	if len(ts) != 4 {
		t.Fatalf("len = %d", len(ts))
	}
	if ts[0] != time.Millisecond || ts[3] != time.Second {
		t.Errorf("endpoints = %v, %v", ts[0], ts[3])
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("not increasing at %d: %v", i, ts)
		}
	}
}

func TestLogSpacePanicsOnBadArgs(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		lo, hi time.Duration
		n      int
	}{
		{0, time.Second, 4},
		{time.Second, time.Second, 4},
		{time.Millisecond, time.Second, 1},
	} {
		tc := tc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogSpace(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			LogSpace(tc.lo, tc.hi, tc.n)
		}()
	}
}

func TestNormalize(t *testing.T) {
	t.Parallel()
	got := Normalize([]float64{2, 4, 8}, 4)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if v := Normalize([]float64{1}, 0)[0]; !math.IsInf(v, 1) {
		t.Errorf("zero base: got %v, want +Inf", v)
	}
}

func TestMoments(t *testing.T) {
	t.Parallel()
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Errorf("N = %d", m.N())
	}
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", m.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if math.Abs(m.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", m.Variance(), 32.0/7)
	}
	if math.Abs(m.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v", m.Stddev())
	}
}

func TestMomentsFewSamples(t *testing.T) {
	t.Parallel()
	var m Moments
	if m.Variance() != 0 {
		t.Error("variance of empty != 0")
	}
	m.Add(3)
	if m.Variance() != 0 {
		t.Error("variance of single sample != 0")
	}
	if m.Mean() != 3 {
		t.Errorf("Mean = %v", m.Mean())
	}
}

// Property: Moments matches a two-pass computation.
func TestMomentsMatchesTwoPass(t *testing.T) {
	t.Parallel()
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var m Moments
		sum := 0.0
		for _, x := range clean {
			m.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(clean)-1)
		return math.Abs(m.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(m.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
