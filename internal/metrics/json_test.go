package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// TestResponseTimesJSONRoundTrip pins the persistence format the sweep
// cache's disk tier relies on: samples survive a marshal/unmarshal cycle
// bit-exactly, in order, and the restored value answers every summary
// query identically.
func TestResponseTimesJSONRoundTrip(t *testing.T) {
	var r ResponseTimes
	for _, d := range []time.Duration{
		7 * time.Millisecond, time.Microsecond, 0,
		3*time.Second + 1, time.Nanosecond, 7 * time.Millisecond,
	} {
		r.Add(d)
	}
	_ = r.Percentile(90) // force sorted state; it must not leak into the encoding

	raw, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	var back ResponseTimes
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != r.Count() {
		t.Fatalf("count %d != %d", back.Count(), r.Count())
	}
	for i := range r.samples {
		if r.samples[i] != back.samples[i] {
			t.Fatalf("sample %d: %v != %v", i, r.samples[i], back.samples[i])
		}
	}
	if r.Mean() != back.Mean() || r.Max() != back.Max() || r.Percentile(90) != back.Percentile(90) {
		t.Fatal("summary statistics differ after round trip")
	}

	// A second marshal of the restored value must be byte-identical, so
	// repeated cache writes are stable.
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("re-encoding unstable:\n%s\n%s", raw, raw2)
	}
}

func TestResponseTimesUnmarshalResetsState(t *testing.T) {
	var r ResponseTimes
	r.Add(time.Second)
	if err := json.Unmarshal([]byte(`[5,3]`), &r); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 2 || r.Max() != 5 {
		t.Fatalf("unmarshal did not replace samples: count=%d max=%v", r.Count(), r.Max())
	}
	if got := r.Percentile(100); got != 5 {
		t.Fatalf("percentile on restored samples = %v, want 5ns", got)
	}
}
