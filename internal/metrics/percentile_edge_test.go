package metrics

import (
	"testing"
	"time"
)

// TestPercentileSingleSample pins the nearest-rank method's degenerate
// case: with one sample, every percentile is that sample.
func TestPercentileSingleSample(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	r.Add(7 * time.Millisecond)
	for _, p := range []float64{0.001, 1, 50, 99, 99.999, 100} {
		if got := r.Percentile(p); got != 7*time.Millisecond {
			t.Errorf("Percentile(%v) = %v, want 7ms", p, got)
		}
	}
	if got := r.Mean(); got != 7*time.Millisecond {
		t.Errorf("Mean = %v, want 7ms", got)
	}
	if got := r.Max(); got != 7*time.Millisecond {
		t.Errorf("Max = %v, want 7ms", got)
	}
}

// TestPercentileAllEqualSamples: identical samples collapse the whole
// distribution to one value at every percentile.
func TestPercentileAllEqualSamples(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	for i := 0; i < 1000; i++ {
		r.Add(42 * time.Microsecond)
	}
	for _, p := range []float64{0.1, 25, 50, 75, 95, 99, 100} {
		if got := r.Percentile(p); got != 42*time.Microsecond {
			t.Errorf("Percentile(%v) = %v, want 42µs", p, got)
		}
	}
	if got := r.Mean(); got != 42*time.Microsecond {
		t.Errorf("Mean = %v, want 42µs", got)
	}
}

// TestPercentileRankFloor: tiny percentiles floor the nearest rank at the
// smallest sample rather than indexing below the population.
func TestPercentileRankFloor(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	r.Add(5 * time.Millisecond)
	r.Add(1 * time.Millisecond)
	r.Add(3 * time.Millisecond)
	if got := r.Percentile(0.0001); got != time.Millisecond {
		t.Errorf("Percentile(0.0001) = %v, want the minimum 1ms", got)
	}
	if got := r.Percentile(100); got != 5*time.Millisecond {
		t.Errorf("Percentile(100) = %v, want the maximum 5ms", got)
	}
	// Nearest rank with n=3: p=34 → rank ceil(1.02)=2 → 3ms.
	if got := r.Percentile(34); got != 3*time.Millisecond {
		t.Errorf("Percentile(34) = %v, want the median 3ms", got)
	}
}

// TestPercentileZeroDurationSamples: zero is a legal latency (instant
// completion) and must survive percentile queries.
func TestPercentileZeroDurationSamples(t *testing.T) {
	t.Parallel()
	var r ResponseTimes
	r.Add(0)
	r.Add(0)
	r.Add(time.Second)
	if got := r.Percentile(50); got != 0 {
		t.Errorf("Percentile(50) = %v, want 0", got)
	}
	if got := r.Percentile(100); got != time.Second {
		t.Errorf("Percentile(100) = %v, want 1s", got)
	}
}
