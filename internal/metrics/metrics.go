// Package metrics collects and summarizes simulation measurements: request
// response times (means, percentiles, inverse CDFs for the paper's Figures
// 8, 12, 13 and 16), scalar series normalization (Figures 6, 7, 14, 15) and
// running moments.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// ResponseTimes accumulates request response-time samples. The zero value
// is ready to use.
type ResponseTimes struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (r *ResponseTimes) Add(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative response time %s", d))
	}
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Grow preallocates capacity for n additional samples, so a run that knows
// its request count up front records every sample without growing the
// buffer.
func (r *ResponseTimes) Grow(n int) {
	if free := cap(r.samples) - len(r.samples); free < n {
		grown := make([]time.Duration, len(r.samples), len(r.samples)+n)
		copy(grown, r.samples)
		r.samples = grown
	}
}

// Count returns the number of samples.
func (r *ResponseTimes) Count() int { return len(r.samples) }

// Append concatenates another accumulator's samples (in their insertion
// order) onto r. Sharded runs use it to combine per-shard sample sets when
// no canonical global order is being maintained.
func (r *ResponseTimes) Append(o *ResponseTimes) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	r.samples = append(r.samples, o.samples...)
	r.sorted = false
}

// MarshalJSON encodes the samples (in insertion order, nanoseconds) so
// cached results round-trip bit-exactly; the sorted flag is derived state
// and is not persisted.
func (r ResponseTimes) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.samples)
}

// UnmarshalJSON restores samples written by MarshalJSON.
func (r *ResponseTimes) UnmarshalJSON(b []byte) error {
	r.samples = nil
	r.sorted = false
	return json.Unmarshal(b, &r.samples)
}

// Mean returns the average sample, or zero when empty.
func (r *ResponseTimes) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range r.samples {
		total += d
	}
	return total / time.Duration(len(r.samples))
}

// Max returns the largest sample, or zero when empty.
func (r *ResponseTimes) Max() time.Duration {
	var m time.Duration
	for _, d := range r.samples {
		if d > m {
			m = d
		}
	}
	return m
}

func (r *ResponseTimes) sort() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or zero when empty.
func (r *ResponseTimes) Percentile(p float64) time.Duration {
	if p <= 0 || p > 100 || math.IsNaN(p) {
		panic(fmt.Sprintf("metrics: percentile %v outside (0,100]", p))
	}
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	return r.samples[rank-1]
}

// CCDF returns P[response time > x] for each threshold, reproducing the
// paper's inverse cumulative distribution plots (Figure 12).
func (r *ResponseTimes) CCDF(thresholds []time.Duration) []float64 {
	r.sort()
	out := make([]float64, len(thresholds))
	n := float64(len(r.samples))
	if n == 0 {
		return out
	}
	for i, x := range thresholds {
		// Index of first sample > x.
		idx := sort.Search(len(r.samples), func(k int) bool { return r.samples[k] > x })
		out[i] = float64(len(r.samples)-idx) / n
	}
	return out
}

// LogSpace returns n thresholds geometrically spaced between lo and hi
// inclusive, for CCDF plots on log axes.
func LogSpace(lo, hi time.Duration, n int) []time.Duration {
	if n < 2 || lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: invalid LogSpace(%s,%s,%d)", lo, hi, n))
	}
	out := make([]time.Duration, n)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(n-1))
	x := float64(lo)
	for i := 0; i < n; i++ {
		out[i] = time.Duration(x)
		x *= ratio
	}
	out[n-1] = hi
	return out
}

// Normalize divides each value by base; a zero or invalid base yields NaNs,
// surfacing bad baselines instead of hiding them.
func Normalize(vals []float64, base float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / base
	}
	return out
}

// Moments accumulates streaming mean and variance (Welford's algorithm).
// The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (m *Moments) Add(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the observation count.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (zero when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the sample variance (zero for fewer than two samples).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Stddev returns the sample standard deviation.
func (m *Moments) Stddev() float64 { return math.Sqrt(m.Variance()) }
