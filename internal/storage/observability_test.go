package storage

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/sched"
)

// traceRun executes one seeded heuristic run with a streaming JSONL tracer
// and returns the drained log bytes.
func traceRun(t *testing.T, schedule core.Schedule) []byte {
	t.Helper()
	reqs, p := smallWorkload(t, 10, 80, 600, 3, 5)
	var buf bytes.Buffer
	tr := obs.NewTracer(512) // smaller than the event count: exercises mid-run flushes
	tr.SetSink(&buf, false)
	_, err := RunOnline(smallConfig(10), p.Locations,
		sched.Precomputed{Label: "mwis", Assignments: schedule}, reqs, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEventLogByteIdenticalAcrossWorkers is the PR's determinism
// guarantee: building the MWIS schedule with 1 or 8 pipeline workers and
// tracing the resulting run produces byte-identical JSONL event logs.
func TestEventLogByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 10, 80, 600, 3, 5)
	cfg := smallConfig(10)
	solve := func(workers int) core.Schedule {
		s, _, err := offline.SolveRefined(reqs, p.Locations, cfg.Power, offline.BuildOptions{
			MaxSuccessors: 4, MaxNodes: 1_000_000, Workers: workers,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	log1 := traceRun(t, solve(1))
	log8 := traceRun(t, solve(8))
	if len(log1) == 0 {
		t.Fatal("empty event log")
	}
	if !bytes.Equal(log1, log8) {
		t.Fatalf("event logs differ across worker counts: %d vs %d bytes", len(log1), len(log8))
	}
	// The canonical encoding round-trips.
	evs, err := obs.ReadJSONL(bytes.NewReader(log1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, ev := range evs {
		buf.Write(obs.AppendJSONL(nil, ev))
	}
	if !bytes.Equal(buf.Bytes(), log1) {
		t.Fatal("JSONL round-trip is not byte-identical")
	}
}

// TestCollectorMatchesResultExactly pins the acceptance criterion that the
// exporter's end-of-run values equal the report aggregates: per-state
// energy matches Result.EnergyByState bit-for-bit, and the counters match
// the Result counts.
func TestCollectorMatchesResultExactly(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 10, 80, 600, 2, 7)
	c := obs.NewCollector()
	res, err := RunOnline(smallConfig(10), p.Locations,
		sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(smallConfig(10).Power)},
		reqs, WithCollector(c))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewRunMetrics(c) // same registry: handles to the run's series
	var sum float64
	for s := core.StateStandby; s <= core.StateSpinDown; s++ {
		if got, want := m.Energy[s].Value(), res.EnergyByState[s]; got != want {
			t.Errorf("exported %v energy = %v, want exactly %v", s, got, want)
		}
		sum += res.EnergyByState[s]
	}
	if math.Abs(sum-res.Energy) > 1e-6*res.Energy {
		t.Errorf("per-state energy sum %v far from total %v", sum, res.Energy)
	}
	if got := m.SpinUps.Value(); got != float64(res.SpinUps) {
		t.Errorf("exported spin-ups = %v, want %d", got, res.SpinUps)
	}
	if got := m.SpinDowns.Value(); got != float64(res.SpinDowns) {
		t.Errorf("exported spin-downs = %v, want %d", got, res.SpinDowns)
	}
	if got := m.Served.Value(); got != float64(res.Served) {
		t.Errorf("exported served = %v, want %d", got, res.Served)
	}
	if got := m.Decisions.Value(); got != float64(len(reqs)) {
		t.Errorf("exported decisions = %v, want %d", got, len(reqs))
	}
	if got := m.Response.Count(); got != uint64(res.Response.Count()) {
		t.Errorf("exported response count = %v, want %d", got, res.Response.Count())
	}
	if got := m.SimTime.Value(); got != res.Horizon.Seconds() {
		t.Errorf("exported sim time = %v, want %v", got, res.Horizon.Seconds())
	}
	if m.EventsFired.Value() <= 0 {
		t.Error("no kernel events exported")
	}
}

// TestTracerLifecycleEventsConsistent checks the traced lifecycle against
// the run result: one arrive per request, completes matching served, and
// power transitions alternating legally per disk.
func TestTracerLifecycleEventsConsistent(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 8, 60, 400, 2, 3)
	tr := obs.NewTracer(1 << 16)
	res, err := RunOnline(smallConfig(8), p.Locations,
		sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(smallConfig(8).Power), Tracer: tr},
		reqs, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.Kind]int{}
	var last time.Duration
	var lastSeq uint64
	for i, ev := range tr.Events() {
		counts[ev.Kind]++
		if i > 0 && (ev.At < last || (ev.At == last && ev.Seq <= lastSeq)) {
			t.Fatalf("events out of (time, seq) order at %d", i)
		}
		last, lastSeq = ev.At, ev.Seq
	}
	if counts[obs.KindArrive] != len(reqs) {
		t.Errorf("arrive events = %d, want %d", counts[obs.KindArrive], len(reqs))
	}
	if counts[obs.KindComplete] != res.Served {
		t.Errorf("complete events = %d, want %d", counts[obs.KindComplete], res.Served)
	}
	if counts[obs.KindDecision] != len(reqs) {
		t.Errorf("decision events = %d, want %d", counts[obs.KindDecision], len(reqs))
	}
	if counts[obs.KindDispatch] != len(reqs)-res.Dropped {
		t.Errorf("dispatch events = %d, want %d", counts[obs.KindDispatch], len(reqs)-res.Dropped)
	}
	if counts[obs.KindPower] == 0 {
		t.Error("no power transition events")
	}
	// Power events' energy deltas sum to the run's total energy: every
	// joule is attributed to some transition or the final Close accrual.
	var powerJ float64
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindPower {
			powerJ += ev.EnergyJ
		}
	}
	if powerJ <= 0 || powerJ > res.Energy {
		t.Errorf("power-event energy %v outside (0, %v]", powerJ, res.Energy)
	}
}
