package storage

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/sched"
)

// These tests cross-validate the two energy models — the event-driven
// simulator (reactive spin-ups) and the analytic offline evaluator
// (prescient spin-ups) — on crafted single-disk workloads where the models
// must coincide up to service energy: for gaps inside the breakeven window
// both keep the disk idle for the whole gap, and for gaps beyond the
// replacement window both pay exactly one power cycle plus the same
// standby time.

func crossValidate(t *testing.T, gaps []time.Duration) {
	t.Helper()
	cfg := smallConfig(1)
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	var reqs []core.Request
	// Start past T_up so the analytic model's prescient lead-in spin-up is
	// not clipped at time zero.
	now := time.Minute
	for i := 0; i <= len(gaps); i++ {
		if i > 0 {
			now += gaps[i-1]
		}
		reqs = append(reqs, core.Request{ID: core.RequestID(i), Block: 0, Arrival: now, LBA: 0, Size: 512})
	}
	schedule := make(core.Schedule, len(reqs))

	res, err := RunOnline(cfg, loc, sched.Precomputed{Assignments: schedule}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	perDisk, err := offline.Breakdown(reqs, schedule, cfg.Power, 1, res.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	analytic := offline.BreakdownEnergy(perDisk)

	// The models differ by: (a) service time billed at active power in the
	// simulator (tiny 512 B reads); (b) requests arriving during a reactive
	// spin-up are served back to back once the disk is up, so short
	// inter-request gaps that the prescient model idles through are spent
	// in standby instead — worth at most (P_I - P_s) per absorbed gap
	// second; (c) sub-second horizon truncation of the final spin-down.
	activeBudget := res.PerDisk[0].TimeIn[core.StateActive].Seconds() * cfg.Power.ActivePower
	absorbed := 0.0
	for _, g := range gaps {
		if g < cfg.Power.ReplacementWindow() {
			absorbed += g.Seconds()
		}
	}
	tolerance := activeBudget + absorbed*(cfg.Power.IdlePower-cfg.Power.StandbyPower) + cfg.Power.SpinDownEnergy + 1
	if diff := math.Abs(res.Energy - analytic); diff > tolerance {
		t.Errorf("simulated %.1f J vs analytic %.1f J: |diff| %.1f exceeds tolerance %.1f",
			res.Energy, analytic, diff, tolerance)
	}
}

func TestCrossValidateShortGapsStayIdle(t *testing.T) {
	t.Parallel()
	// All gaps well under the breakeven: one spin-up, idle throughout.
	gaps := make([]time.Duration, 30)
	for i := range gaps {
		gaps[i] = 3 * time.Second
	}
	crossValidate(t, gaps)
}

func TestCrossValidateLongGapsCycle(t *testing.T) {
	t.Parallel()
	// All gaps far beyond the replacement window: a full cycle per gap.
	gaps := make([]time.Duration, 10)
	for i := range gaps {
		gaps[i] = 5 * time.Minute
	}
	crossValidate(t, gaps)
}

func TestCrossValidateMixedGaps(t *testing.T) {
	t.Parallel()
	gaps := []time.Duration{
		2 * time.Second, 5 * time.Minute, time.Second, time.Second,
		10 * time.Minute, 4 * time.Second, 7 * time.Minute,
	}
	crossValidate(t, gaps)
}

func TestCrossValidateSpinCounts(t *testing.T) {
	t.Parallel()
	// Spin-up counts must agree exactly for clearly separated cycles.
	cfg := smallConfig(1)
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	var reqs []core.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, core.Request{
			ID: core.RequestID(i), Block: 0,
			Arrival: time.Minute + time.Duration(i)*10*time.Minute,
		})
	}
	schedule := make(core.Schedule, len(reqs))
	res, err := RunOnline(cfg, loc, sched.Precomputed{Assignments: schedule}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	perDisk, err := offline.Breakdown(reqs, schedule, cfg.Power, 1, res.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpinUps != perDisk[0].SpinUps {
		t.Errorf("simulated spin-ups %d != analytic %d", res.SpinUps, perDisk[0].SpinUps)
	}
	if res.SpinUps != 6 {
		t.Errorf("spin-ups = %d, want 6 (one per isolated request)", res.SpinUps)
	}
}
