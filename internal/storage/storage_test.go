package storage

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

func smallConfig(numDisks int) Config {
	p := power.DefaultConfig()
	return Config{
		NumDisks: numDisks,
		Power:    p,
		Mech:     diskmodel.Cheetah15K5(),
		Policy:   power.TwoCompetitive{Config: p},
	}
}

func smallWorkload(t *testing.T, numDisks, numBlocks, numReqs, rf int, seed int64) ([]core.Request, *placement.Placement) {
	t.Helper()
	p, err := placement.Generate(placement.GenerateConfig{
		NumDisks: numDisks, NumBlocks: numBlocks,
		ReplicationFactor: rf, ZipfExponent: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.CelloLike(numReqs, numBlocks, seed)
	return reqs, p
}

func TestRunOnlineStaticBasics(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 8, 50, 300, 2, 1)
	res, err := RunOnline(smallConfig(8), p.Locations, sched.Static{Locations: p.Locations}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 300 || res.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d", res.Served, res.Dropped)
	}
	if res.Energy <= 0 {
		t.Error("no energy accounted")
	}
	if res.Response.Count() != 300 {
		t.Errorf("response samples = %d", res.Response.Count())
	}
	if res.SpinUps == 0 {
		t.Error("no spin-ups despite standby start")
	}
	if res.Scheduler != "static" {
		t.Errorf("scheduler name = %q", res.Scheduler)
	}
	// Per-disk accounted time must equal the horizon for every disk.
	for _, st := range res.PerDisk {
		if st.Total() != res.Horizon {
			t.Fatalf("disk %d accounted %v of horizon %v", st.Disk, st.Total(), res.Horizon)
		}
	}
	// Energy conservation: result total equals per-disk sum.
	sum := 0.0
	for _, st := range res.PerDisk {
		sum += st.Energy
	}
	if math.Abs(sum-res.Energy) > 1e-6 {
		t.Errorf("energy sum %v != total %v", sum, res.Energy)
	}
}

func TestRunOnline2CPMBeatsAlwaysOnBaseline(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 10, 80, 400, 1, 2)
	res, err := RunOnline(smallConfig(10), p.Locations, sched.Static{Locations: p.Locations}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.NormalizedEnergy(); n >= 1 {
		t.Errorf("normalized energy = %.3f, want < 1 (2CPM must beat always-on)", n)
	}
}

func TestRunOnlineAlwaysOnPolicyMatchesBaselineEnergy(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 6, 40, 200, 1, 3)
	cfg := smallConfig(6)
	cfg.Policy = power.AlwaysOn{}
	cfg.InitialState = core.StateIdle
	res, err := RunOnline(cfg, p.Locations, sched.Static{Locations: p.Locations}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// All disks idle except brief active windows; energy should be within
	// a few percent of the analytic always-on baseline (active draws more
	// than idle, so slightly above).
	ratio := res.Energy / res.AlwaysOnEnergy
	if ratio < 1 || ratio > 1.05 {
		t.Errorf("always-on ratio = %.4f, want [1, 1.05]", ratio)
	}
	if res.SpinUps != 0 {
		t.Errorf("spin-ups = %d under always-on", res.SpinUps)
	}
}

func TestRunOnlineHeuristicSavesEnergyWithReplication(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 12, 100, 600, 3, 4)
	cfg := smallConfig(12)
	static, err := RunOnline(cfg, p.Locations, sched.Static{Locations: p.Locations}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Use the pure-energy cost (alpha=1): at this small scale the paper's
	// balanced alpha=0.2 trades some energy back for response time; the
	// energy-dominance claim is only robust for the energy-only setting.
	h := sched.Heuristic{Locations: p.Locations, Cost: sched.CostConfig{Alpha: 1, Beta: 100, Power: cfg.Power}}
	heur, err := RunOnline(cfg, p.Locations, h, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if heur.Energy >= static.Energy {
		t.Errorf("heuristic energy %.0f J not below static %.0f J at rf=3", heur.Energy, static.Energy)
	}
}

func TestRunBatchWSC(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 12, 100, 500, 3, 5)
	cfg := smallConfig(12)
	w := sched.WSC{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power)}
	res, err := RunBatch(cfg, p.Locations, w, reqs, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 500 {
		t.Fatalf("served = %d", res.Served)
	}
	// Batch queueing delay: every response is at least the distance to its
	// batch boundary... at minimum positive and the mean should exceed the
	// bare service time.
	if res.Response.Mean() < time.Millisecond {
		t.Errorf("mean response %v implausibly small for batched scheduling", res.Response.Mean())
	}
}

func TestRunBatchRejectsBadInterval(t *testing.T) {
	t.Parallel()
	_, p := smallWorkload(t, 4, 10, 10, 1, 6)
	w := sched.WSC{Locations: p.Locations, Cost: sched.DefaultCost(power.DefaultConfig())}
	if _, err := RunBatch(smallConfig(4), p.Locations, w, nil, 0); err == nil {
		t.Error("accepted zero interval")
	}
}

func TestRunOnlineNilArguments(t *testing.T) {
	t.Parallel()
	if _, err := RunOnline(smallConfig(2), nil, nil, nil); err == nil {
		t.Error("accepted nil scheduler")
	}
}

func TestRunOnlineRejectsInvalidConfig(t *testing.T) {
	t.Parallel()
	cfg := smallConfig(0)
	_, p := smallWorkload(t, 2, 5, 5, 1, 7)
	if _, err := RunOnline(cfg, p.Locations, sched.Static{Locations: p.Locations}, nil); err == nil {
		t.Error("accepted zero disks")
	}
}

func TestRunOnlineDropsUnplacedBlocks(t *testing.T) {
	t.Parallel()
	loc := func(b core.BlockID) []core.DiskID {
		if b == 0 {
			return nil
		}
		return []core.DiskID{0}
	}
	reqs := []core.Request{
		{ID: 0, Block: 0, Arrival: 0},
		{ID: 1, Block: 1, Arrival: time.Second},
	}
	res, err := RunOnline(smallConfig(2), loc, sched.Static{Locations: loc}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 || res.Served != 1 {
		t.Errorf("dropped/served = %d/%d, want 1/1", res.Dropped, res.Served)
	}
}

// offRealer always returns a disk that is not a replica location.
type offReplica struct{}

func (offReplica) Name() string { return "off-replica" }
func (offReplica) Schedule(core.Request, sched.View) core.DiskID {
	return 1
}

func TestRunOnlineDetectsOffReplicaScheduler(t *testing.T) {
	t.Parallel()
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	reqs := []core.Request{{ID: 0, Block: 0}}
	if _, err := RunOnline(smallConfig(2), loc, offReplica{}, reqs); err == nil {
		t.Error("off-replica scheduling not detected")
	}
}

func TestRunOnlinePrecomputedMWISPipeline(t *testing.T) {
	t.Parallel()
	// Wrap an arbitrary (static) precomputed schedule and check the system
	// honors it exactly.
	loc := func(b core.BlockID) []core.DiskID { return []core.DiskID{core.DiskID(b % 3), core.DiskID((b + 1) % 3)} }
	reqs := []core.Request{
		{ID: 0, Block: 0, Arrival: 0},
		{ID: 1, Block: 1, Arrival: time.Second},
		{ID: 2, Block: 2, Arrival: 2 * time.Second},
	}
	assign := core.Schedule{1, 1, 2}
	res, err := RunOnline(smallConfig(3), loc, sched.Precomputed{Assignments: assign}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDisk[0].Served != 0 || res.PerDisk[1].Served != 2 || res.PerDisk[2].Served != 1 {
		t.Errorf("served per disk = %d/%d/%d, want 0/2/1",
			res.PerDisk[0].Served, res.PerDisk[1].Served, res.PerDisk[2].Served)
	}
}

func TestBatchQueueingDelayExceedsOnline(t *testing.T) {
	t.Parallel()
	// Figure 8's explanation: WSC response > Heuristic response because of
	// the batch interval. Compare the same cost function online vs batched.
	reqs, p := smallWorkload(t, 12, 100, 500, 3, 8)
	cfg := smallConfig(12)
	cost := sched.DefaultCost(cfg.Power)
	on, err := RunOnline(cfg, p.Locations, sched.Heuristic{Locations: p.Locations, Cost: cost}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := RunBatch(cfg, p.Locations, sched.WSC{Locations: p.Locations, Cost: cost}, reqs, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Batch p50 should exceed online p50 by roughly the queueing delay.
	if ba.Response.Percentile(50) <= on.Response.Percentile(50) {
		t.Errorf("batch p50 %v not above online p50 %v",
			ba.Response.Percentile(50), on.Response.Percentile(50))
	}
}

func TestDefaultConfigMatchesPaperSetup(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	if cfg.NumDisks != 180 {
		t.Errorf("NumDisks = %d, want 180 (Section 4.2)", cfg.NumDisks)
	}
	if cfg.Policy == nil || cfg.Policy.Name() != "2CPM" {
		t.Errorf("policy = %v, want 2CPM", cfg.Policy)
	}
	if err := cfg.validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// lateScheduler sends everything to one slow disk so queued work outlives
// the nominal horizon, exercising finish()'s drain path.
func TestFinishDrainsLateCompletions(t *testing.T) {
	t.Parallel()
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	// A big burst at the very end of the trace: service continues past
	// lastArrival + T_B + T_up + T_down.
	var reqs []core.Request
	for i := 0; i < 2000; i++ {
		reqs = append(reqs, core.Request{ID: core.RequestID(i), Block: 0, LBA: int64(i) * 7919, Arrival: time.Second})
	}
	res, err := RunOnline(smallConfig(1), loc, sched.Static{Locations: loc}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2000 {
		t.Fatalf("served = %d", res.Served)
	}
	// 2000 requests at ~6ms each ≈ 12s of service from t≈11s; horizon must
	// cover the drain plus trailing spin-down.
	if res.Horizon < 15*time.Second {
		t.Errorf("horizon = %v, want beyond the drain", res.Horizon)
	}
	for _, st := range res.PerDisk {
		if st.Total() != res.Horizon {
			t.Errorf("disk accounted %v of %v", st.Total(), res.Horizon)
		}
	}
}

func TestWithStateLogStreamsTransitions(t *testing.T) {
	t.Parallel()
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	reqs := []core.Request{{ID: 0, Block: 0, Arrival: time.Second}}
	var buf strings.Builder
	res, err := RunOnline(smallConfig(1), loc, sched.Static{Locations: loc}, reqs,
		WithStateLog(&buf))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// standby->spin-up, spin-up->idle, idle->active, active->idle,
	// idle->spin-down; the spin-down completes just past the accounting
	// horizon (service time pushed the cycle back), so its final
	// transition is not logged.
	if len(lines) != 5 {
		t.Fatalf("logged %d transitions, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], ",0,standby,spin-up") {
		t.Errorf("first transition = %q", lines[0])
	}
	if !strings.HasSuffix(lines[len(lines)-1], "idle,spin-down") {
		t.Errorf("last transition = %q", lines[len(lines)-1])
	}
	if res.Served != 1 {
		t.Errorf("served = %d", res.Served)
	}
}
