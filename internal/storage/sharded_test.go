package storage

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/monitor"
	"repro/internal/sched"
)

// shardCounts returns the shard counts the determinism suite sweeps:
// serial, 1, 2, 4, and GOMAXPROCS (clamped to the disk count, deduplicated).
func shardCounts(numDisks int) []int {
	counts := []int{0, 1, 2, 4, runtime.GOMAXPROCS(0)}
	out := counts[:0]
	seen := map[int]bool{}
	for _, c := range counts {
		if c > numDisks {
			c = numDisks
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// shardedTraceRun executes one seeded heuristic online run at the given
// shard count with a streaming JSONL tracer (shared with the scheduler so
// decisions interleave) and returns the log bytes and result.
func shardedTraceRun(t *testing.T, shards int) ([]byte, *Result) {
	t.Helper()
	reqs, p := smallWorkload(t, 12, 80, 600, 3, 5)
	cfg := smallConfig(12)
	cfg.Shards = shards
	var buf bytes.Buffer
	tr := obs.NewTracer(512) // smaller than the event count: exercises mid-run flushes
	tr.SetSink(&buf, false)
	h := sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
	res, err := RunOnline(cfg, p.Locations, h, reqs, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestShardedTraceByteIdentical is the tentpole determinism guarantee at
// the storage layer: the canonical JSONL event log and the full Result —
// energies bit-for-bit, response-time sample order, per-disk stats — are
// identical across every shard count and across repeated runs.
func TestShardedTraceByteIdentical(t *testing.T) {
	t.Parallel()
	refLog, refRes := shardedTraceRun(t, 0)
	if len(refLog) == 0 {
		t.Fatal("empty event log")
	}
	for _, shards := range shardCounts(12)[1:] {
		log, res := shardedTraceRun(t, shards)
		if !bytes.Equal(log, refLog) {
			t.Fatalf("Shards=%d: event log differs from serial (%d vs %d bytes)", shards, len(log), len(refLog))
		}
		if !reflect.DeepEqual(res, refRes) {
			t.Fatalf("Shards=%d: Result differs from serial:\n%+v\nvs\n%+v", shards, res, refRes)
		}
	}
	// Run-to-run determinism of the parallel path itself.
	logA, _ := shardedTraceRun(t, 4)
	logB, _ := shardedTraceRun(t, 4)
	if !bytes.Equal(logA, logB) {
		t.Fatal("two identical Shards=4 runs diverged")
	}
	// The canonical encoding round-trips.
	evs, err := obs.ReadJSONL(bytes.NewReader(refLog))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, ev := range evs {
		buf.Write(obs.AppendJSONL(nil, ev))
	}
	if !bytes.Equal(buf.Bytes(), refLog) {
		t.Fatal("JSONL round-trip is not byte-identical")
	}
}

// TestShardedBatchByteIdentical covers the batch model: coordinator tick
// events interleaving with shard events must merge identically too.
func TestShardedBatchByteIdentical(t *testing.T) {
	t.Parallel()
	run := func(shards int) []byte {
		reqs, p := smallWorkload(t, 12, 80, 500, 3, 9)
		cfg := smallConfig(12)
		cfg.Shards = shards
		var buf bytes.Buffer
		tr := obs.NewTracer(512)
		tr.SetSink(&buf, false)
		w := sched.WSC{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
		if _, err := RunBatch(cfg, p.Locations, w, reqs, 2*time.Second, WithTracer(tr)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run(0)
	if len(ref) == 0 {
		t.Fatal("empty event log")
	}
	for _, shards := range shardCounts(12)[1:] {
		if got := run(shards); !bytes.Equal(got, ref) {
			t.Fatalf("Shards=%d: batch event log differs from serial", shards)
		}
	}
}

// TestShardedDoctorPasses runs the full runtime-verification suite plus
// collector on a sharded run: the merged canonical stream must satisfy
// every live invariant (power-machine legality, energy conservation,
// request conservation, replica validity, thresholds, latency sanity), and
// the reconciled metrics must match the serial run's exactly.
func TestShardedDoctorPasses(t *testing.T) {
	t.Parallel()
	run := func(shards int) (*Result, *monitor.Suite) {
		reqs, p := smallWorkload(t, 12, 60, 500, 2, 3)
		cfg := smallConfig(12)
		cfg.Shards = shards
		suite := monitor.NewSuite(monitor.Config{
			Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: p.Locations,
		})
		tr := obs.NewTracer(1)
		h := sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
		res, err := RunOnline(cfg, p.Locations, h, reqs,
			WithTracer(tr), WithMonitor(suite), WithCollector(obs.NewCollector()))
		if err != nil {
			t.Fatal(err)
		}
		return res, suite
	}
	refRes, refSuite := run(0)
	if !refSuite.Passed() {
		t.Fatalf("serial doctor reported %d violations", refSuite.Total())
	}
	for _, shards := range []int{3, 12} {
		res, suite := run(shards)
		if !suite.Passed() {
			var sb bytes.Buffer
			suite.WriteReport(&sb)
			t.Fatalf("Shards=%d: doctor reported %d violations:\n%s", shards, suite.Total(), sb.String())
		}
		if suite.Events() != refSuite.Events() {
			t.Fatalf("Shards=%d: doctor saw %d events, serial saw %d", shards, suite.Events(), refSuite.Events())
		}
		if !reflect.DeepEqual(res, refRes) {
			t.Fatalf("Shards=%d: Result differs from serial", shards)
		}
	}
}

// TestShardedStateLogIdentical pins the remaining side channel: the CSV
// power-transition log written via WithStateLog replays in canonical order.
func TestShardedStateLogIdentical(t *testing.T) {
	t.Parallel()
	run := func(shards int) []byte {
		reqs, p := smallWorkload(t, 12, 60, 400, 2, 11)
		cfg := smallConfig(12)
		cfg.Shards = shards
		var buf bytes.Buffer
		res, err := RunOnline(cfg, p.Locations,
			sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power)},
			reqs, WithStateLog(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if res.Served == 0 {
			t.Fatal("no requests served")
		}
		return buf.Bytes()
	}
	ref := run(0)
	if len(ref) == 0 {
		t.Fatal("empty state log")
	}
	for _, shards := range shardCounts(12)[1:] {
		if got := run(shards); !bytes.Equal(got, ref) {
			t.Fatalf("Shards=%d: state log differs from serial", shards)
		}
	}
}

// TestShardsValidate pins Config-level validation of the new field.
func TestShardsValidate(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		shards int
		ok     bool
	}{
		{-1, false}, {0, true}, {1, true}, {8, true}, {9, false},
	} {
		cfg := smallConfig(8)
		cfg.Shards = tc.shards
		reqs := []core.Request{{ID: 1, Block: 0, Arrival: 0}}
		loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
		_, err := RunOnline(cfg, loc, sched.Static{Locations: loc}, reqs)
		if tc.ok && err != nil {
			t.Errorf("Shards=%d: unexpected error %v", tc.shards, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Shards=%d: validation passed, want error", tc.shards)
		}
	}
}
