package storage

// The shard journal is the ordering backbone of the sharded serving path
// (LiveSet): each decision shard runs a private serial kernel over its
// contiguous disk range and records every observable emission — relayed
// trace events, completions, power transitions, queue depths, decision and
// drop counts — as a keyed record. A k-way merge over the per-shard
// journals then replays the records in the canonical global order and
// applies them to the real observability surfaces (tracer + observer
// chain, run metrics, state log, response accumulator), so a sharded
// Sequential run's outputs are byte-identical to the serial engine's.
//
// Records are keyed (at, class, gid):
//
//   - class 0 is a kernel emission (a completion, idle timeout or spin
//     transition fired while advancing the shard clock); gid is the shard
//     index, so same-instant kernel activity across shards lands in disk
//     order (shard ranges are contiguous and ascending).
//   - class 1 is request-processing output (arrive, decision, dispatch,
//     queue; plus any spin-up the dispatch triggers synchronously); gid is
//     the request ID, so same-instant requests land in submission order.
//
// A serial engine fires every kernel event at or before time t during
// Advance(t) *before* processing the request admitted at t (RunUntil is
// deadline-inclusive), which is exactly "class 0 before class 1 at equal
// at". Within one shard, keys are clamped monotonically non-decreasing
// (key = max(computed, last appended)) so the journal is always sorted by
// construction and equal-key records replay in emission order — the same
// position a serial run gives them.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// jkey orders journal records globally; see the package comment above.
type jkey struct {
	at    time.Duration
	class uint8
	gid   uint64
}

func (k jkey) less(o jkey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	if k.class != o.class {
		return k.class < o.class
	}
	return k.gid < o.gid
}

// Journal record kinds. recEvent replays into the tracer; the others carry
// the side effects the serial path performs inline (metrics, samples,
// state-log lines) at the equivalent stream position.
const (
	recEvent uint8 = iota
	recDone
	recTrans
	recDepth
	recDecision
	recDrop
)

type jrec struct {
	key  jkey
	kind uint8
	ev   obs.Event // recEvent
	// recDone: req + at (completion time); recTrans: at/disk/from/to/ed.
	req      core.Request
	at       time.Duration
	disk     core.DiskID
	from, to core.DiskState
	ed       obs.EnergyDelta
	depth    int // recDepth
}

// shardJournal buffers one shard's records. Appends run on whichever
// goroutine holds the shard's combining token; drains run on the
// maintenance or draining goroutine — the mutex covers that handoff (the
// token already serializes appenders among themselves).
type shardJournal struct {
	idx uint64 // shard index: the class-0 tiebreak gid

	mu   sync.Mutex
	recs []jrec
	last jkey

	// Request bracket: between begin and end, every record is class 1 at
	// the bracketed (time, request) regardless of its own timestamp.
	inReq  bool
	reqKey jkey
}

// key computes the record key for an emission at time at, applying the
// request bracket and the monotone clamp. Callers hold mu.
func (j *shardJournal) key(at time.Duration) jkey {
	k := jkey{at: at, gid: j.idx}
	if j.inReq {
		k = j.reqKey
	}
	if k.less(j.last) {
		k = j.last
	}
	j.last = k
	return k
}

// begin opens a request-processing bracket: subsequent records are keyed
// (at, 1, gid) until end.
func (j *shardJournal) begin(at time.Duration, gid uint64) {
	j.mu.Lock()
	j.inReq = true
	j.reqKey = jkey{at: at, class: 1, gid: gid}
	j.mu.Unlock()
}

func (j *shardJournal) end() {
	j.mu.Lock()
	j.inReq = false
	j.mu.Unlock()
}

func (j *shardJournal) event(ev obs.Event) {
	j.mu.Lock()
	j.recs = append(j.recs, jrec{key: j.key(ev.At), kind: recEvent, ev: ev})
	j.mu.Unlock()
}

func (j *shardJournal) done(req core.Request, at time.Duration) {
	j.mu.Lock()
	j.recs = append(j.recs, jrec{key: j.key(at), kind: recDone, req: req, at: at})
	j.mu.Unlock()
}

func (j *shardJournal) trans(d core.DiskID, at time.Duration, from, to core.DiskState, e obs.EnergyDelta) {
	j.mu.Lock()
	j.recs = append(j.recs, jrec{key: j.key(at), kind: recTrans, at: at, disk: d, from: from, to: to, ed: e})
	j.mu.Unlock()
}

func (j *shardJournal) depth(load int) {
	j.mu.Lock()
	j.recs = append(j.recs, jrec{key: j.key(j.reqKey.at), kind: recDepth, depth: load})
	j.mu.Unlock()
}

func (j *shardJournal) decision() {
	j.mu.Lock()
	j.recs = append(j.recs, jrec{key: j.key(j.reqKey.at), kind: recDecision})
	j.mu.Unlock()
}

func (j *shardJournal) drop() {
	j.mu.Lock()
	j.recs = append(j.recs, jrec{key: j.key(j.reqKey.at), kind: recDrop})
	j.mu.Unlock()
}

// steal removes and returns the prefix of records with at < upTo
// (everything when upTo < 0). The journal is sorted by construction, so
// the cut is a prefix; later appends are keyed at or after the shard's
// published clock, which is at or after any watermark the caller computed.
func (j *shardJournal) steal(upTo time.Duration) []jrec {
	j.mu.Lock()
	defer j.mu.Unlock()
	cut := len(j.recs)
	if upTo >= 0 {
		cut = 0
		for cut < len(j.recs) && j.recs[cut].key.at < upTo {
			cut++
		}
	}
	if cut == 0 {
		return nil
	}
	out := j.recs[:cut:cut]
	j.recs = append([]jrec(nil), j.recs[cut:]...)
	return out
}

// decEntry maps a shard-local decision ID to its global renumbering; at is
// kept so stale entries can be evicted once no future record can
// reference them.
type decEntry struct {
	id obs.DecisionID
	at time.Duration
}

// merger replays journal records in canonical global order onto the real
// observability surfaces. All methods run on one goroutine at a time (the
// maintenance flusher or the finisher).
type merger struct {
	tr       *obs.Tracer // real tracer (with the observer chain); nil when untraced
	rm       *obs.RunMetrics
	stateLog io.Writer
	resp     *metrics.ResponseTimes

	// decisions is the canonical run-wide decision counter; decMap[s]
	// renumbers shard s's local IDs into it.
	decisions uint64
	decMap    []map[obs.DecisionID]decEntry
	// decHorizon bounds how far back a record can reference a decision
	// (a spin-up caused by a dispatch lands within the spin-up time);
	// entries older than watermark-decHorizon are evicted.
	decHorizon time.Duration
}

const decEvictThreshold = 16384

func newMerger(shards int, o runOptions, resp *metrics.ResponseTimes, decHorizon time.Duration) *merger {
	m := &merger{tr: o.tracer, stateLog: o.stateLog, resp: resp, decMap: make([]map[obs.DecisionID]decEntry, shards), decHorizon: decHorizon}
	if o.collector != nil {
		m.rm = obs.NewRunMetrics(o.collector)
	}
	for i := range m.decMap {
		m.decMap[i] = make(map[obs.DecisionID]decEntry)
	}
	return m
}

// apply replays one record from shard s.
func (m *merger) apply(s int, r jrec) {
	switch r.kind {
	case recEvent:
		ev := r.ev
		if ev.Kind == obs.KindDecision {
			m.decisions++
			g := obs.DecisionID(m.decisions)
			m.decMap[s][ev.Dec] = decEntry{id: g, at: ev.At}
			ev.Dec = g
		} else if ev.Dec != 0 {
			if e, ok := m.decMap[s][ev.Dec]; ok {
				ev.Dec = e.id
			}
		}
		m.tr.Emit(ev)
	case recDone:
		lat := r.at - r.req.Arrival
		if m.resp != nil {
			m.resp.Add(lat)
		}
		if m.rm != nil {
			m.rm.ObserveResponse(lat)
			m.rm.Served.Inc()
		}
	case recTrans:
		if m.stateLog != nil {
			fmt.Fprintf(m.stateLog, "%.6f,%d,%s,%s\n", r.at.Seconds(), r.disk, r.from, r.to)
		}
		if m.rm != nil {
			m.rm.Transition(r.from, r.to, r.ed)
		}
	case recDepth:
		if m.rm != nil {
			m.rm.QueueDepth.Observe(float64(r.depth))
		}
	case recDecision:
		if m.rm != nil {
			m.rm.Decisions.Inc()
		}
	case recDrop:
		if m.rm != nil {
			m.rm.Dropped.Inc()
		}
	}
}

// merge steals each journal's prefix below upTo (everything when upTo < 0)
// and replays the combined stream in key order, stable within a shard.
func (m *merger) merge(journals []*shardJournal, upTo time.Duration) {
	runs := make([][]jrec, len(journals))
	total := 0
	for i, j := range journals {
		runs[i] = j.steal(upTo)
		total += len(runs[i])
	}
	if total == 0 {
		return
	}
	pos := make([]int, len(runs))
	for done := 0; done < total; done++ {
		best := -1
		for i, rs := range runs {
			if pos[i] >= len(rs) {
				continue
			}
			if best < 0 || rs[pos[i]].key.less(runs[best][pos[best]].key) {
				best = i
			}
		}
		m.apply(best, runs[best][pos[best]])
		pos[best]++
	}
	if upTo >= 0 {
		m.evict(upTo)
	}
}

// evict drops decision-map entries that no future record (all keyed at or
// after watermark) can reference.
func (m *merger) evict(watermark time.Duration) {
	cutoff := watermark - m.decHorizon
	for _, dm := range m.decMap {
		if len(dm) < decEvictThreshold {
			continue
		}
		for k, e := range dm {
			if e.at < cutoff {
				delete(dm, k)
			}
		}
	}
}
