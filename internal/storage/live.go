package storage

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/sched"
	"repro/internal/simkernel"
)

// Live is the streaming facade over the simulated storage system: where
// RunOnline/RunBatch consume a complete preloaded trace, a Live system is
// fed one request at a time by a long-lived caller (internal/serve's
// decision loop) that interleaves clock advancement, scheduling decisions
// and dispatches. It reuses the exact disk, power-meter, tracer and metrics
// plumbing of the batch runners, so a serving run's event log and energy
// accounting are indistinguishable from a batch run's.
//
// A Live system is single-goroutine like the underlying kernel: the caller
// must serialize all method calls. The lifecycle is
//
//	lv := NewLive(cfg, opts...)
//	for each request r:
//	    lv.Advance(r.Arrival)        // fire completions and spin-downs
//	    lv.Arrive(r)                 // emit the arrival event
//	    d := scheduler.Schedule(r, lv.View())
//	    lv.Dispatch(r, d, loc, dec)  // or lv.Drop(r) / lv.Reject(r)
//	lv.Finish(name)                  // drain, settle, reconcile, report
type Live struct {
	sys  *system
	opts runOptions
	loc  sched.Locator
	// ingested counts requests that produced an Arrive event; Finish
	// cross-checks served+dropped against it exactly as the batch path does.
	ingested int
	finished bool
}

// NewLive builds a streaming system. The same RunOptions as RunOnline apply
// (tracer, collector, monitor, state log); failure injection and caches are
// batch-run features and are rejected here.
func NewLive(cfg Config, loc sched.Locator, opts ...RunOption) (*Live, error) {
	if loc == nil {
		return nil, errors.New("storage: nil locator")
	}
	o := applyOptions(opts)
	if len(o.failures) > 0 {
		return nil, errors.New("storage: failure injection is not supported on a Live system")
	}
	if o.cache != nil {
		return nil, errors.New("storage: caches are not supported on a Live system")
	}
	if cfg.Shards > 1 {
		// The sharded kernel's span protocol assumes a preloaded horizon; a
		// Live system is fed incrementally and runs the serial engine.
		return nil, errors.New("storage: a Live system runs the serial kernel (Shards must be 0 or 1)")
	}
	s, err := newSystem(cfg, o)
	if err != nil {
		return nil, err
	}
	return &Live{sys: s, opts: o, loc: loc}, nil
}

// newLiveRange builds one serving shard's streaming facade: a sub-range
// system over the global disks [base, base+count) whose emissions land in
// jr (see LiveSet). The caller owns validation of the option set.
func newLiveRange(cfg Config, loc sched.Locator, o runOptions, base, count int, jr *shardJournal) (*Live, error) {
	s, err := newSystemRange(cfg, o, base, count, jr)
	if err != nil {
		return nil, err
	}
	return &Live{sys: s, opts: o, loc: loc}, nil
}

// View returns the scheduler's read-only window onto the running system
// (current virtual time, per-disk power state, load and last-request time).
func (l *Live) View() sched.View { return l.sys }

// Now returns the current virtual time.
func (l *Live) Now() time.Duration { return l.sys.eng.Now() }

// Advance runs the kernel up to t, firing every completion, idle timeout
// and spin transition scheduled before then, and leaves the clock at t.
// Advancing into the past is a no-op (the clock never rewinds).
func (l *Live) Advance(t time.Duration) {
	if t <= l.sys.eng.Now() {
		return
	}
	l.sys.eng.RunUntil(t)
}

// Err returns the first internal simulation error, if any. Once set, the
// system is poisoned and Finish will return it.
func (l *Live) Err() error { return l.sys.err }

// Arrive records a request's arrival at the current virtual time. Every
// Arrive must be balanced by exactly one Dispatch or Drop so request
// conservation holds at Finish.
func (l *Live) Arrive(r core.Request) {
	l.ingested++
	l.sys.tr.Arrive(l.sys.eng.Now(), r.ID, r.Block)
}

// DecisionBase returns the tracer's decision counter; pass it to Dispatch
// so the dispatch event carries the decision a traced scheduler just
// emitted (see system.lastDecision).
func (l *Live) DecisionBase() uint64 { return l.sys.tr.DecisionCount() }

// Tracer returns the tracer this system emits into: the run tracer on a
// full-range system, the shard's relay tracer on a LiveSet shard (wire it
// into the shard's scheduler so decisions land in the shard journal), or
// nil when untraced.
func (l *Live) Tracer() *obs.Tracer { return l.sys.tr }

// BeginRequest opens a request-processing bracket on the shard journal:
// until EndRequest, every emission is keyed to (at, request gid) so the
// merged stream places the whole admission block — arrive, decision,
// dispatch, any synchronous spin-up — exactly where a serial run would.
// No-op on a non-journaling system.
func (l *Live) BeginRequest(at time.Duration, gid uint64) {
	if l.sys.jr != nil {
		l.sys.jr.begin(at, gid)
	}
}

// EndRequest closes the bracket opened by BeginRequest.
func (l *Live) EndRequest() {
	if l.sys.jr != nil {
		l.sys.jr.end()
	}
}

// Dispatch validates the scheduling decision against the placement and
// submits the request to its disk. base is the DecisionBase captured before
// the scheduler ran (0 for untraced schedulers).
func (l *Live) Dispatch(r core.Request, d core.DiskID, base uint64) {
	if l.sys.rm != nil {
		l.sys.rm.Decisions.Inc()
	}
	if l.sys.jr != nil {
		l.sys.jr.decision()
	}
	l.sys.dispatch(r, d, l.loc, l.sys.lastDecision(base))
}

// DispatchDecision submits the request with an explicit decision ID —
// the batch pairing path, where one traced ScheduleBatch emits a decision
// per placed request and the caller re-walks the batch to pair them (see
// RunBatch). dec 0 means the dispatch carries no decision.
func (l *Live) DispatchDecision(r core.Request, d core.DiskID, dec obs.DecisionID) {
	if l.sys.rm != nil {
		l.sys.rm.Decisions.Inc()
	}
	if l.sys.jr != nil {
		l.sys.jr.decision()
	}
	l.sys.dispatch(r, d, l.loc, dec)
}

// Drop records that an arrived request could not be served (no replica, or
// rejected by serving policy after admission, e.g. a deadline expiry).
func (l *Live) Drop(r core.Request) { l.sys.drop(r) }

// Outstanding returns the number of requests queued or in service across
// all disks.
func (l *Live) Outstanding() int {
	n := 0
	for _, d := range l.sys.disks {
		n += d.Load()
	}
	return n
}

// Served returns the number of completed requests so far.
func (l *Live) Served() int { return l.sys.served }

// Ingested returns the number of Arrive calls so far.
func (l *Live) Ingested() int { return l.ingested }

// Fired returns the kernel's executed-event count.
func (l *Live) Fired() uint64 { return l.sys.eng.Fired() }

// Accounting returns the carbon/cost accumulator attached via
// WithAccounting, or nil. Callers may snapshot it (Accumulator.Snapshot)
// from the same goroutine that drives the system.
func (l *Live) Accounting() *account.Accumulator { return l.sys.acct }

// Dropped returns the number of dropped requests so far.
func (l *Live) Dropped() int { return l.sys.dropped }

// KernelStats snapshots the engine's introspection counters (events fired,
// queue and event-pool high-water marks). A Live system runs the serial
// kernel, so the snapshot holds exactly one pseudo-shard and carries no
// wall-clock attribution. Safe to call from the driving goroutine at any
// point in the lifecycle.
func (l *Live) KernelStats() *simkernel.KernelStats { return l.sys.eng.Telemetry() }

// DiskSnapshot is one disk's live state for status surfaces (/state).
type DiskSnapshot struct {
	Disk      core.DiskID
	State     core.DiskState
	Load      int
	Served    int
	EnergyJ   float64 // settled meter energy (accrues at state transitions)
	SpinUps   int
	SpinDowns int
}

// Snapshot returns the per-disk live state in disk order. Energy is the
// meter's settled total: it advances at each state transition, so a disk
// sitting in one state shows the energy as of entering it.
func (l *Live) Snapshot() []DiskSnapshot {
	out := make([]DiskSnapshot, len(l.sys.disks))
	for i, d := range l.sys.disks {
		st := d.Stats()
		out[i] = DiskSnapshot{
			Disk:      core.DiskID(l.sys.base + i),
			State:     d.State(),
			Load:      d.Load(),
			Served:    st.Served,
			EnergyJ:   st.Energy,
			SpinUps:   st.SpinUps,
			SpinDowns: st.SpinDowns,
		}
	}
	return out
}

// Finish drains the system — every outstanding request completes, trailing
// idle timeouts and spin-downs settle — closes the disks, reconciles the
// metrics export to the exact meter totals and returns the run result. The
// horizon extends at least one replacement window past the last event so
// always-on normalization matches the batch runners' convention.
func (l *Live) Finish(name string) (*Result, error) {
	if l.finished {
		return nil, errors.New("storage: Finish called twice on a Live system")
	}
	l.finished = true
	s := l.sys
	if s.err != nil {
		return nil, s.err
	}
	// Drain: keep stepping while disks hold work, then settle the trailing
	// idle timeouts and spin-downs, mirroring system.finish's late-completion
	// loop.
	for s.err == nil && l.Outstanding() > 0 {
		if !s.eng.Step() {
			break
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	end := s.eng.Now() + s.cfg.Power.Breakeven() + s.cfg.Power.SpinDownTime + time.Second
	end = s.eng.RunUntil(end)
	if s.err != nil {
		return nil, s.err
	}
	res := &Result{
		Scheduler: name,
		Served:    s.served,
		Dropped:   s.dropped,
		Horizon:   end,
		Response:  s.resp,
		PerDisk:   make([]diskmodel.Stats, len(s.disks)),
	}
	for i, d := range s.disks {
		st := d.Close()
		res.PerDisk[i] = st
		res.Energy += st.Energy
		res.SpinUps += st.SpinUps
		res.SpinDowns += st.SpinDowns
		for ps := core.StateStandby; ps <= core.StateSpinDown; ps++ {
			res.EnergyByState[ps] += st.EnergyIn[ps]
		}
	}
	res.AlwaysOnEnergy = offline.AlwaysOnEnergy(s.cfg.Power, s.cfg.NumDisks, end)
	s.tr.RunEnd(end, s.eng.Fired())
	if s.acct != nil {
		// Mirror system.finish: close the carbon/cost accounting at the
		// horizon and pin its windowed integral to the meters.
		s.acct.Finalize()
		if s.mon != nil {
			s.mon.VerifyWindows(s.acct.ByState(), res.EnergyByState)
		}
	}
	if s.mon != nil {
		s.mon.VerifyResult(res.EnergyByState)
		s.mon.Finish()
	}
	if s.rm != nil {
		s.rm.ReconcileEnergy(res.EnergyByState)
		s.rm.SpinUps.Reconcile(float64(res.SpinUps))
		s.rm.SpinDowns.Reconcile(float64(res.SpinDowns))
		s.rm.Served.Reconcile(float64(res.Served))
		s.rm.Dropped.Reconcile(float64(res.Dropped))
		s.rm.SimTime.Set(end.Seconds())
		s.rm.EventsFired.Set(float64(s.eng.Fired()))
	}
	if s.tr != nil {
		if err := s.tr.Flush(); err != nil {
			return nil, fmt.Errorf("storage: event sink: %w", err)
		}
	}
	if want := l.ingested - s.dropped; s.served != want {
		return nil, fmt.Errorf("storage: served %d of %d ingested requests", s.served, want)
	}
	return res, nil
}

// The methods below decompose Finish into the phases LiveSet's two-phase
// drain needs: every shard drains its outstanding work first (the global
// settle horizon is the maximum of the post-drain clocks, matching the
// serial engine's stop time), then each shard settles to that shared
// horizon and closes its disks.

// DrainOutstanding steps the kernel until no disk holds queued or
// in-service work (or the event queue empties, or the system fails).
func (l *Live) DrainOutstanding() error {
	s := l.sys
	for s.err == nil && l.Outstanding() > 0 {
		if !s.eng.Step() {
			break
		}
	}
	return s.err
}

// SettleUntil runs the kernel to the shared horizon, firing trailing idle
// timeouts and spin-downs, and leaves the clock there.
func (l *Live) SettleUntil(end time.Duration) error {
	s := l.sys
	if end > s.eng.Now() {
		s.eng.RunUntil(end)
	}
	return s.err
}

// CloseDisks closes every disk in range order, emitting their end-of-run
// accounting events through the system's tracer, and returns their final
// stats (index i is global disk base+i). The system must be drained and
// settled; no further simulation may run after this.
func (l *Live) CloseDisks() []diskmodel.Stats {
	l.finished = true
	out := make([]diskmodel.Stats, len(l.sys.disks))
	for i, d := range l.sys.disks {
		out[i] = d.Close()
	}
	return out
}
