package storage

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestKernelTelemetryAttribution pins the acceptance bar for the engine
// introspection work: with telemetry armed on a 4-shard fleet, the named
// wall-clock buckets (execute, queue ops, stall) account for at least 95%
// of shards×wall — the residual is only the bucketing arithmetic itself.
func TestKernelTelemetryAttribution(t *testing.T) {
	cfg := smallFleetConfig()
	cfg.NumDisks = 480
	cfg.RequestsPerDisk = 50
	cfg.Shards = 4
	cfg.Workers = 4
	cfg.Telemetry = true
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks := res.Kernel
	if ks == nil || !ks.Timed {
		t.Fatalf("telemetry armed but result carries no timed snapshot: %+v", ks)
	}
	if len(ks.Shards) != 4 {
		t.Fatalf("snapshot has %d shards, want 4", len(ks.Shards))
	}
	var events uint64
	for _, s := range ks.Shards {
		events += s.Events
	}
	if events+ks.CoordEvents != ks.Events || ks.Events != res.Events {
		t.Fatalf("event accounting: shards %d + coord %d vs global %d (run %d)",
			events, ks.CoordEvents, ks.Events, res.Events)
	}
	exec, queue, stall, cov := ks.Attribution()
	t.Logf("exec=%dns queue=%dns stall=%dns wall=%dns coverage=%.4f straggler=%d",
		exec, queue, stall, ks.WallNS, cov, ks.Straggler())
	if cov < 0.95 {
		t.Fatalf("attribution coverage %.4f below 0.95 (exec=%d queue=%d stall=%d wall=%d×%d)",
			cov, exec, queue, stall, ks.WallNS, len(ks.Shards))
	}
	if cov > 1.10 {
		t.Fatalf("attribution coverage %.4f implausibly above 1", cov)
	}
	if st := ks.Straggler(); st < 0 || st >= 4 {
		t.Fatalf("straggler index %d out of range", st)
	}
}

// TestFleetKernelCountersAlwaysOn pins that the structural counters ride
// along on every run — telemetry off, wall-clock buckets empty — on both
// the sharded and the serial path.
func TestFleetKernelCountersAlwaysOn(t *testing.T) {
	t.Parallel()
	for _, shards := range []int{0, 4} {
		cfg := smallFleetConfig()
		cfg.Shards = shards
		res, err := RunFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ks := res.Kernel
		if ks == nil {
			t.Fatalf("shards=%d: no kernel snapshot on result", shards)
		}
		if ks.Timed || ks.WallNS != 0 {
			t.Fatalf("shards=%d: telemetry off but snapshot timed (wall=%d)", shards, ks.WallNS)
		}
		if exec, queue, stall, _ := ks.Attribution(); exec+queue+stall != 0 {
			t.Fatalf("shards=%d: wall-clock buckets populated with telemetry off", shards)
		}
		s := ks.Shards[0]
		if shards == 0 {
			if len(ks.Shards) != 1 || s.QueueHighWater == 0 || s.PoolHighWater == 0 {
				t.Fatalf("serial pseudo-shard incomplete: %+v", s)
			}
		} else if len(ks.Shards) != shards || s.Pushes == 0 || s.Pops == 0 {
			t.Fatalf("sharded counters dead: %+v", s)
		}
		if res.Deterministic().Kernel != nil {
			t.Fatal("Deterministic() must drop the kernel snapshot")
		}
	}
}

// TestExportKernelMetrics pins the esched_kernel_* surface: families appear
// per shard, timing families only when the snapshot is timed, and repeated
// exports reconcile instead of accumulating.
func TestExportKernelMetrics(t *testing.T) {
	t.Parallel()
	cfg := smallFleetConfig()
	cfg.Shards = 4
	cfg.Telemetry = true
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollector()
	ExportKernelMetrics(c, res.Kernel)
	out := c.String()
	for _, want := range []string{
		`esched_kernel_events_total{shard="0"}`,
		`esched_kernel_events_total{shard="3"}`,
		`esched_kernel_queue_ops_total{op="push",shard="0"}`,
		`esched_kernel_queue_ops_total{op="pop",shard="0"}`,
		"esched_kernel_queue_rebuilds_total",
		"esched_kernel_queue_recalibrations_total",
		"esched_kernel_queue_migrations_total",
		"esched_kernel_far_occupancy_peak",
		"esched_kernel_queue_occupancy_peak",
		"esched_kernel_pool_peak_events",
		"esched_kernel_span_rounds_total",
		"esched_kernel_lookahead_waits_total",
		"esched_kernel_deferred_effects_total",
		"esched_kernel_replay_depth_peak",
		"esched_kernel_slot_hits_total",
		`esched_kernel_exec_seconds_total{shard="0"}`,
		"esched_kernel_stall_seconds_total",
		"esched_kernel_wall_seconds",
		"esched_kernel_merge_seconds_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
	ExportKernelMetrics(c, res.Kernel)
	if again := c.String(); again != out {
		t.Fatal("re-export changed the rendered metrics (accumulated instead of reconciled)")
	}

	// Untimed snapshot: counters only, no timing families.
	cfg2 := smallFleetConfig()
	cfg2.Shards = 2
	res2, err := RunFleet(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := obs.NewCollector()
	ExportKernelMetrics(c2, res2.Kernel)
	out2 := c2.String()
	if strings.Contains(out2, "esched_kernel_exec_seconds_total") ||
		strings.Contains(out2, "esched_kernel_wall_seconds") {
		t.Fatal("untimed export advertises wall-clock families")
	}
	if !strings.Contains(out2, `esched_kernel_events_total{shard="1"}`) {
		t.Fatal("untimed export missing structural counters")
	}
}
