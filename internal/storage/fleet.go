package storage

import (
	"fmt"
	"math/bits"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/power"
	"repro/internal/simkernel"
)

// FleetConfig describes the rack-partitioned closed-loop fleet workload:
// the scale regime (Section 5's cluster sizes pushed to datacenter fleet
// sizes) where per-event observability is off and the kernel free-runs.
//
// Each rack owns a contiguous stripe of disks and a self-scheduling request
// generator that emits bursts separated by idle gaps long enough for the
// power policy to spin disks down, so every burst exercises the full
// standby → spin-up → active → idle → spin-down cycle. Requests are placed
// rack-locally: the generator picks ReplicationFactor candidate replicas by
// hash and submits to the best one under the paper's heuristic preference
// order (spinning before standby, least-loaded among equals). Racks never
// touch each other's disks, so with Shards > 1 the whole run executes in
// free-running mode (simkernel.Sharded.RunFree) and every aggregate below
// is shard-count invariant by construction: latencies are accumulated as
// integer sums and log-scale histogram counts per shard, energy and spin
// counts are folded per disk in disk order.
type FleetConfig struct {
	NumDisks int
	NumRacks int // must divide NumDisks
	// Shards selects the kernel: 0 or 1 runs the serial engine, >1 runs
	// per-rack sub-kernels in free-running mode. Must divide NumRacks so a
	// rack never straddles a shard boundary. Results are identical at any
	// value.
	Shards int
	// Workers caps the goroutines driving a sharded run; 0 means
	// GOMAXPROCS.
	Workers int
	// Telemetry arms the kernel's wall-clock attribution
	// (simkernel.EnableTelemetry) and attaches a KernelStats snapshot to the
	// result. Costs two clock reads per event, so leave it off when
	// measuring peak throughput; the structural counters in the snapshot are
	// collected either way.
	Telemetry bool
	// RelaxGC turns the garbage collector off for the duration of the run
	// (previous settings are restored before RunFleet returns), trading
	// peak memory for event throughput. The event graph is allocated up
	// front and almost nothing on the hot path escapes, so collections buy
	// little back; a 100k-disk run peaks around 6 GB, and an 8 GB soft
	// memory limit keeps the collector as a backstop. Results are
	// identical either way — only Wall and EventsPerSec move.
	RelaxGC bool

	RequestsPerDisk   int           // total requests = NumDisks * RequestsPerDisk
	ReplicationFactor int           // candidate replicas per request, rack-local
	BurstLen          int           // requests per rack burst
	InterArrival      time.Duration // mean intra-burst request gap
	IdleGap           time.Duration // gap between a rack's bursts
	Seed              uint64

	Power  power.Config
	Mech   diskmodel.MechConfig
	Policy power.Policy // defaults to 2CPM over Power
}

// DefaultFleetConfig returns a small fleet suitable for tests: 960 disks in
// 48 racks with gaps long enough to spin disks down between bursts under
// the default 2CPM policy.
func DefaultFleetConfig() FleetConfig {
	p := power.DefaultConfig()
	return FleetConfig{
		NumDisks:          960,
		NumRacks:          48,
		RequestsPerDisk:   40,
		ReplicationFactor: 3,
		BurstLen:          100,
		InterArrival:      40 * time.Microsecond,
		IdleGap:           p.Breakeven() + p.SpinDownTime + 8*time.Second,
		Seed:              1,
		Power:             p,
		Mech:              diskmodel.Cheetah15K5(),
		Policy:            power.TwoCompetitive{Config: p},
	}
}

func (c *FleetConfig) validate() error {
	switch {
	case c.NumDisks < 1 || c.NumRacks < 1:
		return fmt.Errorf("fleet: need at least one disk and one rack, got %d/%d", c.NumDisks, c.NumRacks)
	case c.NumDisks%c.NumRacks != 0:
		return fmt.Errorf("fleet: %d racks do not evenly divide %d disks", c.NumRacks, c.NumDisks)
	case c.Shards < 0:
		return fmt.Errorf("fleet: negative shard count %d", c.Shards)
	case c.Shards > 1 && c.NumRacks%c.Shards != 0:
		return fmt.Errorf("fleet: %d shards do not evenly divide %d racks (a rack must not straddle shards)", c.Shards, c.NumRacks)
	case c.RequestsPerDisk < 1:
		return fmt.Errorf("fleet: RequestsPerDisk = %d", c.RequestsPerDisk)
	case c.ReplicationFactor < 1 || c.ReplicationFactor > c.NumDisks/c.NumRacks:
		return fmt.Errorf("fleet: replication factor %d outside [1, %d disks/rack]", c.ReplicationFactor, c.NumDisks/c.NumRacks)
	case c.BurstLen < 1 || c.InterArrival <= 0 || c.IdleGap <= 0:
		return fmt.Errorf("fleet: invalid burst shape len=%d inter=%v gap=%v", c.BurstLen, c.InterArrival, c.IdleGap)
	}
	return nil
}

// FleetResult aggregates a fleet run. Every field except Wall and
// EventsPerSec is deterministic and identical at any Shards/Workers value.
type FleetResult struct {
	NumDisks int
	Shards   int
	Events   uint64        // kernel events executed
	Horizon  time.Duration // final virtual time
	Served   uint64

	Energy         float64 // joules across the fleet
	AlwaysOnEnergy float64 // idle-power floor: every disk spinning the whole run
	SpinUps        int
	SpinDowns      int

	MeanResponse  time.Duration
	P50, P90, P99 time.Duration

	Wall         time.Duration // wall-clock time of the event loop only
	EventsPerSec float64

	// Kernel is the engine-introspection snapshot (always populated; the
	// wall-clock buckets require FleetConfig.Telemetry). Its shard counters
	// depend on the shard count by nature, so Deterministic drops it.
	Kernel *simkernel.KernelStats
}

// Deterministic returns the result with the wall-clock measurements, the
// Shards echo and the kernel telemetry zeroed, for shard-count-invariance
// comparisons.
func (r FleetResult) Deterministic() FleetResult {
	r.Wall, r.EventsPerSec, r.Shards, r.Kernel = 0, 0, 0, nil
	return r
}

// fleetHistBuckets is sized for latBucket's range: 16 unary buckets below
// 16 ns plus 8 sub-buckets per power of two up to 2^63 ns.
const fleetHistBuckets = 512

// latBucket maps a latency in nanoseconds to a log-scale bucket with 8
// sub-buckets per octave (≈12% resolution). Monotone in ns, so percentiles
// reconstructed from counts are exact to bucket resolution.
func latBucket(ns uint64) int {
	if ns < 16 {
		return int(ns)
	}
	e := bits.Len64(ns) // >= 5
	m := (ns >> uint(e-4)) & 7
	return 16 + (e-5)*8 + int(m)
}

// bucketFloor returns the smallest latency mapping to bucket i.
func bucketFloor(i int) time.Duration {
	if i < 16 {
		return time.Duration(i)
	}
	e := 5 + (i-16)/8
	m := (i - 16) % 8
	return time.Duration((8 + m) << uint(e-4))
}

// fleetSink accumulates completions for one shard. Only the owning shard
// touches it during the run; sums and counts are folded across shards
// afterwards, so results are independent of how racks were partitioned.
type fleetSink struct {
	served uint64
	latSum int64 // nanoseconds; exact, order-invariant
	hist   [fleetHistBuckets]uint64
}

func (s *fleetSink) record(lat time.Duration) {
	s.served++
	s.latSum += int64(lat)
	s.hist[latBucket(uint64(lat))]++
}

// fleetGen is one rack's closed-loop request generator: a self-scheduling
// event chain that lives entirely on the rack's shard.
type fleetGen struct {
	sim    simkernel.Sim
	sink   *fleetSink
	disks  []*diskmodel.Disk // this rack's stripe
	tickFn simkernel.Event   // bound once; rescheduling allocates nothing

	rng    uint64
	maxLBA int64
	idBase uint64
	nextID uint64
	left   int // requests remaining for this rack
	burst  int // remaining in the current burst

	rf           int
	burstLen     int
	interArrival time.Duration
	idleGap      time.Duration
}

// next is splitmix64: one multiply-xor round per draw, deterministic per
// rack, no shared state.
func (g *fleetGen) next() uint64 {
	g.rng += 0x9E3779B97F4A7C15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// tick emits one request and reschedules itself: the intra-burst gap while
// the burst lasts, the idle gap (plus jitter, so racks drift apart) after.
// One splitmix draw feeds all three decisions — replica base, block/LBA,
// gap jitter — from disjoint bit ranges; a second draw per request would
// buy nothing but another multiply chain on the hot path.
func (g *fleetGen) tick(now time.Duration) {
	r := g.next()
	n := len(g.disks)
	// Ranges are reduced by multiply-shift (Lemire) instead of modulo:
	// three hardware divides per tick are measurable at fleet scale.
	base := int((r >> 48) * uint64(n) >> 16)
	// Heuristic replica choice over ReplicationFactor rack-local candidates:
	// prefer spinning disks (no spin-up energy or latency), break ties by
	// queue depth, then by candidate order — all state the rack owns. A
	// spinning, lightly loaded first candidate short-circuits: no further
	// replica would be chosen over it, so skip touching their cache lines.
	best := g.disks[base]
	bestSpin, bestLoad := best.State().Spinning(), best.Load()
	if !bestSpin || bestLoad > 1 {
		for j := 1; j < g.rf; j++ {
			d := g.disks[(base+j)%n]
			sp, ld := d.State().Spinning(), d.Load()
			if (sp && !bestSpin) || (sp == bestSpin && ld < bestLoad) {
				best, bestSpin, bestLoad = d, sp, ld
			}
		}
	}
	g.nextID++
	best.Submit(core.Request{
		ID:      core.RequestID(g.idBase + g.nextID),
		Block:   core.BlockID(r),
		Arrival: now,
		LBA:     int64((r & 0xFFFFFFFF) * uint64(g.maxLBA) >> 32),
	})
	g.left--
	if g.left == 0 {
		return
	}
	var gap time.Duration
	if g.burst > 1 {
		g.burst--
		gap = 1 + time.Duration((r>>32&0xFFFF)*uint64(2*g.interArrival)>>16) // mean ≈ interArrival
	} else {
		g.burst = g.burstLen
		gap = g.idleGap + time.Duration((r>>32&0xFFFF)*uint64(64*g.interArrival)>>16)
	}
	g.sim.After(gap, g.tickFn)
}

// RunFleet executes the fleet workload and returns its aggregates. With
// cfg.Shards <= 1 it runs on the serial engine; otherwise on the sharded
// kernel in free-running mode. Both paths produce the same FleetResult
// modulo wall-clock fields.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RelaxGC {
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		defer debug.SetMemoryLimit(debug.SetMemoryLimit(8 << 30))
	}
	policy := cfg.Policy
	if policy == nil {
		policy = power.TwoCompetitive{Config: cfg.Power}
	}
	perRack := cfg.NumDisks / cfg.NumRacks
	sharded := cfg.Shards > 1

	var se *simkernel.Sharded
	var eng simkernel.Engine
	numSinks := 1
	if sharded {
		se = simkernel.NewSharded(cfg.NumDisks, cfg.Shards, cfg.Workers)
		numSinks = se.NumShards()
	}
	sinks := make([]*fleetSink, numSinks)
	for i := range sinks {
		sinks[i] = &fleetSink{}
	}

	disks := make([]*diskmodel.Disk, cfg.NumDisks)
	for rack := 0; rack < cfg.NumRacks; rack++ {
		first := rack * perRack
		var sim simkernel.Sim = &eng
		sink := sinks[0]
		if sharded {
			v := se.DiskSim(core.DiskID(first))
			sim = v
			sink = sinks[simkernel.ShardOf(core.DiskID(first), cfg.NumDisks, se.NumShards())]
		}
		done := func(req core.Request, at time.Duration) {
			sink.record(at - req.Arrival)
		}
		for i := first; i < first+perRack; i++ {
			d, err := diskmodel.New(core.DiskID(i), cfg.Mech, cfg.Power, policy, sim, done, diskmodel.Options{})
			if err != nil {
				return nil, err
			}
			disks[i] = d
		}
		g := &fleetGen{
			sim:          sim,
			sink:         sink,
			disks:        disks[first : first+perRack],
			rng:          cfg.Seed ^ (uint64(rack)+1)*0xD1B54A32D192ED03,
			maxLBA:       cfg.Mech.MaxLBA,
			idBase:       uint64(rack) << 40,
			left:         perRack * cfg.RequestsPerDisk,
			burst:        cfg.BurstLen,
			rf:           cfg.ReplicationFactor,
			burstLen:     cfg.BurstLen,
			interArrival: cfg.InterArrival,
			idleGap:      cfg.IdleGap,
		}
		g.tickFn = g.tick
		// Stagger rack start times so bursts across racks interleave instead
		// of arriving as one fleet-wide wall.
		start := time.Duration(g.next() % uint64(cfg.IdleGap))
		sim.At(start, g.tickFn)
	}

	var horizon time.Duration
	var events uint64
	if sharded && cfg.Telemetry {
		se.EnableTelemetry()
	}
	t0 := time.Now()
	if sharded {
		horizon = se.RunFree()
		events = se.Fired()
	} else {
		for eng.Step() {
		}
		horizon = eng.Now()
		events = eng.Fired()
	}
	wall := time.Since(t0)

	res := &FleetResult{
		NumDisks: cfg.NumDisks,
		Shards:   cfg.Shards,
		Events:   events,
		Horizon:  horizon,
		Wall:     wall,
	}
	if s := wall.Seconds(); s > 0 {
		res.EventsPerSec = float64(events) / s
	}
	if sharded {
		res.Kernel = se.Telemetry()
	} else {
		res.Kernel = eng.Telemetry()
	}
	for _, d := range disks { // disk order: float sums deterministic
		st := d.Close()
		res.Energy += st.Energy
		res.SpinUps += st.SpinUps
		res.SpinDowns += st.SpinDowns
	}
	res.AlwaysOnEnergy = float64(cfg.NumDisks) * cfg.Power.IdlePower * horizon.Seconds()

	var latSum int64
	var hist [fleetHistBuckets]uint64
	for _, s := range sinks {
		res.Served += s.served
		latSum += s.latSum
		for i, c := range s.hist {
			hist[i] += c
		}
	}
	if res.Served > 0 {
		res.MeanResponse = time.Duration(uint64(latSum) / res.Served)
		res.P50 = histPercentile(&hist, res.Served, 50)
		res.P90 = histPercentile(&hist, res.Served, 90)
		res.P99 = histPercentile(&hist, res.Served, 99)
	}
	return res, nil
}

// histPercentile returns the floor of the bucket holding the q-th
// percentile sample.
func histPercentile(hist *[fleetHistBuckets]uint64, total uint64, q uint64) time.Duration {
	rank := (total*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range hist {
		cum += c
		if cum >= rank {
			return bucketFloor(i)
		}
	}
	return bucketFloor(fleetHistBuckets - 1)
}
