package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestValidateFailures(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name   string
		events []FailureEvent
		ok     bool
	}{
		{"valid", []FailureEvent{{Disk: 0, At: time.Second, Duration: time.Minute}}, true},
		{"nonexistent disk", []FailureEvent{{Disk: 99, At: 0, Duration: time.Second}}, false},
		{"negative time", []FailureEvent{{Disk: 0, At: -1, Duration: time.Second}}, false},
		{"zero duration", []FailureEvent{{Disk: 0, At: 0, Duration: 0}}, false},
		{"overlap same disk", []FailureEvent{
			{Disk: 1, At: 0, Duration: time.Minute},
			{Disk: 1, At: 30 * time.Second, Duration: time.Minute},
		}, false},
		{"adjacent same disk ok", []FailureEvent{
			{Disk: 1, At: 0, Duration: time.Minute},
			{Disk: 1, At: time.Minute, Duration: time.Minute},
		}, true},
		{"overlap different disks ok", []FailureEvent{
			{Disk: 1, At: 0, Duration: time.Minute},
			{Disk: 2, At: 0, Duration: time.Minute},
		}, true},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			err := validateFailures(tc.events, 4)
			if (err == nil) != tc.ok {
				t.Errorf("err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestFailureRedirectsToSurvivingReplica(t *testing.T) {
	t.Parallel()
	// Two disks, one block replicated on both; disk 0 fails before the
	// request arrives, so it must be served by disk 1.
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0, 1} }
	reqs := []core.Request{{ID: 0, Block: 0, Arrival: time.Minute}}
	res, err := RunOnline(smallConfig(2), loc, sched.Static{Locations: loc}, reqs,
		WithFailures(FailureEvent{Disk: 0, At: time.Second, Duration: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 || res.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d", res.Served, res.Dropped)
	}
	if res.PerDisk[0].Served != 0 || res.PerDisk[1].Served != 1 {
		t.Errorf("per-disk served = %d/%d, want 0/1", res.PerDisk[0].Served, res.PerDisk[1].Served)
	}
}

func TestFailureDrainsInFlightWork(t *testing.T) {
	t.Parallel()
	// Requests land on disk 0 at t=0; the disk fails mid-spin-up at t=2s.
	// All drained requests must be re-dispatched to disk 1 and served.
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0, 1} }
	var reqs []core.Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, core.Request{ID: core.RequestID(i), Block: 0, Arrival: time.Duration(i) * 100 * time.Millisecond})
	}
	res, err := RunOnline(smallConfig(2), loc, sched.Static{Locations: loc}, reqs,
		WithFailures(FailureEvent{Disk: 0, At: 2 * time.Second, Duration: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 5 {
		t.Fatalf("served = %d, want 5", res.Served)
	}
	if res.Redispatched == 0 {
		t.Error("no requests re-dispatched despite failing a loaded disk")
	}
	if res.PerDisk[1].Served != 5 {
		t.Errorf("disk 1 served %d, want all 5", res.PerDisk[1].Served)
	}
}

func TestFailureUnavailableWhenAllReplicasDown(t *testing.T) {
	t.Parallel()
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	reqs := []core.Request{{ID: 0, Block: 0, Arrival: time.Minute}}
	res, err := RunOnline(smallConfig(2), loc, sched.Static{Locations: loc}, reqs,
		WithFailures(FailureEvent{Disk: 0, At: time.Second, Duration: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 || res.Dropped != 1 || res.Unavailable != 1 {
		t.Fatalf("served/dropped/unavailable = %d/%d/%d, want 0/1/1",
			res.Served, res.Dropped, res.Unavailable)
	}
}

func TestRepairRestoresService(t *testing.T) {
	t.Parallel()
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	reqs := []core.Request{
		{ID: 0, Block: 0, Arrival: time.Minute},      // during the outage: lost
		{ID: 1, Block: 0, Arrival: 10 * time.Minute}, // after repair: served
	}
	res, err := RunOnline(smallConfig(2), loc, sched.Static{Locations: loc}, reqs,
		WithFailures(FailureEvent{Disk: 0, At: time.Second, Duration: 5 * time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 || res.Unavailable != 1 {
		t.Fatalf("served/unavailable = %d/%d, want 1/1", res.Served, res.Unavailable)
	}
}

func TestFailureRejectsBadEvents(t *testing.T) {
	t.Parallel()
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	_, err := RunOnline(smallConfig(2), loc, sched.Static{Locations: loc}, nil,
		WithFailures(FailureEvent{Disk: 9, At: 0, Duration: time.Second}))
	if err == nil {
		t.Error("accepted failure event for nonexistent disk")
	}
}

func TestBatchRunWithFailures(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 8, 100, 400, 2, 11)
	w := sched.WSC{Locations: p.Locations, Cost: sched.DefaultCost(smallConfig(8).Power)}
	res, err := RunBatch(smallConfig(8), p.Locations, w, reqs, 100*time.Millisecond,
		WithFailures(
			FailureEvent{Disk: 0, At: 30 * time.Second, Duration: 5 * time.Minute},
			FailureEvent{Disk: 3, At: time.Minute, Duration: 5 * time.Minute},
		))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served+res.Dropped != 400 {
		t.Fatalf("served %d + dropped %d != 400", res.Served, res.Dropped)
	}
	// With rf=2 over 8 disks and only two concurrent failures, nearly all
	// requests must find a surviving replica.
	if res.Unavailable > 40 {
		t.Errorf("unavailable = %d, too many for rf=2 with 2 failed disks", res.Unavailable)
	}
}

// Property: with replication factor >= 2 and at most one failed disk at
// any time, every request is served (no block is confined to one disk).
func TestSingleFailureNeverLosesRequestsProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, diskRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numDisks := 6
		reqs, p := func() ([]core.Request, sched.Locator) {
			plc, err := placementGen(numDisks, 200, 2, seed)
			if err != nil {
				return nil, nil
			}
			return workload.CelloLike(300, 200, seed), plc
		}()
		if p == nil {
			return false
		}
		failAt := time.Duration(rng.Int63n(int64(5 * time.Minute)))
		ev := FailureEvent{
			Disk:     core.DiskID(int(diskRaw) % numDisks),
			At:       failAt,
			Duration: time.Duration(rng.Int63n(int64(10*time.Minute))) + time.Second,
		}
		res, err := RunOnline(smallConfig(numDisks), p,
			sched.Heuristic{Locations: p, Cost: sched.DefaultCost(smallConfig(numDisks).Power)},
			reqs, WithFailures(ev))
		if err != nil {
			return false
		}
		return res.Served == 300 && res.Unavailable == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// placementGen builds a uniform-replica placement locator for tests.
func placementGen(numDisks, numBlocks, rf int, seed int64) (sched.Locator, error) {
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: numDisks, NumBlocks: numBlocks,
		ReplicationFactor: rf, ZipfExponent: 1, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return plc.Locations, nil
}

func TestBatchFailureRequeuesDrainedWork(t *testing.T) {
	t.Parallel()
	// Pile work onto disk 0 via batch scheduling, fail it mid-spin-up, and
	// confirm the drained requests re-enter a later batch and are served
	// by the surviving replica.
	loc := func(core.BlockID) []core.DiskID { return []core.DiskID{0, 1} }
	cost := sched.CostConfig{Alpha: 1, Beta: 1, Power: smallConfig(2).Power}
	w := sched.WSC{Locations: loc, Cost: cost}
	var reqs []core.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, core.Request{ID: core.RequestID(i), Block: 0, Arrival: time.Duration(i) * 200 * time.Millisecond})
	}
	res, err := RunBatch(smallConfig(2), loc, w, reqs, 100*time.Millisecond,
		WithFailures(FailureEvent{Disk: 0, At: 3 * time.Second, Duration: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 6 {
		t.Fatalf("served = %d, want 6", res.Served)
	}
	if res.Redispatched == 0 {
		t.Error("expected drained requests to be re-dispatched through a batch")
	}
	if res.PerDisk[1].Served == 0 {
		t.Error("surviving replica served nothing")
	}
}

func TestCacheWriteInvalidationThroughStorage(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 8, 200, 600, 2, 21)
	// Mark half the stream as writes: they bypass and invalidate the cache.
	mixed := make([]core.Request, len(reqs))
	copy(mixed, reqs)
	for i := range mixed {
		if i%2 == 1 {
			mixed[i].Write = true
		}
	}
	c, err := cache.New(50, cache.LRU, p.Locations)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(8)
	res, err := RunOnline(cfg, p.Locations,
		sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power)},
		mixed, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != len(mixed) {
		t.Fatalf("served = %d", res.Served)
	}
	st := c.Stats()
	// Only reads consult the cache.
	if st.Hits+st.Misses != len(mixed)/2 {
		t.Errorf("cache accesses = %d, want %d reads only", st.Hits+st.Misses, len(mixed)/2)
	}
}
