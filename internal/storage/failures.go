package storage

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// FailureEvent takes a disk offline abruptly at At for Duration: pending
// requests on the disk are re-dispatched to surviving replicas and the
// disk rejoins (spun down) afterwards. This exercises the fault-tolerance
// role of the replication the paper's scheduler piggybacks on.
type FailureEvent struct {
	Disk     core.DiskID
	At       time.Duration
	Duration time.Duration
}

// WithFailures injects disk failures into a run. Events for the same disk
// must not overlap in time.
func WithFailures(events ...FailureEvent) RunOption {
	return func(o *runOptions) { o.failures = append(o.failures, events...) }
}

// validateFailures checks event sanity against the disk population.
func validateFailures(events []FailureEvent, numDisks int) error {
	byDisk := map[core.DiskID][]FailureEvent{}
	for _, ev := range events {
		if ev.Disk < 0 || int(ev.Disk) >= numDisks {
			return fmt.Errorf("storage: failure event for nonexistent disk %d", ev.Disk)
		}
		if ev.At < 0 || ev.Duration <= 0 {
			return fmt.Errorf("storage: failure event %+v has invalid timing", ev)
		}
		byDisk[ev.Disk] = append(byDisk[ev.Disk], ev)
	}
	for d, evs := range byDisk {
		sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At+evs[i-1].Duration {
				return fmt.Errorf("storage: overlapping failure events on disk %d", d)
			}
		}
	}
	return nil
}

// armFailures schedules fail and repair events; redispatch is called for
// every request drained from a failing disk.
func (s *system) armFailures(events []FailureEvent, redispatch func(core.Request)) error {
	if err := validateFailures(events, len(s.disks)); err != nil {
		return err
	}
	for _, ev := range events {
		ev := ev
		s.eng.At(ev.At, func(time.Duration) {
			for _, req := range s.disks[ev.Disk].Fail() {
				redispatch(req)
			}
		})
		s.eng.At(ev.At+ev.Duration, func(time.Duration) {
			s.disks[ev.Disk].Repair()
		})
	}
	return nil
}

// dispatchWithFailover submits the request to the chosen disk, failing
// over to a surviving replica (preferring a spinning one) when the choice
// is down. Requests whose every replica is down are dropped as
// unavailable.
func (s *system) dispatchWithFailover(req core.Request, d core.DiskID, loc func(core.BlockID) []core.DiskID, dec obs.DecisionID) {
	if d != core.InvalidDisk && (d < 0 || int(d) >= len(s.disks)) {
		s.fail(fmt.Errorf("storage: scheduler chose nonexistent disk %d for %v", d, req))
		return
	}
	if d != core.InvalidDisk && !s.disks[d].Failed() {
		s.dispatch(req, d, loc, dec)
		return
	}
	if d == core.InvalidDisk {
		s.drop(req)
		return
	}
	// Chosen disk is down: fail over.
	fallback := core.InvalidDisk
	for _, alt := range loc(req.Block) {
		if s.disks[alt].Failed() {
			continue
		}
		if fallback == core.InvalidDisk {
			fallback = alt
		}
		if s.disks[alt].State().Spinning() {
			fallback = alt
			break
		}
	}
	if fallback == core.InvalidDisk {
		s.drop(req)
		s.unavailable++
		return
	}
	s.submit(req, fallback, dec)
}
