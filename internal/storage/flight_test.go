package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/sched"
)

// flightTraceRun executes one seeded heuristic run with a streaming JSONL
// tracer, optionally riding a flight recorder on the observer chain.
func flightTraceRun(t *testing.T, rec *flight.Recorder) ([]byte, *Result) {
	t.Helper()
	reqs, p := smallWorkload(t, 12, 80, 600, 3, 5)
	cfg := smallConfig(12)
	var buf bytes.Buffer
	tr := obs.NewTracer(512)
	tr.SetSink(&buf, false)
	h := sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
	opts := []RunOption{WithTracer(tr)}
	if rec != nil {
		opts = append(opts, WithFlight(rec))
	}
	res, err := RunOnline(cfg, p.Locations, h, reqs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestFlightRecorderDeterminism pins the recorder's zero-interference
// contract: a run with the flight recorder riding the observer chain
// produces a byte-identical event log and an identical Result to the same
// run without it — the ring is an observer, never a participant.
func TestFlightRecorderDeterminism(t *testing.T) {
	t.Parallel()
	refLog, refRes := flightTraceRun(t, nil)
	if len(refLog) == 0 {
		t.Fatal("empty event log")
	}
	rec := flight.New(flight.Config{Capacity: 256, Dir: t.TempDir()})
	log, res := flightTraceRun(t, rec)
	if !bytes.Equal(log, refLog) {
		t.Fatalf("recorder-on event log differs from recorder-off (%d vs %d bytes)", len(log), len(refLog))
	}
	if !reflect.DeepEqual(res, refRes) {
		t.Fatalf("recorder-on Result differs:\n%+v\nvs\n%+v", res, refRes)
	}
	evs, err := obs.ReadJSONL(bytes.NewReader(refLog))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events() != uint64(len(evs)) {
		t.Fatalf("recorder observed %d events, log holds %d", rec.Events(), len(evs))
	}
	if rec.Dumps() != 0 {
		t.Fatalf("untriggered recorder wrote %d dumps", rec.Dumps())
	}
}

// TestFlightDoctorViolationDump is the incident path end to end: a doctor
// violation on a live run automatically freezes the flight window, and the
// dumped events.bin replays through a fresh doctor suite byte-identically
// with the violation still present.
func TestFlightDoctorViolationDump(t *testing.T) {
	t.Parallel()
	reqs, p := smallWorkload(t, 12, 60, 400, 2, 3)
	cfg := smallConfig(12)
	// Inject the violation by lying to the doctor: its replica map pins
	// every block to disk 0, so the first dispatch elsewhere is flagged as
	// a replica-validity violation while the run itself is untouched.
	badLoc := func(core.BlockID) []core.DiskID { return []core.DiskID{0} }
	suite := monitor.NewSuite(monitor.Config{
		Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: badLoc,
	})
	dir := t.TempDir()
	rec := flight.New(flight.Config{Capacity: 1 << 12, Dir: dir})
	tr := obs.NewTracer(1)
	h := sched.Heuristic{Locations: p.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
	if _, err := RunOnline(cfg, p.Locations, h, reqs,
		WithTracer(tr), WithMonitor(suite), WithFlight(rec)); err != nil {
		t.Fatal(err)
	}
	if suite.Passed() {
		t.Fatal("injected misconfiguration produced no doctor violation")
	}
	if rec.Dumps() == 0 {
		t.Fatal("doctor violation did not trigger a flight dump")
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	latest, err := flight.FindLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := flight.ReadDump(latest)
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Reason != "doctor-replica-validity" {
		t.Fatalf("dump reason %q, want doctor-replica-validity", d.Meta.Reason)
	}
	if len(d.Events) == 0 {
		t.Fatal("dump window is empty")
	}

	// The decoded window re-encodes to the exact bytes on disk: the dump is
	// a standard ESCHOBS2 log, replayable by any reader bit-for-bit.
	raw := []byte(obs.BinaryMagic)
	for _, ev := range d.Events {
		raw = obs.AppendBinary(raw, ev)
	}
	disk, err := os.ReadFile(filepath.Join(latest, "events.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, disk) {
		t.Fatal("re-encoded window differs from events.bin")
	}

	// Replaying the window through a fresh doctor with the same (bad)
	// config reproduces the violation — the incident is in the window.
	replay := monitor.NewSuite(monitor.Config{
		Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: badLoc,
	})
	for _, ev := range d.Events {
		replay.Observe(ev)
	}
	if replay.Passed() {
		t.Fatal("replayed dump window shows no violation")
	}
}
