// Package storage assembles the full simulated storage system of Figure 1:
// a scheduler (online or batch), a population of disks with their power
// manager, and the data-placement lookup. It drives a request stream
// through the system on the discrete-event kernel and reports the paper's
// evaluation metrics: energy, spin-up/down operations, response times and
// per-disk state breakdowns.
package storage

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/offline"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/simkernel"
)

// Config describes the simulated system.
type Config struct {
	NumDisks int
	Power    power.Config
	Mech     diskmodel.MechConfig
	// Policy defaults to 2CPM over Power when nil.
	Policy power.Policy
	// InitialState defaults to standby (the paper's assumption); always-on
	// baselines pass core.StateIdle.
	InitialState core.DiskState
	// Discipline selects each disk's queue service order (default FIFO).
	Discipline diskmodel.Discipline
	// Shards partitions the event kernel into per-rack sub-kernels that
	// advance concurrently under conservative synchronization. 0 or 1 selects
	// the serial kernel. Any value produces bit-identical results — traces,
	// metrics, response-time sample order — to the serial path; see
	// simkernel.Sharded.
	Shards int
}

// DefaultConfig returns the paper's evaluation system: 180 disks, Cheetah
// mechanics, Barracuda-class power, 2CPM (Section 4).
func DefaultConfig() Config {
	p := power.DefaultConfig()
	return Config{
		NumDisks: 180,
		Power:    p,
		Mech:     diskmodel.Cheetah15K5(),
		Policy:   power.TwoCompetitive{Config: p},
	}
}

func (c Config) validate() error {
	if c.NumDisks <= 0 {
		return fmt.Errorf("storage: NumDisks = %d", c.NumDisks)
	}
	if c.Shards < 0 {
		return fmt.Errorf("storage: Shards = %d", c.Shards)
	}
	if c.Shards > c.NumDisks {
		return fmt.Errorf("storage: Shards = %d exceeds NumDisks = %d (a shard must own at least one disk)", c.Shards, c.NumDisks)
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	return c.Mech.Validate()
}

// Result aggregates one simulation run.
type Result struct {
	Scheduler string
	// Energy is the total energy of all disks over the horizon, in joules.
	Energy float64
	// AlwaysOnEnergy is the normalization baseline: every disk idling over
	// the same horizon (the paper's Figures 6, 10, 14 denominators).
	AlwaysOnEnergy float64
	SpinUps        int
	SpinDowns      int
	Served         int
	// Dropped counts requests that could not be served: blocks with no
	// replica locations plus blocks whose every replica was failed.
	Dropped int
	// Unavailable is the subset of Dropped caused by failures.
	Unavailable int
	// Redispatched counts requests drained from failing disks and resent.
	Redispatched int
	// CacheHits counts reads absorbed by the block cache (a subset of
	// Served).
	CacheHits int
	Horizon   time.Duration
	Response  metrics.ResponseTimes
	PerDisk   []diskmodel.Stats
	// EnergyByState breaks Energy down by power state: the sum over PerDisk
	// of Stats.EnergyIn, accumulated in disk order so exporters reconciled
	// from it match report aggregates exactly.
	EnergyByState [core.StateSpinDown + 1]float64
}

// NormalizedEnergy returns Energy / AlwaysOnEnergy (Figure 6's y-axis).
func (r *Result) NormalizedEnergy() float64 { return r.Energy / r.AlwaysOnEnergy }

// system wires an engine, disks and metrics together and implements
// sched.View.
type system struct {
	cfg Config
	eng simkernel.Kernel
	// base is the global ID of disks[0]: a full system has base 0, a
	// serving-shard sub-range system (see LiveSet) owns the global disks
	// [base, base+len(disks)) and indexes disks by gid-base.
	base         int
	serial       simkernel.Engine // backs eng on the serial (Shards <= 1) path
	disks        []*diskmodel.Disk
	resp         metrics.ResponseTimes
	tr           *obs.Tracer
	rm           *obs.RunMetrics
	jr           *shardJournal // canonical-order capture for sub-range systems
	mon          *monitor.Suite
	acct         *account.Accumulator
	err          error
	served       int
	dropped      int
	unavailable  int
	redispatched int
	cacheHits    int
}

var _ sched.View = (*system)(nil)

func newSystem(cfg Config, o runOptions) (*system, error) {
	return newSystemRange(cfg, o, 0, cfg.NumDisks, nil)
}

// newSystemRange builds a system over the global disk range
// [base, base+count). The full range with a nil journal is the classic
// path; a sub-range is one serving shard's slice of the fleet: its disks
// keep their global IDs, its kernel is always serial, and jr (when
// non-nil) captures every emission — relay-traced events, completions,
// transitions, queue depths — into the shard journal so LiveSet can merge
// the per-shard streams into the canonical global order.
func newSystemRange(cfg Config, o runOptions, base, count int, jr *shardJournal) (*system, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if base < 0 || count <= 0 || base+count > cfg.NumDisks {
		return nil, fmt.Errorf("storage: disk range [%d, %d) outside population %d", base, base+count, cfg.NumDisks)
	}
	if cfg.Shards > 1 && (base != 0 || count != cfg.NumDisks) {
		return nil, errors.New("storage: a sub-range system runs the serial kernel")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = power.TwoCompetitive{Config: cfg.Power}
	}
	s := &system{cfg: cfg, base: base, disks: make([]*diskmodel.Disk, count), tr: o.tracer, jr: jr, mon: o.monitor, acct: o.acct}
	var se *simkernel.Sharded
	if cfg.Shards > 1 {
		se = simkernel.NewSharded(cfg.NumDisks, cfg.Shards, 0)
		s.eng = se
	} else {
		s.eng = &s.serial
	}
	if o.collector != nil {
		s.rm = obs.NewRunMetrics(o.collector)
		rm := s.rm
		s.eng.SetProbe(func(now time.Duration, fired uint64) {
			rm.SimTime.Set(now.Seconds())
			rm.EventsFired.Set(float64(fired))
		})
	}
	var onTrans func(core.DiskID, time.Duration, core.DiskState, core.DiskState, obs.EnergyDelta)
	if o.stateLog != nil || s.rm != nil {
		onTrans = func(d core.DiskID, now time.Duration, from, to core.DiskState, e obs.EnergyDelta) {
			if o.stateLog != nil {
				fmt.Fprintf(o.stateLog, "%.6f,%d,%s,%s\n", now.Seconds(), d, from, to)
			}
			if s.rm != nil {
				s.rm.Transition(from, to, e)
			}
		}
	}
	onDone := func(req core.Request, done time.Duration) {
		lat := done - req.Arrival
		s.resp.Add(lat)
		s.served++
		if s.rm != nil {
			s.rm.ObserveResponse(lat)
			s.rm.Served.Inc()
		}
	}
	if jr != nil {
		// Journaling shard: completions and transitions are recorded in the
		// shard journal and applied — response samples, state-log lines,
		// metrics — in canonical global order at merge time. Only the local
		// served counter (conservation bookkeeping) advances here.
		onDone = func(req core.Request, done time.Duration) {
			s.served++
			jr.done(req, done)
		}
		onTrans = func(d core.DiskID, now time.Duration, from, to core.DiskState, e obs.EnergyDelta) {
			jr.trans(d, now, from, to, e)
		}
	}
	// Sharded runs give each shard a private relay tracer: disks emit into
	// it from the shard's goroutine, and its observer defers each event into
	// the real tracer, which re-stamps the sequence number at effect-replay
	// time. Replay order is the canonical global event order, so the merged
	// stream is byte-identical to a serial run's — monitors, sinks, and
	// replay tools can't tell the difference.
	var shardTrs []*obs.Tracer
	if se != nil && o.tracer.Enabled() {
		shardTrs = make([]*obs.Tracer, se.NumShards())
	}
	for i := range s.disks {
		gid := core.DiskID(base + i)
		sim := simkernel.Sim(s.eng)
		tr := o.tracer
		done := onDone
		trans := onTrans
		if se != nil {
			view := se.DiskSim(gid)
			sim = view
			done = func(req core.Request, doneAt time.Duration) {
				view.Defer(func() { onDone(req, doneAt) })
			}
			if onTrans != nil {
				trans = func(d core.DiskID, now time.Duration, from, to core.DiskState, e obs.EnergyDelta) {
					view.Defer(func() { onTrans(d, now, from, to, e) })
				}
			}
			if shardTrs != nil {
				idx := simkernel.ShardOf(gid, cfg.NumDisks, se.NumShards())
				if shardTrs[idx] == nil {
					st := obs.NewTracer(1)
					st.SetObserver(func(ev obs.Event) {
						view.Defer(func() { s.tr.Emit(ev) })
					})
					shardTrs[idx] = st
				}
				tr = shardTrs[idx]
			}
		}
		d, err := diskmodel.New(gid, cfg.Mech, cfg.Power, policy, sim, done,
			diskmodel.Options{
				InitialState: cfg.InitialState,
				Discipline:   cfg.Discipline,
				OnTransition: trans,
				Tracer:       tr,
			})
		if err != nil {
			return nil, err
		}
		s.disks[i] = d
	}
	return s, nil
}

// Now implements sched.View.
func (s *system) Now() time.Duration { return s.eng.Now() }

// DiskState implements sched.View.
func (s *system) DiskState(d core.DiskID) core.DiskState { return s.disks[int(d)-s.base].State() }

// Load implements sched.View.
func (s *system) Load(d core.DiskID) int { return s.disks[int(d)-s.base].Load() }

// LastRequestTime implements sched.View.
func (s *system) LastRequestTime(d core.DiskID) (time.Duration, bool) {
	return s.disks[int(d)-s.base].LastRequestTime()
}

// fail records the first simulation error and halts the run.
func (s *system) fail(err error) {
	if s.err == nil {
		s.err = err
		s.eng.Halt()
	}
}

// drop records a request that could not be served.
func (s *system) drop(req core.Request) {
	s.dropped++
	s.tr.Drop(s.eng.Now(), req.ID, req.Block)
	if s.rm != nil {
		s.rm.Dropped.Inc()
	}
	if s.jr != nil {
		s.jr.drop()
	}
}

// submit hands the request to its chosen disk, emitting the dispatch event
// and the queue-depth observation. dec is the scheduler decision being
// executed (0 when the scheduler is untraced), threaded down so any
// spin-up the arrival triggers is attributed to it in the log.
func (s *system) submit(req core.Request, d core.DiskID, dec obs.DecisionID) {
	s.tr.Dispatch(s.eng.Now(), req.ID, req.Block, d, dec)
	disk := s.disks[int(d)-s.base]
	disk.SubmitCaused(req, dec)
	if s.rm != nil {
		s.rm.QueueDepth.Observe(float64(disk.Load()))
	}
	if s.jr != nil {
		s.jr.depth(disk.Load())
	}
}

// dispatch validates the scheduling decision and submits the request.
func (s *system) dispatch(req core.Request, d core.DiskID, loc sched.Locator, dec obs.DecisionID) {
	if d == core.InvalidDisk {
		s.drop(req)
		return
	}
	if int(d) < s.base || int(d) >= s.base+len(s.disks) {
		s.fail(fmt.Errorf("storage: scheduler chose disk %d outside range [%d, %d) for %v", d, s.base, s.base+len(s.disks), req))
		return
	}
	valid := false
	for _, l := range loc(req.Block) {
		if l == d {
			valid = true
			break
		}
	}
	if !valid {
		s.fail(fmt.Errorf("storage: scheduler chose off-replica disk %d for %v", d, req))
		return
	}
	s.submit(req, d, dec)
}

// lastDecision derives the ID of the decision a traced scheduler just
// emitted: the tracer's decision counter was base before the Schedule
// call, so if it advanced, the (deterministic, single-threaded) run's
// newest decision caused this dispatch. Untraced schedulers leave the
// counter unchanged and the dispatch carries no decision ID.
func (s *system) lastDecision(base uint64) obs.DecisionID {
	if n := s.tr.DecisionCount(); n > base {
		return obs.DecisionID(n)
	}
	return 0
}

// finish drains the engine up to the workload horizon (not beyond it for
// administrative events such as distant repairs), extends accounting to
// the normalization horizon, and collects results.
func (s *system) finish(name string, reqs []core.Request) (*Result, error) {
	end := s.eng.RunUntil(offline.Horizon(reqs, s.cfg.Power))
	if s.err != nil {
		return nil, s.err
	}
	// Late completions: keep stepping while disks still hold work (long
	// queues can outlive the nominal horizon), then let the trailing idle
	// timeouts and spin-downs settle.
	stepped := false
	for s.err == nil {
		outstanding := 0
		for _, d := range s.disks {
			outstanding += d.Load()
		}
		if outstanding == 0 {
			break
		}
		if !s.eng.Step() {
			break
		}
		stepped = true
	}
	if s.err != nil {
		return nil, s.err
	}
	if stepped && s.eng.Now() > end {
		tail := s.cfg.Power.Breakeven() + s.cfg.Power.SpinDownTime + time.Second
		end = s.eng.RunUntil(s.eng.Now() + tail)
	}
	res := &Result{
		Scheduler:    name,
		Served:       s.served,
		Dropped:      s.dropped,
		Unavailable:  s.unavailable,
		Redispatched: s.redispatched,
		CacheHits:    s.cacheHits,
		Horizon:      end,
		Response:     s.resp,
		PerDisk:      make([]diskmodel.Stats, len(s.disks)),
	}
	for i, d := range s.disks {
		st := d.Close()
		res.PerDisk[i] = st
		res.Energy += st.Energy
		res.SpinUps += st.SpinUps
		res.SpinDowns += st.SpinDowns
		for ps := core.StateStandby; ps <= core.StateSpinDown; ps++ {
			res.EnergyByState[ps] += st.EnergyIn[ps]
		}
	}
	res.AlwaysOnEnergy = offline.AlwaysOnEnergy(s.cfg.Power, s.cfg.NumDisks, end)
	// The disks' "end" events (emitted by Close above, in disk order) plus
	// this run-end marker make the log self-contained: a replay recovers the
	// horizon, the kernel event count and the exact meter totals.
	s.tr.RunEnd(end, s.eng.Fired())
	if s.acct != nil {
		// Close the carbon/cost accounting at the horizon (reconciling any
		// bound metric families) and pin its windowed integral to the meters.
		s.acct.Finalize()
		if s.mon != nil {
			s.mon.VerifyWindows(s.acct.ByState(), res.EnergyByState)
		}
	}
	if s.mon != nil {
		// The stream is complete: cross-check the meters' totals against the
		// live integral, then run the suite's end-of-stream checks.
		s.mon.VerifyResult(res.EnergyByState)
		s.mon.Finish()
	}
	if s.rm != nil {
		// Overwrite the live approximations with the authoritative end-of-run
		// values so exporter output matches the report aggregates exactly.
		s.rm.ReconcileEnergy(res.EnergyByState)
		s.rm.SpinUps.Reconcile(float64(res.SpinUps))
		s.rm.SpinDowns.Reconcile(float64(res.SpinDowns))
		s.rm.Served.Reconcile(float64(res.Served))
		s.rm.Dropped.Reconcile(float64(res.Dropped))
		s.rm.Redispatched.Reconcile(float64(res.Redispatched))
		s.rm.CacheHits.Reconcile(float64(res.CacheHits))
		s.rm.SimTime.Set(end.Seconds())
		s.rm.EventsFired.Set(float64(s.eng.Fired()))
	}
	if s.tr != nil {
		if err := s.tr.Flush(); err != nil {
			return nil, fmt.Errorf("storage: event sink: %w", err)
		}
	}
	if want := len(reqs) - s.dropped; s.served != want {
		return nil, fmt.Errorf("storage: served %d of %d requests", s.served, want)
	}
	return res, nil
}

// ReadCache absorbs read requests before they reach the scheduler. Access
// returns true on a hit (the request is served from memory) and admits the
// block on a miss. internal/cache provides LRU and power-aware
// implementations.
type ReadCache interface {
	Access(b core.BlockID, v sched.View) bool
}

// WriteInvalidator is optionally implemented by caches that must drop a
// block when it is overwritten.
type WriteInvalidator interface {
	Invalidate(b core.BlockID)
}

// RunOption configures a simulation run.
type RunOption func(*runOptions)

type runOptions struct {
	cache     ReadCache
	failures  []FailureEvent
	stateLog  io.Writer
	tracer    *obs.Tracer
	collector *obs.Collector
	monitor   *monitor.Suite
	acct      *account.Accumulator
	flight    *flight.Recorder
}

// WithCache places a block cache in front of the scheduler: read hits are
// served from memory (no disk activity, ~zero latency at this time scale)
// and writes invalidate cached copies.
func WithCache(c ReadCache) RunOption {
	return func(o *runOptions) { o.cache = c }
}

// WithTracer attaches a structured event tracer to the run: every request
// lifecycle step, power transition and drop is emitted into tr. A nil or
// disabled tracer costs one branch per instrumentation point. When the
// scheduler also traces decisions, pass the same tracer to it (see
// sched.Heuristic.Tracer) so the event streams interleave in one log.
func WithTracer(tr *obs.Tracer) RunOption {
	return func(o *runOptions) { o.tracer = tr }
}

// WithCollector registers the obs.RunMetrics catalog on c and keeps it
// updated during the run: spin operations, per-state energy, request
// outcomes, response-time and queue-depth histograms, and kernel gauges.
// The collector can be snapshotted mid-run; at the end of the run the
// energy and outcome counters are reconciled to the exact report
// aggregates.
func WithCollector(c *obs.Collector) RunOption {
	return func(o *runOptions) { o.collector = c }
}

// WithMonitor tees every traced event into a runtime-verification suite
// (the "doctor"): power-machine legality, energy and request conservation,
// replica validity, threshold compliance and latency sanity are checked
// live as the run executes. When no WithTracer is given, a minimal
// internal tracer is created to feed the suite (scheduler decisions are
// then absent from the stream; pass a shared traced scheduler + WithTracer
// for full coverage). At the end of the run the suite's end-of-stream
// checks run and the reported energy totals are cross-checked against the
// stream integral; inspect Suite.Passed / WriteReport afterwards. A
// violation does not abort the run.
func WithMonitor(m *monitor.Suite) RunOption {
	return func(o *runOptions) { o.monitor = m }
}

// WithAccounting tees every traced event into a carbon/cost accounting
// accumulator (internal/account): per-state energy is integrated over the
// grid profile's intensity windows as the run executes, so gCO2e and
// dollar totals are priced window by window rather than from end-of-run
// totals. When no WithTracer is given, a minimal internal tracer is
// created to feed the accumulator. At the end of the run the accounting
// is finalized (and, when a collector is attached, the carbon/cost
// counter families are reconciled to the report totals); with a monitor
// also attached, the accumulator's windowed integral is cross-checked
// bit-exactly against the meters (Suite.VerifyWindows).
func WithAccounting(a *account.Accumulator) RunOption {
	return func(o *runOptions) { o.acct = a }
}

// WithFlight attaches an always-on flight recorder: every traced event is
// copied into its ring ahead of the doctor and the accountant, and a dump
// trigger raised by any of them (or by RequestDump from another goroutine,
// e.g. a SIGQUIT handler) is materialised inline, on the observing
// goroutine, right after the event that raised it — so the dump's window
// always ends at the triggering event. When no WithTracer is given, a
// minimal internal tracer is created to feed the recorder. With a monitor
// also attached, each violation requests a dump automatically (once; later
// triggers reuse the already-armed request until it is written).
func WithFlight(r *flight.Recorder) RunOption {
	return func(o *runOptions) { o.flight = r }
}

func applyOptions(opts []RunOption) runOptions {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.monitor != nil || o.acct != nil || o.flight != nil {
		if o.tracer == nil {
			o.tracer = obs.NewTracer(1)
		}
		// The tracer holds a single observer slot; chain the recorder, the
		// doctor and the accountant when several are attached. The recorder
		// observes first (its window must include the event a monitor is
		// about to flag) and sweeps pending dump triggers last.
		var chain []func(obs.Event)
		if o.flight != nil {
			chain = append(chain, o.flight.Observe)
			if o.monitor != nil {
				rec := o.flight
				o.monitor.SetOnViolation(func(v monitor.Violation) {
					rec.RequestDump("doctor-" + v.Monitor)
				})
			}
		}
		if o.monitor != nil {
			chain = append(chain, o.monitor.Observe)
		}
		if o.acct != nil {
			chain = append(chain, o.acct.Observe)
		}
		switch rec := o.flight; {
		case rec != nil:
			o.tracer.SetObserver(func(ev obs.Event) {
				for _, f := range chain {
					f(ev)
				}
				if rec.Pending() {
					rec.MaybeDump() // write failures surface via rec.Err()
				}
			})
		case len(chain) == 1:
			o.tracer.SetObserver(chain[0])
		default:
			o.tracer.SetObserver(func(ev obs.Event) {
				for _, f := range chain {
					f(ev)
				}
			})
		}
	}
	if o.acct != nil && o.collector != nil {
		o.acct.Bind(o.collector)
	}
	return o
}

// cacheHitLatency stands in for a DRAM access — effectively instant at the
// power-management time scale but nonzero so percentile plots keep hits
// visible.
const cacheHitLatency = 100 * time.Microsecond

// lookupCache serves a request from the cache when possible, returning
// true if the request is fully absorbed.
func (s *system) lookupCache(o runOptions, r core.Request) bool {
	if o.cache == nil {
		return false
	}
	if r.Write {
		if inv, ok := o.cache.(WriteInvalidator); ok {
			inv.Invalidate(r.Block)
		}
		return false
	}
	if o.cache.Access(r.Block, s) {
		s.resp.Add(cacheHitLatency)
		s.served++
		s.cacheHits++
		s.tr.CacheHit(s.eng.Now(), r.ID, r.Block, cacheHitLatency)
		if s.rm != nil {
			s.rm.ObserveResponse(cacheHitLatency)
			s.rm.Served.Inc()
			s.rm.CacheHits.Inc()
		}
		return true
	}
	return false
}

// RunOnline simulates the online scheduling model (Section 2.2): every
// request is assigned to a disk the moment it arrives.
func RunOnline(cfg Config, loc sched.Locator, scheduler sched.Online, reqs []core.Request, opts ...RunOption) (*Result, error) {
	if scheduler == nil || loc == nil {
		return nil, errors.New("storage: nil scheduler or locator")
	}
	o := applyOptions(opts)
	s, err := newSystem(cfg, o)
	if err != nil {
		return nil, err
	}
	s.resp.Grow(len(reqs))
	deliver := func(r core.Request) {
		base := s.tr.DecisionCount()
		d := scheduler.Schedule(r, s)
		dec := s.lastDecision(base)
		if s.rm != nil {
			s.rm.Decisions.Inc()
		}
		if len(o.failures) > 0 {
			s.dispatchWithFailover(r, d, loc, dec)
			return
		}
		s.dispatch(r, d, loc, dec)
	}
	if len(o.failures) > 0 {
		if err := s.armFailures(o.failures, func(r core.Request) {
			s.redispatched++
			deliver(r)
		}); err != nil {
			return nil, err
		}
	}
	// One preloaded run replaces a heap push per request; delivery order is
	// identical to per-request At scheduling.
	s.eng.Preload(reqs, func(r core.Request, now time.Duration) {
		s.tr.Arrive(now, r.ID, r.Block)
		if s.lookupCache(o, r) {
			return
		}
		deliver(r)
	})
	return s.finish(scheduler.Name(), reqs)
}

// RunBatch simulates the batch scheduling model (Section 2.2): arrivals
// queue up and the whole batch is scheduled together at each interval
// boundary, so requests see queueing delay on top of any spin-up delay.
func RunBatch(cfg Config, loc sched.Locator, scheduler sched.Batch, reqs []core.Request, interval time.Duration, opts ...RunOption) (*Result, error) {
	if scheduler == nil || loc == nil {
		return nil, errors.New("storage: nil scheduler or locator")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("storage: batch interval %s must be positive", interval)
	}
	o := applyOptions(opts)
	s, err := newSystem(cfg, o)
	if err != nil {
		return nil, err
	}
	s.resp.Grow(len(reqs))
	deliver := func(r core.Request, d core.DiskID, dec obs.DecisionID) {
		if len(o.failures) > 0 {
			s.dispatchWithFailover(r, d, loc, dec)
			return
		}
		s.dispatch(r, d, loc, dec)
	}
	// pending and spare double-buffer the batch queue: each tick takes the
	// accumulated batch and hands arrivals (and mid-tick failover re-queues)
	// the other buffer, so steady-state ticking reuses two slices instead of
	// reallocating the queue every interval.
	var pending, spare []core.Request
	tickScheduled := false

	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		tickScheduled = false
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = spare[:0]
		base := s.tr.DecisionCount()
		assignment := scheduler.ScheduleBatch(batch, s)
		if len(assignment) != len(batch) {
			s.fail(fmt.Errorf("storage: batch scheduler returned %d assignments for %d requests",
				len(assignment), len(batch)))
			return
		}
		if s.rm != nil {
			s.rm.Decisions.Add(float64(len(batch)))
		}
		// A traced batch scheduler emits one decision per placed request, in
		// batch order (sched.traceBatchDecisions); when the counter advanced
		// by exactly that many, re-walk the batch in the same order to pair
		// each placed request with its decision ID.
		placed := 0
		for _, d := range assignment {
			if d != core.InvalidDisk {
				placed++
			}
		}
		traced := placed > 0 && s.tr.DecisionCount() == base+uint64(placed)
		k := base
		for i, r := range batch {
			var dec obs.DecisionID
			if traced && assignment[i] != core.InvalidDisk {
				k++
				dec = obs.DecisionID(k)
			}
			deliver(r, assignment[i], dec)
		}
		spare = batch[:0] // drained: recycle as the next tick's batch buffer
	}
	if len(o.failures) > 0 {
		if err := s.armFailures(o.failures, func(r core.Request) {
			s.redispatched++
			// Re-queue into the next batch tick.
			pending = append(pending, r)
			if !tickScheduled {
				tickScheduled = true
				boundary := (s.eng.Now()/interval + 1) * interval
				s.eng.At(boundary, tick)
			}
		}); err != nil {
			return nil, err
		}
	}
	s.eng.Preload(reqs, func(r core.Request, now time.Duration) {
		s.tr.Arrive(now, r.ID, r.Block)
		if s.lookupCache(o, r) {
			return
		}
		pending = append(pending, r)
		if !tickScheduled {
			tickScheduled = true
			boundary := (now/interval + 1) * interval
			s.eng.At(boundary, tick)
		}
	})
	return s.finish(scheduler.Name(), reqs)
}

// WithStateLog streams every disk power-state transition to w as CSV
// ("seconds,disk,from,to"), enabling external timeline visualization of
// runs (the raw data behind Figure 9-style plots).
func WithStateLog(w io.Writer) RunOption {
	return func(o *runOptions) { o.stateLog = w }
}
