package storage

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/simkernel"
)

// ExportKernelMetrics reconciles a kernel-introspection snapshot into the
// collector as the esched_kernel_* families, one series per shard. Values
// are reconciled (overwritten, not added), so a live daemon can re-export
// on every snapshot and the families always reflect the latest counters.
// The wall-clock families are emitted only when the snapshot was taken with
// telemetry armed, so a counters-only export never advertises empty timing.
func ExportKernelMetrics(c *obs.Collector, ks *simkernel.KernelStats) {
	if c == nil || ks == nil {
		return
	}
	for i := range ks.Shards {
		s := &ks.Shards[i]
		l := obs.Label{Key: "shard", Value: strconv.Itoa(s.Shard)}
		c.Counter("esched_kernel_events_total",
			"Events executed per kernel shard.", l).Reconcile(float64(s.Events))
		c.Counter("esched_kernel_queue_ops_total",
			"Calendar-queue operations per shard by kind.",
			l, obs.Label{Key: "op", Value: "push"}).Reconcile(float64(s.Pushes))
		c.Counter("esched_kernel_queue_ops_total",
			"Calendar-queue operations per shard by kind.",
			l, obs.Label{Key: "op", Value: "pop"}).Reconcile(float64(s.Pops))
		c.Counter("esched_kernel_queue_rebuilds_total",
			"Calendar-queue geometry rebuilds per shard (all causes).", l).Reconcile(float64(s.Rebuilds))
		c.Counter("esched_kernel_queue_recalibrations_total",
			"Cost-triggered calendar-width recalibrations per shard.", l).Reconcile(float64(s.Recalibrations))
		c.Counter("esched_kernel_queue_migrations_total",
			"Far-tier admission passes per shard.", l).Reconcile(float64(s.Migrations))
		c.Gauge("esched_kernel_far_occupancy_peak",
			"Peak far-tier population per shard.", l).Set(float64(s.FarHighWater))
		c.Gauge("esched_kernel_queue_occupancy_peak",
			"Peak total queued events per shard.", l).Set(float64(s.QueueHighWater))
		c.Gauge("esched_kernel_pool_peak_events",
			"Event-arena high-water mark per shard (pooled records allocated).", l).Set(float64(s.PoolHighWater))
		c.Counter("esched_kernel_span_rounds_total",
			"Exact-mode spans in which the shard executed events.", l).Reconcile(float64(s.SpanRounds))
		c.Counter("esched_kernel_lookahead_waits_total",
			"Spans the shard spent waiting above the lookahead bound.", l).Reconcile(float64(s.LookaheadWaits))
		c.Counter("esched_kernel_deferred_effects_total",
			"Deferred effects replayed in global order per shard.", l).Reconcile(float64(s.DeferredEffects))
		c.Gauge("esched_kernel_replay_depth_peak",
			"Deepest single-span deferred-effect replay per shard.", l).Set(float64(s.ReplayDepthMax))
		c.Counter("esched_kernel_slot_hits_total",
			"Free-running slot fast-path consumes per shard.", l).Reconcile(float64(s.SlotHits))
		if ks.Timed {
			c.Counter("esched_kernel_exec_seconds_total",
				"Wall-clock seconds executing event callbacks per shard.", l).Reconcile(float64(s.ExecNS) / 1e9)
			c.Counter("esched_kernel_queue_seconds_total",
				"Wall-clock seconds in queue operations per shard.", l).Reconcile(float64(s.QueueNS) / 1e9)
			c.Counter("esched_kernel_stall_seconds_total",
				"Wall-clock seconds stalled on sync barriers or stragglers per shard.", l).Reconcile(float64(s.StallNS) / 1e9)
		}
	}
	if ks.Timed {
		c.Gauge("esched_kernel_wall_seconds",
			"Wall-clock seconds of telemetry-armed kernel drains.").Set(float64(ks.WallNS) / 1e9)
		c.Counter("esched_kernel_merge_seconds_total",
			"Coordinator seconds replaying deferred effects in global order.").Reconcile(float64(ks.MergeNS) / 1e9)
	}
}
