package storage

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/offline"
	"repro/internal/sched"
	"repro/internal/simkernel"
)

// LiveSet partitions a fleet into per-rack serving shards, each a Live
// facade over a contiguous disk range with its own serial kernel and
// virtual-clock segment, and merges their observability streams back into
// the canonical global order (see journal.go). It is the storage-layer
// half of the sharded serving engine: internal/serve owns the concurrency
// (per-shard combining tokens, admission rings); this type owns the
// partitioning, the journals and the end-of-run merge, so a sharded run's
// trace, state log, metrics and energy report are byte-identical to a
// serial run over the same admission order.
//
// Shard methods (via Shard(i)) follow Live's single-goroutine rule: the
// caller must serialize all calls into one shard. Different shards are
// independent. Flush, SetGauges and Finish run on one goroutine at a time.
//
// With shards == 1 the set degenerates to a single full-range Live wired
// directly to the run options — no journal, no merge, no overhead over
// NewLive.
type LiveSet struct {
	cfg      Config
	loc      sched.Locator
	opts     runOptions
	shards   []*Live
	bases    []int
	journals []*shardJournal // nil when not journaling
	m        *merger
	resp     metrics.ResponseTimes // canonical samples (journaling mode)
	finished bool
}

// NewLiveSet builds a streaming system partitioned into shards decision
// shards. canonical forces journaling even without observers attached, so
// response samples accumulate in global arrival order (Sequential mode
// wants this; Live mode can skip it and concatenate per-shard samples at
// Finish). The same RunOptions as NewLive apply, with the same
// restrictions; any attached observer (tracer, collector, monitor,
// accounting, flight, state log) switches the set to journaling mode,
// since those surfaces are single-stream by contract.
func NewLiveSet(cfg Config, loc sched.Locator, shards int, canonical bool, opts ...RunOption) (*LiveSet, error) {
	if loc == nil {
		return nil, errors.New("storage: nil locator")
	}
	o := applyOptions(opts)
	if len(o.failures) > 0 {
		return nil, errors.New("storage: failure injection is not supported on a Live system")
	}
	if o.cache != nil {
		return nil, errors.New("storage: caches are not supported on a Live system")
	}
	if cfg.Shards > 1 {
		return nil, errors.New("storage: a Live system runs the serial kernel (Shards must be 0 or 1)")
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > cfg.NumDisks {
		return nil, fmt.Errorf("storage: %d serving shards exceed %d disks", shards, cfg.NumDisks)
	}
	ls := &LiveSet{cfg: cfg, loc: loc, opts: o, bases: make([]int, shards)}
	if shards == 1 {
		lv, err := newLiveRange(cfg, loc, o, 0, cfg.NumDisks, nil)
		if err != nil {
			return nil, err
		}
		ls.shards = []*Live{lv}
		return ls, nil
	}
	journaling := canonical || o.tracer != nil || o.collector != nil || o.stateLog != nil
	if journaling {
		ls.journals = make([]*shardJournal, shards)
		// A dispatch-caused spin-up settles within the spin-up time, and no
		// later record references the decision after its disk returns to
		// standby; one full policy cycle bounds the reference horizon.
		decHorizon := cfg.Power.SpinUpTime + cfg.Power.SpinDownTime + cfg.Power.Breakeven()
		ls.m = newMerger(shards, o, &ls.resp, decHorizon)
	}
	ls.shards = make([]*Live, shards)
	for i := range ls.shards {
		base, count := simkernel.ShardRange(cfg.NumDisks, shards, i)
		ls.bases[i] = base
		var jr *shardJournal
		so := runOptions{}
		if journaling {
			jr = &shardJournal{idx: uint64(i)}
			if o.tracer != nil {
				// The relay captures the shard's emissions in journal order;
				// sequence numbers are re-stamped by the real tracer at merge.
				relay := obs.NewTracer(1)
				j := jr
				relay.SetObserver(func(ev obs.Event) { j.event(ev) })
				so.tracer = relay
			}
			ls.journals[i] = jr
		}
		lv, err := newLiveRange(cfg, loc, so, base, count, jr)
		if err != nil {
			return nil, err
		}
		ls.shards[i] = lv
	}
	return ls, nil
}

// NumShards returns the number of decision shards.
func (ls *LiveSet) NumShards() int { return len(ls.shards) }

// Shard returns shard i's streaming facade.
func (ls *LiveSet) Shard(i int) *Live { return ls.shards[i] }

// ShardRange returns the global disk range [base, base+count) owned by
// shard i.
func (ls *LiveSet) ShardRange(i int) (base, count int) {
	return simkernel.ShardRange(ls.cfg.NumDisks, len(ls.shards), i)
}

// Journaling reports whether emissions are being journaled for canonical
// merge (always false with one shard, where the single Live emits
// directly).
func (ls *LiveSet) Journaling() bool { return ls.journals != nil }

// Err returns the first shard's internal simulation error, if any.
func (ls *LiveSet) Err() error {
	for _, lv := range ls.shards {
		if err := lv.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Served sums completed requests across shards. Like all cross-shard
// reads, the caller must hold every shard quiescent for an exact value.
func (ls *LiveSet) Served() int {
	n := 0
	for _, lv := range ls.shards {
		n += lv.Served()
	}
	return n
}

// Dropped sums dropped requests across shards.
func (ls *LiveSet) Dropped() int {
	n := 0
	for _, lv := range ls.shards {
		n += lv.Dropped()
	}
	return n
}

// Accounting returns the carbon/cost accumulator attached via
// WithAccounting, or nil. In journaling mode it observes the merged
// stream, so snapshots must be taken on the merging goroutine.
func (ls *LiveSet) Accounting() *account.Accumulator { return ls.opts.acct }

// Flight returns the flight recorder attached via WithFlight, or nil.
func (ls *LiveSet) Flight() *flight.Recorder { return ls.opts.flight }

// Flush merges and applies every journaled record below the watermark
// upTo. The caller must guarantee no shard can append a record keyed
// before upTo: each shard's future keys are at or after its published
// clock, so the minimum of the published clocks is a safe watermark.
func (ls *LiveSet) Flush(upTo time.Duration) {
	if ls.m != nil {
		ls.m.merge(ls.journals, upTo)
	}
}

// SetGauges publishes the live sim-time and events-fired gauges (the
// serial path's kernel probe equivalent). now and fired must be gathered
// by the caller while it holds the shards quiescent.
func (ls *LiveSet) SetGauges(now time.Duration, fired uint64) {
	if ls.m != nil && ls.m.rm != nil {
		ls.m.rm.SimTime.Set(now.Seconds())
		ls.m.rm.EventsFired.Set(float64(fired))
	}
}

// KernelStats merges the per-shard serial kernels' introspection counters
// into one snapshot, one pseudo-shard per decision shard. All shards must
// be quiescent.
func (ls *LiveSet) KernelStats() *simkernel.KernelStats {
	if len(ls.shards) == 1 {
		return ls.shards[0].KernelStats()
	}
	out := &simkernel.KernelStats{Shards: make([]simkernel.ShardStats, len(ls.shards))}
	for i, lv := range ls.shards {
		ss := lv.KernelStats().Shards[0]
		ss.Shard = i
		out.Shards[i] = ss
		out.Events += ss.Events
	}
	return out
}

// Finish drains every shard, settles the fleet to a shared horizon,
// closes the disks, replays any remaining journal, and reconciles the
// merged result — the sharded equivalent of Live.Finish, producing the
// same Result a serial run over the same admission order would. All
// shards must be exclusively owned by the calling goroutine.
func (ls *LiveSet) Finish(name string) (*Result, error) {
	if len(ls.shards) == 1 {
		return ls.shards[0].Finish(name)
	}
	if ls.finished {
		return nil, errors.New("storage: Finish called twice on a LiveSet")
	}
	ls.finished = true
	// Phase one: drain each shard's outstanding work independently. The
	// shards share no disks, so the serial engine's stop time — the instant
	// the last outstanding request completes — is the maximum of the
	// per-shard post-drain clocks.
	for _, lv := range ls.shards {
		if err := lv.DrainOutstanding(); err != nil {
			return nil, err
		}
	}
	var maxNow time.Duration
	for _, lv := range ls.shards {
		if n := lv.Now(); n > maxNow {
			maxNow = n
		}
	}
	end := maxNow + ls.cfg.Power.Breakeven() + ls.cfg.Power.SpinDownTime + time.Second
	// Phase two: settle every shard to the shared horizon, then close the
	// disks (their end-of-run events land in the journals) and merge.
	for _, lv := range ls.shards {
		if err := lv.SettleUntil(end); err != nil {
			return nil, err
		}
	}
	res := &Result{
		Scheduler: name,
		Horizon:   end,
		PerDisk:   make([]diskmodel.Stats, ls.cfg.NumDisks),
	}
	ingested := 0
	var fired uint64
	for i, lv := range ls.shards {
		stats := lv.CloseDisks()
		copy(res.PerDisk[ls.bases[i]:], stats)
		res.Served += lv.Served()
		res.Dropped += lv.Dropped()
		ingested += lv.Ingested()
		fired += lv.Fired()
	}
	if ls.m != nil {
		ls.m.merge(ls.journals, -1)
		res.Response = ls.resp
	} else {
		for _, lv := range ls.shards {
			res.Response.Append(&lv.sys.resp)
		}
	}
	// Accumulate energy in global disk order so float summation matches the
	// serial path bit for bit.
	for _, st := range res.PerDisk {
		res.Energy += st.Energy
		res.SpinUps += st.SpinUps
		res.SpinDowns += st.SpinDowns
		for ps := core.StateStandby; ps <= core.StateSpinDown; ps++ {
			res.EnergyByState[ps] += st.EnergyIn[ps]
		}
	}
	res.AlwaysOnEnergy = offline.AlwaysOnEnergy(ls.cfg.Power, ls.cfg.NumDisks, end)
	o := ls.opts
	o.tracer.RunEnd(end, fired)
	if o.acct != nil {
		o.acct.Finalize()
		if o.monitor != nil {
			o.monitor.VerifyWindows(o.acct.ByState(), res.EnergyByState)
		}
	}
	if o.monitor != nil {
		o.monitor.VerifyResult(res.EnergyByState)
		o.monitor.Finish()
	}
	if ls.m != nil && ls.m.rm != nil {
		rm := ls.m.rm
		rm.ReconcileEnergy(res.EnergyByState)
		rm.SpinUps.Reconcile(float64(res.SpinUps))
		rm.SpinDowns.Reconcile(float64(res.SpinDowns))
		rm.Served.Reconcile(float64(res.Served))
		rm.Dropped.Reconcile(float64(res.Dropped))
		rm.SimTime.Set(end.Seconds())
		rm.EventsFired.Set(float64(fired))
	}
	if o.tracer != nil {
		if err := o.tracer.Flush(); err != nil {
			return nil, fmt.Errorf("storage: event sink: %w", err)
		}
	}
	if want := ingested - res.Dropped; res.Served != want {
		return nil, fmt.Errorf("storage: served %d of %d ingested requests", res.Served, want)
	}
	return res, nil
}
