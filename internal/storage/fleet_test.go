package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func smallFleetConfig() FleetConfig {
	cfg := DefaultFleetConfig()
	cfg.NumDisks = 240
	cfg.NumRacks = 12
	cfg.RequestsPerDisk = 25
	cfg.BurstLen = 60
	cfg.Seed = 7
	return cfg
}

// TestFleetShardInvariant pins the free-running mode's guarantee: every
// deterministic field of FleetResult — event count, horizon, energy float
// bits, spin counts, latency mean and percentiles — is identical between
// the serial engine and the sharded kernel at any shard and worker count,
// and across repeated runs.
func TestFleetShardInvariant(t *testing.T) {
	t.Parallel()
	run := func(shards, workers int) FleetResult {
		cfg := smallFleetConfig()
		cfg.Shards = shards
		cfg.Workers = workers
		res, err := RunFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Deterministic()
	}
	ref := run(0, 0)
	if ref.Served != 240*25 {
		t.Fatalf("served %d of %d requests", ref.Served, 240*25)
	}
	if ref.SpinUps == 0 || ref.SpinDowns == 0 {
		t.Fatal("burst gaps did not exercise spin cycles")
	}
	if ref.Energy <= 0 || ref.Energy >= ref.AlwaysOnEnergy {
		t.Fatalf("energy %.1f J outside (0, always-on %.1f J)", ref.Energy, ref.AlwaysOnEnergy)
	}
	if ref.P50 > ref.P90 || ref.P90 > ref.P99 || ref.MeanResponse <= 0 {
		t.Fatalf("implausible latency profile: mean=%v p50=%v p90=%v p99=%v",
			ref.MeanResponse, ref.P50, ref.P90, ref.P99)
	}
	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {2, 1}, {4, 4}, {6, 2}, {12, 8},
	} {
		if got := run(tc.shards, tc.workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("shards=%d workers=%d diverges from serial:\n%+v\nvs\n%+v",
				tc.shards, tc.workers, got, ref)
		}
	}
	if a, b := run(4, 4), run(4, 4); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical sharded fleet runs diverged")
	}
}

// TestFleetValidate pins the topology constraints: racks divide disks,
// shards divide racks (a rack never straddles a shard), replication fits
// in a rack.
func TestFleetValidate(t *testing.T) {
	t.Parallel()
	base := smallFleetConfig() // 240 disks, 12 racks, rf 3
	for _, tc := range []struct {
		name   string
		mutate func(*FleetConfig)
		ok     bool
	}{
		{"default", func(*FleetConfig) {}, true},
		{"serial", func(c *FleetConfig) { c.Shards = 1 }, true},
		{"shards divide racks", func(c *FleetConfig) { c.Shards = 6 }, true},
		{"shards eq racks", func(c *FleetConfig) { c.Shards = 12 }, true},
		{"negative shards", func(c *FleetConfig) { c.Shards = -1 }, false},
		{"shards straddle racks", func(c *FleetConfig) { c.Shards = 5 }, false},
		{"more shards than racks", func(c *FleetConfig) { c.Shards = 24 }, false},
		{"racks straddle disks", func(c *FleetConfig) { c.NumRacks = 7 }, false},
		{"rf too big", func(c *FleetConfig) { c.ReplicationFactor = 21 }, false},
		{"rf zero", func(c *FleetConfig) { c.ReplicationFactor = 0 }, false},
		{"no requests", func(c *FleetConfig) { c.RequestsPerDisk = 0 }, false},
		{"no gap", func(c *FleetConfig) { c.IdleGap = 0 }, false},
	} {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestLatBucket pins the histogram mapping: monotone, floor-consistent,
// in range.
func TestLatBucket(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	prev := -1
	for _, ns := range []uint64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, 1 << 40, 1<<63 - 1} {
		b := latBucket(ns)
		if b < prev {
			t.Fatalf("latBucket not monotone at %d", ns)
		}
		prev = b
		if b < 0 || b >= fleetHistBuckets {
			t.Fatalf("latBucket(%d) = %d out of range", ns, b)
		}
		if f := bucketFloor(b); uint64(f) > ns {
			t.Fatalf("bucketFloor(%d) = %d above sample %d", b, f, ns)
		}
	}
	for i := 0; i < 10000; i++ {
		ns := rng.Uint64() >> uint(rng.Intn(60))
		b := latBucket(ns)
		if f := bucketFloor(b); uint64(f) > ns || latBucket(uint64(f)) != b {
			t.Fatalf("bucket %d floor %d inconsistent for %d", b, f, ns)
		}
	}
	if latBucket(uint64(time.Hour)) >= fleetHistBuckets {
		t.Fatal("hour-scale latency overflows the histogram")
	}
}
