// Package dpm analyzes single-disk dynamic power management — the theory
// the paper's premise rests on (Section 1): a fixed idleness threshold of
// T_B = E_up/down / P_I makes the spin-down policy 2-competitive against
// an offline-optimal power manager [Irani et al.].
//
// The package evaluates policies over a disk's idle-gap sequence (the gaps
// between consecutive requests on one disk), provides the offline oracle,
// exact competitive-ratio measurement, and an adaptive (EWMA-predictive)
// policy as an extension. It deliberately ignores transition times —
// the classic ski-rental setting — so its numbers are analytic, not
// simulated; the event simulator in internal/storage covers the full
// model.
package dpm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/power"
)

// GapPolicy decides, for each idle gap, how long to wait before spinning
// down. Policies may adapt using previously observed gaps.
type GapPolicy interface {
	// Threshold returns the idleness threshold to use for the next gap,
	// given the gaps observed so far. A negative duration means "never
	// spin down" for this gap.
	Threshold(history []time.Duration) time.Duration
	// Name identifies the policy in reports.
	Name() string
}

// GapCost returns the energy spent over one idle gap when using threshold
// tau: idle power until min(gap, tau), then one spin-down/up cycle plus
// standby power for the remainder if the gap outlives the threshold.
// A negative tau never spins down.
func GapCost(cfg power.Config, gap, tau time.Duration) float64 {
	if gap < 0 {
		panic(fmt.Sprintf("dpm: negative gap %s", gap))
	}
	if tau < 0 || gap <= tau {
		return gap.Seconds() * cfg.IdlePower
	}
	return tau.Seconds()*cfg.IdlePower +
		cfg.UpDownEnergy() +
		(gap-tau).Seconds()*cfg.StandbyPower
}

// OracleGapCost returns the offline-optimal cost of one gap: with the gap
// length known in advance, either stay idle throughout or spin down
// immediately, whichever is cheaper.
func OracleGapCost(cfg power.Config, gap time.Duration) float64 {
	idle := gap.Seconds() * cfg.IdlePower
	cycle := cfg.UpDownEnergy() + gap.Seconds()*cfg.StandbyPower
	return math.Min(idle, cycle)
}

// OptimalThreshold returns the threshold tau* = E_up/down / (P_I - P_s)
// that makes the fixed-threshold policy 2-competitive. It coincides with
// power.Config.Breakeven when standby power is zero.
func OptimalThreshold(cfg power.Config) time.Duration {
	denom := cfg.IdlePower - cfg.StandbyPower
	if denom <= 0 {
		return -1 // spinning down can never pay off
	}
	return time.Duration(cfg.UpDownEnergy() / denom * float64(time.Second))
}

// PolicyCost evaluates a policy over a gap sequence.
func PolicyCost(cfg power.Config, gaps []time.Duration, p GapPolicy) float64 {
	total := 0.0
	for i, g := range gaps {
		total += GapCost(cfg, g, p.Threshold(gaps[:i]))
	}
	return total
}

// OracleCost evaluates the offline-optimal manager over a gap sequence.
func OracleCost(cfg power.Config, gaps []time.Duration) float64 {
	total := 0.0
	for _, g := range gaps {
		total += OracleGapCost(cfg, g)
	}
	return total
}

// CompetitiveRatio returns PolicyCost / OracleCost over the gap sequence
// (1 when both are zero).
func CompetitiveRatio(cfg power.Config, gaps []time.Duration, p GapPolicy) float64 {
	opt := OracleCost(cfg, gaps)
	alg := PolicyCost(cfg, gaps, p)
	if opt == 0 {
		if alg == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return alg / opt
}

// Fixed is the fixed-threshold policy; with Tau = OptimalThreshold it is
// the paper's 2CPM.
type Fixed struct {
	Tau time.Duration
}

// Threshold implements GapPolicy.
func (f Fixed) Threshold([]time.Duration) time.Duration { return f.Tau }

// Name implements GapPolicy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%s)", f.Tau) }

// NeverSpinDown keeps the disk idle through every gap (always-on).
type NeverSpinDown struct{}

// Threshold implements GapPolicy.
func (NeverSpinDown) Threshold([]time.Duration) time.Duration { return -1 }

// Name implements GapPolicy.
func (NeverSpinDown) Name() string { return "never" }

// Immediate spins down the instant the disk goes idle (aggressive).
type Immediate struct{}

// Threshold implements GapPolicy.
func (Immediate) Threshold([]time.Duration) time.Duration { return 0 }

// Name implements GapPolicy.
func (Immediate) Name() string { return "immediate" }

// EWMAPredictive adapts the threshold from an exponentially weighted
// moving average of past gaps (the "prediction technique" the paper's
// Section 3.3 sketches as future work): when the predicted next gap
// exceeds the breakeven threshold it spins down immediately, otherwise it
// waits the full 2-competitive threshold as a safety net.
type EWMAPredictive struct {
	// Alpha is the smoothing factor in (0,1]; larger reacts faster.
	Alpha float64
	// Breakeven is the protective threshold (tau* of the power model).
	Breakeven time.Duration
}

// Threshold implements GapPolicy.
func (p EWMAPredictive) Threshold(history []time.Duration) time.Duration {
	if p.Alpha <= 0 || p.Alpha > 1 {
		panic(fmt.Sprintf("dpm: EWMA alpha %v outside (0,1]", p.Alpha))
	}
	if len(history) == 0 {
		return p.Breakeven
	}
	pred := float64(history[0])
	for _, g := range history[1:] {
		pred = p.Alpha*float64(g) + (1-p.Alpha)*pred
	}
	if time.Duration(pred) > p.Breakeven {
		return 0 // expect a long gap: sleep immediately
	}
	return p.Breakeven
}

// Name implements GapPolicy.
func (p EWMAPredictive) Name() string { return fmt.Sprintf("ewma(%.2f)", p.Alpha) }

var (
	_ GapPolicy = Fixed{}
	_ GapPolicy = NeverSpinDown{}
	_ GapPolicy = Immediate{}
	_ GapPolicy = EWMAPredictive{}
)

// Gaps extracts the idle-gap sequence from a sorted slice of request times
// on one disk.
func Gaps(times []time.Duration) []time.Duration {
	if len(times) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		g := times[i] - times[i-1]
		if g < 0 {
			panic(fmt.Sprintf("dpm: unsorted request times at %d", i))
		}
		out = append(out, g)
	}
	return out
}
