package dpm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/power"
)

func TestGapCostRegions(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	tau := 10 * time.Second
	// Gap shorter than the threshold: pure idle energy.
	if got, want := GapCost(cfg, 4*time.Second, tau), 4*cfg.IdlePower; math.Abs(got-want) > 1e-9 {
		t.Errorf("short gap cost = %v, want %v", got, want)
	}
	// Gap at the threshold boundary: still idle-only.
	if got, want := GapCost(cfg, tau, tau), 10*cfg.IdlePower; math.Abs(got-want) > 1e-9 {
		t.Errorf("boundary gap cost = %v, want %v", got, want)
	}
	// Long gap: threshold idle + cycle + standby remainder.
	got := GapCost(cfg, 100*time.Second, tau)
	want := 10*cfg.IdlePower + cfg.UpDownEnergy() + 90*cfg.StandbyPower
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("long gap cost = %v, want %v", got, want)
	}
	// Negative threshold: never spin down.
	if got, want := GapCost(cfg, 100*time.Second, -1), 100*cfg.IdlePower; math.Abs(got-want) > 1e-9 {
		t.Errorf("never-spin cost = %v, want %v", got, want)
	}
}

func TestGapCostPanicsOnNegativeGap(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	GapCost(power.DefaultConfig(), -time.Second, 0)
}

func TestOracleTakesCheaperBranch(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	short := time.Second
	long := time.Hour
	if got, want := OracleGapCost(cfg, short), short.Seconds()*cfg.IdlePower; math.Abs(got-want) > 1e-9 {
		t.Errorf("oracle short gap = %v, want idle %v", got, want)
	}
	want := cfg.UpDownEnergy() + long.Seconds()*cfg.StandbyPower
	if got := OracleGapCost(cfg, long); math.Abs(got-want) > 1e-9 {
		t.Errorf("oracle long gap = %v, want cycle %v", got, want)
	}
}

func TestOptimalThreshold(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	want := cfg.UpDownEnergy() / (cfg.IdlePower - cfg.StandbyPower)
	if got := OptimalThreshold(cfg).Seconds(); math.Abs(got-want) > 1e-6 {
		t.Errorf("tau* = %v, want %v", got, want)
	}
	// Zero standby power: coincides with the power package's breakeven.
	cfg.StandbyPower = 0
	if got, want := OptimalThreshold(cfg), cfg.Breakeven(); got != want {
		t.Errorf("tau* = %v, want breakeven %v", got, want)
	}
	// Standby draws as much as idle: sleeping never pays.
	cfg.StandbyPower = cfg.IdlePower
	if got := OptimalThreshold(cfg); got >= 0 {
		t.Errorf("tau* = %v, want negative (never spin down)", got)
	}
}

// The paper's Section 1 claim: the fixed breakeven threshold is
// 2-competitive against the offline oracle, for arbitrary gap sequences.
func TestTwoCompetitiveProperty(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	policy := Fixed{Tau: OptimalThreshold(cfg)}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		gaps := make([]time.Duration, int(n)%50+1)
		for i := range gaps {
			gaps[i] = time.Duration(rng.Int63n(int64(5 * time.Minute)))
		}
		return CompetitiveRatio(cfg, gaps, policy) <= 2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The bound is tight: a gap just past tau* forces the worst ratio, which
// is exactly 2 - P_s/P_I (and exactly 2 when standby power is zero).
func TestTwoCompetitiveBoundIsTight(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	tau := OptimalThreshold(cfg)
	ratio := CompetitiveRatio(cfg, []time.Duration{tau + time.Nanosecond}, Fixed{Tau: tau})
	want := 2 - cfg.StandbyPower/cfg.IdlePower
	if math.Abs(ratio-want) > 1e-3 {
		t.Errorf("adversarial ratio = %v, want %v", ratio, want)
	}

	zeroStandby := cfg
	zeroStandby.StandbyPower = 0
	tau0 := OptimalThreshold(zeroStandby)
	ratio0 := CompetitiveRatio(zeroStandby, []time.Duration{tau0 + time.Nanosecond}, Fixed{Tau: tau0})
	if math.Abs(ratio0-2) > 1e-3 {
		t.Errorf("zero-standby adversarial ratio = %v, want 2", ratio0)
	}
}

// No fixed threshold beats the oracle, and extreme policies are strictly
// worse on mixed workloads.
func TestPolicyOrderingOnMixedGaps(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	tau := OptimalThreshold(cfg)
	// Alternate short (idle-friendly) and long (sleep-friendly) gaps.
	var gaps []time.Duration
	for i := 0; i < 50; i++ {
		gaps = append(gaps, 2*time.Second, 10*time.Minute)
	}
	oracle := OracleCost(cfg, gaps)
	breakeven := PolicyCost(cfg, gaps, Fixed{Tau: tau})
	never := PolicyCost(cfg, gaps, NeverSpinDown{})
	immediate := PolicyCost(cfg, gaps, Immediate{})
	if breakeven < oracle-1e-9 {
		t.Error("fixed threshold beat the oracle")
	}
	if never <= breakeven {
		t.Errorf("always-on (%v) should lose to breakeven (%v) on long gaps", never, breakeven)
	}
	if immediate <= oracle-1e-9 {
		t.Error("immediate spin-down beat the oracle")
	}
}

func TestEWMAPredictiveBeatsFixedOnBimodalWorkload(t *testing.T) {
	t.Parallel()
	// A strongly autocorrelated workload: long runs of short gaps, then
	// long runs of long gaps. The predictor sleeps immediately during the
	// long-gap regime and saves the breakeven idle energy each time.
	cfg := power.DefaultConfig()
	tau := OptimalThreshold(cfg)
	var gaps []time.Duration
	for block := 0; block < 10; block++ {
		for i := 0; i < 20; i++ {
			gaps = append(gaps, time.Second)
		}
		for i := 0; i < 20; i++ {
			gaps = append(gaps, 5*time.Minute)
		}
	}
	fixed := PolicyCost(cfg, gaps, Fixed{Tau: tau})
	ewma := PolicyCost(cfg, gaps, EWMAPredictive{Alpha: 0.5, Breakeven: tau})
	if ewma >= fixed {
		t.Errorf("EWMA (%v) did not beat fixed (%v) on bimodal gaps", ewma, fixed)
	}
	// And it must stay 2-competitive-ish: never catastrophically worse.
	oracle := OracleCost(cfg, gaps)
	if ewma > 2.5*oracle {
		t.Errorf("EWMA ratio %.2f too far from oracle", ewma/oracle)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	EWMAPredictive{Alpha: 0}.Threshold([]time.Duration{time.Second})
}

func TestCompetitiveRatioEdgeCases(t *testing.T) {
	t.Parallel()
	cfg := power.DefaultConfig()
	if got := CompetitiveRatio(cfg, nil, Fixed{}); got != 1 {
		t.Errorf("empty sequence ratio = %v, want 1", got)
	}
	if got := CompetitiveRatio(cfg, []time.Duration{0}, Fixed{Tau: time.Second}); got != 1 {
		t.Errorf("zero-gap ratio = %v, want 1", got)
	}
}

func TestGaps(t *testing.T) {
	t.Parallel()
	times := []time.Duration{time.Second, 3 * time.Second, 10 * time.Second}
	got := Gaps(times)
	want := []time.Duration{2 * time.Second, 7 * time.Second}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Gaps = %v, want %v", got, want)
	}
	if Gaps(times[:1]) != nil {
		t.Error("single time should have no gaps")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on unsorted times")
		}
	}()
	Gaps([]time.Duration{5 * time.Second, time.Second})
}

func TestPolicyNames(t *testing.T) {
	t.Parallel()
	for _, p := range []GapPolicy{Fixed{Tau: time.Second}, NeverSpinDown{}, Immediate{}, EWMAPredictive{Alpha: 0.3}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func BenchmarkPolicyCostFixed(b *testing.B) {
	cfg := power.DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	gaps := make([]time.Duration, 10000)
	for i := range gaps {
		gaps[i] = time.Duration(rng.Int63n(int64(time.Minute)))
	}
	p := Fixed{Tau: OptimalThreshold(cfg)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PolicyCost(cfg, gaps, p)
	}
}
