package graph

import (
	"math/rand"
	"runtime"
	"testing"
)

// benchGraphEdges generates a reproducible bursty conflict graph: clusters
// of densely connected vertices (mimicking the offline reduction's
// same-request cliques) plus sparse cross-links.
func benchGraphEdges(n int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	const cluster = 16
	for base := 0; base+cluster <= n; base += cluster {
		for i := 0; i < cluster; i++ {
			for j := i + 1; j < cluster; j++ {
				if rng.Intn(3) > 0 {
					edges = append(edges, [2]int{base + i, base + j})
				}
			}
		}
	}
	for k := 0; k < n/2; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

func buildBenchGraph(n int, edges [][2]int, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, rng.Float64()*100)
	}
	g.Grow(len(edges))
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// BenchmarkGraphBuildFinalize measures edge insertion plus the CSR compile
// (the construction path of every offline reduction graph).
func BenchmarkGraphBuildFinalize(b *testing.B) {
	const n = 8192
	edges := benchGraphEdges(n, 11)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(13))
		g := buildBenchGraph(n, edges, rng)
		g.Finalize()
	}
}

func BenchmarkGWMIN(b *testing.B) {
	const n = 8192
	g := buildBenchGraph(n, benchGraphEdges(n, 11), rand.New(rand.NewSource(13)))
	g.Finalize()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GWMIN(g)
	}
}

func BenchmarkHybridMWIS(b *testing.B) {
	const n = 8192
	g := buildBenchGraph(n, benchGraphEdges(n, 11), rand.New(rand.NewSource(13)))
	g.Finalize()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HybridMWIS(g, 18)
	}
}

// BenchmarkParallelHybridMWIS is HybridMWIS with the component solves
// spread over every CPU; compare against BenchmarkHybridMWIS for the
// component-parallel speedup on this machine.
func BenchmarkParallelHybridMWIS(b *testing.B) {
	const n = 8192
	g := buildBenchGraph(n, benchGraphEdges(n, 11), rand.New(rand.NewSource(13)))
	g.Finalize()
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParallelHybridMWIS(g, 18, workers)
	}
}
