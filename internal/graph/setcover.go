// Package graph implements the two NP-hard combinatorial problems the
// paper's schedulers reduce to (Section 3, Section 6): weighted set cover
// (batch scheduling, Theorem 2) and maximum weighted independent set
// (offline scheduling, Theorems 1 and 3).
//
// For each problem it provides the approximation algorithm the paper uses
// (the H_n-approximate greedy cover; the GWMIN greedy of Sakai et al. [22])
// plus an exact branch-and-bound solver used on small instances for
// benchmarking optimality gaps and for property tests.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Set is one candidate set in a weighted set cover instance. In the batch
// scheduling reduction a Set is a disk: its Elements are the queued requests
// whose block has a replica on the disk and its Weight is the disk's
// additional energy cost E(d_k) (Eq. 5).
type Set struct {
	Weight   float64
	Elements []int
}

// CoverInstance is a weighted set cover problem over elements
// 0..NumElements-1.
type CoverInstance struct {
	NumElements int
	Sets        []Set
}

// ErrUncoverable is returned when some element appears in no set.
var ErrUncoverable = errors.New("graph: element not covered by any set")

// Validate checks element indices and weights.
func (in CoverInstance) Validate() error {
	if in.NumElements < 0 {
		return fmt.Errorf("graph: negative element count %d", in.NumElements)
	}
	for si, s := range in.Sets {
		if s.Weight < 0 || math.IsNaN(s.Weight) {
			return fmt.Errorf("graph: set %d has invalid weight %v", si, s.Weight)
		}
		for _, e := range s.Elements {
			if e < 0 || e >= in.NumElements {
				return fmt.Errorf("graph: set %d references element %d outside [0,%d)", si, e, in.NumElements)
			}
		}
	}
	return nil
}

// IsCover reports whether the chosen set indices cover every element.
func (in CoverInstance) IsCover(chosen []int) bool {
	covered := make([]bool, in.NumElements)
	n := 0
	for _, si := range chosen {
		if si < 0 || si >= len(in.Sets) {
			return false
		}
		for _, e := range in.Sets[si].Elements {
			if !covered[e] {
				covered[e] = true
				n++
			}
		}
	}
	return n == in.NumElements
}

// Cost returns the total weight of the chosen sets.
func (in CoverInstance) Cost(chosen []int) float64 {
	total := 0.0
	for _, si := range chosen {
		total += in.Sets[si].Weight
	}
	return total
}

// GreedyCover runs the classic greedy weighted set cover algorithm: it
// repeatedly selects the most cost-effective set (minimum weight per newly
// covered element) until all elements are covered. It is an H_n-factor
// approximation (Section 6). Returns the chosen set indices in selection
// order and their total weight.
func GreedyCover(in CoverInstance) ([]int, float64, error) {
	return GreedyCoverWith(in, nil)
}

// GreedyScratch holds the greedy cover's working buffers so a caller
// solving one instance per scheduling tick (sched.WSC) reuses them instead
// of allocating per call. The zero value is ready; not safe for concurrent
// use.
type GreedyScratch struct {
	covered []bool
	chosen  []int
}

// GreedyCoverWith is GreedyCover drawing its buffers from s (nil s
// allocates fresh ones). The returned slice aliases s and is valid only
// until s's next use.
func GreedyCoverWith(in CoverInstance, s *GreedyScratch) ([]int, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	if s == nil {
		s = &GreedyScratch{}
	}
	if cap(s.covered) < in.NumElements {
		s.covered = make([]bool, in.NumElements)
	} else {
		s.covered = s.covered[:in.NumElements]
		clear(s.covered)
	}
	covered := s.covered
	remaining := in.NumElements
	chosen := s.chosen[:0]
	total := 0.0
	for remaining > 0 {
		best, bestRatio, bestGain := -1, math.Inf(1), 0
		for si, s := range in.Sets {
			gain := 0
			for _, e := range s.Elements {
				if !covered[e] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			ratio := s.Weight / float64(gain)
			// Tie-break on larger gain, then lower index, for determinism.
			if ratio < bestRatio || (ratio == bestRatio && gain > bestGain) {
				best, bestRatio, bestGain = si, ratio, gain
			}
		}
		if best < 0 {
			return nil, 0, ErrUncoverable
		}
		chosen = append(chosen, best)
		total += in.Sets[best].Weight
		for _, e := range in.Sets[best].Elements {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	s.chosen = chosen
	return chosen, total, nil
}

// ExactCover solves weighted set cover optimally by branch and bound.
// Intended for small instances (tests, optimality-gap benchmarks); the
// search is exponential in the worst case. maxExpansions caps the search
// (0 means no cap); exceeding it returns an error.
func ExactCover(in CoverInstance, maxExpansions int) ([]int, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	// Precompute, per element, the sets containing it (sorted by weight so
	// cheap branches are explored first).
	setsFor := make([][]int, in.NumElements)
	for si, s := range in.Sets {
		for _, e := range s.Elements {
			setsFor[e] = append(setsFor[e], si)
		}
	}
	for e, ss := range setsFor {
		if len(ss) == 0 && in.NumElements > 0 {
			return nil, 0, fmt.Errorf("%w: element %d", ErrUncoverable, e)
		}
		sort.Slice(ss, func(i, j int) bool { return in.Sets[ss[i]].Weight < in.Sets[ss[j]].Weight })
	}
	// Seed the upper bound with the greedy solution.
	bestChosen, bestCost, err := GreedyCover(in)
	if err != nil {
		return nil, 0, err
	}
	bestChosen = append([]int(nil), bestChosen...)

	covered := make([]int, in.NumElements) // coverage multiplicity
	remaining := in.NumElements
	var cur []int
	expansions := 0
	exceeded := false

	var rec func(cost float64)
	rec = func(cost float64) {
		if exceeded {
			return
		}
		if remaining == 0 {
			if cost < bestCost {
				bestCost = cost
				bestChosen = append(bestChosen[:0], cur...)
			}
			return
		}
		if cost >= bestCost {
			return
		}
		// Branch on the first uncovered element.
		first := -1
		for e := 0; e < in.NumElements; e++ {
			if covered[e] == 0 {
				first = e
				break
			}
		}
		for _, si := range setsFor[first] {
			if maxExpansions > 0 {
				expansions++
				if expansions > maxExpansions {
					exceeded = true
					return
				}
			}
			cur = append(cur, si)
			for _, e := range in.Sets[si].Elements {
				covered[e]++
				if covered[e] == 1 {
					remaining--
				}
			}
			rec(cost + in.Sets[si].Weight)
			for _, e := range in.Sets[si].Elements {
				covered[e]--
				if covered[e] == 0 {
					remaining++
				}
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	if exceeded {
		return nil, 0, fmt.Errorf("graph: ExactCover exceeded %d expansions", maxExpansions)
	}
	sort.Ints(bestChosen)
	return bestChosen, bestCost, nil
}
