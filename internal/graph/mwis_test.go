package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(weights []float64) *Graph {
	g := NewGraph(len(weights))
	for v, w := range weights {
		g.SetWeight(v, w)
	}
	for v := 0; v+1 < len(weights); v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	t.Parallel()
	g := NewGraph(3)
	g.SetWeight(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, reversed
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1 (duplicate edge ignored)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge missing inserted edge")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge reports phantom edge")
	}
	if g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees = %d,%d", g.Degree(1), g.Degree(2))
	}
}

func TestGraphSelfLoopPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("AddEdge(2,2) did not panic")
		}
	}()
	NewGraph(3).AddEdge(2, 2)
}

func TestGraphNegativeWeightPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("SetWeight(-1) did not panic")
		}
	}()
	NewGraph(1).SetWeight(0, -1)
}

func TestIsIndependentSet(t *testing.T) {
	t.Parallel()
	g := pathGraph([]float64{1, 1, 1})
	tests := []struct {
		name string
		set  []int
		want bool
	}{
		{"empty", nil, true},
		{"endpoints", []int{0, 2}, true},
		{"adjacent", []int{0, 1}, false},
		{"duplicate vertex", []int{0, 0}, false},
		{"out of range", []int{7}, false},
	}
	for _, tc := range tests {
		if got := g.IsIndependentSet(tc.set); got != tc.want {
			t.Errorf("%s: IsIndependentSet(%v) = %v, want %v", tc.name, tc.set, got, tc.want)
		}
	}
}

func TestExactMWISPath(t *testing.T) {
	t.Parallel()
	// Path 1-10-1-10-1: optimum picks the two 10s (weight 20).
	g := pathGraph([]float64{1, 10, 1, 10, 1})
	is, w := ExactMWIS(g)
	if w != 20 {
		t.Errorf("ExactMWIS weight = %v, want 20", w)
	}
	if !g.IsIndependentSet(is) {
		t.Errorf("ExactMWIS returned dependent set %v", is)
	}
}

func TestExactMWISEmptyAndEdgeless(t *testing.T) {
	t.Parallel()
	is, w := ExactMWIS(NewGraph(0))
	if len(is) != 0 || w != 0 {
		t.Errorf("empty graph: is=%v w=%v", is, w)
	}
	g := NewGraph(3)
	for v := 0; v < 3; v++ {
		g.SetWeight(v, float64(v+1))
	}
	is, w = ExactMWIS(g)
	if w != 6 || len(is) != 3 {
		t.Errorf("edgeless graph: is=%v w=%v, want all vertices weight 6", is, w)
	}
}

func TestGWMINIsIndependentAndReasonable(t *testing.T) {
	t.Parallel()
	g := pathGraph([]float64{1, 10, 1, 10, 1})
	is, w := GWMIN(g)
	if !g.IsIndependentSet(is) {
		t.Fatalf("GWMIN returned dependent set %v", is)
	}
	if w != 20 {
		t.Errorf("GWMIN weight = %v, want 20 on this easy path", w)
	}
	if got := g.SetWeightSum(is); got != w {
		t.Errorf("reported weight %v != recomputed %v", w, got)
	}
}

func TestGWMIN2IsIndependent(t *testing.T) {
	t.Parallel()
	g := pathGraph([]float64{5, 6, 7, 8, 9, 10})
	is, w := GWMIN2(g)
	if !g.IsIndependentSet(is) {
		t.Fatalf("GWMIN2 returned dependent set %v", is)
	}
	if w <= 0 {
		t.Errorf("GWMIN2 weight = %v", w)
	}
}

func TestGWMINStarGraph(t *testing.T) {
	t.Parallel()
	// Star: center weight 2, five leaves weight 1 each. Optimal = leaves (5);
	// GWMIN's degree penalty (2/6 < 1/2) steers it away from the center.
	g := NewGraph(6)
	g.SetWeight(0, 2)
	for v := 1; v < 6; v++ {
		g.SetWeight(v, 1)
		g.AddEdge(0, v)
	}
	_, w := GWMIN(g)
	if w != 5 {
		t.Errorf("GWMIN on star = %v, want 5 (leaves beat center via degree penalty)", w)
	}
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, rng.Float64()*10)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Properties on random graphs: all algorithms return independent sets;
// exact >= greedy; GWMIN respects its published lower bound
// Sum_v w(v)/(deg(v)+1).
func TestMWISProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		g := randomGraph(rng, n, 0.4)
		exactIS, exactW := ExactMWIS(g)
		if !g.IsIndependentSet(exactIS) {
			return false
		}
		for _, algo := range []func(*Graph) ([]int, float64){GWMIN, GWMIN2} {
			is, w := algo(g)
			if !g.IsIndependentSet(is) {
				return false
			}
			if w > exactW+1e-9 {
				return false
			}
			if math.Abs(g.SetWeightSum(is)-w) > 1e-9 {
				return false
			}
		}
		bound := 0.0
		for v := 0; v < n; v++ {
			bound += g.Weight(v) / float64(g.Degree(v)+1)
		}
		_, gw := GWMIN(g)
		return gw >= bound-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGWMINLargeSparseGraphTerminates(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	n := 20000
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, rng.Float64())
	}
	for i := 0; i < 5*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	is, w := GWMIN(g)
	if !g.IsIndependentSet(is) {
		t.Fatal("GWMIN returned dependent set on large graph")
	}
	if w <= 0 || len(is) == 0 {
		t.Errorf("GWMIN degenerate result: |IS|=%d w=%v", len(is), w)
	}
}

func BenchmarkGWMINSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 5000
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.SetWeight(v, rng.Float64())
	}
	for i := 0; i < 5*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GWMIN(g)
	}
}

func BenchmarkGreedyCover(b *testing.B) {
	in := randomCoverInstance(rand.New(rand.NewSource(3)), 200, 100)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := GreedyCover(in); err != nil {
			b.Fatal(err)
		}
	}
}
