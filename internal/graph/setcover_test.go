package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyCoverSimple(t *testing.T) {
	t.Parallel()
	in := CoverInstance{
		NumElements: 4,
		Sets: []Set{
			{Weight: 1, Elements: []int{0, 1}},
			{Weight: 1, Elements: []int{2, 3}},
			{Weight: 3, Elements: []int{0, 1, 2, 3}},
		},
	}
	chosen, cost, err := GreedyCover(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(chosen) {
		t.Fatalf("greedy result %v is not a cover", chosen)
	}
	if cost != 2 {
		t.Errorf("greedy cost = %v, want 2 (two unit sets)", cost)
	}
}

func TestGreedyCoverPrefersZeroWeightSets(t *testing.T) {
	t.Parallel()
	// A zero-weight set models an already-active disk (Eq. 5): it should
	// always be taken before any positive-weight alternative it dominates.
	in := CoverInstance{
		NumElements: 2,
		Sets: []Set{
			{Weight: 100, Elements: []int{0, 1}},
			{Weight: 0, Elements: []int{0, 1}},
		},
	}
	chosen, cost, err := GreedyCover(in)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || len(chosen) != 1 || chosen[0] != 1 {
		t.Errorf("chosen = %v cost = %v, want the free set", chosen, cost)
	}
}

func TestGreedyCoverUncoverable(t *testing.T) {
	t.Parallel()
	in := CoverInstance{NumElements: 2, Sets: []Set{{Weight: 1, Elements: []int{0}}}}
	if _, _, err := GreedyCover(in); err == nil {
		t.Error("GreedyCover accepted an uncoverable instance")
	}
	if _, _, err := ExactCover(in, 0); err == nil {
		t.Error("ExactCover accepted an uncoverable instance")
	}
}

func TestGreedyCoverEmptyInstance(t *testing.T) {
	t.Parallel()
	chosen, cost, err := GreedyCover(CoverInstance{})
	if err != nil || len(chosen) != 0 || cost != 0 {
		t.Errorf("empty instance: chosen=%v cost=%v err=%v", chosen, cost, err)
	}
}

func TestCoverValidate(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		in   CoverInstance
		ok   bool
	}{
		{"valid", CoverInstance{NumElements: 2, Sets: []Set{{Weight: 1, Elements: []int{0, 1}}}}, true},
		{"negative count", CoverInstance{NumElements: -1}, false},
		{"negative weight", CoverInstance{NumElements: 1, Sets: []Set{{Weight: -2, Elements: []int{0}}}}, false},
		{"NaN weight", CoverInstance{NumElements: 1, Sets: []Set{{Weight: math.NaN(), Elements: []int{0}}}}, false},
		{"element out of range", CoverInstance{NumElements: 1, Sets: []Set{{Weight: 1, Elements: []int{5}}}}, false},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := tc.in.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestExactCoverBeatsGreedyTrap(t *testing.T) {
	t.Parallel()
	// Classic greedy trap: greedy picks the big cheap-per-element set first
	// and then needs extras; optimal uses two disjoint sets.
	in := CoverInstance{
		NumElements: 6,
		Sets: []Set{
			{Weight: 3.1, Elements: []int{0, 1, 2, 3, 4}},
			{Weight: 2, Elements: []int{0, 1, 2}},
			{Weight: 2, Elements: []int{3, 4, 5}},
		},
	}
	_, exactCost, err := ExactCover(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exactCost != 4 {
		t.Errorf("exact cost = %v, want 4", exactCost)
	}
	_, greedyCost, err := GreedyCover(in)
	if err != nil {
		t.Fatal(err)
	}
	if greedyCost < exactCost {
		t.Errorf("greedy %v beat exact %v", greedyCost, exactCost)
	}
}

func TestExactCoverExpansionCap(t *testing.T) {
	t.Parallel()
	in := randomCoverInstance(rand.New(rand.NewSource(1)), 12, 24)
	if _, _, err := ExactCover(in, 1); err == nil {
		t.Error("ExactCover with 1-expansion cap did not fail on a nontrivial instance")
	}
}

func randomCoverInstance(rng *rand.Rand, elements, sets int) CoverInstance {
	in := CoverInstance{NumElements: elements}
	for s := 0; s < sets; s++ {
		var elems []int
		for e := 0; e < elements; e++ {
			if rng.Intn(3) == 0 {
				elems = append(elems, e)
			}
		}
		in.Sets = append(in.Sets, Set{Weight: rng.Float64() * 10, Elements: elems})
	}
	// Guarantee coverability.
	all := make([]int, elements)
	for e := range all {
		all[e] = e
	}
	in.Sets = append(in.Sets, Set{Weight: 25, Elements: all})
	return in
}

// Properties on random instances: greedy covers, exact covers, and
// exact <= greedy <= H_n * exact.
func TestCoverGreedyVsExactProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoverInstance(rng, 3+rng.Intn(8), 2+rng.Intn(8))
		gChosen, gCost, err := GreedyCover(in)
		if err != nil || !in.IsCover(gChosen) {
			return false
		}
		eChosen, eCost, err := ExactCover(in, 0)
		if err != nil || !in.IsCover(eChosen) {
			return false
		}
		if eCost > gCost+1e-9 {
			return false
		}
		hn := 0.0
		for i := 1; i <= in.NumElements; i++ {
			hn += 1 / float64(i)
		}
		return gCost <= hn*eCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCoverCostMatchesChosenWeights(t *testing.T) {
	t.Parallel()
	in := CoverInstance{
		NumElements: 1,
		Sets:        []Set{{Weight: 2.5, Elements: []int{0}}, {Weight: 4, Elements: []int{0}}},
	}
	if got := in.Cost([]int{0, 1}); got != 6.5 {
		t.Errorf("Cost = %v, want 6.5", got)
	}
}

func TestIsCoverRejectsBadIndices(t *testing.T) {
	t.Parallel()
	in := CoverInstance{NumElements: 1, Sets: []Set{{Weight: 1, Elements: []int{0}}}}
	if in.IsCover([]int{5}) {
		t.Error("IsCover accepted an out-of-range set index")
	}
	if in.IsCover(nil) {
		t.Error("IsCover accepted an empty selection for a nonempty universe")
	}
}
