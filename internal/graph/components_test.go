package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestConnectedComponents(t *testing.T) {
	t.Parallel()
	// Two triangles and an isolated vertex.
	g := NewGraph(7)
	for v := 0; v < 7; v++ {
		g.SetWeight(v, 1)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	comps := ConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestConnectedComponentsEmptyGraph(t *testing.T) {
	t.Parallel()
	if comps := ConnectedComponents(NewGraph(0)); len(comps) != 0 {
		t.Errorf("components of empty graph = %v", comps)
	}
}

// Property: components partition the vertex set.
func TestComponentsPartitionProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(30), 0.1)
		seen := map[int]bool{}
		total := 0
		for _, comp := range ConnectedComponents(g) {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHybridMWISMatchesExactOnSmallComponents(t *testing.T) {
	t.Parallel()
	// Many small disconnected components: hybrid with a generous limit
	// must equal the exact optimum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build 3 disjoint random blobs of <= 6 vertices.
		g := NewGraph(18)
		for v := 0; v < 18; v++ {
			g.SetWeight(v, rng.Float64()*10)
		}
		for blob := 0; blob < 3; blob++ {
			base := blob * 6
			for i := 0; i < 6; i++ {
				for j := i + 1; j < 6; j++ {
					if rng.Float64() < 0.4 {
						g.AddEdge(base+i, base+j)
					}
				}
			}
		}
		hybridIS, hybridW := HybridMWIS(g, 10)
		_, exactW := ExactMWIS(g)
		if !g.IsIndependentSet(hybridIS) {
			return false
		}
		return math.Abs(hybridW-exactW) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHybridMWISFallsBackToGreedyOnBigComponents(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 0.2) // likely one big component
	is, w := HybridMWIS(g, 5)
	if !g.IsIndependentSet(is) {
		t.Fatal("hybrid returned dependent set")
	}
	if math.Abs(g.SetWeightSum(is)-w) > 1e-9 {
		t.Errorf("weight mismatch: %v vs %v", g.SetWeightSum(is), w)
	}
	// Never worse than plain greedy on the whole graph.
	_, gw := GWMIN(g)
	if w < gw-1e-9 {
		t.Errorf("hybrid %v below plain greedy %v", w, gw)
	}
}

func TestHybridNeverBelowGreedyProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(24), 0.15)
		is, w := HybridMWIS(g, 8)
		if !g.IsIndependentSet(is) {
			return false
		}
		_, gw := GWMIN(g)
		return w >= gw-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSubgraphInducesEdges(t *testing.T) {
	t.Parallel()
	g := pathGraph([]float64{1, 2, 3, 4})
	sub, back := subgraph(g, []int{1, 2, 3})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("subgraph n=%d m=%d", sub.N(), sub.M())
	}
	if sub.Weight(0) != 2 || back[0] != 1 {
		t.Errorf("vertex mapping wrong")
	}
	sorted := append([]int(nil), back...)
	sort.Ints(sorted)
	for i := range sorted {
		if sorted[i] != back[i] {
			t.Error("back-mapping not sorted")
		}
	}
}
