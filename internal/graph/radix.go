package graph

import "slices"

// RadixSortUint64 sorts a ascending with an LSD byte-wise radix sort,
// falling back to comparison sorting for small inputs. The packed-key
// buffers of the MWIS pipeline (edge lists, (request, vertex) mention
// runs) are uniform uint64 keys, where counting passes beat pdqsort by a
// wide margin; passes stop at the key width actually in use.
func RadixSortUint64(a []uint64) {
	if len(a) < 256 {
		slices.Sort(a)
		return
	}
	var orv, andv uint64 = 0, ^uint64(0)
	for _, x := range a {
		orv |= x
		andv &= x
	}
	buf := make([]uint64, len(a))
	src, dst := a, buf
	var counts [256]int
	for shift := uint(0); orv>>shift > 0; shift += 8 {
		if (orv>>shift)&0xff == (andv>>shift)&0xff {
			continue // all keys share this byte; the pass is an identity
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, x := range src {
			counts[(x>>shift)&0xff]++
		}
		sum := 0
		for i := 0; i < 256; i++ {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, x := range src {
			b := (x >> shift) & 0xff
			dst[counts[b]] = x
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
