package graph

import "sort"

// ConnectedComponents returns the vertex sets of g's connected components,
// each sorted ascending, ordered by their smallest vertex. Offline
// scheduling graphs decompose naturally: requests further apart than the
// replacement window never share a vertex, so bursts form independent
// components.
func ConnectedComponents(g *Graph) [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	stack := make([]int, 0, 64)
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := len(out)
		comp[v] = id
		stack = append(stack[:0], v)
		members := []int{v}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, int(w))
					members = append(members, int(w))
				}
			}
		}
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// subgraph builds the induced subgraph on the (sorted) vertex set and a
// mapping from subgraph vertices back to g's vertices.
func subgraph(g *Graph, vs []int) (*Graph, []int) {
	index := make(map[int]int, len(vs))
	for i, v := range vs {
		index[v] = i
	}
	sub := NewGraph(len(vs))
	for i, v := range vs {
		sub.SetWeight(i, g.Weight(v))
		for _, u := range g.Neighbors(v) {
			if j, ok := index[int(u)]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, vs
}

// HybridMWIS solves maximum weighted independent set per connected
// component: components with at most exactLimit vertices are solved
// optimally by branch and bound, larger ones by the GWMIN greedy. On
// bursty scheduling graphs most components are small, so the hybrid
// recovers most of the exact optimum at near-greedy cost.
func HybridMWIS(g *Graph, exactLimit int) ([]int, float64) {
	var is []int
	total := 0.0
	for _, members := range ConnectedComponents(g) {
		sub, back := subgraph(g, members)
		var picked []int
		var w float64
		if sub.N() <= exactLimit {
			picked, w = ExactMWIS(sub)
		} else {
			picked, w = GWMIN(sub)
		}
		for _, v := range picked {
			is = append(is, back[v])
		}
		total += w
	}
	return is, total
}
