package graph

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// ConnectedComponents returns the vertex sets of g's connected components,
// each sorted ascending, ordered by their smallest vertex. Offline
// scheduling graphs decompose naturally: requests further apart than the
// replacement window never share a vertex, so bursts form independent
// components.
func ConnectedComponents(g *Graph) [][]int {
	g.Finalize()
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	stack := make([]int, 0, 64)
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := len(out)
		comp[v] = id
		stack = append(stack[:0], v)
		members := []int{v}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, int(w))
					members = append(members, int(w))
				}
			}
		}
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// subgraph builds the induced subgraph on the (sorted) vertex set and a
// mapping from subgraph vertices back to g's vertices. Because both the
// vertex set and the parent adjacency lists are sorted, the subgraph's CSR
// is emitted directly in one pass — remapped neighbor ids come out already
// sorted, so no edge buffer, sort, or dedup is needed. Membership tests are
// binary searches on the sorted vertex set, so no per-component index map
// is allocated.
func subgraph(g *Graph, vs []int) (*Graph, []int) {
	sub := NewGraph(len(vs))
	total := 0
	for _, v := range vs {
		total += g.Degree(v)
	}
	off := make([]int32, len(vs)+1)
	nbr := make([]int32, 0, total)
	for i, v := range vs {
		sub.weights[i] = g.weights[v]
		for _, u := range g.Neighbors(v) {
			if j, ok := slices.BinarySearch(vs, int(u)); ok {
				nbr = append(nbr, int32(j))
			}
		}
		off[i+1] = int32(len(nbr))
	}
	sub.off = off
	sub.nbr = nbr
	sub.edges = len(nbr) / 2
	sub.dirty = false
	return sub, vs
}

// solveComponents decomposes g into connected components, solves each with
// solve, and concatenates the results in component order (components are
// ordered by smallest vertex), remapped to g's vertex ids. With workers > 1
// components are solved concurrently over a bounded pool; because every
// component is an isolated subproblem and results are merged by component
// index, the output is bit-identical for any worker count.
func solveComponents(g *Graph, workers int, solve func(*Graph) ([]int, float64)) ([]int, float64) {
	g.Finalize()
	comps := ConnectedComponents(g)
	type res struct {
		picked []int
		w      float64
	}
	results := make([]res, len(comps))
	run := func(ci int) {
		sub, back := subgraph(g, comps[ci])
		picked, w := solve(sub)
		mapped := make([]int, len(picked))
		for k, v := range picked {
			mapped[k] = back[v]
		}
		results[ci] = res{picked: mapped, w: w}
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 {
		for ci := range comps {
			run(ci)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= len(comps) {
						return
					}
					run(ci)
				}
			}()
		}
		wg.Wait()
	}
	var is []int
	total := 0.0
	for _, r := range results {
		is = append(is, r.picked...)
		total += r.w
	}
	return is, total
}

// HybridMWIS solves maximum weighted independent set per connected
// component: components with at most exactLimit vertices are solved
// optimally by branch and bound, larger ones by the GWMIN greedy. On
// bursty scheduling graphs most components are small, so the hybrid
// recovers most of the exact optimum at near-greedy cost.
func HybridMWIS(g *Graph, exactLimit int) ([]int, float64) {
	return ParallelHybridMWIS(g, exactLimit, 1)
}

// ParallelHybridMWIS is HybridMWIS with components solved concurrently over
// a pool of workers goroutines (1 = serial). Components are independent
// subproblems and results merge in component order, so the selected set and
// total weight are bit-identical for every worker count.
func ParallelHybridMWIS(g *Graph, exactLimit, workers int) ([]int, float64) {
	return solveComponents(g, workers, func(sub *Graph) ([]int, float64) {
		if sub.N() <= exactLimit {
			return ExactMWIS(sub)
		}
		return GWMIN(sub)
	})
}

// ParallelGWMIN runs the GWMIN greedy per connected component over a pool
// of workers goroutines (1 = plain GWMIN on the whole graph). The greedy's
// choices in one component never affect ratios in another, so the selected
// set is identical to GWMIN's for every worker count; only the order of the
// returned vertices differs (per-component instead of global ratio order).
func ParallelGWMIN(g *Graph, workers int) ([]int, float64) {
	if workers <= 1 {
		return GWMIN(g)
	}
	return solveComponents(g, workers, GWMIN)
}
